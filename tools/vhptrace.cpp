// vhptrace — inspect flight-recorder recordings from the command line.
//
//   vhptrace inspect <recording> [--limit N] [--port data|int|clock]
//                    [--node N]
//   vhptrace stats <recording> [--node N]
//   vhptrace diff <recording-a> <recording-b> [--node N]
//   vhptrace to-chrome <recording> [out.json]
//   vhptrace timeline <hw.vhprec> [board.vhprec...] [--chrome out.json]
//   vhptrace critical <hw.vhprec> [board.vhprec...] [--gate PCT]
//   vhptrace top <port> [--interval MS] [--count N] [--once]
//
// Fabric recordings interleave N nodes' links in one global sequence;
// --node keeps one node's frames (two-party recordings are all node 0).
//
// timeline/critical reconstruct per-round spans from the CLOCK traffic
// (net::timeline_from_recordings) and run the causal-timeline analyzer on
// them; top polls a live fabric's telemetry endpoint
// (Fabric::serve_telemetry) and renders per-node round rates.
//
// Thin shell over the library: the subcommand logic lives in
// vhp/obs/recording.hpp, vhp/obs/timeline.hpp and vhp/net/replay.hpp
// (tested there); this file only parses arguments.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "vhp/common/format.hpp"
#include "vhp/net/message.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/obs/telemetry.hpp"
#include "vhp/obs/timeline.hpp"

namespace {

using namespace vhp;

int usage() {
  std::fprintf(stderr,
               "usage: vhptrace <subcommand> ...\n"
               "  inspect <recording> [--limit N] [--port data|int|clock]\n"
               "          [--node N]\n"
               "      one frame per line: seq, port, dir, decoded message,\n"
               "      virtual time stamps\n"
               "  stats <recording> [--node N]\n"
               "      per-port frame/byte totals, message-type histogram,\n"
               "      time span\n"
               "  diff <a> <b> [--node N]\n"
               "      first mismatching frame between two recordings\n"
               "      (exit 1 when they diverge)\n"
               "  to-chrome <recording> [out.json]\n"
               "      Chrome trace_event JSON (chrome://tracing, Perfetto)\n"
               "  timeline <hw.vhprec> [board.vhprec...] [--chrome out.json]\n"
               "      per-round barrier table from a recording set; --chrome\n"
               "      writes trace_event JSON, one track per node\n"
               "  critical <hw.vhprec> [board.vhprec...] [--gate PCT]\n"
               "      critical-path report: per-node compute/wait/transport,\n"
               "      straggler ranking, slowdown; --gate exits 1 when the\n"
               "      decomposition misses total wall-clock by more than PCT%%\n"
               "  top <port> [--interval MS] [--count N] [--once]\n"
               "      refreshing view of a live fabric's telemetry endpoint\n"
               "      (Fabric::serve_telemetry on 127.0.0.1)\n");
  return 2;
}

/// Strict decimal parse; nullopt on empty/garbage/overflow — a typo in a
/// numeric flag must print usage, not throw out of std::stoul.
std::optional<u64> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  u64 out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const u64 digit = static_cast<u64>(c - '0');
    if (out > (~u64{0} - digit) / 10) return std::nullopt;
    out = out * 10 + digit;
  }
  return out;
}

obs::Recording load_or_exit(const std::string& path) {
  auto rec = obs::read_recording(path);
  if (!rec.ok()) {
    std::fprintf(stderr, "vhptrace: %s\n", rec.status().to_string().c_str());
    std::exit(2);
  }
  return std::move(rec).value();
}

/// Pops a trailing "--node N" pair out of `args`; nullopt when absent.
/// Exits with usage on a non-numeric N.
std::optional<u32> take_node_filter(std::vector<std::string>& args) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != "--node") continue;
    const std::optional<u64> node = parse_u64(args[i + 1]);
    if (!node.has_value() || *node > ~u32{0}) std::exit(usage());
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return static_cast<u32>(*node);
  }
  return std::nullopt;
}

void keep_node(obs::Recording& rec, std::optional<u32> node) {
  if (!node.has_value()) return;
  std::erase_if(rec.frames, [&](const obs::FrameRecord& r) {
    return r.node != *node;
  });
}

/// One human-readable line per frame: the decoded protocol message when the
/// payload is whole, the type/size/digest summary otherwise.
std::string describe(const obs::FrameRecord& r) {
  std::string msg;
  if ((r.flags & obs::kFrameFlagInjected) != 0) {
    // Fault markers carry the fault kind's name as their payload; surface
    // them as FAULT lines so injected loss is distinguishable from traffic.
    const std::string kind{r.payload.begin(), r.payload.end()};
    const std::string node =
        r.node != 0 ? strformat("node={} ", r.node) : std::string{};
    return strformat("{} {}{} {} hw_cycle={} board_tick={} FAULT {}", r.seq,
                     node, obs::to_string(r.port), obs::to_string(r.dir),
                     r.hw_cycle, r.board_tick,
                     kind.empty() ? "?" : kind);
  }
  if (!r.truncated) {
    auto decoded = net::decode(r.payload);
    if (decoded.ok()) {
      const net::Message& m = decoded.value();
      msg = std::string(net::to_string(net::type_of(m)));
      switch (net::type_of(m)) {
        case net::MsgType::kDataWrite: {
          const auto& w = std::get<net::DataWrite>(m);
          msg += strformat(" addr={} len={}", w.address, w.data.size());
          break;
        }
        case net::MsgType::kDataReadReq: {
          const auto& q = std::get<net::DataReadReq>(m);
          msg += strformat(" addr={} nbytes={}", q.address, q.nbytes);
          break;
        }
        case net::MsgType::kDataReadResp: {
          const auto& p = std::get<net::DataReadResp>(m);
          msg += strformat(" addr={} len={}", p.address, p.data.size());
          break;
        }
        case net::MsgType::kIntRaise:
          msg += strformat(" vector={}", std::get<net::IntRaise>(m).vector);
          break;
        case net::MsgType::kClockTick: {
          const auto& t = std::get<net::ClockTick>(m);
          msg += strformat(" sim_cycle={} n_ticks={}", t.sim_cycle, t.n_ticks);
          if (t.round.has_value()) msg += strformat(" round={}", *t.round);
          break;
        }
        case net::MsgType::kTimeAck: {
          const auto& a = std::get<net::TimeAck>(m);
          msg += strformat(" board_tick={}", a.board_tick);
          if (a.lookahead.has_value()) {
            msg += *a.lookahead == net::kLookaheadUnbounded
                       ? " lookahead=unbounded"
                       : strformat(" lookahead={}", *a.lookahead);
          }
          if (a.round.has_value()) msg += strformat(" round={}", *a.round);
          break;
        }
        case net::MsgType::kShutdown:
          break;
      }
    }
  }
  if (msg.empty()) {
    msg = strformat("type={} size={} digest={}{}",
                    static_cast<unsigned>(r.msg_type), r.payload_size,
                    r.digest, r.truncated ? " (truncated)" : "");
  }
  const std::string node =
      r.node != 0 ? strformat("node={} ", r.node) : std::string{};
  return strformat("{} {}{} {} hw_cycle={} board_tick={} {}", r.seq, node,
                   obs::to_string(r.port), obs::to_string(r.dir), r.hw_cycle,
                   r.board_tick, msg);
}

int cmd_inspect(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.empty()) return usage();
  std::size_t limit = ~std::size_t{0};
  std::string port_filter;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--limit" && i + 1 < args.size()) {
      const std::optional<u64> n = parse_u64(args[++i]);
      if (!n.has_value()) return usage();
      limit = static_cast<std::size_t>(*n);
    } else if (args[i] == "--port" && i + 1 < args.size()) {
      port_filter = args[++i];
    } else {
      return usage();
    }
  }
  obs::Recording rec = load_or_exit(args[0]);
  keep_node(rec, node);
  std::printf("# side=%s frames=%zu\n", rec.meta.side.c_str(),
              rec.frames.size());
  for (const auto& [key, value] : rec.meta.tags) {
    std::printf("# %s=%s\n", key.c_str(), value.c_str());
  }
  std::size_t shown = 0;
  for (const obs::FrameRecord& r : rec.frames) {
    if (!port_filter.empty() && obs::to_string(r.port) != port_filter) {
      continue;
    }
    if (shown++ >= limit) break;
    std::printf("%s\n", describe(r).c_str());
  }
  return 0;
}

int cmd_stats(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.size() != 1) return usage();
  obs::Recording rec = load_or_exit(args[0]);
  keep_node(rec, node);
  std::fputs(obs::recording_stats_text(rec).c_str(), stdout);
  // Per-node grant summary — which nodes adapted, and how far.
  std::fputs(net::grant_stats_text(rec).c_str(), stdout);
  return 0;
}

int cmd_diff(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.size() != 2) return usage();
  obs::Recording a = load_or_exit(args[0]);
  obs::Recording b = load_or_exit(args[1]);
  keep_node(a, node);
  keep_node(b, node);
  const auto divergence =
      obs::diff_recordings(a, b, &net::message_field_diff);
  if (!divergence.has_value()) {
    std::printf("identical: %zu frames\n", a.frames.size());
    return 0;
  }
  std::printf("%s\n", divergence->to_string().c_str());
  return 1;
}

int cmd_to_chrome(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  const std::string json =
      obs::recording_to_chrome_json(load_or_exit(args[0]));
  if (args.size() == 2) {
    std::ofstream out(args[1], std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "vhptrace: write failed: %s\n", args[1].c_str());
      return 2;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}

/// Loads `<hw> [boards...]`, extracts the spans and node-name map. The hw
/// recording comes first; board recordings are matched to their fabric slot
/// via the "node"/"node_name" tags Fabric::write_recordings stamps.
int load_timeline(const std::vector<std::string>& paths,
                  std::vector<obs::SpanRecord>& spans,
                  std::map<u32, std::string>& names) {
  obs::Recording hw = load_or_exit(paths[0]);
  std::vector<obs::Recording> boards;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    obs::Recording board = load_or_exit(paths[i]);
    const auto node_tag = board.meta.tags.find("node");
    const auto name_tag = board.meta.tags.find("node_name");
    if (node_tag != board.meta.tags.end() &&
        name_tag != board.meta.tags.end()) {
      if (const auto node = parse_u64(node_tag->second); node.has_value()) {
        names[static_cast<u32>(*node)] = name_tag->second;
      }
    }
    boards.push_back(std::move(board));
  }
  spans = net::timeline_from_recordings(hw, boards);
  if (spans.empty()) {
    std::fprintf(stderr,
                 "vhptrace: %s holds no CLOCK rounds to analyze\n",
                 paths[0].c_str());
    return 2;
  }
  return 0;
}

int cmd_timeline(std::vector<std::string> args) {
  std::string chrome_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--chrome" && i + 1 < args.size()) {
      chrome_path = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  if (args.empty()) return usage();
  std::vector<obs::SpanRecord> spans;
  std::map<u32, std::string> names;
  if (int rc = load_timeline(args, spans, names); rc != 0) return rc;
  const obs::TimelineAnalysis analysis = obs::analyze_spans(spans, names);
  std::fputs(obs::timeline_report_text(analysis).c_str(), stdout);
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path, std::ios::trunc);
    out << obs::spans_to_chrome_json(spans, names);
    if (!out) {
      std::fprintf(stderr, "vhptrace: write failed: %s\n",
                   chrome_path.c_str());
      return 2;
    }
    std::printf("chrome trace: %s (%zu spans)\n", chrome_path.c_str(),
                spans.size());
  }
  return 0;
}

int cmd_critical(std::vector<std::string> args) {
  double gate = -1.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--gate" && i + 1 < args.size()) {
      char* end = nullptr;
      gate = std::strtod(args[i + 1].c_str(), &end);
      if (end == nullptr || *end != '\0' || gate < 0.0) return usage();
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
  }
  if (args.empty()) return usage();
  std::vector<obs::SpanRecord> spans;
  std::map<u32, std::string> names;
  if (int rc = load_timeline(args, spans, names); rc != 0) return rc;
  const obs::TimelineAnalysis analysis = obs::analyze_spans(spans, names);
  std::fputs(obs::critical_report_text(analysis).c_str(), stdout);
  if (gate >= 0.0 && analysis.reconciliation_error * 100.0 > gate) {
    std::fprintf(stderr,
                 "vhptrace: reconciliation error %.2f%% exceeds gate %.2f%%\n",
                 analysis.reconciliation_error * 100.0, gate);
    return 1;
  }
  return 0;
}

int cmd_top(std::vector<std::string> args) {
  if (args.empty()) return usage();
  const std::optional<u64> port = parse_u64(args[0]);
  if (!port.has_value() || *port == 0 || *port > 65535) return usage();
  u64 interval_ms = 1000;
  u64 count = 0;  // 0 = until interrupted
  bool once = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--interval" && i + 1 < args.size()) {
      const std::optional<u64> ms = parse_u64(args[++i]);
      if (!ms.has_value() || *ms == 0) return usage();
      interval_ms = *ms;
    } else if (args[i] == "--count" && i + 1 < args.size()) {
      const std::optional<u64> n = parse_u64(args[++i]);
      if (!n.has_value()) return usage();
      count = *n;
    } else if (args[i] == "--once") {
      once = true;
    } else {
      return usage();
    }
  }
  if (once) count = 1;
  std::optional<obs::TelemetrySnapshot> prev;
  for (u64 iter = 0; count == 0 || iter < count; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    // One connection per sample: the endpoint serves one frame and closes.
    auto channel = net::connect_tcp_channel(static_cast<u16>(*port));
    if (!channel.ok()) {
      std::fprintf(stderr, "vhptrace: connect to 127.0.0.1:%u failed: %s\n",
                   static_cast<unsigned>(*port),
                   channel.status().to_string().c_str());
      return 2;
    }
    auto doc = channel.value()->recv(std::chrono::milliseconds{5000});
    if (!doc.ok()) {
      std::fprintf(stderr, "vhptrace: telemetry read failed: %s\n",
                   doc.status().to_string().c_str());
      return 2;
    }
    const std::string json(doc.value().begin(), doc.value().end());
    obs::TelemetrySnapshot snap = obs::parse_metrics_snapshot(json);
    if (!snap.ok) {
      std::fprintf(stderr, "vhptrace: unparseable telemetry document\n");
      return 2;
    }
    if (count != 1 && iter > 0) std::printf("\033[2J\033[H");
    const double dt_s = static_cast<double>(interval_ms) / 1000.0;
    std::fputs(obs::telemetry_top_text(snap, prev ? &*prev : nullptr, dt_s)
                   .c_str(),
               stdout);
    std::fflush(stdout);
    prev = std::move(snap);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "to-chrome") return cmd_to_chrome(args);
  if (cmd == "timeline") return cmd_timeline(args);
  if (cmd == "critical") return cmd_critical(args);
  if (cmd == "top") return cmd_top(args);
  return usage();
}
