// vhptrace — inspect flight-recorder recordings from the command line.
//
//   vhptrace inspect <recording> [--limit N] [--port data|int|clock]
//                    [--node N]
//   vhptrace stats <recording> [--node N]
//   vhptrace diff <recording-a> <recording-b> [--node N]
//   vhptrace to-chrome <recording> [out.json]
//
// Fabric recordings interleave N nodes' links in one global sequence;
// --node keeps one node's frames (two-party recordings are all node 0).
//
// Thin shell over the library: the subcommand logic lives in
// vhp/obs/recording.hpp (tested there); this file only parses arguments.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "vhp/common/format.hpp"
#include "vhp/net/message.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"

namespace {

using namespace vhp;

int usage() {
  std::fprintf(stderr,
               "usage: vhptrace <subcommand> ...\n"
               "  inspect <recording> [--limit N] [--port data|int|clock]\n"
               "          [--node N]\n"
               "      one frame per line: seq, port, dir, decoded message,\n"
               "      virtual time stamps\n"
               "  stats <recording> [--node N]\n"
               "      per-port frame/byte totals, message-type histogram,\n"
               "      time span\n"
               "  diff <a> <b> [--node N]\n"
               "      first mismatching frame between two recordings\n"
               "      (exit 1 when they diverge)\n"
               "  to-chrome <recording> [out.json]\n"
               "      Chrome trace_event JSON (chrome://tracing, Perfetto)\n");
  return 2;
}

obs::Recording load_or_exit(const std::string& path) {
  auto rec = obs::read_recording(path);
  if (!rec.ok()) {
    std::fprintf(stderr, "vhptrace: %s\n", rec.status().to_string().c_str());
    std::exit(2);
  }
  return std::move(rec).value();
}

/// Pops a trailing "--node N" pair out of `args`; nullopt when absent.
std::optional<u32> take_node_filter(std::vector<std::string>& args) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] != "--node") continue;
    const u32 node = static_cast<u32>(std::stoul(args[i + 1]));
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return node;
  }
  return std::nullopt;
}

void keep_node(obs::Recording& rec, std::optional<u32> node) {
  if (!node.has_value()) return;
  std::erase_if(rec.frames, [&](const obs::FrameRecord& r) {
    return r.node != *node;
  });
}

/// One human-readable line per frame: the decoded protocol message when the
/// payload is whole, the type/size/digest summary otherwise.
std::string describe(const obs::FrameRecord& r) {
  std::string msg;
  if ((r.flags & obs::kFrameFlagInjected) != 0) {
    // Fault markers carry the fault kind's name as their payload; surface
    // them as FAULT lines so injected loss is distinguishable from traffic.
    const std::string kind{r.payload.begin(), r.payload.end()};
    const std::string node =
        r.node != 0 ? strformat("node={} ", r.node) : std::string{};
    return strformat("{} {}{} {} hw_cycle={} board_tick={} FAULT {}", r.seq,
                     node, obs::to_string(r.port), obs::to_string(r.dir),
                     r.hw_cycle, r.board_tick,
                     kind.empty() ? "?" : kind);
  }
  if (!r.truncated) {
    auto decoded = net::decode(r.payload);
    if (decoded.ok()) {
      const net::Message& m = decoded.value();
      msg = std::string(net::to_string(net::type_of(m)));
      switch (net::type_of(m)) {
        case net::MsgType::kDataWrite: {
          const auto& w = std::get<net::DataWrite>(m);
          msg += strformat(" addr={} len={}", w.address, w.data.size());
          break;
        }
        case net::MsgType::kDataReadReq: {
          const auto& q = std::get<net::DataReadReq>(m);
          msg += strformat(" addr={} nbytes={}", q.address, q.nbytes);
          break;
        }
        case net::MsgType::kDataReadResp: {
          const auto& p = std::get<net::DataReadResp>(m);
          msg += strformat(" addr={} len={}", p.address, p.data.size());
          break;
        }
        case net::MsgType::kIntRaise:
          msg += strformat(" vector={}", std::get<net::IntRaise>(m).vector);
          break;
        case net::MsgType::kClockTick: {
          const auto& t = std::get<net::ClockTick>(m);
          msg += strformat(" sim_cycle={} n_ticks={}", t.sim_cycle, t.n_ticks);
          break;
        }
        case net::MsgType::kTimeAck: {
          const auto& a = std::get<net::TimeAck>(m);
          msg += strformat(" board_tick={}", a.board_tick);
          if (a.lookahead.has_value()) {
            msg += *a.lookahead == net::kLookaheadUnbounded
                       ? " lookahead=unbounded"
                       : strformat(" lookahead={}", *a.lookahead);
          }
          break;
        }
        case net::MsgType::kShutdown:
          break;
      }
    }
  }
  if (msg.empty()) {
    msg = strformat("type={} size={} digest={}{}",
                    static_cast<unsigned>(r.msg_type), r.payload_size,
                    r.digest, r.truncated ? " (truncated)" : "");
  }
  const std::string node =
      r.node != 0 ? strformat("node={} ", r.node) : std::string{};
  return strformat("{} {}{} {} hw_cycle={} board_tick={} {}", r.seq, node,
                   obs::to_string(r.port), obs::to_string(r.dir), r.hw_cycle,
                   r.board_tick, msg);
}

int cmd_inspect(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.empty()) return usage();
  std::size_t limit = ~std::size_t{0};
  std::string port_filter;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--limit" && i + 1 < args.size()) {
      limit = std::stoul(args[++i]);
    } else if (args[i] == "--port" && i + 1 < args.size()) {
      port_filter = args[++i];
    } else {
      return usage();
    }
  }
  obs::Recording rec = load_or_exit(args[0]);
  keep_node(rec, node);
  std::printf("# side=%s frames=%zu\n", rec.meta.side.c_str(),
              rec.frames.size());
  for (const auto& [key, value] : rec.meta.tags) {
    std::printf("# %s=%s\n", key.c_str(), value.c_str());
  }
  std::size_t shown = 0;
  for (const obs::FrameRecord& r : rec.frames) {
    if (!port_filter.empty() && obs::to_string(r.port) != port_filter) {
      continue;
    }
    if (shown++ >= limit) break;
    std::printf("%s\n", describe(r).c_str());
  }
  return 0;
}

int cmd_stats(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.size() != 1) return usage();
  obs::Recording rec = load_or_exit(args[0]);
  keep_node(rec, node);
  std::fputs(obs::recording_stats_text(rec).c_str(), stdout);
  // Per-node grant summary — which nodes adapted, and how far.
  std::fputs(net::grant_stats_text(rec).c_str(), stdout);
  return 0;
}

int cmd_diff(std::vector<std::string> args) {
  const std::optional<u32> node = take_node_filter(args);
  if (args.size() != 2) return usage();
  obs::Recording a = load_or_exit(args[0]);
  obs::Recording b = load_or_exit(args[1]);
  keep_node(a, node);
  keep_node(b, node);
  const auto divergence =
      obs::diff_recordings(a, b, &net::message_field_diff);
  if (!divergence.has_value()) {
    std::printf("identical: %zu frames\n", a.frames.size());
    return 0;
  }
  std::printf("%s\n", divergence->to_string().c_str());
  return 1;
}

int cmd_to_chrome(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  const std::string json =
      obs::recording_to_chrome_json(load_or_exit(args[0]));
  if (args.size() == 2) {
    std::ofstream out(args[1], std::ios::trunc);
    out << json;
    if (!out) {
      std::fprintf(stderr, "vhptrace: write failed: %s\n", args[1].c_str());
      return 2;
    }
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "diff") return cmd_diff(args);
  if (cmd == "to-chrome") return cmd_to_chrome(args);
  return usage();
}
