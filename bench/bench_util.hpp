// Shared harness for the figure-reproduction benchmarks: builds the paper's
// experimental setup (4-port router + producers/consumers on the simulation
// kernel, checksum application on the virtual board, TCP loopback link),
// runs it to completion and reports wall time + accuracy.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "vhp/common/format.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::bench {

struct ExperimentParams {
  /// Total packets N (split across the 4 producers).
  u64 n_packets = 100;
  /// T_sync in clock cycles; nullopt = untimed baseline (no sync traffic).
  std::optional<u64> t_sync = 1000;
  /// Cycles between packets per producer.
  u64 gap_cycles = 400;
  std::size_t payload_bytes = 16;
  std::size_t buffer_depth = 4;
  /// Hard cap on simulated cycles (loose sync needs a drain tail).
  u64 max_cycles = 400000;
  /// When set, simulate EXACTLY this many cycles — no early exit, no
  /// drain-dependent tail. Wall-time experiments (Figures 5 and 6) need the
  /// simulated work held constant across T_sync values so only the
  /// synchronization cost varies; accuracy experiments (Figure 7) instead
  /// run to completion and leave this unset.
  std::optional<u64> fixed_cycles;
  cosim::TransportKind transport = cosim::TransportKind::kTcp;
  /// Emulated one-way link latency in microseconds on every channel
  /// (0 = raw loopback); see net/latency.hpp.
  u64 link_latency_us = 0;
  u64 seed = 42;
  /// Turn on the costly vhp::obs instruments (tracing, stall profiling,
  /// per-frame link accounting) for this run. Off by default: the figure
  /// benches measure wall time, and profiling perturbs what they measure.
  /// Metric counters are always live either way and always land in
  /// ExperimentResult::metrics_json.
  bool observability = false;
  /// Turn on the flight recorder (ring-only, no dump) for this run — the
  /// ISSUE-2 acceptance check: recording must stay under 5% wall-time
  /// overhead on fig6_overhead_ratio.
  bool record = false;
  /// Arm the causal timeline (per-round span rings + wire-v3 round
  /// stamping) for this run. Off by default: timeline_overhead gates the
  /// disarmed configuration at under 1% wall-time overhead.
  bool timeline = false;
  /// Fault injection / link recovery for this run (vhp::fault). The
  /// defaults are disarmed: an empty plan compiles to nullptr and disabled
  /// recovery returns the link untouched, so configuring them must cost
  /// nothing — fault_overhead checks exactly that.
  fault::FaultPlan fault_plan{};
  fault::RecoveryConfig recovery{};

  /// Simulated work matched to the traffic: generation span + a drain tail.
  [[nodiscard]] u64 traffic_span_cycles() const {
    return (n_packets / 4) * gap_cycles + 4000;
  }
};

struct ExperimentResult {
  double wall_seconds = 0;
  u64 cycles_run = 0;
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 dropped_input_full = 0;
  u64 dropped_bad_checksum = 0;
  u64 syncs = 0;
  u64 interrupts = 0;
  bool drained = false;
  /// Full vhp::obs metrics dump of the run (counters both sides of the
  /// link, RTOS totals, stall buckets when observability was on).
  std::string metrics_json;

  [[nodiscard]] double accuracy() const {
    return emitted == 0 ? 1.0
                        : static_cast<double>(forwarded) /
                              static_cast<double>(emitted);
  }
};

/// Runs one co-simulation of the router case study and measures it.
inline ExperimentResult run_router_experiment(const ExperimentParams& p) {
  cosim::SessionConfig cfg;
  cfg.transport = p.transport;
  if (p.t_sync.has_value()) {
    cfg.cosim.t_sync = *p.t_sync;
  } else {
    cfg.set_untimed();
  }
  cfg.link_emulation.latency = std::chrono::microseconds{p.link_latency_us};
  cfg.board.rtos.cycles_per_tick = 10;
  cfg.obs.enabled = p.observability;
  cfg.obs.record.enabled = p.record;
  cfg.obs.timeline.enabled = p.timeline;
  cfg.fault_plan = p.fault_plan;
  cfg.recovery = p.recovery;
  cfg.postmortem_prefix.clear();  // benches measure; no dump side effects
  cosim::CosimSession session{cfg};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = p.buffer_depth;
  tb_cfg.packets_per_port = p.n_packets / 4;
  tb_cfg.gap_cycles = p.gap_cycles;
  tb_cfg.payload_bytes = p.payload_bytes;
  tb_cfg.seed = p.seed;
  router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);

  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::ChecksumApp app{session.board(), app_cfg};

  session.start_board();

  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  constexpr u64 kChunk = 200;
  if (p.fixed_cycles.has_value()) {
    while (cycles < *p.fixed_cycles) {
      const u64 step = std::min(kChunk, *p.fixed_cycles - cycles);
      if (!session.run_cycles(step).ok()) break;
      cycles += step;
    }
  } else {
    while (cycles < p.max_cycles && !tb.traffic_done()) {
      if (!session.run_cycles(kChunk).ok()) break;
      cycles += kChunk;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  session.finish();

  ExperimentResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.cycles_run = cycles;
  r.emitted = tb.total_emitted();
  r.forwarded = tb.router().stats().forwarded;
  r.dropped_input_full = tb.router().stats().dropped_input_full;
  r.dropped_bad_checksum = tb.router().stats().dropped_bad_checksum;
  r.syncs = session.hw().stats().syncs;
  r.interrupts = session.hw().stats().interrupts_sent;
  r.drained = tb.traffic_done();
  r.metrics_json = session.obs().metrics_json();
  return r;
}

/// One row of a self-describing BENCH_*.json trajectory: the sweep point,
/// its headline result, and the full metrics dump of that run.
struct JsonRow {
  std::string params;   // JSON object body, e.g. "\"n\":20,\"t_sync\":1000"
  double wall_seconds = 0;
  std::string metrics_json;
};

/// Writes {"bench":name,"rows":[{<params>,"wall_seconds":s,"metrics":{...}}]}.
inline bool write_bench_json(const std::string& path, const std::string& name,
                             const std::vector<JsonRow>& rows) {
  std::ostringstream out;
  out << "{\"bench\":\"" << name << "\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ",";
    out << "{" << rows[i].params << ",\"wall_seconds\":"
        << rows[i].wall_seconds << ",\"metrics\":" << rows[i].metrics_json
        << "}";
  }
  out << "]}";
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out.str();
  return static_cast<bool>(f);
}

/// --json PATH override; `fallback` otherwise.
inline std::string json_output_path(int argc, char** argv,
                                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return fallback;
}

/// True when invoked with --obs (enable costly instruments in the runs).
inline bool obs_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--obs") return true;
  }
  return false;
}

/// True when invoked with --record (flight recorder on in the runs).
inline bool record_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--record") return true;
  }
  return false;
}

/// True when invoked with --quick (CI-friendly reduced sweeps).
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================="
              "=\n");
}

}  // namespace vhp::bench
