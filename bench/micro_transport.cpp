// Micro-benchmarks of the transport layer: the CLOCK_PORT round trip is the
// unit cost that Figures 5 and 6 integrate, so its latency on both
// transports is the key ablation number (DESIGN.md §4, decision 2 and 5).
#include <benchmark/benchmark.h>

#include <thread>

#include "vhp/net/channel.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/message.hpp"
#include "vhp/net/tcp.hpp"

namespace {

using namespace vhp;
using namespace vhp::net;

void BM_MessageEncodeDecode(benchmark::State& state) {
  const Message msg = ClockTick{123456, 1000};
  for (auto _ : state) {
    Bytes frame = encode(msg);
    auto decoded = decode(frame);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

void BM_DataWriteEncodeDecode(benchmark::State& state) {
  const Message msg = DataWrite{0x10, Bytes(static_cast<std::size_t>(
                                           state.range(0)), 0x5a)};
  for (auto _ : state) {
    Bytes frame = encode(msg);
    auto decoded = decode(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataWriteEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

/// Echo peer thread: bounces every frame back until the channel closes.
std::thread start_echo(Channel& ch) {
  return std::thread([&ch] {
    for (;;) {
      auto frame = ch.recv();
      if (!frame.ok()) return;
      if (!ch.send(frame.value()).ok()) return;
    }
  });
}

void BM_InProcRoundTrip(benchmark::State& state) {
  auto [a, b] = make_inproc_channel_pair();
  std::thread echo = start_echo(*b);
  const Bytes frame = encode(Message{ClockTick{1, 1000}});
  for (auto _ : state) {
    (void)a->send(frame);
    auto back = a->recv();
    benchmark::DoNotOptimize(back);
  }
  a->close();
  b->close();
  echo.join();
}
BENCHMARK(BM_InProcRoundTrip);

void BM_TcpLoopbackRoundTrip(benchmark::State& state) {
  TcpLinkListener listener;
  const auto ports = listener.ports();
  Result<CosimLink> client{Status{StatusCode::kInternal, "unset"}};
  std::thread connector{[&] { client = connect_tcp_link(ports); }};
  auto server = listener.accept_link();
  connector.join();
  std::thread echo = start_echo(*client.value().clock);
  const Bytes frame = encode(Message{ClockTick{1, 1000}});
  auto& ch = *server.value().clock;
  for (auto _ : state) {
    (void)ch.send(frame);
    auto back = ch.recv();
    benchmark::DoNotOptimize(back);
  }
  server.value().close_all();
  client.value().close_all();
  echo.join();
}
BENCHMARK(BM_TcpLoopbackRoundTrip);

void BM_TcpLoopbackDataBandwidth(benchmark::State& state) {
  TcpLinkListener listener;
  const auto ports = listener.ports();
  Result<CosimLink> client{Status{StatusCode::kInternal, "unset"}};
  std::thread connector{[&] { client = connect_tcp_link(ports); }};
  auto server = listener.accept_link();
  connector.join();
  std::thread echo = start_echo(*client.value().data);
  const Bytes frame(static_cast<std::size_t>(state.range(0)), 0xa5);
  auto& ch = *server.value().data;
  for (auto _ : state) {
    (void)ch.send(frame);
    auto back = ch.recv();
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
  server.value().close_all();
  client.value().close_all();
  echo.join();
}
BENCHMARK(BM_TcpLoopbackDataBandwidth)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
