// Parallel-kernel scaling on the widened router workload: N independent
// per-port checksum pipelines (the compute shape of the router case study
// scaled to 16/32/64 ports) feeding one collector through signals — N+1
// islands, so the evaluation phase fans out over the worker pool while the
// collector island serializes behind the signal cut.
//
// Sweep: ports x workers (0 = serial legacy path). Three checks ride on
// the sweep, enforced under --gate:
//   parity    — folded digest and delta count bit-identical at every
//               worker count (the tentpole contract, measured on the bench
//               workload itself);
//   disarmed  — set_parallel(4) then set_parallel(0) must cost under 1%
//               against a never-armed kernel (min over reps, with a small
//               absolute floor for sub-millisecond noise);
//   speedup   — >= 1.5x at 4 workers on the 32-port netlist, checked only
//               when the host actually has >= 4 CPUs (a 1-core container
//               cannot speed anything up; the row is still reported).
//
// Output: BENCH_kernel_parallel.metrics.json.
#include "bench_util.hpp"

#include <algorithm>
#include <thread>

#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"

using namespace vhp;

namespace {

/// One router port modeled as a self-ticking checksum pipeline: every time
/// unit it mixes `rounds` iterations of xorshift into its state (the "body
/// checksum" work the router does per packet) and publishes the digest.
struct PortPipe : sim::Module {
  sim::Signal<u64>& digest;
  sim::Event tick;
  u64 state;
  const int rounds;

  PortPipe(sim::Kernel& k, std::size_t idx, int mix_rounds)
      : Module(k, "port" + std::to_string(idx)),
        digest(make_signal<u64>("digest")),
        tick(k, qualify("tick")),
        state(0x9e3779b97f4a7c15ULL * (idx + 1)),
        rounds(mix_rounds) {
    method("stage", [this] {
      u64 x = state;
      for (int r = 0; r < rounds; ++r) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x *= 0x2545F4914F6CDD1DULL;
      }
      state = x;
      digest.write(x);
      tick.notify_at(1);
    }).sensitive(tick);
    // The method's initialization run at t=0 primes the self-tick.
  }
};

/// Folds every port digest. Sensitive only to the digests' value-changed
/// events (signal-owned, i.e. island cuts), so it is its own island and
/// the N pipelines evaluate fully in parallel ahead of it.
struct Collector : sim::Module {
  sim::Signal<u64>& folded;
  u64 acc = 0;

  Collector(sim::Kernel& k, const std::vector<PortPipe*>& ports)
      : Module(k, "collector"), folded(make_signal<u64>("folded")) {
    auto& fold = method("fold", [this, &ports] {
      u64 v = acc;
      for (std::size_t p = 0; p < ports.size(); ++p) {
        const u64 d = ports[p]->digest.read();
        v ^= (d << (p % 63)) | (d >> (63 - (p % 63)));
      }
      acc = v;
      folded.write(v);
    });
    for (PortPipe* p : ports) fold.sensitive(p->digest.value_changed_event());
    fold.dont_initialize();
  }
};

struct RunOutcome {
  double wall_s = 0;
  u64 folded = 0;
  u64 delta_count = 0;
  u64 islands = 0;
  std::string metrics;
};

/// One measured run. `arm_then_disarm` models the "configured but off"
/// path: the kernel is armed at 4 lanes, immediately disarmed, and must
/// then behave (and cost) like a never-armed serial kernel.
RunOutcome run_netlist(std::size_t ports, unsigned workers, int rounds,
                       sim::SimTime run_time, bool arm_then_disarm = false) {
  sim::Kernel kernel;
  std::vector<std::unique_ptr<PortPipe>> pipes;
  std::vector<PortPipe*> raw;
  for (std::size_t p = 0; p < ports; ++p) {
    pipes.push_back(std::make_unique<PortPipe>(kernel, p, rounds));
    raw.push_back(pipes.back().get());
  }
  Collector collector{kernel, raw};

  if (arm_then_disarm) {
    kernel.set_parallel(4);
    kernel.set_parallel(0);
  } else if (workers > 0) {
    kernel.set_parallel(workers);
  }

  const auto start = std::chrono::steady_clock::now();
  kernel.run_until(run_time);
  const auto end = std::chrono::steady_clock::now();

  RunOutcome r;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  r.folded = collector.folded.read();
  r.delta_count = kernel.delta_count();
  r.islands = kernel.island_count();
  // strformat has no brace escaping, so the JSON skeleton is concatenated.
  const auto stats = kernel.parallel_stats();
  std::string lanes;
  for (std::size_t i = 0; i < stats.lanes.size(); ++i) {
    if (i > 0) lanes += ",";
    lanes += "{" +
             strformat("\"busy_ns\":{},\"islands_run\":{}",
                       stats.lanes[i].busy_ns, stats.lanes[i].islands_run) +
             "}";
  }
  r.metrics = "{" +
              strformat("\"islands\":{},\"parallel_deltas\":{},"
                        "\"repartitions\":{},\"lanes\":[{}]",
                        stats.islands, stats.parallel_deltas,
                        stats.repartitions, lanes) +
              "}";
  return r;
}

RunOutcome min_of(std::size_t ports, unsigned workers, int rounds,
                  sim::SimTime run_time, int reps,
                  bool arm_then_disarm = false) {
  RunOutcome best;
  best.wall_s = 1e100;
  for (int i = 0; i < reps; ++i) {
    RunOutcome one = run_netlist(ports, workers, rounds, run_time,
                                 arm_then_disarm);
    if (one.wall_s < best.wall_s) {
      const double w = one.wall_s;
      best = std::move(one);
      best.wall_s = w;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "parallel kernel scaling: per-port pipelines x evaluation lanes",
      "deterministic parallel delta-cycle kernel (tentpole acceptance)");
  const bool quick = bench::quick_mode(argc, argv);
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") gate = true;
  }

  const int reps = quick ? 2 : 3;
  const int rounds = quick ? 400 : 1500;
  const sim::SimTime run_time = quick ? 1000 : 3000;
  const std::vector<std::size_t> port_counts =
      quick ? std::vector<std::size_t>{16, 32}
            : std::vector<std::size_t>{16, 32, 64};
  const std::vector<unsigned> worker_counts{0, 1, 2, 4, 8};
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("host cores: %u   reps: %d   mix rounds: %d   sim time: %llu\n\n",
              cores, reps, rounds,
              static_cast<unsigned long long>(run_time));
  std::printf("%6s %8s %8s %12s %10s %10s\n", "ports", "workers", "islands",
              "wall_min_s", "speedup", "parity");

  bool parity_ok = true;
  double speedup_at_4_on_32 = 0.0;
  std::vector<bench::JsonRow> rows;

  for (std::size_t ports : port_counts) {
    RunOutcome serial;
    for (unsigned workers : worker_counts) {
      const RunOutcome out =
          min_of(ports, workers, rounds, run_time, reps);
      const bool match = workers == 0 ||
                         (out.folded == serial.folded &&
                          out.delta_count == serial.delta_count);
      if (workers == 0) serial = out;
      if (!match) parity_ok = false;
      const double speedup =
          out.wall_s > 0 ? serial.wall_s / out.wall_s : 0.0;
      if (ports == 32 && workers == 4) speedup_at_4_on_32 = speedup;
      std::printf("%6zu %8u %8llu %12.4f %9.2fx %10s\n", ports, workers,
                  static_cast<unsigned long long>(out.islands), out.wall_s,
                  speedup, match ? "ok" : "DIVERGED");

      bench::JsonRow row;
      row.params = strformat(
          "\"ports\":{},\"workers\":{},\"islands\":{},\"rounds\":{},"
          "\"sim_time\":{},\"folded\":{},\"delta_count\":{},\"speedup\":{},"
          "\"parity\":{}",
          ports, workers, out.islands, rounds, run_time, out.folded,
          out.delta_count, speedup, match ? "true" : "false");
      row.wall_seconds = out.wall_s;
      row.metrics_json = out.metrics;
      rows.push_back(std::move(row));
    }
  }

  // Disarmed overhead on the 32-port netlist: armed-then-disarmed vs a
  // never-armed kernel, min over reps, 1% budget with an absolute floor.
  const RunOutcome base = min_of(32, 0, rounds, run_time, reps);
  const RunOutcome disarmed =
      min_of(32, 0, rounds, run_time, reps, /*arm_then_disarm=*/true);
  const double disarmed_pct =
      base.wall_s > 0 ? (disarmed.wall_s / base.wall_s - 1.0) * 100.0 : 0.0;
  const bool disarmed_ok =
      disarmed.wall_s <= base.wall_s * 1.01 + 0.005 &&
      disarmed.folded == base.folded &&
      disarmed.delta_count == base.delta_count;
  std::printf("\ndisarmed overhead (armed at 4, then workers=0): %+.2f%%\n",
              disarmed_pct);

  {
    bench::JsonRow row;
    row.params = strformat(
        "\"config\":\"disarmed\",\"ports\":32,\"overhead_pct\":{},"
        "\"baseline_wall_s\":{},\"disarmed_wall_s\":{}",
        disarmed_pct, base.wall_s, disarmed.wall_s);
    row.wall_seconds = disarmed.wall_s;
    row.metrics_json = disarmed.metrics;
    rows.push_back(std::move(row));
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_kernel_parallel.metrics.json");
  if (bench::write_bench_json(path, "kernel_parallel", rows)) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 2;
  }

  int failures = 0;
  if (!parity_ok) {
    std::fprintf(stderr, "FAIL: parallel run diverged from serial\n");
    ++failures;
  }
  if (!disarmed_ok) {
    std::fprintf(stderr,
                 "FAIL: disarmed parallel config costs %.2f%% (budget 1%%)\n",
                 disarmed_pct);
    ++failures;
  }
  if (cores >= 4) {
    if (speedup_at_4_on_32 < 1.5) {
      std::fprintf(stderr,
                   "FAIL: %.2fx at 4 workers on 32 ports (need >= 1.5x)\n",
                   speedup_at_4_on_32);
      ++failures;
    } else {
      std::printf("speedup at 4 workers on 32 ports: %.2fx (>= 1.5x)\n",
                  speedup_at_4_on_32);
    }
  } else {
    std::printf(
        "speedup gate skipped: host has %u core(s); %.2fx measured is the "
        "single-core serialization floor, not a scaling result\n",
        cores, speedup_at_4_on_32);
  }
  return gate && failures > 0 ? 1 : 0;
}
