// Micro-benchmarks of the discrete-event simulation kernel (substrate
// characterization + ablation data for DESIGN.md §4).
#include <benchmark/benchmark.h>

#include "vhp/common/types.hpp"
#include "vhp/sim/fifo.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"

namespace {

using namespace vhp;

struct Bench : sim::Module {
  explicit Bench(sim::Kernel& k) : Module(k, "bench") {}
  using Module::make_bool_signal;
  using Module::make_signal;
  using Module::method;
  using Module::thread;
};

void BM_TimedEventDispatch(benchmark::State& state) {
  sim::Kernel k;
  Bench tb{k};
  sim::Event ev{k, "ev"};
  u64 count = 0;
  tb.method("m", [&] {
      ++count;
      ev.notify_at(1);
    })
      .sensitive(ev);
  for (auto _ : state) {
    k.run(1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(count));
}
BENCHMARK(BM_TimedEventDispatch);

void BM_DeltaCycleWithSignal(benchmark::State& state) {
  sim::Kernel k;
  Bench tb{k};
  auto& sig = tb.make_signal<u32>("s", 0);
  u32 v = 0;
  for (auto _ : state) {
    sig.write(++v);
    k.run(1);
    benchmark::DoNotOptimize(sig.read());
  }
}
BENCHMARK(BM_DeltaCycleWithSignal);

void BM_ClockedMethod(benchmark::State& state) {
  // One posedge-sensitive method, cost per simulated clock cycle.
  sim::Kernel k;
  sim::Clock clk{k, "clk", 2};
  Bench tb{k};
  auto& count = tb.make_signal<u64>("c", 0);
  tb.method("ff", [&] { count.write(count.read() + 1); })
      .sensitive(clk.posedge_event())
      .dont_initialize();
  for (auto _ : state) {
    k.run(2);  // one full clock cycle
  }
  state.SetItemsProcessed(static_cast<int64_t>(count.read()));
}
BENCHMARK(BM_ClockedMethod);

void BM_ClockedFanout(benchmark::State& state) {
  // N methods on the same clock: scheduler fan-out cost.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Kernel k;
  sim::Clock clk{k, "clk", 2};
  Bench tb{k};
  u64 sink = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tb.method("m" + std::to_string(i), [&] { ++sink; })
        .sensitive(clk.posedge_event())
        .dont_initialize();
  }
  for (auto _ : state) {
    k.run(2);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(sink));
}
BENCHMARK(BM_ClockedFanout)->Arg(1)->Arg(16)->Arg(256);

void BM_ThreadProcessWaitResume(benchmark::State& state) {
  // Fiber suspend/resume through the kernel: the SC_THREAD context switch.
  sim::Kernel k;
  Bench tb{k};
  u64 wakes = 0;
  tb.thread("t", [&] {
    for (;;) {
      sim::wait(1);
      ++wakes;
    }
  });
  for (auto _ : state) {
    k.run(1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(wakes));
}
BENCHMARK(BM_ThreadProcessWaitResume);

void BM_FifoThroughput(benchmark::State& state) {
  sim::Kernel k;
  Bench tb{k};
  sim::Fifo<u64> fifo{k, "f", 64};
  u64 consumed = 0;
  tb.thread("producer", [&] {
    u64 i = 0;
    for (;;) fifo.write(i++);
  });
  tb.thread("consumer", [&] {
    for (;;) {
      benchmark::DoNotOptimize(fifo.read());
      ++consumed;
      // Advance time once per item: a pure delta ping-pong would livelock
      // the timestep (as it would in SystemC).
      sim::wait(1);
    }
  });
  for (auto _ : state) {
    k.run(1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(consumed));
}
BENCHMARK(BM_FifoThroughput);

}  // namespace

BENCHMARK_MAIN();
