// Ablation — software timing model: the same co-simulated workload with the
// board software modeled two ways:
//   (a) a C++ application thread with consume() cost annotations (the
//       paper's implicit model: the real board executes native code), and
//   (b) RV32IM machine code on the instruction-set simulator, every retired
//       instruction charged to the budget (the authors' companion DATE'04
//       "native ISS integration" refinement).
// Reports host wall time and board ticks per request — the classic
// speed-vs-timing-fidelity tradeoff of ISS-based co-simulation.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/runner.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

namespace {

using namespace vhp;
using namespace vhp::bench;

/// The device under design (same for both variants): value in, value+1 out,
/// interrupt on completion.
struct EchoDevice : sim::Module {
  cosim::DriverIn<u32> in;
  cosim::DriverOut<u32> out;
  sim::BoolSignal& irq_line;

  EchoDevice(cosim::CosimKernel& hw)
      : Module(hw.kernel(), "echo"),
        in(hw.kernel(), hw.registry(), "echo.in", 0x0),
        out(hw.registry(), "echo.out", 0x4),
        irq_line(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    method("process",
           [this] {
             out.write(in.read() + 1);
             irq_line.write(true);
           })
        .sensitive(in.data_written_event())
        .dont_initialize();
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq_line.posedge_event());
        sim::wait(2 * period);
        irq_line.write(false);
      }
    });
    hw.watch_interrupt(irq_line, board::Board::kDeviceVector);
  }
};

struct Outcome {
  double wall_seconds;
  u64 board_ticks;
  u64 rounds;
};

Outcome run_annotated(u64 rounds, u64 t_sync) {
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kTcp;
  cfg.cosim.t_sync = t_sync;
  cfg.board.rtos.cycles_per_tick = 10;
  cosim::CosimSession session{cfg};
  EchoDevice echo{session.hw()};
  auto& board = session.board();
  rtos::Semaphore ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { ready.post(); });
  u64 done = 0;
  board.spawn_app("app", 8, [&] {
    for (u64 i = 0; i < rounds; ++i) {
      (void)board.dev_write(0x0, cosim::DriverCodec<u32>::encode(
                                     static_cast<u32>(i)));
      ready.wait();
      (void)board.dev_read(0x4, 4);
      board.kernel().consume(60);  // hand-estimated per-round cost
      ++done;
    }
  });
  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  for (int chunk = 0; chunk < 20000 && done < rounds; ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  session.finish();
  return {secs, session.board().kernel().tick_count().value(), done};
}

Outcome run_firmware(u64 rounds, u64 t_sync) {
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kTcp;
  cfg.cosim.t_sync = t_sync;
  cfg.board.rtos.cycles_per_tick = 10;
  cosim::CosimSession session{cfg};
  EchoDevice echo{session.hw()};

  sim::Memory ram{"ram"};
  iss::Asm a;
  const auto loop = a.make_label();
  a.li(5, 0xf0000000u);
  a.li(6, static_cast<u32>(rounds));
  a.addi(7, 0, 0);
  a.bind(loop);
  a.sw(7, 5, 0x0);   // request = i
  a.addi(17, 0, 1);  // wfi
  a.ecall();
  a.lw(28, 5, 0x4);  // response
  a.addi(7, 7, 1);
  a.blt(7, 6, loop);
  a.addi(17, 0, 0);  // exit
  a.ecall();
  a.load_into(ram, 0x1000);

  iss::IssRunnerConfig rc;
  rc.entry_pc = 0x1000;
  rc.mmio_access_cost = 10;
  iss::IssRunner runner{session.board(), ram, rc};
  session.board().attach_device_dsr([&](u32) { runner.post_irq(); });

  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  for (int chunk = 0; chunk < 20000 && !runner.exited(); ++chunk) {
    if (!session.run_cycles(100).ok()) break;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  session.finish();
  return {secs, session.board().kernel().tick_count().value(),
          runner.exited() ? rounds : 0};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_header("ABL: software timing model — annotations vs ISS",
               "ablation of the CPU-model substitution (companion DATE'04 "
               "direction)");

  const u64 rounds = quick ? 10 : 50;
  std::printf("%8s %16s %14s %12s %14s\n", "Tsync", "model", "wall time",
              "ticks", "ticks/round");
  for (u64 ts : {u64{100}, u64{1000}}) {
    const Outcome ann = run_annotated(rounds, ts);
    const Outcome fw = run_firmware(rounds, ts);
    std::printf("%8llu %16s %13.4fs %12llu %14.1f\n",
                (unsigned long long)ts, "annotated C++", ann.wall_seconds,
                (unsigned long long)ann.board_ticks,
                static_cast<double>(ann.board_ticks) /
                    static_cast<double>(ann.rounds ? ann.rounds : 1));
    std::printf("%8llu %16s %13.4fs %12llu %14.1f\n",
                (unsigned long long)ts, "RV32 firmware", fw.wall_seconds,
                (unsigned long long)fw.board_ticks,
                static_cast<double>(fw.board_ticks) /
                    static_cast<double>(fw.rounds ? fw.rounds : 1));
  }
  std::printf("\nshape: both variants obey the same protocol; the ISS costs "
              "more host time per round but derives\nthe board ticks from "
              "the instruction stream instead of a hand estimate\n");
  return 0;
}
