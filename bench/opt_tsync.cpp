// Section 6 closing remark — choosing T_sync: "because of the opposite
// dependencies of the overhead and of the accuracy on T_sync, there is a
// value of T_sync which maximizes the product (accuracy x overhead)":
// we sweep T_sync once, compute accuracy and speedup (inverse overhead)
// from the same runs, and report the optimum of their product.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("OPT: optimal T_sync maximizing accuracy x speed",
               "Section 6, closing remark (uses Figures 6 and 7 together)");

  const u64 n = 40;
  const std::vector<u64> t_syncs =
      quick ? std::vector<u64>{10, 1000, 10000}
            : std::vector<u64>{10, 36, 100, 360, 1000, 2000, 5000, 10000,
                               20000};

  // Reference: the slowest (tightest) configuration in the sweep.
  double slowest = 0;
  struct Row {
    u64 t_sync;
    double seconds;
    double accuracy;
  };
  std::vector<Row> rows;
  std::vector<JsonRow> json_rows;
  for (u64 ts : t_syncs) {
    ExperimentParams p;
    p.n_packets = n;
    p.t_sync = ts;
    p.gap_cycles = 8000;
    p.buffer_depth = 4;
    p.max_cycles = 1500000;
    p.observability = obs_mode(argc, argv);
    auto r = run_router_experiment(p);
    rows.push_back({ts, r.wall_seconds, r.accuracy()});
    json_rows.push_back(JsonRow{
        strformat("\"n\":{},\"t_sync\":{},\"accuracy\":{}", n, ts,
                  r.accuracy()),
        r.wall_seconds, std::move(r.metrics_json)});
    slowest = std::max(slowest, r.wall_seconds);
  }

  std::printf("%10s %12s %10s %10s %16s\n", "Tsync", "time", "speedup",
              "accuracy", "accuracy*speedup");
  double best_score = -1;
  u64 best_ts = 0;
  for (const auto& row : rows) {
    const double speedup = slowest / row.seconds;
    const double score = row.accuracy * speedup;
    if (score > best_score) {
      best_score = score;
      best_ts = row.t_sync;
    }
    std::printf("%10llu %11.4fs %9.1fx %9.1f%% %16.1f\n",
                (unsigned long long)row.t_sync, row.seconds, speedup,
                100.0 * row.accuracy, score);
  }
  std::printf("\noptimal T_sync in this sweep: %llu (score %.1f)\n",
              (unsigned long long)best_ts, best_score);
  std::printf("paper shape: interior optimum — overhead favours large "
              "T_sync, accuracy favours small\n");
  const std::string json_path =
      json_output_path(argc, argv, "opt_tsync.metrics.json");
  if (write_bench_json(json_path, "opt_tsync", json_rows)) {
    std::printf("wrote %s (per-run vhp::obs metrics)\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
  }
  return 0;
}
