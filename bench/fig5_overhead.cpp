// Figure 5 — "Co-Simulation Overhead": overall wall time as a function of
// the number of exchanged packets N, one curve per T_sync.
//
// Paper's observations to reproduce:
//   (i)  time grows linearly with N for every T_sync;
//   (ii) the ratio between two curves is roughly constant in N (the paper
//        quotes 241s/32s ~ 8 between T_sync=1000 and 10000 at N=100).
//
// Setup: the simulated work is held exactly proportional to N
// (fixed_cycles = N/4 producers x gap cycles), and the CLOCK round trip is
// delayed by an emulated 5 ms one way — the order of a real exchange over the
// paper's 100 Mbit Ethernet + eCos freeze/thaw path. Raw-loopback numbers
// (no padding) are what Figure 6 reports.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("FIG5: co-simulation wall time vs exchanged packets N",
               "Figure 5 (Section 6.1)");
  std::printf("(emulated link: 5 ms one way, modeling the paper's "
              "Ethernet/board path)\n\n");

  const std::vector<u64> t_syncs = {1000, 3000, 10000};
  const std::vector<u64> ns = quick ? std::vector<u64>{20, 40}
                                    : std::vector<u64>{20, 40, 60, 80, 100};
  const u64 gap = 2000;  // cycles between packets per producer

  std::printf("%8s", "N");
  for (u64 ts : t_syncs) std::printf("  Tsync=%-6llu", (unsigned long long)ts);
  std::printf("   t(1000)/t(10000)\n");

  std::vector<std::vector<double>> table(ns.size());
  std::vector<JsonRow> rows;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::printf("%8llu", (unsigned long long)ns[i]);
    for (u64 ts : t_syncs) {
      ExperimentParams p;
      p.n_packets = ns[i];
      p.t_sync = ts;
      p.gap_cycles = gap;
      p.fixed_cycles = (ns[i] / 4) * gap;  // exactly proportional to N
      p.link_latency_us = 5000;
      p.observability = obs_mode(argc, argv);
      auto r = run_router_experiment(p);
      table[i].push_back(r.wall_seconds);
      rows.push_back(JsonRow{
          strformat("\"n\":{},\"t_sync\":{}", ns[i], ts), r.wall_seconds,
          std::move(r.metrics_json)});
      std::printf("  %10.4fs ", r.wall_seconds);
      std::fflush(stdout);
    }
    std::printf("  %8.2f\n", table[i][0] / table[i][2]);
  }
  const std::string json_path =
      json_output_path(argc, argv, "fig5_overhead.metrics.json");
  if (write_bench_json(json_path, "fig5_overhead", rows)) {
    std::printf("\nwrote %s (per-run vhp::obs metrics)\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "\nerror: could not write %s\n", json_path.c_str());
  }

  // Linearity check: time(N)/N should be roughly constant per curve.
  std::printf("\nlinearity (time per packet, ms):\n%8s", "N");
  for (u64 ts : t_syncs) std::printf("  Tsync=%-6llu", (unsigned long long)ts);
  std::printf("\n");
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::printf("%8llu", (unsigned long long)ns[i]);
    for (std::size_t j = 0; j < t_syncs.size(); ++j) {
      std::printf("  %10.3f  ",
                  1e3 * table[i][j] / static_cast<double>(ns[i]));
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: linear in N; constant ratio between curves "
              "(paper: ~8x between Tsync=1000 and 10000)\n");
  return 0;
}
