// Ablation — link latency (DESIGN.md §4, decisions 2/5 and the explanation
// of the Figure 6 magnitude gap): the per-cycle-sync overhead ratio is
// RTT-bound, so sweeping the emulated one-way link latency shows how the
// paper's ~1000x arises from their ms-class Ethernet/board path while raw
// loopback yields a few hundred x.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("ABL: overhead ratio vs emulated link latency",
               "ablation of the transport substitution (explains Fig. 6 "
               "magnitudes)");

  const u64 n = 20;
  const std::vector<u64> latencies_us =
      quick ? std::vector<u64>{0, 200} : std::vector<u64>{0, 50, 200, 1000};
  const std::vector<u64> t_syncs = {10, 100, 1000};

  // Shared untimed baseline per latency (latency barely matters untimed:
  // few messages fly).
  std::printf("%14s %12s", "latency(1-way)", "untimed");
  for (u64 ts : t_syncs) std::printf("   Tsync=%-5llu", (unsigned long long)ts);
  std::printf("\n");

  for (u64 lat : latencies_us) {
    ExperimentParams base;
    base.n_packets = n;
    base.t_sync = std::nullopt;
    base.fixed_cycles = base.traffic_span_cycles();
    base.link_latency_us = lat;
    double untimed = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      untimed = std::min(untimed, run_router_experiment(base).wall_seconds);
    }
    std::printf("%11lluus %11.4fs", (unsigned long long)lat, untimed);
    for (u64 ts : t_syncs) {
      ExperimentParams p = base;
      p.t_sync = ts;
      auto r = run_router_experiment(p);
      std::printf("   %9.0fx ", r.wall_seconds / untimed);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nshape: the tight-sync overhead ratio grows with link "
              "latency — the paper's 1000x needs a physical link\n");
  return 0;
}
