// Ablation — DATA-port polling granularity (DESIGN.md §4): the paper's
// driver_simulate checks the data port every simulation cycle; that
// non-blocking socket check is the dominant per-cycle cost of an otherwise
// idle co-simulation. Amortizing it over k cycles trades delivery
// granularity for speed. This bench measures the wall time of a fixed-work
// run vs the polling interval, and reports the accuracy of the run-to-
// completion variant to show the fidelity cost.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "vhp/router/checksum_app.hpp"

namespace {

using namespace vhp;
using namespace vhp::bench;

/// Like run_router_experiment but with a custom data_poll_interval.
ExperimentResult run_with_poll_interval(u64 poll_interval, u64 t_sync,
                                        std::optional<u64> fixed_cycles) {
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kTcp;
  cfg.cosim.t_sync = t_sync;
  cfg.cosim.data_poll_interval = poll_interval;
  cfg.board.rtos.cycles_per_tick = 10;
  cosim::CosimSession session{cfg};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 10;
  tb_cfg.gap_cycles = 1000;
  router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::ChecksumApp app{session.board(), app_cfg};
  session.start_board();

  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  const u64 limit = fixed_cycles.value_or(400000);
  while (cycles < limit && (fixed_cycles.has_value() || !tb.traffic_done())) {
    if (!session.run_cycles(200).ok()) break;
    cycles += 200;
  }
  const auto end = std::chrono::steady_clock::now();
  session.finish();

  ExperimentResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.cycles_run = cycles;
  r.emitted = tb.total_emitted();
  r.forwarded = tb.router().stats().forwarded;
  r.drained = tb.traffic_done();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);

  print_header("ABL: DATA-port polling interval",
               "ablation of driver_simulate's per-cycle data check");

  const std::vector<u64> intervals =
      quick ? std::vector<u64>{1, 16} : std::vector<u64>{1, 4, 16, 64};
  constexpr u64 kFixedCycles = 20000;

  std::printf("%10s %14s %12s %12s\n", "poll every", "fixed-work time",
              "accuracy", "drained");
  for (u64 k : intervals) {
    const auto timed = run_with_poll_interval(k, 100, kFixedCycles);
    const auto full = run_with_poll_interval(k, 100, std::nullopt);
    std::printf("%10llu %13.4fs %11.1f%% %12s\n", (unsigned long long)k,
                timed.wall_seconds, 100.0 * full.accuracy(),
                full.drained ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\nshape: coarser polling shaves fixed-work wall time but "
              "must never be allowed to break protocol liveness\n");
  return 0;
}
