// Spot-check table — the concrete numbers quoted in the running text of
// Section 6, compared against our measurements:
//   * "simulating the transmission of N=100 packets takes 241 seconds for
//     T_sync=1000 and 32 seconds for T_sync=10000, corresponding to a ratio
//     of 241/32 ~ 8" -> measured with the Figure 5 setup (emulated 10 ms
//     link RTT (5 ms each way) modeling the paper's Ethernet/board link);
//   * "imposing synchronization at each simulation cycle yields a simulation
//     time which is 1000x the time required for an untimed simulation"
//     -> measured on raw loopback (our transport; same shape, smaller
//     RTT/cycle-cost ratio than the paper's physical link);
//   * "this overhead decreases to 100x if we synchronize once every 360
//     cycles" -> our raw-loopback ratio at 360;
//   * "the 100% percentage of forwarded packets is maintained up to a value
//     of T_sync around 5000" -> our measured knee (Figure 7 setup).
//
// Absolute values necessarily differ (their testbed: SCM220 board + real
// Ethernet; ours: virtual board + loopback). The reproduction target is the
// ordering and the orders of magnitude.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);
  const u64 n = quick ? 20 : 100;

  print_header("T1: Section 6 spot checks (paper text vs measured)",
               "Section 6 running text");

  // --- ratio t(1000)/t(10000), Figure 5 setup (emulated 10 ms link) ---
  auto fig5_run = [&](u64 ts) {
    ExperimentParams p;
    p.n_packets = n;
    p.t_sync = ts;
    p.gap_cycles = 2000;
    p.fixed_cycles = (n / 4) * 2000;
    p.link_latency_us = 5000;
    return run_router_experiment(p);
  };
  const auto r1000 = fig5_run(1000);
  const auto r10000 = fig5_run(10000);

  // --- overhead ratios vs untimed, raw loopback (Figure 6 setup) ---
  auto fig6_run = [&](std::optional<u64> ts) {
    ExperimentParams p;
    p.n_packets = n;
    p.t_sync = ts;
    p.fixed_cycles = p.traffic_span_cycles();
    return run_router_experiment(p);
  };
  double untimed = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    untimed = std::min(untimed, fig6_run(std::nullopt).wall_seconds);
  }
  const auto r1 = fig6_run(1);
  const auto r360 = fig6_run(360);

  std::printf("%-46s %14s %14s\n", "quantity", "paper", "measured");
  std::printf("%-46s %14s %14.2f\n", "t(Tsync=1000) / t(Tsync=10000), N=100",
              "~8", r1000.wall_seconds / r10000.wall_seconds);
  std::printf("%-46s %14s %13.0fx\n", "overhead ratio at per-cycle sync",
              "~1000x", r1.wall_seconds / untimed);
  std::printf("%-46s %14s %13.1fx\n", "overhead ratio at Tsync=360", "~100x",
              r360.wall_seconds / untimed);

  // --- accuracy knee (Figure 7 setup) ---
  u64 knee = 0;
  for (u64 ts : std::vector<u64>{100, 500, 1000, 2000, 5000, 10000, 20000}) {
    ExperimentParams p;
    p.n_packets = n;
    p.t_sync = ts;
    p.gap_cycles = 8000;
    p.buffer_depth = 4;
    p.max_cycles = 1500000;
    auto r = run_router_experiment(p);
    if (r.accuracy() >= 0.999) knee = ts;
  }
  std::printf("%-46s %14s %14llu\n", "accuracy knee (largest 100% Tsync)",
              "~5000", (unsigned long long)knee);
  std::printf("\nnote: absolute overhead ratios scale with RTT/cycle-cost; "
              "the paper's physical link (ms-class RTT)\nsits ~2 orders "
              "above loopback, hence ~1000x there vs our raw-loopback "
              "value. Orderings and decay shape match.\n");
  return 0;
}
