// Figure 7 — "Simulation Accuracy vs T_sync": percentage of packets the
// system handles (forwards) as synchronization loosens.
//
// Paper's observations to reproduce:
//   (i)   100% accuracy while the coupling is tight;
//   (ii)  a knee beyond which accuracy degrades (paper: around T_sync~5000
//         for their parameters);
//   (iii) only marginal dependence on N, with slightly more loss at the
//         larger N ("dropped packets tend to increase when there is more
//         work to be done").
//
// The loss mechanism is the paper's: with long sync quanta the checksum
// verdict round trip is quantized to sync boundaries, the router stalls,
// its bounded input buffers overflow, packets drop.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("FIG7: accuracy (% packets forwarded) vs T_sync",
               "Figure 7 (Section 6.2)");

  const std::vector<u64> ns = quick ? std::vector<u64>{40}
                                    : std::vector<u64>{40, 100};
  const std::vector<u64> t_syncs =
      quick ? std::vector<u64>{10, 1000, 10000}
            : std::vector<u64>{10, 100, 500, 1000, 2000, 5000, 10000, 20000};

  // Loaded-but-feasible configuration: at tight sync the checksum service
  // (~50 board cycles/packet) comfortably beats the aggregate arrival rate
  // (one packet per ~2000 cycles), so accuracy starts at 100%; as T_sync
  // approaches and passes the interarrival time, the serialized verdict
  // path (one round trip per quantum) saturates and the buffers overflow.
  const u64 gap = 8000;
  const std::size_t depth = 4;

  std::printf("%10s", "Tsync");
  for (u64 n : ns) {
    std::printf("   acc(N=%-4llu)  drops", (unsigned long long)n);
  }
  std::printf("\n");

  for (u64 ts : t_syncs) {
    std::printf("%10llu", (unsigned long long)ts);
    for (u64 n : ns) {
      ExperimentParams p;
      p.n_packets = n;
      p.t_sync = ts;
      p.gap_cycles = gap;
      p.buffer_depth = depth;
      p.max_cycles = 1500000;
      auto r = run_router_experiment(p);
      std::printf("   %9.1f%%  %5llu", 100.0 * r.accuracy(),
                  (unsigned long long)r.dropped_input_full);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: 100%% up to a knee, degrading beyond; marginal "
              "dependence on N\n");
  return 0;
}
