// Fault-layer overhead: the zero-hop acceptance check for vhp::fault.
//
// Three configurations of the same fixed-cycle router co-simulation:
//   baseline  — no fault configuration at all
//   disarmed  — an empty FaultPlan + recovery disabled in the config; both
//               must compile away (no decorator inserted, no extra hop)
//   armed     — a seeded drop plan with the recovery layer on, as a
//               reference point for what real chaos costs
//
// The gate is disarmed-vs-baseline: under 1% wall-time overhead, measured
// on the min over several repetitions (min is the noise-robust statistic
// for "what does this configuration cost at best"). The armed row is
// informational and not gated.
//
// Output: BENCH_fault_overhead.metrics.json — one row per configuration
// plus the computed disarmed overhead percentage.
#include "bench_util.hpp"

#include <algorithm>

#include "vhp/fault/plan.hpp"

using namespace vhp;

namespace {

struct ConfigResult {
  double wall_min_s = 0;
  double wall_mean_s = 0;
  bench::ExperimentResult last;  // one representative run's counters
};

ConfigResult run_config(const bench::ExperimentParams& params, int reps) {
  ConfigResult r;
  r.wall_min_s = 1e100;
  for (int i = 0; i < reps; ++i) {
    bench::ExperimentResult one = bench::run_router_experiment(params);
    r.wall_min_s = std::min(r.wall_min_s, one.wall_seconds);
    r.wall_mean_s += one.wall_seconds / reps;
    r.last = std::move(one);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "fault layer overhead: disarmed config vs plain session vs armed chaos",
      "vhp::fault acceptance: a disarmed fault layer costs under 1%");
  const bool quick = bench::quick_mode(argc, argv);
  const int reps = quick ? 3 : 5;

  bench::ExperimentParams params;
  params.n_packets = 40;
  params.t_sync = 1000;
  params.gap_cycles = 400;
  params.fixed_cycles = quick ? 60000 : 120000;
  params.transport = cosim::TransportKind::kInProc;  // minimal noise floor

  const ConfigResult baseline = run_config(params, reps);

  // Disarmed: the fault fields are *set* but carry no rules and recovery
  // stays off — the session must not insert a single decorator for this.
  bench::ExperimentParams disarmed = params;
  disarmed.fault_plan = fault::FaultPlan{};
  disarmed.recovery = fault::RecoveryConfig{};
  const ConfigResult zero_hop = run_config(disarmed, reps);

  bench::ExperimentParams armed = params;
  armed.fault_plan.seed = 11;
  {
    fault::FaultRule rule;
    rule.kind = fault::FaultKind::kDrop;
    rule.probability = 0.02;
    armed.fault_plan.add(rule);
  }
  armed.recovery.enabled = true;
  armed.recovery.rto = std::chrono::milliseconds{2};
  armed.recovery.rto_max = std::chrono::milliseconds{50};
  const ConfigResult chaos = run_config(armed, reps);

  const double overhead_pct =
      baseline.wall_min_s > 0
          ? (zero_hop.wall_min_s / baseline.wall_min_s - 1.0) * 100.0
          : 0.0;
  const double armed_pct =
      baseline.wall_min_s > 0
          ? (chaos.wall_min_s / baseline.wall_min_s - 1.0) * 100.0
          : 0.0;

  std::printf("%10s %12s %12s %10s\n", "config", "wall_min_s", "wall_mean_s",
              "vs_base");
  std::printf("%10s %12.4f %12.4f %9s\n", "baseline", baseline.wall_min_s,
              baseline.wall_mean_s, "-");
  std::printf("%10s %12.4f %12.4f %+9.2f%%\n", "disarmed", zero_hop.wall_min_s,
              zero_hop.wall_mean_s, overhead_pct);
  std::printf("%10s %12.4f %12.4f %+9.2f%%\n", "armed", chaos.wall_min_s,
              chaos.wall_mean_s, armed_pct);

  std::vector<bench::JsonRow> rows;
  const struct {
    const char* name;
    const ConfigResult* r;
    double pct;
  } table[] = {{"baseline", &baseline, 0.0},
               {"disarmed", &zero_hop, overhead_pct},
               {"armed", &chaos, armed_pct}};
  for (const auto& entry : table) {
    bench::JsonRow row;
    row.params = strformat(
        "\"config\":\"{}\",\"reps\":{},\"fixed_cycles\":{},"
        "\"wall_min_s\":{},\"wall_mean_s\":{},\"overhead_pct\":{},"
        "\"forwarded\":{},\"syncs\":{}",
        entry.name, reps, *params.fixed_cycles, entry.r->wall_min_s,
        entry.r->wall_mean_s, entry.pct, entry.r->last.forwarded,
        entry.r->last.syncs);
    row.wall_seconds = entry.r->wall_min_s;
    row.metrics_json = entry.r->last.metrics_json;
    rows.push_back(std::move(row));
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_fault_overhead.metrics.json");
  if (bench::write_bench_json(path, "fault_overhead", rows)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }

  if (overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed fault layer costs %.2f%% (budget 1%%)\n",
                 overhead_pct);
    return 1;
  }
  std::printf("disarmed overhead %.2f%% — within the 1%% budget\n",
              overhead_pct);
  return 0;
}
