// Micro-benchmarks of the RTOS substrate: context switches, primitives,
// tick processing, and SMP dispatch (ablation data for DESIGN.md §4 and
// §13 — fibers vs anything heavier would show up directly in the yield
// ping-pong number; the smp4 row prices the per-core sweep).
//
// Output: BENCH_micro_rtos.metrics.json — one row per workload with host
// operations per second, so a trajectory of this file shows scheduler-path
// drift over time.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/mailbox.hpp"
#include "vhp/rtos/sync.hpp"

using namespace vhp;
using rtos::Kernel;
using rtos::KernelConfig;

namespace {

KernelConfig cfg(u32 cores = 1) {
  KernelConfig c;
  c.cycles_per_tick = 1000;
  c.cores = cores;
  return c;
}

/// Two equal-priority threads yielding to each other: one op per switch.
/// On an SMP kernel each core gets its own ping-pong pair, splitting the
/// op count; the per-core sweep dispatch cost lands in every switch.
double yield_pingpong(u64 ops, u32 cores) {
  Kernel k{cfg(cores)};
  const u64 per_core = ops / cores;
  std::vector<u64> switches(cores, 0);
  for (u32 core = 0; core < cores; ++core) {
    for (int t = 0; t < 2; ++t) {
      auto& th = k.spawn("t" + std::to_string(core) + "-" + std::to_string(t),
                         5, [&k, &switches, core, per_core] {
                           while (switches[core] < per_core) {
                             ++switches[core];
                             k.yield();
                           }
                         });
      if (cores > 1) th.set_affinity(static_cast<int>(core));
    }
  }
  const auto start = std::chrono::steady_clock::now();
  k.run(true);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double semaphore_pingpong(u64 ops) {
  Kernel k{cfg()};
  rtos::Semaphore a{k, 0};
  rtos::Semaphore b{k, 0};
  k.spawn("ping", 5, [&, ops] {
    for (u64 i = 0; i < ops; ++i) {
      a.post();
      b.wait();
    }
  });
  k.spawn("pong", 5, [&, ops] {
    for (u64 i = 0; i < ops; ++i) {
      a.wait();
      b.post();
    }
  });
  const auto start = std::chrono::steady_clock::now();
  k.run(true);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double mailbox_throughput(u64 ops) {
  Kernel k{cfg()};
  rtos::Mailbox<u64> box{k, 16};
  k.spawn("producer", 5, [&, ops] {
    for (u64 i = 0; i < ops; ++i) box.put(i);
  });
  u64 sink = 0;
  k.spawn("consumer", 5, [&, ops] {
    for (u64 i = 0; i < ops; ++i) sink += box.get();
  });
  const auto start = std::chrono::steady_clock::now();
  k.run(true);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return sink == ops * (ops - 1) / 2 ? s : -1.0;
}

/// Cost of the timer-tick path (RTC advance + timeslice accounting): a
/// tick per consumed cycle, the worst case.
double tick_processing(u64 ops) {
  KernelConfig c;
  c.cycles_per_tick = 1;
  Kernel k{c};
  k.spawn("worker", 5, [&k, ops] { k.consume(ops); });
  const auto start = std::chrono::steady_clock::now();
  k.run(true);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double alarm_firing(u64 ops) {
  rtos::Counter c{"c"};
  u64 fired = 0;
  rtos::Alarm a{c, [&](rtos::Alarm&, u64) { ++fired; }};
  a.arm_at(1, 1);  // every count
  const auto start = std::chrono::steady_clock::now();
  c.advance(ops);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return fired == ops ? s : -1.0;
}

double interrupt_dispatch(u64 ops) {
  Kernel k{cfg()};
  u64 handled = 0;
  k.interrupts().attach(
      1, rtos::InterruptHandler{[&](u32) {
                                  ++handled;
                                  return rtos::IsrResult::kHandled;
                                },
                                nullptr});
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < ops; ++i) k.interrupts().raise(1);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return handled == ops ? s : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "RTOS substrate speed: switches, primitives, ticks, SMP dispatch",
      "scheduler-path cost ablation, DESIGN.md §4/§13");
  const bool quick = bench::quick_mode(argc, argv);
  const int reps = quick ? 2 : 3;
  const u64 scale = quick ? 1 : 4;

  std::vector<bench::JsonRow> rows;
  std::printf("%20s %12s %12s %14s\n", "workload", "ops", "wall_min_s",
              "ops_per_sec");
  const auto emit = [&](const char* name, u64 ops, double wall_min) {
    if (wall_min < 0) {
      std::fprintf(stderr, "FAIL: %s dropped operations\n", name);
      std::exit(1);
    }
    const double rate =
        wall_min > 0 ? static_cast<double>(ops) / wall_min : 0.0;
    std::printf("%20s %12llu %12.4f %14.0f\n", name,
                static_cast<unsigned long long>(ops), wall_min, rate);
    bench::JsonRow row;
    row.params = strformat(
        "\"workload\":\"{}\",\"ops\":{},\"reps\":{},\"ops_per_sec\":{}", name,
        ops, reps, rate);
    row.wall_seconds = wall_min;
    row.metrics_json = strformat("{\"ops\":{}}", ops);
    rows.push_back(std::move(row));
  };

  // The yield rows first: single-core, then the 4-core SMP sweep — same
  // total op count, so the per-switch dispatch overhead reads directly.
  const u64 kSwitchOps = 20'000 * scale;
  for (const u32 cores : {1u, 4u}) {
    double wall_min = 1e100;
    for (int i = 0; i < reps; ++i) {
      wall_min = std::min(wall_min, yield_pingpong(kSwitchOps, cores));
    }
    emit(cores == 1 ? "yield_pingpong" : "yield_pingpong_smp4", kSwitchOps,
         wall_min);
  }

  struct Workload {
    const char* name;
    u64 ops;
    double (*run)(u64);
  };
  const Workload table[] = {
      {"semaphore_pingpong", 10'000 * scale, semaphore_pingpong},
      {"mailbox_throughput", 10'000 * scale, mailbox_throughput},
      {"tick_processing", 100'000 * scale, tick_processing},
      {"alarm_firing", 200'000 * scale, alarm_firing},
      {"interrupt_dispatch", 200'000 * scale, interrupt_dispatch},
  };
  for (const auto& w : table) {
    double wall_min = 1e100;
    for (int i = 0; i < reps; ++i) {
      wall_min = std::min(wall_min, w.run(w.ops));
    }
    emit(w.name, w.ops, wall_min);
  }

  const std::string path =
      bench::json_output_path(argc, argv, "BENCH_micro_rtos.metrics.json");
  if (!bench::write_bench_json(path, "micro_rtos", rows)) {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
