// Micro-benchmarks of the RTOS substrate: context switches, primitives,
// tick processing (ablation data for DESIGN.md §4 — fibers vs anything
// heavier would show up directly in the yield ping-pong number).
#include <benchmark/benchmark.h>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/mailbox.hpp"
#include "vhp/rtos/sync.hpp"

namespace {

using namespace vhp;
using rtos::Kernel;
using rtos::KernelConfig;

KernelConfig cfg() {
  KernelConfig c;
  c.cycles_per_tick = 1000;
  return c;
}

void BM_YieldPingPong(benchmark::State& state) {
  // Two equal-priority threads yielding to each other forever; the run loop
  // is driven from outside one iteration at a time via shutdown/restart is
  // impossible, so measure a fixed batch per state iteration.
  for (auto _ : state) {
    state.PauseTiming();
    Kernel k{cfg()};
    u64 switches = 0;
    constexpr u64 kBatch = 10000;
    for (int t = 0; t < 2; ++t) {
      k.spawn("t" + std::to_string(t), 5, [&] {
        while (switches < kBatch) {
          ++switches;
          k.yield();
        }
      });
    }
    state.ResumeTiming();
    k.run(true);
    benchmark::DoNotOptimize(switches);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_YieldPingPong);

void BM_SemaphorePingPong(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Kernel k{cfg()};
    rtos::Semaphore a{k, 0};
    rtos::Semaphore b{k, 0};
    constexpr int kBatch = 5000;
    k.spawn("ping", 5, [&] {
      for (int i = 0; i < kBatch; ++i) {
        a.post();
        b.wait();
      }
    });
    k.spawn("pong", 5, [&] {
      for (int i = 0; i < kBatch; ++i) {
        a.wait();
        b.post();
      }
    });
    state.ResumeTiming();
    k.run(true);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_SemaphorePingPong);

void BM_MailboxThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Kernel k{cfg()};
    rtos::Mailbox<u64> box{k, 16};
    constexpr int kBatch = 5000;
    k.spawn("producer", 5, [&] {
      for (int i = 0; i < kBatch; ++i) box.put(static_cast<u64>(i));
    });
    k.spawn("consumer", 5, [&] {
      for (int i = 0; i < kBatch; ++i) benchmark::DoNotOptimize(box.get());
    });
    state.ResumeTiming();
    k.run(true);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_MailboxThroughput);

void BM_TickProcessing(benchmark::State& state) {
  // Cost of the timer-tick path (RTC advance + timeslice accounting).
  for (auto _ : state) {
    state.PauseTiming();
    KernelConfig c;
    c.cycles_per_tick = 1;  // a tick per consumed cycle: worst case
    Kernel k{c};
    constexpr u64 kBatch = 50000;
    k.spawn("worker", 5, [&] { k.consume(kBatch); });
    state.ResumeTiming();
    k.run(true);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_TickProcessing);

void BM_AlarmFiring(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtos::Counter c{"c"};
    u64 fired = 0;
    rtos::Alarm a{c, [&](rtos::Alarm&, u64) { ++fired; }};
    a.arm_at(1, 1);  // every count
    constexpr u64 kBatch = 100000;
    state.ResumeTiming();
    c.advance(kBatch);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_AlarmFiring);

void BM_InterruptDispatch(benchmark::State& state) {
  Kernel k{cfg()};
  u64 handled = 0;
  k.interrupts().attach(
      1, rtos::InterruptHandler{[&](u32) {
                                  ++handled;
                                  return rtos::IsrResult::kHandled;
                                },
                                nullptr});
  for (auto _ : state) {
    k.interrupts().raise(1);
  }
  benchmark::DoNotOptimize(handled);
  state.SetItemsProcessed(static_cast<int64_t>(handled));
}
BENCHMARK(BM_InterruptDispatch);

}  // namespace

BENCHMARK_MAIN();
