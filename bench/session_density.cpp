// Session-server density: how many concurrent co-simulation sessions one
// event-loop process sustains, and what batching buys on the wire.
//
// Part 1 (density sweep): N independent router sessions (shm ring
// transport + per-quantum batching, the svc fast path) hosted on ONE
// svc::EventLoop thread — no per-board host threads, no blocked callers.
// The headline metric is per-session quantum overhead: wall time divided
// by total quanta driven across all sessions. The classic drive pays a
// parked OS thread per board; the loop pays one step callback.
//
// Part 2 (batching ratio): the sharded-router fabric over real TCP
// loopback with per-quantum batching. Each node board additionally runs a
// telemetry thread posting one-way dev_write bursts (the DMA-descriptor /
// stats-export pattern): those accumulate in the board's batched DATA
// channel all quantum and go out as ONE writev at the TIME_ACK flush.
// net.batch.board.data.frames / .flushes is the syscall amplification the
// batcher removed. The request/response directions stay near 1x by
// design — a read round trip must flush per request or the board would
// deadlock waiting for its response — so the master-side INT/DATA ratios
// are reported for contrast, not gated.
//
// --gate (scripts/check.sh): requires the 256-session row to complete
// cleanly at µs-level per-session quantum overhead and the board DATA
// batching ratio to reach 4x. Auto-skips on hosts with <4 cores.
#include <sys/resource.h>

#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/svc/event_loop.hpp"
#include "vhp/svc/session_host.hpp"

namespace vhp::bench {
namespace {

// 256 shm sessions hold ~12 eventfds each (doorbells on three ports, both
// directions); the default 1024-fd soft limit is far too small.
void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
  }
}

struct DensityResult {
  double wall_seconds = 0;
  u64 quanta = 0;        // syncs summed over every session
  u64 failed = 0;        // sessions that did not finish Ok
  u64 undrained = 0;     // sessions whose traffic did not complete
  double us_per_quantum_per_session() const {
    return quanta == 0 ? 0 : wall_seconds * 1e6 / static_cast<double>(quanta);
  }
  std::string metrics_json;  // the loop hub (svc.loop.*, svc.sessions)
};

constexpr u64 kDensityCycles = 6000;
constexpr u64 kDensityTsync = 200;

// `router` = true runs the full router case study in every session (a
// realistic mix: DATA/INT traffic, checksum app). false runs idle boards
// (one app thread parked on a semaphore): every quantum is then pure
// synchronization — the shm CLOCK round trip, the batch flush points, the
// loop dispatch — so us/quantum IS the svc overhead, not simulation work.
DensityResult run_density(std::size_t n_sessions, bool router) {
  svc::EventLoop loop;

  struct Hosted {
    std::unique_ptr<cosim::CosimSession> session;
    std::unique_ptr<router::RouterTestbench> tb;
    std::unique_ptr<router::ChecksumApp> app;
    std::unique_ptr<rtos::Semaphore> parked;
    std::unique_ptr<svc::SessionHost> host;
  };
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = 2;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 1;
  tb_cfg.gap_cycles = 800;
  tb_cfg.payload_bytes = 8;
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;

  std::vector<Hosted> hosted;
  hosted.reserve(n_sessions);
  std::size_t remaining = n_sessions;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    Hosted h;
    cosim::SessionConfigBuilder builder;
    builder.t_sync(kDensityTsync).cycles_per_tick(10).postmortem_prefix("");
    builder.shm().batching();
    h.session =
        std::make_unique<cosim::CosimSession>(builder.build_or_throw());
    if (router) {
      h.tb = std::make_unique<router::RouterTestbench>(
          h.session->hw().kernel(), tb_cfg, &h.session->hw().registry());
      h.session->hw().watch_interrupt(h.tb->router().irq(),
                                      board::Board::kDeviceVector);
      h.app = std::make_unique<router::ChecksumApp>(h.session->board(),
                                                    app_cfg);
    } else {
      h.parked = std::make_unique<rtos::Semaphore>(
          h.session->board().kernel(), 0);
      rtos::Semaphore* parked = h.parked.get();
      h.session->board().spawn_app("parked", 8,
                                   [parked] { parked->wait(); });
    }
    svc::SessionHostConfig host_cfg;
    host_cfg.cycles = kDensityCycles;
    host_cfg.cycles_per_step = 512;
    h.host = std::make_unique<svc::SessionHost>(
        loop, *h.session, host_cfg, [&remaining, &loop](Status) {
          if (--remaining == 0) loop.stop();
        });
    hosted.push_back(std::move(h));
  }

  const auto start = std::chrono::steady_clock::now();
  for (auto& h : hosted) h.host->start();
  loop.run();
  const auto end = std::chrono::steady_clock::now();

  DensityResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  for (auto& h : hosted) {
    r.quanta += h.session->hw().stats().syncs;
    r.failed += h.host->status().ok() ? 0 : 1;
    r.undrained += (h.tb != nullptr && !h.tb->traffic_done()) ? 1 : 0;
  }
  r.metrics_json = loop.obs().metrics_json();
  return r;
}

struct BatchingResult {
  double wall_seconds = 0;
  u64 barriers = 0;
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  bool drained = false;
  u64 int_frames = 0;
  u64 int_flushes = 0;
  u64 data_frames = 0;
  u64 data_flushes = 0;
  u64 board_data_frames = 0;
  u64 board_data_flushes = 0;
  u64 telemetry_writes = 0;
  static double ratio(u64 frames, u64 flushes) {
    return flushes == 0
               ? 0
               : static_cast<double>(frames) / static_cast<double>(flushes);
  }
  double int_ratio() const { return ratio(int_frames, int_flushes); }
  double data_ratio() const { return ratio(data_frames, data_flushes); }
  double board_data_ratio() const {
    return ratio(board_data_frames, board_data_flushes);
  }
  std::string metrics_json;  // master hub: net.batch.hw.* counters live here
};

// Sharded router over real TCP loopback, plus a telemetry thread on every
// node board posting one-way dev_write samples. dev_write is a posted
// send (no response), so the board's batched DATA channel accumulates the
// whole burst and emits it as one writev at the TIME_ACK flush — the
// direction batching exists for. The write cost paces the loop: one
// quantum holds roughly t_sync / dev_write_cost samples.
BatchingResult run_batching_fabric(u64 packets_per_port) {
  constexpr std::size_t kPorts = 4;
  constexpr u64 kMaxCycles = 120000;
  constexpr u32 kTelemetryAddr = 0x100;
  constexpr u64 kTelemetryWriteCost = 50;
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = kPorts;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 8;
  tb_cfg.packets_per_port = packets_per_port;
  tb_cfg.gap_cycles = 150;
  tb_cfg.payload_bytes = 8;
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;

  fabric::FabricConfigBuilder builder;
  builder.t_sync(1000).watchdog(std::chrono::milliseconds{15000});
  builder.tcp().batching();
  for (std::size_t p = 0; p < kPorts; ++p) {
    builder.add_node("port" + std::to_string(p));
    builder.last_board().rtos.cycles_per_tick = 10;
    builder.last_board().dev_write_cost = kTelemetryWriteCost;
  }
  fabric::Fabric fab{builder.build_or_throw()};
  std::vector<cosim::DriverRegistry*> registries;
  std::array<std::atomic<u64>, kPorts> telemetry_received{};
  for (std::size_t p = 0; p < kPorts; ++p) {
    registries.push_back(&fab.registry(p));
    auto& count = telemetry_received[p];
    fab.registry(p).register_write(
        kTelemetryAddr, [&count](std::span<const u8>) {
          count.fetch_add(1, std::memory_order_relaxed);
          return Status::Ok();
        });
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < kPorts; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < kPorts; ++p) {
    apps.push_back(
        std::make_unique<router::ChecksumApp>(fab.board(p), app_cfg));
    // Below the checksum app: telemetry soaks up whatever budget the
    // quantum has left, so interrupt service latency is unaffected.
    board::Board& board = fab.board(p);
    board.spawn_app("telemetry", 12, [&board] {
      const std::array<u8, 8> sample{0xfe, 0xed, 0xfa, 0xce};
      while (!board.kernel().shutting_down()) {
        (void)board.dev_write(kTelemetryAddr, sample);
      }
    });
  }
  fab.start_boards();
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    if (!fab.run_cycles(500).ok()) break;
    cycles += 500;
  }
  const auto end = std::chrono::steady_clock::now();
  fab.finish();

  BatchingResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.barriers = fab.coordinator().barriers();
  r.emitted = tb.total_emitted();
  r.forwarded = tb.router().stats().forwarded;
  r.received = tb.total_received();
  r.drained = tb.traffic_done();
  auto& metrics = fab.obs().metrics();
  for (std::size_t p = 0; p < kPorts; ++p) {
    const std::string side = "hw.port" + std::to_string(p);
    r.int_frames += metrics.counter("net.batch." + side + ".int.frames")
                        .value();
    r.int_flushes += metrics.counter("net.batch." + side + ".int.flushes")
                         .value();
    r.data_frames += metrics.counter("net.batch." + side + ".data.frames")
                         .value();
    r.data_flushes += metrics.counter("net.batch." + side + ".data.flushes")
                          .value();
    // The gated direction lives on the node's own hub: the board-side
    // batcher tags its channels "board".
    auto& node_metrics = fab.node_obs(p).metrics();
    r.board_data_frames +=
        node_metrics.counter("net.batch.board.data.frames").value();
    r.board_data_flushes +=
        node_metrics.counter("net.batch.board.data.flushes").value();
    r.telemetry_writes +=
        telemetry_received[p].load(std::memory_order_relaxed);
  }
  r.metrics_json = fab.obs().metrics_json();
  return r;
}

}  // namespace
}  // namespace vhp::bench

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;

  raise_fd_limit();
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") gate = true;
  }
  const bool quick = quick_mode(argc, argv);
  const unsigned cores = std::thread::hardware_concurrency();
  const bool low_core = cores > 0 && cores < 4;

  print_header("session_density: sessions per event-loop process",
               "ROADMAP co-simulation-as-a-service (beyond the paper)");

  std::vector<JsonRow> rows;
  int failures = 0;

  // ---- density sweep ----
  std::vector<std::size_t> sweep{1, 8, 64, 256};
  if (quick) sweep = {1, 8, 64};
  std::printf("%8s %9s %9s %12s %14s %8s\n", "workload", "sessions",
              "quanta", "wall_s", "us/quantum", "status");
  auto density_row = [&](std::size_t n, bool router) {
    const DensityResult r = run_density(n, router);
    const bool ok = r.failed == 0 && r.undrained == 0;
    std::printf("%8s %9zu %9" PRIu64 " %12.3f %14.2f %8s\n",
                router ? "router" : "idle", n, r.quanta, r.wall_seconds,
                r.us_per_quantum_per_session(), ok ? "ok" : "FAIL");
    if (gate && n >= 256) {
      if (!ok) {
        std::printf("gate: %" PRIu64 " session(s) failed, %" PRIu64
                    " undrained at N=%zu\n",
                    r.failed, r.undrained, n);
        ++failures;
      }
      // The µs-level bound applies to the idle rows, where a quantum is
      // pure synchronization. Generous so loaded CI hosts pass, but a
      // regression to per-thread-style ms-level overhead still trips.
      if (!router && r.us_per_quantum_per_session() > 150.0) {
        std::printf("gate: %.2f us/quantum/session exceeds 150 us budget\n",
                    r.us_per_quantum_per_session());
        ++failures;
      }
    }
    rows.push_back(JsonRow{
        std::string("\"workload\":\"") + (router ? "router" : "idle") +
            "\",\"sessions\":" + std::to_string(n) +
            ",\"cycles\":" + std::to_string(kDensityCycles) +
            ",\"t_sync\":" + std::to_string(kDensityTsync) +
            ",\"quanta\":" + std::to_string(r.quanta) +
            ",\"failed\":" + std::to_string(r.failed) +
            ",\"undrained\":" + std::to_string(r.undrained) +
            ",\"us_per_quantum_per_session\":" +
            std::to_string(r.us_per_quantum_per_session()),
        r.wall_seconds, r.metrics_json});
  };
  for (const std::size_t n : sweep) density_row(n, /*router=*/false);
  // One realistic-mix point: every session runs the full router case
  // study. us/quantum here includes the simulation work itself, so it is
  // reported but only completion is gated.
  density_row(quick ? 64 : 256, /*router=*/true);

  // ---- batching ratio ----
  const BatchingResult b = run_batching_fabric(quick ? 30 : 60);
  std::printf("\nbatching on the sharded router + telemetry (4 nodes, tcp):\n");
  std::printf("  board DATA (one-way writes, the coalescable direction): "
              "%.2f frames/flush (%" PRIu64 " frames / %" PRIu64 " flushes)\n",
              b.board_data_ratio(), b.board_data_frames,
              b.board_data_flushes);
  std::printf("  master INT %.2f, master DATA %.2f frames/flush "
              "(request/response-bound, ~1x by design)\n",
              b.int_ratio(), b.data_ratio());
  std::printf("  traffic: %" PRIu64 " emitted, %" PRIu64 " forwarded, %" PRIu64
              " received, %" PRIu64 " telemetry samples, drained=%s "
              "(%" PRIu64 " barriers, %.3f s)\n",
              b.emitted, b.forwarded, b.received, b.telemetry_writes,
              b.drained ? "yes" : "no", b.barriers, b.wall_seconds);
  std::printf("  (a flush is one writev; each frame in it was one send "
              "syscall unbatched)\n");
  if (gate && b.board_data_ratio() < 4.0) {
    std::printf("gate: board DATA batching ratio %.2f below 4x\n",
                b.board_data_ratio());
    ++failures;
  }
  rows.push_back(JsonRow{
      "\"workload\":\"sharded_router_tcp_batching\",\"board_data_frames\":" +
          std::to_string(b.board_data_frames) +
          ",\"board_data_flushes\":" + std::to_string(b.board_data_flushes) +
          ",\"telemetry_writes\":" + std::to_string(b.telemetry_writes) +
          ",\"int_frames\":" + std::to_string(b.int_frames) +
          ",\"int_flushes\":" + std::to_string(b.int_flushes) +
          ",\"data_frames\":" + std::to_string(b.data_frames) +
          ",\"data_flushes\":" + std::to_string(b.data_flushes) +
          ",\"barriers\":" + std::to_string(b.barriers),
      b.wall_seconds, b.metrics_json});

  const std::string path =
      json_output_path(argc, argv, "BENCH_session_density.metrics.json");
  if (!write_bench_json(path, "session_density", rows)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());

  if (gate && low_core) {
    std::printf("gate skipped: host has %u core(s); results above are "
                "informational\n",
                cores);
    return 0;
  }
  return gate && failures > 0 ? 1 : 0;
}
