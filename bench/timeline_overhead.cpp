// Timeline-layer overhead: the flight-recorder-discipline acceptance check
// for vhp::obs::timeline (ISSUE 7).
//
// Three configurations of the same fixed-cycle router co-simulation:
//   baseline  — default session, timeline never mentioned
//   disarmed  — timeline configured but not enabled; every span-record call
//               must stay one branch on a const bool (no clock read, no
//               ring), and the CLOCK/TIME_ACK frames must stay wire v1/v2
//   armed     — timeline enabled: wire-v3 round stamping, two steady_clock
//               reads per phase and mutex-guarded ring stores, as a
//               reference point for what the causal timeline costs
//
// The acceptance gate is disarmed-vs-baseline: under 1% wall-time overhead
// on the median of per-round paired ratios — repetitions are interleaved
// round-robin, each round's candidate run is divided by that same round's
// baseline run (back-to-back, so drift cancels), and the median shrugs off
// heavy-tailed rounds. The armed row is informational and not gated. Pass
// --gate to turn a breach into exit 1 (scripts/check.sh does); without it
// the breach is reported but not fatal, so full-suite bench sweeps on noisy
// machines stay green.
//
// Output: BENCH_timeline_overhead.metrics.json — one row per configuration
// plus the computed disarmed/armed overhead percentages.
#include "bench_util.hpp"

#include <algorithm>

using namespace vhp;

namespace {

struct ConfigResult {
  double wall_min_s = 0;
  double wall_mean_s = 0;
  std::vector<double> wall_s;     // one entry per rotation round
  bench::ExperimentResult last;   // one representative run's counters
};

void accumulate_rep(const bench::ExperimentParams& params, int reps,
                    ConfigResult& r) {
  bench::ExperimentResult one = bench::run_router_experiment(params);
  r.wall_min_s = std::min(r.wall_min_s, one.wall_seconds);
  r.wall_mean_s += one.wall_seconds / reps;
  r.wall_s.push_back(one.wall_seconds);
  r.last = std::move(one);
}

// Median over rounds of the per-round wall ratio (candidate / baseline),
// as an overhead percentage. The two runs of a round execute back to back,
// so slow machine phases hit both and cancel in the ratio; the median then
// shrugs off the heavy-tailed rounds that a min- or mean-based statistic
// lets through.
double paired_median_overhead_pct(const std::vector<double>& candidate,
                                  const std::vector<double>& baseline) {
  std::vector<double> ratios;
  const std::size_t n = std::min(candidate.size(), baseline.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (baseline[i] > 0) ratios.push_back(candidate[i] / baseline[i]);
  }
  if (ratios.empty()) return 0.0;
  std::sort(ratios.begin(), ratios.end());
  const std::size_t mid = ratios.size() / 2;
  const double median = ratios.size() % 2 != 0
                            ? ratios[mid]
                            : (ratios[mid - 1] + ratios[mid]) / 2.0;
  return (median - 1.0) * 100.0;
}

bool gate_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "timeline overhead: disarmed span tracing vs plain session vs armed",
      "ISSUE 7 acceptance: a disarmed causal timeline costs under 1%");
  const bool quick = bench::quick_mode(argc, argv);
  const bool gate = gate_mode(argc, argv);
  // A ~45 ms quick run has a noise floor of a few percent at 3 reps — above
  // the 1% budget — so gate mode buys convergence with more repetitions
  // (min-over-reps tightens toward the true floor as reps grow).
  const int reps = gate ? 11 : (quick ? 3 : 5);

  bench::ExperimentParams params;
  params.n_packets = 40;
  params.t_sync = 1000;
  params.gap_cycles = 400;
  // Gate mode overrides --quick's shorter runs: a ~45 ms run carries a
  // noise floor of a few percent, which would drown the 1% budget.
  params.fixed_cycles = (quick && !gate) ? 60000 : 120000;
  params.transport = cosim::TransportKind::kInProc;  // minimal noise floor

  // Disarmed: the knob exists and is explicitly off — the instrumented hot
  // paths still execute their enabled() branches, which is exactly what the
  // gate prices.
  bench::ExperimentParams disarmed = params;
  disarmed.timeline = false;
  bench::ExperimentParams armed = params;
  armed.timeline = true;

  // Interleave the repetitions round-robin rather than batching each
  // configuration: batched reps turn slow machine-load drift into a fake
  // between-config delta, while interleaved reps expose every config to the
  // same noise and let the paired-ratio statistic cancel it. One discarded
  // warmup run pays the cold-cache/page-fault tax before anything is timed.
  // Even so, the statistic's noise at zero is around the budget itself, so
  // gate mode re-measures on a breach: a real regression fails every pass,
  // a noise spike does not.
  const int max_passes = gate ? 3 : 1;
  ConfigResult baseline, off, on;
  double overhead_pct = 0.0, armed_pct = 0.0;
  for (int pass = 0; pass < max_passes; ++pass) {
    baseline = off = on = ConfigResult{};
    baseline.wall_min_s = off.wall_min_s = on.wall_min_s = 1e100;
    (void)bench::run_router_experiment(params);
    for (int i = 0; i < reps; ++i) {
      accumulate_rep(params, reps, baseline);
      accumulate_rep(disarmed, reps, off);
      accumulate_rep(armed, reps, on);
    }
    overhead_pct = paired_median_overhead_pct(off.wall_s, baseline.wall_s);
    armed_pct = paired_median_overhead_pct(on.wall_s, baseline.wall_s);
    if (overhead_pct <= 1.0) break;
    if (pass + 1 < max_passes) {
      std::fprintf(stderr,
                   "pass %d/%d: disarmed at %.2f%% (budget 1%%), "
                   "re-measuring\n",
                   pass + 1, max_passes, overhead_pct);
    }
  }

  std::printf("%10s %12s %12s %10s\n", "config", "wall_min_s", "wall_mean_s",
              "vs_base");
  std::printf("%10s %12.4f %12.4f %9s\n", "baseline", baseline.wall_min_s,
              baseline.wall_mean_s, "-");
  std::printf("%10s %12.4f %12.4f %+9.2f%%\n", "disarmed", off.wall_min_s,
              off.wall_mean_s, overhead_pct);
  std::printf("%10s %12.4f %12.4f %+9.2f%%\n", "armed", on.wall_min_s,
              on.wall_mean_s, armed_pct);

  std::vector<bench::JsonRow> rows;
  const struct {
    const char* name;
    const ConfigResult* r;
    double pct;
  } table[] = {{"baseline", &baseline, 0.0},
               {"disarmed", &off, overhead_pct},
               {"armed", &on, armed_pct}};
  for (const auto& entry : table) {
    bench::JsonRow row;
    row.params = strformat(
        "\"config\":\"{}\",\"reps\":{},\"fixed_cycles\":{},"
        "\"wall_min_s\":{},\"wall_mean_s\":{},\"overhead_pct\":{},"
        "\"forwarded\":{},\"syncs\":{}",
        entry.name, reps, *params.fixed_cycles, entry.r->wall_min_s,
        entry.r->wall_mean_s, entry.pct, entry.r->last.forwarded,
        entry.r->last.syncs);
    row.wall_seconds = entry.r->wall_min_s;
    row.metrics_json = entry.r->last.metrics_json;
    rows.push_back(std::move(row));
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_timeline_overhead.metrics.json");
  if (bench::write_bench_json(path, "timeline_overhead", rows)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }

  if (overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "%s: disarmed timeline costs %.2f%% (budget 1%%)\n",
                 gate ? "FAIL" : "WARN", overhead_pct);
    if (gate) return 1;
  } else {
    std::printf("disarmed overhead %.2f%% — within the 1%% budget\n",
                overhead_pct);
  }
  return 0;
}
