// Micro-benchmarks of the RV32IM interpreter: raw instructions per second
// of the firmware-level timing model, flat (StepResult cycles straight to
// the budget) and pipelined (every step priced through the vhp::mem
// hierarchy — I-cache fetch, D-cache data access, banked memory).
//
// Output: BENCH_micro_iss.metrics.json — one row per workload x model with
// host MIPS and the timing-model counters of the run, so a trajectory of
// this file shows interpreter-speed and model-overhead drift over time.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>

#include "vhp/iss/assemble.hpp"
#include "vhp/iss/cpu.hpp"
#include "vhp/iss/timed_bus.hpp"
#include "vhp/mem/config.hpp"
#include "vhp/mem/system.hpp"

using namespace vhp;
using namespace vhp::iss;

namespace {

// addi/bne countdown: the interpreter's hot path.
Asm alu_loop() {
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 1000000000);  // effectively endless for the bench window
  a.bind(loop);
  a.addi(1, 1, -1);
  a.bne(1, 0, loop);
  a.ecall();
  return a;
}

// lw/sw copy loop: load/store path through the sparse memory.
Asm memcopy_loop() {
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 0x4000);      // src
  a.li(2, 0x8000);      // dst
  a.li(3, 0x7fffffff);  // huge count
  a.bind(loop);
  a.lw(4, 1, 0);
  a.sw(4, 2, 0);
  a.addi(1, 1, 4);
  a.addi(2, 2, 4);
  a.addi(3, 3, -1);
  a.bne(3, 0, loop);
  a.ecall();
  return a;
}

// mul/divu/remu: the multi-cycle arithmetic path.
Asm muldiv_mix() {
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 123456789);
  a.li(2, 97);
  a.bind(loop);
  a.mul(3, 1, 2);
  a.divu(4, 1, 2);
  a.remu(5, 1, 2);
  a.j(loop);
  return a;
}

struct RunResult {
  double wall_s = 0;
  u64 sim_cycles = 0;      // virtual cycles the instructions cost
  std::string metrics;     // JSON object body of model counters
};

/// Steps `n` instructions on a flat bus: the single-core default timing.
RunResult run_flat(const Asm& prog, u64 n) {
  sim::Memory ram{"ram"};
  prog.load_into(ram, 0x1000);
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(0x1000);
  u64 cycles = 0;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < n; ++i) cycles += cpu.step().cycles;
  const auto end = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  r.sim_cycles = cycles;
  r.metrics = "{\"sim_cycles\":" + std::to_string(cycles) + "}";
  return r;
}

/// Steps `n` instructions with the memory hierarchy in the timing path,
/// exactly as IssRunner prices an armed many-core board (minus MMIO).
RunResult run_pipelined(const Asm& prog, u64 n) {
  sim::Memory ram{"ram"};
  prog.load_into(ram, 0x1000);
  MemoryBus bus{ram};
  TimedBus timed{bus};
  Cpu cpu{timed};
  cpu.set_pc(0x1000);
  mem::MemorySystem sys{mem::MemConfig{}, 1};
  mem::CorePort& port = sys.port(0);
  u64 now = 0;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < n; ++i) {
    timed.begin_instruction();
    const StepResult step = cpu.step();
    const auto& acc = timed.accesses();
    const u64 fetch = acc.has_fetch ? port.fetch(acc.fetch_addr, now) : 0;
    u64 data = 0;
    if (acc.has_data) {
      data = port.data_access(acc.data_addr, acc.data_is_store, now + fetch);
    }
    now += port.pipeline().instruction(step.cycles, fetch, data);
  }
  const auto end = std::chrono::steady_clock::now();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  r.sim_cycles = now;
  const auto& p = port.pipeline().stats();
  r.metrics = strformat(
      "{\"sim_cycles\":{},\"icache_hits\":{},\"icache_misses\":{},"
      "\"dcache_hits\":{},\"dcache_misses\":{},\"fetch_stall_cycles\":{},"
      "\"data_stall_cycles\":{},\"bank_requests\":{}}",
      now, port.icache().hits(), port.icache().misses(), port.dcache().hits(),
      port.dcache().misses(), p.fetch_stall_cycles, p.data_stall_cycles,
      sys.memory().requests());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "ISS interpreter speed: flat vs pipelined (memory hierarchy) pricing",
      "firmware timing model throughput, DESIGN.md SS6/SS13");
  const bool quick = bench::quick_mode(argc, argv);
  const u64 n = quick ? 1'000'000 : 5'000'000;
  const int reps = quick ? 2 : 3;

  const struct {
    const char* name;
    Asm prog;
  } workloads[] = {{"alu_loop", alu_loop()},
                   {"memcopy_loop", memcopy_loop()},
                   {"muldiv_mix", muldiv_mix()}};

  std::vector<bench::JsonRow> rows;
  std::printf("%14s %10s %12s %10s %14s\n", "workload", "model", "wall_min_s",
              "host_mips", "cycles_per_ins");
  for (const auto& w : workloads) {
    for (const bool pipelined : {false, true}) {
      RunResult best;
      best.wall_s = 1e100;
      for (int i = 0; i < reps; ++i) {
        RunResult one = pipelined ? run_pipelined(w.prog, n)
                                  : run_flat(w.prog, n);
        if (one.wall_s < best.wall_s) best = std::move(one);
      }
      const double mips =
          best.wall_s > 0 ? static_cast<double>(n) / best.wall_s / 1e6 : 0.0;
      const double cpi = static_cast<double>(best.sim_cycles) /
                         static_cast<double>(n);
      const char* model = pipelined ? "pipelined" : "flat";
      std::printf("%14s %10s %12.4f %10.1f %14.2f\n", w.name, model,
                  best.wall_s, mips, cpi);
      bench::JsonRow row;
      row.params = strformat(
          "\"workload\":\"{}\",\"model\":\"{}\",\"instructions\":{},"
          "\"reps\":{},\"host_mips\":{},\"cycles_per_instruction\":{}",
          w.name, model, n, reps, mips, cpi);
      row.wall_seconds = best.wall_s;
      row.metrics_json = best.metrics;
      rows.push_back(std::move(row));
    }
  }

  const std::string path =
      bench::json_output_path(argc, argv, "BENCH_micro_iss.metrics.json");
  if (!bench::write_bench_json(path, "micro_iss", rows)) {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
