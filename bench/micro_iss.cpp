// Micro-benchmarks of the RV32IM interpreter: raw instructions per second
// of the firmware-level timing model.
#include <benchmark/benchmark.h>

#include "vhp/iss/assemble.hpp"
#include "vhp/iss/cpu.hpp"

namespace {

using namespace vhp;
using namespace vhp::iss;

void BM_AluLoop(benchmark::State& state) {
  // addi/bne loop: the interpreter's hot path.
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 1000000000);  // effectively endless for the bench window
  a.bind(loop);
  a.addi(1, 1, -1);
  a.bne(1, 0, loop);
  a.ecall();
  sim::Memory ram{"ram"};
  a.load_into(ram, 0x1000);
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(0x1000);
  cpu.step();  // li pair
  cpu.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AluLoop);

void BM_MemoryCopyLoop(benchmark::State& state) {
  // lw/sw copy loop: load/store path through the sparse memory.
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 0x4000);      // src
  a.li(2, 0x8000);      // dst
  a.li(3, 0x7fffffff);  // huge count
  a.bind(loop);
  a.lw(4, 1, 0);
  a.sw(4, 2, 0);
  a.addi(1, 1, 4);
  a.addi(2, 2, 4);
  a.addi(3, 3, -1);
  a.bne(3, 0, loop);
  a.ecall();
  sim::Memory ram{"ram"};
  a.load_into(ram, 0x1000);
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(0x1000);
  for (int i = 0; i < 6; ++i) cpu.step();  // li prologue
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryCopyLoop);

void BM_MulDivMix(benchmark::State& state) {
  Asm a;
  const auto loop = a.make_label();
  a.li(1, 123456789);
  a.li(2, 97);
  a.bind(loop);
  a.mul(3, 1, 2);
  a.divu(4, 1, 2);
  a.remu(5, 1, 2);
  a.j(loop);
  sim::Memory ram{"ram"};
  a.load_into(ram, 0x1000);
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(0x1000);
  for (int i = 0; i < 4; ++i) cpu.step();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.step());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MulDivMix);

}  // namespace

BENCHMARK_MAIN();
