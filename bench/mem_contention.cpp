// Shared-memory contention on the many-core board (DESIGN.md §13).
//
// Sweep mode (default): cores x banks grid of timed co-simulations. Every
// core runs the same SPMD firmware walking shared memory one cache line
// per iteration (stride = the bank interleave, so every access is a fresh
// line AND the cores sweep the banks in lockstep), so the bank-conflict
// wait is the signal: it grows with cores and shrinks with banks — one
// bank serializes everyone, four banks pipeline the sweep. The 4-core
// contended point is
// re-run under a fixed quantum and under the adaptive SyncPolicy — the
// grant/stall distributions of the two rows must differ (the adaptive
// coordinator shrinks grants while the cores are busy).
//
// Gate mode (--gate): the zero-hop acceptance check for the hierarchy. A
// single-core session without a MemConfig must cost what the board cost
// before vhp::mem existed. "legacy" is the pre-hierarchy firmware loop —
// the Cpu stepping straight on the MemoryBus with batched consume() —
// reproduced here verbatim; "disarmed" is today's IssRunner, whose bus
// carries the TimedBus decorator and the null-port branch. Budget: the
// disarmed run stays within 1% wall time of legacy (min over reps).
//
// Output: BENCH_mem_contention.metrics.json.
#include "bench_util.hpp"

#include <algorithm>

#include "vhp/cosim/sync_policy.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/multicore.hpp"
#include "vhp/iss/runner.hpp"
#include "vhp/mem/config.hpp"

using namespace vhp;

namespace {

/// SPMD bank walker: a0 = core id (syscall 4); every iteration increments
/// one word at base + id*4 and then advances by `step` bytes. With
/// step = the bank interleave stride (= the D-cache line size), every
/// access is a fresh line and all cores sweep the banks in lockstep:
/// contention concentrates on however few banks the config provides.
iss::Asm contended_program(u32 step, u32 iters) {
  iss::Asm a;
  a.addi(17, 0, 4);  // a7 = core-id syscall
  a.ecall();
  a.slli(5, 10, 2);  // x5 = id * 4
  a.li(8, 0x0010'0000);
  a.add(8, 8, 5);  // x8 = &word[id]
  a.li(6, iters);
  a.li(9, step);
  const auto loop = a.make_label();
  a.bind(loop);
  a.lw(7, 8, 0);
  a.addi(7, 7, 1);
  a.sw(7, 8, 0);
  a.add(8, 8, 9);
  a.addi(6, 6, -1);
  a.bne(6, 0, loop);
  a.addi(17, 0, 0);  // exit(id)
  a.ecall();
  return a;
}

struct SweepResult {
  double wall_s = 0;
  u64 cycles_run = 0;
  bool all_exited = false;
  u64 syncs = 0;
  u64 grants = 0;
  u64 requests = 0;
  u64 conflicts = 0;
  u64 conflict_wait = 0;
  u64 dcache_misses = 0;
  u64 data_stalls = 0;
  u64 instructions = 0;
  std::string metrics_json;
};

SweepResult run_sweep_point(u32 cores, u32 banks, bool adaptive, u32 iters,
                            u64 max_cycles) {
  cosim::SessionConfigBuilder b;
  b.inproc().cycles_per_tick(10).cores(cores);
  mem::MemConfig mc;
  mc.memory.banks = banks;
  b.memory(mc);
  if (adaptive) {
    b.sync(cosim::SyncPolicy{}.quantum(200).adaptive().min_quantum(50)
               .max_quantum(2000));
  } else {
    b.t_sync(200);
  }
  cosim::CosimSession session{b.build_or_throw()};

  sim::Memory ram{"ram"};
  const u32 step = mc.memory.stride_bytes;
  contended_program(step, iters).load_into(ram, 0x1000);
  iss::MultiCoreBoardConfig board_cfg;
  board_cfg.entry_pcs.assign(cores, 0x1000);
  iss::MultiCoreBoard mcores{session.board(), ram, board_cfg};

  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  constexpr u64 kChunk = 500;
  while (cycles < max_cycles && !mcores.all_exited()) {
    if (!session.run_cycles(kChunk).ok()) break;
    cycles += kChunk;
  }
  const auto end = std::chrono::steady_clock::now();
  session.finish();

  SweepResult r;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  r.cycles_run = cycles;
  r.all_exited = mcores.all_exited();
  r.syncs = session.hw().stats().syncs;
  r.grants = session.board().kernel().stats().grants;
  r.requests = mcores.memory().memory().requests();
  r.conflicts = mcores.memory().memory().conflicts();
  r.conflict_wait = mcores.memory().memory().conflict_wait_cycles();
  for (u32 c = 0; c < cores; ++c) {
    r.dcache_misses += mcores.memory().port(c).dcache().misses();
    const auto& p = mcores.memory().port(c).pipeline().stats();
    r.data_stalls += p.data_stall_cycles;
    r.instructions += p.instructions;
  }
  r.metrics_json = session.obs().metrics_json();
  return r;
}

bench::JsonRow sweep_row(const char* policy, u32 cores, u32 banks,
                         const SweepResult& r) {
  bench::JsonRow row;
  row.params = strformat(
      "\"cores\":{},\"banks\":{},\"policy\":\"{}\",\"cycles_run\":{},"
      "\"all_exited\":{},\"syncs\":{},\"grants\":{},\"requests\":{},"
      "\"conflicts\":{},\"conflict_wait_cycles\":{},\"dcache_misses\":{},"
      "\"data_stall_cycles\":{},\"instructions\":{}",
      cores, banks, policy, r.cycles_run, r.all_exited ? "true" : "false",
      r.syncs, r.grants, r.requests, r.conflicts, r.conflict_wait,
      r.dcache_misses, r.data_stalls, r.instructions);
  row.wall_seconds = r.wall_s;
  row.metrics_json = r.metrics_json;
  return row;
}

// ---------- gate mode ----------

/// Endless lw/inc/sw countdown: the representative firmware inner loop for
/// the overhead measurement (never exits; the fixed cycle budget bounds it).
iss::Asm gate_program() {
  iss::Asm a;
  a.li(1, 0x7fffffff);
  a.li(2, 0x4000);
  const auto loop = a.make_label();
  a.bind(loop);
  a.lw(3, 2, 0);
  a.addi(3, 3, 1);
  a.sw(3, 2, 0);
  a.addi(1, 1, -1);
  a.bne(1, 0, loop);
  a.ecall();
  return a;
}

struct GateResult {
  double wall_min_s = 1e100;
  u64 instructions = 0;
  std::string metrics_json;
};

/// One rep of a fixed-cycle single-core session. `legacy` reproduces the
/// pre-hierarchy ISS integration: Cpu straight on the MemoryBus, batching
/// flat StepResult cycles into consume() — no TimedBus, no null-port
/// branch. Otherwise the regular (disarmed) IssRunner drives the firmware.
void run_gate_rep(bool legacy, u64 fixed_cycles, GateResult& acc) {
  auto cfg = cosim::SessionConfigBuilder{}
                 .inproc()
                 .t_sync(500)
                 .cycles_per_tick(10)
                 .build_or_throw();
  cosim::CosimSession session{cfg};
  sim::Memory ram{"ram"};
  gate_program().load_into(ram, 0x1000);

  std::unique_ptr<iss::IssRunner> runner;
  std::unique_ptr<iss::MemoryBus> flat_bus;
  std::unique_ptr<iss::Cpu> flat_cpu;
  if (legacy) {
    flat_bus = std::make_unique<iss::MemoryBus>(ram);
    flat_cpu = std::make_unique<iss::Cpu>(*flat_bus);
    flat_cpu->set_pc(0x1000);
    flat_cpu->set_reg(iss::Cpu::kRegSp, 0x0008'0000);
    auto& kernel = session.board().kernel();
    iss::Cpu& cpu = *flat_cpu;
    session.board().spawn_app("firmware", 8, [&kernel, &cpu] {
      u64 pending = 0;
      for (;;) {
        pending += cpu.step().cycles;
        if (pending >= 64) {
          kernel.consume(pending);
          pending = 0;
        }
      }
    });
  } else {
    runner = std::make_unique<iss::IssRunner>(session.board(), ram,
                                              iss::IssRunnerConfig{});
  }

  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  constexpr u64 kChunk = 200;
  while (cycles < fixed_cycles) {
    if (!session.run_cycles(kChunk).ok()) break;
    cycles += kChunk;
  }
  const auto end = std::chrono::steady_clock::now();
  session.finish();

  const double wall = std::chrono::duration<double>(end - start).count();
  acc.wall_min_s = std::min(acc.wall_min_s, wall);
  acc.instructions =
      legacy ? flat_cpu->instructions_retired() : runner->instructions();
  acc.metrics_json = session.obs().metrics_json();
}

int run_gate(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int reps = quick ? 3 : 5;
  const u64 fixed_cycles = quick ? 60'000 : 120'000;

  GateResult legacy, disarmed;
  for (int i = 0; i < reps; ++i) run_gate_rep(true, fixed_cycles, legacy);
  for (int i = 0; i < reps; ++i) run_gate_rep(false, fixed_cycles, disarmed);

  const double overhead_pct =
      legacy.wall_min_s > 0
          ? (disarmed.wall_min_s / legacy.wall_min_s - 1.0) * 100.0
          : 0.0;
  std::printf("%10s %12s %14s %10s\n", "config", "wall_min_s", "instructions",
              "vs_legacy");
  std::printf("%10s %12.4f %14llu %9s\n", "legacy", legacy.wall_min_s,
              static_cast<unsigned long long>(legacy.instructions), "-");
  std::printf("%10s %12.4f %14llu %+9.2f%%\n", "disarmed",
              disarmed.wall_min_s,
              static_cast<unsigned long long>(disarmed.instructions),
              overhead_pct);

  std::vector<bench::JsonRow> rows;
  const struct {
    const char* name;
    const GateResult* r;
    double pct;
  } table[] = {{"legacy", &legacy, 0.0}, {"disarmed", &disarmed,
                                          overhead_pct}};
  for (const auto& entry : table) {
    bench::JsonRow row;
    row.params = strformat(
        "\"config\":\"{}\",\"reps\":{},\"fixed_cycles\":{},"
        "\"instructions\":{},\"overhead_pct\":{}",
        entry.name, reps, fixed_cycles, entry.r->instructions, entry.pct);
    row.wall_seconds = entry.r->wall_min_s;
    row.metrics_json = entry.r->metrics_json;
    rows.push_back(std::move(row));
  }
  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_mem_contention.metrics.json");
  if (!bench::write_bench_json(path, "mem_contention", rows)) {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());

  if (overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed single-core board costs %.2f%% over the "
                 "legacy flat loop (budget 1%%)\n",
                 overhead_pct);
    return 1;
  }
  std::printf("disarmed overhead %.2f%% — within the 1%% budget\n",
              overhead_pct);
  return 0;
}

bool gate_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "many-core shared-memory contention: cores x banks, fixed vs adaptive",
      "vhp::mem acceptance: bank conflicts scale with cores/banks; a "
      "disarmed single-core board costs under 1%");
  if (gate_mode(argc, argv)) return run_gate(argc, argv);

  const bool quick = bench::quick_mode(argc, argv);
  const u32 iters = quick ? 300 : 1000;
  const u64 max_cycles = quick ? 200'000 : 600'000;
  const std::vector<u32> core_counts = quick ? std::vector<u32>{1, 4}
                                             : std::vector<u32>{1, 2, 4};
  const std::vector<u32> bank_counts = quick ? std::vector<u32>{1, 4}
                                             : std::vector<u32>{1, 2, 4};

  std::vector<bench::JsonRow> rows;
  std::printf("%6s %6s %9s %10s %10s %12s %14s\n", "cores", "banks", "policy",
              "wall_s", "conflicts", "wait_cycles", "data_stalls");
  const auto report = [&](const char* policy, u32 cores, u32 banks,
                          const SweepResult& r) {
    std::printf("%6u %6u %9s %10.4f %10llu %12llu %14llu\n", cores, banks,
                policy, r.wall_s,
                static_cast<unsigned long long>(r.conflicts),
                static_cast<unsigned long long>(r.conflict_wait),
                static_cast<unsigned long long>(r.data_stalls));
    rows.push_back(sweep_row(policy, cores, banks, r));
  };

  for (const u32 cores : core_counts) {
    for (const u32 banks : bank_counts) {
      report("fixed", cores, banks,
             run_sweep_point(cores, banks, /*adaptive=*/false, iters,
                             max_cycles));
    }
  }
  // Sync-policy sensitivity at the 4-core contended point: the adaptive
  // coordinator sees zero lookahead while the cores grind and issues
  // min-quantum grants — a different grant/stall distribution than the
  // fixed 200-cycle quantum above.
  for (const u32 banks : bank_counts) {
    report("adaptive", 4, banks,
           run_sweep_point(4, banks, /*adaptive=*/true, iters, max_cycles));
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_mem_contention.metrics.json");
  if (!bench::write_bench_json(path, "mem_contention", rows)) {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
