// Figure 6 — "Co-Simulation Overhead vs T_sync": wall time normalized to
// the *untimed* simulation (no synchronization at all), on a log scale.
//
// Paper's observations to reproduce:
//   (i)  the overhead ratio falls steeply as T_sync grows (log-scale Y);
//   (ii) the paper quotes ~1000x at per-cycle sync, ~100x at T_sync=360;
//   (iii) the decay rate barely depends on N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("FIG6: overhead ratio (timed / untimed) vs T_sync",
               "Figure 6 (Section 6.1)");

  const std::vector<u64> ns = quick ? std::vector<u64>{40}
                                    : std::vector<u64>{40, 100};
  const std::vector<u64> t_syncs =
      quick ? std::vector<u64>{10, 100, 1000, 10000}
            : std::vector<u64>{1, 3, 10, 36, 100, 360, 1000, 3600, 10000};

  std::printf("%10s", "Tsync");
  for (u64 n : ns) std::printf("   ratio(N=%-4llu)", (unsigned long long)n);
  std::printf("\n");

  std::vector<JsonRow> rows;
  std::vector<double> baseline(ns.size());
  for (std::size_t j = 0; j < ns.size(); ++j) {
    // Untimed baseline: median of 3 (it is fast and noisy).
    double best = 1e9;
    std::string best_metrics;
    for (int rep = 0; rep < 3; ++rep) {
      ExperimentParams p;
      p.n_packets = ns[j];
      p.t_sync = std::nullopt;  // untimed
      p.fixed_cycles = p.traffic_span_cycles();
      p.observability = obs_mode(argc, argv);
      p.record = record_mode(argc, argv);
      auto r = run_router_experiment(p);
      if (r.wall_seconds < best) {
        best = r.wall_seconds;
        best_metrics = std::move(r.metrics_json);
      }
    }
    baseline[j] = best;
    rows.push_back(JsonRow{
        strformat("\"n\":{},\"t_sync\":null", ns[j]), best,
        std::move(best_metrics)});
  }

  for (u64 ts : t_syncs) {
    std::printf("%10llu", (unsigned long long)ts);
    for (std::size_t j = 0; j < ns.size(); ++j) {
      ExperimentParams p;
      p.n_packets = ns[j];
      p.t_sync = ts;
      p.fixed_cycles = p.traffic_span_cycles();
      p.observability = obs_mode(argc, argv);
      p.record = record_mode(argc, argv);
      auto r = run_router_experiment(p);
      rows.push_back(JsonRow{
          strformat("\"n\":{},\"t_sync\":{}", ns[j], ts), r.wall_seconds,
          std::move(r.metrics_json)});
      std::printf("   %12.1fx", r.wall_seconds / baseline[j]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%10s", "untimed");
  for (std::size_t j = 0; j < ns.size(); ++j) {
    std::printf("   %10.4fs ", baseline[j]);
  }
  std::printf("\n\npaper shape: steep monotone decay on log scale; nearly "
              "identical curves for both N\n");
  const std::string json_path =
      json_output_path(argc, argv, "fig6_overhead_ratio.metrics.json");
  if (write_bench_json(json_path, "fig6_overhead_ratio", rows)) {
    std::printf("wrote %s (per-run vhp::obs metrics)\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
  }
  return 0;
}
