// Ablation — transport choice (DESIGN.md §4, decision 5): the same timed
// co-simulation over the in-process queue transport vs real TCP loopback.
// Quantifies how much of the synchronization overhead is genuine socket
// cost (the part the paper measures) vs protocol logic.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace vhp;
  using namespace vhp::bench;
  const bool quick = quick_mode(argc, argv);

  print_header("ABL: in-process vs TCP loopback transport",
               "ablation of the transport layer (DESIGN.md section 4)");

  const u64 n = 40;
  const std::vector<u64> t_syncs =
      quick ? std::vector<u64>{10, 1000} : std::vector<u64>{1, 10, 100, 1000};

  std::printf("%10s %14s %14s %10s\n", "Tsync", "inproc", "tcp",
              "tcp/inproc");
  for (u64 ts : t_syncs) {
    ExperimentParams p;
    p.n_packets = n;
    p.t_sync = ts;
    p.fixed_cycles = p.traffic_span_cycles();

    p.transport = cosim::TransportKind::kInProc;
    const double t_inproc = run_router_experiment(p).wall_seconds;
    p.transport = cosim::TransportKind::kTcp;
    const double t_tcp = run_router_experiment(p).wall_seconds;

    std::printf("%10llu %13.4fs %13.4fs %9.2fx\n", (unsigned long long)ts,
                t_inproc, t_tcp, t_tcp / t_inproc);
    std::fflush(stdout);
  }
  std::printf("\nshape: the gap is largest at tight sync (per-exchange "
              "socket cost dominates) and vanishes as T_sync grows\n");
  return 0;
}
