// Fabric scaling: the N-party virtual-tick barrier under growing board
// counts (N = 1, 2, 4, 8).
//
// Each run builds an N-port router whose port-p packets are verified on
// board p — per-node work is held constant while N grows, so wall time and
// the fabric.barrier_wait_ns histogram isolate what the conservative
// barrier itself costs as parties are added. N=1 degenerates to the paper's
// two-party protocol and anchors the trajectory.
//
// Output: BENCH_fabric_scale.metrics.json — one row per N with wall time
// and the merged metrics document (master hub + per-node hubs).
#include "bench_util.hpp"

#include "vhp/fabric/fabric.hpp"

using namespace vhp;

namespace {

struct ScaleResult {
  double wall_seconds = 0;
  u64 cycles = 0;
  u64 forwarded = 0;
  u64 emitted = 0;
  u64 barriers = 0;
  u64 acks = 0;
  double barrier_wait_mean_us = 0;
  bool drained = false;
  std::string metrics_json;
};

ScaleResult run_scale_point(std::size_t n_nodes, u64 t_sync,
                            u64 packets_per_port, bool inproc) {
  fabric::FabricConfigBuilder builder;
  builder.t_sync(t_sync).watchdog(std::chrono::milliseconds{30000});
  if (!inproc) builder.tcp();
  for (std::size_t p = 0; p < n_nodes; ++p) {
    builder.add_node(strformat("node{}", p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = n_nodes;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = packets_per_port;
  tb_cfg.gap_cycles = 4000;
  tb_cfg.payload_bytes = 16;
  std::vector<cosim::DriverRegistry*> registries;
  for (std::size_t p = 0; p < n_nodes; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < n_nodes; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < n_nodes; ++p) {
    apps.push_back(std::make_unique<router::ChecksumApp>(fab.board(p),
                                                         app_cfg));
  }

  fab.start_boards();
  constexpr u64 kMaxCycles = 400000;
  constexpr u64 kChunk = 200;
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    if (!fab.run_cycles(kChunk).ok()) break;
    cycles += kChunk;
  }
  const auto end = std::chrono::steady_clock::now();
  fab.finish();

  ScaleResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.cycles = cycles;
  r.forwarded = tb.router().stats().forwarded;
  r.emitted = tb.total_emitted();
  r.barriers = fab.coordinator().barriers();
  r.acks = fab.coordinator().acks_received();
  r.barrier_wait_mean_us =
      fab.obs().metrics().histogram("fabric.barrier_wait_ns").mean_ns() / 1e3;
  r.drained = tb.traffic_done();
  r.metrics_json = fab.metrics_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "fabric scale: wall time and barrier wait vs board count",
      "Section 5.3's virtual tick generalized to an N-party barrier");
  const bool quick = bench::quick_mode(argc, argv);
  bool inproc = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--inproc") inproc = true;
  }
  const u64 t_sync = 1000;
  const u64 packets_per_port = quick ? 6 : 12;

  std::printf("%6s %12s %10s %10s %14s %10s\n", "nodes", "wall_s",
              "barriers", "acks", "wait_mean_us", "forwarded");
  std::vector<bench::JsonRow> rows;
  bool all_drained = true;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    const ScaleResult r =
        run_scale_point(n, t_sync, packets_per_port, inproc);
    all_drained = all_drained && r.drained;
    std::printf("%6zu %12.3f %10llu %10llu %14.1f %10llu%s\n", n,
                r.wall_seconds, (unsigned long long)r.barriers,
                (unsigned long long)r.acks, r.barrier_wait_mean_us,
                (unsigned long long)r.forwarded,
                r.drained ? "" : "  [NOT DRAINED]");
    bench::JsonRow row;
    row.params = strformat(
        "\"nodes\":{},\"t_sync\":{},\"packets_per_port\":{},\"cycles\":{},"
        "\"barriers\":{},\"acks\":{},\"barrier_wait_mean_us\":{},"
        "\"forwarded\":{},\"emitted\":{},\"drained\":{}",
        n, t_sync, packets_per_port, r.cycles, r.barriers, r.acks,
        r.barrier_wait_mean_us, r.forwarded, r.emitted,
        r.drained ? "true" : "false");
    row.wall_seconds = r.wall_seconds;
    row.metrics_json = r.metrics_json;
    rows.push_back(std::move(row));
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_fabric_scale.metrics.json");
  if (bench::write_bench_json(path, "fabric_scale", rows)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  return all_drained ? 0 : 1;
}
