// Fabric scaling: the N-party virtual-tick barrier under growing board
// counts (N = 1, 2, 4, 8, 16), fixed T_sync vs adaptive lookahead grants.
//
// Each run builds an N-port router whose port-p packets are verified on
// board p — per-node work is held constant while N grows, so wall time and
// the fabric.barrier_wait_ns histogram isolate what the conservative
// barrier itself costs as parties are added. N=1 degenerates to the paper's
// two-party protocol and anchors the trajectory.
//
// Every board additionally runs a housekeeping timer thread with a
// node-dependent period, so the boards are NOT in lockstep: each node's
// lookahead (next timer expiry) differs, and the adaptive rows exercise
// genuinely per-node variable quanta rather than N copies of one cadence.
//
// Output: BENCH_fabric_scale.metrics.json — one row per (N, mode) with wall
// time, barrier-wait and grant-size distributions, and the merged metrics
// document (master hub + per-node hubs; the per-node
// fabric.<name>.grant_cycles histograms ride along in metrics_json).
//
// --gate: run only N=8 fixed + adaptive and exit 1 if the adaptive mean
// barrier wait regresses above the fixed baseline (scripts/check.sh wires
// this into the adaptive gate). Mean wait per barrier is the comparable
// cost: adaptive barriers tick one desynchronized node each, so each
// gather waits on one catch-up instead of N.
#include "bench_util.hpp"

#include "vhp/fabric/fabric.hpp"

using namespace vhp;

namespace {

constexpr u64 kTsync = 1000;
// The accuracy bound on a sleeping board. Kept well under
// gap_cycles * buffer_depth so router input buffers cannot overflow while
// a board sleeps through one long grant.
constexpr u64 kMaxQuantum = 8000;
constexpr u64 kMinQuantum = 250;

struct ScaleResult {
  double wall_seconds = 0;
  u64 cycles = 0;
  u64 forwarded = 0;
  u64 emitted = 0;
  u64 barriers = 0;
  u64 acks = 0;
  u64 lookahead_acks = 0;
  u64 lookahead_unbounded = 0;
  double barrier_wait_mean_us = 0;
  double barrier_wait_total_ms = 0;
  /// Barrier wall-wait normalized by simulated cycles — the cost metric
  /// that is comparable across cadences (adaptive runs fewer barriers).
  double wait_us_per_kcycle = 0;
  u64 grants = 0;
  double grant_mean_cycles = 0;
  u64 grant_min_cycles = 0;
  u64 grant_max_cycles = 0;
  bool drained = false;
  std::string metrics_json;
};

ScaleResult run_scale_point(std::size_t n_nodes, bool adaptive,
                            u64 packets_per_port, bool inproc,
                            const std::string& record_prefix = {}) {
  fabric::FabricConfigBuilder builder;
  builder.t_sync(kTsync).watchdog(std::chrono::milliseconds{30000});
  if (!record_prefix.empty()) builder.record().timeline();
  if (adaptive) {
    builder.sync(cosim::SyncPolicy{}
                     .quantum(kTsync)
                     .adaptive()
                     .min_quantum(kMinQuantum)
                     .max_quantum(kMaxQuantum)
                     .watchdog(std::chrono::milliseconds{30000}));
  }
  if (!inproc) builder.tcp();
  for (std::size_t p = 0; p < n_nodes; ++p) {
    builder.add_node(strformat("node{}", p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = n_nodes;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = packets_per_port;
  tb_cfg.gap_cycles = 4000;
  tb_cfg.payload_bytes = 16;
  std::vector<cosim::DriverRegistry*> registries;
  for (std::size_t p = 0; p < n_nodes; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < n_nodes; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < n_nodes; ++p) {
    apps.push_back(std::make_unique<router::ChecksumApp>(fab.board(p),
                                                         app_cfg));
    // Desynchronizing housekeeping: node p wakes every 150 + 37p SW ticks,
    // so each board's lookahead (and thus adaptive grant) is different.
    const u64 period = 150 + 37 * static_cast<u64>(p);
    auto& board = fab.board(p);
    board.spawn_app("housekeeping", 4, [&board, period] {
      for (;;) {
        board.kernel().delay(SwTicks{period});
        board.kernel().consume(10);
      }
    });
  }

  fab.start_boards();
  constexpr u64 kMaxCycles = 400000;
  constexpr u64 kChunk = 200;
  const auto start = std::chrono::steady_clock::now();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    if (!fab.run_cycles(kChunk).ok()) break;
    cycles += kChunk;
  }
  const auto end = std::chrono::steady_clock::now();
  fab.finish();

  if (!record_prefix.empty()) {
    // Feed the offline analyzers: `vhptrace critical <prefix>.hw.vhprec
    // <prefix>.<node>.board.vhprec ...` must reconcile with this run's wall
    // time (the check.sh timeline smoke drives exactly that).
    Status s = fab.write_recordings(record_prefix);
    if (s.ok()) {
      std::printf("recordings: %s.hw.vhprec + %zu board sides\n",
                  record_prefix.c_str(), n_nodes);
    } else {
      std::fprintf(stderr, "recording write failed: %s\n",
                   s.to_string().c_str());
    }
    const obs::TimelineAnalysis a = fab.timeline_analysis();
    std::printf("timeline: %zu rounds, slowdown %.1fx, reconciliation "
                "error %.2f%%\n",
                a.rounds.size(), a.slowdown, a.reconciliation_error * 100.0);
  }

  ScaleResult r;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.cycles = cycles;
  r.forwarded = tb.router().stats().forwarded;
  r.emitted = tb.total_emitted();
  r.barriers = fab.coordinator().barriers();
  r.acks = fab.coordinator().acks_received();
  r.lookahead_acks = fab.coordinator().lookahead_acks();
  r.lookahead_unbounded = fab.coordinator().lookahead_unbounded();
  const auto& wait =
      fab.obs().metrics().histogram("fabric.barrier_wait_ns");
  r.barrier_wait_mean_us = wait.mean_ns() / 1e3;
  r.barrier_wait_total_ms = static_cast<double>(wait.sum_ns()) / 1e6;
  r.wait_us_per_kcycle =
      cycles == 0 ? 0
                  : static_cast<double>(wait.sum_ns()) / 1e3 /
                        (static_cast<double>(cycles) / 1e3);
  // Aggregate grant-size distribution across the per-node histograms
  // (recorded in cycles; the per-node split stays visible in metrics_json).
  u64 grant_sum = 0;
  r.grant_min_cycles = ~u64{0};
  for (std::size_t p = 0; p < n_nodes; ++p) {
    const auto& h = fab.obs().metrics().histogram(
        strformat("fabric.node{}.grant_cycles", p));
    r.grants += h.count();
    grant_sum += h.sum_ns();
    for (std::size_t b = 0; b < obs::LatencyHistogram::kBuckets; ++b) {
      if (h.bucket(b) == 0) continue;
      r.grant_min_cycles = std::min(
          r.grant_min_cycles, obs::LatencyHistogram::bucket_floor_ns(b));
      r.grant_max_cycles = std::max(
          r.grant_max_cycles,
          obs::LatencyHistogram::bucket_floor_ns(b + 1) - 1);
    }
  }
  if (r.grants == 0) r.grant_min_cycles = 0;
  r.grant_mean_cycles =
      r.grants == 0 ? 0
                    : static_cast<double>(grant_sum) /
                          static_cast<double>(r.grants);
  r.drained = tb.traffic_done();
  r.metrics_json = fab.metrics_json();
  return r;
}

bench::JsonRow to_row(std::size_t n, bool adaptive, u64 packets_per_port,
                      const ScaleResult& r) {
  bench::JsonRow row;
  row.params = strformat(
      "\"nodes\":{},\"mode\":\"{}\",\"t_sync\":{},\"min_quantum\":{},"
      "\"max_quantum\":{},\"packets_per_port\":{},\"cycles\":{},"
      "\"barriers\":{},\"acks\":{},\"lookahead_acks\":{},"
      "\"lookahead_unbounded\":{},\"barrier_wait_mean_us\":{},"
      "\"barrier_wait_total_ms\":{},\"wait_us_per_kcycle\":{},"
      "\"grants\":{},\"grant_mean_cycles\":{},\"grant_min_cycles\":{},"
      "\"grant_max_cycles\":{},\"forwarded\":{},\"emitted\":{},"
      "\"drained\":{}",
      n, adaptive ? "adaptive" : "fixed", kTsync,
      adaptive ? kMinQuantum : 0, adaptive ? kMaxQuantum : 0,
      packets_per_port, r.cycles, r.barriers, r.acks, r.lookahead_acks,
      r.lookahead_unbounded, r.barrier_wait_mean_us, r.barrier_wait_total_ms,
      r.wait_us_per_kcycle, r.grants, r.grant_mean_cycles,
      r.grant_min_cycles, r.grant_max_cycles, r.forwarded, r.emitted,
      r.drained ? "true" : "false");
  row.wall_seconds = r.wall_seconds;
  row.metrics_json = r.metrics_json;
  return row;
}

void print_row(std::size_t n, bool adaptive, const ScaleResult& r) {
  std::printf("%6zu %9s %10.3f %9llu %13.1f %15.2f %7llu-%-7llu %9llu%s\n",
              n, adaptive ? "adaptive" : "fixed", r.wall_seconds,
              (unsigned long long)r.barriers, r.barrier_wait_mean_us,
              r.wait_us_per_kcycle, (unsigned long long)r.grant_min_cycles,
              (unsigned long long)r.grant_max_cycles,
              (unsigned long long)r.forwarded,
              r.drained ? "" : "  [NOT DRAINED]");
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "fabric scale: barrier wait vs board count, fixed vs adaptive",
      "Section 5.3's virtual tick generalized to an N-party barrier with "
      "lookahead-driven variable quanta");
  const bool quick = bench::quick_mode(argc, argv);
  bool inproc = false;
  bool gate = false;
  std::string record_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--inproc") inproc = true;
    if (std::string(argv[i]) == "--gate") gate = true;
    if (std::string(argv[i]) == "--record" && i + 1 < argc) {
      record_prefix = argv[++i];
    }
  }
  const u64 packets_per_port = quick || gate || !record_prefix.empty()
                                   ? 6 : 12;

  std::printf("%6s %9s %10s %9s %13s %15s %15s %9s\n", "nodes", "mode",
              "wall_s", "barriers", "wait_mean_us", "wait_us/kcycle",
              "grant_min-max", "forwarded");

  // --record PREFIX: one armed-timeline N=8 adaptive run that writes the
  // .vhprec set for the vhptrace critical smoke (ISSUE 7 acceptance).
  const std::vector<std::size_t> node_counts =
      gate || !record_prefix.empty() ? std::vector<std::size_t>{8}
                                     : std::vector<std::size_t>{1, 2, 4, 8,
                                                                16};
  const std::vector<bool> modes = !record_prefix.empty()
                                      ? std::vector<bool>{true}
                                      : std::vector<bool>{false, true};
  std::vector<bench::JsonRow> rows;
  bool all_drained = true;
  double gate_fixed = -1, gate_adaptive = -1;
  for (const std::size_t n : node_counts) {
    for (const bool adaptive : modes) {
      const ScaleResult r = run_scale_point(n, adaptive, packets_per_port,
                                            inproc, record_prefix);
      all_drained = all_drained && r.drained;
      print_row(n, adaptive, r);
      rows.push_back(to_row(n, adaptive, packets_per_port, r));
      if (n == 8) {
        (adaptive ? gate_adaptive : gate_fixed) = r.barrier_wait_mean_us;
      }
    }
  }

  const std::string path = bench::json_output_path(
      argc, argv, "BENCH_fabric_scale.metrics.json");
  if (bench::write_bench_json(path, "fabric_scale", rows)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "\nfailed to write %s\n", path.c_str());
    return 2;
  }
  if (gate_fixed >= 0 && gate_adaptive >= 0) {
    std::printf("gate (N=8): adaptive mean barrier wait %.2f us vs fixed "
                "%.2f us (%.1fx)\n",
                gate_adaptive, gate_fixed,
                gate_adaptive > 0 ? gate_fixed / gate_adaptive : 0.0);
    if (gate && gate_adaptive > gate_fixed) {
      std::fprintf(stderr,
                   "FAIL: adaptive barrier wait regressed above the fixed "
                   "baseline at N=8\n");
      return 1;
    }
  }
  return all_drained ? 0 : 1;
}
