file(REMOVE_RECURSE
  "CMakeFiles/rtos_demo.dir/rtos_demo.cpp.o"
  "CMakeFiles/rtos_demo.dir/rtos_demo.cpp.o.d"
  "rtos_demo"
  "rtos_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
