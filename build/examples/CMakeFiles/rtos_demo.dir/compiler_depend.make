# Empty compiler generated dependencies file for rtos_demo.
# This may be replaced when dependencies are built.
