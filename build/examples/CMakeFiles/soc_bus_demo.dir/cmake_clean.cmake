file(REMOVE_RECURSE
  "CMakeFiles/soc_bus_demo.dir/soc_bus_demo.cpp.o"
  "CMakeFiles/soc_bus_demo.dir/soc_bus_demo.cpp.o.d"
  "soc_bus_demo"
  "soc_bus_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_bus_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
