# Empty compiler generated dependencies file for soc_bus_demo.
# This may be replaced when dependencies are built.
