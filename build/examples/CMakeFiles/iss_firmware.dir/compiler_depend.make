# Empty compiler generated dependencies file for iss_firmware.
# This may be replaced when dependencies are built.
