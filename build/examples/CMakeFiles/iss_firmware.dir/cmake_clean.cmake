file(REMOVE_RECURSE
  "CMakeFiles/iss_firmware.dir/iss_firmware.cpp.o"
  "CMakeFiles/iss_firmware.dir/iss_firmware.cpp.o.d"
  "iss_firmware"
  "iss_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
