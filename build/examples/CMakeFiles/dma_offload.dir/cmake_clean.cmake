file(REMOVE_RECURSE
  "CMakeFiles/dma_offload.dir/dma_offload.cpp.o"
  "CMakeFiles/dma_offload.dir/dma_offload.cpp.o.d"
  "dma_offload"
  "dma_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
