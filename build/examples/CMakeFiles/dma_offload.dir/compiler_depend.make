# Empty compiler generated dependencies file for dma_offload.
# This may be replaced when dependencies are built.
