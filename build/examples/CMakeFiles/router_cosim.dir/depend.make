# Empty dependencies file for router_cosim.
# This may be replaced when dependencies are built.
