file(REMOVE_RECURSE
  "CMakeFiles/router_cosim.dir/router_cosim.cpp.o"
  "CMakeFiles/router_cosim.dir/router_cosim.cpp.o.d"
  "router_cosim"
  "router_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
