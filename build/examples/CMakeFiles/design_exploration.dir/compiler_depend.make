# Empty compiler generated dependencies file for design_exploration.
# This may be replaced when dependencies are built.
