file(REMOVE_RECURSE
  "CMakeFiles/design_exploration.dir/design_exploration.cpp.o"
  "CMakeFiles/design_exploration.dir/design_exploration.cpp.o.d"
  "design_exploration"
  "design_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
