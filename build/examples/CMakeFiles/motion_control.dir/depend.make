# Empty dependencies file for motion_control.
# This may be replaced when dependencies are built.
