file(REMOVE_RECURSE
  "CMakeFiles/motion_control.dir/motion_control.cpp.o"
  "CMakeFiles/motion_control.dir/motion_control.cpp.o.d"
  "motion_control"
  "motion_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
