file(REMOVE_RECURSE
  "CMakeFiles/hdl_sim_demo.dir/hdl_sim_demo.cpp.o"
  "CMakeFiles/hdl_sim_demo.dir/hdl_sim_demo.cpp.o.d"
  "hdl_sim_demo"
  "hdl_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdl_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
