# Empty compiler generated dependencies file for hdl_sim_demo.
# This may be replaced when dependencies are built.
