# Empty compiler generated dependencies file for uart_console.
# This may be replaced when dependencies are built.
