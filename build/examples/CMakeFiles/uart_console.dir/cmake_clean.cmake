file(REMOVE_RECURSE
  "CMakeFiles/uart_console.dir/uart_console.cpp.o"
  "CMakeFiles/uart_console.dir/uart_console.cpp.o.d"
  "uart_console"
  "uart_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uart_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
