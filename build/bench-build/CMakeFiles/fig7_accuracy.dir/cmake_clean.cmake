file(REMOVE_RECURSE
  "../bench/fig7_accuracy"
  "../bench/fig7_accuracy.pdb"
  "CMakeFiles/fig7_accuracy.dir/fig7_accuracy.cpp.o"
  "CMakeFiles/fig7_accuracy.dir/fig7_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
