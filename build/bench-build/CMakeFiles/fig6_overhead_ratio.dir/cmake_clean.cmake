file(REMOVE_RECURSE
  "../bench/fig6_overhead_ratio"
  "../bench/fig6_overhead_ratio.pdb"
  "CMakeFiles/fig6_overhead_ratio.dir/fig6_overhead_ratio.cpp.o"
  "CMakeFiles/fig6_overhead_ratio.dir/fig6_overhead_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_overhead_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
