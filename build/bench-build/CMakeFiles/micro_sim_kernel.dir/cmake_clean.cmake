file(REMOVE_RECURSE
  "../bench/micro_sim_kernel"
  "../bench/micro_sim_kernel.pdb"
  "CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o"
  "CMakeFiles/micro_sim_kernel.dir/micro_sim_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
