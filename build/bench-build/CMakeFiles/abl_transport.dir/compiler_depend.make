# Empty compiler generated dependencies file for abl_transport.
# This may be replaced when dependencies are built.
