# Empty dependencies file for abl_data_poll.
# This may be replaced when dependencies are built.
