file(REMOVE_RECURSE
  "../bench/abl_data_poll"
  "../bench/abl_data_poll.pdb"
  "CMakeFiles/abl_data_poll.dir/abl_data_poll.cpp.o"
  "CMakeFiles/abl_data_poll.dir/abl_data_poll.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_data_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
