file(REMOVE_RECURSE
  "../bench/micro_rtos"
  "../bench/micro_rtos.pdb"
  "CMakeFiles/micro_rtos.dir/micro_rtos.cpp.o"
  "CMakeFiles/micro_rtos.dir/micro_rtos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
