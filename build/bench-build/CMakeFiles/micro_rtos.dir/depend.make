# Empty dependencies file for micro_rtos.
# This may be replaced when dependencies are built.
