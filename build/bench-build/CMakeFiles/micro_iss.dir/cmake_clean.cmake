file(REMOVE_RECURSE
  "../bench/micro_iss"
  "../bench/micro_iss.pdb"
  "CMakeFiles/micro_iss.dir/micro_iss.cpp.o"
  "CMakeFiles/micro_iss.dir/micro_iss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
