# Empty dependencies file for micro_iss.
# This may be replaced when dependencies are built.
