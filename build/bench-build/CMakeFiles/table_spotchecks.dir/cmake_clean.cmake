file(REMOVE_RECURSE
  "../bench/table_spotchecks"
  "../bench/table_spotchecks.pdb"
  "CMakeFiles/table_spotchecks.dir/table_spotchecks.cpp.o"
  "CMakeFiles/table_spotchecks.dir/table_spotchecks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_spotchecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
