# Empty dependencies file for table_spotchecks.
# This may be replaced when dependencies are built.
