# Empty compiler generated dependencies file for abl_sw_timing.
# This may be replaced when dependencies are built.
