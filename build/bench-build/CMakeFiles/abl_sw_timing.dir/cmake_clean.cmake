file(REMOVE_RECURSE
  "../bench/abl_sw_timing"
  "../bench/abl_sw_timing.pdb"
  "CMakeFiles/abl_sw_timing.dir/abl_sw_timing.cpp.o"
  "CMakeFiles/abl_sw_timing.dir/abl_sw_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sw_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
