# Empty compiler generated dependencies file for abl_link_latency.
# This may be replaced when dependencies are built.
