file(REMOVE_RECURSE
  "../bench/abl_link_latency"
  "../bench/abl_link_latency.pdb"
  "CMakeFiles/abl_link_latency.dir/abl_link_latency.cpp.o"
  "CMakeFiles/abl_link_latency.dir/abl_link_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_link_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
