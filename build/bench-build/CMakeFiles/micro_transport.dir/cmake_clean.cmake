file(REMOVE_RECURSE
  "../bench/micro_transport"
  "../bench/micro_transport.pdb"
  "CMakeFiles/micro_transport.dir/micro_transport.cpp.o"
  "CMakeFiles/micro_transport.dir/micro_transport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
