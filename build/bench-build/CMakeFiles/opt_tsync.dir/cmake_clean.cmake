file(REMOVE_RECURSE
  "../bench/opt_tsync"
  "../bench/opt_tsync.pdb"
  "CMakeFiles/opt_tsync.dir/opt_tsync.cpp.o"
  "CMakeFiles/opt_tsync.dir/opt_tsync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_tsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
