# Empty dependencies file for opt_tsync.
# This may be replaced when dependencies are built.
