# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/fiber_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_core_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_sync_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_timer_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_budget_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/board_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_pi_test[1]_include.cmake")
include("/root/repo/build/tests/net_latency_test[1]_include.cmake")
include("/root/repo/build/tests/sim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/iss_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/multidevice_test[1]_include.cmake")
include("/root/repo/build/tests/trace_log_test[1]_include.cmake")
include("/root/repo/build/tests/sim_bus_test[1]_include.cmake")
include("/root/repo/build/tests/uart_test[1]_include.cmake")
