# Empty compiler generated dependencies file for rtos_timer_test.
# This may be replaced when dependencies are built.
