file(REMOVE_RECURSE
  "CMakeFiles/rtos_timer_test.dir/rtos_timer_test.cpp.o"
  "CMakeFiles/rtos_timer_test.dir/rtos_timer_test.cpp.o.d"
  "rtos_timer_test"
  "rtos_timer_test.pdb"
  "rtos_timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
