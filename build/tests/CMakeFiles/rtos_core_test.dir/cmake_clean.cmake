file(REMOVE_RECURSE
  "CMakeFiles/rtos_core_test.dir/rtos_core_test.cpp.o"
  "CMakeFiles/rtos_core_test.dir/rtos_core_test.cpp.o.d"
  "rtos_core_test"
  "rtos_core_test.pdb"
  "rtos_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
