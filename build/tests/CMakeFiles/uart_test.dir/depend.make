# Empty dependencies file for uart_test.
# This may be replaced when dependencies are built.
