
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_latency_test.cpp" "tests/CMakeFiles/net_latency_test.dir/net_latency_test.cpp.o" "gcc" "tests/CMakeFiles/net_latency_test.dir/net_latency_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/vhp_router.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/vhp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/cosim/CMakeFiles/vhp_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/vhp_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/vhp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/vhp_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
