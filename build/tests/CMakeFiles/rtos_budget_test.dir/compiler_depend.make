# Empty compiler generated dependencies file for rtos_budget_test.
# This may be replaced when dependencies are built.
