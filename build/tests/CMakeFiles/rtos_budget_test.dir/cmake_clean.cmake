file(REMOVE_RECURSE
  "CMakeFiles/rtos_budget_test.dir/rtos_budget_test.cpp.o"
  "CMakeFiles/rtos_budget_test.dir/rtos_budget_test.cpp.o.d"
  "rtos_budget_test"
  "rtos_budget_test.pdb"
  "rtos_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
