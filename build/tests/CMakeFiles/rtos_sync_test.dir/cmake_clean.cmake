file(REMOVE_RECURSE
  "CMakeFiles/rtos_sync_test.dir/rtos_sync_test.cpp.o"
  "CMakeFiles/rtos_sync_test.dir/rtos_sync_test.cpp.o.d"
  "rtos_sync_test"
  "rtos_sync_test.pdb"
  "rtos_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
