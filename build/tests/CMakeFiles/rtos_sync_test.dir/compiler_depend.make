# Empty compiler generated dependencies file for rtos_sync_test.
# This may be replaced when dependencies are built.
