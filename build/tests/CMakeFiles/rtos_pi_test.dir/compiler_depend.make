# Empty compiler generated dependencies file for rtos_pi_test.
# This may be replaced when dependencies are built.
