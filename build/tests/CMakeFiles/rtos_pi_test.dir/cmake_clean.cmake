file(REMOVE_RECURSE
  "CMakeFiles/rtos_pi_test.dir/rtos_pi_test.cpp.o"
  "CMakeFiles/rtos_pi_test.dir/rtos_pi_test.cpp.o.d"
  "rtos_pi_test"
  "rtos_pi_test.pdb"
  "rtos_pi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_pi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
