# Empty dependencies file for multidevice_test.
# This may be replaced when dependencies are built.
