file(REMOVE_RECURSE
  "CMakeFiles/multidevice_test.dir/multidevice_test.cpp.o"
  "CMakeFiles/multidevice_test.dir/multidevice_test.cpp.o.d"
  "multidevice_test"
  "multidevice_test.pdb"
  "multidevice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidevice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
