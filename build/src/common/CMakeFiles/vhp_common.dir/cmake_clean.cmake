file(REMOVE_RECURSE
  "CMakeFiles/vhp_common.dir/bytes.cpp.o"
  "CMakeFiles/vhp_common.dir/bytes.cpp.o.d"
  "CMakeFiles/vhp_common.dir/checksum.cpp.o"
  "CMakeFiles/vhp_common.dir/checksum.cpp.o.d"
  "CMakeFiles/vhp_common.dir/fiber.cpp.o"
  "CMakeFiles/vhp_common.dir/fiber.cpp.o.d"
  "CMakeFiles/vhp_common.dir/log.cpp.o"
  "CMakeFiles/vhp_common.dir/log.cpp.o.d"
  "CMakeFiles/vhp_common.dir/status.cpp.o"
  "CMakeFiles/vhp_common.dir/status.cpp.o.d"
  "libvhp_common.a"
  "libvhp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
