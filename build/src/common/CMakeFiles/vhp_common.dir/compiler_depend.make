# Empty compiler generated dependencies file for vhp_common.
# This may be replaced when dependencies are built.
