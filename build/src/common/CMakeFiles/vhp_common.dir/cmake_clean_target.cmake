file(REMOVE_RECURSE
  "libvhp_common.a"
)
