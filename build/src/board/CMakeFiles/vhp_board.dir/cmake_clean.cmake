file(REMOVE_RECURSE
  "CMakeFiles/vhp_board.dir/board.cpp.o"
  "CMakeFiles/vhp_board.dir/board.cpp.o.d"
  "CMakeFiles/vhp_board.dir/channel_waiter.cpp.o"
  "CMakeFiles/vhp_board.dir/channel_waiter.cpp.o.d"
  "libvhp_board.a"
  "libvhp_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
