file(REMOVE_RECURSE
  "libvhp_board.a"
)
