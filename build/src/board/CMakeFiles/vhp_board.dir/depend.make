# Empty dependencies file for vhp_board.
# This may be replaced when dependencies are built.
