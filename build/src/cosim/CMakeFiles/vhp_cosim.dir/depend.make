# Empty dependencies file for vhp_cosim.
# This may be replaced when dependencies are built.
