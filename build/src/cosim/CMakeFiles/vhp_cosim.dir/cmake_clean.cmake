file(REMOVE_RECURSE
  "CMakeFiles/vhp_cosim.dir/cosim_kernel.cpp.o"
  "CMakeFiles/vhp_cosim.dir/cosim_kernel.cpp.o.d"
  "CMakeFiles/vhp_cosim.dir/driver_port.cpp.o"
  "CMakeFiles/vhp_cosim.dir/driver_port.cpp.o.d"
  "CMakeFiles/vhp_cosim.dir/session.cpp.o"
  "CMakeFiles/vhp_cosim.dir/session.cpp.o.d"
  "libvhp_cosim.a"
  "libvhp_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
