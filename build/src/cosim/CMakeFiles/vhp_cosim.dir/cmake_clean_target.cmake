file(REMOVE_RECURSE
  "libvhp_cosim.a"
)
