
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosim/cosim_kernel.cpp" "src/cosim/CMakeFiles/vhp_cosim.dir/cosim_kernel.cpp.o" "gcc" "src/cosim/CMakeFiles/vhp_cosim.dir/cosim_kernel.cpp.o.d"
  "/root/repo/src/cosim/driver_port.cpp" "src/cosim/CMakeFiles/vhp_cosim.dir/driver_port.cpp.o" "gcc" "src/cosim/CMakeFiles/vhp_cosim.dir/driver_port.cpp.o.d"
  "/root/repo/src/cosim/session.cpp" "src/cosim/CMakeFiles/vhp_cosim.dir/session.cpp.o" "gcc" "src/cosim/CMakeFiles/vhp_cosim.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/vhp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/vhp_rtos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
