file(REMOVE_RECURSE
  "libvhp_net.a"
)
