file(REMOVE_RECURSE
  "CMakeFiles/vhp_net.dir/channel.cpp.o"
  "CMakeFiles/vhp_net.dir/channel.cpp.o.d"
  "CMakeFiles/vhp_net.dir/inproc.cpp.o"
  "CMakeFiles/vhp_net.dir/inproc.cpp.o.d"
  "CMakeFiles/vhp_net.dir/latency.cpp.o"
  "CMakeFiles/vhp_net.dir/latency.cpp.o.d"
  "CMakeFiles/vhp_net.dir/message.cpp.o"
  "CMakeFiles/vhp_net.dir/message.cpp.o.d"
  "CMakeFiles/vhp_net.dir/tcp.cpp.o"
  "CMakeFiles/vhp_net.dir/tcp.cpp.o.d"
  "libvhp_net.a"
  "libvhp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
