# Empty dependencies file for vhp_net.
# This may be replaced when dependencies are built.
