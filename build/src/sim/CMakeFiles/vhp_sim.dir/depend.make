# Empty dependencies file for vhp_sim.
# This may be replaced when dependencies are built.
