file(REMOVE_RECURSE
  "CMakeFiles/vhp_sim.dir/bus.cpp.o"
  "CMakeFiles/vhp_sim.dir/bus.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/event.cpp.o"
  "CMakeFiles/vhp_sim.dir/event.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/kernel.cpp.o"
  "CMakeFiles/vhp_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/memory.cpp.o"
  "CMakeFiles/vhp_sim.dir/memory.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/module.cpp.o"
  "CMakeFiles/vhp_sim.dir/module.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/process.cpp.o"
  "CMakeFiles/vhp_sim.dir/process.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/signal.cpp.o"
  "CMakeFiles/vhp_sim.dir/signal.cpp.o.d"
  "CMakeFiles/vhp_sim.dir/trace.cpp.o"
  "CMakeFiles/vhp_sim.dir/trace.cpp.o.d"
  "libvhp_sim.a"
  "libvhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
