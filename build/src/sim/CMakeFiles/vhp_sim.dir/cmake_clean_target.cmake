file(REMOVE_RECURSE
  "libvhp_sim.a"
)
