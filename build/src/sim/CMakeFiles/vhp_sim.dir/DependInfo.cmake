
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus.cpp" "src/sim/CMakeFiles/vhp_sim.dir/bus.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/bus.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/vhp_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/vhp_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/vhp_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/module.cpp" "src/sim/CMakeFiles/vhp_sim.dir/module.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/module.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/vhp_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/signal.cpp" "src/sim/CMakeFiles/vhp_sim.dir/signal.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/signal.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/vhp_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/vhp_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
