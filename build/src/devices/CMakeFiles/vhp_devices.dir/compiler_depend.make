# Empty compiler generated dependencies file for vhp_devices.
# This may be replaced when dependencies are built.
