# Empty dependencies file for vhp_devices.
# This may be replaced when dependencies are built.
