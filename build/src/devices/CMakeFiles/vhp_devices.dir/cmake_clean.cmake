file(REMOVE_RECURSE
  "CMakeFiles/vhp_devices.dir/uart.cpp.o"
  "CMakeFiles/vhp_devices.dir/uart.cpp.o.d"
  "CMakeFiles/vhp_devices.dir/uart_driver.cpp.o"
  "CMakeFiles/vhp_devices.dir/uart_driver.cpp.o.d"
  "libvhp_devices.a"
  "libvhp_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
