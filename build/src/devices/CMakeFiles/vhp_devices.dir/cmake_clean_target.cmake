file(REMOVE_RECURSE
  "libvhp_devices.a"
)
