file(REMOVE_RECURSE
  "CMakeFiles/vhp_router.dir/checksum_app.cpp.o"
  "CMakeFiles/vhp_router.dir/checksum_app.cpp.o.d"
  "CMakeFiles/vhp_router.dir/packet.cpp.o"
  "CMakeFiles/vhp_router.dir/packet.cpp.o.d"
  "CMakeFiles/vhp_router.dir/router.cpp.o"
  "CMakeFiles/vhp_router.dir/router.cpp.o.d"
  "CMakeFiles/vhp_router.dir/testbench.cpp.o"
  "CMakeFiles/vhp_router.dir/testbench.cpp.o.d"
  "CMakeFiles/vhp_router.dir/traffic.cpp.o"
  "CMakeFiles/vhp_router.dir/traffic.cpp.o.d"
  "libvhp_router.a"
  "libvhp_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
