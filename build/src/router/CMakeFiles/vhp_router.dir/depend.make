# Empty dependencies file for vhp_router.
# This may be replaced when dependencies are built.
