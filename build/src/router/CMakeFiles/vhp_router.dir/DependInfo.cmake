
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/checksum_app.cpp" "src/router/CMakeFiles/vhp_router.dir/checksum_app.cpp.o" "gcc" "src/router/CMakeFiles/vhp_router.dir/checksum_app.cpp.o.d"
  "/root/repo/src/router/packet.cpp" "src/router/CMakeFiles/vhp_router.dir/packet.cpp.o" "gcc" "src/router/CMakeFiles/vhp_router.dir/packet.cpp.o.d"
  "/root/repo/src/router/router.cpp" "src/router/CMakeFiles/vhp_router.dir/router.cpp.o" "gcc" "src/router/CMakeFiles/vhp_router.dir/router.cpp.o.d"
  "/root/repo/src/router/testbench.cpp" "src/router/CMakeFiles/vhp_router.dir/testbench.cpp.o" "gcc" "src/router/CMakeFiles/vhp_router.dir/testbench.cpp.o.d"
  "/root/repo/src/router/traffic.cpp" "src/router/CMakeFiles/vhp_router.dir/traffic.cpp.o" "gcc" "src/router/CMakeFiles/vhp_router.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cosim/CMakeFiles/vhp_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/board/CMakeFiles/vhp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/vhp_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
