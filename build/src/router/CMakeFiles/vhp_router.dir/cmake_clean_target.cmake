file(REMOVE_RECURSE
  "libvhp_router.a"
)
