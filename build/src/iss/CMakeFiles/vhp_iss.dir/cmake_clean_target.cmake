file(REMOVE_RECURSE
  "libvhp_iss.a"
)
