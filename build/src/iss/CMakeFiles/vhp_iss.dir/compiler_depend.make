# Empty compiler generated dependencies file for vhp_iss.
# This may be replaced when dependencies are built.
