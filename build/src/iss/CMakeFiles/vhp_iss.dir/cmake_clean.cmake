file(REMOVE_RECURSE
  "CMakeFiles/vhp_iss.dir/assemble.cpp.o"
  "CMakeFiles/vhp_iss.dir/assemble.cpp.o.d"
  "CMakeFiles/vhp_iss.dir/cpu.cpp.o"
  "CMakeFiles/vhp_iss.dir/cpu.cpp.o.d"
  "CMakeFiles/vhp_iss.dir/runner.cpp.o"
  "CMakeFiles/vhp_iss.dir/runner.cpp.o.d"
  "libvhp_iss.a"
  "libvhp_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
