
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/assemble.cpp" "src/iss/CMakeFiles/vhp_iss.dir/assemble.cpp.o" "gcc" "src/iss/CMakeFiles/vhp_iss.dir/assemble.cpp.o.d"
  "/root/repo/src/iss/cpu.cpp" "src/iss/CMakeFiles/vhp_iss.dir/cpu.cpp.o" "gcc" "src/iss/CMakeFiles/vhp_iss.dir/cpu.cpp.o.d"
  "/root/repo/src/iss/runner.cpp" "src/iss/CMakeFiles/vhp_iss.dir/runner.cpp.o" "gcc" "src/iss/CMakeFiles/vhp_iss.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/board/CMakeFiles/vhp_board.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/vhp_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
