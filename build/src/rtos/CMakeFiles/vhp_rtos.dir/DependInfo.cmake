
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtos/device.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/device.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/device.cpp.o.d"
  "/root/repo/src/rtos/interrupt.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/interrupt.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/interrupt.cpp.o.d"
  "/root/repo/src/rtos/kernel.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/kernel.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/kernel.cpp.o.d"
  "/root/repo/src/rtos/scheduler.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/scheduler.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/scheduler.cpp.o.d"
  "/root/repo/src/rtos/sync.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/sync.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/sync.cpp.o.d"
  "/root/repo/src/rtos/thread.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/thread.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/thread.cpp.o.d"
  "/root/repo/src/rtos/timer.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/timer.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/timer.cpp.o.d"
  "/root/repo/src/rtos/wait_queue.cpp" "src/rtos/CMakeFiles/vhp_rtos.dir/wait_queue.cpp.o" "gcc" "src/rtos/CMakeFiles/vhp_rtos.dir/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
