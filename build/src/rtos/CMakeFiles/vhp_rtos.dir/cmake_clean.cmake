file(REMOVE_RECURSE
  "CMakeFiles/vhp_rtos.dir/device.cpp.o"
  "CMakeFiles/vhp_rtos.dir/device.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/interrupt.cpp.o"
  "CMakeFiles/vhp_rtos.dir/interrupt.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/kernel.cpp.o"
  "CMakeFiles/vhp_rtos.dir/kernel.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/scheduler.cpp.o"
  "CMakeFiles/vhp_rtos.dir/scheduler.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/sync.cpp.o"
  "CMakeFiles/vhp_rtos.dir/sync.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/thread.cpp.o"
  "CMakeFiles/vhp_rtos.dir/thread.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/timer.cpp.o"
  "CMakeFiles/vhp_rtos.dir/timer.cpp.o.d"
  "CMakeFiles/vhp_rtos.dir/wait_queue.cpp.o"
  "CMakeFiles/vhp_rtos.dir/wait_queue.cpp.o.d"
  "libvhp_rtos.a"
  "libvhp_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhp_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
