# Empty dependencies file for vhp_rtos.
# This may be replaced when dependencies are built.
