file(REMOVE_RECURSE
  "libvhp_rtos.a"
)
