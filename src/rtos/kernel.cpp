#include "vhp/rtos/kernel.hpp"

#include <cassert>
#include <thread>

namespace vhp::rtos {

Kernel::Kernel(KernelConfig config) : config_(config) {
  assert(config_.cycles_per_tick > 0);
  assert(config_.timeslice_ticks > 0);
  assert(config_.cores >= 1);
  extra_cycles_.assign(config_.cores - 1, 0);
  extra_budget_.assign(config_.cores - 1, 0);
  // One idle thread per core, each pinned: the per-core budget must drain
  // through its own core so a freeze happens exactly when every core has
  // reached the grant wall. Core 0 keeps the legacy name "idle".
  idle_threads_.reserve(config_.cores);
  for (u32 c = 0; c < config_.cores; ++c) {
    Thread& t = spawn(c == 0 ? "idle" : "idle/" + std::to_string(c),
                      Thread::kIdlePriority, [this, c] { idle_loop(c); });
    t.set_comm_thread(true);
    if (config_.cores > 1) t.set_affinity(static_cast<int>(c));
    idle_threads_.push_back(&t);
  }
  idle_thread_ = idle_threads_[0];
}

Kernel::~Kernel() = default;

Thread& Kernel::spawn(std::string name, int priority, Thread::Entry entry,
                      std::size_t stack_bytes) {
  auto thread = std::make_unique<Thread>(*this, std::move(name), priority,
                                         std::move(entry), stack_bytes);
  Thread& ref = *thread;
  threads_.push_back(std::move(thread));
  ref.timeslice_left_ = config_.timeslice_ticks;
  ref.state_ = Thread::State::kReady;
  scheduler_.make_ready(&ref);
  return ref;
}

void Kernel::run(bool until_quiescent) {
  assert(current_ == nullptr && "run() re-entered from thread context");
  in_run_loop_ = true;
  while (!shutdown_ && !(step_mode_ && starved_)) {
    Thread* next = nullptr;
    if (config_.cores <= 1) {
      interrupts_.run_pending_dsrs();
      if (until_quiescent && quiescent()) break;
      next = scheduler_.pick(state_ == OsState::kIdle);
    } else {
      // SMP sweep: visit cores round-robin from the rotation point, drain
      // each core's routed DSRs (they run "in that core's interrupt
      // context": current_core_ is set while they execute), and dispatch
      // the first core with an eligible thread. The rotation point advances
      // past the dispatched core so every core makes progress.
      u32 picked_core = 0;
      for (u32 i = 0; i < config_.cores; ++i) {
        const u32 core = (dispatch_rr_ + i) % config_.cores;
        current_core_ = core;
        interrupts_.run_pending_dsrs_for_core(core);
        if (next == nullptr) {
          Thread* t = scheduler_.pick_for_core(core, state_ == OsState::kIdle);
          if (t != nullptr) {
            next = t;
            picked_core = core;
          }
        }
      }
      if (until_quiescent && quiescent()) break;
      current_core_ = picked_core;
      dispatch_rr_ = (picked_core + 1) % config_.cores;
    }
    if (shutdown_) break;
    // The idle threads never block and are communication threads, so the
    // scheduler always finds at least one of them.
    assert(next != nullptr && "no runnable thread, idle thread missing?");
    current_ = next;
    current_->state_ = Thread::State::kRunning;
    ++stats_.context_switches;
    if (switch_trace_) switch_trace_(*next);
    current_->fiber_.resume();
    if (current_ != nullptr && current_->state_ == Thread::State::kRunning) {
      current_->state_ = Thread::State::kReady;
    }
    current_ = nullptr;
  }
  in_run_loop_ = false;
}

bool Kernel::run_until_starved() {
  if (shutdown_) return false;
  step_mode_ = true;
  starved_ = false;
  run(false);
  step_mode_ = false;
  return !shutdown_;
}

void Kernel::shutdown() {
  shutdown_ = true;
  // If called from thread context, bounce back to the run loop so it can
  // observe the flag; if called externally (before run()), this is a no-op.
  if (current_ != nullptr) reschedule_current();
}

void Kernel::yield() {
  assert(current_ != nullptr && "yield() outside thread context");
  scheduler_.rotate(current_->priority());
  reschedule_current();
}

void Kernel::reschedule_current() {
  assert(current_ != nullptr);
  Fiber::yield_to_resumer();
}

void Kernel::block_current(WaitQueue& queue) {
  Thread* self = current_;
  assert(self != nullptr && "blocking outside thread context");
  assert(!is_idle_thread(self) && "an idle thread must never block");
  self->state_ = Thread::State::kBlocked;
  self->waiting_on_ = &queue;
  scheduler_.remove(self);
  queue.waiters_.push_back(self);
  reschedule_current();
  // Woken (or timed out): we are ready and running again.
}

void Kernel::make_ready(Thread* thread) {
  if (thread->state_ == Thread::State::kReady ||
      thread->state_ == Thread::State::kRunning ||
      thread->state_ == Thread::State::kExited) {
    return;
  }
  thread->state_ = Thread::State::kReady;
  thread->waiting_on_ = nullptr;
  scheduler_.make_ready(thread);
  // SMP: a wake preempts only if the woken thread can run on the core the
  // current thread occupies — a thread pinned elsewhere waits for its own
  // core's next dispatch (single-core: runs_on() is always true).
  if (current_ != nullptr && thread->priority() < current_->priority() &&
      thread->runs_on(current_core_)) {
    need_resched_ = true;  // preempt at the next preemption point
  }
}

void Kernel::set_effective_priority(Thread* thread, int priority) {
  if (thread->priority_ == priority) return;
  const bool queued = thread->state_ == Thread::State::kReady ||
                      thread->state_ == Thread::State::kRunning;
  if (queued) scheduler_.remove(thread);
  thread->priority_ = priority;
  if (queued) scheduler_.make_ready(thread);
  if (current_ != nullptr && thread != current_ &&
      priority < current_->priority() && thread->runs_on(current_core_)) {
    need_resched_ = true;
  }
}

void Kernel::join(Thread& thread) {
  assert(current_ != &thread && "a thread cannot join itself");
  // Joiners all share one queue and re-check their target on every exit
  // broadcast; simple and adequate for the few joins an embedded app does.
  while (thread.state() != Thread::State::kExited) join_wait_.wait();
}

void Kernel::on_thread_exit(Thread* thread) {
  scheduler_.remove(thread);
  join_wait_.wake_all();
  // The fiber trampoline returns control to the run loop after this.
}

void Kernel::timer_tick() {
  ++tick_count_;
  ++stats_.ticks;
  rtc_.advance(1);  // fires due alarms: delays, timeouts, app alarms
  Thread* t = current_;
  if (t != nullptr && !is_idle_thread(t)) {
    if (t->timeslice_left_ > 0) --t->timeslice_left_;
    if (t->timeslice_left_ == 0) {
      t->timeslice_left_ = config_.timeslice_ticks;
      scheduler_.rotate(t->priority());
      need_resched_ = true;
    }
  }
}

u64 Kernel::consume(u64 cycles) {
  assert(current_ != nullptr && "consume() outside thread context");
  const u64 requested = cycles;
  while (cycles > 0) {
    // Re-read the core each iteration: an any-core thread that blocked (or
    // was preempted) inside this consume() may resume on a different core.
    const u32 core = current_core_;
    if (config_.budget_mode && core_budget(core) == 0) {
      enter_idle_state();
      if (is_idle_thread(current_) || current_->is_comm_thread()) {
        // Machinery threads never block on the budget; they are outside
        // the timing model and must stay runnable to thaw the OS.
        return requested - cycles;
      }
      // The freeze callback may have granted synchronously (tests do;
      // the real board grants later from the systemc thread) — re-check
      // before blocking or the wake is lost.
      if (core_budget(core) == 0) budget_wait_.wait();
      continue;
    }
    u64& count = core_cycles(core);
    u64 chunk =
        config_.cycles_per_tick - (count % config_.cycles_per_tick);
    chunk = std::min(chunk, cycles);
    if (config_.budget_mode) chunk = std::min(chunk, core_budget(core));
    count += chunk;
    cycles -= chunk;
    if (config_.budget_mode) core_budget(core) -= chunk;
    // The HW timer lives on core 0 (the boot core): RTC ticks follow core
    // 0's cycle counter, as on real SMP hardware with one global timer.
    if (core == 0 && count % config_.cycles_per_tick == 0) timer_tick();
    if (need_resched_) {
      need_resched_ = false;
      reschedule_current();
    }
  }
  return requested;
}

void Kernel::delay(SwTicks ticks) {
  assert(current_ != nullptr && "delay() outside thread context");
  if (ticks.value() == 0) {
    yield();
    return;
  }
  WaitQueue sleep_queue{*this};
  Thread* self = current_;
  Alarm wakeup(rtc_, [&sleep_queue, self, this](Alarm&, u64) {
    if (sleep_queue.remove(self)) make_ready(self);
  });
  wakeup.arm_in(ticks.value());
  block_current(sleep_queue);
}

void Kernel::grant_cycles(u64 cycles) {
  // Every core receives the same slice: the cores advance through the same
  // grant wall in lockstep virtual time, which is what keeps the freeze
  // (and thus the TIME_ACK) a board-wide event.
  budget_cycles_ += cycles;
  for (u64& budget : extra_budget_) budget += cycles;
  ++stats_.grants;
  if (state_ == OsState::kIdle) {
    state_ = OsState::kNormal;
    if (state_trace_) state_trace_(state_, tick_count_);
    budget_wait_.wake_all();
    need_resched_ = true;
  }
}

std::optional<u64> Kernel::next_event_cycles() const {
  // Work that resumes on the very next grant: a pending DSR, a thread
  // starved mid-consume on the budget, or any runnable application thread
  // (the freeze callback runs in the context of the thread that exhausted
  // the budget, so that thread shows up here as kRunning).
  if (interrupts_.dsr_pending()) return 0;
  if (!budget_wait_.empty()) return 0;
  for (const auto& t : threads_) {
    if (t.get() == idle_thread_ || t->is_comm_thread()) continue;
    if (t->state() == Thread::State::kReady ||
        t->state() == Thread::State::kRunning) {
      return 0;
    }
  }
  if (const auto trigger = rtc_.next_trigger()) {
    const u64 now = rtc_.value();
    if (*trigger <= now) return 0;
    const u64 ticks = *trigger - now;
    if (ticks > ~u64{0} / config_.cycles_per_tick) return std::nullopt;
    // The alarm fires when the RTC has advanced `ticks` more ticks; the
    // current tick is already partially consumed.
    return ticks * config_.cycles_per_tick -
           (cycle_count_ % config_.cycles_per_tick);
  }
  return std::nullopt;  // idle until data arrives
}

bool Kernel::all_cores_exhausted() const {
  if (budget_cycles_ != 0) return false;
  for (const u64 budget : extra_budget_) {
    if (budget != 0) return false;
  }
  return true;
}

void Kernel::enter_idle_state() {
  if (state_ == OsState::kIdle) return;
  // SMP: one drained core is not a board-wide freeze — the other cores
  // still owe their share of the grant. The last core to drain freezes.
  if (!all_cores_exhausted()) return;
  state_ = OsState::kIdle;
  ++stats_.freezes;
  log_.trace("freeze at tick {}", tick_count_.value());
  if (state_trace_) state_trace_(state_, tick_count_);
  if (freeze_cb_) freeze_cb_(tick_count_);
}

void Kernel::idle_loop(u32 core) {
  for (;;) {
    bool advanced = false;
    if (state_ == OsState::kNormal) {
      if (config_.budget_mode) {
        if (core_budget(core) > 0) {
          // Nothing else wants this core: idle time consumes the budget so
          // virtual time always reaches the next synchronization point.
          // The whole remaining budget goes in one consume() — its per-tick
          // loop fires alarms at their exact ticks and reschedules the
          // moment one wakes a thread, so a board sleeping through a long
          // adaptive grant costs per-tick arithmetic, not a scheduler
          // round-trip per tick.
          stats_.idle_cycles += consume(core_budget(core));
          advanced = true;
        } else {
          // This core drained its slice; freezes the board only if it was
          // the last one (enter_idle_state checks).
          enter_idle_state();
          advanced = true;
        }
      } else if (core == 0 && rtc_.has_pending_alarms()) {
        // Standalone mode: advance virtual time only when someone is
        // waiting for it — as fast as the host allows, or paced to the
        // wall clock when real_time_tick is set (the physical board's
        // 1 ms HW timer behaviour).
        if (config_.real_time_tick.count() > 0) {
          if (rt_next_tick_ == std::chrono::steady_clock::time_point{}) {
            rt_next_tick_ = std::chrono::steady_clock::now();
          }
          rt_next_tick_ += config_.real_time_tick;
          std::this_thread::sleep_until(rt_next_tick_);
        }
        const u64 chunk =
            config_.cycles_per_tick - (cycle_count_ % config_.cycles_per_tick);
        stats_.idle_cycles += chunk;
        consume(chunk);
        advanced = true;
      }
    }
    if (!advanced && core == 0) {
      // Frozen (or truly idle): poll the outside world, gently. Core 0
      // polls for the whole board; the other cores' idle threads just
      // rotate through so the sweep doesn't spin on the host. In
      // cooperative stepping, a fruitless poll means nothing can advance
      // until external input arrives — hand the host thread back.
      if (idle_poll_) {
        const bool progressed = idle_poll_();
        if (step_mode_ && !progressed) starved_ = true;
      } else {
        if (step_mode_) starved_ = true;
        std::this_thread::yield();
      }
    }
    yield();
  }
}

bool Kernel::quiescent() const {
  for (const auto& t : threads_) {
    if (is_idle_thread(t.get())) continue;
    if (t->state() != Thread::State::kExited) return false;
  }
  return true;
}

}  // namespace vhp::rtos
