#include "vhp/rtos/timer.hpp"

#include <cassert>

namespace vhp::rtos {

Alarm::Alarm(Counter& counter, Handler handler)
    : counter_(counter), handler_(std::move(handler)) {
  assert(handler_ && "alarm needs a handler");
}

Alarm::~Alarm() { disarm(); }

void Alarm::arm_at(u64 trigger, u64 period) {
  disarm();
  trigger_ = trigger;
  period_ = period;
  armed_ = true;
  if (trigger_ <= counter_.value()) {
    // eCos fires immediately-due alarms on the next counter advance;
    // we match that by clamping the trigger to the next count.
    trigger_ = counter_.value() + 1;
  }
  counter_.enqueue(this);
}

void Alarm::arm_in(u64 delta, u64 period) {
  arm_at(counter_.value() + delta, period);
}

void Alarm::disarm() {
  if (!armed_) return;
  counter_.dequeue(this);
  armed_ = false;
}

void Counter::enqueue(Alarm* alarm) {
  pending_.emplace(alarm->trigger_, alarm);
}

void Counter::dequeue(Alarm* alarm) {
  auto [lo, hi] = pending_.equal_range(alarm->trigger_);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == alarm) {
      pending_.erase(it);
      return;
    }
  }
}

void Counter::advance(u64 n) {
  value_ += n;
  while (!pending_.empty() && pending_.begin()->first <= value_) {
    Alarm* alarm = pending_.begin()->second;
    pending_.erase(pending_.begin());
    alarm->armed_ = false;
    const u64 fired_at = alarm->trigger_;
    if (alarm->period_ > 0) {
      // Re-arm before the handler so the handler may disarm.
      alarm->trigger_ = fired_at + alarm->period_;
      alarm->armed_ = true;
      enqueue(alarm);
    }
    alarm->handler_(*alarm, value_);
  }
}

}  // namespace vhp::rtos
