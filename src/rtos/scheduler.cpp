#include "vhp/rtos/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace vhp::rtos {

void Scheduler::make_ready(Thread* thread) {
  const auto p = static_cast<std::size_t>(thread->priority());
  assert(p < ready_.size());
  assert(std::find(ready_[p].begin(), ready_[p].end(), thread) ==
             ready_[p].end() &&
         "thread already in a ready queue");
  ready_[p].push_back(thread);
  bitmap_ |= (1u << p);
}

void Scheduler::remove(Thread* thread) {
  const auto p = static_cast<std::size_t>(thread->priority());
  auto& q = ready_[p];
  std::erase(q, thread);
  if (q.empty()) bitmap_ &= ~(1u << p);
}

Thread* Scheduler::pick(bool idle_state) const {
  if (!idle_state) {
    if (bitmap_ == 0) return nullptr;
    const auto p = static_cast<std::size_t>(std::countr_zero(bitmap_));
    return ready_[p].front();
  }
  // Idle (frozen) state: only communication threads may run; the bitmap
  // is not enough, scan queues in priority order.
  u32 bits = bitmap_;
  while (bits != 0) {
    const auto p = static_cast<std::size_t>(std::countr_zero(bits));
    for (Thread* t : ready_[p]) {
      if (t->is_comm_thread()) return t;
    }
    bits &= bits - 1;
  }
  return nullptr;
}

Thread* Scheduler::pick_for_core(u32 core, bool idle_state) const {
  u32 bits = bitmap_;
  while (bits != 0) {
    const auto p = static_cast<std::size_t>(std::countr_zero(bits));
    for (Thread* t : ready_[p]) {
      if (!t->runs_on(core)) continue;
      if (idle_state && !t->is_comm_thread()) continue;
      return t;
    }
    bits &= bits - 1;
  }
  return nullptr;
}

void Scheduler::rotate(int priority) {
  auto& q = ready_[static_cast<std::size_t>(priority)];
  if (q.size() < 2) return;
  Thread* head = q.front();
  q.pop_front();
  q.push_back(head);
}

}  // namespace vhp::rtos
