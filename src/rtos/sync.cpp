#include "vhp/rtos/sync.hpp"

#include <algorithm>
#include <cassert>

#include "vhp/rtos/kernel.hpp"

namespace vhp::rtos {

void Mutex::lock() {
  Thread* self = kernel_.current();
  assert(self != nullptr && "Mutex::lock outside thread context");
  assert(owner_ != self && "recursive Mutex::lock");
  while (owner_ != nullptr) {
    if (protocol_ == Protocol::kInherit &&
        self->priority() < owner_->priority()) {
      // Classic priority inheritance: the owner runs at the highest
      // priority among its waiters until it releases.
      kernel_.set_effective_priority(owner_, self->priority());
    }
    queue_.wait();
  }
  acquire(self);
}

bool Mutex::try_lock() {
  if (owner_ != nullptr) return false;
  acquire(kernel_.current());
  return true;
}

void Mutex::acquire(Thread* self) {
  owner_ = self;
  if (protocol_ == Protocol::kInherit && self != nullptr) {
    self->held_pi_mutexes_.push_back(this);
  }
}

int Mutex::top_waiter_priority() const {
  int best = Thread::kPriorities;  // sentinel: no boost
  for (const Thread* t : queue_.waiters()) {
    best = std::min(best, t->priority());
  }
  return best;
}

void Mutex::unlock() {
  Thread* self = kernel_.current();
  assert(owner_ == self && "unlock by non-owner");
  owner_ = nullptr;
  if (protocol_ == Protocol::kInherit && self != nullptr) {
    std::erase(self->held_pi_mutexes_, this);
    // De-boost to base priority, except for boosts still owed to other
    // held priority-inheriting mutexes.
    int priority = self->base_priority();
    for (const Mutex* m : self->held_pi_mutexes_) {
      priority = std::min(priority, m->top_waiter_priority());
    }
    kernel_.set_effective_priority(self, priority);
  }
  queue_.wake_one();
}

void Semaphore::wait() {
  while (count_ == 0) queue_.wait();
  --count_;
}

bool Semaphore::wait_ticks(SwTicks timeout) {
  while (count_ == 0) {
    if (!queue_.wait_ticks(timeout)) return false;
  }
  --count_;
  return true;
}

bool Semaphore::try_wait() {
  if (count_ == 0) return false;
  --count_;
  return true;
}

void Semaphore::post() {
  ++count_;
  queue_.wake_one();
}

void EventFlag::set(u32 bits) {
  bits_ |= bits;
  queue_.wake_all();  // waiters re-check their masks
}

u32 EventFlag::wait_any(u32 mask) {
  while ((bits_ & mask) == 0) queue_.wait();
  const u32 matched = bits_ & mask;
  bits_ &= ~matched;
  return matched;
}

std::optional<u32> EventFlag::wait_any_ticks(u32 mask, SwTicks timeout) {
  while ((bits_ & mask) == 0) {
    if (!queue_.wait_ticks(timeout)) return std::nullopt;
  }
  const u32 matched = bits_ & mask;
  bits_ &= ~matched;
  return matched;
}

}  // namespace vhp::rtos
