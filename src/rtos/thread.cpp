#include "vhp/rtos/thread.hpp"

#include <cassert>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/scheduler.hpp"

namespace vhp::rtos {

Thread::Thread(Kernel& kernel, std::string name, int priority, Entry entry,
               std::size_t stack_bytes)
    : kernel_(kernel),
      name_(std::move(name)),
      priority_(priority),
      base_priority_(priority),
      entry_(std::move(entry)),
      fiber_(
          [this] {
            entry_();
            // Thread function returned: unschedule before the fiber
            // finishes so the run loop never re-picks this thread.
            state_ = State::kExited;
            kernel_.on_thread_exit(this);
          },
          stack_bytes) {
  assert(priority >= 0 && priority < kPriorities);
}

}  // namespace vhp::rtos
