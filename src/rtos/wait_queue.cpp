#include "vhp/rtos/wait_queue.hpp"

#include <cassert>

#include "vhp/rtos/kernel.hpp"

namespace vhp::rtos {

WaitQueue::~WaitQueue() {
  assert(waiters_.empty() &&
         "destroying a wait queue with blocked threads strands them");
}

void WaitQueue::wait() {
  Thread* self = kernel_.current();
  assert(self != nullptr && "wait() outside thread context");
  self->timed_out_ = false;
  kernel_.block_current(*this);
}

bool WaitQueue::wait_ticks(SwTicks timeout_ticks) {
  Thread* self = kernel_.current();
  assert(self != nullptr && "wait_ticks() outside thread context");
  self->timed_out_ = false;
  Alarm timeout(kernel_.real_time_clock(), [this, self](Alarm&, u64) {
    if (remove(self)) {
      self->timed_out_ = true;
      kernel_.make_ready(self);
    }
  });
  timeout.arm_in(timeout_ticks.value());
  kernel_.block_current(*this);
  // Back here after wake or timeout; the alarm destructor disarms.
  return !self->timed_out_;
}

void WaitQueue::wake_one() {
  if (waiters_.empty()) return;
  Thread* t = waiters_.front();
  waiters_.pop_front();
  kernel_.make_ready(t);
}

void WaitQueue::wake_all() {
  while (!waiters_.empty()) wake_one();
}

bool WaitQueue::remove(Thread* thread) {
  const auto before = waiters_.size();
  std::erase(waiters_, thread);
  return waiters_.size() != before;
}

}  // namespace vhp::rtos
