#include "vhp/rtos/device.hpp"

#include "vhp/common/format.hpp"

namespace vhp::rtos {

Status DeviceTable::register_device(const std::string& name,
                                    std::unique_ptr<Device> device) {
  if (devices_.contains(name)) {
    return Status{StatusCode::kAlreadyExists,
                  strformat("device '{}' already registered", name)};
  }
  devices_.emplace(name, Entry{std::move(device), false});
  return Status::Ok();
}

Result<Device*> DeviceTable::lookup(const std::string& name) {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return Status{StatusCode::kNotFound,
                  strformat("no device '{}' in devtab", name)};
  }
  if (!it->second.opened) {
    Status s = it->second.device->open();
    if (!s.ok()) return s;
    it->second.opened = true;
  }
  return it->second.device.get();
}

}  // namespace vhp::rtos
