#include "vhp/rtos/interrupt.hpp"

#include "vhp/rtos/kernel.hpp"

namespace vhp::rtos {

void InterruptController::attach(u32 vector, InterruptHandler handler,
                                 u32 core) {
  handlers_[vector] = Entry{std::move(handler), core, /*masked=*/false, 0};
}

void InterruptController::detach(u32 vector) { handlers_.erase(vector); }

void InterruptController::route(u32 vector, u32 core) {
  auto it = handlers_.find(vector);
  if (it != handlers_.end()) it->second.core = core;
}

u32 InterruptController::core_of(u32 vector) const {
  auto it = handlers_.find(vector);
  return it == handlers_.end() ? 0 : it->second.core;
}

void InterruptController::mask(u32 vector) {
  auto it = handlers_.find(vector);
  if (it != handlers_.end()) it->second.masked = true;
}

void InterruptController::unmask(u32 vector) {
  auto it = handlers_.find(vector);
  if (it == handlers_.end()) return;
  it->second.masked = false;
  while (it->second.pending_while_masked > 0) {
    --it->second.pending_while_masked;
    raise(vector);
  }
}

void InterruptController::raise(u32 vector) {
  auto it = handlers_.find(vector);
  if (it == handlers_.end()) {
    ++spurious_;
    return;
  }
  if (it->second.masked) {
    ++it->second.pending_while_masked;
    return;
  }
  const IsrResult result =
      it->second.handler.isr ? it->second.handler.isr(vector)
                             : IsrResult::kCallDsr;
  if (result == IsrResult::kCallDsr && it->second.handler.dsr) {
    dsr_queue_.push_back(PendingDsr{vector, it->second.core});
  }
}

void InterruptController::run_dsr(u32 vector) {
  auto it = handlers_.find(vector);
  if (it != handlers_.end() && it->second.handler.dsr) {
    it->second.handler.dsr(vector);
  }
}

void InterruptController::run_pending_dsrs() {
  while (!dsr_queue_.empty()) {
    const u32 vector = dsr_queue_.front().vector;
    dsr_queue_.pop_front();
    run_dsr(vector);
  }
}

void InterruptController::run_pending_dsrs_for_core(u32 core) {
  // Drain in queue order, skipping entries routed elsewhere. A DSR may
  // raise further interrupts; only entries present at entry are considered
  // (the classic snapshot-drain, so a self-raising DSR cannot livelock the
  // dispatch loop).
  std::size_t remaining = dsr_queue_.size();
  while (remaining-- > 0 && !dsr_queue_.empty()) {
    const PendingDsr pending = dsr_queue_.front();
    dsr_queue_.pop_front();
    if (pending.core == core) {
      run_dsr(pending.vector);
    } else {
      dsr_queue_.push_back(pending);
    }
  }
}

}  // namespace vhp::rtos
