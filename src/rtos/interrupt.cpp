#include "vhp/rtos/interrupt.hpp"

#include "vhp/rtos/kernel.hpp"

namespace vhp::rtos {

void InterruptController::attach(u32 vector, InterruptHandler handler) {
  handlers_[vector] = Entry{std::move(handler), /*masked=*/false, 0};
}

void InterruptController::detach(u32 vector) { handlers_.erase(vector); }

void InterruptController::mask(u32 vector) {
  auto it = handlers_.find(vector);
  if (it != handlers_.end()) it->second.masked = true;
}

void InterruptController::unmask(u32 vector) {
  auto it = handlers_.find(vector);
  if (it == handlers_.end()) return;
  it->second.masked = false;
  while (it->second.pending_while_masked > 0) {
    --it->second.pending_while_masked;
    raise(vector);
  }
}

void InterruptController::raise(u32 vector) {
  auto it = handlers_.find(vector);
  if (it == handlers_.end()) {
    ++spurious_;
    return;
  }
  if (it->second.masked) {
    ++it->second.pending_while_masked;
    return;
  }
  const IsrResult result =
      it->second.handler.isr ? it->second.handler.isr(vector)
                             : IsrResult::kCallDsr;
  if (result == IsrResult::kCallDsr && it->second.handler.dsr) {
    dsr_queue_.push_back(vector);
  }
}

void InterruptController::run_pending_dsrs() {
  while (!dsr_queue_.empty()) {
    const u32 vector = dsr_queue_.front();
    dsr_queue_.pop_front();
    auto it = handlers_.find(vector);
    if (it != handlers_.end() && it->second.handler.dsr) {
      it->second.handler.dsr(vector);
    }
  }
}

}  // namespace vhp::rtos
