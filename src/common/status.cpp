#include "vhp/common/status.hpp"

namespace vhp {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kConnectionReset: return "CONNECTION_RESET";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string s{vhp::to_string(code_)};
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace vhp
