#include "vhp/common/bytes.hpp"

#include "vhp/common/format.hpp"

namespace vhp {

std::string hex_dump(std::span<const u8> data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 8);
  static constexpr char kHex[] = "0123456789abcdef";
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (data.size() > n) out += vhp::strformat(" ...(+{})", data.size() - n);
  return out;
}

}  // namespace vhp
