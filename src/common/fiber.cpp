#include "vhp/common/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <system_error>

namespace vhp {
namespace {

thread_local Fiber* tls_current_fiber = nullptr;

std::size_t page_size() {
  static const auto sz = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return sz;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : fn_(std::move(fn)) {
  assert(fn_ && "fiber needs a function");
  const std::size_t ps = page_size();
  const std::size_t usable = round_up(stack_bytes, ps);
  mapping_size_ = usable + ps;  // + guard page at the low end
  mapping_ = ::mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (mapping_ == MAP_FAILED) {
    throw std::system_error(errno, std::generic_category(), "fiber stack mmap");
  }
  if (::mprotect(mapping_, ps, PROT_NONE) != 0) {
    ::munmap(mapping_, mapping_size_);
    throw std::system_error(errno, std::generic_category(), "fiber guard page");
  }
  ::getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = static_cast<char*>(mapping_) + ps;
  ctx_.uc_stack.ss_size = usable;
  ctx_.uc_link = nullptr;  // function return is handled in the trampoline
  // makecontext only passes ints; smuggle the pointer through two halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  // Destroying a suspended fiber is legal (an RTOS tears down blocked
  // threads at shutdown) but skips destructors of objects live on the
  // fiber's stack; fiber entry functions must not own resources across
  // suspension points that outlive the owning subsystem.
  if (mapping_ != nullptr) ::munmap(mapping_, mapping_size_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  self->run_body();
}

void Fiber::run_body() {
  try {
    fn_();
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
  // Return control to the last resumer; this context is never resumed again.
  ::swapcontext(&ctx_, &resumer_);
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(!finished_ && "cannot resume a finished fiber");
  assert(tls_current_fiber != this && "fiber cannot resume itself");
  Fiber* prev = tls_current_fiber;
  tls_current_fiber = this;
  started_ = true;
  ::swapcontext(&resumer_, &ctx_);
  tls_current_fiber = prev;
  if (finished_ && exception_ != nullptr) {
    std::exception_ptr ex = exception_;
    exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield_to_resumer() {
  Fiber* self = tls_current_fiber;
  assert(self != nullptr && "yield_to_resumer outside any fiber");
  ::swapcontext(&self->ctx_, &self->resumer_);
}

Fiber* Fiber::current() { return tls_current_fiber; }

}  // namespace vhp
