#include "vhp/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace vhp::log_detail {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("VHP_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_env_level()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

}  // namespace

LogLevel threshold() { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(LogLevel level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void emit(LogLevel level, std::string_view component, std::string_view text) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  static std::mutex mu;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  std::scoped_lock lock(mu);
  std::fprintf(stderr, "[%10.6f] %s %-6.*s %.*s\n",
               static_cast<double>(us) * 1e-6, level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(text.size()), text.data());
}

}  // namespace vhp::log_detail
