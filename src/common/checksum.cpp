#include "vhp/common/checksum.hpp"

#include <array>

namespace vhp {

u16 internet_checksum(std::span<const u8> data) {
  // One's-complement sum of 16-bit big-endian words, odd byte padded with 0.
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<u32>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<u32>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return static_cast<u16>(~sum & 0xffffu);
}

bool internet_checksum_ok(std::span<const u8> data) {
  // A buffer with a correct embedded checksum sums (uncomplemented) to
  // 0xFFFF, i.e. internet_checksum() of it is 0.
  return internet_checksum(data) == 0;
}

namespace {

std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 n = 0; n < 256; ++n) {
    u32 c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

u32 crc32(std::span<const u8> data) {
  static const std::array<u32, 256> table = make_crc32_table();
  u32 c = 0xffffffffu;
  for (u8 b : data) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace vhp
