#include "vhp/fault/plan.hpp"

#include <fstream>
#include <sstream>

#include "vhp/common/format.hpp"

namespace vhp::fault {

namespace {

/// Stable lane key / rng-stream mixing. The rng seed for a (rule, lane)
/// pair must not depend on lane creation order, only on its identity.
u64 lane_key(u32 node, obs::LinkPort port, obs::LinkDir dir) {
  return (static_cast<u64>(node) << 3) |
         (static_cast<u64>(port) << 1) | static_cast<u64>(dir);
}

u64 mix_seed(u64 seed, u64 rule_index, u64 lane) {
  // SplitMix64 finalizer over the packed identity: cheap, well spread.
  u64 z = seed ^ (rule_index * 0x9e3779b97f4a7c15ULL) ^ (lane << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool rule_matches(const FaultRule& rule, u32 node, obs::LinkPort port,
                  obs::LinkDir dir) {
  if (rule.node != kAnyNode && rule.node != node) return false;
  if (rule.port.has_value() && *rule.port != port) return false;
  if (rule.dir.has_value() && *rule.dir != dir) return false;
  return true;
}

// --- JSON scanning (same flat-object scanner style as obs/recording.cpp) --

std::optional<std::string_view> raw_value(std::string_view obj,
                                          std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = obj.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = obj.substr(pos + needle.size());
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
    rest.remove_prefix(1);
  }
  if (!rest.empty() && rest.front() == '"') {
    rest.remove_prefix(1);
    const auto end = rest.find('"');
    if (end == std::string_view::npos) return std::nullopt;
    return rest.substr(0, end);
  }
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ',' && rest[end] != '}' &&
         rest[end] != ']') {
    ++end;
  }
  return rest.substr(0, end);
}

std::optional<u64> u64_value(std::string_view obj, std::string_view key) {
  auto raw = raw_value(obj, key);
  if (!raw.has_value()) return std::nullopt;
  u64 out = 0;
  bool any = false;
  for (char c : *raw) {
    if (c == ' ') continue;
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<u64>(c - '0');
    any = true;
  }
  if (!any) return std::nullopt;
  return out;
}

std::optional<double> double_value(std::string_view obj,
                                   std::string_view key) {
  auto raw = raw_value(obj, key);
  if (!raw.has_value()) return std::nullopt;
  std::string text{*raw};
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    while (used < text.size() && text[used] == ' ') ++used;
    if (used != text.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<obs::LinkPort> port_from_name(std::string_view name) {
  if (name == "data") return obs::LinkPort::kData;
  if (name == "int") return obs::LinkPort::kInt;
  if (name == "clock") return obs::LinkPort::kClock;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  if (name == "drop") return FaultKind::kDrop;
  if (name == "duplicate") return FaultKind::kDuplicate;
  if (name == "reorder") return FaultKind::kReorder;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "stall") return FaultKind::kStall;
  if (name == "disconnect") return FaultKind::kDisconnect;
  return std::nullopt;
}

bool FaultPlan::lossless() const {
  for (const FaultRule& rule : rules) {
    if (rule.kind != FaultKind::kDelay && rule.kind != FaultKind::kStall) {
      return false;
    }
  }
  return true;
}

Status FaultPlan::validate() const {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault rule {}: probability {} outside [0, 1]",
                              i, rule.probability)};
    }
    if (rule.first_frame > rule.last_frame) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault rule {}: first_frame {} > last_frame {}",
                              i, rule.first_frame, rule.last_frame)};
    }
    if (rule.kind == FaultKind::kDisconnect && rule.burst == 0) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault rule {}: disconnect burst must be > 0",
                              i)};
    }
    if ((rule.kind == FaultKind::kDelay || rule.kind == FaultKind::kStall) &&
        rule.delay.count() < 0) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault rule {}: negative delay", i)};
    }
  }
  return Status::Ok();
}

Result<FaultPlan> plan_from_json(std::string_view json) {
  FaultPlan plan;
  plan.seed = u64_value(json, "seed").value_or(1);
  const auto rules_pos = json.find("\"rules\"");
  if (rules_pos == std::string_view::npos) {
    if (json.find('{') == std::string_view::npos) {
      return Status{StatusCode::kInvalidArgument,
                    "fault plan: not a JSON object"};
    }
    return plan;  // seed-only plan: valid, unarmed
  }
  std::string_view body = json.substr(rules_pos);
  const auto open = body.find('[');
  if (open == std::string_view::npos) {
    return Status{StatusCode::kInvalidArgument,
                  "fault plan: \"rules\" is not an array"};
  }
  body.remove_prefix(open + 1);
  // Rule objects are flat ({...} with no nesting), so a brace scan splits
  // them without a general parser.
  std::size_t rule_no = 0;
  while (true) {
    const auto obj_open = body.find('{');
    const auto arr_close = body.find(']');
    if (obj_open == std::string_view::npos ||
        (arr_close != std::string_view::npos && arr_close < obj_open)) {
      break;
    }
    const auto obj_close = body.find('}', obj_open);
    if (obj_close == std::string_view::npos) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault plan: rule {} unterminated", rule_no)};
    }
    const std::string_view obj =
        body.substr(obj_open, obj_close - obj_open + 1);
    FaultRule rule;
    const auto kind_name = raw_value(obj, "kind");
    const auto kind =
        kind_name ? fault_kind_from_name(*kind_name) : std::nullopt;
    if (!kind.has_value()) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("fault plan: rule {} has no valid \"kind\"",
                              rule_no)};
    }
    rule.kind = *kind;
    if (const auto node = u64_value(obj, "node")) {
      rule.node = static_cast<u32>(*node);
    }
    if (const auto port_name = raw_value(obj, "port")) {
      const auto port = port_from_name(*port_name);
      if (!port.has_value()) {
        return Status{StatusCode::kInvalidArgument,
                      strformat("fault plan: rule {} has bad port \"{}\"",
                                rule_no, *port_name)};
      }
      rule.port = port;
    }
    if (const auto dir_name = raw_value(obj, "dir")) {
      if (*dir_name == "tx") {
        rule.dir = obs::LinkDir::kTx;
      } else if (*dir_name == "rx") {
        rule.dir = obs::LinkDir::kRx;
      } else {
        return Status{StatusCode::kInvalidArgument,
                      strformat("fault plan: rule {} has bad dir \"{}\"",
                                rule_no, *dir_name)};
      }
    }
    if (const auto p = double_value(obj, "probability")) {
      rule.probability = *p;
    }
    if (const auto v = u64_value(obj, "first_frame")) rule.first_frame = *v;
    if (const auto v = u64_value(obj, "last_frame")) rule.last_frame = *v;
    if (const auto v = u64_value(obj, "max_events")) rule.max_events = *v;
    if (const auto v = u64_value(obj, "delay_us")) {
      rule.delay = std::chrono::microseconds{*v};
    }
    if (const auto v = u64_value(obj, "burst")) rule.burst = *v;
    plan.rules.push_back(rule);
    ++rule_no;
    body.remove_prefix(obj_close + 1);
  }
  if (Status s = plan.validate(); !s.ok()) return s;
  return plan;
}

std::string plan_to_json(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"seed\":" << plan.seed << ",\"rules\":[";
  bool first = true;
  for (const FaultRule& rule : plan.rules) {
    if (!first) out << ",";
    first = false;
    out << "{\"kind\":\"" << to_string(rule.kind) << "\"";
    if (rule.node != kAnyNode) out << ",\"node\":" << rule.node;
    if (rule.port.has_value()) {
      out << ",\"port\":\"" << obs::to_string(*rule.port) << "\"";
    }
    if (rule.dir.has_value()) {
      out << ",\"dir\":\"" << obs::to_string(*rule.dir) << "\"";
    }
    if (rule.probability != 1.0) {
      out << ",\"probability\":" << rule.probability;
    }
    if (rule.first_frame != 0) out << ",\"first_frame\":" << rule.first_frame;
    if (rule.last_frame != ~u64{0}) {
      out << ",\"last_frame\":" << rule.last_frame;
    }
    if (rule.max_events != ~u64{0}) {
      out << ",\"max_events\":" << rule.max_events;
    }
    if (rule.kind == FaultKind::kDelay || rule.kind == FaultKind::kStall) {
      out << ",\"delay_us\":" << rule.delay.count();
    }
    if (rule.kind == FaultKind::kDisconnect) {
      out << ",\"burst\":" << rule.burst;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

Result<FaultPlan> load_plan(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status{StatusCode::kNotFound, "cannot open " + path};
  std::ostringstream buf;
  buf << f.rdbuf();
  return plan_from_json(buf.str());
}

FaultSchedule::FaultSchedule(FaultPlan plan, obs::Hub* hub)
    : plan_(std::move(plan)), hub_(hub),
      rule_events_(plan_.rules.size(), 0) {}

void FaultSchedule::set_observer(Observer observer) {
  std::scoped_lock lock(mu_);
  observer_ = std::move(observer);
}

FaultSchedule::Lane& FaultSchedule::lane_at(u32 node, obs::LinkPort port,
                                            obs::LinkDir dir) {
  const u64 key = lane_key(node, port, dir);
  auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  Lane& lane = lanes_[key];
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!rule_matches(plan_.rules[i], node, port, dir)) continue;
    lane.rules.push_back(
        LaneRule{.rule_index = i, .rng = Rng{mix_seed(plan_.seed, i, key)}});
  }
  return lane;
}

void FaultSchedule::report(const FaultEvent& event) {
  ++injected_;
  if (hub_ != nullptr) {
    hub_->metrics().counter("fault.injected_total").inc();
    hub_->metrics()
        .counter(strformat("fault.injected.{}", to_string(event.kind)))
        .inc();
    hub_->tracer().instant(strformat("fault.{}", to_string(event.kind)),
                           "fault", event.frame_index);
  }
  if (observer_) observer_(event);
}

std::optional<FaultEvent> FaultSchedule::next(u32 node, obs::LinkPort port,
                                              obs::LinkDir dir,
                                              std::size_t frame_size) {
  std::scoped_lock lock(mu_);
  Lane& lane = lane_at(node, port, dir);
  const u64 index = lane.frames++;
  if (index < lane.blackout_until) {
    // Tail of an earlier kDisconnect burst: the lane is dark.
    FaultEvent event{.kind = FaultKind::kDisconnect,
                     .node = node,
                     .port = port,
                     .dir = dir,
                     .frame_index = index};
    report(event);
    return event;
  }
  for (LaneRule& lr : lane.rules) {
    const FaultRule& rule = plan_.rules[lr.rule_index];
    if (index < rule.first_frame || index > rule.last_frame) continue;
    if (rule_events_[lr.rule_index] >= rule.max_events) continue;
    // One draw per candidate frame keeps each (rule, lane) stream aligned
    // with the lane frame index — the decisions replay bit-exactly.
    if (!lr.rng.chance(rule.probability)) continue;
    ++rule_events_[lr.rule_index];
    FaultEvent event{.kind = rule.kind,
                     .node = node,
                     .port = port,
                     .dir = dir,
                     .frame_index = index,
                     .delay = rule.delay};
    if (rule.kind == FaultKind::kCorrupt) {
      event.corrupt_offset =
          frame_size > 0 ? static_cast<std::size_t>(lr.rng.below(frame_size))
                         : 0;
      event.corrupt_mask = static_cast<u8>(lr.rng.range(1, 255));
    }
    if (rule.kind == FaultKind::kDisconnect) {
      lane.blackout_until = index + rule.burst;
    }
    report(event);
    return event;
  }
  return std::nullopt;
}

u64 FaultSchedule::injected() const {
  std::scoped_lock lock(mu_);
  return injected_;
}

std::shared_ptr<FaultSchedule> compile(const FaultPlan& plan, obs::Hub* hub) {
  if (!plan.armed()) return nullptr;
  return std::make_shared<FaultSchedule>(plan, hub);
}

}  // namespace vhp::fault
