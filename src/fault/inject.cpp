#include "vhp/fault/inject.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

namespace vhp::fault {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

class FaultChannel final : public net::Channel {
 public:
  FaultChannel(net::ChannelPtr inner, std::shared_ptr<FaultSchedule> schedule,
               obs::LinkPort port, u32 node)
      : inner_(std::move(inner)), schedule_(std::move(schedule)),
        port_(port), node_(node) {}

  Status send(std::span<const u8> frame) override {
    const auto event =
        schedule_->next(node_, port_, obs::LinkDir::kTx, frame.size());
    std::scoped_lock lock(tx_mu_);
    Status status = apply_tx(event, frame);
    if (!status.ok()) return status;
    // A frame held back by kReorder ships right after the frame that
    // overtook it (adjacent swap). A freshly held frame stays held.
    if (tx_held_.has_value() &&
        !(event.has_value() && event->kind == FaultKind::kReorder)) {
      const Bytes held = std::move(*tx_held_);
      tx_held_.reset();
      return inner_->send(held);
    }
    return Status::Ok();
  }

  Result<Bytes> recv(std::optional<milliseconds> timeout) override {
    const auto deadline = timeout.has_value()
                              ? std::optional{steady_clock::now() + *timeout}
                              : std::nullopt;
    while (true) {
      {
        std::scoped_lock lock(rx_mu_);
        if (!rx_ready_.empty()) {
          Bytes out = std::move(rx_ready_.front());
          rx_ready_.pop_front();
          return out;
        }
      }
      // Bounded slices so a frame held by kReorder with no successor in
      // flight is delivered instead of stranded.
      milliseconds slice{10};
      if (deadline.has_value()) {
        const auto now = steady_clock::now();
        if (now >= *deadline) {
          return Status{StatusCode::kDeadlineExceeded, "fault: recv timeout"};
        }
        slice = std::min(
            slice,
            std::chrono::duration_cast<milliseconds>(*deadline - now) +
                milliseconds{1});
      }
      Result<Bytes> r = inner_->recv(slice);
      if (!r.ok()) {
        if (r.status().code() != StatusCode::kDeadlineExceeded) {
          return r.status();
        }
        std::scoped_lock lock(rx_mu_);
        if (rx_held_.has_value()) {
          rx_ready_.push_back(std::move(*rx_held_));
          rx_held_.reset();
        }
        continue;
      }
      std::scoped_lock lock(rx_mu_);
      admit_rx(std::move(r).value());
    }
  }

  Result<std::optional<Bytes>> try_recv() override {
    std::scoped_lock lock(rx_mu_);
    while (rx_ready_.empty()) {
      Result<std::optional<Bytes>> r = inner_->try_recv();
      if (!r.ok()) return r.status();
      if (!r.value().has_value()) break;
      admit_rx(std::move(*r.value()));
    }
    if (!rx_ready_.empty()) {
      Bytes out = std::move(rx_ready_.front());
      rx_ready_.pop_front();
      return std::optional{std::move(out)};
    }
    // Nothing else in flight: a frame held for kReorder has no successor to
    // swap with right now; deliver it rather than strand it.
    if (rx_held_.has_value()) {
      Bytes out = std::move(*rx_held_);
      rx_held_.reset();
      return std::optional{std::move(out)};
    }
    return std::optional<Bytes>{};
  }

  void close() override {
    {
      std::scoped_lock lock(tx_mu_);
      if (tx_held_.has_value()) {
        (void)inner_->send(*tx_held_);  // best effort on teardown
        tx_held_.reset();
      }
    }
    inner_->close();
  }

  Status flush() override { return inner_->flush(); }

  int readable_fd() override { return inner_->readable_fd(); }

 private:
  /// Applies a TX verdict; sends 0, 1 or 2 copies of `frame` downstream.
  Status apply_tx(const std::optional<FaultEvent>& event,
                  std::span<const u8> frame) {
    if (!event.has_value()) return inner_->send(frame);
    switch (event->kind) {
      case FaultKind::kDrop:
      case FaultKind::kDisconnect:
        return Status::Ok();  // the frame vanishes into the "network"
      case FaultKind::kDuplicate: {
        Status first = inner_->send(frame);
        if (!first.ok()) return first;
        return inner_->send(frame);
      }
      case FaultKind::kReorder:
        tx_held_ = Bytes{frame.begin(), frame.end()};
        return Status::Ok();
      case FaultKind::kDelay:
      case FaultKind::kStall:
        std::this_thread::sleep_for(event->delay);
        return inner_->send(frame);
      case FaultKind::kCorrupt: {
        Bytes mutated{frame.begin(), frame.end()};
        if (!mutated.empty()) {
          mutated[event->corrupt_offset] ^= event->corrupt_mask;
        }
        return inner_->send(mutated);
      }
    }
    return inner_->send(frame);
  }

  /// Applies an RX verdict to a frame pumped from the inner channel,
  /// queueing whatever should reach the caller. Requires rx_mu_.
  void admit_rx(Bytes frame) {
    const auto event =
        schedule_->next(node_, port_, obs::LinkDir::kRx, frame.size());
    const auto deliver = [this](Bytes f) {
      rx_ready_.push_back(std::move(f));
      if (rx_held_.has_value()) {
        rx_ready_.push_back(std::move(*rx_held_));
        rx_held_.reset();
      }
    };
    if (!event.has_value()) {
      deliver(std::move(frame));
      return;
    }
    switch (event->kind) {
      case FaultKind::kDrop:
      case FaultKind::kDisconnect:
        return;
      case FaultKind::kDuplicate:
        deliver(Bytes{frame});
        rx_ready_.push_back(std::move(frame));
        return;
      case FaultKind::kReorder:
        if (rx_held_.has_value()) rx_ready_.push_back(std::move(*rx_held_));
        rx_held_ = std::move(frame);
        return;
      case FaultKind::kDelay:
      case FaultKind::kStall:
        std::this_thread::sleep_for(event->delay);
        deliver(std::move(frame));
        return;
      case FaultKind::kCorrupt:
        if (!frame.empty()) {
          frame[event->corrupt_offset] ^= event->corrupt_mask;
        }
        deliver(std::move(frame));
        return;
    }
    deliver(std::move(frame));
  }

  net::ChannelPtr inner_;
  std::shared_ptr<FaultSchedule> schedule_;
  const obs::LinkPort port_;
  const u32 node_;

  std::mutex tx_mu_;
  std::optional<Bytes> tx_held_;  // kReorder: awaiting its successor

  std::mutex rx_mu_;
  std::optional<Bytes> rx_held_;
  std::deque<Bytes> rx_ready_;
};

}  // namespace

net::ChannelPtr inject(net::ChannelPtr inner,
                       std::shared_ptr<FaultSchedule> schedule,
                       obs::LinkPort port, u32 node) {
  if (schedule == nullptr || !schedule->armed()) return inner;
  return std::make_unique<FaultChannel>(std::move(inner), std::move(schedule),
                                        port, node);
}

net::CosimLink inject_link(net::CosimLink link,
                           std::shared_ptr<FaultSchedule> schedule,
                           u32 node) {
  if (schedule == nullptr || !schedule->armed()) return link;
  link.data = inject(std::move(link.data), schedule, obs::LinkPort::kData,
                     node);
  link.intr = inject(std::move(link.intr), schedule, obs::LinkPort::kInt,
                     node);
  link.clock = inject(std::move(link.clock), schedule, obs::LinkPort::kClock,
                      node);
  return link;
}

}  // namespace vhp::fault
