#include "vhp/fault/reliable.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "vhp/common/checksum.hpp"
#include "vhp/common/format.hpp"
#include "vhp/common/log.hpp"

namespace vhp::fault {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

const Logger kLog{"fault"};

/// The CRC field sits at a fixed offset per tag; it is computed over the
/// whole sub-frame with the field zeroed, so corruption anywhere — header
/// or payload — invalidates the frame.
constexpr std::size_t kPayloadCrcOffset = 1 + 8 + 8;
constexpr std::size_t kSmallCrcOffset = 1 + 8;  // kAck / kHello

void patch_crc(Bytes& frame, std::size_t offset) {
  const u32 crc = crc32(frame);
  frame[offset + 0] = static_cast<u8>(crc);
  frame[offset + 1] = static_cast<u8>(crc >> 8);
  frame[offset + 2] = static_cast<u8>(crc >> 16);
  frame[offset + 3] = static_cast<u8>(crc >> 24);
}

bool check_crc(std::span<const u8> frame, std::size_t offset) {
  if (frame.size() < offset + 4) return false;
  Bytes scratch{frame.begin(), frame.end()};
  const u32 stored = static_cast<u32>(scratch[offset]) |
                     (static_cast<u32>(scratch[offset + 1]) << 8) |
                     (static_cast<u32>(scratch[offset + 2]) << 16) |
                     (static_cast<u32>(scratch[offset + 3]) << 24);
  scratch[offset] = scratch[offset + 1] = scratch[offset + 2] =
      scratch[offset + 3] = 0;
  return crc32(scratch) == stored;
}

bool link_down(StatusCode code) {
  return code == StatusCode::kAborted || code == StatusCode::kUnavailable ||
         code == StatusCode::kConnectionReset;
}

}  // namespace

namespace wire {

Bytes encode_payload(u64 seq, u64 ack, std::span<const u8> payload) {
  Bytes out;
  ByteWriter w{out};
  w.u8v(kPayload);
  w.u64v(seq);
  w.u64v(ack);
  w.u32v(0);
  w.bytes(payload);
  patch_crc(out, kPayloadCrcOffset);
  return out;
}

Bytes encode_ack(u64 ack) {
  Bytes out;
  ByteWriter w{out};
  w.u8v(kAck);
  w.u64v(ack);
  w.u32v(0);
  patch_crc(out, kSmallCrcOffset);
  return out;
}

Bytes encode_hello(u64 rx_next) {
  Bytes out;
  ByteWriter w{out};
  w.u8v(kHello);
  w.u64v(rx_next);
  w.u32v(0);
  patch_crc(out, kSmallCrcOffset);
  return out;
}

}  // namespace wire

struct ReliableChannel::Impl {
  Impl(net::ChannelPtr transport, RecoveryConfig cfg, obs::Hub* obs_hub,
       std::string tag, RedialFn redial_fn)
      : inner(std::move(transport)), config(cfg), hub(obs_hub),
        name(tag.empty() ? std::string{"link"} : std::move(tag)),
        redial(std::move(redial_fn)), rto_cur(cfg.rto) {}

  // ---- state (mu guards everything but blocking inner recv calls) ----
  net::ChannelPtr inner;
  const RecoveryConfig config;
  obs::Hub* hub;
  const std::string name;
  RedialFn redial;

  mutable std::mutex mu;
  Status dead;  // latched terminal failure

  // Sender.
  u64 next_seq = 1;
  std::deque<std::pair<u64, Bytes>> unacked;  // (seq, app payload)
  milliseconds rto_cur;
  steady_clock::time_point retransmit_due{};
  u32 silent_rounds = 0;

  // Receiver.
  u64 rx_next = 1;
  std::map<u64, Bytes> ooo;  // out-of-order buffer
  std::deque<Bytes> ready;

  // Flush coupling + stats.
  std::vector<ReliableChannel*> siblings;
  std::vector<ReliableChannel*> pump_peers;
  bool flush_self_on_send = false;
  u64 n_retransmits = 0;
  u64 n_dup_filtered = 0;
  u64 n_crc_dropped = 0;
  u64 n_ooo_buffered = 0;
  u64 n_reconnects = 0;

  void count(const char* what, u64& local) {
    ++local;
    if (hub != nullptr) {
      hub->metrics().counter(strformat("fault.{}.{}", name, what)).inc();
    }
  }
  void count_recovered() {
    if (hub != nullptr) hub->metrics().counter("fault.recovered_total").inc();
  }

  [[nodiscard]] Status dead_status() const {
    return dead.ok() ? Status::Ok() : dead;
  }

  void ack_progress() {
    silent_rounds = 0;
    rto_cur = config.rto;
    retransmit_due = steady_clock::now() + rto_cur;
  }

  void handle_ack(u64 acked) {
    bool progressed = false;
    while (!unacked.empty() && unacked.front().first <= acked) {
      unacked.pop_front();
      progressed = true;
    }
    if (progressed) ack_progress();
  }

  Status raw_send(const Bytes& frame) {
    Status s = inner->send(frame);
    if (s.ok() || !link_down(s.code())) return s;
    return reconnect(s);
  }

  /// Replaces a lost transport via the redial callback, announces our
  /// receive cursor (kHello) and retransmits everything outstanding.
  Status reconnect(const Status& cause) {
    if (!dead.ok()) return dead;
    if (!redial) {
      dead = cause;
      return dead;
    }
    milliseconds backoff = config.redial_backoff;
    for (u32 attempt = 0; attempt < config.max_redials; ++attempt) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, milliseconds{1000});
      Result<net::ChannelPtr> r = redial();
      if (!r.ok()) continue;
      inner = std::move(r).value();
      count("reconnects", n_reconnects);
      count_recovered();
      kLog.info("{}: transport reconnected (attempt {}), resync rx_next={}",
                name, attempt + 1, rx_next);
      (void)inner->send(wire::encode_hello(rx_next));
      retransmit_now();
      return Status::Ok();
    }
    dead = Status{StatusCode::kUnavailable,
                  strformat("fault: {} redial failed after {} attempts ({})",
                            name, config.max_redials, cause.to_string())};
    return dead;
  }

  void retransmit_now() {
    for (const auto& [seq, payload] : unacked) {
      (void)inner->send(wire::encode_payload(seq, rx_next - 1, payload));
      ++n_retransmits;
      if (hub != nullptr) {
        hub->metrics()
            .counter(strformat("fault.{}.retransmits", name))
            .inc();
      }
    }
    silent_rounds = 0;
    rto_cur = config.rto;
    retransmit_due = steady_clock::now() + rto_cur;
  }

  Status maybe_retransmit() {
    if (!dead.ok()) return dead;
    if (unacked.empty()) return Status::Ok();
    const auto now = steady_clock::now();
    if (now < retransmit_due) return Status::Ok();
    if (++silent_rounds > config.max_retransmit_rounds) {
      dead = Status{
          StatusCode::kAborted,
          strformat("fault: {} gave up after {} retransmission rounds "
                    "({} unacked, oldest seq {})",
                    name, config.max_retransmit_rounds, unacked.size(),
                    unacked.front().first)};
      return dead;
    }
    for (const auto& [seq, payload] : unacked) {
      Status s = inner->send(wire::encode_payload(seq, rx_next - 1, payload));
      ++n_retransmits;
      if (hub != nullptr) {
        hub->metrics()
            .counter(strformat("fault.{}.retransmits", name))
            .inc();
      }
      if (!s.ok() && link_down(s.code())) {
        Status rs = reconnect(s);
        if (!rs.ok()) return rs;
        return Status::Ok();  // reconnect already retransmitted
      }
    }
    rto_cur = std::min(rto_cur * 2, config.rto_max);
    retransmit_due = now + rto_cur;
    return Status::Ok();
  }

  void send_ack() {
    Status s = inner->send(wire::encode_ack(rx_next - 1));
    if (!s.ok() && link_down(s.code())) (void)reconnect(s);
  }

  /// Classifies and consumes one wire frame.
  void process_wire(Bytes frame) {
    if (frame.empty()) return;
    const u8 tag = frame[0];
    if (tag == wire::kPayload) {
      if (!check_crc(frame, kPayloadCrcOffset)) {
        count("crc_dropped", n_crc_dropped);
        count_recovered();
        return;  // retransmission repairs it
      }
      ByteReader r{frame};
      (void)r.u8v();
      const u64 seq = r.u64v();
      const u64 acked = r.u64v();
      (void)r.u32v();  // crc, already checked
      Bytes payload = r.bytes(r.remaining());
      handle_ack(acked);
      if (seq < rx_next) {
        // Redelivery of something we already consumed: filter it and
        // re-ack so the peer stops retransmitting (idempotent delivery).
        count("dup_filtered", n_dup_filtered);
        count_recovered();
        send_ack();
        return;
      }
      if (seq == rx_next) {
        ready.push_back(std::move(payload));
        ++rx_next;
        while (true) {
          auto it = ooo.find(rx_next);
          if (it == ooo.end()) break;
          ready.push_back(std::move(it->second));
          ooo.erase(it);
          ++rx_next;
          count_recovered();
        }
      } else {
        if (ooo.size() < 4096 && ooo.emplace(seq, std::move(payload)).second) {
          count("ooo_buffered", n_ooo_buffered);
        }
      }
      send_ack();
      return;
    }
    if (tag == wire::kAck) {
      if (!check_crc(frame, kSmallCrcOffset)) {
        count("crc_dropped", n_crc_dropped);
        return;
      }
      ByteReader r{frame};
      (void)r.u8v();
      handle_ack(r.u64v());
      return;
    }
    if (tag == wire::kHello) {
      if (!check_crc(frame, kSmallCrcOffset)) {
        count("crc_dropped", n_crc_dropped);
        return;
      }
      ByteReader r{frame};
      (void)r.u8v();
      const u64 peer_rx_next = r.u64v();
      // The peer reconnected: everything below its cursor arrived; the
      // rest must be resent on the fresh transport.
      handle_ack(peer_rx_next - 1);
      retransmit_now();
      return;
    }
    // Unknown tag: a corrupted tag byte. Drop; retransmission repairs it.
    count("crc_dropped", n_crc_dropped);
    count_recovered();
  }

  /// Drains the inner channel without blocking, then services the
  /// retransmission timer.
  Status pump() {
    if (!dead.ok()) return dead;
    while (true) {
      Result<std::optional<Bytes>> r = inner->try_recv();
      if (!r.ok()) {
        if (link_down(r.status().code())) {
          Status rs = reconnect(r.status());
          if (!rs.ok()) return rs;
          continue;
        }
        return r.status();
      }
      if (!r.value().has_value()) break;
      process_wire(std::move(*r.value()));
    }
    return maybe_retransmit();
  }
};

ReliableChannel::ReliableChannel(net::ChannelPtr inner, RecoveryConfig config,
                                 obs::Hub* hub, std::string name,
                                 RedialFn redial)
    : impl_(std::make_unique<Impl>(std::move(inner), config, hub,
                                   std::move(name), std::move(redial))) {}

ReliableChannel::~ReliableChannel() = default;

Status ReliableChannel::send(std::span<const u8> frame) {
  // Sibling flush happens before taking our own lock: the CLOCK barrier
  // semantics (all of the quantum's DATA/INT frames land before the sync
  // point crosses). Siblings lock themselves.
  std::vector<ReliableChannel*> siblings;
  {
    std::scoped_lock lock(impl_->mu);
    siblings = impl_->siblings;
  }
  for (ReliableChannel* sibling : siblings) {
    Status s = sibling->flush(impl_->config.flush_timeout);
    if (!s.ok()) return s;
  }
  {
    std::scoped_lock lock(impl_->mu);
    if (!impl_->dead.ok()) return impl_->dead;
    // Drain our receive queue before the potentially-blocking push: on a
    // bounded transport (inproc) back-to-back sends can fill both
    // directions — the peer blocks pushing acks at us while we block
    // pushing payloads at it. Draining first guarantees the peer a free
    // slot, which breaks the cycle.
    Status ps = impl_->pump();
    if (!ps.ok()) return ps;
    const u64 seq = impl_->next_seq++;
    if (impl_->unacked.empty()) {
      impl_->retransmit_due = steady_clock::now() + impl_->rto_cur;
    }
    impl_->unacked.emplace_back(seq, Bytes{frame.begin(), frame.end()});
    Status s = impl_->raw_send(
        wire::encode_payload(seq, impl_->rx_next - 1, frame));
    if (!s.ok()) return s;
  }
  if (impl_->flush_self_on_send) {
    // Sync-point frames (ClockTick / TimeAck / Shutdown) are confirmed
    // delivered before the protocol proceeds; see reliable.hpp.
    return flush(impl_->config.flush_timeout);
  }
  return Status::Ok();
}

Result<Bytes> ReliableChannel::recv(std::optional<milliseconds> timeout) {
  const auto deadline = timeout.has_value()
                            ? std::optional{steady_clock::now() + *timeout}
                            : std::nullopt;
  while (true) {
    {
      std::scoped_lock lock(impl_->mu);
      Status s = impl_->pump();
      if (!s.ok()) return s;
      if (!impl_->ready.empty()) {
        Bytes out = std::move(impl_->ready.front());
        impl_->ready.pop_front();
        return out;
      }
    }
    // Block in slices of the retransmission timer so lost frames are
    // resent while we wait.
    milliseconds slice = std::max<milliseconds>(impl_->config.rto / 2,
                                                milliseconds{1});
    if (deadline.has_value()) {
      const auto now = steady_clock::now();
      if (now >= *deadline) {
        return Status{StatusCode::kDeadlineExceeded,
                      strformat("fault: {} recv timeout", impl_->name)};
      }
      slice = std::min(
          slice, std::chrono::duration_cast<milliseconds>(*deadline - now) +
                     milliseconds{1});
    }
    Result<Bytes> r = impl_->inner->recv(slice);
    if (r.ok()) {
      std::scoped_lock lock(impl_->mu);
      impl_->process_wire(std::move(r).value());
      continue;
    }
    if (r.status().code() == StatusCode::kDeadlineExceeded) continue;
    std::scoped_lock lock(impl_->mu);
    if (link_down(r.status().code())) {
      Status rs = impl_->reconnect(r.status());
      if (!rs.ok()) return rs;
      continue;
    }
    return r.status();
  }
}

Result<std::optional<Bytes>> ReliableChannel::try_recv() {
  std::scoped_lock lock(impl_->mu);
  Status s = impl_->pump();
  if (!s.ok()) return s;
  if (!impl_->ready.empty()) {
    Bytes out = std::move(impl_->ready.front());
    impl_->ready.pop_front();
    return std::optional{std::move(out)};
  }
  return std::optional<Bytes>{};
}

void ReliableChannel::close() {
  std::scoped_lock lock(impl_->mu);
  impl_->inner->close();
}

Status ReliableChannel::flush() {
  std::scoped_lock lock(impl_->mu);
  return impl_->inner->flush();
}

int ReliableChannel::readable_fd() {
  std::scoped_lock lock(impl_->mu);
  return impl_->inner->readable_fd();
}

Status ReliableChannel::flush(milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  std::vector<ReliableChannel*> peers;
  {
    std::scoped_lock lock(impl_->mu);
    peers = impl_->pump_peers;
  }
  while (true) {
    {
      std::scoped_lock lock(impl_->mu);
      Status s = impl_->pump();
      if (!s.ok()) return s;
      if (impl_->unacked.empty()) return Status::Ok();
    }
    // While blocked, keep the link's other lanes making ack progress: the
    // peer endpoint may itself be stuck flushing a *different* channel (its
    // DATA flush waits for a DATA ack we owe while our CLOCK flush waits
    // for a CLOCK ack it owes), and with dropped acks neither side would
    // otherwise pump the lane the other needs. Impl::pump only moves wire
    // frames into each peer's own ready queue and services its
    // retransmission timer — never try_recv, which would steal application
    // payloads. Peer errors are left to surface on the peer's own ops.
    for (ReliableChannel* peer : peers) {
      std::scoped_lock lock(peer->impl_->mu);
      (void)peer->impl_->pump();
    }
    if (steady_clock::now() >= deadline) {
      std::scoped_lock lock(impl_->mu);
      return Status{
          StatusCode::kDeadlineExceeded,
          strformat("fault: {} flush timed out with {} unacked frames",
                    impl_->name, impl_->unacked.size())};
    }
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
}

void ReliableChannel::set_flush_siblings(
    std::vector<ReliableChannel*> siblings) {
  std::scoped_lock lock(impl_->mu);
  impl_->siblings = std::move(siblings);
  impl_->flush_self_on_send = true;
}

void ReliableChannel::set_pump_peers(std::vector<ReliableChannel*> peers) {
  std::scoped_lock lock(impl_->mu);
  impl_->pump_peers = std::move(peers);
}

u64 ReliableChannel::retransmits() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->n_retransmits;
}
u64 ReliableChannel::dup_filtered() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->n_dup_filtered;
}
u64 ReliableChannel::crc_dropped() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->n_crc_dropped;
}
u64 ReliableChannel::reconnects() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->n_reconnects;
}
u64 ReliableChannel::unacked() const {
  std::scoped_lock lock(impl_->mu);
  return impl_->unacked.size();
}

net::CosimLink reliable_link(net::CosimLink link,
                             const RecoveryConfig& config, obs::Hub* hub,
                             const std::string& side) {
  if (!config.enabled) return link;
  auto data = std::make_unique<ReliableChannel>(
      std::move(link.data), config, hub, side + ".data");
  auto intr = std::make_unique<ReliableChannel>(
      std::move(link.intr), config, hub, side + ".int");
  auto clock = std::make_unique<ReliableChannel>(
      std::move(link.clock), config, hub, side + ".clock");
  if (config.flush_on_clock_send) {
    clock->set_flush_siblings({data.get(), intr.get()});
  }
  data->set_pump_peers({intr.get(), clock.get()});
  intr->set_pump_peers({data.get(), clock.get()});
  clock->set_pump_peers({data.get(), intr.get()});
  link.data = std::move(data);
  link.intr = std::move(intr);
  link.clock = std::move(clock);
  return link;
}

net::ChannelPtr reliable(net::ChannelPtr inner, const RecoveryConfig& config,
                         obs::Hub* hub, std::string name, RedialFn redial) {
  if (!config.enabled) return inner;
  return std::make_unique<ReliableChannel>(std::move(inner), config, hub,
                                           std::move(name),
                                           std::move(redial));
}

}  // namespace vhp::fault
