#include "vhp/sim/kernel.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "vhp/common/log.hpp"
#include "vhp/sim/partition.hpp"
#include "vhp/sim/worker_pool.hpp"

namespace vhp::sim {

namespace {
const Logger kLog{"sim"};

/// The island an evaluation lane is currently executing, tagged with its
/// kernel so concurrent kernels on other threads (e.g. a board-side model)
/// never observe a foreign island context.
thread_local Island* tls_eval_island = nullptr;
thread_local const Kernel* tls_eval_kernel = nullptr;

/// Construction affinity context (see Kernel::construction_affinity).
/// Thread-local so mid-simulation entity creation on worker lanes neither
/// races nor leaks across kernels.
thread_local const void* tls_ctor_kernel = nullptr;
thread_local std::uint32_t tls_ctor_group = 0;

[[noreturn]] void throw_cross_island(const char* what, const std::string& name,
                                     std::uint32_t owner,
                                     std::uint32_t executing) {
  throw std::logic_error(
      std::string("parallel kernel: cross-island ") + what + " on '" + name +
      "' (owned by island " + std::to_string(owner) +
      ", executing island " + std::to_string(executing) +
      "); islands may only communicate through signals — use "
      "Kernel::co_locate to merge modules that share state directly");
}
}  // namespace

Kernel::Kernel() = default;

Kernel::~Kernel() {
  // Invalidate a construction context still pointing at this kernel: the
  // tag is a raw address, and a later kernel allocated at the same spot
  // would otherwise inherit the dead kernel's group for entities built
  // outside any module (observed as a bogus island merge under ASan's
  // allocator, where back-to-back sessions reuse the allocation).
  if (tls_ctor_kernel == this) {
    tls_ctor_kernel = nullptr;
    tls_ctor_group = 0;
  }
}

std::uint32_t Kernel::construction_affinity() const {
  return tls_ctor_kernel == this ? tls_ctor_group : 0;
}

void Kernel::set_construction_affinity(std::uint32_t group) {
  tls_ctor_kernel = this;
  tls_ctor_group = group;
}

std::pair<const void*, std::uint32_t> Kernel::construction_context() {
  return {tls_ctor_kernel, tls_ctor_group};
}

void Kernel::set_construction_context(const void* kernel_tag,
                                      std::uint32_t group) {
  tls_ctor_kernel = kernel_tag;
  tls_ctor_group = group;
}

void Kernel::co_locate(std::uint32_t group_a, std::uint32_t group_b) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    throw std::logic_error(
        "co_locate is not callable from a parallel evaluation phase");
  }
  if (group_a == 0 || group_b == 0 || group_a == group_b) return;
  group_unions_.emplace_back(group_a, group_b);
  partition_dirty_ = true;
}

void Kernel::co_locate(Process& process, SignalBase& signal) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    throw std::logic_error(
        "co_locate is not callable from a parallel evaluation phase");
  }
  entity_unions_.emplace_back(process.entity_id_, signal.entity_id_);
  partition_dirty_ = true;
}

void Kernel::check_eval_access(const Event& event) const {
  if (tls_eval_kernel != this || tls_eval_island == nullptr) return;
  if (event.island_ != tls_eval_island->id) {
    throw_cross_island("dynamic wait registration", event.name_,
                       event.island_, tls_eval_island->id);
  }
}

Process& Kernel::register_process(std::unique_ptr<Process> process) {
  Process& ref = *process;
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    // Mid-evaluation creation (the cosim SyncAgent pattern): stage into the
    // executing island; committed — with a deterministic entity id — after
    // the evaluation barrier.
    ref.island_ = tls_eval_island->id;
    tls_eval_island->staged_processes.push_back(std::move(process));
    return ref;
  }
  ref.entity_id_ = next_entity_id_++;
  processes_.push_back(std::move(process));
  uninitialized_.push_back(&ref);
  partition_dirty_ = true;
  return ref;
}

void Kernel::register_event(Event* event) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    event->island_ = tls_eval_island->id;
    event->affinity_ = construction_affinity();
    tls_eval_island->staged_events.push_back(event);
    return;
  }
  event->entity_id_ = next_entity_id_++;
  event->affinity_ = construction_affinity();
  events_.push_back(event);
  partition_dirty_ = true;
}

void Kernel::register_signal(SignalBase* signal) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    signal->island_ = tls_eval_island->id;
    signal->affinity_ = construction_affinity();
    tls_eval_island->staged_signals.push_back(signal);
    return;
  }
  signal->entity_id_ = next_entity_id_++;
  signal->affinity_ = construction_affinity();
  signals_.push_back(signal);
  partition_dirty_ = true;
}

void Kernel::unregister_signal(SignalBase* signal) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    throw std::logic_error("destroying signal '" + signal->name_ +
                           "' during a parallel evaluation phase is "
                           "unsupported");
  }
  std::erase(signals_, signal);
  const std::uint64_t id = signal->entity_id_;
  std::erase_if(entity_unions_, [id](const auto& pair) {
    return pair.first == id || pair.second == id;
  });
  partition_dirty_ = true;
}

void Kernel::schedule_timed(Event* event, SimTime abs_time,
                            std::uint64_t token) {
  assert(abs_time >= now_);
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    if (event->island_ != tls_eval_island->id) {
      throw_cross_island("notify_at", event->name_, event->island_,
                         tls_eval_island->id);
    }
    tls_eval_island->staged_timed.push_back({event, abs_time, token});
    return;
  }
  timed_queue_.emplace(abs_time, TimedEntry{event, token});
}

void Kernel::schedule_delta(Event* event) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    if (event->island_ != tls_eval_island->id) {
      throw_cross_island("notify_delta", event->name_, event->island_,
                         tls_eval_island->id);
    }
    tls_eval_island->delta_queue.push_back(event);
    return;
  }
  delta_queue_.push_back(event);
}

void Kernel::forget_event(Event* event) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    throw std::logic_error("destroying event '" + event->name_ +
                           "' during a parallel evaluation phase is "
                           "unsupported");
  }
  std::erase(delta_queue_, event);
  // While scanning for the dying event's entries, lazily drop every stale
  // (cancelled/overridden) entry we pass: a cancel-heavy workload must not
  // grow the queue without bound. Entries are only ever stale forever —
  // a re-notify enqueues a fresh entry with a fresh token.
  for (auto it = timed_queue_.begin(); it != timed_queue_.end();) {
    const TimedEntry& entry = it->second;
    const bool stale = entry.event == event ||
                       entry.event->pending_ != Event::Pending::kTimed ||
                       entry.event->pending_token_ != entry.token;
    it = stale ? timed_queue_.erase(it) : std::next(it);
  }
  std::erase(events_, event);
  const std::uint64_t id = event->entity_id_;
  std::erase_if(entity_unions_, [id](const auto& pair) {
    return pair.first == id || pair.second == id;
  });
  partition_dirty_ = true;
}

void Kernel::request_update(SignalBase* signal) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    if (signal->island_ != tls_eval_island->id) {
      throw_cross_island("signal write", signal->name_, signal->island_,
                         tls_eval_island->id);
    }
    if (signal->update_requested_) return;
    signal->update_requested_ = true;
    tls_eval_island->update_queue.push_back(signal);
    return;
  }
  if (signal->update_requested_) return;
  signal->update_requested_ = true;
  update_queue_.push_back(signal);
}

void Kernel::make_runnable(Process* process) {
  if (tls_eval_kernel == this && tls_eval_island != nullptr) {
    if (process->island_ != tls_eval_island->id) {
      throw_cross_island("immediate trigger", process->name_,
                         process->island_, tls_eval_island->id);
    }
    tls_eval_island->runnable.push_back(process);
    return;
  }
  runnable_.push_back(process);
}

void Kernel::initialize_new_processes() {
  // SystemC initialization: every process runs once at elaboration end,
  // unless it asked dont_initialize(). Processes created mid-simulation
  // (rare, but the cosim SyncAgent does it) are initialized lazily here too.
  if (uninitialized_.empty()) return;
  std::vector<Process*> batch;
  batch.swap(uninitialized_);
  for (Process* p : batch) {
    if (p->initialize_) {
      p->runnable_ = true;
      runnable_.push_back(p);
    }
  }
}

void Kernel::run_update_and_delta_phases() {
  // --- update phase ---
  std::vector<SignalBase*> updates;
  updates.swap(update_queue_);
  for (SignalBase* s : updates) {
    s->update_requested_ = false;
    s->update();  // fires the change hooks itself, only on a real change
  }

  // --- delta notification phase ---
  std::vector<Event*> deltas;
  deltas.swap(delta_queue_);
  for (Event* e : deltas) {
    // The event may have been cancelled or re-notified since queuing;
    // pending_ is authoritative.
    if (e->pending_ == Event::Pending::kDelta) e->trigger();
  }
}

bool Kernel::do_delta_cycle() {
  if (parallel_lanes_ > 0) return do_delta_cycle_parallel();

  initialize_new_processes();
  // update_queue_ alone is enough to need a cycle: testbench code may write
  // a signal from outside any process (no runnable yet, but an update and
  // possibly a change notification must still happen).
  if (runnable_.empty() && delta_queue_.empty() && update_queue_.empty()) {
    return false;
  }

  // --- evaluation phase ---
  // Immediate notifications may append to runnable_ while we iterate, so
  // index-based iteration is required.
  in_evaluation_ = true;
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    Process* p = runnable_[i];
    p->runnable_ = false;
    if (p->terminated_) continue;
    p->execute();
  }
  runnable_.clear();
  in_evaluation_ = false;

  run_update_and_delta_phases();

  ++delta_count_;
  return true;
}

void Kernel::ensure_partition() {
  if (!partition_dirty_ && partition_ != nullptr) return;
  if (partition_ == nullptr) partition_ = std::make_unique<Partition>();
  partition_->build(processes_, events_, signals_, entity_unions_,
                    group_unions_);
  partition_dirty_ = false;
  ++repartitions_;
}

void Kernel::evaluate_island(Island& island) {
  tls_eval_island = &island;
  tls_eval_kernel = this;
  try {
    // Same in-phase semantics as the serial loop: immediate notifications
    // within the island append to its runnable vector while we iterate.
    for (std::size_t i = 0; i < island.runnable.size(); ++i) {
      Process* p = island.runnable[i];
      p->runnable_ = false;
      if (p->terminated_) continue;
      p->execute();
    }
  } catch (...) {
    island.error = std::current_exception();
  }
  island.runnable.clear();
  tls_eval_island = nullptr;
  tls_eval_kernel = nullptr;
}

void Kernel::commit_staged_entities(Island& island) {
  if (island.staged_events.empty() && island.staged_signals.empty() &&
      island.staged_processes.empty()) {
    return;
  }
  for (Event* e : island.staged_events) {
    e->entity_id_ = next_entity_id_++;
    events_.push_back(e);
  }
  island.staged_events.clear();
  for (SignalBase* s : island.staged_signals) {
    s->entity_id_ = next_entity_id_++;
    signals_.push_back(s);
  }
  island.staged_signals.clear();
  for (auto& p : island.staged_processes) {
    p->entity_id_ = next_entity_id_++;
    uninitialized_.push_back(p.get());
    processes_.push_back(std::move(p));
  }
  island.staged_processes.clear();
  partition_dirty_ = true;
}

bool Kernel::do_delta_cycle_parallel() {
  initialize_new_processes();
  if (runnable_.empty() && delta_queue_.empty() && update_queue_.empty()) {
    return false;
  }

  ensure_partition();
  if (pool_ == nullptr) pool_ = std::make_unique<WorkerPool>(parallel_lanes_);
  auto& islands = partition_->islands();

  // Distribute the global runnable set onto the islands; within an island
  // the global-queue order (= the serial order restricted to the island) is
  // preserved.
  active_islands_.clear();
  for (Process* p : runnable_) {
    Island& island = islands[p->island_];
    if (island.runnable.empty()) active_islands_.push_back(&island);
    island.runnable.push_back(p);
  }
  runnable_.clear();

  // --- evaluation phase, fanned out over the worker pool ---
  if (!active_islands_.empty()) {
    in_evaluation_ = true;
    pool_->run(active_islands_.size(),
               [this](std::size_t i) { evaluate_island(*active_islands_[i]); });
    in_evaluation_ = false;
    for (Island& island : islands) {
      if (island.error == nullptr) continue;
      // Deterministic error propagation: the lowest island id wins. Clear
      // all staging first — the kernel stays destructible, though the model
      // state is undefined after a contract violation.
      std::exception_ptr error;
      for (Island& other : islands) {
        if (error == nullptr && other.error != nullptr) error = other.error;
        other.error = nullptr;
        other.runnable.clear();
        other.delta_queue.clear();
        other.update_queue.clear();
        other.staged_timed.clear();
        other.staged_events.clear();
        other.staged_signals.clear();
        other.staged_processes.clear();
      }
      std::rethrow_exception(error);
    }
  }

  // --- commit: merge per-island staging into the global queues in
  // canonical order (island id, then intra-island request order) ---
  for (Island& island : islands) {
    for (const Island::StagedTimed& st : island.staged_timed) {
      timed_queue_.emplace(st.time, TimedEntry{st.event, st.token});
    }
    island.staged_timed.clear();
    for (SignalBase* s : island.update_queue) update_queue_.push_back(s);
    island.update_queue.clear();
    for (Event* e : island.delta_queue) delta_queue_.push_back(e);
    island.delta_queue.clear();
    commit_staged_entities(island);
  }

  // Phases 2 + 3 are single-threaded and reuse the serial code verbatim.
  run_update_and_delta_phases();

  ++delta_count_;
  ++parallel_deltas_;
  return true;
}

void Kernel::set_parallel(unsigned lanes) {
  if (lanes == parallel_lanes_) return;
  parallel_lanes_ = lanes;
  pool_.reset();  // re-created lazily with the new lane count
}

Kernel::ParallelStats Kernel::parallel_stats() const {
  ParallelStats stats;
  stats.islands = partition_ != nullptr ? partition_->islands().size() : 0;
  stats.parallel_deltas = parallel_deltas_;
  stats.repartitions = repartitions_;
  if (pool_ != nullptr) {
    for (const auto& lane : pool_->stats()) {
      stats.lanes.push_back({lane.busy_ns, lane.items});
    }
  }
  return stats;
}

std::size_t Kernel::island_count() {
  ensure_partition();
  return partition_->islands().size();
}

void Kernel::exhaust_deltas() {
  std::uint64_t deltas_this_step = 0;
  while (!stop_requested() && do_delta_cycle()) {
    if (delta_limit_ != 0 && ++deltas_this_step > delta_limit_) {
      throw std::runtime_error(
          "delta-cycle livelock: timestep " + std::to_string(now_) +
          " exceeded " + std::to_string(delta_limit_) + " delta cycles");
    }
  }
}

std::optional<SimTime> Kernel::next_event_time() const {
  // Lazily erase every stale entry in front of the first valid one: a
  // stale entry (cancelled or overridden notification) can never become
  // valid again, so dropping it here keeps cancel-heavy workloads bounded.
  for (auto it = timed_queue_.begin(); it != timed_queue_.end();) {
    const TimedEntry& entry = it->second;
    if (entry.event->pending_ == Event::Pending::kTimed &&
        entry.event->pending_token_ == entry.token) {
      return it->first;
    }
    it = timed_queue_.erase(it);
  }
  return std::nullopt;
}

bool Kernel::idle() const {
  return runnable_.empty() && delta_queue_.empty() &&
         update_queue_.empty() && uninitialized_.empty() &&
         !next_event_time().has_value();
}

void Kernel::run_until(SimTime t) {
  assert(t >= now_);
  stop_requested_.store(false, std::memory_order_relaxed);
  exhaust_deltas();
  while (!stop_requested()) {
    // Advance to the next valid timed notification at or before t.
    std::optional<SimTime> next;
    while (!timed_queue_.empty()) {
      auto it = timed_queue_.begin();
      Event* e = it->second.event;
      if (e->pending_ != Event::Pending::kTimed ||
          e->pending_token_ != it->second.token) {
        timed_queue_.erase(it);  // stale (cancelled/overridden) entry
        continue;
      }
      next = it->first;
      break;
    }
    if (!next || *next > t) break;
    now_ = *next;
    // Fire every valid notification at this time point.
    while (!timed_queue_.empty() && timed_queue_.begin()->first == now_) {
      auto it = timed_queue_.begin();
      Event* e = it->second.event;
      const std::uint64_t token = it->second.token;
      timed_queue_.erase(it);
      if (e->pending_ == Event::Pending::kTimed &&
          e->pending_token_ == token) {
        e->trigger();
      }
    }
    exhaust_deltas();
  }
  if (!stop_requested() && now_ < t) now_ = t;
}

void Kernel::run_to_completion() {
  stop_requested_.store(false, std::memory_order_relaxed);
  exhaust_deltas();
  while (!stop_requested()) {
    std::optional<SimTime> next = next_event_time();
    if (!next) break;
    run_until(*next);
    if (stop_requested()) break;
    exhaust_deltas();
  }
  kLog.debug("run_to_completion: t={} deltas={}", now_, delta_count_);
}

}  // namespace vhp::sim
