#include "vhp/sim/kernel.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "vhp/common/log.hpp"

namespace vhp::sim {

namespace {
const Logger kLog{"sim"};
}

Kernel::Kernel() = default;
Kernel::~Kernel() = default;

Process& Kernel::register_process(std::unique_ptr<Process> process) {
  Process& ref = *process;
  processes_.push_back(std::move(process));
  uninitialized_.push_back(&ref);
  return ref;
}

void Kernel::schedule_timed(Event* event, SimTime abs_time,
                            std::uint64_t token) {
  assert(abs_time >= now_);
  timed_queue_.emplace(abs_time, TimedEntry{event, token});
}

void Kernel::schedule_delta(Event* event) { delta_queue_.push_back(event); }

void Kernel::forget_event(Event* event) {
  std::erase(delta_queue_, event);
  for (auto it = timed_queue_.begin(); it != timed_queue_.end();) {
    it = it->second.event == event ? timed_queue_.erase(it) : std::next(it);
  }
}

void Kernel::request_update(SignalBase* signal) {
  if (signal->update_requested_) return;
  signal->update_requested_ = true;
  update_queue_.push_back(signal);
}

void Kernel::make_runnable(Process* process) { runnable_.push_back(process); }

void Kernel::initialize_new_processes() {
  // SystemC initialization: every process runs once at elaboration end,
  // unless it asked dont_initialize(). Processes created mid-simulation
  // (rare, but the cosim SyncAgent does it) are initialized lazily here too.
  if (uninitialized_.empty()) return;
  std::vector<Process*> batch;
  batch.swap(uninitialized_);
  for (Process* p : batch) {
    if (p->initialize_) {
      p->runnable_ = true;
      runnable_.push_back(p);
    }
  }
}

bool Kernel::do_delta_cycle() {
  initialize_new_processes();
  // update_queue_ alone is enough to need a cycle: testbench code may write
  // a signal from outside any process (no runnable yet, but an update and
  // possibly a change notification must still happen).
  if (runnable_.empty() && delta_queue_.empty() && update_queue_.empty()) {
    return false;
  }

  // --- evaluation phase ---
  // Immediate notifications may append to runnable_ while we iterate, so
  // index-based iteration is required.
  in_evaluation_ = true;
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    Process* p = runnable_[i];
    p->runnable_ = false;
    if (p->terminated_) continue;
    p->execute();
  }
  runnable_.clear();
  in_evaluation_ = false;

  // --- update phase ---
  std::vector<SignalBase*> updates;
  updates.swap(update_queue_);
  for (SignalBase* s : updates) {
    s->update_requested_ = false;
    s->update();  // fires the change hooks itself, only on a real change
  }

  // --- delta notification phase ---
  std::vector<Event*> deltas;
  deltas.swap(delta_queue_);
  for (Event* e : deltas) {
    // The event may have been cancelled or re-notified since queuing;
    // pending_ is authoritative.
    if (e->pending_ == Event::Pending::kDelta) e->trigger();
  }

  ++delta_count_;
  return true;
}

void Kernel::exhaust_deltas() {
  std::uint64_t deltas_this_step = 0;
  while (!stop_requested_ && do_delta_cycle()) {
    if (delta_limit_ != 0 && ++deltas_this_step > delta_limit_) {
      throw std::runtime_error(
          "delta-cycle livelock: timestep " + std::to_string(now_) +
          " exceeded " + std::to_string(delta_limit_) + " delta cycles");
    }
  }
}

std::optional<SimTime> Kernel::next_event_time() const {
  for (const auto& [t, entry] : timed_queue_) {
    if (entry.event->pending_ == Event::Pending::kTimed &&
        entry.event->pending_token_ == entry.token) {
      return t;
    }
  }
  return std::nullopt;
}

bool Kernel::idle() const {
  return runnable_.empty() && delta_queue_.empty() &&
         update_queue_.empty() && uninitialized_.empty() &&
         !next_event_time().has_value();
}

void Kernel::run_until(SimTime t) {
  assert(t >= now_);
  stop_requested_ = false;
  exhaust_deltas();
  while (!stop_requested_) {
    // Advance to the next valid timed notification at or before t.
    std::optional<SimTime> next;
    while (!timed_queue_.empty()) {
      auto it = timed_queue_.begin();
      Event* e = it->second.event;
      if (e->pending_ != Event::Pending::kTimed ||
          e->pending_token_ != it->second.token) {
        timed_queue_.erase(it);  // stale (cancelled/overridden) entry
        continue;
      }
      next = it->first;
      break;
    }
    if (!next || *next > t) break;
    now_ = *next;
    // Fire every valid notification at this time point.
    while (!timed_queue_.empty() && timed_queue_.begin()->first == now_) {
      auto it = timed_queue_.begin();
      Event* e = it->second.event;
      const std::uint64_t token = it->second.token;
      timed_queue_.erase(it);
      if (e->pending_ == Event::Pending::kTimed &&
          e->pending_token_ == token) {
        e->trigger();
      }
    }
    exhaust_deltas();
  }
  if (!stop_requested_ && now_ < t) now_ = t;
}

void Kernel::run_to_completion() {
  stop_requested_ = false;
  exhaust_deltas();
  while (!stop_requested_) {
    std::optional<SimTime> next = next_event_time();
    if (!next) break;
    run_until(*next);
    if (stop_requested_) break;
    exhaust_deltas();
  }
  kLog.debug("run_to_completion: t={} deltas={}", now_, delta_count_);
}

}  // namespace vhp::sim
