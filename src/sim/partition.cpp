#include "vhp/sim/partition.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "vhp/sim/event.hpp"
#include "vhp/sim/process.hpp"
#include "vhp/sim/signal.hpp"

namespace vhp::sim {

namespace {

/// Plain union-find with path halving + union by size.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

void Partition::build(
    const std::vector<std::unique_ptr<Process>>& processes,
    const std::vector<Event*>& events,
    const std::vector<SignalBase*>& signals,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& entity_unions,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& group_unions) {
  islands_.clear();

  // Dense DSU node numbering over the live entities; remember each node's
  // entity id (for canonical ordering) and a back-pointer for write-back.
  const std::size_t n =
      processes.size() + events.size() + signals.size();
  Dsu dsu{n};
  std::vector<std::uint64_t> entity_id(n, 0);
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  std::unordered_map<const Process*, std::size_t> proc_node;
  std::unordered_map<const Event*, std::size_t> event_node;
  std::unordered_map<const SignalBase*, std::size_t> signal_node;
  by_id.reserve(n);

  std::size_t next = 0;
  for (const auto& p : processes) {
    proc_node[p.get()] = next;
    entity_id[next] = p->entity_id_;
    by_id[p->entity_id_] = next;
    ++next;
  }
  for (Event* e : events) {
    event_node[e] = next;
    entity_id[next] = e->entity_id_;
    by_id[e->entity_id_] = next;
    ++next;
  }
  for (SignalBase* s : signals) {
    signal_node[s] = next;
    entity_id[next] = s->entity_id_;
    by_id[s->entity_id_] = next;
    ++next;
  }

  // 1. Affinity groups: every entity with a group joins its group
  //    representative; co_locate'd groups merge through their reps.
  std::unordered_map<std::uint32_t, std::size_t> group_rep;
  auto join_group = [&](std::uint32_t group, std::size_t node) {
    if (group == 0) return;
    auto [it, inserted] = group_rep.try_emplace(group, node);
    if (!inserted) dsu.unite(it->second, node);
  };
  for (const auto& p : processes) join_group(p->affinity_, proc_node[p.get()]);
  for (Event* e : events) join_group(e->affinity_, event_node[e]);
  for (SignalBase* s : signals) join_group(s->affinity_, signal_node[s]);
  for (const auto& [ga, gb] : group_unions) {
    const auto ia = group_rep.find(ga);
    const auto ib = group_rep.find(gb);
    if (ia != group_rep.end() && ib != group_rep.end()) {
      dsu.unite(ia->second, ib->second);
    }
  }

  // 2. Explicit entity-level co-locations (e.g. a Clock's generator process
  //    with its signal). Pairs referencing dead entities were pruned by the
  //    kernel on unregistration.
  for (const auto& [a, b] : entity_unions) {
    const auto ia = by_id.find(a);
    const auto ib = by_id.find(b);
    if (ia != by_id.end() && ib != by_id.end()) dsu.unite(ia->second, ib->second);
  }

  // 3. Structural edges from the event graph.
  for (Event* e : events) {
    const std::size_t en = event_node[e];
    if (e->owner_signal_ != nullptr) {
      const auto it = signal_node.find(e->owner_signal_);
      if (it != signal_node.end()) dsu.unite(en, it->second);
    }
    if (e->owner_process_ != nullptr) {
      const auto it = proc_node.find(e->owner_process_);
      if (it != proc_node.end()) dsu.unite(en, it->second);
    }
    // Sensitivity to a signal-owned event is the island cut; sensitivity to
    // a plain event glues notifier-side and listener-side together (the
    // event may be notified immediately, within the evaluation phase).
    if (e->owner_signal_ == nullptr) {
      for (Process* p : e->static_sensitive_) {
        const auto it = proc_node.find(p);
        if (it != proc_node.end()) dsu.unite(en, it->second);
      }
    }
  }

  // Number the components canonically: islands ordered by the smallest
  // entity id (= construction order) they contain.
  std::unordered_map<std::size_t, std::uint64_t> min_id;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = dsu.find(i);
    const auto [it, inserted] = min_id.try_emplace(root, entity_id[i]);
    if (!inserted) it->second = std::min(it->second, entity_id[i]);
  }
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  order.reserve(min_id.size());
  for (const auto& [root, id] : min_id) order.emplace_back(id, root);
  std::sort(order.begin(), order.end());

  std::unordered_map<std::size_t, std::uint32_t> island_of_root;
  islands_.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    island_of_root[order[i].second] = id;
    islands_[i].id = id;
  }

  for (const auto& p : processes) {
    const std::uint32_t isl = island_of_root[dsu.find(proc_node[p.get()])];
    p->island_ = isl;
    ++islands_[isl].n_processes;
  }
  for (Event* e : events) {
    e->island_ = island_of_root[dsu.find(event_node[e])];
  }
  for (SignalBase* s : signals) {
    s->island_ = island_of_root[dsu.find(signal_node[s])];
  }

  // VHP_PARTITION_DEBUG=1 dumps every entity with its island and affinity
  // group — the tool for diagnosing "why did these modules merge".
  if (std::getenv("VHP_PARTITION_DEBUG") != nullptr) {
    std::fprintf(stderr, "[partition] %zu islands over %zu entities\n",
                 islands_.size(), n);
    for (const auto& p : processes) {
      std::fprintf(stderr, "[partition]   P i=%u g=%u %s\n", p->island_,
                   p->affinity_, p->name().c_str());
    }
    for (Event* e : events) {
      std::fprintf(stderr, "[partition]   E i=%u g=%u sens=%zu %s%s%s\n",
                   e->island_, e->affinity_, e->static_sensitive_.size(),
                   e->name().c_str(),
                   e->owner_signal_ ? " [sig-owned]" : "",
                   e->owner_process_ ? " [proc-owned]" : "");
    }
    for (SignalBase* s : signals) {
      std::fprintf(stderr, "[partition]   S i=%u g=%u %s\n", s->island_,
                   s->affinity_, s->name().c_str());
    }
  }
}

}  // namespace vhp::sim
