#include "vhp/sim/signal.hpp"

#include "vhp/sim/kernel.hpp"

namespace vhp::sim {

SignalBase::SignalBase(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)),
      changed_(kernel, name_ + ".changed") {
  // Signal-owned events are the island cut: sensitivity to them never
  // merges the reader with the writer (signals are delta-delayed, so
  // cross-island reads are race-free by construction).
  changed_.owner_signal_ = this;
  kernel_.register_signal(this);
}

SignalBase::~SignalBase() { kernel_.unregister_signal(this); }

void SignalBase::request_update() { kernel_.request_update(this); }

void SignalBase::notify_change_hooks() {
  for (auto& hook : change_hooks_) hook(kernel_.now());
}

BoolSignal::BoolSignal(Kernel& kernel, std::string name, bool init)
    : Signal<bool>(kernel, std::move(name), init),
      posedge_(kernel, this->name() + ".pos"),
      negedge_(kernel, this->name() + ".neg") {
  posedge_.owner_signal_ = this;
  negedge_.owner_signal_ = this;
}

void BoolSignal::on_changed() {
  (cur_ ? posedge_ : negedge_).notify_delta();
}

Clock::Clock(Kernel& kernel, std::string name, SimTime period,
             SimTime start_time)
    : BoolSignal(kernel, std::move(name), false), period_(period),
      tick_(kernel, this->name() + ".tick") {
  // The toggling "process" is the tick event itself: a method process
  // sensitive to it writes the opposite value and re-arms the event.
  auto proc = std::make_unique<MethodProcess>(
      kernel, this->name() + ".gen", [this] { toggle(); });
  proc->sensitive(tick_).dont_initialize();
  Process& gen = kernel.register_process(std::move(proc));
  // The generator writes this signal; keep both in one island no matter
  // what construction affinity was active at our construction site.
  kernel.co_locate(gen, *this);
  tick_.notify_at(start_time);
}

void Clock::toggle() {
  const bool rising = !read();
  write(rising);
  // High for the first half period, low for the second.
  tick_.notify_at(rising ? period_ - period_ / 2 : period_ / 2);
}

}  // namespace vhp::sim
