#include "vhp/sim/process.hpp"

#include <cassert>
#include <stdexcept>

#include "vhp/sim/kernel.hpp"

namespace vhp::sim {

namespace {
thread_local ThreadProcess* tls_current_thread = nullptr;
}

Process::Process(Kernel& kernel, Kind kind, std::string name)
    : kernel_(kernel), kind_(kind), name_(std::move(name)) {
  affinity_ = kernel_.construction_affinity();
}

Process::~Process() = default;

Process& Process::sensitive(Event& event) {
  event.static_sensitive_.push_back(this);
  static_events_.push_back(&event);
  kernel_.mark_partition_dirty();  // sensitivity edges feed the partitioner
  return *this;
}

Process& Process::dont_initialize() {
  initialize_ = false;
  return *this;
}

void Process::trigger_from(Event& /*event*/) {
  if (terminated_ || runnable_) return;
  // Dynamic sensitivity masks static sensitivity (SystemC semantics).
  if (dynamic_wait_active_) return;
  runnable_ = true;
  kernel_.make_runnable(this);
}

void Process::trigger_dynamic(Event& event, std::uint64_t token) {
  if (terminated_ || runnable_) return;
  if (!dynamic_wait_active_ || token != wait_token_) return;  // stale
  dynamic_wait_active_ = false;
  last_dynamic_trigger_ = &event;
  runnable_ = true;
  kernel_.make_runnable(this);
}

MethodProcess::MethodProcess(Kernel& kernel, std::string name,
                             std::function<void()> fn)
    : Process(kernel, Kind::kMethod, std::move(name)), fn_(std::move(fn)) {}

void MethodProcess::execute() { fn_(); }

ThreadProcess::ThreadProcess(Kernel& kernel, std::string name,
                             std::function<void()> fn,
                             std::size_t stack_bytes)
    : Process(kernel, Kind::kThread, std::move(name)),
      fn_(std::move(fn)),
      fiber_([this] { fn_(); }, stack_bytes),
      timeout_event_(kernel, name_ + ".timeout") {
  // The timeout event is private to this thread: co-locate them so wait_for
  // / wait_with_timeout never cross an island boundary.
  timeout_event_.owner_process_ = this;
}

void ThreadProcess::execute() {
  ThreadProcess* prev = tls_current_thread;
  tls_current_thread = this;
  fiber_.resume();
  tls_current_thread = prev;
  if (fiber_.finished()) terminated_ = true;
}

void ThreadProcess::wait_on_event(Event& event) {
  (void)wait_on_any({&event});
}

Event* ThreadProcess::wait_on_any(std::initializer_list<Event*> events) {
  assert(events.size() > 0 && "wait_any needs at least one event");
  const std::uint64_t token = ++wait_token_;
  dynamic_wait_active_ = true;
  last_dynamic_trigger_ = nullptr;
  for (Event* e : events) {
    // During a parallel evaluation phase a dynamic wait may only register
    // on events of the executing island (the registration mutates the
    // event); serial runs pass through unchecked.
    kernel_.check_eval_access(*e);
    e->dynamic_waiters_.emplace_back(this, token);
  }
  Fiber::yield_to_resumer();
  // Woken by exactly one of the events; the rest hold stale registrations
  // that their next trigger discards.
  return last_dynamic_trigger_;
}

bool ThreadProcess::wait_on_event_timeout(Event& event, SimTime timeout) {
  timeout_event_.notify_at(timeout);
  Event* fired = wait_on_any({&event, &timeout_event_});
  if (fired == &timeout_event_) return false;
  timeout_event_.cancel();
  return true;
}

void ThreadProcess::wait_for(SimTime delay) {
  timeout_event_.notify_at(delay);
  wait_on_event(timeout_event_);
}

void ThreadProcess::wait_static() {
  if (static_events_.empty()) {
    throw std::logic_error("wait() in thread process '" + name_ +
                           "' with empty static sensitivity would never "
                           "resume");
  }
  Fiber::yield_to_resumer();
}

void wait(Event& event) {
  ThreadProcess* tp = tls_current_thread;
  assert(tp != nullptr && "wait(event) outside a thread process");
  tp->wait_on_event(event);
}

void wait(SimTime delay) {
  ThreadProcess* tp = tls_current_thread;
  assert(tp != nullptr && "wait(delay) outside a thread process");
  tp->wait_for(delay);
}

void wait() {
  ThreadProcess* tp = tls_current_thread;
  assert(tp != nullptr && "wait() outside a thread process");
  tp->wait_static();
}

Event* wait_any(std::initializer_list<Event*> events) {
  ThreadProcess* tp = tls_current_thread;
  assert(tp != nullptr && "wait_any outside a thread process");
  return tp->wait_on_any(events);
}

bool wait_with_timeout(Event& event, SimTime timeout) {
  ThreadProcess* tp = tls_current_thread;
  assert(tp != nullptr && "wait_with_timeout outside a thread process");
  return tp->wait_on_event_timeout(event, timeout);
}

ThreadProcess* current_thread_process() { return tls_current_thread; }

}  // namespace vhp::sim
