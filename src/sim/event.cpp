#include "vhp/sim/event.hpp"

#include <algorithm>

#include "vhp/sim/kernel.hpp"
#include "vhp/sim/process.hpp"

namespace vhp::sim {

Event::Event(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  kernel_.register_event(this);
}

Event::~Event() {
  cancel();
  kernel_.forget_event(this);
}

void Event::notify() {
  // Immediate notification: fire right now, within the evaluation phase.
  // Pending delta/timed notifications are unaffected (SystemC semantics:
  // immediate does not cancel, but the per-process runnable flag dedupes).
  trigger();
}

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;
  if (pending_ == Pending::kTimed) {
    // Delta (earlier) overrides timed (later); invalidate the queue entry.
    ++pending_token_;
  }
  pending_ = Pending::kDelta;
  kernel_.schedule_delta(this);
}

void Event::notify_at(SimTime delay) {
  const SimTime abs = kernel_.now() + delay;
  if (pending_ == Pending::kDelta) return;  // delta is always earlier
  if (pending_ == Pending::kTimed && pending_time_ <= abs) return;
  ++pending_token_;  // invalidate any previously queued (later) entry
  pending_ = Pending::kTimed;
  pending_time_ = abs;
  kernel_.schedule_timed(this, abs, pending_token_);
}

void Event::cancel() {
  ++pending_token_;
  pending_ = Pending::kNone;
}

void Event::trigger() {
  pending_ = Pending::kNone;
  for (Process* p : static_sensitive_) p->trigger_from(*this);
  if (!dynamic_waiters_.empty()) {
    // One-shot: waiting processes resume once, then re-register if needed.
    // Stale registrations (a wait_any lost to another event) are filtered
    // by the token inside trigger_dynamic.
    std::vector<std::pair<Process*, std::uint64_t>> waiters;
    waiters.swap(dynamic_waiters_);
    for (auto& [p, token] : waiters) p->trigger_dynamic(*this, token);
  }
}

}  // namespace vhp::sim
