#include "vhp/sim/worker_pool.hpp"

#include <chrono>

namespace vhp::sim {

namespace {
constexpr int kSpinIters = 4096;
}

WorkerPool::WorkerPool(unsigned lanes) {
  if (lanes == 0) lanes = 1;
  stats_.resize(lanes);
  threads_.reserve(lanes - 1);
  for (unsigned lane = 1; lane < lanes; ++lane) {
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (threads_.empty()) {
    // Single lane: no dispatch protocol needed.
    task_ = &task;
    n_items_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    run_items(0);
    task_ = nullptr;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    n_items_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    done_workers_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  run_items(0);
  // Fork-join barrier: every worker passes through the epoch exactly once
  // (sleepers are woken by the notify above), so once all have acknowledged
  // no lane can still be pulling items and the shared state is quiescent.
  const auto all = static_cast<unsigned>(threads_.size());
  int spin = 0;
  while (done_workers_.load(std::memory_order_acquire) != all) {
    if (++spin > kSpinIters) {
      std::this_thread::yield();
      spin = 0;
    }
  }
  task_ = nullptr;
}

void WorkerPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; spin < kSpinIters && e == seen; ++spin) {
      e = epoch_.load(std::memory_order_acquire);
    }
    if (e == seen) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return shutdown_ || epoch_.load(std::memory_order_relaxed) != seen;
      });
      if (shutdown_) return;
      e = epoch_.load(std::memory_order_relaxed);
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return;
    }
    seen = e;
    run_items(lane);
    done_workers_.fetch_add(1, std::memory_order_release);
  }
}

void WorkerPool::run_items(unsigned lane) {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    const std::size_t i = next_item_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= n_items_) return;
    const auto start = Clock::now();
    (*task_)(i);
    const auto end = Clock::now();
    stats_[lane].busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    ++stats_[lane].items;
  }
}

}  // namespace vhp::sim
