#include "vhp/sim/memory.hpp"

#include <cstring>

namespace vhp::sim {

const Memory::Page* Memory::page_for_read(u64 page_index) const {
  auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::page_for_write(u64 page_index) {
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

void Memory::read(u64 addr, std::span<u8> out) const {
  ++reads_;
  std::size_t done = 0;
  while (done < out.size()) {
    const u64 page_index = (addr + done) / kPageBytes;
    const std::size_t offset = (addr + done) % kPageBytes;
    const std::size_t chunk =
        std::min(out.size() - done, kPageBytes - offset);
    if (const Page* page = page_for_read(page_index)) {
      std::memcpy(out.data() + done, page->data() + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
}

Bytes Memory::read(u64 addr, std::size_t n) const {
  Bytes out(n);
  read(addr, out);
  return out;
}

void Memory::write(u64 addr, std::span<const u8> data) {
  ++writes_;
  std::size_t done = 0;
  while (done < data.size()) {
    const u64 page_index = (addr + done) / kPageBytes;
    const std::size_t offset = (addr + done) % kPageBytes;
    const std::size_t chunk =
        std::min(data.size() - done, kPageBytes - offset);
    std::memcpy(page_for_write(page_index).data() + offset,
                data.data() + done, chunk);
    done += chunk;
  }
}

u8 Memory::read_u8(u64 addr) const {
  u8 v = 0;
  read(addr, std::span{&v, 1});
  return v;
}

u32 Memory::read_u32(u64 addr) const {
  std::array<u8, 4> raw{};
  read(addr, raw);
  return static_cast<u32>(raw[0]) | (static_cast<u32>(raw[1]) << 8) |
         (static_cast<u32>(raw[2]) << 16) | (static_cast<u32>(raw[3]) << 24);
}

void Memory::write_u8(u64 addr, u8 value) {
  write(addr, std::span{&value, 1});
}

void Memory::write_u32(u64 addr, u32 value) {
  const std::array<u8, 4> raw{
      static_cast<u8>(value), static_cast<u8>(value >> 8),
      static_cast<u8>(value >> 16), static_cast<u8>(value >> 24)};
  write(addr, raw);
}

}  // namespace vhp::sim
