#include "vhp/common/format.hpp"

#include "vhp/sim/trace.hpp"


#include "vhp/sim/kernel.hpp"

namespace vhp::sim {
namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string make_id(unsigned n) {
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + n % 94));
    n /= 94;
  } while (n != 0);
  return id;
}

std::string to_binary(u64 value, unsigned width) {
  std::string s;
  s.reserve(width);
  for (unsigned i = width; i-- > 0;) {
    s.push_back((value >> i) & 1u ? '1' : '0');
  }
  // VCD allows dropping leading zeros but requires at least one digit.
  const auto first_one = s.find('1');
  return first_one == std::string::npos ? "0" : s.substr(first_one);
}

}  // namespace

VcdWriter::VcdWriter(Kernel& kernel, const std::string& path)
    : kernel_(kernel), out_(path) {}

VcdWriter::~VcdWriter() { close(); }

std::string VcdWriter::add_var(const std::string& name, unsigned width) {
  const std::string id = make_id(next_id_++);
  declarations_.push_back(vhp::strformat("$var wire {} {} {} $end", width, id,
                                      name));
  return id;
}

void VcdWriter::trace(Signal<bool>& signal, const std::string& name) {
  const std::string id = add_var(name, 1);
  Signal<bool>* sig = &signal;
  signal.add_change_hook(
      [this, sig, id](SimTime t) { record_scalar(t, id, sig->read()); });
  initial_scalars_.push_back({id, signal.read()});
}

void VcdWriter::write_header() {
  out_ << "$date today $end\n$version vhp::sim VcdWriter $end\n"
       << "$timescale 1ns $end\n$scope module top $end\n";
  for (const auto& d : declarations_) out_ << d << '\n';
  out_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& s : initial_scalars_) {
    out_ << (s.value ? '1' : '0') << s.id << '\n';
  }
  for (const auto& v : initial_vectors_) {
    out_ << 'b' << to_binary(v.value, v.width) << ' ' << v.id << '\n';
  }
  out_ << "$end\n";
  header_written_ = true;
}

void VcdWriter::advance_time(SimTime t) {
  if (!header_written_) write_header();
  if (!any_change_ || t != last_time_) {
    out_ << '#' << t << '\n';
    last_time_ = t;
    any_change_ = true;
  }
}

void VcdWriter::record_scalar(SimTime t, const std::string& id, bool value) {
  advance_time(t);
  out_ << (value ? '1' : '0') << id << '\n';
}

void VcdWriter::record_vector(SimTime t, const std::string& id, u64 value,
                              unsigned width) {
  advance_time(t);
  out_ << 'b' << to_binary(value, width) << ' ' << id << '\n';
}

void VcdWriter::close() {
  if (out_.is_open()) {
    if (!header_written_) write_header();
    out_ << '#' << kernel_.now() << '\n';
    out_.close();
  }
}

}  // namespace vhp::sim
