#include "vhp/sim/module.hpp"

#include "vhp/sim/kernel.hpp"

namespace vhp::sim {

Module::Module(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
  // Every module opens a fresh island-affinity group and leaves it active:
  // members of the derived class (signals, events, FIFOs, ports) are
  // constructed after this base constructor runs and inherit the group, so
  // a module's internals always end up in one island.
  affinity_ = kernel_.new_affinity_group();
  kernel_.set_construction_affinity(affinity_);
}

Module::AffinityScope::AffinityScope(const Module& module)
    : kernel_(module.kernel_) {
  const auto ctx = Kernel::construction_context();
  saved_kernel_ = ctx.first;
  saved_group_ = ctx.second;
  kernel_.set_construction_affinity(module.affinity_);
}

Module::AffinityScope::~AffinityScope() {
  Kernel::set_construction_context(saved_kernel_, saved_group_);
}

Process& Module::method(const std::string& proc_name,
                        std::function<void()> fn) {
  const AffinityScope scope{*this};
  return kernel_.register_process(std::make_unique<MethodProcess>(
      kernel_, qualify(proc_name), std::move(fn)));
}

Process& Module::thread(const std::string& proc_name,
                        std::function<void()> fn, std::size_t stack_bytes) {
  const AffinityScope scope{*this};
  return kernel_.register_process(std::make_unique<ThreadProcess>(
      kernel_, qualify(proc_name), std::move(fn), stack_bytes));
}

BoolSignal& Module::make_bool_signal(const std::string& sig_name, bool init) {
  const AffinityScope scope{*this};
  auto sig = std::make_unique<BoolSignal>(kernel_, qualify(sig_name), init);
  auto& ref = *sig;
  owned_signals_.push_back(std::move(sig));
  return ref;
}

}  // namespace vhp::sim
