#include "vhp/sim/module.hpp"

#include "vhp/sim/kernel.hpp"

namespace vhp::sim {

Module::Module(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

Process& Module::method(const std::string& proc_name,
                        std::function<void()> fn) {
  return kernel_.register_process(std::make_unique<MethodProcess>(
      kernel_, qualify(proc_name), std::move(fn)));
}

Process& Module::thread(const std::string& proc_name,
                        std::function<void()> fn, std::size_t stack_bytes) {
  return kernel_.register_process(std::make_unique<ThreadProcess>(
      kernel_, qualify(proc_name), std::move(fn), stack_bytes));
}

BoolSignal& Module::make_bool_signal(const std::string& sig_name, bool init) {
  auto sig = std::make_unique<BoolSignal>(kernel_, qualify(sig_name), init);
  auto& ref = *sig;
  owned_signals_.push_back(std::move(sig));
  return ref;
}

}  // namespace vhp::sim
