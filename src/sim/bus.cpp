#include "vhp/sim/bus.hpp"

#include "vhp/common/format.hpp"
#include "vhp/sim/kernel.hpp"

namespace vhp::sim {

Bus::Bus(Kernel& kernel, std::string name, Config config)
    : Module(kernel, std::move(name)), config_(config),
      released_(kernel, qualify("released")) {}

void Bus::map(u32 base, u32 size, BusTarget& target) {
  map_.push_back(Mapping{base, size, &target});
}

Bus::Mapping* Bus::decode(u32 addr) {
  for (auto& m : map_) {
    if (addr >= m.base && addr - m.base < m.size) return &m;
  }
  return nullptr;
}

void Bus::acquire() {
  const u64 ticket = next_ticket_++;
  if (ticket != serving_) ++stats_.contended;
  while (ticket != serving_) wait(released_);
}

void Bus::release() {
  ++serving_;
  // Immediate notification: every waiter re-checks its ticket within this
  // evaluation; exactly the next one in FIFO order proceeds.
  released_.notify();
}

Result<u32> Bus::read(u32 addr) {
  acquire();
  ++stats_.reads;
  Mapping* m = decode(addr);
  const u64 cycles =
      config_.transfer_cycles + (m != nullptr ? m->target->wait_states() : 0);
  wait(cycles * config_.clock_period);
  Result<u32> result = Status{StatusCode::kNotFound, ""};
  if (m == nullptr) {
    ++stats_.decode_errors;
    result = Status{StatusCode::kNotFound,
                    strformat("bus error: no target at {}", addr)};
  } else {
    result = m->target->bus_read(addr - m->base);
  }
  release();
  return result;
}

Status Bus::write(u32 addr, u32 data) {
  acquire();
  ++stats_.writes;
  Mapping* m = decode(addr);
  const u64 cycles =
      config_.transfer_cycles + (m != nullptr ? m->target->wait_states() : 0);
  wait(cycles * config_.clock_period);
  Status result;
  if (m == nullptr) {
    ++stats_.decode_errors;
    result = Status{StatusCode::kNotFound,
                    strformat("bus error: no target at {}", addr)};
  } else {
    result = m->target->bus_write(addr - m->base, data);
  }
  release();
  return result;
}

}  // namespace vhp::sim
