#include "vhp/iss/runner.hpp"

namespace vhp::iss {

IssRunner::IssRunner(board::Board& board, sim::Memory& ram,
                     IssRunnerConfig config)
    : board_(board), config_(config), bus_(ram), cpu_(timed_bus_),
      irq_sem_(board.kernel(), 0) {
  bus_.map_mmio(
      config_.mmio_base, config_.mmio_size,
      [this](u32 offset, unsigned bytes) -> u32 {
        board_.kernel().consume(config_.mmio_access_cost);
        auto data = board_.dev_read(offset, bytes);
        if (!data.ok()) return 0;
        u32 v = 0;
        for (std::size_t i = 0; i < data.value().size() && i < 4; ++i) {
          v |= static_cast<u32>(data.value()[i]) << (8 * i);
        }
        return v;
      },
      [this](u32 offset, u32 value, unsigned bytes) {
        board_.kernel().consume(config_.mmio_access_cost);
        Bytes raw(bytes);
        for (unsigned i = 0; i < bytes; ++i) {
          raw[i] = static_cast<u8>(value >> (8 * i));
        }
        (void)board_.dev_write(offset, raw);
      });

  cpu_.set_pc(config_.entry_pc);
  cpu_.set_reg(Cpu::kRegSp, config_.stack_top);
  thread_ = &board_.spawn_app(config_.thread_name, config_.priority,
                              [this] { run_loop(); });
}

void IssRunner::attach_memory(mem::CorePort& port) {
  mem_port_ = &port;
  thread_->set_affinity(static_cast<int>(port.core()));
}

bool IssRunner::handle_ecall() {
  const u32 num = cpu_.reg(Cpu::kRegA7);
  switch (num) {
    case 0:  // exit
      exit_code_ = cpu_.reg(Cpu::kRegA0);
      return false;
    case 1:  // wfi: wait for the device interrupt
      irq_sem_.wait();
      return true;
    case 2:  // read board tick counter
      cpu_.set_reg(Cpu::kRegA0,
                   static_cast<u32>(board_.kernel().tick_count().value()));
      return true;
    case 3:  // yield
      board_.kernel().yield();
      return true;
    case 4:  // core id
      cpu_.set_reg(Cpu::kRegA0,
                   mem_port_ != nullptr ? mem_port_->core()
                                        : board_.kernel().current_core());
      return true;
    default:
      log_.warn("firmware: unknown syscall {} at pc={}", num, cpu_.pc());
      return true;
  }
}

void IssRunner::run_loop() {
  u64 pending_cycles = 0;
  const auto charge = [&] {
    if (pending_cycles > 0) {
      board_.kernel().consume(pending_cycles);
      pending_cycles = 0;
    }
  };
  while (cpu_.instructions_retired() < config_.max_instructions) {
    // Disarmed boards skip the per-step access reset: the record saturates
    // after the first instruction and the decorator costs two predictable
    // branches per transaction (the mem_contention --gate budget).
    if (mem_port_ != nullptr) timed_bus_.begin_instruction();
    const StepResult r = cpu_.step();
    u64 cost = r.cycles;
    if (mem_port_ != nullptr) {
      // Pipelined timing: the fetch traverses the I-cache, a data access
      // the D-cache (misses queue on the shared banks); MMIO keeps its
      // flat bridge cost — device registers are uncached by definition.
      const auto& acc = timed_bus_.accesses();
      const u64 now =
          board_.kernel().core_cycle_count(mem_port_->core()) + pending_cycles;
      const u64 fetch_lat =
          acc.has_fetch ? mem_port_->fetch(acc.fetch_addr, now) : 0;
      u64 data_lat = 0;
      if (acc.has_data && !is_mmio(acc.data_addr)) {
        data_lat = mem_port_->data_access(acc.data_addr, acc.data_is_store,
                                          now + fetch_lat);
      }
      cost = mem_port_->pipeline().instruction(r.cycles, fetch_lat, data_lat);
    }
    pending_cycles += cost;
    if (r.trap == TrapKind::kNone) {
      if (pending_cycles >= config_.batch_cycles) charge();
      continue;
    }
    // Traps synchronize the budget first: syscalls observe consistent time.
    charge();
    if (r.trap == TrapKind::kEcall) {
      if (!handle_ecall()) break;
      continue;
    }
    if (r.trap == TrapKind::kEbreak) {
      log_.info("firmware: ebreak at pc={}", cpu_.pc());
      break;
    }
    log_.error("firmware: {} at pc={} (ins={})",
               r.trap == TrapKind::kIllegalInstruction ? "illegal instruction"
                                                       : "misaligned fetch",
               cpu_.pc(), r.instruction);
    exit_code_ = 0xdead;
    break;
  }
  charge();
  exited_.store(true, std::memory_order_release);
  log_.debug("firmware halted: {} instructions, exit={}",
             cpu_.instructions_retired(), exit_code_);
}

}  // namespace vhp::iss
