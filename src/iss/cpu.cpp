#include "vhp/iss/cpu.hpp"

namespace vhp::iss {

namespace {

// RV32 base opcodes.
constexpr u32 kOpLui = 0x37;
constexpr u32 kOpAuipc = 0x17;
constexpr u32 kOpJal = 0x6f;
constexpr u32 kOpJalr = 0x67;
constexpr u32 kOpBranch = 0x63;
constexpr u32 kOpLoad = 0x03;
constexpr u32 kOpStore = 0x23;
constexpr u32 kOpAluImm = 0x13;
constexpr u32 kOpAluReg = 0x33;
constexpr u32 kOpFence = 0x0f;
constexpr u32 kOpSystem = 0x73;

u32 imm_i(u32 ins) { return ins >> 20; }                       // 12 bits
u32 imm_s(u32 ins) {
  return ((ins >> 25) << 5) | ((ins >> 7) & 0x1f);
}
u32 imm_b(u32 ins) {
  return (((ins >> 31) & 1u) << 12) | (((ins >> 7) & 1u) << 11) |
         (((ins >> 25) & 0x3fu) << 5) | (((ins >> 8) & 0xfu) << 1);
}
u32 imm_u(u32 ins) { return ins & 0xfffff000u; }
u32 imm_j(u32 ins) {
  return (((ins >> 31) & 1u) << 20) | (((ins >> 12) & 0xffu) << 12) |
         (((ins >> 20) & 1u) << 11) | (((ins >> 21) & 0x3ffu) << 1);
}

}  // namespace

StepResult Cpu::step() {
  StepResult result;
  if ((pc_ & 3u) != 0) {
    result.trap = TrapKind::kMisalignedFetch;
    return result;
  }
  const u32 ins = bus_.load(pc_, 4);
  result.instruction = ins;
  const u32 opcode = ins & 0x7fu;
  const unsigned rd = (ins >> 7) & 0x1fu;
  const unsigned rs1 = (ins >> 15) & 0x1fu;
  const unsigned rs2 = (ins >> 20) & 0x1fu;
  const u32 funct3 = (ins >> 12) & 0x7u;
  const u32 funct7 = ins >> 25;
  u32 next_pc = pc_ + 4;

  switch (opcode) {
    case kOpLui:
      set_reg(rd, imm_u(ins));
      break;
    case kOpAuipc:
      set_reg(rd, pc_ + imm_u(ins));
      break;
    case kOpJal:
      set_reg(rd, pc_ + 4);
      next_pc = pc_ + static_cast<u32>(sext(imm_j(ins), 21));
      result.cycles = 2;
      break;
    case kOpJalr: {
      const u32 target =
          (reg(rs1) + static_cast<u32>(sext(imm_i(ins), 12))) & ~1u;
      set_reg(rd, pc_ + 4);
      next_pc = target;
      result.cycles = 2;
      break;
    }
    case kOpBranch: {
      const u32 a = reg(rs1);
      const u32 b = reg(rs2);
      bool taken = false;
      switch (funct3) {
        case 0: taken = a == b; break;                              // BEQ
        case 1: taken = a != b; break;                              // BNE
        case 4: taken = static_cast<i32>(a) < static_cast<i32>(b); break;
        case 5: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;
        case 6: taken = a < b; break;                               // BLTU
        case 7: taken = a >= b; break;                              // BGEU
        default:
          result.trap = TrapKind::kIllegalInstruction;
          return result;
      }
      if (taken) {
        next_pc = pc_ + static_cast<u32>(sext(imm_b(ins), 13));
        result.cycles = 2;  // taken-branch penalty
      }
      break;
    }
    case kOpLoad: {
      const u32 addr = reg(rs1) + static_cast<u32>(sext(imm_i(ins), 12));
      u32 v = 0;
      switch (funct3) {
        case 0: v = static_cast<u32>(sext(bus_.load(addr, 1), 8)); break;
        case 1: v = static_cast<u32>(sext(bus_.load(addr, 2), 16)); break;
        case 2: v = bus_.load(addr, 4); break;
        case 4: v = bus_.load(addr, 1); break;  // LBU
        case 5: v = bus_.load(addr, 2); break;  // LHU
        default:
          result.trap = TrapKind::kIllegalInstruction;
          return result;
      }
      set_reg(rd, v);
      result.cycles = 2;  // memory access
      break;
    }
    case kOpStore: {
      const u32 addr = reg(rs1) + static_cast<u32>(sext(imm_s(ins), 12));
      switch (funct3) {
        case 0: bus_.store(addr, reg(rs2), 1); break;
        case 1: bus_.store(addr, reg(rs2), 2); break;
        case 2: bus_.store(addr, reg(rs2), 4); break;
        default:
          result.trap = TrapKind::kIllegalInstruction;
          return result;
      }
      result.cycles = 2;
      break;
    }
    case kOpAluImm: {
      const u32 a = reg(rs1);
      const u32 imm = static_cast<u32>(sext(imm_i(ins), 12));
      u32 v = 0;
      switch (funct3) {
        case 0: v = a + imm; break;                                 // ADDI
        case 2: v = static_cast<i32>(a) < static_cast<i32>(imm); break;
        case 3: v = a < imm; break;                                 // SLTIU
        case 4: v = a ^ imm; break;
        case 6: v = a | imm; break;
        case 7: v = a & imm; break;
        case 1:                                                     // SLLI
          if (funct7 != 0) {
            result.trap = TrapKind::kIllegalInstruction;
            return result;
          }
          v = a << (rs2 & 0x1f);
          break;
        case 5:                                                     // SR*I
          if (funct7 == 0x20) {
            v = static_cast<u32>(static_cast<i32>(a) >> (rs2 & 0x1f));
          } else if (funct7 == 0) {
            v = a >> (rs2 & 0x1f);
          } else {
            result.trap = TrapKind::kIllegalInstruction;
            return result;
          }
          break;
        default:
          result.trap = TrapKind::kIllegalInstruction;
          return result;
      }
      set_reg(rd, v);
      break;
    }
    case kOpAluReg: {
      const u32 a = reg(rs1);
      const u32 b = reg(rs2);
      u32 v = 0;
      if (funct7 == 0x01) {  // M extension
        switch (funct3) {
          case 0: v = a * b; break;  // MUL
          case 1:  // MULH
            v = static_cast<u32>(
                (static_cast<i64>(static_cast<i32>(a)) *
                 static_cast<i64>(static_cast<i32>(b))) >> 32);
            break;
          case 2:  // MULHSU
            v = static_cast<u32>(
                (static_cast<i64>(static_cast<i32>(a)) *
                 static_cast<i64>(static_cast<u64>(b))) >> 32);
            break;
          case 3:  // MULHU
            v = static_cast<u32>(
                (static_cast<u64>(a) * static_cast<u64>(b)) >> 32);
            break;
          case 4:  // DIV
            if (b == 0) {
              v = 0xffffffffu;
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              v = 0x80000000u;
            } else {
              v = static_cast<u32>(static_cast<i32>(a) /
                                   static_cast<i32>(b));
            }
            break;
          case 5: v = (b == 0) ? a : a / b; break;  // DIVU... see below
          case 6:  // REM
            if (b == 0) {
              v = a;
            } else if (a == 0x80000000u && b == 0xffffffffu) {
              v = 0;
            } else {
              v = static_cast<u32>(static_cast<i32>(a) %
                                   static_cast<i32>(b));
            }
            break;
          case 7: v = (b == 0) ? a : a % b; break;  // REMU
          default:
            result.trap = TrapKind::kIllegalInstruction;
            return result;
        }
        // DIVU by zero must yield all-ones, not rs1.
        if (funct3 == 5 && b == 0) v = 0xffffffffu;
        result.cycles = (funct3 >= 4) ? 8 : 3;  // div slower than mul
      } else if (funct7 == 0x00 || funct7 == 0x20) {
        switch (funct3) {
          case 0: v = (funct7 == 0x20) ? a - b : a + b; break;
          case 1: v = a << (b & 0x1f); break;                       // SLL
          case 2: v = static_cast<i32>(a) < static_cast<i32>(b); break;
          case 3: v = a < b; break;                                 // SLTU
          case 4: v = a ^ b; break;
          case 5:                                                   // SRL/SRA
            v = (funct7 == 0x20)
                    ? static_cast<u32>(static_cast<i32>(a) >> (b & 0x1f))
                    : a >> (b & 0x1f);
            break;
          case 6: v = a | b; break;
          case 7: v = a & b; break;
          default:
            result.trap = TrapKind::kIllegalInstruction;
            return result;
        }
        if ((funct7 == 0x20) && funct3 != 0 && funct3 != 5) {
          result.trap = TrapKind::kIllegalInstruction;
          return result;
        }
      } else {
        result.trap = TrapKind::kIllegalInstruction;
        return result;
      }
      set_reg(rd, v);
      break;
    }
    case kOpFence:
      break;  // single hart: FENCE/FENCE.I are no-ops
    case kOpSystem:
      if (ins == 0x00000073) {
        result.trap = TrapKind::kEcall;
      } else if (ins == 0x00100073) {
        result.trap = TrapKind::kEbreak;
      } else {
        result.trap = TrapKind::kIllegalInstruction;
        return result;
      }
      break;
    default:
      result.trap = TrapKind::kIllegalInstruction;
      return result;
  }

  pc_ = next_pc;
  ++retired_;
  return result;
}

}  // namespace vhp::iss
