#include "vhp/iss/assemble.hpp"

namespace vhp::iss {

std::vector<u32> Asm::build() const {
  // Element-wise copy: GCC 12's -O2 stringop-overflow checker reports a
  // false positive on the vector copy constructor when this is inlined
  // into callers with constant-looking sizes.
  std::vector<u32> out;
  out.reserve(words_.size());
  for (const u32 w : words_) out.push_back(w);
  for (const Fixup& fix : fixups_) {
    assert(labels_[fix.label] != kUnbound && "jump to unbound label");
    const i32 offset = static_cast<i32>(labels_[fix.label]) -
                       static_cast<i32>(fix.word_index * 4);
    u32& word = out[fix.word_index];
    switch (fix.kind) {
      case FixKind::kBranch: {
        // Re-encode keeping opcode/registers/funct3 from the scaffold.
        const u32 rs2 = (word >> 20) & 0x1f;
        const u32 rs1 = (word >> 15) & 0x1f;
        const u32 funct3 = (word >> 12) & 0x7;
        word = enc::b_type(offset, rs2, rs1, funct3, 0x63);
        break;
      }
      case FixKind::kJal: {
        const u32 rd = (word >> 7) & 0x1f;
        word = enc::j_type(offset, rd, 0x6f);
        break;
      }
    }
  }
  return out;
}

u32 Asm::load_into(sim::Memory& mem, u32 base) const {
  const std::vector<u32> program = build();
  for (std::size_t i = 0; i < program.size(); ++i) {
    mem.write_u32(base + static_cast<u32>(i * 4), program[i]);
  }
  return base + static_cast<u32>(program.size() * 4);
}

}  // namespace vhp::iss
