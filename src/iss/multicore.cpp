#include "vhp/iss/multicore.hpp"

#include <cassert>

#include "vhp/common/format.hpp"

namespace vhp::iss {

MultiCoreBoard::MultiCoreBoard(board::Board& board, sim::Memory& ram,
                               MultiCoreBoardConfig config)
    : memory_(board.memory_system()) {
  assert(memory_ != nullptr &&
         "MultiCoreBoard needs a board with BoardConfig::memory set");
  assert(!config.entry_pcs.empty());
  assert(memory_->cores() >= config.entry_pcs.size() &&
         "more entry points than memory-system ports (rtos.cores)");
  runners_.reserve(config.entry_pcs.size());
  for (u32 c = 0; c < config.entry_pcs.size(); ++c) {
    IssRunnerConfig rc = config.runner;
    rc.entry_pc = config.entry_pcs[c];
    rc.stack_top = config.runner.stack_top - c * config.stack_stride;
    rc.thread_name = strformat("firmware/{}", c);
    runners_.push_back(std::make_unique<IssRunner>(board, ram, rc));
    runners_.back()->attach_memory(memory_->port(c));
  }
}

}  // namespace vhp::iss
