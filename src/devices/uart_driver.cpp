#include "vhp/devices/uart_driver.hpp"

namespace vhp::devices {

UartDriver::UartDriver(board::Board& board, UartDriverConfig config)
    : board_(board), config_(config), rx_avail_(board.kernel(), 0) {
  auto dsr = [this](u32) { rx_avail_.post(); };
  if (config_.irq_vector == board::Board::kDeviceVector) {
    board_.attach_device_dsr(dsr);
  } else {
    board_.attach_interrupt(config_.irq_vector, dsr);
  }
}

Result<u32> UartDriver::read_reg(u32 offset) {
  board_.kernel().consume(config_.reg_access_cost);
  auto raw = board_.dev_read(config_.base + offset, 4);
  if (!raw.ok()) return raw.status();
  u32 v = 0;
  if (!cosim::DriverCodec<u32>::decode(raw.value(), v)) {
    return Status{StatusCode::kInternal, "short UART register read"};
  }
  return v;
}

Status UartDriver::write_reg(u32 offset, u32 value) {
  board_.kernel().consume(config_.reg_access_cost);
  return board_.dev_write(config_.base + offset,
                          cosim::DriverCodec<u32>::encode(value));
}

Status UartDriver::write_text(std::string_view text) {
  for (const char c : text) {
    for (;;) {
      auto status = read_reg(UartModel::kStatus);
      if (!status.ok()) return status.status();
      if ((status.value() & UartModel::kStatusTxFull) == 0) break;
      board_.kernel().delay(SwTicks{config_.tx_poll_ticks});
    }
    Status s = write_reg(UartModel::kTxData, static_cast<u8>(c));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Result<u8> UartDriver::read_byte() {
  rx_avail_.wait();
  auto v = read_reg(UartModel::kRxData);
  if (!v.ok()) return v.status();
  return static_cast<u8>(v.value());
}

Result<std::string> UartDriver::read_line(std::size_t max_len) {
  std::string line;
  while (line.size() < max_len) {
    auto byte = read_byte();
    if (!byte.ok()) return byte.status();
    line.push_back(static_cast<char>(byte.value()));
    if (byte.value() == '\n') break;
  }
  return line;
}

Status UartDriver::set_divisor(u32 divisor) {
  return write_reg(UartModel::kDivisor, divisor);
}

}  // namespace vhp::devices
