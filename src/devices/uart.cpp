#include "vhp/devices/uart.hpp"

namespace vhp::devices {

UartModel::UartModel(cosim::CosimKernel& hw, std::string name, Config config)
    : Module(hw.kernel(), std::move(name)),
      period_(hw.config().clock_period),
      divisor_(config.default_divisor),
      fifo_depth_(config.fifo_depth),
      tx_(make_bool_signal("tx", true)),   // serial lines idle high
      rx_(make_bool_signal("rx", true)),
      irq_(make_bool_signal("irq", false)),
      tx_pending_(hw.kernel(), qualify("tx_pending")) {
  auto& reg = hw.registry();
  const u32 base = config.base;

  reg.register_write(base + kTxData, [this](std::span<const u8> data) {
    if (data.empty()) {
      return Status{StatusCode::kInvalidArgument, "empty TXDATA write"};
    }
    if (tx_fifo_.size() >= fifo_depth_) {
      ++stats_.tx_overflows;
      return Status::Ok();  // HW drops silently; SW must watch TX_FULL
    }
    tx_fifo_.push_back(data[0]);
    tx_pending_.notify_delta();
    return Status::Ok();
  });
  reg.register_read(base + kStatus, [this] {
    return cosim::DriverCodec<u32>::encode(status_word());
  });
  reg.register_read(base + kRxData, [this] {
    u8 byte = 0;
    if (!rx_fifo_.empty()) {
      byte = rx_fifo_.front();
      rx_fifo_.pop_front();
    }
    return cosim::DriverCodec<u32>::encode(byte);
  });
  reg.register_write(base + kDivisor, [this](std::span<const u8> data) {
    u32 v = 0;
    if (!cosim::DriverCodec<u32>::decode(data, v) || v == 0) {
      return Status{StatusCode::kInvalidArgument, "bad DIVISOR"};
    }
    divisor_ = v;
    return Status::Ok();
  });

  thread("tx", [this] { tx_loop(); });
  thread("rx", [this] { rx_loop(); });
}

u32 UartModel::status_word() const {
  u32 s = 0;
  if (tx_shifting_ || !tx_fifo_.empty()) s |= kStatusTxBusy;
  if (!rx_fifo_.empty()) s |= kStatusRxAvail;
  if (tx_fifo_.size() >= fifo_depth_) s |= kStatusTxFull;
  return s;
}

void UartModel::tx_loop() {
  for (;;) {
    while (tx_fifo_.empty()) sim::wait(tx_pending_);
    const u8 byte = tx_fifo_.front();
    tx_fifo_.pop_front();
    tx_shifting_ = true;
    const sim::SimTime bit = divisor_ * period_;
    tx_.write(false);  // start bit
    sim::wait(bit);
    for (int i = 0; i < 8; ++i) {
      tx_.write(((byte >> i) & 1) != 0);
      sim::wait(bit);
    }
    tx_.write(true);  // stop bit
    sim::wait(bit);
    tx_shifting_ = false;
    ++stats_.bytes_tx;
  }
}

void UartModel::rx_loop() {
  for (;;) {
    if (rx_.read()) sim::wait(rx_.negedge_event());
    const sim::SimTime bit = divisor_ * period_;
    // Half a bit in: the middle of the start bit.
    sim::wait(bit / 2);
    if (rx_.read()) {
      ++stats_.framing_errors;  // glitch, not a real start bit
      continue;
    }
    u8 byte = 0;
    for (int i = 0; i < 8; ++i) {
      sim::wait(bit);
      if (rx_.read()) byte |= static_cast<u8>(1u << i);
    }
    sim::wait(bit);  // middle of stop bit
    if (!rx_.read()) {
      ++stats_.framing_errors;
      continue;
    }
    if (rx_fifo_.size() >= fifo_depth_) {
      ++stats_.rx_overflows;
    } else {
      rx_fifo_.push_back(byte);
      ++stats_.bytes_rx;
      irq_.write(true);
      sim::wait(2 * period_);
      irq_.write(false);
    }
  }
}

SerialSniffer::SerialSniffer(sim::Kernel& kernel, std::string name,
                             sim::BoolSignal& line, u32 divisor,
                             sim::SimTime clock_period)
    : Module(kernel, std::move(name)), line_(line), divisor_(divisor),
      period_(clock_period) {
  thread("sniff", [this] { sniff_loop(); });
}

void SerialSniffer::sniff_loop() {
  const sim::SimTime bit = divisor_ * period_;
  for (;;) {
    if (line_.read()) sim::wait(line_.negedge_event());
    sim::wait(bit / 2);
    if (line_.read()) {
      ++framing_errors_;
      continue;
    }
    u8 byte = 0;
    for (int i = 0; i < 8; ++i) {
      sim::wait(bit);
      if (line_.read()) byte |= static_cast<u8>(1u << i);
    }
    sim::wait(bit);
    if (!line_.read()) {
      ++framing_errors_;
      continue;
    }
    received_.push_back(byte);
  }
}

SerialDriver::SerialDriver(sim::Kernel& kernel, std::string name,
                           sim::BoolSignal& line, u32 divisor,
                           sim::SimTime clock_period, u32 gap_bits)
    : Module(kernel, std::move(name)), line_(line), divisor_(divisor),
      period_(clock_period), gap_bits_(gap_bits),
      enqueued_(kernel, qualify("enqueued")) {
  thread("drive", [this] { drive_loop(); });
}

void SerialDriver::queue(std::span<const u8> bytes) {
  pending_.insert(pending_.end(), bytes.begin(), bytes.end());
  enqueued_.notify_delta();
}

void SerialDriver::queue_text(std::string_view text) {
  queue(std::span{reinterpret_cast<const u8*>(text.data()), text.size()});
}

void SerialDriver::drive_loop() {
  const sim::SimTime bit = divisor_ * period_;
  line_.write(true);  // idle
  sim::wait(2 * bit); // line settle
  for (;;) {
    while (pending_.empty()) sim::wait(enqueued_);
    const u8 byte = pending_.front();
    pending_.pop_front();
    shifting_ = true;
    line_.write(false);
    sim::wait(bit);
    for (int i = 0; i < 8; ++i) {
      line_.write(((byte >> i) & 1) != 0);
      sim::wait(bit);
    }
    line_.write(true);
    sim::wait(bit);
    // Idle bits between frames: keeps edges unambiguous and models the
    // sender's own pace (a human terminal is far slower than the line).
    sim::wait(std::max<u32>(gap_bits_, 1) * bit);
    shifting_ = false;
  }
}

}  // namespace vhp::devices
