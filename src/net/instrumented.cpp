#include "vhp/net/instrumented.hpp"

#include <utility>

namespace vhp::net {

namespace {

class InstrumentedChannel final : public Channel {
 public:
  InstrumentedChannel(ChannelPtr inner, obs::Hub& hub, const std::string& name)
      : inner_(std::move(inner)), tracer_(hub.tracer()),
        tx_frames_(hub.metrics().counter("net." + name + ".tx_frames")),
        tx_bytes_(hub.metrics().counter("net." + name + ".tx_bytes")),
        rx_frames_(hub.metrics().counter("net." + name + ".rx_frames")),
        rx_bytes_(hub.metrics().counter("net." + name + ".rx_bytes")),
        recv_ns_(hub.metrics().histogram("net." + name + ".recv_wait_ns")),
        trace_name_("net." + name) {}

  Status send(std::span<const u8> frame) override {
    Status s = inner_->send(frame);
    if (s.ok()) {
      tx_frames_.inc();
      tx_bytes_.inc(frame.size());
    }
    return s;
  }

  Result<Bytes> recv(std::optional<std::chrono::milliseconds> timeout) override {
    const u64 start = tracer_.enabled() ? tracer_.now_ns() : 0;
    auto frame = inner_->recv(timeout);
    if (frame.ok()) {
      rx_frames_.inc();
      rx_bytes_.inc(frame.value().size());
      if (tracer_.enabled()) {
        const u64 end = tracer_.now_ns();
        recv_ns_.record_ns(end - start);
        tracer_.complete(trace_name_ + ".recv", "net", start, end,
                         frame.value().size(), "bytes");
      }
    }
    return frame;
  }

  Result<std::optional<Bytes>> try_recv() override {
    auto frame = inner_->try_recv();
    if (frame.ok() && frame.value().has_value()) {
      rx_frames_.inc();
      rx_bytes_.inc(frame.value()->size());
    }
    return frame;
  }

  void close() override { inner_->close(); }

  Status flush() override { return inner_->flush(); }

  int readable_fd() override { return inner_->readable_fd(); }

 private:
  ChannelPtr inner_;
  obs::Tracer& tracer_;
  obs::Counter& tx_frames_;
  obs::Counter& tx_bytes_;
  obs::Counter& rx_frames_;
  obs::Counter& rx_bytes_;
  obs::LatencyHistogram& recv_ns_;
  std::string trace_name_;
};

// Appends every frame crossing the channel to the flight recorder's ring.
// tx is stamped after a successful send, rx after a successful (non-empty)
// receive, so the ring reflects frames that actually crossed the transport.
class RecordedChannel final : public Channel {
 public:
  RecordedChannel(ChannelPtr inner, obs::FlightRecorder& recorder,
                  obs::LinkPort port, u32 node)
      : inner_(std::move(inner)), recorder_(recorder), port_(port),
        node_(node) {}

  Status send(std::span<const u8> frame) override {
    Status s = inner_->send(frame);
    if (s.ok()) recorder_.record(port_, obs::LinkDir::kTx, frame, node_);
    return s;
  }

  Result<Bytes> recv(std::optional<std::chrono::milliseconds> timeout) override {
    auto frame = inner_->recv(timeout);
    if (frame.ok()) {
      recorder_.record(port_, obs::LinkDir::kRx, frame.value(), node_);
    }
    return frame;
  }

  Result<std::optional<Bytes>> try_recv() override {
    auto frame = inner_->try_recv();
    if (frame.ok() && frame.value().has_value()) {
      recorder_.record(port_, obs::LinkDir::kRx, *frame.value(), node_);
    }
    return frame;
  }

  void close() override { inner_->close(); }

  Status flush() override { return inner_->flush(); }

  int readable_fd() override { return inner_->readable_fd(); }

 private:
  ChannelPtr inner_;
  obs::FlightRecorder& recorder_;
  obs::LinkPort port_;
  u32 node_;
};

}  // namespace

ChannelPtr instrument_channel(ChannelPtr inner, obs::Hub& hub,
                              const std::string& name) {
  return std::make_unique<InstrumentedChannel>(std::move(inner), hub, name);
}

CosimLink instrument_link(CosimLink link, obs::Hub& hub,
                          const std::string& side) {
  link.data = instrument_channel(std::move(link.data), hub, side + ".data");
  link.intr = instrument_channel(std::move(link.intr), hub, side + ".int");
  link.clock = instrument_channel(std::move(link.clock), hub, side + ".clock");
  return link;
}

ChannelPtr record_channel(ChannelPtr inner, obs::FlightRecorder& recorder,
                          obs::LinkPort port, u32 node) {
  if (!recorder.enabled()) return inner;  // disabled: no decorator hop
  return std::make_unique<RecordedChannel>(std::move(inner), recorder, port,
                                           node);
}

CosimLink record_link(CosimLink link, obs::FlightRecorder& recorder,
                      u32 node) {
  link.data = record_channel(std::move(link.data), recorder,
                             obs::LinkPort::kData, node);
  link.intr = record_channel(std::move(link.intr), recorder,
                             obs::LinkPort::kInt, node);
  link.clock = record_channel(std::move(link.clock), recorder,
                              obs::LinkPort::kClock, node);
  return link;
}

}  // namespace vhp::net
