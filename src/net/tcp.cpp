#include "vhp/common/format.hpp"

#include "vhp/net/tcp.hpp"

#include <arpa/inet.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <system_error>

#include "vhp/common/log.hpp"

namespace vhp::net {
namespace {

const Logger kLog{"net"};

Status errno_status(StatusCode code, const char* what) {
  return Status{code, vhp::strformat("{}: {}", what, std::strerror(errno))};
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// A connected TCP stream carrying u32-length-prefixed frames.
/// One sender thread + one receiver thread supported concurrently (the send
/// path has its own mutex; the receive path is single-consumer).
class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) { set_nodelay(fd_); }

  ~TcpChannel() override {
    close();
    // The fd is released only here, after every user of this channel is
    // done: close() must not invalidate the fd while a receiver thread may
    // be entering poll() on it (a closed-and-reused fd, or poll on -1 with
    // an infinite timeout, would hang or corrupt another connection).
    if (fd_ >= 0) ::close(fd_);
  }

  Status send(std::span<const u8> frame) override {
    Bytes wire;
    wire.reserve(frame.size() + 4);
    ByteWriter w{wire};
    w.u32v(static_cast<u32>(frame.size()));
    w.bytes(frame);
    std::scoped_lock lock(send_mu_);
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          return Status{StatusCode::kConnectionReset,
                        "connection reset by peer"};
        }
        if (errno == EPIPE) {
          return Status{StatusCode::kAborted, "peer closed"};
        }
        return errno_status(StatusCode::kUnavailable, "send");
      }
      off += static_cast<std::size_t>(n);
    }
    return Status::Ok();
  }

  // One writev per IOV_MAX/2 frames instead of one send() syscall per
  // frame: each frame contributes two iovecs (its u32 length prefix and
  // its payload), so the byte stream is identical to N send() calls and
  // the receive path needs no changes.
  Status send_many(std::span<const Bytes> frames) override {
    if (frames.empty()) return Status::Ok();
    // Prefixes must outlive the writev; one stable buffer for all of them.
    std::vector<u32> prefixes(frames.size());
    std::vector<iovec> iov;
    iov.reserve(frames.size() * 2);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      u8* p = reinterpret_cast<u8*>(&prefixes[i]);
      const u32 len = static_cast<u32>(frames[i].size());
      p[0] = static_cast<u8>(len);
      p[1] = static_cast<u8>(len >> 8);
      p[2] = static_cast<u8>(len >> 16);
      p[3] = static_cast<u8>(len >> 24);
      iov.push_back(iovec{p, 4});
      if (!frames[i].empty()) {
        iov.push_back(
            iovec{const_cast<u8*>(frames[i].data()), frames[i].size()});
      }
    }
    std::scoped_lock lock(send_mu_);
    std::size_t start = 0;
    while (start < iov.size()) {
      const std::size_t count = std::min<std::size_t>(
          iov.size() - start, static_cast<std::size_t>(IOV_MAX));
      msghdr msg{};
      msg.msg_iov = iov.data() + start;
      msg.msg_iovlen = count;
      const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          return Status{StatusCode::kConnectionReset,
                        "connection reset by peer"};
        }
        if (errno == EPIPE) {
          return Status{StatusCode::kAborted, "peer closed"};
        }
        return errno_status(StatusCode::kUnavailable, "sendmsg");
      }
      // Consume written bytes off the front of the iovec window (a short
      // write can stop mid-iovec).
      std::size_t written = static_cast<std::size_t>(n);
      while (written > 0 && start < iov.size()) {
        if (written >= iov[start].iov_len) {
          written -= iov[start].iov_len;
          ++start;
        } else {
          iov[start].iov_base =
              static_cast<u8*>(iov[start].iov_base) + written;
          iov[start].iov_len -= written;
          written = 0;
        }
      }
    }
    return Status::Ok();
  }

  int readable_fd() override { return fd_; }

  Result<Bytes> recv(std::optional<std::chrono::milliseconds> timeout) override {
    const auto deadline =
        timeout ? std::optional{std::chrono::steady_clock::now() + *timeout}
                : std::nullopt;
    for (;;) {
      if (auto frame = extract_frame()) return std::move(*frame);
      int wait_ms = -1;
      if (deadline) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            *deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
          return Status{StatusCode::kDeadlineExceeded, "recv timeout"};
        }
        wait_ms = static_cast<int>(left.count());
      }
      Status s = fill_rx(wait_ms);
      if (!s.ok()) {
        if (s.code() == StatusCode::kDeadlineExceeded && !deadline) continue;
        return s;
      }
    }
  }

  Result<std::optional<Bytes>> try_recv() override {
    if (auto frame = extract_frame()) return std::optional{std::move(*frame)};
    Status s = fill_rx(0);
    if (!s.ok() && s.code() != StatusCode::kDeadlineExceeded) return s;
    if (auto frame = extract_frame()) return std::optional{std::move(*frame)};
    return std::optional<Bytes>{};
  }

  void close() override {
    // Shutdown (not close): wakes any thread blocked in poll() with
    // POLLHUP/EOF on both this endpoint and the peer, while keeping the
    // fd number valid until destruction.
    if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  /// Pops one complete frame out of rx_, if available.
  std::optional<Bytes> extract_frame() {
    if (rx_.size() < 4) return std::nullopt;
    ByteReader r{rx_};
    const u32 len = r.u32v();
    if (rx_.size() < 4u + len) return std::nullopt;
    Bytes frame{rx_.begin() + 4, rx_.begin() + 4 + len};
    rx_.erase(rx_.begin(), rx_.begin() + 4 + len);
    return frame;
  }

  /// Waits up to wait_ms (-1 = forever, 0 = poll) for readability, then
  /// drains whatever is available into rx_. kDeadlineExceeded when nothing
  /// arrived in time.
  Status fill_rx(int wait_ms) {
    if (closed_.load(std::memory_order_relaxed)) {
      return Status{StatusCode::kAborted, "channel closed"};
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) return Status{StatusCode::kDeadlineExceeded, ""};
      return errno_status(StatusCode::kUnavailable, "poll");
    }
    if (rc == 0) return Status{StatusCode::kDeadlineExceeded, "no data"};
    u8 buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status{StatusCode::kDeadlineExceeded, ""};
      }
      if (errno == ECONNRESET) {
        // Typed so a recovery layer can tell an abortive reset (redialable)
        // from an orderly shutdown.
        return Status{StatusCode::kConnectionReset,
                      "connection reset by peer"};
      }
      return errno_status(StatusCode::kUnavailable, "recv");
    }
    if (n == 0) return Status{StatusCode::kAborted, "peer closed"};
    rx_.insert(rx_.end(), buf, buf + n);
    return Status::Ok();
  }

  int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  Bytes rx_;
};

int make_listener(u16* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::system_error(errno, std::generic_category(), "socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  // Full backlog: a session-density connection burst (hundreds of
  // near-simultaneous connects) must not see ECONNREFUSED because the
  // queue was one deep.
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    throw std::system_error(errno, std::generic_category(), "bind/listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port_out = ntohs(addr.sin_port);
  return fd;
}

/// accept(2) with signal/transient-error tolerance: retries EINTR (a
/// profiling signal mid-accept), EAGAIN (a connection that vanished
/// between poll and accept) and ECONNABORTED (peer reset while queued)
/// instead of failing the whole link setup.
int accept_retry(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{listen_fd, POLLIN, 0};
      (void)::poll(&pfd, 1, -1);
      continue;
    }
    return -1;
  }
}

}  // namespace

TcpLinkListener::TcpLinkListener() {
  for (int i = 0; i < 3; ++i) listen_fds_[static_cast<std::size_t>(i)] =
      make_listener(&ports_[static_cast<std::size_t>(i)]);
  kLog.debug("listening on DATA={} INT={} CLOCK={}", ports_[0], ports_[1],
             ports_[2]);
}

TcpLinkListener::~TcpLinkListener() {
  for (int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Result<CosimLink> TcpLinkListener::accept_link() {
  std::array<ChannelPtr, 3> chans;
  for (std::size_t i = 0; i < 3; ++i) {
    const int fd = accept_retry(listen_fds_[i]);
    if (fd < 0) return errno_status(StatusCode::kUnavailable, "accept");
    chans[i] = std::make_unique<TcpChannel>(fd);
  }
  return CosimLink{std::move(chans[0]), std::move(chans[1]),
                   std::move(chans[2])};
}

TcpListener::TcpListener() {
  listen_fd_ = make_listener(&port_);
  kLog.debug("listening on {}", port_);
}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Result<ChannelPtr> TcpListener::accept(
    std::optional<std::chrono::milliseconds> timeout) {
  const int wait_ms =
      timeout.has_value() ? static_cast<int>(timeout->count()) : -1;
  pollfd pfd{listen_fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, wait_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return errno_status(StatusCode::kUnavailable, "poll");
  if (rc == 0) {
    return Status{StatusCode::kDeadlineExceeded, "no connection"};
  }
  const int fd = accept_retry(listen_fd_);
  if (fd < 0) return errno_status(StatusCode::kUnavailable, "accept");
  return ChannelPtr{std::make_unique<TcpChannel>(fd)};
}

Result<ChannelPtr> connect_tcp_channel(u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kUnavailable, "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kUnavailable, "connect");
  }
  return ChannelPtr{std::make_unique<TcpChannel>(fd)};
}

Result<CosimLink> connect_tcp_link(std::array<u16, 3> ports) {
  std::array<ChannelPtr, 3> chans;
  for (std::size_t i = 0; i < 3; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return errno_status(StatusCode::kUnavailable, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(ports[i]);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return errno_status(StatusCode::kUnavailable, "connect");
    }
    chans[i] = std::make_unique<TcpChannel>(fd);
  }
  return CosimLink{std::move(chans[0]), std::move(chans[1]),
                   std::move(chans[2])};
}

}  // namespace vhp::net
