#include "vhp/net/channel.hpp"

namespace vhp::net {

Status send_msg(Channel& ch, const Message& msg) {
  return ch.send(encode(msg));
}

Result<Message> recv_msg(Channel& ch,
                         std::optional<std::chrono::milliseconds> timeout) {
  auto frame = ch.recv(timeout);
  if (!frame.ok()) return frame.status();
  return decode(frame.value());
}

Result<std::optional<Message>> try_recv_msg(Channel& ch) {
  auto frame = ch.try_recv();
  if (!frame.ok()) return frame.status();
  if (!frame.value().has_value()) return std::optional<Message>{};
  auto msg = decode(*frame.value());
  if (!msg.ok()) return msg.status();
  return std::optional<Message>{std::move(msg).value()};
}

}  // namespace vhp::net
