#include "vhp/net/shm_ring.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <new>

#include "vhp/common/log.hpp"

namespace vhp::net {
namespace {

const Logger kLog{"net.shm"};

constexpr std::size_t kCacheLine = 64;
constexpr std::size_t kMinCapacity = std::size_t{1} << 12;

/// Control block of one ring direction, placement-new'd into the shared
/// mapping. head/tail are monotonically increasing byte cursors (index =
/// cursor & (cap-1)); the flags implement wake-only-when-waiting
/// doorbells.
struct RingCtl {
  alignas(kCacheLine) std::atomic<u64> head{0};   // producer cursor
  alignas(kCacheLine) std::atomic<u64> tail{0};   // consumer cursor
  alignas(kCacheLine) std::atomic<u32> closed{0};
  std::atomic<u32> reader_armed{0};    // consumer wants publish doorbells
  std::atomic<u32> writer_waiting{0};  // producer blocked on a full ring
};

struct Doorbell {
  Doorbell() : fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}
  ~Doorbell() {
    if (fd >= 0) ::close(fd);
  }
  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  void ring() const {
    if (fd < 0) return;
    const u64 one = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof one);
  }
  void drain() const {
    if (fd < 0) return;
    u64 value = 0;
    [[maybe_unused]] ssize_t n = ::read(fd, &value, sizeof value);
  }
  /// Waits up to wait_ms (-1 = forever) for a ring. EINTR counts as a
  /// wakeup (callers loop and re-check state anyway).
  void wait(int wait_ms) const {
    if (fd < 0) return;
    pollfd pfd{fd, POLLIN, 0};
    (void)::poll(&pfd, 1, wait_ms);
  }

  int fd;
};

/// One direction: control block + data window inside the mapping, plus
/// its two doorbells (process-local fds; the mapping itself holds no
/// pointers or fds, so a cross-process variant only needs to pass the
/// eventfds over SCM_RIGHTS).
struct RingDir {
  RingCtl* ctl = nullptr;
  u8* data = nullptr;
  u64 cap = 0;
  Doorbell publish_bell;  // producer -> consumer: frames available
  Doorbell space_bell;    // consumer -> producer: space reclaimed
};

/// The shared mapping and both directions; kept alive by shared_ptr from
/// both endpoint channels.
struct ShmRegion {
  ~ShmRegion() {
    if (base != MAP_FAILED && base != nullptr) ::munmap(base, bytes);
  }
  void* base = nullptr;
  std::size_t bytes = 0;
  RingDir a2b;
  RingDir b2a;
};

std::size_t round_pow2(std::size_t v) {
  return std::bit_ceil(std::max(v, kMinCapacity));
}

std::shared_ptr<ShmRegion> make_region(std::size_t capacity_bytes) {
  const std::size_t cap = round_pow2(capacity_bytes);
  auto region = std::make_shared<ShmRegion>();
  const std::size_t ctl_bytes =
      (sizeof(RingCtl) + kCacheLine - 1) & ~(kCacheLine - 1);
  region->bytes = 2 * (ctl_bytes + cap);
  region->base = ::mmap(nullptr, region->bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (region->base == MAP_FAILED) {
    kLog.error("mmap({} bytes) failed: {}", region->bytes,
               std::strerror(errno));
    throw std::bad_alloc{};
  }
  u8* p = static_cast<u8*>(region->base);
  auto init_dir = [&](RingDir& dir) {
    dir.ctl = new (p) RingCtl{};
    dir.data = p + ctl_bytes;
    dir.cap = cap;
    p += ctl_bytes + cap;
  };
  init_dir(region->a2b);
  init_dir(region->b2a);
  return region;
}

/// Wrap-aware copy into the ring at byte cursor `at`.
void ring_write(RingDir& dir, u64 at, const u8* src, std::size_t n) {
  const u64 mask = dir.cap - 1;
  const u64 idx = at & mask;
  const std::size_t first = static_cast<std::size_t>(
      std::min<u64>(n, dir.cap - idx));
  std::memcpy(dir.data + idx, src, first);
  if (first < n) std::memcpy(dir.data, src + first, n - first);
}

/// Wrap-aware copy out of the ring at byte cursor `at`.
void ring_read(const RingDir& dir, u64 at, u8* dst, std::size_t n) {
  const u64 mask = dir.cap - 1;
  const u64 idx = at & mask;
  const std::size_t first = static_cast<std::size_t>(
      std::min<u64>(n, dir.cap - idx));
  std::memcpy(dst, dir.data + idx, first);
  if (first < n) std::memcpy(dst + first, dir.data, n - first);
}

/// One endpoint: produces into tx_, consumes from rx_. SPSC per
/// direction, matching the Channel thread-safety contract (one sender
/// thread + one receiver thread).
class ShmRingChannel final : public Channel {
 public:
  ShmRingChannel(std::shared_ptr<ShmRegion> region, RingDir* tx, RingDir* rx)
      : region_(std::move(region)), tx_(tx), rx_(rx) {}

  ~ShmRingChannel() override { close(); }

  Status send(std::span<const u8> frame) override {
    Status s = stage(frame);
    if (!s.ok()) return s;
    publish();
    return Status::Ok();
  }

  // The whole batch becomes memcpys plus ONE publishing store and at most
  // one doorbell write — this is what makes BatchingChannel-over-shm
  // nearly syscall-free.
  Status send_many(std::span<const Bytes> frames) override {
    for (const auto& f : frames) {
      Status s = stage(f);
      if (!s.ok()) return s;
    }
    if (!frames.empty()) publish();
    return Status::Ok();
  }

  Result<Bytes> recv(
      std::optional<std::chrono::milliseconds> timeout) override {
    const auto deadline =
        timeout ? std::optional{std::chrono::steady_clock::now() + *timeout}
                : std::nullopt;
    for (;;) {
      auto frame = pop();
      if (!frame.ok()) return frame.status();
      if (frame.value().has_value()) return std::move(*frame.value());
      // Arm, then re-check before sleeping: a producer publishing after
      // the arm is guaranteed to see it and ring the bell.
      rx_->ctl->reader_armed.store(1, std::memory_order_seq_cst);
      frame = pop();
      if (!frame.ok() || frame.value().has_value()) {
        disarm();
        if (!frame.ok()) return frame.status();
        return std::move(*frame.value());
      }
      int wait_ms = -1;
      if (deadline) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
          disarm();
          return Status{StatusCode::kDeadlineExceeded, "recv timeout"};
        }
        wait_ms = static_cast<int>(left.count());
      }
      rx_->publish_bell.wait(wait_ms);
      disarm();
    }
  }

  Result<std::optional<Bytes>> try_recv() override { return pop(); }

  void close() override {
    tx_->ctl->closed.store(1, std::memory_order_seq_cst);
    rx_->ctl->closed.store(1, std::memory_order_seq_cst);
    // Wake everyone: our peer's consumer, our own blocked recv, and any
    // producer stuck on a full ring.
    tx_->publish_bell.ring();
    rx_->publish_bell.ring();
    tx_->space_bell.ring();
    rx_->space_bell.ring();
  }

  int readable_fd() override {
    // Permanently arm the doorbell for event-loop (epoll) use; ring it if
    // frames were published before arming so a level-triggered poller
    // doesn't sleep over them.
    persist_armed_.store(true, std::memory_order_relaxed);
    rx_->ctl->reader_armed.store(1, std::memory_order_seq_cst);
    if (rx_->ctl->head.load(std::memory_order_seq_cst) !=
            rx_->ctl->tail.load(std::memory_order_relaxed) ||
        rx_->ctl->closed.load(std::memory_order_relaxed) != 0) {
      rx_->publish_bell.ring();
    }
    return rx_->publish_bell.fd;
  }

 private:
  /// Copies one frame (length prefix + payload) into tx_, blocking while
  /// the ring is full. Does NOT publish — callers batch the head store.
  Status stage(std::span<const u8> frame) {
    const u64 need = 4 + static_cast<u64>(frame.size());
    if (need > tx_->cap) {
      return Status{StatusCode::kInvalidArgument,
                    "frame larger than shm ring capacity"};
    }
    RingCtl& ctl = *tx_->ctl;
    for (;;) {
      if (ctl.closed.load(std::memory_order_relaxed) != 0) {
        return Status{StatusCode::kAborted, "channel closed"};
      }
      u64 free = tx_->cap - (staged_head_ - cached_tail_);
      if (free < need) {
        cached_tail_ = ctl.tail.load(std::memory_order_acquire);
        free = tx_->cap - (staged_head_ - cached_tail_);
      }
      if (free >= need) break;
      // Ring full: publish whatever we staged (the consumer cannot drain
      // unpublished bytes), flag ourselves waiting, re-check, then sleep.
      publish();
      ctl.writer_waiting.store(1, std::memory_order_seq_cst);
      cached_tail_ = ctl.tail.load(std::memory_order_seq_cst);
      free = tx_->cap - (staged_head_ - cached_tail_);
      if (free >= need ||
          ctl.closed.load(std::memory_order_relaxed) != 0) {
        ctl.writer_waiting.store(0, std::memory_order_relaxed);
        continue;
      }
      tx_->space_bell.wait(100);
      tx_->space_bell.drain();
      ctl.writer_waiting.store(0, std::memory_order_relaxed);
    }
    u8 prefix[4];
    const u32 len = static_cast<u32>(frame.size());
    prefix[0] = static_cast<u8>(len);
    prefix[1] = static_cast<u8>(len >> 8);
    prefix[2] = static_cast<u8>(len >> 16);
    prefix[3] = static_cast<u8>(len >> 24);
    ring_write(*tx_, staged_head_, prefix, 4);
    if (!frame.empty()) {
      ring_write(*tx_, staged_head_ + 4, frame.data(), frame.size());
    }
    staged_head_ += need;
    return Status::Ok();
  }

  /// Makes staged frames visible to the consumer and rings its doorbell
  /// if it is (or may be) waiting.
  void publish() {
    RingCtl& ctl = *tx_->ctl;
    if (staged_head_ == ctl.head.load(std::memory_order_relaxed)) return;
    ctl.head.store(staged_head_, std::memory_order_seq_cst);
    if (ctl.reader_armed.load(std::memory_order_seq_cst) != 0) {
      tx_->publish_bell.ring();
    }
  }

  /// Non-blocking pop of one frame. Drain-then-recheck ordering makes
  /// "bell readable" a reliable level signal: a publish either lands
  /// before our head re-load (frame seen) or after (rings the drained
  /// bell).
  Result<std::optional<Bytes>> pop() {
    RingCtl& ctl = *rx_->ctl;
    const u64 tail = ctl.tail.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = ctl.head.load(std::memory_order_acquire);
      if (cached_head_ == tail) {
        if (ctl.closed.load(std::memory_order_relaxed) != 0) {
          return Status{StatusCode::kAborted, "channel closed"};
        }
        rx_->publish_bell.drain();
        cached_head_ = ctl.head.load(std::memory_order_seq_cst);
        if (cached_head_ == tail) {
          if (ctl.closed.load(std::memory_order_seq_cst) != 0) {
            return Status{StatusCode::kAborted, "channel closed"};
          }
          return std::optional<Bytes>{};
        }
      }
    }
    u8 prefix[4];
    ring_read(*rx_, tail, prefix, 4);
    const u32 len = static_cast<u32>(prefix[0]) |
                    (static_cast<u32>(prefix[1]) << 8) |
                    (static_cast<u32>(prefix[2]) << 16) |
                    (static_cast<u32>(prefix[3]) << 24);
    Bytes frame(len);
    if (len > 0) ring_read(*rx_, tail + 4, frame.data(), len);
    ctl.tail.store(tail + 4 + len, std::memory_order_seq_cst);
    if (ctl.writer_waiting.load(std::memory_order_seq_cst) != 0) {
      rx_->space_bell.ring();
    }
    return std::optional<Bytes>{std::move(frame)};
  }

  void disarm() {
    if (!persist_armed_.load(std::memory_order_relaxed)) {
      rx_->ctl->reader_armed.store(0, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<ShmRegion> region_;
  RingDir* tx_;
  RingDir* rx_;
  // Producer-thread state: staged (not yet published) head and the cached
  // consumer cursor.
  u64 staged_head_ = 0;
  u64 cached_tail_ = 0;
  // Consumer-thread state: cached producer cursor.
  u64 cached_head_ = 0;
  std::atomic<bool> persist_armed_{false};
};

}  // namespace

std::pair<ChannelPtr, ChannelPtr> make_shm_channel_pair(
    std::size_t capacity_bytes) {
  auto region = make_region(capacity_bytes);
  RingDir* a2b = &region->a2b;
  RingDir* b2a = &region->b2a;
  return {std::make_unique<ShmRingChannel>(region, a2b, b2a),
          std::make_unique<ShmRingChannel>(region, b2a, a2b)};
}

LinkPair make_shm_link_pair(std::size_t capacity_bytes) {
  auto [data_a, data_b] = make_shm_channel_pair(capacity_bytes);
  auto [int_a, int_b] = make_shm_channel_pair(capacity_bytes);
  auto [clk_a, clk_b] = make_shm_channel_pair(capacity_bytes);
  LinkPair pair;
  pair.hw = CosimLink{std::move(data_a), std::move(int_a), std::move(clk_a)};
  pair.board =
      CosimLink{std::move(data_b), std::move(int_b), std::move(clk_b)};
  return pair;
}

std::vector<LinkPair> make_shm_link_fanout(std::size_t n,
                                           std::size_t capacity_bytes) {
  std::vector<LinkPair> links;
  links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(make_shm_link_pair(capacity_bytes));
  }
  return links;
}

}  // namespace vhp::net
