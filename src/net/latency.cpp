#include "vhp/net/latency.hpp"

#include <thread>

namespace vhp::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Frame layout on the wrapped channel: [u64 deadline_ns][payload...].
class LatencyChannel final : public Channel {
 public:
  LatencyChannel(ChannelPtr inner, LinkEmulationConfig config)
      : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

  Status send(std::span<const u8> frame) override {
    const auto now = Clock::now().time_since_epoch();
    auto delay = config_.latency;
    if (config_.jitter.count() > 0) {
      delay += std::chrono::microseconds{
          rng_.below(static_cast<u64>(config_.jitter.count()) + 1)};
    }
    const u64 deadline_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now + delay)
            .count());
    Bytes wire;
    wire.reserve(frame.size() + 8);
    ByteWriter w{wire};
    w.u64v(deadline_ns);
    w.bytes(frame);
    return inner_->send(wire);
  }

  Result<Bytes> recv(std::optional<std::chrono::milliseconds> timeout) override {
    auto frame = inner_->recv(timeout);
    if (!frame.ok()) return frame;
    return strip_and_wait(std::move(frame).value(), /*may_block=*/true);
  }

  Result<std::optional<Bytes>> try_recv() override {
    // Hold back frames whose delivery time has not come: peek by buffering.
    if (held_.has_value()) {
      if (Clock::now() < held_deadline_) return std::optional<Bytes>{};
      Bytes ready = std::move(*held_);
      held_.reset();
      return std::optional<Bytes>{std::move(ready)};
    }
    auto frame = inner_->try_recv();
    if (!frame.ok()) return frame.status();
    if (!frame.value().has_value()) return std::optional<Bytes>{};
    auto res = strip(*std::move(frame).value());
    if (!res.ok()) return res.status();
    auto [payload, deadline] = std::move(res).value();
    if (Clock::now() < deadline) {
      held_ = std::move(payload);
      held_deadline_ = deadline;
      return std::optional<Bytes>{};
    }
    return std::optional<Bytes>{std::move(payload)};
  }

  void close() override { inner_->close(); }

  Status flush() override { return inner_->flush(); }

  int readable_fd() override { return inner_->readable_fd(); }

 private:
  Result<std::pair<Bytes, Clock::time_point>> strip(Bytes wire) {
    ByteReader r{wire};
    const u64 deadline_ns = r.u64v();
    if (!r.ok()) {
      return Status{StatusCode::kInternal, "latency frame too short"};
    }
    const auto deadline =
        Clock::time_point{std::chrono::nanoseconds{deadline_ns}};
    Bytes payload{wire.begin() + 8, wire.end()};
    return std::pair{std::move(payload), deadline};
  }

  Result<Bytes> strip_and_wait(Bytes wire, bool may_block) {
    auto res = strip(std::move(wire));
    if (!res.ok()) return res.status();
    auto [payload, deadline] = std::move(res).value();
    if (may_block && Clock::now() < deadline) {
      std::this_thread::sleep_until(deadline);
    }
    return std::move(payload);
  }

  ChannelPtr inner_;
  LinkEmulationConfig config_;
  Rng rng_;
  // try_recv hold-back buffer (one frame is enough: FIFO ordering means
  // the head frame has the earliest deadline; empty payloads are legal,
  // hence optional).
  std::optional<Bytes> held_;
  Clock::time_point held_deadline_{};
};

}  // namespace

ChannelPtr emulate_latency(ChannelPtr inner, LinkEmulationConfig config) {
  if (!config.enabled()) return inner;
  return std::make_unique<LatencyChannel>(std::move(inner), config);
}

LinkPair emulate_latency(LinkPair pair, LinkEmulationConfig config) {
  if (!config.enabled()) return pair;
  auto wrap = [&config](CosimLink& link, u64 salt) {
    LinkEmulationConfig c = config;
    c.seed = config.seed ^ salt;
    link.data = emulate_latency(std::move(link.data), c);
    c.seed = config.seed ^ (salt + 1);
    link.intr = emulate_latency(std::move(link.intr), c);
    c.seed = config.seed ^ (salt + 2);
    link.clock = emulate_latency(std::move(link.clock), c);
  };
  wrap(pair.hw, 0x10);
  wrap(pair.board, 0x20);
  return pair;
}

}  // namespace vhp::net
