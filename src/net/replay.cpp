#include "vhp/net/replay.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <thread>

#include "vhp/common/checksum.hpp"
#include "vhp/common/format.hpp"

namespace vhp::net {

namespace {

using obs::FrameRecord;
using obs::LinkDir;
using obs::LinkPort;

std::string bytes_diff(std::string_view what, const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return strformat("{} size: {} vs {}", what, a.size(), b.size());
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return strformat("{}[{}]: {} vs {}", what, i,
                       static_cast<unsigned>(a[i]),
                       static_cast<unsigned>(b[i]));
    }
  }
  return {};
}

template <typename T>
std::string field_diff(std::string_view type, std::string_view field, T a,
                       T b) {
  if (a == b) return {};
  return strformat("{}.{}: {} vs {}", type, field, a, b);
}

}  // namespace

std::string message_field_diff(const FrameRecord& expected,
                               const FrameRecord& actual) {
  // A clipped payload cannot be decoded; let the byte-level report speak.
  if (expected.truncated || actual.truncated) return {};
  auto lhs = decode(expected.payload);
  auto rhs = decode(actual.payload);
  if (!lhs.ok() || !rhs.ok()) return {};
  const MsgType lt = type_of(lhs.value());
  const MsgType rt = type_of(rhs.value());
  if (lt != rt) {
    return strformat("type: {} vs {}", to_string(lt), to_string(rt));
  }
  const Message& a = lhs.value();
  const Message& b = rhs.value();
  switch (lt) {
    case MsgType::kDataWrite: {
      const auto& x = std::get<DataWrite>(a);
      const auto& y = std::get<DataWrite>(b);
      std::string d = field_diff("DataWrite", "address", x.address, y.address);
      return d.empty() ? bytes_diff("DataWrite.data", x.data, y.data) : d;
    }
    case MsgType::kDataReadReq: {
      const auto& x = std::get<DataReadReq>(a);
      const auto& y = std::get<DataReadReq>(b);
      std::string d =
          field_diff("DataReadReq", "address", x.address, y.address);
      return d.empty()
                 ? field_diff("DataReadReq", "nbytes", x.nbytes, y.nbytes)
                 : d;
    }
    case MsgType::kDataReadResp: {
      const auto& x = std::get<DataReadResp>(a);
      const auto& y = std::get<DataReadResp>(b);
      std::string d =
          field_diff("DataReadResp", "address", x.address, y.address);
      return d.empty() ? bytes_diff("DataReadResp.data", x.data, y.data) : d;
    }
    case MsgType::kIntRaise:
      return field_diff("IntRaise", "vector", std::get<IntRaise>(a).vector,
                        std::get<IntRaise>(b).vector);
    case MsgType::kClockTick: {
      const auto& x = std::get<ClockTick>(a);
      const auto& y = std::get<ClockTick>(b);
      std::string d =
          field_diff("ClockTick", "sim_cycle", x.sim_cycle, y.sim_cycle);
      if (d.empty()) {
        d = field_diff("ClockTick", "n_ticks", x.n_ticks, y.n_ticks);
      }
      if (d.empty() && x.round != y.round) {
        // Wire v3: an armed-timeline party against an unarmed recording
        // (or mismatched round ids) is a divergence like any other field.
        const auto show = [](const std::optional<u64>& v) {
          return v.has_value() ? strformat("{}", *v) : std::string("none");
        };
        d = strformat("ClockTick.round: {} vs {}", show(x.round),
                      show(y.round));
      }
      return d;
    }
    case MsgType::kTimeAck: {
      const auto& x = std::get<TimeAck>(a);
      const auto& y = std::get<TimeAck>(b);
      std::string d = field_diff("TimeAck", "board_tick", x.board_tick,
                                 y.board_tick);
      if (!d.empty()) return d;
      // Wire v2: one side advertising a lookahead and the other not (or
      // different values) is a divergence like any other field.
      if (x.lookahead != y.lookahead) {
        const auto show = [](const std::optional<u64>& v) {
          if (!v.has_value()) return std::string("none");
          if (*v == kLookaheadUnbounded) return std::string("unbounded");
          return strformat("{}", *v);
        };
        return strformat("TimeAck.lookahead: {} vs {}", show(x.lookahead),
                         show(y.lookahead));
      }
      if (x.round != y.round) {
        const auto show = [](const std::optional<u64>& v) {
          return v.has_value() ? strformat("{}", *v) : std::string("none");
        };
        return strformat("TimeAck.round: {} vs {}", show(x.round),
                         show(y.round));
      }
      return {};
    }
    case MsgType::kShutdown:
      return {};
  }
  return {};
}

std::string grant_stats_text(const obs::Recording& recording) {
  struct NodeStats {
    u64 grants = 0;
    u64 min = ~u64{0};
    u64 max = 0;
    u64 total = 0;
    u64 acks = 0;
    u64 with_lookahead = 0;
    u64 unbounded = 0;
  };
  std::map<u32, NodeStats> nodes;
  for (const FrameRecord& f : recording.frames) {
    if (f.port != LinkPort::kClock || f.truncated) continue;
    auto msg = decode(f.payload);
    if (!msg.ok()) continue;
    if (const auto* tick = std::get_if<ClockTick>(&msg.value())) {
      NodeStats& n = nodes[f.node];
      ++n.grants;
      n.total += tick->n_ticks;
      n.min = std::min<u64>(n.min, tick->n_ticks);
      n.max = std::max<u64>(n.max, tick->n_ticks);
    } else if (const auto* ack = std::get_if<TimeAck>(&msg.value())) {
      NodeStats& n = nodes[f.node];
      ++n.acks;
      if (ack->lookahead.has_value()) {
        ++n.with_lookahead;
        if (*ack->lookahead == kLookaheadUnbounded) ++n.unbounded;
      }
    }
  }
  if (nodes.empty()) return {};
  std::string out = "sync grants (CLOCK traffic):\n";
  for (const auto& [node, n] : nodes) {
    out += strformat("  node {}: {} grants", node, n.grants);
    if (n.grants > 0) {
      out += strformat(", cycles min/mean/max {}/{}/{}", n.min,
                       n.total / n.grants, n.max);
    }
    out += strformat("; {} acks, {} with lookahead", n.acks, n.with_lookahead);
    if (n.unbounded > 0) out += strformat(" ({} unbounded)", n.unbounded);
    out += "\n";
  }
  return out;
}

std::vector<obs::SpanRecord> timeline_from_recordings(
    const obs::Recording& hw, const std::vector<obs::Recording>& boards) {
  std::vector<obs::SpanRecord> spans;

  // Rounds keyed by the grant's master sim-cycle: one barrier ticks every
  // due node at one cycle, so the key groups a round's scatter even on
  // v1/v2 recordings that carry no wire round id.
  struct Round {
    u64 id = 0;
    u64 first_tx = ~u64{0};
    u64 last_tx = 0;
    u64 last_rx = 0;
  };
  std::map<u64, Round> rounds;
  u64 next_round = 0;

  struct PendingTick {
    u64 cycle = 0;
    u64 wall_ns = 0;
    u64 round = 0;
  };
  std::map<u32, std::deque<PendingTick>> pending;  // per node, FIFO

  std::vector<const FrameRecord*> clock_frames;
  for (const FrameRecord& f : hw.frames) {
    if (f.port == LinkPort::kClock && !f.truncated &&
        (f.flags & obs::kFrameFlagInjected) == 0) {
      clock_frames.push_back(&f);
    }
  }
  std::sort(clock_frames.begin(), clock_frames.end(),
            [](const FrameRecord* a, const FrameRecord* b) {
              return a->seq < b->seq;
            });

  for (const FrameRecord* f : clock_frames) {
    auto msg = decode(f->payload);
    if (!msg.ok()) continue;
    if (const auto* tick = std::get_if<ClockTick>(&msg.value())) {
      if (f->dir != LinkDir::kTx) continue;
      auto [it, fresh] = rounds.try_emplace(tick->sim_cycle);
      Round& r = it->second;
      if (fresh) {
        r.id = tick->round.has_value() ? *tick->round : ++next_round;
        next_round = std::max(next_round, r.id);
      }
      r.first_tx = std::min(r.first_tx, f->wall_ns);
      r.last_tx = std::max(r.last_tx, f->wall_ns);
      pending[f->node].push_back({tick->sim_cycle, f->wall_ns, r.id});
    } else if (std::holds_alternative<TimeAck>(msg.value())) {
      if (f->dir != LinkDir::kRx) continue;
      auto& fifo = pending[f->node];
      // The boot-handshake ack precedes any tick; nothing to join it with.
      if (fifo.empty()) continue;
      const PendingTick p = fifo.front();
      fifo.pop_front();
      spans.push_back({p.round, f->node, obs::SpanPhase::kNodeWait, p.wall_ns,
                       f->wall_ns, p.cycle});
      rounds[p.cycle].last_rx = std::max(rounds[p.cycle].last_rx, f->wall_ns);
    }
  }

  for (const auto& [cycle, r] : rounds) {
    if (r.first_tx == ~u64{0}) continue;
    const u64 end = std::max(r.last_tx, r.last_rx);
    spans.push_back(
        {r.id, 0, obs::SpanPhase::kScatter, r.first_tx, r.last_tx, cycle});
    if (r.last_rx != 0) {
      spans.push_back(
          {r.id, 0, obs::SpanPhase::kGather, r.last_tx, r.last_rx, cycle});
    }
    spans.push_back(
        {r.id, 0, obs::SpanPhase::kBarrier, r.first_tx, end, cycle});
  }

  // Board sides: tick receive -> ack send is the compute phase; ack send ->
  // next tick receive is frozen. Board frames carry their fabric node id
  // (net::record_link stamps both sides), 0 on a two-party link.
  for (const obs::Recording& board : boards) {
    struct BoardState {
      std::optional<PendingTick> tick;  // rx tick awaiting its ack
      u64 prev_ack_ns = 0;              // last ack tx, opens the frozen span
      u64 prev_round = 0;
      // The boot-handshake ack opens a wall-clock gap to the first tick,
      // but it belongs to no round: emitting it would fabricate a phantom
      // round 0. Frozen spans start only after the first granted round.
      bool round_known = false;
    };
    std::map<u32, BoardState> per_node;
    std::vector<const FrameRecord*> frames;
    for (const FrameRecord& f : board.frames) {
      if (f.port == LinkPort::kClock && !f.truncated &&
          (f.flags & obs::kFrameFlagInjected) == 0) {
        frames.push_back(&f);
      }
    }
    std::sort(frames.begin(), frames.end(),
              [](const FrameRecord* a, const FrameRecord* b) {
                return a->seq < b->seq;
              });
    for (const FrameRecord* f : frames) {
      auto msg = decode(f->payload);
      if (!msg.ok()) continue;
      if (const auto* tick = std::get_if<ClockTick>(&msg.value())) {
        if (f->dir != LinkDir::kRx) continue;
        BoardState& st = per_node[f->node];
        u64 round = 0;
        if (tick->round.has_value()) {
          round = *tick->round;
        } else if (auto it = rounds.find(tick->sim_cycle);
                   it != rounds.end()) {
          round = it->second.id;
        }
        if (st.prev_ack_ns != 0 && st.round_known) {
          spans.push_back({st.prev_round, f->node, obs::SpanPhase::kFrozen,
                           st.prev_ack_ns, f->wall_ns, tick->sim_cycle});
        }
        st.tick = PendingTick{tick->sim_cycle, f->wall_ns, round};
      } else if (std::holds_alternative<TimeAck>(msg.value())) {
        if (f->dir != LinkDir::kTx) continue;
        BoardState& st = per_node[f->node];
        if (st.tick.has_value()) {
          spans.push_back({st.tick->round, f->node, obs::SpanPhase::kCompute,
                           st.tick->wall_ns, f->wall_ns, st.tick->cycle});
          st.prev_round = st.tick->round;
          st.round_known = true;
          st.tick.reset();
        }
        st.prev_ack_ns = f->wall_ns;
      }
    }
  }

  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

// ---------------------------------------------------------------------------

struct ReplaySession::State {
  mutable std::mutex mu;
  std::vector<FrameRecord> records;  // global sequence order
  std::vector<bool> consumed;
  // First index holding an unconsumed tx record: every rx record below it
  // has its causality gate satisfied.
  std::size_t barrier = 0;
  // Per-(port,dir) scan hints so the FIFO lookups stay O(1) amortized.
  std::size_t hint[3][2] = {};
  obs::FrameDiffFn diff = nullptr;
  std::function<u64()> time_source;
  bool gate_on_board_tick = false;  // recording side picks the stamp field
  std::optional<obs::Divergence> divergence;
  u64 n_consumed = 0;
  bool closed = false;

  void advance_barrier() {
    while (barrier < records.size() &&
           (records[barrier].dir == LinkDir::kRx || consumed[barrier])) {
      ++barrier;
    }
  }

  /// First unconsumed record on (port, dir), or records.size().
  std::size_t next_index(LinkPort port, LinkDir dir) {
    std::size_t& h = hint[static_cast<std::size_t>(port)]
                         [static_cast<std::size_t>(dir)];
    while (h < records.size() &&
           (consumed[h] || records[h].port != port || records[h].dir != dir)) {
      ++h;
    }
    return h;
  }

  void consume(std::size_t index) {
    consumed[index] = true;
    ++n_consumed;
    advance_barrier();
  }

  Status diverged_status() const {
    return Status{StatusCode::kFailedPrecondition,
                  "replay diverged: " + divergence->to_string()};
  }

  // Called with mu held. Compares the live side's send against the recorded
  // tx stream; latches the first mismatch.
  Status check_tx(LinkPort port, std::span<const u8> frame) {
    if (divergence.has_value()) return diverged_status();
    const std::size_t index = next_index(port, LinkDir::kTx);
    if (index >= records.size()) {
      divergence = obs::Divergence{
          .seq = records.empty() ? 0 : records.back().seq,
          .port = port,
          .dir = LinkDir::kTx,
          .reason = strformat("live side sent an extra frame on {} tx "
                              "beyond the recording",
                              obs::to_string(port))};
      return diverged_status();
    }
    const FrameRecord& expected = records[index];
    FrameRecord live;
    live.port = port;
    live.dir = LinkDir::kTx;
    live.msg_type = frame.empty() ? 0 : frame[0];
    live.payload_size = static_cast<u32>(frame.size());
    live.digest = crc32(frame);
    live.payload.assign(frame.begin(), frame.end());
    if (expected.truncated && live.payload.size() > expected.payload.size()) {
      live.payload.resize(expected.payload.size());
      live.truncated = true;
    }
    std::string reason = obs::compare_frames(expected, live, diff);
    if (!reason.empty()) {
      divergence = obs::Divergence{.seq = expected.seq,
                                   .port = port,
                                   .dir = LinkDir::kTx,
                                   .hw_cycle = expected.hw_cycle,
                                   .board_tick = expected.board_tick,
                                   .reason = std::move(reason)};
      return diverged_status();
    }
    consume(index);
    return Status::Ok();
  }

  enum class Rx { kDelivered, kPending, kExhausted, kDiverged, kClosed };

  // Called with mu held. Tries to deliver the next recorded rx frame for
  // `port`, honoring the causality and virtual-time gates.
  Rx try_deliver(LinkPort port, Bytes& out) {
    if (divergence.has_value()) return Rx::kDiverged;
    if (closed) return Rx::kClosed;
    const std::size_t index = next_index(port, LinkDir::kRx);
    if (index >= records.size()) return Rx::kExhausted;
    if (index > barrier) return Rx::kPending;  // earlier tx not re-sent yet
    const FrameRecord& record = records[index];
    if (time_source) {
      const u64 stamp = gate_on_board_tick ? record.board_tick
                                           : record.hw_cycle;
      if (time_source() < stamp) return Rx::kPending;
    }
    out = record.payload;
    consume(index);
    return Rx::kDelivered;
  }
};

namespace {

class ReplayChannel final : public Channel {
 public:
  ReplayChannel(std::shared_ptr<ReplaySession::State> state, LinkPort port)
      : state_(std::move(state)), port_(port) {}

  Status send(std::span<const u8> frame) override {
    std::scoped_lock lock(state_->mu);
    return state_->check_tx(port_, frame);
  }

  Result<Bytes> recv(
      std::optional<std::chrono::milliseconds> timeout) override {
    const auto deadline = timeout.has_value()
                              ? std::chrono::steady_clock::now() + *timeout
                              : std::chrono::steady_clock::time_point::max();
    for (;;) {
      Bytes out;
      ReplaySession::State::Rx rx;
      {
        std::scoped_lock lock(state_->mu);
        rx = state_->try_deliver(port_, out);
        if (rx == ReplaySession::State::Rx::kDiverged) {
          return state_->diverged_status();
        }
      }
      switch (rx) {
        case ReplaySession::State::Rx::kDelivered:
          return out;
        case ReplaySession::State::Rx::kExhausted:
        case ReplaySession::State::Rx::kClosed:
          return Status{StatusCode::kAborted,
                        strformat("replay: no further {} rx frames recorded",
                                  obs::to_string(port_))};
        default:
          break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status{StatusCode::kDeadlineExceeded, "replay recv timeout"};
      }
      // The gates open as the live side makes progress on its own thread;
      // a short poll keeps the lone-side loop faithful without a real peer.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  Result<std::optional<Bytes>> try_recv() override {
    std::scoped_lock lock(state_->mu);
    Bytes out;
    switch (state_->try_deliver(port_, out)) {
      case ReplaySession::State::Rx::kDelivered:
        return std::optional<Bytes>{std::move(out)};
      case ReplaySession::State::Rx::kDiverged:
        return state_->diverged_status();
      case ReplaySession::State::Rx::kClosed:
        return Status{StatusCode::kAborted, "replay link closed"};
      default:
        return std::optional<Bytes>{};  // nothing deliverable yet
    }
  }

  void close() override {
    std::scoped_lock lock(state_->mu);
    state_->closed = true;
  }

 private:
  std::shared_ptr<ReplaySession::State> state_;
  LinkPort port_;
};

}  // namespace

ReplaySession::ReplaySession() : state_(std::make_shared<State>()) {}
ReplaySession::~ReplaySession() = default;

Result<std::unique_ptr<ReplaySession>> ReplaySession::open(
    obs::Recording recording, ReplayOptions options) {
  // A fabric recording carries every node's link in one sequence; replay
  // impersonates one peer, so keep only the requested node's frames.
  std::erase_if(recording.frames, [&](const FrameRecord& r) {
    return r.node != options.node;
  });
  if (options.node != 0 && recording.frames.empty()) {
    return Status{StatusCode::kNotFound,
                  strformat("recording holds no frames for node {}",
                            options.node)};
  }
  for (const FrameRecord& r : recording.frames) {
    if (r.dir == LinkDir::kRx && r.truncated) {
      return Status{
          StatusCode::kInvalidArgument,
          strformat("recording not replayable: rx frame seq {} on {} is "
                    "truncated ({} of {} bytes stored); re-record with a "
                    "larger max_payload_bytes",
                    r.seq, obs::to_string(r.port), r.payload.size(),
                    r.payload_size)};
    }
  }
  auto session = std::unique_ptr<ReplaySession>(new ReplaySession());
  State& state = *session->state_;
  state.records = std::move(recording.frames);
  std::sort(state.records.begin(), state.records.end(),
            [](const FrameRecord& a, const FrameRecord& b) {
              return a.seq < b.seq;
            });
  state.consumed.assign(state.records.size(), false);
  state.diff = options.diff;
  state.time_source = std::move(options.time_source);
  state.gate_on_board_tick = recording.meta.side == "board";
  state.advance_barrier();
  return session;
}

CosimLink ReplaySession::make_link() {
  CosimLink link;
  link.data = std::make_unique<ReplayChannel>(state_, LinkPort::kData);
  link.intr = std::make_unique<ReplayChannel>(state_, LinkPort::kInt);
  link.clock = std::make_unique<ReplayChannel>(state_, LinkPort::kClock);
  return link;
}

void ReplaySession::set_time_source(std::function<u64()> source) {
  std::scoped_lock lock(state_->mu);
  state_->time_source = std::move(source);
}

std::optional<obs::Divergence> ReplaySession::divergence() const {
  std::scoped_lock lock(state_->mu);
  return state_->divergence;
}

u64 ReplaySession::consumed() const {
  std::scoped_lock lock(state_->mu);
  return state_->n_consumed;
}

u64 ReplaySession::total() const {
  std::scoped_lock lock(state_->mu);
  return state_->records.size();
}

bool ReplaySession::complete() const {
  std::scoped_lock lock(state_->mu);
  return state_->n_consumed == state_->records.size();
}

}  // namespace vhp::net
