#include "vhp/net/inproc.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

namespace vhp::net {
namespace {

/// One direction of the in-process pipe: a bounded deque of frames.
///
/// Doorbell: an event loop that wants fd-readiness instead of condvar
/// blocking calls readable_fd(), which lazily creates an eventfd. From
/// then on every push rings it (push is already a lock + notify; one more
/// write(2) only happens in event-loop mode). The bell is drained under
/// the queue mutex whenever the queue is observed empty, so "bell
/// readable" is level-equivalent to "a frame may be pending" with no
/// missed-wakeup window: a push either happens before the empty check
/// (the frame is seen) or after (it re-rings the drained bell).
class FrameQueue {
 public:
  explicit FrameQueue(std::size_t capacity) : capacity_(capacity) {}

  ~FrameQueue() {
    if (doorbell_ >= 0) ::close(doorbell_);
  }

  Status push(Bytes frame) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return Status{StatusCode::kAborted, "channel closed"};
    queue_.push_back(std::move(frame));
    ring_doorbell();
    not_empty_.notify_one();
    return Status::Ok();
  }

  Result<Bytes> pop(std::optional<std::chrono::milliseconds> timeout) {
    std::unique_lock lock(mu_);
    const auto ready = [&] { return !queue_.empty() || closed_; };
    if (timeout) {
      if (!not_empty_.wait_for(lock, *timeout, ready)) {
        return Status{StatusCode::kDeadlineExceeded, "recv timeout"};
      }
    } else {
      not_empty_.wait(lock, ready);
    }
    if (queue_.empty()) {
      // closed_ and drained
      drain_doorbell();
      return Status{StatusCode::kAborted, "channel closed"};
    }
    Bytes frame = std::move(queue_.front());
    queue_.pop_front();
    if (queue_.empty()) drain_doorbell();
    not_full_.notify_one();
    return frame;
  }

  Result<std::optional<Bytes>> try_pop() {
    std::scoped_lock lock(mu_);
    if (queue_.empty()) {
      if (closed_) return Status{StatusCode::kAborted, "channel closed"};
      drain_doorbell();
      return std::optional<Bytes>{};
    }
    Bytes frame = std::move(queue_.front());
    queue_.pop_front();
    if (queue_.empty()) drain_doorbell();
    not_full_.notify_one();
    return std::optional<Bytes>{std::move(frame)};
  }

  void close() {
    std::scoped_lock lock(mu_);
    closed_ = true;
    ring_doorbell();  // wake a poller so it observes kAborted
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Lazily creates the doorbell eventfd; rings it if frames are already
  /// queued so a level-triggered poller doesn't sleep over them.
  int readable_fd() {
    std::scoped_lock lock(mu_);
    if (doorbell_ < 0) {
      doorbell_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (doorbell_ >= 0 && (!queue_.empty() || closed_)) ring_doorbell();
    }
    return doorbell_;
  }

 private:
  // Both run under mu_.
  void ring_doorbell() {
    if (doorbell_ < 0) return;
    const u64 one = 1;
    [[maybe_unused]] ssize_t n = ::write(doorbell_, &one, sizeof one);
  }
  void drain_doorbell() {
    if (doorbell_ < 0 || closed_) return;  // keep it readable once closed
    u64 value = 0;
    [[maybe_unused]] ssize_t n = ::read(doorbell_, &value, sizeof value);
  }

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Bytes> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  int doorbell_ = -1;
};

/// An endpoint owns a tx queue (shared with the peer's rx) and vice versa.
class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<FrameQueue> tx, std::shared_ptr<FrameQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InProcChannel() override { close(); }

  Status send(std::span<const u8> frame) override {
    return tx_->push(Bytes{frame.begin(), frame.end()});
  }

  Result<Bytes> recv(std::optional<std::chrono::milliseconds> timeout) override {
    return rx_->pop(timeout);
  }

  Result<std::optional<Bytes>> try_recv() override { return rx_->try_pop(); }

  void close() override {
    tx_->close();
    rx_->close();
  }

  int readable_fd() override { return rx_->readable_fd(); }

 private:
  std::shared_ptr<FrameQueue> tx_;
  std::shared_ptr<FrameQueue> rx_;
};

}  // namespace

std::pair<ChannelPtr, ChannelPtr> make_inproc_channel_pair(
    std::size_t capacity) {
  auto a_to_b = std::make_shared<FrameQueue>(capacity);
  auto b_to_a = std::make_shared<FrameQueue>(capacity);
  return {std::make_unique<InProcChannel>(a_to_b, b_to_a),
          std::make_unique<InProcChannel>(b_to_a, a_to_b)};
}

LinkPair make_inproc_link_pair(std::size_t capacity) {
  auto [data_a, data_b] = make_inproc_channel_pair(capacity);
  auto [int_a, int_b] = make_inproc_channel_pair(capacity);
  auto [clk_a, clk_b] = make_inproc_channel_pair(capacity);
  LinkPair pair;
  pair.hw = CosimLink{std::move(data_a), std::move(int_a), std::move(clk_a)};
  pair.board =
      CosimLink{std::move(data_b), std::move(int_b), std::move(clk_b)};
  return pair;
}

}  // namespace vhp::net
