#include "vhp/net/batching.hpp"

#include "vhp/common/format.hpp"

namespace vhp::net {

BatchingChannel::BatchingChannel(ChannelPtr inner, BatchingConfig config,
                                 obs::Hub* hub, std::string name)
    : inner_(std::move(inner)), config_(config) {
  // Plain counters stay live even with obs disarmed (repo convention:
  // metric counters always land in metrics_json; only costly instruments
  // gate on the obs switch).
  if (hub != nullptr && !name.empty()) {
    frames_counter_ =
        &hub->metrics().counter(strformat("net.batch.{}.frames", name));
    flushes_counter_ =
        &hub->metrics().counter(strformat("net.batch.{}.flushes", name));
  }
}

BatchingChannel::~BatchingChannel() {
  // Best-effort: anything still pending goes out before the transport
  // drops (close() below also flushes; this covers destruction without
  // close).
  std::scoped_lock lock(mu_);
  (void)flush_locked();
}

Status BatchingChannel::send(std::span<const u8> frame) {
  std::scoped_lock lock(mu_);
  pending_.emplace_back(frame.begin(), frame.end());
  pending_bytes_ += frame.size();
  ++frames_batched_;
  if (frames_counter_ != nullptr) frames_counter_->inc();
  if (pending_bytes_ >= config_.max_pending_bytes ||
      pending_.size() >= config_.max_pending_frames) {
    return flush_locked();
  }
  return Status::Ok();
}

Status BatchingChannel::send_many(std::span<const Bytes> frames) {
  std::scoped_lock lock(mu_);
  for (const auto& f : frames) {
    pending_.push_back(f);
    pending_bytes_ += f.size();
    ++frames_batched_;
    if (frames_counter_ != nullptr) frames_counter_->inc();
  }
  if (pending_bytes_ >= config_.max_pending_bytes ||
      pending_.size() >= config_.max_pending_frames) {
    return flush_locked();
  }
  return Status::Ok();
}

Status BatchingChannel::flush() {
  std::scoped_lock lock(mu_);
  return flush_locked();
}

Status BatchingChannel::flush_locked() {
  if (pending_.empty()) return inner_->flush();
  ++flushes_;
  if (flushes_counter_ != nullptr) flushes_counter_->inc();
  Status s = inner_->send_many(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  if (!s.ok()) return s;
  return inner_->flush();
}

Result<Bytes> BatchingChannel::recv(
    std::optional<std::chrono::milliseconds> timeout) {
  // Never block with frames still buffered: the peer may be waiting on
  // exactly those frames before it can produce what we are receiving.
  {
    std::scoped_lock lock(mu_);
    if (Status s = flush_locked(); !s.ok()) return s;
  }
  return inner_->recv(timeout);
}

Result<std::optional<Bytes>> BatchingChannel::try_recv() {
  return inner_->try_recv();
}

void BatchingChannel::close() {
  {
    std::scoped_lock lock(mu_);
    (void)flush_locked();
  }
  inner_->close();
}

int BatchingChannel::readable_fd() { return inner_->readable_fd(); }

u64 BatchingChannel::frames_batched() const {
  std::scoped_lock lock(mu_);
  return frames_batched_;
}

u64 BatchingChannel::flushes() const {
  std::scoped_lock lock(mu_);
  return flushes_;
}

std::size_t BatchingChannel::pending_frames() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

CosimLink batch_link(CosimLink link, bool enabled,
                     const BatchingConfig& config, obs::Hub* hub,
                     const std::string& side) {
  if (!enabled) return link;
  link.data = std::make_unique<BatchingChannel>(std::move(link.data), config,
                                                hub, side + ".data");
  link.intr = std::make_unique<BatchingChannel>(std::move(link.intr), config,
                                                hub, side + ".int");
  return link;
}

}  // namespace vhp::net
