#include "vhp/net/fanout.hpp"

#include <thread>
#include <utility>

#include "vhp/net/inproc.hpp"
#include "vhp/net/tcp.hpp"

namespace vhp::net {

std::vector<LinkPair> make_inproc_link_fanout(std::size_t n,
                                              std::size_t capacity) {
  std::vector<LinkPair> links;
  links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(make_inproc_link_pair(capacity));
  }
  return links;
}

Result<std::vector<LinkPair>> make_tcp_link_fanout(std::size_t n) {
  std::vector<LinkPair> links;
  links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TcpLinkListener listener;
    // accept_link() blocks until all three peers are connected, so the
    // board-side connect has to run on its own thread.
    Result<CosimLink> board{
        Status{StatusCode::kInternal, "connector thread did not run"}};
    std::thread connector([&listener, &board] {
      board = connect_tcp_link(listener.ports());
    });
    Result<CosimLink> hw = listener.accept_link();
    connector.join();
    if (!hw.ok()) return hw.status();
    if (!board.ok()) return board.status();
    links.push_back(
        LinkPair{std::move(hw).value(), std::move(board).value()});
  }
  return links;
}

}  // namespace vhp::net
