#include "vhp/net/message.hpp"

#include "vhp/common/format.hpp"

namespace vhp::net {

std::string_view to_string(MsgType t) {
  switch (t) {
    case MsgType::kDataWrite: return "DATA_WRITE";
    case MsgType::kDataReadReq: return "DATA_READ_REQ";
    case MsgType::kDataReadResp: return "DATA_READ_RESP";
    case MsgType::kIntRaise: return "INT_RAISE";
    case MsgType::kClockTick: return "CLOCK_TICK";
    case MsgType::kTimeAck: return "TIME_ACK";
    case MsgType::kShutdown: return "SHUTDOWN";
  }
  return "UNKNOWN";
}

MsgType type_of(const Message& msg) {
  struct Visitor {
    MsgType operator()(const DataWrite&) const { return MsgType::kDataWrite; }
    MsgType operator()(const DataReadReq&) const { return MsgType::kDataReadReq; }
    MsgType operator()(const DataReadResp&) const { return MsgType::kDataReadResp; }
    MsgType operator()(const IntRaise&) const { return MsgType::kIntRaise; }
    MsgType operator()(const ClockTick&) const { return MsgType::kClockTick; }
    MsgType operator()(const TimeAck&) const { return MsgType::kTimeAck; }
    MsgType operator()(const Shutdown&) const { return MsgType::kShutdown; }
  };
  return std::visit(Visitor{}, msg);
}

Bytes encode(const Message& msg) {
  Bytes out;
  ByteWriter w{out};
  w.u8v(static_cast<u8>(type_of(msg)));
  struct Visitor {
    ByteWriter& w;
    void operator()(const DataWrite& m) const {
      w.u32v(m.address);
      w.sized_bytes(m.data);
    }
    void operator()(const DataReadReq& m) const {
      w.u32v(m.address);
      w.u32v(m.nbytes);
    }
    void operator()(const DataReadResp& m) const {
      w.u32v(m.address);
      w.sized_bytes(m.data);
    }
    void operator()(const IntRaise& m) const { w.u32v(m.vector); }
    void operator()(const ClockTick& m) const {
      w.u64v(m.sim_cycle);
      w.u32v(m.n_ticks);
      // Wire v3: the round id is appended only when stamped, keeping an
      // unstamped tick byte-identical to the v1 format.
      if (m.round.has_value()) w.u64v(*m.round);
    }
    void operator()(const TimeAck& m) const {
      w.u64v(m.board_tick);
      if (m.round.has_value()) {
        // Wire v3: a round-stamped ack always carries both trailing fields
        // (lookahead slot + round) so the 24-byte layout is unambiguous; an
        // empty lookahead rides as the kNoLookahead sentinel.
        w.u64v(m.lookahead.value_or(kNoLookahead));
        w.u64v(*m.round);
      } else if (m.lookahead.has_value()) {
        // Wire v2: the lookahead is appended only when advertised, keeping a
        // v1 ack byte-identical to the pre-lookahead format.
        w.u64v(*m.lookahead);
      }
    }
    void operator()(const Shutdown&) const {}
  };
  std::visit(Visitor{w}, msg);
  return out;
}

Result<Message> decode(std::span<const u8> frame) {
  ByteReader r{frame};
  const auto type = static_cast<MsgType>(r.u8v());
  Message msg;
  switch (type) {
    case MsgType::kDataWrite: {
      DataWrite m;
      m.address = r.u32v();
      m.data = r.sized_bytes();
      msg = std::move(m);
      break;
    }
    case MsgType::kDataReadReq: {
      DataReadReq m;
      m.address = r.u32v();
      m.nbytes = r.u32v();
      msg = m;
      break;
    }
    case MsgType::kDataReadResp: {
      DataReadResp m;
      m.address = r.u32v();
      m.data = r.sized_bytes();
      msg = std::move(m);
      break;
    }
    case MsgType::kIntRaise: {
      IntRaise m;
      m.vector = r.u32v();
      msg = m;
      break;
    }
    case MsgType::kClockTick: {
      ClockTick m;
      m.sim_cycle = r.u64v();
      m.n_ticks = r.u32v();
      // Wire v3 carries a trailing round id; a v1 frame ends here.
      if (r.ok() && !r.at_end()) m.round = r.u64v();
      msg = m;
      break;
    }
    case MsgType::kTimeAck: {
      TimeAck m;
      m.board_tick = r.u64v();
      // Versioned by length: v1 ends after board_tick, v2 adds a lookahead,
      // v3 adds lookahead-or-sentinel plus the echoed round.
      if (r.ok() && !r.at_end()) {
        const u64 first = r.u64v();
        if (r.ok() && !r.at_end()) {
          if (first != kNoLookahead) m.lookahead = first;
          m.round = r.u64v();
        } else {
          m.lookahead = first;
        }
      }
      msg = m;
      break;
    }
    case MsgType::kShutdown:
      msg = Shutdown{};
      break;
    default:
      return Status{StatusCode::kInvalidArgument,
                    vhp::strformat("unknown message type {}",
                                static_cast<int>(type))};
  }
  if (!r.ok()) {
    return Status{StatusCode::kInvalidArgument,
                  vhp::strformat("truncated {} frame ({} bytes)",
                              to_string(type), frame.size())};
  }
  if (!r.at_end()) {
    return Status{StatusCode::kInvalidArgument,
                  vhp::strformat("trailing bytes after {} frame",
                              to_string(type))};
  }
  return msg;
}

}  // namespace vhp::net
