#include "vhp/router/checksum_app.hpp"

#include "vhp/cosim/driver_codec.hpp"
#include "vhp/router/packet.hpp"

namespace vhp::router {

ChecksumApp::ChecksumApp(board::Board& board, ChecksumAppConfig config)
    : board_(board), config_(config), pending_(board.kernel(), 0) {
  // ISR context just defers; the DSR wakes this application thread, which
  // then runs in the *normal* OS state only — the paper's split between
  // data exchange (communication threads) and data management (app threads).
  board_.attach_device_dsr([this](u32) { pending_.post(); });
  board_.spawn_app("checksum_app", config_.priority, [this] { app_loop(); });
}

void ChecksumApp::app_loop() {
  for (;;) {
    pending_.wait();
    auto data = board_.dev_read(config_.packet_addr, config_.max_packet_bytes);
    if (!data.ok()) return;  // link torn down; board is shutting down
    const Bytes& raw = data.value();
    board_.kernel().consume(config_.cost_base +
                            config_.cost_per_byte * raw.size());
    const bool ok = packed_checksum_ok(raw);
    const u32 id = Packet::peek_id(raw).value_or(0);
    ++processed_;
    if (!ok) ++rejected_;
    const u32 verdict = (id << 1) | (ok ? 1u : 0u);
    Status s = board_.dev_write(config_.verdict_addr,
                                cosim::DriverCodec<u32>::encode(verdict));
    if (!s.ok()) return;
  }
}

}  // namespace vhp::router
