#include "vhp/router/testbench.hpp"

namespace vhp::router {

RouterTestbench::RouterTestbench(sim::Kernel& kernel, TestbenchConfig config,
                                 cosim::DriverRegistry* registry)
    : RouterTestbench(kernel, std::move(config),
                      registry == nullptr
                          ? std::vector<cosim::DriverRegistry*>{}
                          : std::vector<cosim::DriverRegistry*>{registry}) {}

RouterTestbench::RouterTestbench(
    sim::Kernel& kernel, TestbenchConfig config,
    const std::vector<cosim::DriverRegistry*>& registries)
    : config_(config) {
  router_ = registries.empty()
                ? std::make_unique<RouterModule>(kernel, config_.router)
                : std::make_unique<RouterModule>(kernel, config_.router,
                                                 registries);
  for (std::size_t p = 0; p < config_.router.n_ports; ++p) {
    GeneratorConfig gen;
    gen.port = p;
    gen.src_address = static_cast<u8>(p);
    gen.count = config_.packets_per_port;
    gen.gap_cycles = config_.gap_cycles;
    gen.payload_bytes = config_.payload_bytes;
    gen.corrupt_probability = config_.corrupt_probability;
    gen.seed = config_.seed + p;
    gen.clock_period = config_.router.clock_period;
    generators_.push_back(
        std::make_unique<PacketGenerator>(kernel, *router_, gen));

    ConsumerConfig sink;
    sink.port = p;
    sink.clock_period = config_.router.clock_period;
    consumers_.push_back(
        std::make_unique<PacketConsumer>(kernel, *router_, sink));

    // The traffic modules reach into the router's FIFOs directly (offer()/
    // output()) rather than through signals, so under the parallel kernel
    // they must share the router's island.
    kernel.co_locate(generators_.back()->affinity_group(),
                     router_->affinity_group());
    kernel.co_locate(consumers_.back()->affinity_group(),
                     router_->affinity_group());
  }
}

u64 RouterTestbench::total_emitted() const {
  u64 n = 0;
  for (const auto& g : generators_) n += g->emitted();
  return n;
}

u64 RouterTestbench::total_received() const {
  u64 n = 0;
  for (const auto& c : consumers_) n += c->received();
  return n;
}

u64 RouterTestbench::total_integrity_failures() const {
  u64 n = 0;
  for (const auto& c : consumers_) n += c->integrity_failures();
  return n;
}

bool RouterTestbench::traffic_done() const {
  for (const auto& g : generators_) {
    if (!g->done()) return false;
  }
  return router_->drained();
}

double RouterTestbench::forward_ratio() const {
  const u64 emitted = total_emitted();
  return emitted == 0
             ? 1.0
             : static_cast<double>(router_->stats().forwarded) /
                   static_cast<double>(emitted);
}

}  // namespace vhp::router
