#include "vhp/router/router.hpp"

#include <cassert>
#include <stdexcept>

#include "vhp/common/format.hpp"

namespace vhp::router {

RouterModule::RouterModule(sim::Kernel& kernel, RouterConfig config,
                           cosim::DriverRegistry* registry)
    : RouterModule(kernel, std::move(config),
                   registry == nullptr
                       ? std::vector<cosim::DriverRegistry*>{}
                       : std::vector<cosim::DriverRegistry*>{registry}) {}

RouterModule::RouterModule(
    sim::Kernel& kernel, RouterConfig config,
    const std::vector<cosim::DriverRegistry*>& registries)
    : Module(kernel, "router"), config_(std::move(config)),
      irq_(kernel, qualify("irq"), false) {
  if (config_.remote_checksum && registries.empty()) {
    throw std::invalid_argument(
        "RouterModule: remote checksum needs a DriverRegistry");
  }
  for (std::size_t i = 0; i < config_.n_ports; ++i) {
    inputs_.push_back(std::make_unique<sim::Fifo<Packet>>(
        kernel, qualify(strformat("in{}", i)), config_.buffer_depth));
    // Output queues model the downstream links; sized generously — the
    // paper's loss mechanism is input-buffer overflow.
    outputs_.push_back(std::make_unique<sim::Fifo<Packet>>(
        kernel, qualify(strformat("out{}", i)), 1024));
  }
  if (config_.remote_checksum) {
    // Verifier 0 keeps the classic names/line; further verifiers (fabric
    // mode, one board per port) get suffixed ports and their own lines.
    // All verifiers use the same device addresses — their registries are
    // per-node, so nothing collides.
    for (std::size_t v = 0; v < registries.size(); ++v) {
      assert(registries[v] != nullptr);
      const std::string suffix = v == 0 ? "" : strformat("{}", v);
      sim::BoolSignal* irq = &irq_;
      if (v != 0) {
        extra_irqs_.push_back(std::make_unique<sim::BoolSignal>(
            kernel, qualify("irq" + suffix), false));
        irq = extra_irqs_.back().get();
      }
      verifiers_.push_back(Verifier{
          irq,
          std::make_unique<cosim::DriverOut<Bytes>>(
              *registries[v], qualify("packet_out" + suffix),
              config_.packet_out_addr),
          std::make_unique<cosim::DriverIn<u32>>(
              kernel, *registries[v], qualify("verdict_in" + suffix),
              config_.verdict_in_addr)});
    }
  }
  thread("main", [this] { main_loop(); });
}

bool RouterModule::offer(std::size_t port, Packet packet) {
  assert(port < inputs_.size());
  if (!inputs_[port]->nb_write(std::move(packet))) {
    ++stats_.dropped_input_full;
    return false;
  }
  ++stats_.accepted;
  return true;
}

std::size_t RouterModule::route_of(u8 dst) const {
  if (config_.routes.empty()) return dst % config_.n_ports;
  auto it = config_.routes.find(dst);
  return it == config_.routes.end() ? config_.n_ports : it->second;
}

bool RouterModule::drained() const {
  // A packet is only done once its fate is decided — a popped packet whose
  // checksum verdict is still in flight is not drained.
  const u64 completed = stats_.forwarded + stats_.dropped_bad_checksum +
                        stats_.dropped_no_route +
                        stats_.dropped_verdict_timeout;
  if (completed != stats_.accepted) return false;
  for (const auto& in : inputs_) {
    if (!in->empty()) return false;
  }
  return true;
}

std::optional<bool> RouterModule::verify_remote(const Packet& packet,
                                                std::size_t in_port) {
  Verifier& verifier = verifiers_[in_port % verifiers_.size()];
  ++stats_.checksum_requests;
  verifier.packet_out->write(packet.pack());
  verifier.irq->write(true);  // sampled at the cycle boundary -> INT_RAISE
  bool ok = false;
  const sim::SimTime deadline_units =
      config_.verdict_timeout_cycles * config_.clock_period;
  sim::SimTime waited = 0;
  for (;;) {
    if (config_.verdict_timeout_cycles == 0) {
      sim::wait(verifier.verdict_in->data_written_event());
    } else {
      const sim::SimTime before = kernel().now();
      if (waited >= deadline_units ||
          !sim::wait_with_timeout(verifier.verdict_in->data_written_event(),
                                  deadline_units - waited)) {
        verifier.irq->write(false);
        sim::wait(config_.clock_period);
        return std::nullopt;  // counted once, in main_loop
      }
      waited += kernel().now() - before;
    }
    const u32 verdict = verifier.verdict_in->read();
    if ((verdict >> 1) == packet.id) {
      ok = (verdict & 1u) != 0;
      break;
    }
    // Stale verdict from a previous request; keep waiting.
  }
  verifier.irq->write(false);
  // Let the line settle low for a cycle so the next request produces a
  // fresh rising edge at the sampling points.
  sim::wait(config_.clock_period);
  return ok;
}

void RouterModule::main_loop() {
  const sim::SimTime period = config_.clock_period;
  std::size_t rr = 0;  // round-robin arbitration pointer
  for (;;) {
    Packet packet;
    bool got = false;
    std::size_t in_port = 0;
    for (std::size_t k = 0; k < inputs_.size(); ++k) {
      const std::size_t i = (rr + k) % inputs_.size();
      if (inputs_[i]->nb_read(packet)) {
        rr = (i + 1) % inputs_.size();
        in_port = i;
        got = true;
        break;
      }
    }
    if (!got) {
      sim::wait(period);  // idle cycle
      continue;
    }
    ++stats_.processed;
    sim::wait(config_.proc_cycles * period);  // HW pipeline latency
    const std::optional<bool> ok =
        config_.remote_checksum ? verify_remote(packet, in_port)
                                : std::optional<bool>{packet.checksum_ok()};
    if (!ok.has_value()) {
      ++stats_.dropped_verdict_timeout;  // board never answered
      continue;
    }
    if (!*ok) {
      ++stats_.dropped_bad_checksum;
      continue;
    }
    const std::size_t out = route_of(packet.dst);
    if (out >= outputs_.size()) {
      ++stats_.dropped_no_route;
      continue;
    }
    outputs_[out]->write(std::move(packet));
    ++stats_.forwarded;
  }
}

}  // namespace vhp::router
