#include "vhp/router/packet.hpp"

#include "vhp/common/checksum.hpp"

namespace vhp::router {

namespace {
constexpr std::size_t kHeaderBytes = 1 + 1 + 4 + 4;
constexpr std::size_t kTrailerBytes = 2;
}  // namespace

Bytes Packet::pack() const {
  Bytes out;
  out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  ByteWriter w{out};
  w.u8v(src);
  w.u8v(dst);
  w.u32v(id);
  w.u32v(static_cast<u32>(payload.size()));
  w.bytes(payload);
  w.u16v(checksum);
  return out;
}

std::optional<Packet> Packet::unpack(std::span<const u8> raw) {
  ByteReader r{raw};
  Packet p;
  p.src = r.u8v();
  p.dst = r.u8v();
  p.id = r.u32v();
  const u32 len = r.u32v();
  p.payload = r.bytes(len);
  p.checksum = r.u16v();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return p;
}

void Packet::finalize_checksum() {
  checksum = 0;
  const Bytes zeroed = pack();
  checksum = internet_checksum(zeroed);
}

bool Packet::checksum_ok() const {
  Packet copy = *this;
  copy.checksum = 0;
  return internet_checksum(copy.pack()) == checksum;
}

std::optional<u32> Packet::peek_id(std::span<const u8> raw) {
  if (raw.size() < kHeaderBytes) return std::nullopt;
  ByteReader r{raw};
  (void)r.u8v();
  (void)r.u8v();
  return r.u32v();
}

bool packed_checksum_ok(std::span<const u8> raw) {
  auto p = Packet::unpack(raw);
  return p.has_value() && p->checksum_ok();
}

}  // namespace vhp::router
