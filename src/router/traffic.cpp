#include "vhp/router/traffic.hpp"

#include "vhp/common/format.hpp"

namespace vhp::router {

PacketGenerator::PacketGenerator(sim::Kernel& kernel, RouterModule& router,
                                 GeneratorConfig config)
    : Module(kernel, strformat("gen{}", config.port)), router_(router),
      config_(config), rng_(config.seed),
      // Ids are globally unique across generators: high byte = source port.
      next_id_(static_cast<u32>(config.port) << 24) {
  thread("produce", [this] { produce_loop(); });
}

Packet PacketGenerator::make_packet() {
  Packet p;
  p.src = config_.src_address;
  p.dst = static_cast<u8>(rng_.below(256));
  p.id = next_id_++;
  p.payload.resize(config_.payload_bytes);
  for (auto& b : p.payload) b = static_cast<u8>(rng_.below(256));
  p.finalize_checksum();
  if (config_.corrupt_probability > 0.0 &&
      rng_.chance(config_.corrupt_probability) && !p.payload.empty()) {
    p.payload[rng_.below(p.payload.size())] ^= 0xff;
    ++corrupted_;
  }
  return p;
}

void PacketGenerator::produce_loop() {
  for (u64 i = 0; i < config_.count; ++i) {
    sim::wait(config_.gap_cycles * config_.clock_period);
    Packet p = make_packet();
    (void)router_.offer(config_.port, std::move(p));
    ++emitted_;
  }
  done_ = true;
}

PacketConsumer::PacketConsumer(sim::Kernel& kernel, RouterModule& router,
                               ConsumerConfig config)
    : Module(kernel, strformat("sink{}", config.port)), router_(router),
      config_(config) {
  thread("consume", [this] { consume_loop(); });
}

void PacketConsumer::consume_loop() {
  auto& fifo = router_.output(config_.port);
  for (;;) {
    Packet p = fifo.read();
    sim::wait(config_.drain_cycles * config_.clock_period);
    ++received_;
    if (!p.checksum_ok()) ++integrity_failures_;
    // With the default modulo routing, dst % n_ports must equal our port.
    if (router_.config().routes.empty() &&
        p.dst % router_.config().n_ports != config_.port) {
      ++misrouted_;
    }
  }
}

}  // namespace vhp::router
