#include "vhp/board/board.hpp"

#include <algorithm>
#include <cassert>

#include "vhp/common/format.hpp"
#include "vhp/net/message.hpp"

namespace vhp::board {

namespace {

/// Devtab adapter: applications talk to the simulated HW through the
/// standard driver interface; this forwards to the board's link plumbing.
class RemoteDevice final : public rtos::Device {
 public:
  explicit RemoteDevice(Board& board) : board_(board) {}

  Result<Bytes> read(u32 address, u32 max_bytes) override {
    return board_.dev_read(address, max_bytes);
  }

  Status write(u32 address, std::span<const u8> data) override {
    return board_.dev_write(address, data);
  }

 private:
  Board& board_;
};

rtos::KernelConfig apply_mode(rtos::KernelConfig cfg, bool free_running) {
  cfg.budget_mode = !free_running;
  return cfg;
}

}  // namespace

Board::Board(BoardConfig config, net::CosimLink link, obs::Hub* hub)
    : config_(config), link_(std::move(link)),
      owned_hub_(hub != nullptr ? nullptr : new obs::Hub()),
      hub_(hub != nullptr ? hub : owned_hub_.get()),
      interrupts_received_(
          hub_->metrics().counter("board.interrupts_received")),
      clock_ticks_received_(
          hub_->metrics().counter("board.clock_ticks_received")),
      acks_sent_(hub_->metrics().counter("board.acks_sent")),
      dev_reads_(hub_->metrics().counter("board.dev_reads")),
      dev_writes_(hub_->metrics().counter("board.dev_writes")),
      dev_read_ns_(hub_->metrics().histogram("board.dev_read_ns")),
      spans_(hub_->timeline().sink(config.name.empty() ? "board"
                                                       : config.name)),
      kernel_(apply_mode(config.rtos, config.free_running)) {
  if (config_.memory.has_value()) {
    memsys_ = std::make_unique<mem::MemorySystem>(*config_.memory,
                                                  config_.rtos.cores, hub_);
  }
  data_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.data, "data");
  int_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.intr, "int");
  clock_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.clock, "clock");

  (void)devtab_.register_device(kDeviceName,
                                std::make_unique<RemoteDevice>(*this));

  // The device interrupt: minimal ISR, work deferred to the DSR — which by
  // design runs at scheduler-safe points and typically just wakes the
  // driver/application thread.
  kernel_.interrupts().attach(
      kDeviceVector,
      rtos::InterruptHandler{
          [](u32) { return rtos::IsrResult::kCallDsr; },
          [this](u32 vector) {
            if (device_dsr_) device_dsr_(vector);
          }});

  // Freeze: the OS just entered the idle state; report our tick (TIME_ACK).
  // Under adaptive synchronization the ack also advertises our lookahead in
  // absolute master sim-cycles. The base is our own consumed CPU cycles
  // (exactly the sum of all grants at a freeze point) divided by the
  // cycles-per-sim-cycle ratio — the board's position on the master clock,
  // independent of whether the master grants ahead of or up to its own
  // cycle. The division floors, which can only *under*state the lookahead:
  // conservative, never late.
  kernel_.set_freeze_callback([this](SwTicks tick) {
    acks_sent_.inc();
    if (hub_->tracer().enabled()) {
      hub_->tracer().instant("board.time_ack", "board", tick.value(), "tick");
    }
    net::TimeAck ack{tick.value()};
    if (config_.advertise_lookahead) {
      const u64 per_cycle = std::max<u64>(1, config_.cycles_per_sim_cycle);
      if (const auto cpu = kernel_.next_event_cycles()) {
        ack.lookahead = (kernel_.cycle_count() + *cpu) / per_cycle;
      } else {
        ack.lookahead = net::kLookaheadUnbounded;
      }
    }
    // Wire v3: echo the round id of the grant this freeze answers, so the
    // ack can be joined to its CLOCK_TICK across the fabric. A boot freeze
    // (no tick seen yet) stays a v1/v2 ack.
    ack.round = round_;
    obs::Timeline& timeline = hub_->timeline();
    if (timeline.enabled() && round_.has_value()) {
      const u64 now = timeline.now_ns();
      spans_.record({*round_, 0, obs::SpanPhase::kCompute, tick_rx_ns_, now,
                     round_cycle_});
      ack_tx_ns_ = now;
    }
    // Batching flush rule (DESIGN.md §14): every DATA frame of this
    // quantum must cross before the TIME_ACK — the master acts on the
    // quantum's traffic at the barrier. No-op on unbatched links.
    if (Status fs = link_.data->flush(); !fs.ok()) {
      log_.warn("DATA flush before TIME_ACK failed: {}", fs.to_string());
    }
    Status s = net::send_msg(*link_.clock, ack);
    if (!s.ok()) log_.warn("TIME_ACK send failed: {}", s.to_string());
  });

  // Idle: keep the sockets alive (the paper's idle-state duty).
  kernel_.set_idle_poll([this] { return idle_poll(); });

  // Observability extras — only when the costly instruments are on.
  if (hub_->enabled()) {
    // Timeline of which RTOS thread holds the virtual CPU (paper Figure 4):
    // one 'X' span per scheduled slice, adjacent same-thread slices merged.
    kernel_.set_switch_trace([this](const rtos::Thread& next) {
      if (next.name() == slice_thread_) return;
      const u64 now = hub_->tracer().now_ns();
      if (!slice_thread_.empty()) {
        hub_->tracer().complete("rtos." + slice_thread_, "rtos",
                                slice_start_ns_, now);
      }
      slice_thread_ = next.name();
      slice_start_ns_ = now;
    });
  }
  // RTOS kernel totals land in every metrics dump (snapshot at dump time;
  // values are exact once the board thread has quiesced after finish()).
  hub_->add_collector([this](obs::MetricsRegistry& m) {
    const auto& ks = kernel_.stats();
    m.gauge("rtos.context_switches").set(static_cast<i64>(ks.context_switches));
    m.gauge("rtos.ticks").set(static_cast<i64>(ks.ticks));
    m.gauge("rtos.freezes").set(static_cast<i64>(ks.freezes));
    m.gauge("rtos.grants").set(static_cast<i64>(ks.grants));
    m.gauge("rtos.idle_cycles").set(static_cast<i64>(ks.idle_cycles));
  });
}

Board::~Board() { link_.close_all(); }

bool Board::idle_poll() {
  bool any = false;
  any |= data_rx_->poll();
  any |= int_rx_->poll();
  any |= clock_rx_->poll();
  // Cooperative stepping must never sleep the host thread: it is the
  // event loop's thread, shared by every session. The pacer only applies
  // to a board that owns its host thread.
  if (kernel_.stepping()) return any;
  if (any) {
    pacer_.reset();
  } else {
    pacer_.pause();
  }
  return any;
}

Result<Bytes> Board::dev_read(u32 addr, u32 nbytes) {
  rtos::MutexLock lock(data_mutex_);
  dev_reads_.inc();
  obs::Tracer& tracer = hub_->tracer();
  const u64 read_start = tracer.enabled() ? tracer.now_ns() : 0;
  if (config_.dev_read_cost > 0) kernel_.consume(config_.dev_read_cost);
  Status s = net::send_msg(*link_.data, net::DataReadReq{addr, nbytes});
  // The request must reach the master now — this thread is about to block
  // on the response (flush is a no-op on unbatched links).
  if (s.ok()) s = link_.data->flush();
  if (!s.ok()) return s;
  for (;;) {
    auto frame = data_rx_->recv();
    if (!frame.has_value()) {
      return Status{StatusCode::kAborted, "DATA channel closed mid-read"};
    }
    auto msg = net::decode(*frame);
    if (!msg.ok()) return msg.status();
    auto* resp = std::get_if<net::DataReadResp>(&msg.value());
    if (resp == nullptr) {
      log_.warn("unexpected {} on DATA port, dropped",
                net::to_string(net::type_of(msg.value())));
      continue;
    }
    if (resp->address != addr) {
      log_.warn("DATA response address mismatch: got {}, want {}",
                resp->address, addr);
      continue;
    }
    if (tracer.enabled()) {
      const u64 read_end = tracer.now_ns();
      dev_read_ns_.record_ns(read_end - read_start);
      tracer.complete("board.dev_read", "board", read_start, read_end, addr,
                      "address");
    }
    return std::move(resp->data);
  }
}

Status Board::dev_write(u32 addr, std::span<const u8> data) {
  dev_writes_.inc();
  if (config_.dev_write_cost > 0) kernel_.consume(config_.dev_write_cost);
  return net::send_msg(*link_.data,
                       net::DataWrite{addr, Bytes{data.begin(), data.end()}});
}

void Board::attach_device_dsr(std::function<void(u32)> dsr) {
  device_dsr_ = std::move(dsr);
}

void Board::attach_interrupt(u32 vector, std::function<void(u32)> dsr) {
  kernel_.interrupts().attach(
      vector, rtos::InterruptHandler{
                  [](u32) { return rtos::IsrResult::kCallDsr; },
                  std::move(dsr)});
}

rtos::Thread& Board::spawn_app(std::string name, int priority,
                               rtos::Thread::Entry entry,
                               std::size_t stack_bytes) {
  assert(priority > config_.comm_priority &&
         "application threads must run below the communication threads");
  return kernel_.spawn(std::move(name), priority, std::move(entry),
                       stack_bytes);
}

void Board::systemc_thread_body() {
  for (;;) {
    // The frame (and its heap buffer) must be released before
    // kernel_.shutdown(): shutdown parks this fiber for good and fiber
    // stacks are never unwound, so any live local would leak. Decode
    // inside a scope and only act on the verdict afterwards.
    bool stop = false;
    {
      auto frame = clock_rx_->recv();
      if (!frame.has_value()) {
        log_.debug("CLOCK channel closed; shutting down");
        stop = true;
      } else {
        auto msg = net::decode(*frame);
        if (!msg.ok()) {
          log_.warn("bad CLOCK frame: {}", msg.status().to_string());
        } else if (const auto* tick =
                       std::get_if<net::ClockTick>(&msg.value())) {
          clock_ticks_received_.inc();
          if (hub_->tracer().enabled()) {
            hub_->tracer().instant("board.clock_tick", "board",
                                   tick->sim_cycle, "sim_cycle");
          }
          obs::Timeline& timeline = hub_->timeline();
          if (timeline.enabled()) {
            const u64 now = timeline.now_ns();
            if (round_.has_value() && ack_tx_ns_ != 0) {
              spans_.record({*round_, 0, obs::SpanPhase::kFrozen, ack_tx_ns_,
                             now, round_cycle_});
            }
            tick_rx_ns_ = now;
          }
          round_ = tick->round;
          round_cycle_ = tick->sim_cycle;
          kernel_.grant_cycles(static_cast<u64>(tick->n_ticks) *
                               config_.cycles_per_sim_cycle);
        } else if (std::holds_alternative<net::Shutdown>(msg.value())) {
          log_.debug("SHUTDOWN received at tick {}",
                     kernel_.tick_count().value());
          stop = true;
        } else {
          log_.warn("unexpected {} on CLOCK port",
                    net::to_string(net::type_of(msg.value())));
        }
      }
    }
    if (stop) {
      kernel_.shutdown();
      return;
    }
  }
}

void Board::channel_thread_body() {
  for (;;) {
    auto frame = int_rx_->recv();
    if (!frame.has_value()) return;  // link down; systemc thread shuts down
    auto msg = net::decode(*frame);
    if (!msg.ok()) {
      log_.warn("bad INT frame: {}", msg.status().to_string());
      continue;
    }
    if (const auto* irq = std::get_if<net::IntRaise>(&msg.value())) {
      interrupts_received_.inc();
      if (hub_->tracer().enabled()) {
        hub_->tracer().instant("board.int_raise", "board", irq->vector,
                               "vector");
      }
      kernel_.interrupts().raise(irq->vector);
    } else {
      log_.warn("unexpected {} on INT port",
                net::to_string(net::type_of(msg.value())));
    }
  }
}

void Board::boot() {
  if (booted_) return;
  booted_ = true;
  auto& sysc = kernel_.spawn("systemc", config_.comm_priority,
                             [this] { systemc_thread_body(); });
  sysc.set_comm_thread(true);
  auto& chan = kernel_.spawn("channel", config_.comm_priority,
                             [this] { channel_thread_body(); });
  chan.set_comm_thread(true);
  log_.debug("board booted (budget_mode={})", kernel_.budget_mode());
}

void Board::run() {
  assert(!booted_ && "Board::run() called twice");
  boot();
  kernel_.run();
  log_.debug("board halted at tick {} after {} context switches",
             kernel_.tick_count().value(), kernel_.stats().context_switches);
}

Board::PumpStatus Board::pump() {
  assert(booted_ && "pump() before boot()");
  if (kernel_.run_until_starved()) return PumpStatus::kLive;
  if (!halt_logged_) {
    halt_logged_ = true;
    log_.debug("board halted at tick {} after {} context switches",
               kernel_.tick_count().value(), kernel_.stats().context_switches);
  }
  return PumpStatus::kDone;
}

std::vector<int> Board::readable_fds() {
  std::vector<int> fds;
  for (net::Channel* ch : {link_.data.get(), link_.intr.get(),
                           link_.clock.get()}) {
    if (ch == nullptr) continue;
    const int fd = ch->readable_fd();
    if (fd >= 0) fds.push_back(fd);
  }
  return fds;
}

BoardHost::BoardHost(BoardConfig config, net::CosimLink link, obs::Hub* hub)
    : board_(config, std::move(link), hub) {}

BoardHost::~BoardHost() { join(); }

void BoardHost::start() {
  assert(!started_);
  started_ = true;
  thread_ = std::thread([this] { board_.run(); });
}

void BoardHost::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace vhp::board
