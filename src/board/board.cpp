#include "vhp/board/board.hpp"

#include <cassert>

#include "vhp/common/format.hpp"
#include "vhp/net/message.hpp"

namespace vhp::board {

namespace {

/// Devtab adapter: applications talk to the simulated HW through the
/// standard driver interface; this forwards to the board's link plumbing.
class RemoteDevice final : public rtos::Device {
 public:
  explicit RemoteDevice(Board& board) : board_(board) {}

  Result<Bytes> read(u32 address, u32 max_bytes) override {
    return board_.dev_read(address, max_bytes);
  }

  Status write(u32 address, std::span<const u8> data) override {
    return board_.dev_write(address, data);
  }

 private:
  Board& board_;
};

rtos::KernelConfig apply_mode(rtos::KernelConfig cfg, bool free_running) {
  cfg.budget_mode = !free_running;
  return cfg;
}

}  // namespace

Board::Board(BoardConfig config, net::CosimLink link)
    : config_(config), link_(std::move(link)),
      kernel_(apply_mode(config.rtos, config.free_running)) {
  data_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.data, "data");
  int_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.intr, "int");
  clock_rx_ = std::make_unique<ChannelWaiter>(kernel_, *link_.clock, "clock");

  (void)devtab_.register_device(kDeviceName,
                                std::make_unique<RemoteDevice>(*this));

  // The device interrupt: minimal ISR, work deferred to the DSR — which by
  // design runs at scheduler-safe points and typically just wakes the
  // driver/application thread.
  kernel_.interrupts().attach(
      kDeviceVector,
      rtos::InterruptHandler{
          [](u32) { return rtos::IsrResult::kCallDsr; },
          [this](u32 vector) {
            if (device_dsr_) device_dsr_(vector);
          }});

  // Freeze: the OS just entered the idle state; report our tick (TIME_ACK).
  kernel_.set_freeze_callback([this](SwTicks tick) {
    ++stats_.acks_sent;
    Status s = net::send_msg(*link_.clock, net::TimeAck{tick.value()});
    if (!s.ok()) log_.warn("TIME_ACK send failed: {}", s.to_string());
  });

  // Idle: keep the sockets alive (the paper's idle-state duty).
  kernel_.set_idle_poll([this] { idle_poll(); });
}

Board::~Board() { link_.close_all(); }

void Board::idle_poll() {
  bool any = false;
  any |= data_rx_->poll();
  any |= int_rx_->poll();
  any |= clock_rx_->poll();
  if (any) {
    pacer_.reset();
  } else {
    pacer_.pause();
  }
}

Result<Bytes> Board::dev_read(u32 addr, u32 nbytes) {
  rtos::MutexLock lock(data_mutex_);
  ++stats_.dev_reads;
  if (config_.dev_read_cost > 0) kernel_.consume(config_.dev_read_cost);
  Status s = net::send_msg(*link_.data, net::DataReadReq{addr, nbytes});
  if (!s.ok()) return s;
  for (;;) {
    auto frame = data_rx_->recv();
    if (!frame.has_value()) {
      return Status{StatusCode::kAborted, "DATA channel closed mid-read"};
    }
    auto msg = net::decode(*frame);
    if (!msg.ok()) return msg.status();
    auto* resp = std::get_if<net::DataReadResp>(&msg.value());
    if (resp == nullptr) {
      log_.warn("unexpected {} on DATA port, dropped",
                net::to_string(net::type_of(msg.value())));
      continue;
    }
    if (resp->address != addr) {
      log_.warn("DATA response address mismatch: got {}, want {}",
                resp->address, addr);
      continue;
    }
    return std::move(resp->data);
  }
}

Status Board::dev_write(u32 addr, std::span<const u8> data) {
  ++stats_.dev_writes;
  if (config_.dev_write_cost > 0) kernel_.consume(config_.dev_write_cost);
  return net::send_msg(*link_.data,
                       net::DataWrite{addr, Bytes{data.begin(), data.end()}});
}

void Board::attach_device_dsr(std::function<void(u32)> dsr) {
  device_dsr_ = std::move(dsr);
}

void Board::attach_interrupt(u32 vector, std::function<void(u32)> dsr) {
  kernel_.interrupts().attach(
      vector, rtos::InterruptHandler{
                  [](u32) { return rtos::IsrResult::kCallDsr; },
                  std::move(dsr)});
}

rtos::Thread& Board::spawn_app(std::string name, int priority,
                               rtos::Thread::Entry entry,
                               std::size_t stack_bytes) {
  assert(priority > config_.comm_priority &&
         "application threads must run below the communication threads");
  return kernel_.spawn(std::move(name), priority, std::move(entry),
                       stack_bytes);
}

void Board::systemc_thread_body() {
  for (;;) {
    auto frame = clock_rx_->recv();
    if (!frame.has_value()) {
      log_.debug("CLOCK channel closed; shutting down");
      kernel_.shutdown();
      return;
    }
    auto msg = net::decode(*frame);
    if (!msg.ok()) {
      log_.warn("bad CLOCK frame: {}", msg.status().to_string());
      continue;
    }
    if (const auto* tick = std::get_if<net::ClockTick>(&msg.value())) {
      ++stats_.clock_ticks_received;
      kernel_.grant_cycles(static_cast<u64>(tick->n_ticks) *
                           config_.cycles_per_sim_cycle);
      continue;
    }
    if (std::holds_alternative<net::Shutdown>(msg.value())) {
      log_.debug("SHUTDOWN received at tick {}", kernel_.tick_count().value());
      kernel_.shutdown();
      return;
    }
    log_.warn("unexpected {} on CLOCK port",
              net::to_string(net::type_of(msg.value())));
  }
}

void Board::channel_thread_body() {
  for (;;) {
    auto frame = int_rx_->recv();
    if (!frame.has_value()) return;  // link down; systemc thread shuts down
    auto msg = net::decode(*frame);
    if (!msg.ok()) {
      log_.warn("bad INT frame: {}", msg.status().to_string());
      continue;
    }
    if (const auto* irq = std::get_if<net::IntRaise>(&msg.value())) {
      ++stats_.interrupts_received;
      kernel_.interrupts().raise(irq->vector);
    } else {
      log_.warn("unexpected {} on INT port",
                net::to_string(net::type_of(msg.value())));
    }
  }
}

void Board::run() {
  assert(!booted_ && "Board::run() called twice");
  booted_ = true;
  auto& sysc = kernel_.spawn("systemc", config_.comm_priority,
                             [this] { systemc_thread_body(); });
  sysc.set_comm_thread(true);
  auto& chan = kernel_.spawn("channel", config_.comm_priority,
                             [this] { channel_thread_body(); });
  chan.set_comm_thread(true);
  log_.debug("board booted (budget_mode={})", kernel_.budget_mode());
  kernel_.run();
  log_.debug("board halted at tick {} after {} context switches",
             kernel_.tick_count().value(), kernel_.stats().context_switches);
}

BoardHost::BoardHost(BoardConfig config, net::CosimLink link)
    : board_(config, std::move(link)) {}

BoardHost::~BoardHost() { join(); }

void BoardHost::start() {
  assert(!started_);
  started_ = true;
  thread_ = std::thread([this] { board_.run(); });
}

void BoardHost::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace vhp::board
