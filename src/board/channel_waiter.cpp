#include "vhp/board/channel_waiter.hpp"

#include <thread>

#include "vhp/rtos/kernel.hpp"

namespace vhp::board {

ChannelWaiter::ChannelWaiter(rtos::Kernel& kernel, net::Channel& channel,
                             std::string name)
    : channel_(channel), name_(std::move(name)), available_(kernel, 0) {}

bool ChannelWaiter::poll() {
  if (closed_) return false;
  bool any = false;
  for (;;) {
    auto frame = channel_.try_recv();
    if (!frame.ok()) {
      // Peer closed or transport failure: mark closed, wake receivers so
      // they can observe it.
      closed_ = true;
      available_.post();
      return true;
    }
    if (!frame.value().has_value()) break;
    pending_.push_back(std::move(*frame.value()));
    available_.post();
    any = true;
  }
  return any;
}

std::optional<Bytes> ChannelWaiter::recv() {
  for (;;) {
    poll();  // self-service: works even when the idle thread is not polling
    if (!pending_.empty()) {
      Bytes frame = std::move(pending_.front());
      pending_.pop_front();
      return frame;
    }
    if (closed_) return std::nullopt;
    available_.wait();  // RTOS-blocks; idle thread's poll() posts
  }
}

std::optional<Bytes> ChannelWaiter::try_get() {
  poll();
  if (pending_.empty()) return std::nullopt;
  Bytes frame = std::move(pending_.front());
  pending_.pop_front();
  // Balance the semaphore so counts do not accumulate.
  available_.try_wait();
  return frame;
}

void IdlePacer::pause() {
  ++empty_polls_;
  if (empty_polls_ < 256) {
    // Spin: sync round trips are latency-critical and usually resolve in
    // microseconds on loopback.
    return;
  }
  if (empty_polls_ < 4096) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds{50});
}

}  // namespace vhp::board
