#include "vhp/obs/stall_profiler.hpp"

#include <string>

#include "vhp/obs/metrics.hpp"

namespace vhp::obs {

std::string_view StallProfiler::bucket_name(Bucket bucket) {
  switch (bucket) {
    case Bucket::kSimulate: return "simulate";
    case Bucket::kDataService: return "data_service";
    case Bucket::kAckWait: return "ack_wait";
    case Bucket::kCount: break;
  }
  return "?";
}

void StallProfiler::export_to(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const auto bucket = static_cast<Bucket>(i);
    const std::string base = "cosim.wall." + std::string(bucket_name(bucket));
    metrics.gauge(base + "_ns").set(static_cast<i64>(total_ns(bucket)));
    metrics.gauge(base + "_intervals")
        .set(static_cast<i64>(samples(bucket)));
  }
}

}  // namespace vhp::obs
