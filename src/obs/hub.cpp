#include "vhp/obs/hub.hpp"

#include <fstream>

namespace vhp::obs {

Hub::Hub(ObsConfig config)
    : config_(config),
      tracer_(TracerConfig{config.enabled, config.max_trace_events}),
      profiler_(config.enabled),
      hw_recorder_(config.record, "hw"),
      board_recorder_(config.record, "board"),
      timeline_(config.timeline) {}

void Hub::add_collector(std::function<void(MetricsRegistry&)> collector) {
  std::scoped_lock lock(collectors_mu_);
  collectors_.push_back(std::move(collector));
}

void Hub::collect() {
  {
    std::scoped_lock lock(collectors_mu_);
    for (auto& collector : collectors_) collector(metrics_);
  }
  profiler_.export_to(metrics_);
  hw_recorder_.export_to(metrics_);
  board_recorder_.export_to(metrics_);
  if (timeline_.enabled()) timeline_.export_to(metrics_);
  // Truncated timelines are self-announcing: a dump that hit the trace
  // buffer cap carries the overflow count next to the event count.
  if (config_.enabled) {
    metrics_.gauge("obs.trace.events")
        .set(static_cast<i64>(tracer_.event_count()));
    metrics_.gauge("obs.trace.dropped_events")
        .set(static_cast<i64>(tracer_.dropped()));
  }
}

std::string Hub::metrics_json(std::string_view node_prefix) {
  collect();
  return metrics_.to_json(node_prefix);
}

Status Hub::serve_telemetry(u16 port, TelemetryServer::Provider provider) {
  if (!provider) provider = [this] { return metrics_json(); };
  return telemetry_.start(std::move(provider), port);
}

void Hub::stop_telemetry() { telemetry_.stop(); }

std::string merged_metrics_json(
    std::span<const std::pair<std::string, Hub*>> hubs) {
  std::string counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  for (const auto& [prefix, hub] : hubs) {
    hub->collect();
    hub->metrics().append_json_sections(counters, gauges, histograms, prefix,
                                        first_counter, first_gauge,
                                        first_histogram);
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

Status Hub::write_metrics_json(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status{StatusCode::kUnavailable, "cannot open " + path};
  f << metrics_json();
  f.close();
  if (!f) return Status{StatusCode::kUnavailable, "write failed: " + path};
  return Status::Ok();
}

}  // namespace vhp::obs
