#include "vhp/obs/telemetry.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

namespace vhp::obs {

TelemetryServer::~TelemetryServer() { stop(); }

Status TelemetryServer::start(Provider provider, u16 port) {
  if (running_.load()) {
    return Status{StatusCode::kFailedPrecondition,
                  "telemetry server already running"};
  }
  if (!provider) {
    return Status{StatusCode::kInvalidArgument, "null telemetry provider"};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status{StatusCode::kUnavailable,
                  std::string("telemetry socket: ") + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status{StatusCode::kUnavailable, "telemetry bind: " + err};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status{StatusCode::kUnavailable, "telemetry getsockname: " + err};
  }
  provider_ = std::move(provider);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return Status::Ok();
}

void TelemetryServer::stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  running_.store(false);
}

namespace {

// Full write with EINTR/partial handling; MSG_NOSIGNAL so a torn-down
// client never raises SIGPIPE in the instrumented process.
bool write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

void TelemetryServer::serve_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::string doc = provider_();
    // net::Channel framing: u32 little-endian length, then the body.
    const u32 n = static_cast<u32>(doc.size());
    const unsigned char header[4] = {
        static_cast<unsigned char>(n & 0xff),
        static_cast<unsigned char>((n >> 8) & 0xff),
        static_cast<unsigned char>((n >> 16) & 0xff),
        static_cast<unsigned char>((n >> 24) & 0xff)};
    if (write_all(conn, header, sizeof header) &&
        write_all(conn, doc.data(), doc.size())) {
      served_.fetch_add(1);
    }
    ::close(conn);
  }
}

u64 TelemetrySnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

i64 TelemetrySnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

namespace {

// Scanner over MetricsRegistry::to_json() output. Finds the named section
// object and walks its "key":value pairs; values are either numbers or (for
// histograms) objects whose leading fixed fields are read by name.
struct Scan {
  std::string_view s;
  std::size_t pos = 0;

  bool seek(std::string_view token) {
    const auto at = s.find(token, pos);
    if (at == std::string_view::npos) return false;
    pos = at + token.size();
    return true;
  }
  void skip_ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }
  bool read_quoted(std::string& out) {
    skip_ws();
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\' && pos + 1 < s.size()) ++pos;
      out += s[pos++];
    }
    if (pos >= s.size()) return false;
    ++pos;
    return true;
  }
  bool read_number(double& out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) ||
            s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) return false;
    out = std::strtod(std::string(s.substr(start, pos - start)).c_str(),
                      nullptr);
    return true;
  }
};

u64 object_field_u64(std::string_view object, std::string_view key) {
  Scan scan{object};
  if (!scan.seek(std::string("\"") + std::string(key) + "\":")) return 0;
  double v = 0;
  return scan.read_number(v) ? static_cast<u64>(v) : 0;
}

// [start, end) of the balanced {...} beginning at `open` (which must index a
// '{'); npos when unbalanced.
std::size_t object_end(std::string_view s, std::size_t open) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

}  // namespace

TelemetrySnapshot parse_metrics_snapshot(std::string_view json) {
  TelemetrySnapshot snap;
  const auto parse_section =
      [&](std::string_view section,
          const std::function<bool(Scan&, const std::string&)>& on_pair) {
        Scan scan{json};
        if (!scan.seek(std::string("\"") + std::string(section) + "\":{")) {
          return;
        }
        for (;;) {
          scan.skip_ws();
          if (scan.pos >= json.size() || json[scan.pos] == '}') break;
          if (json[scan.pos] == ',') {
            ++scan.pos;
            continue;
          }
          std::string key;
          if (!scan.read_quoted(key)) break;
          scan.skip_ws();
          if (scan.pos >= json.size() || json[scan.pos] != ':') break;
          ++scan.pos;
          if (!on_pair(scan, key)) break;
        }
      };

  parse_section("counters", [&](Scan& scan, const std::string& key) {
    double v = 0;
    if (!scan.read_number(v)) return false;
    snap.counters[key] = static_cast<u64>(v);
    return true;
  });
  parse_section("gauges", [&](Scan& scan, const std::string& key) {
    double v = 0;
    if (!scan.read_number(v)) return false;
    snap.gauges[key] = static_cast<i64>(v);
    return true;
  });
  parse_section("histograms", [&](Scan& scan, const std::string& key) {
    scan.skip_ws();
    if (scan.pos >= scan.s.size() || scan.s[scan.pos] != '{') return false;
    const std::size_t end = object_end(scan.s, scan.pos);
    if (end == std::string_view::npos) return false;
    const std::string_view object = scan.s.substr(scan.pos, end - scan.pos);
    HistogramSnapshot h;
    h.count = object_field_u64(object, "count");
    h.sum_ns = object_field_u64(object, "sum_ns");
    h.p50_ns = object_field_u64(object, "p50_ns");
    h.p95_ns = object_field_u64(object, "p95_ns");
    h.p99_ns = object_field_u64(object, "p99_ns");
    snap.histograms[key] = h;
    scan.pos = end;
    return true;
  });
  snap.ok = !snap.counters.empty() || !snap.gauges.empty() ||
            !snap.histograms.empty();
  return snap;
}

namespace {

double rate(u64 cur, u64 prev, double dt_s) {
  if (dt_s <= 0 || cur < prev) return 0.0;
  return static_cast<double>(cur - prev) / dt_s;
}

}  // namespace

std::string telemetry_top_text(const TelemetrySnapshot& cur,
                               const TelemetrySnapshot* prev, double dt_s) {
  std::ostringstream out;
  char line[256];

  const u64 rounds = cur.counter("fabric.barriers");
  const u64 acks = cur.counter("fabric.acks_received");
  const double round_rate =
      prev ? rate(rounds, prev->counter("fabric.barriers"), dt_s) : 0.0;
  std::snprintf(line, sizeof line,
                "rounds %llu (%.0f/s)  acks %llu  evicted %llu  rejoined "
                "%llu\n",
                (unsigned long long)rounds, round_rate,
                (unsigned long long)acks,
                (unsigned long long)cur.counter("fabric.node_evicted"),
                (unsigned long long)cur.counter("fabric.node_rejoined"));
  out << line;

  const auto wait = cur.histograms.find("fabric.barrier_wait_ns");
  if (wait != cur.histograms.end()) {
    std::snprintf(line, sizeof line,
                  "barrier wait: mean %.1f us  p50 %.1f us  p95 %.1f us  "
                  "p99 %.1f us\n",
                  wait->second.mean_ns() / 1e3,
                  static_cast<double>(wait->second.p50_ns) / 1e3,
                  static_cast<double>(wait->second.p95_ns) / 1e3,
                  static_cast<double>(wait->second.p99_ns) / 1e3);
    out << line;
  }

  u64 faults = 0;
  for (const auto& [name, v] : cur.counters) {
    if (name.rfind("fault.", 0) == 0) faults += v;
  }
  if (faults > 0) {
    std::snprintf(line, sizeof line, "fault counters: %llu total\n",
                  (unsigned long long)faults);
    out << line;
  }

  // Per-node rows keyed off the coordinator's grant histograms
  // ("fabric.<name>.grant_cycles"); board-side ack counters merge in under
  // the node-name prefix.
  bool header = false;
  for (const auto& [name, h] : cur.histograms) {
    constexpr std::string_view kPrefix = "fabric.";
    constexpr std::string_view kSuffix = ".grant_cycles";
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
        0) {
      continue;
    }
    const std::string node = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (node.find('.') != std::string::npos) continue;
    if (!header) {
      header = true;
      std::snprintf(line, sizeof line, "%12s %10s %10s %12s %12s %12s\n",
                    "node", "acks", "acks/s", "grants", "grant_mean",
                    "grant_p95");
      out << line;
    }
    const std::string ack_key = node + ".board.acks_sent";
    const u64 node_acks = cur.counter(ack_key);
    const double ack_rate =
        prev ? rate(node_acks, prev->counter(ack_key), dt_s) : 0.0;
    std::snprintf(line, sizeof line,
                  "%12s %10llu %10.0f %12llu %12.0f %12llu\n", node.c_str(),
                  (unsigned long long)node_acks, ack_rate,
                  (unsigned long long)h.count, h.mean_ns(),
                  (unsigned long long)h.p95_ns);
    out << line;
  }
  return out.str();
}

}  // namespace vhp::obs
