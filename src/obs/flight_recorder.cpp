#include "vhp/obs/flight_recorder.hpp"

#include <chrono>

#include "vhp/common/checksum.hpp"

namespace vhp::obs {

std::string_view to_string(LinkPort port) {
  switch (port) {
    case LinkPort::kData: return "data";
    case LinkPort::kInt: return "int";
    case LinkPort::kClock: return "clock";
  }
  return "?";
}

std::string_view to_string(LinkDir dir) {
  return dir == LinkDir::kTx ? "tx" : "rx";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config, std::string side)
    : config_(config), side_(std::move(side)),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.enabled && config_.ring_frames > 0) {
    ring_.resize(config_.ring_frames);
    for (auto& slot : ring_) slot.payload.reserve(config_.max_payload_bytes);
  }
}

void FlightRecorder::set_hw_time_source(std::function<u64()> source) {
  std::scoped_lock lock(mu_);
  hw_time_ = std::move(source);
}

void FlightRecorder::set_board_time_source(std::function<u64()> source) {
  std::scoped_lock lock(mu_);
  board_time_ = std::move(source);
}

void FlightRecorder::record(LinkPort port, LinkDir dir,
                            std::span<const u8> frame, u32 node) {
  if (!config_.enabled || ring_.empty()) return;
  const u64 wall_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const std::size_t stored =
      std::min(frame.size(), config_.max_payload_bytes);
  std::scoped_lock lock(mu_);
  FrameRecord& slot = ring_[next_seq_ % ring_.size()];
  slot.seq = next_seq_++;
  slot.port = port;
  slot.dir = dir;
  slot.node = node;
  slot.flags = 0;
  slot.msg_type = frame.empty() ? 0 : frame[0];
  slot.truncated = stored < frame.size();
  slot.hw_cycle = hw_time_ ? hw_time_() : 0;
  slot.board_tick = board_time_ ? board_time_() : 0;
  slot.wall_ns = wall_ns;
  slot.payload_size = static_cast<u32>(frame.size());
  slot.digest = crc32(frame);
  slot.payload.assign(frame.begin(),
                      frame.begin() + static_cast<std::ptrdiff_t>(stored));
}

void FlightRecorder::note_fault(LinkPort port, LinkDir dir,
                                std::string_view kind, u32 node) {
  if (!config_.enabled || ring_.empty()) return;
  const u64 wall_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const auto* bytes = reinterpret_cast<const u8*>(kind.data());
  const std::size_t stored =
      std::min(kind.size(), config_.max_payload_bytes);
  std::scoped_lock lock(mu_);
  FrameRecord& slot = ring_[next_seq_ % ring_.size()];
  slot.seq = next_seq_++;
  slot.port = port;
  slot.dir = dir;
  slot.node = node;
  slot.flags = kFrameFlagInjected;
  slot.msg_type = 0;
  slot.truncated = stored < kind.size();
  slot.hw_cycle = hw_time_ ? hw_time_() : 0;
  slot.board_tick = board_time_ ? board_time_() : 0;
  slot.wall_ns = wall_ns;
  slot.payload_size = static_cast<u32>(kind.size());
  slot.digest = crc32({bytes, kind.size()});
  slot.payload.assign(bytes, bytes + stored);
}

u64 FlightRecorder::recorded() const {
  std::scoped_lock lock(mu_);
  return next_seq_;
}

u64 FlightRecorder::evicted() const {
  std::scoped_lock lock(mu_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

std::vector<FrameRecord> FlightRecorder::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<FrameRecord> out;
  if (ring_.empty() || next_seq_ == 0) return out;
  const u64 count = std::min<u64>(next_seq_, ring_.size());
  out.reserve(count);
  for (u64 seq = next_seq_ - count; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % ring_.size()]);
  }
  return out;
}

void FlightRecorder::export_to(MetricsRegistry& registry) const {
  if (!config_.enabled || side_.empty()) return;
  registry.gauge("obs.record." + side_ + ".frames")
      .set(static_cast<i64>(recorded()));
  registry.gauge("obs.record." + side_ + ".evicted")
      .set(static_cast<i64>(evicted()));
}

}  // namespace vhp::obs
