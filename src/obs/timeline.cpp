#include "vhp/obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "vhp/common/format.hpp"
#include "vhp/obs/metrics.hpp"

namespace vhp::obs {

std::string_view to_string(SpanPhase p) {
  switch (p) {
    case SpanPhase::kScatter: return "scatter";
    case SpanPhase::kGather: return "gather";
    case SpanPhase::kNodeWait: return "wait";
    case SpanPhase::kCompute: return "compute";
    case SpanPhase::kFrozen: return "frozen";
    case SpanPhase::kBarrier: return "barrier";
  }
  return "unknown";
}

SpanSink::SpanSink(const TimelineConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  if (config_.enabled && config_.ring_spans > 0) {
    ring_.reserve(config_.ring_spans);
  }
}

void SpanSink::record(const SpanRecord& span) {
  if (!config_.enabled || config_.ring_spans == 0) return;
  std::scoped_lock lock(mu_);
  if (ring_.size() < config_.ring_spans) {
    ring_.push_back(span);
  } else {
    // Flight-recorder discipline: overwrite oldest, count the loss.
    ring_[next_ % config_.ring_spans] = span;
    ++dropped_;
  }
  ++next_;
  ++recorded_;
}

u64 SpanSink::recorded() const {
  std::scoped_lock lock(mu_);
  return recorded_;
}

u64 SpanSink::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

std::vector<SpanRecord> SpanSink::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.ring_spans) {
    out = ring_;
  } else {
    // Full ring: oldest entry sits at the write cursor.
    const std::size_t head = next_ % config_.ring_spans;
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

Timeline::Timeline(TimelineConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {}

u64 Timeline::now_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

std::chrono::steady_clock::time_point Timeline::epoch() const {
  return epoch_;
}

void Timeline::set_epoch(std::chrono::steady_clock::time_point epoch) {
  epoch_ = epoch;
}

SpanSink& Timeline::sink(std::string_view name) {
  std::scoped_lock lock(mu_);
  for (auto& s : sinks_) {
    if (s->name() == name) return *s;
  }
  sinks_.push_back(std::make_unique<SpanSink>(config_, std::string(name)));
  return *sinks_.back();
}

std::vector<SpanRecord> Timeline::snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::scoped_lock lock(mu_);
    for (const auto& s : sinks_) {
      const auto spans = s->snapshot();
      out.insert(out.end(), spans.begin(), spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

void Timeline::export_to(MetricsRegistry& registry) const {
  u64 recorded = 0, dropped = 0;
  {
    std::scoped_lock lock(mu_);
    for (const auto& s : sinks_) {
      recorded += s->recorded();
      dropped += s->dropped();
    }
  }
  registry.gauge("timeline.spans").set(static_cast<i64>(recorded));
  registry.gauge("timeline.dropped_spans").set(static_cast<i64>(dropped));
}

namespace {

[[nodiscard]] bool is_coordinator_phase(SpanPhase p) {
  return p == SpanPhase::kScatter || p == SpanPhase::kGather ||
         p == SpanPhase::kNodeWait || p == SpanPhase::kBarrier;
}

[[nodiscard]] std::string node_label(u32 node,
                                     const std::map<u32, std::string>& names) {
  const auto it = names.find(node);
  return it != names.end() ? it->second : strformat("node{}", node);
}

struct RoundAccum {
  u64 cycle = 0;
  // Coordinator-side window; falls back to all spans when a recording only
  // has the board side.
  u64 coord_start = ~u64{0};
  u64 coord_end = 0;
  u64 any_start = ~u64{0};
  u64 any_end = 0;
  // Per-node kNodeWait intervals for straggler analysis.
  std::map<u32, std::pair<u64, u64>> waits;  // node -> [start, end]
  std::map<u32, u64> computes;               // node -> duration
  std::map<u32, bool> seen;
};

}  // namespace

TimelineAnalysis analyze_spans(const std::vector<SpanRecord>& spans,
                               const std::map<u32, std::string>& node_names) {
  TimelineAnalysis a;
  if (spans.empty()) return a;

  std::map<u64, RoundAccum> rounds;
  for (const SpanRecord& s : spans) {
    RoundAccum& r = rounds[s.round];
    if (r.cycle == 0) r.cycle = s.cycle;
    r.any_start = std::min(r.any_start, s.start_ns);
    r.any_end = std::max(r.any_end, s.end_ns);
    if (is_coordinator_phase(s.phase)) {
      r.coord_start = std::min(r.coord_start, s.start_ns);
      r.coord_end = std::max(r.coord_end, s.end_ns);
    }
    switch (s.phase) {
      case SpanPhase::kNodeWait:
        r.waits[s.node] = {s.start_ns, s.end_ns};
        r.seen[s.node] = true;
        break;
      case SpanPhase::kCompute:
        r.computes[s.node] += s.end_ns - std::min(s.start_ns, s.end_ns);
        r.seen[s.node] = true;
        break;
      case SpanPhase::kFrozen:
        r.seen[s.node] = true;
        break;
      default:
        break;
    }
  }

  std::map<u32, NodeAttribution> nodes;
  u64 wall_start = ~u64{0}, wall_end = 0;
  u64 barrier_wall = 0;
  u64 critical = 0;  // Σ per-round straggler wait measured from round start

  for (auto& [round_id, r] : rounds) {
    const bool have_coord = r.coord_start != ~u64{0};
    const u64 start = have_coord ? r.coord_start : r.any_start;
    const u64 end = have_coord ? r.coord_end : r.any_end;
    wall_start = std::min(wall_start, start);
    wall_end = std::max(wall_end, end);
    barrier_wall += end - std::min(start, end);

    RoundSummary summary;
    summary.round = round_id;
    summary.cycle = r.cycle;
    summary.start_ns = start;
    summary.end_ns = end;
    summary.nodes = static_cast<u32>(r.seen.size());

    u64 fastest_ack = ~u64{0}, slowest_ack = 0;
    for (const auto& [node, w] : r.waits) {
      fastest_ack = std::min(fastest_ack, w.second);
      if (w.second >= slowest_ack) {
        slowest_ack = w.second;
        summary.straggler = node;
      }
    }
    if (!r.waits.empty()) {
      summary.straggler_wait_ns = slowest_ack - std::min(fastest_ack,
                                                         slowest_ack);
      critical += slowest_ack - std::min(start, slowest_ack);
    } else {
      critical += end - std::min(start, end);
    }

    for (const auto& [node, seen] : r.seen) {
      (void)seen;
      NodeAttribution& attr = nodes[node];
      attr.node = node;
      ++attr.rounds;
      const auto wit = r.waits.find(node);
      const u64 wait =
          wit == r.waits.end()
              ? 0
              : wit->second.second - std::min(wit->second.first,
                                              wit->second.second);
      const auto cit = r.computes.find(node);
      const u64 compute = cit == r.computes.end() ? 0 : cit->second;
      attr.wait_ns += wait;
      attr.compute_ns += compute;
      attr.transport_ns += wait > compute ? wait - compute : 0;
      if (!r.waits.empty() && node == summary.straggler) {
        ++attr.straggler_rounds;
      }
    }
    a.rounds.push_back(summary);
  }

  a.wall_ns = wall_end - std::min(wall_start, wall_end);
  a.barrier_wall_ns = std::min(barrier_wall, a.wall_ns);
  a.master_compute_ns = a.wall_ns - a.barrier_wall_ns;

  u64 first_cycle = ~u64{0}, last_cycle = 0;
  for (const RoundSummary& r : a.rounds) {
    if (r.cycle == 0) continue;
    first_cycle = std::min(first_cycle, r.cycle);
    last_cycle = std::max(last_cycle, r.cycle);
  }
  a.virtual_cycles =
      first_cycle == ~u64{0} ? 0 : last_cycle - std::min(first_cycle,
                                                         last_cycle);
  if (a.virtual_cycles > 0) {
    a.slowdown = static_cast<double>(a.wall_ns) /
                 static_cast<double>(a.virtual_cycles);
  }

  // Reconciliation: the critical path through each round's straggler plus
  // the inter-round master compute must re-compose the analyzed wall-clock.
  if (a.wall_ns > 0) {
    const u64 attributed = a.master_compute_ns + critical;
    const u64 diff = attributed > a.wall_ns ? attributed - a.wall_ns
                                            : a.wall_ns - attributed;
    a.reconciliation_error =
        static_cast<double>(diff) / static_cast<double>(a.wall_ns);
  }

  for (auto& [node, attr] : nodes) {
    attr.name = node_label(node, node_names);
    a.nodes.push_back(std::move(attr));
  }
  return a;
}

namespace {

[[nodiscard]] std::string fmt_us(u64 ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(ns) / 1e3);
  return buf;
}

[[nodiscard]] std::string fmt_pct(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", f * 100.0);
  return buf;
}

}  // namespace

std::string timeline_report_text(const TimelineAnalysis& a,
                                 std::size_t max_rounds) {
  std::ostringstream out;
  out << "rounds: " << a.rounds.size() << "  wall: " << fmt_us(a.wall_ns)
      << " us  barrier: " << fmt_us(a.barrier_wall_ns)
      << " us  master-compute: " << fmt_us(a.master_compute_ns) << " us\n";
  if (a.rounds.empty()) return out.str();
  char line[160];
  std::snprintf(line, sizeof line, "%8s %12s %12s %7s %10s %14s\n", "round",
                "cycle", "dur_us", "nodes", "straggler", "strag_wait_us");
  out << line;
  const std::size_t shown = std::min(max_rounds, a.rounds.size());
  const std::size_t skip = a.rounds.size() - shown;
  if (skip > 0) out << "  ... " << skip << " earlier rounds elided ...\n";
  for (std::size_t i = skip; i < a.rounds.size(); ++i) {
    const RoundSummary& r = a.rounds[i];
    std::snprintf(line, sizeof line, "%8llu %12llu %12s %7u %10u %14s\n",
                  (unsigned long long)r.round, (unsigned long long)r.cycle,
                  fmt_us(r.end_ns - r.start_ns).c_str(), r.nodes, r.straggler,
                  fmt_us(r.straggler_wait_ns).c_str());
    out << line;
  }
  return out.str();
}

std::string critical_report_text(const TimelineAnalysis& a) {
  std::ostringstream out;
  out << "critical path over " << a.rounds.size() << " rounds, "
      << a.virtual_cycles << " virtual cycles\n";
  out << "  wall:           " << fmt_us(a.wall_ns) << " us\n";
  out << "  barrier:        " << fmt_us(a.barrier_wall_ns) << " us ("
      << fmt_pct(a.wall_ns
                     ? static_cast<double>(a.barrier_wall_ns) /
                           static_cast<double>(a.wall_ns)
                     : 0.0)
      << " of wall)\n";
  out << "  master compute: " << fmt_us(a.master_compute_ns) << " us\n";
  if (a.virtual_cycles > 0) {
    char line[96];
    std::snprintf(line, sizeof line,
                  "  slowdown:       %.1f ns/cycle (%.1fx at 1 GHz)\n",
                  a.slowdown, a.slowdown);
    out << line;
  }
  out << "  reconciliation: " << fmt_pct(a.reconciliation_error)
      << " deviation from wall\n";
  if (!a.nodes.empty()) {
    char line[192];
    std::snprintf(line, sizeof line, "%10s %8s %12s %12s %13s %10s\n", "node",
                  "rounds", "wait_us", "compute_us", "transport_us",
                  "straggler");
    out << line;
    // Straggler-heaviest first: that is the chain to optimize.
    std::vector<NodeAttribution> ranked = a.nodes;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const NodeAttribution& x, const NodeAttribution& y) {
                       return x.straggler_rounds > y.straggler_rounds;
                     });
    for (const NodeAttribution& n : ranked) {
      std::snprintf(line, sizeof line, "%10s %8llu %12s %12s %13s %10llu\n",
                    n.name.c_str(), (unsigned long long)n.rounds,
                    fmt_us(n.wait_ns).c_str(), fmt_us(n.compute_ns).c_str(),
                    fmt_us(n.transport_ns).c_str(),
                    (unsigned long long)n.straggler_rounds);
      out << line;
    }
  }
  return out.str();
}

std::string timeline_analysis_json(const TimelineAnalysis& a) {
  std::ostringstream out;
  out << "{\"rounds\":" << a.rounds.size() << ",\"wall_ns\":" << a.wall_ns
      << ",\"barrier_wall_ns\":" << a.barrier_wall_ns
      << ",\"master_compute_ns\":" << a.master_compute_ns
      << ",\"virtual_cycles\":" << a.virtual_cycles
      << ",\"slowdown\":" << a.slowdown
      << ",\"reconciliation_error\":" << a.reconciliation_error
      << ",\"nodes\":[";
  bool first = true;
  for (const NodeAttribution& n : a.nodes) {
    if (!first) out << ",";
    first = false;
    out << "{\"node\":" << n.node << ",\"name\":\"" << json_escape(n.name)
        << "\",\"rounds\":" << n.rounds << ",\"wait_ns\":" << n.wait_ns
        << ",\"compute_ns\":" << n.compute_ns
        << ",\"transport_ns\":" << n.transport_ns
        << ",\"straggler_rounds\":" << n.straggler_rounds << "}";
  }
  out << "]}";
  return out.str();
}

std::string spans_to_chrome_json(const std::vector<SpanRecord>& spans,
                                 const std::map<u32, std::string>& node_names) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& body) {
    if (!first) out << ",";
    first = false;
    out << body;
  };
  // One track per node, plus the coordinator on tid 1 — named via
  // thread_name metadata so the viewer shows labels instead of bare tids.
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
       "\"args\":{\"name\":\"coordinator\"}}");
  std::map<u32, bool> named;
  for (const SpanRecord& s : spans) {
    if (s.phase == SpanPhase::kNodeWait || s.phase == SpanPhase::kCompute ||
        s.phase == SpanPhase::kFrozen) {
      if (!named[s.node]) {
        named[s.node] = true;
        emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(s.node + 2) + ",\"args\":{\"name\":\"" +
             json_escape(node_label(s.node, node_names)) + "\"}}");
      }
    }
  }
  char buf[256];
  for (const SpanRecord& s : spans) {
    const bool per_node = s.phase == SpanPhase::kNodeWait ||
                          s.phase == SpanPhase::kCompute ||
                          s.phase == SpanPhase::kFrozen;
    const u32 tid = per_node ? s.node + 2 : 1;
    const u64 dur = s.end_ns - std::min(s.start_ns, s.end_ns);
    std::snprintf(
        buf, sizeof buf,
        "{\"name\":\"%s\",\"cat\":\"timeline\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"round\":%llu,"
        "\"cycle\":%llu}}",
        std::string(to_string(s.phase)).c_str(),
        static_cast<double>(s.start_ns) / 1e3,
        static_cast<double>(dur) / 1e3, tid, (unsigned long long)s.round,
        (unsigned long long)s.cycle);
    emit(buf);
  }
  out << "]}";
  return out.str();
}

}  // namespace vhp::obs
