#include "vhp/obs/metrics.hpp"

#include <cmath>
#include <sstream>

namespace vhp::obs {

namespace {

template <typename Map, typename Storage>
auto& get_or_create(std::mutex& mu, Map& map, Storage& storage,
                    std::string_view name) {
  std::scoped_lock lock(mu);
  auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto& inst = storage.emplace_back();
  map.emplace(std::string(name), &inst);
  return inst;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(mu_, counters_, counter_storage_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(mu_, gauges_, gauge_storage_, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(mu_, histograms_, histogram_storage_, name);
}

u64 LatencyHistogram::percentile_ns(double q) const {
  // Snapshot the buckets once; count() may race ahead of the bucket array
  // under concurrent record_ns, so rank against the snapshot's own total.
  std::array<u64, kBuckets> snap;
  u64 total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = bucket(i);
    total += snap[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(q * static_cast<double>(total))));
  u64 cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += snap[i];
    if (cumulative >= rank) return bucket_floor_ns(i + 1) - 1;
  }
  return bucket_floor_ns(kBuckets) - 1;
}

bool MetricsRegistry::contains(std::string_view name) const {
  std::scoped_lock lock(mu_);
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, *c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, *g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const LatencyHistogram&)>& fn)
    const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

void MetricsRegistry::append_json_sections(
    std::string& counters, std::string& gauges, std::string& histograms,
    std::string_view prefix, bool& first_counter, bool& first_gauge,
    bool& first_histogram) const {
  const std::string escaped_prefix = json_escape(prefix);
  for_each_counter([&](const std::string& name, const Counter& c) {
    if (!first_counter) counters += ",";
    first_counter = false;
    counters += "\"" + escaped_prefix + json_escape(name) +
                "\":" + std::to_string(c.value());
  });
  for_each_gauge([&](const std::string& name, const Gauge& g) {
    if (!first_gauge) gauges += ",";
    first_gauge = false;
    gauges += "\"" + escaped_prefix + json_escape(name) +
              "\":" + std::to_string(g.value());
  });
  for_each_histogram([&](const std::string& name, const LatencyHistogram& h) {
    if (!first_histogram) histograms += ",";
    first_histogram = false;
    std::ostringstream out;
    out << "\"" << escaped_prefix << json_escape(name)
        << "\":{\"count\":" << h.count() << ",\"sum_ns\":" << h.sum_ns()
        << ",\"p50_ns\":" << h.percentile_ns(0.50)
        << ",\"p95_ns\":" << h.percentile_ns(0.95)
        << ",\"p99_ns\":" << h.percentile_ns(0.99) << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const u64 n = h.bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "{\"ge_ns\":" << LatencyHistogram::bucket_floor_ns(i)
          << ",\"count\":" << n << "}";
    }
    out << "]}";
    histograms += out.str();
  });
}

std::string MetricsRegistry::to_json(std::string_view key_prefix) const {
  std::string counters, gauges, histograms;
  bool first_counter = true, first_gauge = true, first_histogram = true;
  append_json_sections(counters, gauges, histograms, key_prefix,
                       first_counter, first_gauge, first_histogram);
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vhp::obs
