#include "vhp/obs/metrics.hpp"

#include <sstream>

namespace vhp::obs {

namespace {

template <typename Map, typename Storage>
auto& get_or_create(std::mutex& mu, Map& map, Storage& storage,
                    std::string_view name) {
  std::scoped_lock lock(mu);
  auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto& inst = storage.emplace_back();
  map.emplace(std::string(name), &inst);
  return inst;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(mu_, counters_, counter_storage_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(mu_, gauges_, gauge_storage_, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  return get_or_create(mu_, histograms_, histogram_storage_, name);
}

bool MetricsRegistry::contains(std::string_view name) const {
  std::scoped_lock lock(mu_);
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, *c);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, g] : gauges_) fn(name, *g);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const LatencyHistogram&)>& fn)
    const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  out << "\"counters\":{";
  for_each_counter([&](const std::string& name, const Counter& c) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << c.value();
  });
  out << "},\"gauges\":{";
  first = true;
  for_each_gauge([&](const std::string& name, const Gauge& g) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << g.value();
  });
  out << "},\"histograms\":{";
  first = true;
  for_each_histogram([&](const std::string& name, const LatencyHistogram& h) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << h.count()
        << ",\"sum_ns\":" << h.sum_ns() << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const u64 n = h.bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "{\"ge_ns\":" << LatencyHistogram::bucket_floor_ns(i)
          << ",\"count\":" << n << "}";
    }
    out << "]}";
  });
  out << "}}";
  return out.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace vhp::obs
