#include "vhp/obs/recording.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "vhp/common/bytes.hpp"
#include "vhp/common/checksum.hpp"
#include "vhp/common/format.hpp"

namespace vhp::obs {

namespace {

// Version 1 carries no per-frame node id; version 2 appends one; version 3
// appends a flags byte after the node (fault markers). The writer sticks to
// the oldest version that can carry the data — version 1 while every frame
// is node 0 and unflagged — so single-node (classic two-party) recordings
// stay byte-identical to what older builds wrote and read.
constexpr char kBinaryMagic[8] = {'V', 'H', 'P', 'R', 'E', 'C', '0', '1'};
constexpr char kBinaryMagicV2[8] = {'V', 'H', 'P', 'R', 'E', 'C', '0', '2'};
constexpr char kBinaryMagicV3[8] = {'V', 'H', 'P', 'R', 'E', 'C', '0', '3'};
constexpr std::string_view kJsonlMagic = "{\"format\":\"vhp-recording\"";

std::string to_hex(std::span<const u8> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

bool from_hex(std::string_view hex, Bytes& out) {
  if (hex.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return true;
}

// --- JSONL value scanning (only the shapes our writer emits) ---------------

/// Finds `"key":` in `line` and returns the raw value text after it (up to
/// the next top-level ',' or '}' for scalars, the closing '"' for strings).
std::optional<std::string_view> raw_value(std::string_view line,
                                          std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = line.substr(pos + needle.size());
  if (!rest.empty() && rest.front() == '"') {
    rest.remove_prefix(1);
    const auto end = rest.find('"');  // writer never emits escaped quotes
    if (end == std::string_view::npos) return std::nullopt;
    return rest.substr(0, end);
  }
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ',' && rest[end] != '}') ++end;
  return rest.substr(0, end);
}

std::optional<u64> u64_value(std::string_view line, std::string_view key) {
  auto raw = raw_value(line, key);
  if (!raw.has_value() || raw->empty()) return std::nullopt;
  u64 out = 0;
  for (char c : *raw) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + static_cast<u64>(c - '0');
  }
  return out;
}

std::optional<LinkPort> port_from_name(std::string_view name) {
  if (name == "data") return LinkPort::kData;
  if (name == "int") return LinkPort::kInt;
  if (name == "clock") return LinkPort::kClock;
  return std::nullopt;
}

Status bad_file(const std::string& path, const std::string& what) {
  return Status{StatusCode::kInvalidArgument,
                strformat("{}: {}", path, what)};
}

// --- binary encoding -------------------------------------------------------

void encode_frame(ByteWriter& w, const FrameRecord& r, bool with_node,
                  bool with_flags) {
  w.u64v(r.seq);
  w.u8v(static_cast<u8>(r.port));
  w.u8v(static_cast<u8>(r.dir));
  if (with_node) w.u32v(r.node);
  if (with_flags) w.u8v(r.flags);
  w.u8v(r.msg_type);
  w.u8v(r.truncated ? 1 : 0);
  w.u64v(r.hw_cycle);
  w.u64v(r.board_tick);
  w.u64v(r.wall_ns);
  w.u32v(r.payload_size);
  w.u32v(r.digest);
  w.sized_bytes(r.payload);
}

bool decode_frame(ByteReader& r, FrameRecord& out, bool with_node,
                  bool with_flags) {
  out.seq = r.u64v();
  const u8 port = r.u8v();
  const u8 dir = r.u8v();
  out.node = with_node ? r.u32v() : 0;
  out.flags = with_flags ? r.u8v() : 0;
  out.msg_type = r.u8v();
  out.truncated = r.u8v() != 0;
  out.hw_cycle = r.u64v();
  out.board_tick = r.u64v();
  out.wall_ns = r.u64v();
  out.payload_size = r.u32v();
  out.digest = r.u32v();
  out.payload = r.sized_bytes();
  if (!r.ok() || port > 2 || dir > 1) return false;
  out.port = static_cast<LinkPort>(port);
  out.dir = static_cast<LinkDir>(dir);
  return true;
}

std::string header_json(const Recording& rec) {
  std::ostringstream out;
  out << "{\"format\":\"vhp-recording\",\"version\":1,\"side\":\""
      << json_escape(rec.meta.side) << "\",\"frames\":" << rec.frames.size()
      << ",\"tags\":{";
  bool first = true;
  for (const auto& [key, value] : rec.meta.tags) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  out << "}}";
  return out.str();
}

Result<Recording> read_jsonl(const std::string& path, std::istream& in) {
  Recording rec;
  std::string line;
  if (!std::getline(in, line) ||
      line.compare(0, kJsonlMagic.size(), kJsonlMagic) != 0) {
    return bad_file(path, "missing vhp-recording JSONL header");
  }
  rec.meta.side = std::string(raw_value(line, "side").value_or(""));
  // Tags: the header's {"k":"v",...} sub-object, flat by construction.
  const auto tags_pos = line.find("\"tags\":{");
  if (tags_pos != std::string::npos) {
    std::string_view body{line};
    body.remove_prefix(tags_pos + 8);
    const auto end = body.find('}');
    if (end != std::string_view::npos) body = body.substr(0, end);
    while (!body.empty()) {
      const auto key_start = body.find('"');
      if (key_start == std::string_view::npos) break;
      body.remove_prefix(key_start + 1);
      const auto key_end = body.find('"');
      if (key_end == std::string_view::npos) break;
      const std::string key{body.substr(0, key_end)};
      body.remove_prefix(key_end + 1);
      const auto val_start = body.find('"');
      if (val_start == std::string_view::npos) break;
      body.remove_prefix(val_start + 1);
      const auto val_end = body.find('"');
      if (val_end == std::string_view::npos) break;
      rec.meta.tags[key] = std::string(body.substr(0, val_end));
      body.remove_prefix(val_end + 1);
    }
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    FrameRecord r;
    const auto seq = u64_value(line, "seq");
    const auto port_name = raw_value(line, "port");
    const auto port =
        port_name ? port_from_name(*port_name) : std::nullopt;
    const auto dir = raw_value(line, "dir");
    if (!seq || !port || !dir || (*dir != "tx" && *dir != "rx")) {
      return bad_file(path, strformat("bad frame on line {}", line_no));
    }
    r.seq = *seq;
    r.port = *port;
    r.dir = *dir == "tx" ? LinkDir::kTx : LinkDir::kRx;
    r.node = static_cast<u32>(u64_value(line, "node").value_or(0));
    r.flags = static_cast<u8>(u64_value(line, "flags").value_or(0));
    r.msg_type = static_cast<u8>(u64_value(line, "type").value_or(0));
    r.truncated = raw_value(line, "truncated").value_or("false") == "true";
    r.hw_cycle = u64_value(line, "hw_cycle").value_or(0);
    r.board_tick = u64_value(line, "board_tick").value_or(0);
    r.wall_ns = u64_value(line, "wall_ns").value_or(0);
    r.payload_size = static_cast<u32>(u64_value(line, "size").value_or(0));
    r.digest = static_cast<u32>(u64_value(line, "digest").value_or(0));
    const auto hex = raw_value(line, "payload").value_or("");
    if (!from_hex(hex, r.payload)) {
      return bad_file(path, strformat("bad payload hex on line {}", line_no));
    }
    rec.frames.push_back(std::move(r));
  }
  return rec;
}

Result<Recording> read_binary(const std::string& path, std::istream& in) {
  // Whole-file slurp: recordings are bounded by the ring size.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  ByteReader r{std::span{reinterpret_cast<const u8*>(data.data()),
                         data.size()}};
  Bytes magic = r.bytes(sizeof kBinaryMagic);
  bool with_node = false;
  bool with_flags = false;
  if (r.ok() &&
      std::equal(magic.begin(), magic.end(), std::begin(kBinaryMagicV3))) {
    with_node = with_flags = true;
  } else if (r.ok() && std::equal(magic.begin(), magic.end(),
                                  std::begin(kBinaryMagicV2))) {
    with_node = true;
  } else if (!r.ok() || !std::equal(magic.begin(), magic.end(),
                                    std::begin(kBinaryMagic))) {
    return bad_file(path, "not a vhp recording (bad magic)");
  }
  Recording rec;
  const Bytes side = r.sized_bytes();
  rec.meta.side.assign(side.begin(), side.end());
  const u32 n_tags = r.u32v();
  for (u32 i = 0; r.ok() && i < n_tags; ++i) {
    const Bytes key = r.sized_bytes();
    const Bytes value = r.sized_bytes();
    rec.meta.tags[std::string(key.begin(), key.end())] =
        std::string(value.begin(), value.end());
  }
  const u64 n_frames = r.u64v();
  if (!r.ok()) return bad_file(path, "truncated header");
  // A corrupt count must not turn into a giant allocation: every frame
  // costs at least one byte, so the remaining bytes bound the real count.
  if (n_frames > r.remaining()) {
    return bad_file(path, strformat("frame count {} exceeds file size",
                                    n_frames));
  }
  rec.frames.reserve(n_frames);
  for (u64 i = 0; i < n_frames; ++i) {
    FrameRecord frame;
    if (!decode_frame(r, frame, with_node, with_flags)) {
      return bad_file(path, strformat("truncated frame {}", i));
    }
    rec.frames.push_back(std::move(frame));
  }
  if (!r.at_end()) {
    return bad_file(path, strformat("{} trailing bytes after frame {}",
                                    r.remaining(), n_frames));
  }
  return rec;
}

}  // namespace

RecordingFormat format_for_path(const std::string& path) {
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  return ends_with(".jsonl") || ends_with(".json") ? RecordingFormat::kJsonl
                                                   : RecordingFormat::kBinary;
}

std::string frame_record_to_json(const FrameRecord& r) {
  std::ostringstream out;
  out << "{\"seq\":" << r.seq << ",\"port\":\"" << to_string(r.port)
      << "\",\"dir\":\"" << to_string(r.dir) << "\"";
  // node 0 is implicit so single-node JSONL dumps keep their old shape;
  // flags likewise (only fault markers carry them).
  if (r.node != 0) out << ",\"node\":" << r.node;
  if (r.flags != 0) out << ",\"flags\":" << static_cast<unsigned>(r.flags);
  out << ",\"type\":" << static_cast<unsigned>(r.msg_type)
      << ",\"hw_cycle\":" << r.hw_cycle << ",\"board_tick\":" << r.board_tick
      << ",\"wall_ns\":" << r.wall_ns << ",\"size\":" << r.payload_size
      << ",\"digest\":" << r.digest;
  if (r.truncated) out << ",\"truncated\":true";
  out << ",\"payload\":\"" << to_hex(r.payload) << "\"}";
  return out.str();
}

Status write_recording(const std::string& path, const Recording& recording,
                       RecordingFormat format) {
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return Status{StatusCode::kUnavailable, "cannot open " + path};
  if (format == RecordingFormat::kJsonl) {
    f << header_json(recording) << "\n";
    for (const FrameRecord& r : recording.frames) {
      f << frame_record_to_json(r) << "\n";
    }
  } else {
    const bool with_flags =
        std::any_of(recording.frames.begin(), recording.frames.end(),
                    [](const FrameRecord& r) { return r.flags != 0; });
    const bool with_node =
        with_flags ||
        std::any_of(recording.frames.begin(), recording.frames.end(),
                    [](const FrameRecord& r) { return r.node != 0; });
    Bytes out;
    ByteWriter w{out};
    w.bytes(std::span{reinterpret_cast<const u8*>(
                          with_flags ? kBinaryMagicV3
                                     : (with_node ? kBinaryMagicV2
                                                  : kBinaryMagic)),
                      sizeof kBinaryMagic});
    w.sized_bytes(std::span{
        reinterpret_cast<const u8*>(recording.meta.side.data()),
        recording.meta.side.size()});
    w.u32v(static_cast<u32>(recording.meta.tags.size()));
    for (const auto& [key, value] : recording.meta.tags) {
      w.sized_bytes(
          std::span{reinterpret_cast<const u8*>(key.data()), key.size()});
      w.sized_bytes(
          std::span{reinterpret_cast<const u8*>(value.data()), value.size()});
    }
    w.u64v(recording.frames.size());
    for (const FrameRecord& r : recording.frames) {
      encode_frame(w, r, with_node, with_flags);
    }
    f.write(reinterpret_cast<const char*>(out.data()),
            static_cast<std::streamsize>(out.size()));
  }
  f.close();
  if (!f) return Status{StatusCode::kUnavailable, "write failed: " + path};
  return Status::Ok();
}

Result<Recording> read_recording(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status{StatusCode::kNotFound, "cannot open " + path};
  const int first = f.peek();
  if (first == '{') return read_jsonl(path, f);
  return read_binary(path, f);
}

// ---------------------------------------------------------------------------
// Divergence checking

std::string Divergence::to_string() const {
  const std::string where =
      node == 0 ? std::string(obs::to_string(port))
                : strformat("node {} {}", node, obs::to_string(port));
  return strformat(
      "divergence at seq {} ({} {}, hw_cycle {}, board_tick {}): {}", seq,
      where, obs::to_string(dir), hw_cycle, board_tick, reason);
}

std::string compare_frames(const FrameRecord& expected,
                           const FrameRecord& actual, FrameDiffFn diff) {
  if (expected.msg_type != actual.msg_type) {
    return strformat("msg type {} vs {}",
                     static_cast<unsigned>(expected.msg_type),
                     static_cast<unsigned>(actual.msg_type));
  }
  if (expected.payload_size != actual.payload_size) {
    return strformat("payload size {} vs {}", expected.payload_size,
                     actual.payload_size);
  }
  if (expected.digest == actual.digest &&
      expected.payload == actual.payload) {
    return {};
  }
  if (diff != nullptr) {
    std::string fields = diff(expected, actual);
    if (!fields.empty()) return fields;
  }
  const std::size_t n =
      std::min(expected.payload.size(), actual.payload.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected.payload[i] != actual.payload[i]) {
      return strformat("payload byte {}: 0x{} vs 0x{}", i,
                       to_hex(std::span{&expected.payload[i], 1}),
                       to_hex(std::span{&actual.payload[i], 1}));
    }
  }
  return strformat("payload digest {} vs {} (stored prefixes equal)",
                   expected.digest, actual.digest);
}

std::size_t DivergenceChecker::queue_index(u32 node, LinkPort port,
                                           LinkDir dir) {
  const std::size_t index =
      static_cast<std::size_t>(node) * kQueuesPerNode +
      static_cast<std::size_t>(port) * 2 + static_cast<std::size_t>(dir);
  if (index >= queues_.size()) queues_.resize(index + 1);
  return index;
}

DivergenceChecker::DivergenceChecker(const Recording& reference,
                                     FrameDiffFn diff)
    : diff_(diff) {
  for (const FrameRecord& r : reference.frames) {
    // Fault markers are injector annotations, not link traffic: a faulted
    // run must still match a clean reference (and vice versa).
    if ((r.flags & kFrameFlagInjected) != 0) continue;
    queues_[queue_index(r.node, r.port, r.dir)].frames.push_back(r);
  }
}

bool DivergenceChecker::check(LinkPort port, LinkDir dir,
                              std::span<const u8> frame, u32 node) {
  FrameRecord live;
  live.port = port;
  live.dir = dir;
  live.node = node;
  live.msg_type = frame.empty() ? 0 : frame[0];
  live.payload_size = static_cast<u32>(frame.size());
  live.digest = crc32(frame);
  live.payload.assign(frame.begin(), frame.end());
  return check(live);
}

bool DivergenceChecker::check(const FrameRecord& live) {
  if ((live.flags & kFrameFlagInjected) != 0) return !divergence_.has_value();
  if (divergence_.has_value()) return false;
  Queue& queue = queues_[queue_index(live.node, live.port, live.dir)];
  if (queue.next >= queue.frames.size()) {
    divergence_ = Divergence{
        .seq = queue.frames.empty() ? 0 : queue.frames.back().seq,
        .port = live.port,
        .dir = live.dir,
        .node = live.node,
        .reason = strformat(
            "live side produced frame {} on {} {} beyond the recording's {}",
            queue.next + 1, obs::to_string(live.port),
            obs::to_string(live.dir), queue.frames.size())};
    return false;
  }
  // Either side may have kept only a payload prefix; compare the common
  // stored prefix — payload_size and digest still describe the full frames.
  FrameRecord expected = queue.frames[queue.next];
  FrameRecord probe = live;
  if (expected.payload.size() != probe.payload.size() &&
      (expected.truncated || probe.truncated)) {
    const std::size_t n =
        std::min(expected.payload.size(), probe.payload.size());
    expected.payload.resize(n);
    probe.payload.resize(n);
    expected.truncated = probe.truncated = true;
  }
  std::string reason = compare_frames(expected, probe, diff_);
  if (!reason.empty()) {
    divergence_ = Divergence{.seq = expected.seq,
                             .port = live.port,
                             .dir = live.dir,
                             .node = live.node,
                             .hw_cycle = expected.hw_cycle,
                             .board_tick = expected.board_tick,
                             .reason = std::move(reason)};
    return false;
  }
  ++queue.next;
  ++matched_;
  return true;
}

std::optional<Divergence> diff_recordings(const Recording& a,
                                          const Recording& b,
                                          FrameDiffFn diff) {
  DivergenceChecker checker{a, diff};
  for (const FrameRecord& r : b.frames) {
    if (!checker.check(r)) break;
  }
  if (checker.divergence().has_value()) return checker.divergence();
  // b may be a prefix of a: surface the first reference frame b never sent.
  DivergenceChecker reverse{b, diff};
  for (const FrameRecord& r : a.frames) {
    if (!reverse.check(r)) break;
  }
  if (reverse.divergence().has_value()) {
    Divergence d = *reverse.divergence();
    d.reason = "second recording ends early: " + d.reason;
    return d;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Reports

std::string recording_stats_text(const Recording& rec) {
  struct PortStats {
    u64 frames[2] = {0, 0};
    u64 bytes[2] = {0, 0};
  };
  std::array<PortStats, 3> ports{};
  std::map<u8, u64> by_type;
  u64 first_ns = ~u64{0}, last_ns = 0;
  u64 max_hw_cycle = 0, max_board_tick = 0;
  u64 injected = 0;
  for (const FrameRecord& r : rec.frames) {
    if ((r.flags & kFrameFlagInjected) != 0) {
      ++injected;
      continue;
    }
    auto& p = ports[static_cast<std::size_t>(r.port)];
    p.frames[static_cast<std::size_t>(r.dir)] += 1;
    p.bytes[static_cast<std::size_t>(r.dir)] += r.payload_size;
    by_type[r.msg_type] += 1;
    first_ns = std::min(first_ns, r.wall_ns);
    last_ns = std::max(last_ns, r.wall_ns);
    max_hw_cycle = std::max(max_hw_cycle, r.hw_cycle);
    max_board_tick = std::max(max_board_tick, r.board_tick);
  }
  std::ostringstream out;
  out << "side: " << (rec.meta.side.empty() ? "?" : rec.meta.side)
      << "   frames: " << rec.frames.size() << "\n";
  for (const auto& [key, value] : rec.meta.tags) {
    out << "tag " << key << " = " << value << "\n";
  }
  char line[128];
  std::snprintf(line, sizeof line, "%-6s %12s %12s %14s %14s\n", "port",
                "tx_frames", "rx_frames", "tx_bytes", "rx_bytes");
  out << line;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    std::snprintf(line, sizeof line, "%-6s %12llu %12llu %14llu %14llu\n",
                  std::string(to_string(static_cast<LinkPort>(i))).c_str(),
                  (unsigned long long)ports[i].frames[0],
                  (unsigned long long)ports[i].frames[1],
                  (unsigned long long)ports[i].bytes[0],
                  (unsigned long long)ports[i].bytes[1]);
    out << line;
  }
  for (const auto& [type, count] : by_type) {
    out << "msg type " << static_cast<unsigned>(type) << ": " << count
        << " frames\n";
  }
  if (injected > 0) out << "injected fault markers: " << injected << "\n";
  if (!rec.frames.empty()) {
    out << "wall span: " << (last_ns - first_ns) / 1000 << " us\n";
    out << "virtual span: hw_cycle <= " << max_hw_cycle
        << ", board_tick <= " << max_board_tick << "\n";
  }
  return out.str();
}

std::string recording_to_chrome_json(const Recording& rec) {
  const auto as_us = [](u64 ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const FrameRecord& r : rec.frames) {
    if (!first) out << ",";
    first = false;
    const bool fault = (r.flags & kFrameFlagInjected) != 0;
    out << "{\"name\":\"" << to_string(r.port) << "." << to_string(r.dir);
    if (fault) {
      out << ".fault."
          << std::string(r.payload.begin(), r.payload.end());
    } else {
      out << ".t" << static_cast<unsigned>(r.msg_type);
    }
    out << "\",\"cat\":\"" << (fault ? "fault" : "link")
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
        << (static_cast<unsigned>(r.port) + 1) << ",\"ts\":" << as_us(r.wall_ns)
        << ",\"args\":{\"seq\":" << r.seq << ",\"hw_cycle\":" << r.hw_cycle
        << ",\"board_tick\":" << r.board_tick << ",\"size\":" << r.payload_size
        << "}}";
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

}  // namespace vhp::obs
