#include "vhp/obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <sstream>

#include "vhp/common/log.hpp"
#include "vhp/obs/metrics.hpp"

namespace vhp::obs {

namespace {

// Small process-wide host-thread ids: stable across tracers, dense enough
// to read in the viewer (the board thread and the kernel thread become
// tid 1 / tid 2, not two 7-digit pthread handles).
std::atomic<u32> g_next_tid{1};
thread_local u32 t_tid = 0;

u32 current_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.enabled) {
    events_.reserve(std::min<std::size_t>(config_.max_events, 1u << 16));
  }
}

u64 Tracer::now_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

void Tracer::instant(std::string name, const char* category,
                     std::optional<u64> arg, const char* arg_name) {
  if (!config_.enabled) return;
  record(Event{std::move(name), category, 'i', now_ns(), 0, current_tid(),
               arg, arg_name});
}

void Tracer::complete(std::string name, const char* category, u64 start_ns,
                      u64 end_ns, std::optional<u64> arg,
                      const char* arg_name) {
  if (!config_.enabled) return;
  record(Event{std::move(name), category, 'X', start_ns,
               end_ns >= start_ns ? end_ns - start_ns : 0, current_tid(), arg,
               arg_name});
}

void Tracer::record(Event ev) {
  bool first_drop = false;
  {
    std::scoped_lock lock(mu_);
    if (events_.size() >= config_.max_events) {
      first_drop = dropped_++ == 0;
    } else {
      events_.push_back(std::move(ev));
    }
  }
  // Warn once, outside the lock: every later trace_json() is silently
  // missing the tail otherwise.
  if (first_drop) {
    static const Logger log{"obs"};
    log.warn("trace buffer full ({} events); further events are dropped "
             "(raise ObsConfig::max_trace_events)",
             config_.max_events);
  }
}

std::size_t Tracer::event_count() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

u64 Tracer::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

std::string Tracer::to_chrome_json() const {
  // trace_event wants microsecond timestamps; keep ns resolution with a
  // fractional part.
  const auto as_us = [](u64 ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string(buf);
  };
  std::scoped_lock lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
        << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
        << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":" << as_us(ev.ts_ns);
    if (ev.phase == 'X') {
      out << ",\"dur\":" << as_us(ev.dur_ns);
    }
    if (ev.phase == 'i') out << ",\"s\":\"t\"";
    if (ev.arg.has_value()) {
      out << ",\"args\":{\"" << json_escape(ev.arg_name) << "\":" << *ev.arg
          << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

Status Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    return Status{StatusCode::kUnavailable, "cannot open " + path};
  }
  f << to_chrome_json();
  f.close();
  if (!f) return Status{StatusCode::kUnavailable, "write failed: " + path};
  return Status::Ok();
}

}  // namespace vhp::obs
