#include "vhp/cosim/sync_policy.hpp"

#include <limits>

#include "vhp/common/format.hpp"

namespace vhp::cosim {

Status SyncPolicy::validate(std::size_t n_nodes) const {
  if (n_nodes == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SyncPolicy: at least one node required"};
  }
  // A zero default quantum is fine as long as every node overrides it —
  // same rule as the legacy SyncConfig — so only the per-node resolution
  // is checked.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (node_quantum(i) == 0) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("SyncPolicy: node {} quantum is 0", i)};
    }
  }
  if (min_quantum_ != 0 && max_quantum_ != 0 && min_quantum_ > max_quantum_) {
    return Status{
        StatusCode::kInvalidArgument,
        strformat("SyncPolicy: min_quantum {} > max_quantum {}", min_quantum_,
                  max_quantum_)};
  }
  // CLOCK_TICK carries the grant in a u32 n_ticks field; an adaptive grant
  // must fit it or the tick would silently truncate.
  constexpr u64 kTickMax = std::numeric_limits<u32>::max();
  if (max_quantum_ > kTickMax) {
    return Status{
        StatusCode::kInvalidArgument,
        strformat("SyncPolicy: max_quantum {} exceeds the u32 CLOCK_TICK "
                  "grant field",
                  max_quantum_)};
  }
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (node_quantum(i) > kTickMax) {
      return Status{
          StatusCode::kInvalidArgument,
          strformat("SyncPolicy: node {} quantum {} exceeds the u32 "
                    "CLOCK_TICK grant field",
                    i, node_quantum(i))};
    }
  }
  if (evict_after_misses_ > 0 && watchdog_.count() == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SyncPolicy: eviction needs a nonzero watchdog"};
  }
  return Status::Ok();
}

}  // namespace vhp::cosim
