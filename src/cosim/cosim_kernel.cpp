#include "vhp/cosim/cosim_kernel.hpp"

#include <thread>

#include "vhp/common/format.hpp"

namespace vhp::cosim {

CosimKernel::CosimKernel(net::CosimLink link, CosimConfig config)
    : link_(std::move(link)), config_(config),
      clock_(kernel_, "clk", config.clock_period) {}

CosimKernel::~CosimKernel() { finish(); }

void CosimKernel::watch_interrupt(sim::BoolSignal& line, u32 vector) {
  watches_.push_back(IntWatch{&line, vector, line.read()});
}

Status CosimKernel::handshake(
    std::optional<std::chrono::milliseconds> timeout) {
  if (!config_.timed || handshaken_) return Status::Ok();
  // The board reports its initial freeze with a TIME_ACK; data traffic is
  // not expected before it (the device driver has nothing to talk to yet).
  auto msg = net::recv_msg(*link_.clock, timeout);
  if (!msg.ok()) return msg.status();
  if (!std::holds_alternative<net::TimeAck>(msg.value())) {
    return Status{StatusCode::kInternal,
                  strformat("expected initial TIME_ACK, got {}",
                            net::to_string(net::type_of(msg.value())))};
  }
  handshaken_ = true;
  log_.debug("handshake complete, board frozen at tick {}",
             std::get<net::TimeAck>(msg.value()).board_tick);
  return Status::Ok();
}

Status CosimKernel::service_data_port() {
  for (;;) {
    auto msg = net::try_recv_msg(*link_.data);
    if (!msg.ok()) {
      // A vanished peer mid-run is a session error; surface it.
      return msg.status();
    }
    if (!msg.value().has_value()) return Status::Ok();
    Status s = handle_data_msg(*msg.value());
    if (!s.ok()) return s;
  }
}

Status CosimKernel::handle_data_msg(const net::Message& msg) {
  if (const auto* wr = std::get_if<net::DataWrite>(&msg)) {
    ++stats_.data_writes;
    return registry_.deliver_write(wr->address, wr->data);
  }
  if (const auto* rd = std::get_if<net::DataReadReq>(&msg)) {
    ++stats_.data_reads;
    auto data = registry_.serve_read(rd->address, rd->nbytes);
    if (!data.ok()) return data.status();
    return net::send_msg(*link_.data,
                         net::DataReadResp{rd->address,
                                           std::move(data).value()});
  }
  return Status{StatusCode::kInvalidArgument,
                strformat("unexpected {} on DATA port",
                          net::to_string(net::type_of(msg)))};
}

Status CosimKernel::sample_interrupts() {
  for (auto& watch : watches_) {
    const bool level = watch.line->read();
    if (level && !watch.prev) {
      ++stats_.interrupts_sent;
      Status s = net::send_msg(*link_.intr, net::IntRaise{watch.vector});
      if (!s.ok()) return s;
    }
    watch.prev = level;
  }
  return Status::Ok();
}

Status CosimKernel::sync_with_board() {
  ++stats_.syncs;
  Status s = net::send_msg(
      *link_.clock, net::ClockTick{cycle_, static_cast<u32>(config_.t_sync)});
  if (!s.ok()) return s;
  // Wait for the ack; keep the DATA port alive so a board thread blocked on
  // a device read mid-quantum still gets its response (deadlock freedom).
  for (;;) {
    auto ack = net::try_recv_msg(*link_.clock);
    if (!ack.ok()) return ack.status();
    if (ack.value().has_value()) {
      if (!std::holds_alternative<net::TimeAck>(*ack.value())) {
        return Status{StatusCode::kInternal,
                      strformat("expected TIME_ACK, got {}",
                                net::to_string(net::type_of(*ack.value())))};
      }
      ++stats_.acks_received;
      return Status::Ok();
    }
    Status data = service_data_port();
    if (!data.ok()) return data;
    std::this_thread::yield();
  }
}

Status CosimKernel::run_cycles(u64 cycles) {
  if (config_.timed && !handshaken_) {
    Status s = handshake();
    if (!s.ok()) return s;
  }
  for (u64 i = 0; i < cycles; ++i) {
    Status s = Status::Ok();
    if (config_.data_poll_interval <= 1 ||
        cycle_ % config_.data_poll_interval == 0) {
      s = service_data_port();
      if (!s.ok()) return s;
    }
    kernel_.run(config_.clock_period);  // one posedge + negedge
    ++cycle_;
    s = sample_interrupts();
    if (!s.ok()) return s;
    if (config_.timed && cycle_ % config_.t_sync == 0) {
      s = sync_with_board();
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

void CosimKernel::finish() {
  if (finished_) return;
  finished_ = true;
  if (config_.shutdown_on_finish && link_.clock) {
    (void)net::send_msg(*link_.clock, net::Shutdown{});
  }
}

}  // namespace vhp::cosim
