#include "vhp/cosim/cosim_kernel.hpp"

#include <thread>

#include "vhp/common/format.hpp"

namespace vhp::cosim {

Status CosimConfig::validate() const {
  if (timed && !sync.has_value() && t_sync == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "CosimConfig: t_sync must be > 0 in timed mode"};
  }
  if (sync.has_value()) {
    if (Status s = sync->validate(); !s.ok()) return s;
  }
  if (clock_period == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "CosimConfig: clock_period must be > 0"};
  }
  if (data_poll_interval == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "CosimConfig: data_poll_interval must be > 0"};
  }
  if (parallel_workers > 256) {
    return Status{StatusCode::kInvalidArgument,
                  "CosimConfig: parallel_workers must be <= 256"};
  }
  return Status::Ok();
}

CosimKernel::CosimKernel(net::CosimLink link, CosimConfig config,
                         obs::Hub* hub)
    : link_(std::move(link)), config_(config),
      config_status_(config.validate()),
      owned_hub_(hub != nullptr ? nullptr : new obs::Hub()),
      hub_(hub != nullptr ? hub : owned_hub_.get()),
      syncs_(hub_->metrics().counter("cosim.syncs")),
      data_writes_(hub_->metrics().counter("cosim.data_writes")),
      data_reads_(hub_->metrics().counter("cosim.data_reads")),
      interrupts_sent_(hub_->metrics().counter("cosim.interrupts_sent")),
      acks_received_(hub_->metrics().counter("cosim.acks_received")),
      lookahead_acks_(hub_->metrics().counter("cosim.lookahead_acks")),
      sync_rtt_ns_(hub_->metrics().histogram("cosim.sync_rtt_ns")),
      grant_cycles_(hub_->metrics().histogram("cosim.grant_cycles")),
      spans_(hub_->timeline().sink("cosim")),
      // Guard against a zero period before sim::Clock divides by it; the
      // invalid config is surfaced by run_cycles()/handshake().
      clock_(kernel_, "clk",
             config.clock_period == 0 ? sim::SimTime{1} : config.clock_period),
      policy_(config_.resolved_sync()) {
  if (!config_status_.ok()) {
    log_.warn("invalid config: {}", config_status_.to_string());
  }
  if (config_status_.ok() && config_.parallel_workers > 0) {
    kernel_.set_parallel(static_cast<unsigned>(config_.parallel_workers));
    // Parallel-kernel telemetry: island count, parallel delta cycles and
    // per-lane busy time land in every metrics dump. Registered only when
    // the parallel kernel is armed so serial runs keep their exact metric
    // key set.
    hub_->add_collector([this](obs::MetricsRegistry& m) {
      const auto ps = kernel_.parallel_stats();
      m.gauge("sim.islands").set(static_cast<i64>(ps.islands));
      m.gauge("sim.parallel_deltas").set(static_cast<i64>(ps.parallel_deltas));
      m.gauge("sim.repartitions").set(static_cast<i64>(ps.repartitions));
      for (std::size_t i = 0; i < ps.lanes.size(); ++i) {
        const auto tag = strformat("sim.worker{}", i);
        m.gauge(tag + ".islands_run")
            .set(static_cast<i64>(ps.lanes[i].islands_run));
        // Busy-time histogram: one sample per collection interval, so the
        // distribution shows how evaluation work spread across the lanes
        // over the run.
        auto& prev = lane_busy_collected_;
        if (prev.size() <= i) prev.resize(i + 1, 0);
        if (ps.lanes[i].busy_ns >= prev[i]) {
          m.histogram(tag + ".busy_ns")
              .record_ns(ps.lanes[i].busy_ns - prev[i]);
          prev[i] = ps.lanes[i].busy_ns;
        }
      }
    });
  }
  // Fixed mode reproduces the legacy cadence exactly: the first tick goes
  // out at `quantum`, every later one `quantum` after its predecessor.
  next_sync_ = std::max<u64>(1, policy_.node_quantum(0));
}

CosimKernel::~CosimKernel() { finish(); }

void CosimKernel::watch_interrupt(sim::BoolSignal& line, u32 vector) {
  watches_.push_back(IntWatch{&line, vector, line.read()});
}

Status CosimKernel::handshake(
    std::optional<std::chrono::milliseconds> timeout) {
  if (!config_status_.ok()) return config_status_;
  if (!config_.timed || handshaken_) return Status::Ok();
  // The board reports its initial freeze with a TIME_ACK; data traffic is
  // not expected before it (the device driver has nothing to talk to yet).
  auto msg = net::recv_msg(*link_.clock, timeout);
  if (!msg.ok()) return msg.status();
  const auto* ack = std::get_if<net::TimeAck>(&msg.value());
  if (ack == nullptr) {
    return Status{StatusCode::kInternal,
                  strformat("expected initial TIME_ACK, got {}",
                            net::to_string(net::type_of(msg.value())))};
  }
  note_ack(*ack);
  // The boot ack already carries a lookahead against a v2 board: a board
  // that sleeps through the first default quantum gets a longer first grant.
  next_sync_ = std::max<u64>(1, policy_.grant(0, 0, board_lookahead_));
  handshaken_ = true;
  log_.debug("handshake complete, board frozen at tick {}", ack->board_tick);
  return Status::Ok();
}

void CosimKernel::note_ack(const net::TimeAck& ack) {
  board_lookahead_ = ack.lookahead;
  if (ack.lookahead.has_value()) lookahead_acks_.inc();
}

Status CosimKernel::service_data_port() {
  for (;;) {
    auto msg = net::try_recv_msg(*link_.data);
    if (!msg.ok()) {
      // A vanished peer mid-run is a session error; surface it.
      return msg.status();
    }
    if (!msg.value().has_value()) return Status::Ok();
    Status s = handle_data_msg(*msg.value());
    if (!s.ok()) return s;
  }
}

Status CosimKernel::handle_data_msg(const net::Message& msg) {
  if (const auto* wr = std::get_if<net::DataWrite>(&msg)) {
    data_writes_.inc();
    if (hub_->tracer().enabled()) {
      hub_->tracer().instant("cosim.data_write", "cosim", wr->address,
                             "address");
    }
  } else if (const auto* rd = std::get_if<net::DataReadReq>(&msg)) {
    data_reads_.inc();
    if (hub_->tracer().enabled()) {
      hub_->tracer().instant("cosim.data_read", "cosim", rd->address,
                             "address");
    }
  }
  Status s = serve_data_message(registry_, *link_.data, msg);
  if (s.ok() && std::holds_alternative<net::DataReadReq>(msg)) {
    // The board thread is blocked on this response mid-quantum; a batched
    // DATA channel must not hold it to the next CLOCK boundary (no-op on
    // unbatched links).
    s = link_.data->flush();
  }
  return s;
}

Status CosimKernel::sample_interrupts() {
  for (auto& watch : watches_) {
    const bool level = watch.line->read();
    if (level && !watch.prev) {
      interrupts_sent_.inc();
      if (hub_->tracer().enabled()) {
        hub_->tracer().instant("cosim.int_raise", "cosim", watch.vector,
                               "vector");
      }
      Status s = net::send_msg(*link_.intr, net::IntRaise{watch.vector});
      if (!s.ok()) return s;
    }
    watch.prev = level;
  }
  return Status::Ok();
}

Status CosimKernel::send_tick() {
  syncs_.inc();
  obs::Tracer& tracer = hub_->tracer();
  sync_span_start_ = tracer.enabled() ? tracer.now_ns() : 0;
  // The grant is the cycles elapsed since the previous tick — in fixed mode
  // always the quantum, in adaptive mode whatever the last lookahead earned.
  const u64 elapsed = cycle_ - last_granted_;
  grant_cycles_.record_ns(elapsed);
  // Wire v3: stamp the round only when the timeline is armed, so default
  // runs keep the v1/v2 frame bytes (bit-exact recording parity).
  obs::Timeline& timeline = hub_->timeline();
  const bool timed_spans = timeline.enabled();
  net::ClockTick tick{cycle_, static_cast<u32>(elapsed)};
  if (timed_spans) tick.round = ++round_;
  // Batching flush rule (DESIGN.md §14): this quantum's DATA and INT
  // frames must cross before the grant they belong to (no-op on unbatched
  // links).
  if (Status s = link_.data->flush(); !s.ok()) return s;
  if (Status s = link_.intr->flush(); !s.ok()) return s;
  Status s = net::send_msg(*link_.clock, tick);
  if (!s.ok()) return s;
  tick_sent_ns_ = timed_spans ? timeline.now_ns() : 0;
  last_granted_ = cycle_;
  return Status::Ok();
}

Status CosimKernel::accept_ack(const net::Message& msg) {
  const auto* time_ack = std::get_if<net::TimeAck>(&msg);
  if (time_ack == nullptr) {
    return Status{StatusCode::kInternal,
                  strformat("expected TIME_ACK, got {}",
                            net::to_string(net::type_of(msg)))};
  }
  acks_received_.inc();
  note_ack(*time_ack);
  next_sync_ = cycle_ + policy_.grant(0, cycle_, board_lookahead_);
  obs::Timeline& timeline = hub_->timeline();
  if (timeline.enabled()) {
    const u64 now = timeline.now_ns();
    spans_.record({round_, 0, obs::SpanPhase::kNodeWait, tick_sent_ns_,
                   now, cycle_});
    spans_.record({round_, 0, obs::SpanPhase::kBarrier, tick_sent_ns_,
                   now, cycle_});
  }
  obs::Tracer& tracer = hub_->tracer();
  if (tracer.enabled()) {
    const u64 span_end = tracer.now_ns();
    sync_rtt_ns_.record_ns(span_end - sync_span_start_);
    tracer.complete("cosim.sync", "cosim", sync_span_start_, span_end,
                    cycle_, "cycle");
  }
  return Status::Ok();
}

Status CosimKernel::sync_with_board() {
  Status s = send_tick();
  if (!s.ok()) return s;
  // Wait for the ack; keep the DATA port alive so a board thread blocked on
  // a device read mid-quantum still gets its response (deadlock freedom).
  for (;;) {
    auto ack = net::try_recv_msg(*link_.clock);
    if (!ack.ok()) return ack.status();
    if (ack.value().has_value()) return accept_ack(*ack.value());
    Status data = service_data_port();
    if (!data.ok()) return data;
    std::this_thread::yield();
  }
}

Status CosimKernel::run_cycles(u64 cycles) {
  if (!config_status_.ok()) return config_status_;
  if (config_.timed && !handshaken_) {
    Status s = handshake();
    if (!s.ok()) return s;
  }
  obs::StallProfiler& profiler = hub_->profiler();
  using Bucket = obs::StallProfiler::Bucket;
  for (u64 i = 0; i < cycles; ++i) {
    Status s = Status::Ok();
    if (config_.data_poll_interval <= 1 ||
        cycle_ % config_.data_poll_interval == 0) {
      obs::StallProfiler::Timer timer(profiler, Bucket::kDataService);
      s = service_data_port();
      if (!s.ok()) return s;
    }
    {
      obs::StallProfiler::Timer timer(profiler, Bucket::kSimulate);
      kernel_.run(config_.clock_period);  // one posedge + negedge
    }
    ++cycle_;
    s = sample_interrupts();
    if (!s.ok()) return s;
    if (config_.timed && cycle_ == next_sync_) {
      obs::StallProfiler::Timer timer(profiler, Bucket::kAckWait);
      s = sync_with_board();
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

Status CosimKernel::pump(u64 max_cycles, u64* ran, bool* blocked) {
  *ran = 0;
  *blocked = false;
  if (!config_status_.ok()) return config_status_;
  if (config_.timed && !handshaken_) {
    // Non-blocking handshake: the board's initial freeze ack may not have
    // crossed the link yet.
    auto msg = net::try_recv_msg(*link_.clock);
    if (!msg.ok()) return msg.status();
    if (!msg.value().has_value()) {
      *blocked = true;
      return Status::Ok();
    }
    const auto* ack = std::get_if<net::TimeAck>(&*msg.value());
    if (ack == nullptr) {
      return Status{StatusCode::kInternal,
                    strformat("expected initial TIME_ACK, got {}",
                              net::to_string(net::type_of(*msg.value())))};
    }
    note_ack(*ack);
    next_sync_ = std::max<u64>(1, policy_.grant(0, 0, board_lookahead_));
    handshaken_ = true;
    log_.debug("handshake complete, board frozen at tick {}", ack->board_tick);
  }
  obs::StallProfiler& profiler = hub_->profiler();
  using Bucket = obs::StallProfiler::Bucket;
  for (;;) {
    if (awaiting_ack_) {
      // A board thread blocked mid-quantum on a device read still gets its
      // response while we wait (same deadlock-freedom rule as the blocking
      // path).
      Status data = service_data_port();
      if (!data.ok()) return data;
      auto ack = net::try_recv_msg(*link_.clock);
      if (!ack.ok()) return ack.status();
      if (!ack.value().has_value()) {
        *blocked = true;
        return Status::Ok();
      }
      Status s = accept_ack(*ack.value());
      if (!s.ok()) return s;
      awaiting_ack_ = false;
    }
    // The trailing-ack check sits above this exit so pump(N) leaves the
    // same protocol state as run_cycles(N): no outstanding tick.
    if (*ran >= max_cycles) return Status::Ok();
    Status s = Status::Ok();
    if (config_.data_poll_interval <= 1 ||
        cycle_ % config_.data_poll_interval == 0) {
      obs::StallProfiler::Timer timer(profiler, Bucket::kDataService);
      s = service_data_port();
      if (!s.ok()) return s;
    }
    {
      obs::StallProfiler::Timer timer(profiler, Bucket::kSimulate);
      kernel_.run(config_.clock_period);  // one posedge + negedge
    }
    ++cycle_;
    ++*ran;
    s = sample_interrupts();
    if (!s.ok()) return s;
    if (config_.timed && cycle_ == next_sync_) {
      s = send_tick();
      if (!s.ok()) return s;
      awaiting_ack_ = true;
    }
  }
}

std::vector<int> CosimKernel::readable_fds() {
  std::vector<int> fds;
  for (net::Channel* ch :
       {link_.data.get(), link_.intr.get(), link_.clock.get()}) {
    if (ch == nullptr) continue;
    const int fd = ch->readable_fd();
    if (fd >= 0) fds.push_back(fd);
  }
  return fds;
}

void CosimKernel::finish() {
  if (finished_) return;
  finished_ = true;
  // Push out anything a batched link still holds — the board may need the
  // last DATA/INT frames to make progress before it can see the SHUTDOWN.
  if (link_.data) (void)link_.data->flush();
  if (link_.intr) (void)link_.intr->flush();
  if (config_.shutdown_on_finish && link_.clock) {
    (void)net::send_msg(*link_.clock, net::Shutdown{});
  }
}

}  // namespace vhp::cosim
