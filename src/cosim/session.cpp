#include "vhp/cosim/session.hpp"

#include <stdexcept>
#include <thread>

#include "vhp/net/inproc.hpp"
#include "vhp/net/instrumented.hpp"
#include "vhp/net/latency.hpp"
#include "vhp/net/tcp.hpp"

namespace vhp::cosim {

Status SessionConfig::validate() const {
  Status s = cosim.validate();
  if (!s.ok()) return s;
  // Consistency: an untimed kernel must face a free-running board, or the
  // board would freeze forever waiting for grants.
  if (cosim.timed == board.free_running) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: cosim.timed and board.free_running must be "
                  "opposite"};
  }
  if (board.rtos.cycles_per_tick == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.rtos.cycles_per_tick must be > 0"};
  }
  if (board.rtos.timeslice_ticks == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.rtos.timeslice_ticks must be > 0"};
  }
  if (board.cycles_per_sim_cycle == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.cycles_per_sim_cycle must be > 0"};
  }
  return Status::Ok();
}

SessionConfig SessionConfigBuilder::build_or_throw() const {
  Status s = config_.validate();
  if (!s.ok()) throw std::invalid_argument(s.to_string());
  return config_;
}

CosimSession::CosimSession(SessionConfig config) {
  Status valid = config.validate();
  if (!valid.ok()) throw std::invalid_argument(valid.to_string());
  hub_ = std::make_unique<obs::Hub>(config.obs);
  net::LinkPair pair;
  if (config.transport == TransportKind::kInProc) {
    pair = net::make_inproc_link_pair();
  } else {
    net::TcpLinkListener listener;
    const auto ports = listener.ports();
    Result<net::CosimLink> board_link =
        Status{StatusCode::kInternal, "unset"};
    std::thread connector(
        [&] { board_link = net::connect_tcp_link(ports); });
    auto hw_link = listener.accept_link();
    connector.join();
    if (!hw_link.ok()) {
      throw std::runtime_error("TCP accept failed: " +
                               hw_link.status().to_string());
    }
    if (!board_link.ok()) {
      throw std::runtime_error("TCP connect failed: " +
                               board_link.status().to_string());
    }
    pair.hw = std::move(hw_link).value();
    pair.board = std::move(board_link).value();
  }
  pair = net::emulate_latency(std::move(pair), config.link_emulation);
  if (hub_->enabled()) {
    // Per-frame link accounting costs a virtual hop per operation; wrap the
    // transports only when observability is on.
    pair.hw = net::instrument_link(std::move(pair.hw), *hub_, "hw");
    pair.board = net::instrument_link(std::move(pair.board), *hub_, "board");
  }
  hw_ = std::make_unique<CosimKernel>(std::move(pair.hw), config.cosim,
                                      hub_.get());
  host_ = std::make_unique<board::BoardHost>(config.board,
                                             std::move(pair.board),
                                             hub_.get());
}

CosimSession::~CosimSession() { finish(); }

void CosimSession::start_board() {
  if (started_) return;
  started_ = true;
  host_->start();
}

void CosimSession::finish() {
  if (finished_) return;
  finished_ = true;
  hw_->finish();  // SHUTDOWN -> board run loop exits
  if (started_) host_->join();
}

}  // namespace vhp::cosim
