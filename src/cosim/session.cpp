#include "vhp/cosim/session.hpp"

#include <csignal>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "vhp/common/format.hpp"
#include "vhp/common/log.hpp"
#include "vhp/fault/inject.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/instrumented.hpp"
#include "vhp/net/shm_ring.hpp"
#include "vhp/net/latency.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::cosim {

namespace {

const Logger& session_log() {
  static const Logger log{"cosim"};
  return log;
}

// The signal handler needs a session to flush; track the most recently
// constructed live one. A plain atomic pointer: sessions unregister in
// their destructor, and the handler only ever reads it once on the way down.
std::atomic<CosimSession*> g_postmortem_session{nullptr};

extern "C" void postmortem_signal_handler(int signum) {
  if (CosimSession* session = g_postmortem_session.load()) {
    session->dump_postmortem(strformat("signal {}", signum));
  }
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}

obs::Recording snapshot_recording(obs::FlightRecorder& recorder,
                                  std::map<std::string, std::string> tags) {
  obs::Recording rec;
  rec.meta.side = recorder.side();
  rec.meta.tags = std::move(tags);
  rec.frames = recorder.snapshot();
  return rec;
}

}  // namespace

Status SessionConfig::validate() const {
  Status s = cosim.validate();
  if (!s.ok()) return s;
  // Consistency: an untimed kernel must face a free-running board, or the
  // board would freeze forever waiting for grants.
  if (cosim.timed == board.free_running) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: cosim.timed and board.free_running must be "
                  "opposite"};
  }
  if (board.rtos.cycles_per_tick == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.rtos.cycles_per_tick must be > 0"};
  }
  if (board.rtos.timeslice_ticks == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.rtos.timeslice_ticks must be > 0"};
  }
  if (board.cycles_per_sim_cycle == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.cycles_per_sim_cycle must be > 0"};
  }
  if (board.rtos.cores == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: board.rtos.cores must be >= 1"};
  }
  if (board.rtos.cores > 1 && !board.memory.has_value()) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: cores(M > 1) requires a memory hierarchy "
                  "(pair with SessionConfigBuilder::memory)"};
  }
  if (board.memory.has_value()) {
    if (s = board.memory->validate(); !s.ok()) return s;
  }
  if (s = fault_plan.validate(); !s.ok()) return s;
  if (fault_plan.armed() && !fault_plan.lossless() && !recovery.enabled) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: the fault plan can lose or mutate frames; "
                  "enable the recovery layer (recovery.enabled)"};
  }
  if (batch_frames && !cosim.timed) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: batch_frames requires timed mode — a "
                  "free-running board has no quantum boundary to flush at"};
  }
  if (batch_frames && recovery.enabled) {
    return Status{StatusCode::kInvalidArgument,
                  "SessionConfig: batch_frames is incompatible with the "
                  "recovery layer — retransmission acks would sit in the "
                  "peer's batch buffer until its next flush point, so the "
                  "recovery flush would spin against held acks"};
  }
  return Status::Ok();
}

SessionConfig SessionConfigBuilder::build_or_throw() const {
  Status s = config_.validate();
  if (!s.ok()) throw std::invalid_argument(s.to_string());
  return config_;
}

CosimSession::CosimSession(SessionConfig config) : config_(std::move(config)) {
  Status valid = config_.validate();
  if (!valid.ok()) throw std::invalid_argument(valid.to_string());
  // Adaptive mode needs the board's acks to carry its lookahead; the
  // board-side lookahead is conservative by construction, so opting the
  // board in whenever the master adapts is always correct.
  if (config_.cosim.timed && config_.cosim.resolved_sync().is_adaptive()) {
    config_.board.advertise_lookahead = true;
  }
  hub_ = std::make_unique<obs::Hub>(config_.obs);
  net::LinkPair pair;
  if (config_.transport == TransportKind::kInProc) {
    pair = net::make_inproc_link_pair();
  } else if (config_.transport == TransportKind::kShm) {
    pair = net::make_shm_link_pair();
  } else {
    net::TcpLinkListener listener;
    const auto ports = listener.ports();
    Result<net::CosimLink> board_link =
        Status{StatusCode::kInternal, "unset"};
    std::thread connector(
        [&] { board_link = net::connect_tcp_link(ports); });
    auto hw_link = listener.accept_link();
    connector.join();
    if (!hw_link.ok()) {
      throw std::runtime_error("TCP accept failed: " +
                               hw_link.status().to_string());
    }
    if (!board_link.ok()) {
      throw std::runtime_error("TCP connect failed: " +
                               board_link.status().to_string());
    }
    pair.hw = std::move(hw_link).value();
    pair.board = std::move(board_link).value();
  }
  // Batching wraps the raw transport innermost (below latency / fault /
  // recording), so every layer above sees the unbatched frame sequence
  // and the recording oracle holds.
  if (config_.batch_frames) {
    pair.hw = net::batch_link(std::move(pair.hw), true, config_.batching,
                              hub_.get(), "hw");
    pair.board = net::batch_link(std::move(pair.board), true,
                                 config_.batching, hub_.get(), "board");
  }
  pair = net::emulate_latency(std::move(pair), config_.link_emulation);
  // Canonical decorator stack (innermost first): transport -> latency ->
  // inject (hw side only) -> reliable (both sides) -> instrument -> record.
  // The recorder sits above the recovery layer, so it only ever sees
  // repaired traffic — a faulted run's recording matches the clean one.
  schedule_ = fault::compile(config_.fault_plan, hub_.get());
  if (schedule_) {
    schedule_->set_observer([hub = hub_.get()](const fault::FaultEvent& e) {
      hub->hw_recorder().note_fault(e.port, e.dir, fault::to_string(e.kind),
                                    e.node);
    });
    pair.hw = fault::inject_link(std::move(pair.hw), schedule_);
  }
  if (config_.recovery.enabled) {
    pair.hw = fault::reliable_link(std::move(pair.hw), config_.recovery,
                                   hub_.get(), "hw");
    pair.board = fault::reliable_link(std::move(pair.board), config_.recovery,
                                      hub_.get(), "board");
  }
  if (hub_->enabled()) {
    // Per-frame link accounting costs a virtual hop per operation; wrap the
    // transports only when observability is on.
    pair.hw = net::instrument_link(std::move(pair.hw), *hub_, "hw");
    pair.board = net::instrument_link(std::move(pair.board), *hub_, "board");
  }
  // The flight recorder wraps innermost-last so it sees exactly the frames
  // that cross the transport. When recording is off, record_link is an
  // identity — the transports stay unwrapped.
  pair.hw = net::record_link(std::move(pair.hw), hub_->hw_recorder());
  pair.board = net::record_link(std::move(pair.board),
                                hub_->board_recorder());
  hw_ = std::make_unique<CosimKernel>(std::move(pair.hw), config_.cosim,
                                      hub_.get());
  host_ = std::make_unique<board::BoardHost>(config_.board,
                                             std::move(pair.board),
                                             hub_.get());
  // Virtual-time stamps: each recorder is driven from its own side's
  // thread, so it reads that side's clock only (the other field stays 0).
  hub_->hw_recorder().set_hw_time_source(
      [kernel = hw_.get()] { return kernel->cycle(); });
  hub_->board_recorder().set_board_time_source(
      [board = &host_->board()] { return board->kernel().tick_count().value(); });
  g_postmortem_session.store(this);
}

CosimSession::~CosimSession() {
  CosimSession* self = this;
  g_postmortem_session.compare_exchange_strong(self, nullptr);
  finish();
}

Status CosimSession::run_cycles(u64 cycles) {
  Status s = hw_->run_cycles(cycles);
  if (!s.ok()) {
    dump_postmortem(s.to_string());
  }
  return s;
}

std::map<std::string, std::string> CosimSession::config_tags() const {
  // Config echo: enough to rebuild a matching lone-side configuration for
  // replay (net::ReplaySession) without the original command line.
  std::map<std::string, std::string> tags;
  const SyncPolicy policy = config_.cosim.resolved_sync();
  tags["t_sync"] = strformat("{}", policy.quantum());
  tags["adaptive"] = policy.is_adaptive() ? "1" : "0";
  tags["data_poll_interval"] =
      strformat("{}", config_.cosim.data_poll_interval);
  tags["timed"] = config_.cosim.timed ? "1" : "0";
  tags["cycles_per_tick"] =
      strformat("{}", config_.board.rtos.cycles_per_tick);
  tags["timeslice_ticks"] =
      strformat("{}", config_.board.rtos.timeslice_ticks);
  tags["cycles_per_sim_cycle"] =
      strformat("{}", config_.board.cycles_per_sim_cycle);
  return tags;
}

Status CosimSession::write_recordings(
    const std::string& prefix, const std::map<std::string, std::string>& tags) {
  if (!config_.obs.record.enabled) {
    return Status{StatusCode::kFailedPrecondition,
                  "flight recorder is disabled (SessionConfig::obs.record)"};
  }
  std::map<std::string, std::string> all = config_tags();
  for (const auto& [key, value] : tags) all[key] = value;
  for (obs::FlightRecorder* recorder :
       {&hub_->hw_recorder(), &hub_->board_recorder()}) {
    const std::string path = prefix + "." + recorder->side() + ".vhprec";
    Status s = obs::write_recording(path,
                                    snapshot_recording(*recorder, all),
                                    obs::RecordingFormat::kBinary);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void CosimSession::dump_postmortem(const std::string& reason) {
  if (!config_.obs.record.enabled || config_.postmortem_prefix.empty()) {
    return;
  }
  std::map<std::string, std::string> tags = config_tags();
  tags["reason"] = reason;
  for (obs::FlightRecorder* recorder :
       {&hub_->hw_recorder(), &hub_->board_recorder()}) {
    const std::string path =
        config_.postmortem_prefix + "." + recorder->side() + ".jsonl";
    Status s = obs::write_recording(path,
                                    snapshot_recording(*recorder, tags),
                                    obs::RecordingFormat::kJsonl);
    if (s.ok()) {
      session_log().warn("post-mortem: {} frames -> {} ({})",
                         recorder->recorded(), path, reason);
    } else {
      session_log().error("post-mortem dump failed: {}", s.to_string());
    }
  }
}

void CosimSession::install_postmortem_signal_handler() {
  std::signal(SIGINT, &postmortem_signal_handler);
  std::signal(SIGTERM, &postmortem_signal_handler);
}

void CosimSession::start_board() {
  if (started_) return;
  started_ = true;
  host_->start();
}

void CosimSession::finish() {
  if (finished_) return;
  finished_ = true;
  hw_->finish();  // SHUTDOWN -> board run loop exits
  if (started_) host_->join();
}

}  // namespace vhp::cosim
