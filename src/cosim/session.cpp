#include "vhp/cosim/session.hpp"

#include <stdexcept>
#include <thread>

#include "vhp/net/inproc.hpp"
#include "vhp/net/latency.hpp"
#include "vhp/net/tcp.hpp"

namespace vhp::cosim {

CosimSession::CosimSession(SessionConfig config) {
  // Consistency: an untimed kernel must face a free-running board, or the
  // board would freeze forever waiting for grants.
  if (config.cosim.timed == config.board.free_running) {
    throw std::invalid_argument(
        "SessionConfig: cosim.timed and board.free_running must be opposite");
  }
  net::LinkPair pair;
  if (config.transport == TransportKind::kInProc) {
    pair = net::make_inproc_link_pair();
  } else {
    net::TcpLinkListener listener;
    const auto ports = listener.ports();
    Result<net::CosimLink> board_link =
        Status{StatusCode::kInternal, "unset"};
    std::thread connector(
        [&] { board_link = net::connect_tcp_link(ports); });
    auto hw_link = listener.accept_link();
    connector.join();
    if (!hw_link.ok()) {
      throw std::runtime_error("TCP accept failed: " +
                               hw_link.status().to_string());
    }
    if (!board_link.ok()) {
      throw std::runtime_error("TCP connect failed: " +
                               board_link.status().to_string());
    }
    pair.hw = std::move(hw_link).value();
    pair.board = std::move(board_link).value();
  }
  pair = net::emulate_latency(std::move(pair), config.link_emulation);
  hw_ = std::make_unique<CosimKernel>(std::move(pair.hw), config.cosim);
  host_ = std::make_unique<board::BoardHost>(config.board,
                                             std::move(pair.board));
}

CosimSession::~CosimSession() { finish(); }

void CosimSession::start_board() {
  if (started_) return;
  started_ = true;
  host_->start();
}

void CosimSession::finish() {
  if (finished_) return;
  finished_ = true;
  hw_->finish();  // SHUTDOWN -> board run loop exits
  if (started_) host_->join();
}

}  // namespace vhp::cosim
