#include "vhp/cosim/driver_port.hpp"

#include "vhp/common/format.hpp"

namespace vhp::cosim {

void DriverRegistry::register_write(u32 address, WriteHandler handler) {
  endpoints_[address].write = std::move(handler);
}

void DriverRegistry::register_read(u32 address, ReadHandler handler) {
  endpoints_[address].read = std::move(handler);
}

void DriverRegistry::unregister(u32 address) { endpoints_.erase(address); }

Status DriverRegistry::deliver_write(u32 address, std::span<const u8> data) {
  auto it = endpoints_.find(address);
  if (it == endpoints_.end() || !it->second.write) {
    return Status{StatusCode::kNotFound,
                  strformat("driver write to unmapped address {}", address)};
  }
  ++writes_;
  return it->second.write(data);
}

Result<Bytes> DriverRegistry::serve_read(u32 address, u32 max_bytes) {
  auto it = endpoints_.find(address);
  if (it == endpoints_.end() || !it->second.read) {
    return Status{StatusCode::kNotFound,
                  strformat("driver read of unmapped address {}", address)};
  }
  ++reads_;
  Bytes data = it->second.read();
  if (data.size() > max_bytes) data.resize(max_bytes);
  return data;
}

Status serve_data_message(DriverRegistry& registry, net::Channel& reply,
                          const net::Message& msg) {
  if (const auto* wr = std::get_if<net::DataWrite>(&msg)) {
    return registry.deliver_write(wr->address, wr->data);
  }
  if (const auto* rd = std::get_if<net::DataReadReq>(&msg)) {
    auto data = registry.serve_read(rd->address, rd->nbytes);
    if (!data.ok()) return data.status();
    return net::send_msg(
        reply, net::DataReadResp{rd->address, std::move(data).value()});
  }
  return Status{StatusCode::kInvalidArgument,
                strformat("unexpected {} on DATA port",
                          net::to_string(net::type_of(msg)))};
}

}  // namespace vhp::cosim
