#include "vhp/mem/banked_memory.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace vhp::mem {

BankedMemory::BankedMemory(BankedMemoryConfig config)
    : config_(config),
      stride_shift_(static_cast<u32>(std::countr_zero(config.stride_bytes))),
      busy_until_(config.banks, 0),
      per_bank_requests_(config.banks, 0),
      per_bank_conflicts_(config.banks, 0) {
  assert(config.validate().ok());
}

BankAccess BankedMemory::request(u64 addr, u64 now) {
  const u32 bank = bank_of(addr);
  ++requests_;
  ++per_bank_requests_[bank];

  BankAccess access;
  access.bank = bank;
  const u64 start = std::max(now, busy_until_[bank]);
  access.wait_cycles = start - now;
  if (access.wait_cycles > 0) {
    ++conflicts_;
    ++per_bank_conflicts_[bank];
    conflict_wait_ += access.wait_cycles;
  }
  busy_until_[bank] = start + config_.busy_cycles;
  access.complete_at = start + config_.access_cycles;
  return access;
}

}  // namespace vhp::mem
