#include "vhp/mem/system.hpp"

#include <cassert>

#include "vhp/common/format.hpp"

namespace vhp::mem {

CorePort::CorePort(MemorySystem& system, u32 core, const MemConfig& config,
                   obs::Hub& hub)
    : system_(&system), core_(core),
      icache_(std::make_unique<Cache>(config.icache)),
      dcache_(std::make_unique<Cache>(config.dcache)),
      icache_hits_(
          hub.metrics().counter(strformat("mem.core{}.icache_hits", core))),
      icache_misses_(
          hub.metrics().counter(strformat("mem.core{}.icache_misses", core))),
      dcache_hits_(
          hub.metrics().counter(strformat("mem.core{}.dcache_hits", core))),
      dcache_misses_(
          hub.metrics().counter(strformat("mem.core{}.dcache_misses", core))) {
}

u64 CorePort::miss_cycles(u64 fill_addr, u64 issued_at) {
  const InterconnectConfig& ic = system_->config_.interconnect;
  const BankAccess bank =
      system_->banked_.request(fill_addr, issued_at + ic.hop_cycles);
  if (bank.wait_cycles > 0) {
    system_->bank_conflicts_.inc();
    system_->bank_conflict_wait_.record_ns(bank.wait_cycles);
  }
  // Completion as seen by the core: request hop is inside complete_at's
  // base; add the return hop.
  return (bank.complete_at + ic.hop_cycles) - issued_at;
}

u64 CorePort::fetch(u64 addr, u64 now) {
  const CacheAccess a = icache_->access(addr);
  if (a.hit) {
    icache_hits_.inc();
    return system_->config_.icache.hit_cycles;
  }
  icache_misses_.inc();
  const u64 penalty = system_->config_.icache.miss_penalty_cycles;
  return system_->config_.icache.hit_cycles + penalty +
         miss_cycles(a.fill_addr, now + penalty);
}

u64 CorePort::data_access(u64 addr, bool is_store, u64 now) {
  (void)is_store;  // write-allocate: stores time exactly like loads
  const CacheAccess a = dcache_->access(addr);
  if (a.hit) {
    dcache_hits_.inc();
    return system_->config_.dcache.hit_cycles;
  }
  dcache_misses_.inc();
  const u64 penalty = system_->config_.dcache.miss_penalty_cycles;
  return system_->config_.dcache.hit_cycles + penalty +
         miss_cycles(a.fill_addr, now + penalty);
}

MemorySystem::MemorySystem(MemConfig config, u32 cores, obs::Hub* hub)
    : config_(config),
      owned_hub_(hub != nullptr ? nullptr : new obs::Hub()),
      hub_(hub != nullptr ? hub : owned_hub_.get()),
      banked_(config.memory),
      bank_conflicts_(hub_->metrics().counter("mem.bank_conflicts")),
      bank_conflict_wait_(
          hub_->metrics().histogram("mem.bank_conflict_wait_cycles")) {
  assert(config.validate().ok());
  assert(cores > 0);
  ports_.reserve(cores);
  for (u32 c = 0; c < cores; ++c) {
    ports_.emplace_back(new CorePort(*this, c, config_, *hub_));
  }
  // Per-bank totals and per-core pipeline stalls are plain u64s on the
  // board thread; snapshot them into gauges at dump time (exact once the
  // board has quiesced, same contract as the RTOS kernel totals).
  hub_->add_collector([this](obs::MetricsRegistry& m) {
    m.gauge("mem.requests").set(static_cast<i64>(banked_.requests()));
    for (u32 b = 0; b < banked_.config().banks; ++b) {
      m.gauge(strformat("mem.bank{}.requests", b))
          .set(static_cast<i64>(banked_.bank_requests(b)));
      m.gauge(strformat("mem.bank{}.conflicts", b))
          .set(static_cast<i64>(banked_.bank_conflicts(b)));
    }
    for (const auto& port : ports_) {
      const PipelineStats& ps = port->pipeline().stats();
      const u32 c = port->core();
      m.gauge(strformat("mem.core{}.instructions", c))
          .set(static_cast<i64>(ps.instructions));
      m.gauge(strformat("mem.core{}.busy_cycles", c))
          .set(static_cast<i64>(ps.total_cycles));
      m.gauge(strformat("mem.core{}.fetch_stall_cycles", c))
          .set(static_cast<i64>(ps.fetch_stall_cycles));
      m.gauge(strformat("mem.core{}.data_stall_cycles", c))
          .set(static_cast<i64>(ps.data_stall_cycles));
    }
  });
}

MemorySystem::~MemorySystem() = default;

}  // namespace vhp::mem
