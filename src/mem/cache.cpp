#include "vhp/mem/cache.hpp"

#include <bit>
#include <cassert>

namespace vhp::mem {

Cache::Cache(CacheConfig config)
    : config_(config),
      line_shift_(static_cast<u32>(std::countr_zero(config.line_bytes))),
      set_mask_(config.sets - 1),
      ways_(static_cast<std::size_t>(config.sets) * config.ways) {
  assert(config.validate("cache").ok());
}

CacheAccess Cache::access(u64 addr) {
  const u64 line = addr >> line_shift_;
  const u32 set = static_cast<u32>(line) & set_mask_;
  const u64 tag = line >> std::countr_zero(config_.sets);
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.ways];
  ++use_clock_;

  Way* victim = base;
  for (u32 w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = use_clock_;
      ++hits_;
      return CacheAccess{true, 0};
    }
    // Victim preference: first invalid way, else least recently used.
    if (!way.valid) {
      if (victim->valid) victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  ++misses_;
  if (victim->valid) ++evictions_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = use_clock_;
  return CacheAccess{false, line << line_shift_};
}

void Cache::invalidate_all() {
  for (Way& way : ways_) way = Way{};
}

}  // namespace vhp::mem
