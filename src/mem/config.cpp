#include "vhp/mem/config.hpp"

#include <bit>

#include "vhp/common/format.hpp"

namespace vhp::mem {

namespace {

bool pow2(u32 v) { return v != 0 && std::has_single_bit(v); }

}  // namespace

Status CacheConfig::validate(const char* what) const {
  if (line_bytes < 4 || !pow2(line_bytes)) {
    return Status{StatusCode::kInvalidArgument,
                  strformat("MemConfig: {}.line_bytes must be a power of two "
                            ">= 4 (got {})",
                            what, line_bytes)};
  }
  if (ways == 0) {
    return Status{StatusCode::kInvalidArgument,
                  strformat("MemConfig: {}.ways must be > 0", what)};
  }
  if (!pow2(sets)) {
    return Status{StatusCode::kInvalidArgument,
                  strformat("MemConfig: {}.sets must be a power of two "
                            ">= 1 (got {})",
                            what, sets)};
  }
  if (hit_cycles == 0) {
    return Status{StatusCode::kInvalidArgument,
                  strformat("MemConfig: {}.hit_cycles must be > 0", what)};
  }
  return Status::Ok();
}

Status BankedMemoryConfig::validate() const {
  if (banks == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "MemConfig: memory.banks must be > 0"};
  }
  if (stride_bytes < 4 || !pow2(stride_bytes)) {
    return Status{StatusCode::kInvalidArgument,
                  strformat("MemConfig: memory.stride_bytes must be a power "
                            "of two >= 4 (got {})",
                            stride_bytes)};
  }
  if (access_cycles == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "MemConfig: memory.access_cycles must be > 0"};
  }
  return Status::Ok();
}

Status MemConfig::validate() const {
  if (Status s = icache.validate("icache"); !s.ok()) return s;
  if (Status s = dcache.validate("dcache"); !s.ok()) return s;
  if (Status s = memory.validate(); !s.ok()) return s;
  return Status::Ok();
}

}  // namespace vhp::mem
