#include "vhp/fabric/sync_coordinator.hpp"

#include <poll.h>

#include <algorithm>
#include <thread>

#include "vhp/common/format.hpp"

namespace vhp::fabric {

Status SyncConfig::validate(std::size_t n_nodes) const {
  if (n_nodes == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SyncConfig: at least one node required"};
  }
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (quantum(i) == 0) {
      return Status{StatusCode::kInvalidArgument,
                    strformat("SyncConfig: node {} quantum is 0", i)};
    }
  }
  if (evict_after_misses > 0 && watchdog.count() == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "SyncConfig: eviction needs a nonzero watchdog"};
  }
  return Status::Ok();
}

cosim::SyncPolicy SyncConfig::to_policy() const {
  cosim::SyncPolicy policy;
  policy.quantum(t_sync).watchdog(watchdog).evict_after(evict_after_misses);
  for (std::size_t i = 0; i < t_sync_overrides.size(); ++i) {
    if (t_sync_overrides[i] != 0) policy.node_quantum(i, t_sync_overrides[i]);
  }
  return policy;
}

namespace {

/// Legacy view of a policy, backing SyncCoordinator::config().
SyncConfig mirror_config(const cosim::SyncPolicy& policy) {
  SyncConfig config;
  config.t_sync = policy.quantum();
  config.t_sync_overrides = policy.overrides();
  config.watchdog = policy.watchdog();
  config.evict_after_misses = policy.evict_after_misses();
  return config;
}

}  // namespace

SyncCoordinator::SyncCoordinator(cosim::SyncPolicy policy,
                                 std::vector<net::Channel*> clocks,
                                 std::vector<std::string> names,
                                 obs::Hub* hub)
    : policy_(std::move(policy)),
      config_(mirror_config(policy_)),
      config_status_(policy_.validate(clocks.size())),
      owned_hub_(hub != nullptr ? nullptr : new obs::Hub()),
      hub_(hub != nullptr ? hub : owned_hub_.get()),
      barriers_(hub_->metrics().counter("fabric.barriers")),
      ticks_sent_(hub_->metrics().counter("fabric.ticks_sent")),
      acks_received_(hub_->metrics().counter("fabric.acks_received")),
      evictions_(hub_->metrics().counter("fabric.node_evicted")),
      rejoins_(hub_->metrics().counter("fabric.node_rejoined")),
      lookahead_acks_(hub_->metrics().counter("fabric.lookahead_acks")),
      lookahead_unbounded_(
          hub_->metrics().counter("fabric.lookahead_unbounded")),
      barrier_wait_ns_(hub_->metrics().histogram("fabric.barrier_wait_ns")),
      timeline_(hub_->timeline()),
      spans_(timeline_.sink("fabric")) {
  if (!config_status_.ok()) {
    log_.warn("invalid config: {}", config_status_.to_string());
  }
  nodes_.reserve(clocks.size());
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    std::string name =
        i < names.size() && !names[i].empty() ? names[i]
                                              : strformat("node{}", i);
    const u64 quantum = std::max<u64>(1, policy_.node_quantum(i));
    nodes_.push_back(Node{
        clocks[i], name, quantum, 0, quantum, std::nullopt,
        hub_->metrics().counter("fabric." + name + ".acks"),
        hub_->metrics().histogram("fabric." + name + ".grant_cycles")});
  }
}

SyncCoordinator::SyncCoordinator(const SyncConfig& config,
                                 std::vector<net::Channel*> clocks,
                                 std::vector<std::string> names,
                                 obs::Hub* hub)
    : SyncCoordinator(config.to_policy(), std::move(clocks), std::move(names),
                      hub) {}

Status SyncCoordinator::handshake() {
  if (!config_status_.ok()) return config_status_;
  if (handshaken_) return Status::Ok();
  std::vector<std::size_t> pending(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) pending[i] = i;
  Status s = gather(std::move(pending), {});
  if (!s.ok()) return s;
  // The boot acks are the first chance to adapt: a node that already knows
  // it sleeps through the first default quantum gets a longer first grant.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (node.alive) {
      node.next_due = std::max<u64>(1, policy_.grant(i, 0, node.lookahead));
    }
  }
  handshaken_ = true;
  log_.debug("handshake complete, {} nodes frozen", nodes_.size());
  return Status::Ok();
}

u64 SyncCoordinator::next_due() const {
  u64 due = ~u64{0};
  for (const Node& node : nodes_) {
    if (node.alive) due = std::min(due, node.next_due);
  }
  return due;
}

void SyncCoordinator::note_lookahead(const std::optional<u64>& lookahead) {
  if (!lookahead.has_value()) return;
  lookahead_acks_.inc();
  if (*lookahead == net::kLookaheadUnbounded) lookahead_unbounded_.inc();
}

std::size_t SyncCoordinator::alive_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) n += node.alive ? 1 : 0;
  return n;
}

void SyncCoordinator::evict_node(std::size_t index, std::string_view why) {
  Node& node = nodes_[index];
  node.alive = false;
  node.lookahead.reset();  // a dead node's promise must not shape grants
  evictions_.inc();
  hub_->metrics().counter("fabric." + node.name + ".evicted").inc();
  hub_->tracer().instant("fabric.node_evicted", "fabric", index, "node");
  log_.warn("evicting {} (node {}): {}", node.name, index, why);
}

Status SyncCoordinator::rejoin(std::size_t index, u64 cycle) {
  if (!config_status_.ok()) return config_status_;
  if (index >= nodes_.size()) {
    return Status{StatusCode::kOutOfRange,
                  strformat("fabric: rejoin of unknown node {}", index)};
  }
  Node& node = nodes_[index];
  if (node.alive) {
    return Status{StatusCode::kFailedPrecondition,
                  strformat("fabric: {} is not evicted", node.name)};
  }
  // The returning party announces itself frozen with a TIME_ACK, exactly
  // like the boot handshake. Any ack counts — a stale one queued before the
  // eviction only means the node had already checked in.
  const auto timeout = config_.watchdog.count() > 0
                           ? std::optional{config_.watchdog}
                           : std::nullopt;
  auto ack = net::recv_msg(*node.clock, timeout);
  if (!ack.ok()) {
    return Status{ack.status().code(),
                  strformat("fabric: rejoin of {} failed: {}", node.name,
                            ack.status().message())};
  }
  const auto* time_ack = std::get_if<net::TimeAck>(&ack.value());
  if (time_ack == nullptr) {
    return Status{StatusCode::kInternal,
                  strformat("fabric: rejoin of {} expected TIME_ACK, got {}",
                            node.name,
                            net::to_string(net::type_of(ack.value())))};
  }
  node.alive = true;
  node.missed = 0;
  node.last_granted = cycle;
  // Re-base from the returning ack's lookahead (fixed mode: one quantum
  // out, as before). A stale pre-eviction promise is gone — evict_node
  // cleared it — so only this fresh ack shapes the next grant.
  node.lookahead = time_ack->lookahead;
  note_lookahead(node.lookahead);
  node.next_due = cycle + policy_.grant(index, cycle, node.lookahead);
  node.acks.inc();
  acks_received_.inc();
  rejoins_.inc();
  hub_->tracer().instant("fabric.node_rejoined", "fabric", index, "node");
  log_.info("{} (node {}) rejoined at cycle {}", node.name, index, cycle);
  return Status::Ok();
}

Status SyncCoordinator::run_barrier(u64 cycle,
                                    const std::function<Status()>& service) {
  if (!config_status_.ok()) return config_status_;
  barriers_.inc();
  obs::Tracer& tracer = hub_->tracer();
  const u64 span_start = tracer.enabled() ? tracer.now_ns() : 0;
  const auto wait_start = std::chrono::steady_clock::now();
  // Wire v3: stamp the round only when the timeline is armed, so default
  // runs keep the v1/v2 frame bytes (bit-exact recording parity). Boards
  // echo whatever they received, so mixed stamped/unstamped parties mix.
  const bool timed_spans = timeline_.enabled();
  const u64 round = timed_spans ? ++round_ : 0;
  const u64 scatter_start = timed_spans ? timeline_.now_ns() : 0;

  // Scatter: one CLOCK_TICK per due node, granting the cycles elapsed since
  // its previous grant (== its quantum unless due-cycles coincide oddly).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (!node.alive || node.next_due > cycle) continue;
    const u64 elapsed = cycle - node.last_granted;
    net::ClockTick tick{cycle, static_cast<u32>(elapsed)};
    if (timed_spans) tick.round = round;
    Status s = net::send_msg(*node.clock, tick);
    if (!s.ok()) {
      if (config_.evict_after_misses > 0) {
        // Under the eviction policy a dead transport degrades like a
        // straggler: drop the node, keep the survivors simulating.
        evict_node(i, strformat("CLOCK_TICK failed: {}", s.message()));
        continue;
      }
      return Status{s.code(), strformat("fabric: CLOCK_TICK to {} failed: {}",
                                        node.name, s.message())};
    }
    ticks_sent_.inc();
    node.grants.record_ns(elapsed);  // grant-size distribution, in cycles
    node.last_granted = cycle;
    if (timed_spans) {
      node.tick_sent_ns = timeline_.now_ns();
      node.ack_recv_ns = 0;
    }
    // Provisional fixed-cadence due-cycle; re-based from the fresh ack's
    // lookahead once the gather delivers it.
    node.next_due = cycle + node.quantum;
    pending.push_back(i);
  }
  const u64 scatter_end = timed_spans ? timeline_.now_ns() : 0;

  const std::vector<std::size_t> ticked = pending;
  Status s = gather(std::move(pending), service);
  if (!s.ok()) return s;

  // Adaptive re-base: every ticked node just froze again and its ack says
  // when it can next interact. max(min, min(lookahead - cycle, max)) keeps
  // the grant finite — a wrong (too large) lookahead costs at most
  // max_quantum of accuracy, never liveness.
  for (std::size_t i : ticked) {
    Node& node = nodes_[i];
    if (!node.alive) continue;
    node.next_due = cycle + policy_.grant(i, cycle, node.lookahead);
  }

  const auto wait_end = std::chrono::steady_clock::now();
  barrier_wait_ns_.record_ns(static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wait_end -
                                                           wait_start)
          .count()));
  if (timed_spans && !ticked.empty()) {
    const u64 now = timeline_.now_ns();
    spans_.record({round, 0, obs::SpanPhase::kScatter, scatter_start,
                   scatter_end, cycle});
    u64 last_ack = scatter_end;
    for (std::size_t i : ticked) {
      const Node& node = nodes_[i];
      // Evicted-mid-gather nodes never acked; they carry no wait span.
      if (!node.alive || node.ack_recv_ns < node.tick_sent_ns) continue;
      spans_.record({round, static_cast<u32>(i), obs::SpanPhase::kNodeWait,
                     node.tick_sent_ns, node.ack_recv_ns, cycle});
      last_ack = std::max(last_ack, node.ack_recv_ns);
    }
    spans_.record({round, 0, obs::SpanPhase::kGather, scatter_end, last_ack,
                   cycle});
    spans_.record({round, 0, obs::SpanPhase::kBarrier, scatter_start, now,
                   cycle});
  }
  if (tracer.enabled()) {
    tracer.complete("fabric.barrier", "fabric", span_start, tracer.now_ns(),
                    cycle, "cycle");
  }
  return Status::Ok();
}

Status SyncCoordinator::gather(std::vector<std::size_t> pending,
                               const std::function<Status()>& service) {
  const auto wait_start = std::chrono::steady_clock::now();
  auto deadline = config_.watchdog.count() > 0
                      ? wait_start + config_.watchdog
                      : std::chrono::steady_clock::time_point::max();
  // Bounded spin-then-wait: a short yield phase keeps the hot path (acks
  // arriving within microseconds) syscall-free, then the gather parks on
  // the stragglers' CLOCK doorbells (plus any set_wake_fds extras) instead
  // of burning a core for the rest of the quantum. The park is capped at
  // 1ms so the watchdog and the service callback keep their cadence even
  // against an fd-less transport.
  constexpr u32 kSpinRounds = 256;
  u32 idle_rounds = 0;
  while (!pending.empty()) {
    bool progressed = false;
    for (std::size_t p = 0; p < pending.size();) {
      Node& node = nodes_[pending[p]];
      auto ack = net::try_recv_msg(*node.clock);
      if (!ack.ok()) {
        if (config_.evict_after_misses > 0) {
          evict_node(pending[p], strformat("CLOCK channel failed: {}",
                                           ack.status().message()));
          pending[p] = pending.back();
          pending.pop_back();
          progressed = true;
          continue;
        }
        return Status{ack.status().code(),
                      strformat("fabric: CLOCK channel of {} failed: {}",
                                node.name, ack.status().message())};
      }
      if (!ack.value().has_value()) {
        ++p;
        continue;
      }
      const auto* time_ack = std::get_if<net::TimeAck>(&*ack.value());
      if (time_ack == nullptr) {
        return Status{StatusCode::kInternal,
                      strformat("fabric: expected TIME_ACK from {}, got {}",
                                node.name,
                                net::to_string(net::type_of(*ack.value())))};
      }
      acks_received_.inc();
      node.acks.inc();
      node.lookahead = time_ack->lookahead;
      note_lookahead(node.lookahead);
      node.missed = 0;
      if (timeline_.enabled()) node.ack_recv_ns = timeline_.now_ns();
      pending[p] = pending.back();
      pending.pop_back();
      progressed = true;
    }
    if (pending.empty()) break;
    if (service) {
      Status s = service();
      if (!s.ok()) return s;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::sort(pending.begin(), pending.end());
      if (config_.evict_after_misses > 0) {
        // Graceful degradation: charge every straggler one miss, evict the
        // ones that just reached the limit, and give the rest another
        // watchdog interval. The barrier stays live for the survivors.
        for (std::size_t p = 0; p < pending.size();) {
          Node& node = nodes_[pending[p]];
          if (++node.missed >= config_.evict_after_misses) {
            evict_node(pending[p],
                       strformat("missed {} consecutive barriers "
                                 "(watchdog {} ms)",
                                 node.missed, config_.watchdog.count()));
            pending[p] = pending.back();
            pending.pop_back();
          } else {
            ++p;
          }
        }
        deadline += config_.watchdog;
        continue;
      }
      // The straggler report: name the nodes still missing — with their
      // quantum and last grant — so a wedged board is diagnosable from the
      // Status alone.
      const auto waited =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - wait_start);
      std::string stragglers;
      for (std::size_t index : pending) {
        if (!stragglers.empty()) stragglers += ", ";
        stragglers += strformat(
            "{} (node {}, quantum {} cycles, last granted at cycle {})",
            nodes_[index].name, index, nodes_[index].quantum,
            nodes_[index].last_granted);
      }
      return Status{
          StatusCode::kDeadlineExceeded,
          strformat("fabric: barrier watchdog expired after {} ms (bound {} "
                    "ms) waiting for TIME_ACK from {}",
                    waited.count(), config_.watchdog.count(), stragglers)};
    }
    if (progressed) {
      idle_rounds = 0;
      continue;
    }
    if (++idle_rounds < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    std::vector<pollfd> fds;
    fds.reserve(pending.size() + wake_fds_.size());
    for (std::size_t index : pending) {
      const int fd = nodes_[index].clock->readable_fd();
      if (fd >= 0) fds.push_back(pollfd{fd, POLLIN, 0});
    }
    for (int fd : wake_fds_) fds.push_back(pollfd{fd, POLLIN, 0});
    auto cap = std::chrono::milliseconds{1};
    if (deadline != std::chrono::steady_clock::time_point::max()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      cap = std::clamp(left, std::chrono::milliseconds{0}, cap);
    }
    if (!fds.empty()) {
      (void)::poll(fds.data(), fds.size(), static_cast<int>(cap.count()));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds{50});
    }
  }
  return Status::Ok();
}

void SyncCoordinator::shutdown() {
  for (Node& node : nodes_) {
    if (node.alive && node.clock != nullptr) {
      (void)net::send_msg(*node.clock, net::Shutdown{});
    }
  }
}

}  // namespace vhp::fabric
