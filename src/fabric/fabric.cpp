#include "vhp/fabric/fabric.hpp"

#include <algorithm>
#include <fstream>
#include <future>
#include <stdexcept>
#include <utility>

#include "vhp/common/format.hpp"
#include "vhp/fault/inject.hpp"
#include "vhp/net/fanout.hpp"
#include "vhp/net/instrumented.hpp"
#include "vhp/net/shm_ring.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::fabric {

namespace {

obs::Recording snapshot_recording(obs::FlightRecorder& recorder,
                                  std::map<std::string, std::string> tags) {
  obs::Recording rec;
  rec.meta.side = recorder.side();
  rec.meta.tags = std::move(tags);
  rec.frames = recorder.snapshot();
  return rec;
}

}  // namespace

cosim::SyncPolicy FabricConfig::resolved_sync() const {
  cosim::SyncPolicy policy =
      sync.has_value() ? *sync
                       : cosim::SyncPolicy{}
                             .quantum(t_sync)
                             .watchdog(watchdog)
                             .evict_after(evict_after_misses);
  // Per-node cadence overrides predate the policy and keep working with it:
  // add_node(name, t_sync) composes with .sync(policy).
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].t_sync != 0) policy.node_quantum(i, nodes[i].t_sync);
  }
  return policy;
}

Status FabricConfig::validate() const {
  if (nodes.empty()) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: at least one node required"};
  }
  if (clock_period == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: clock_period must be > 0"};
  }
  if (data_poll_interval == 0) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: data_poll_interval must be > 0"};
  }
  if (parallel_workers > 256) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: parallel_workers must be <= 256"};
  }
  if (Status s = resolved_sync().validate(nodes.size()); !s.ok()) return s;
  if (Status s = fault_plan.validate(); !s.ok()) return s;
  if (fault_plan.armed() && !fault_plan.lossless() && !recovery.enabled) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: the fault plan can lose or mutate frames; "
                  "enable the recovery layer (recovery.enabled)"};
  }
  if (batch_frames && recovery.enabled) {
    return Status{StatusCode::kInvalidArgument,
                  "FabricConfig: batch_frames is incompatible with the "
                  "recovery layer — retransmission acks would sit in the "
                  "peer's batch buffer until its next flush point"};
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FabricNodeConfig& node = nodes[i];
    if (node.external) continue;
    if (node.board.free_running) {
      return Status{
          StatusCode::kInvalidArgument,
          strformat("FabricConfig: node {} is free-running; a fabric node "
                    "must be budgeted to take part in the barrier",
                    i)};
    }
    if (node.board.rtos.cycles_per_tick == 0 ||
        node.board.rtos.timeslice_ticks == 0 ||
        node.board.cycles_per_sim_cycle == 0) {
      return Status{
          StatusCode::kInvalidArgument,
          strformat("FabricConfig: node {} has a zero RTOS timing divisor",
                    i)};
    }
  }
  return Status::Ok();
}

FabricConfigBuilder& FabricConfigBuilder::add_node(std::string name,
                                                   u64 t_sync) {
  FabricNodeConfig node;
  node.name = std::move(name);
  node.t_sync = t_sync;
  config_.nodes.push_back(std::move(node));
  return *this;
}

FabricConfigBuilder& FabricConfigBuilder::add_node(FabricNodeConfig node) {
  config_.nodes.push_back(std::move(node));
  return *this;
}

FabricConfigBuilder& FabricConfigBuilder::add_external_node(std::string name,
                                                            u64 t_sync) {
  FabricNodeConfig node;
  node.name = std::move(name);
  node.t_sync = t_sync;
  node.external = true;
  config_.nodes.push_back(std::move(node));
  return *this;
}

board::BoardConfig& FabricConfigBuilder::last_board() {
  if (config_.nodes.empty()) {
    throw std::logic_error("FabricConfigBuilder: last_board() before any "
                           "add_node()");
  }
  return config_.nodes.back().board;
}

Result<FabricConfig> FabricConfigBuilder::build() const {
  Status s = config_.validate();
  if (!s.ok()) return s;
  return config_;
}

FabricConfig FabricConfigBuilder::build_or_throw() const {
  Status s = config_.validate();
  if (!s.ok()) throw std::invalid_argument(s.to_string());
  return config_;
}

Fabric::Fabric(FabricConfig config)
    : config_(std::move(config)),
      hub_(std::make_unique<obs::Hub>(config_.obs)),
      kernel_(),
      clock_(kernel_, "clk",
             config_.clock_period == 0 ? sim::SimTime{1}
                                       : config_.clock_period) {
  Status valid = config_.validate();
  if (!valid.ok()) throw std::invalid_argument(valid.to_string());
  if (config_.parallel_workers > 0) {
    kernel_.set_parallel(static_cast<unsigned>(config_.parallel_workers));
    hub_->add_collector([this](obs::MetricsRegistry& m) {
      const auto ps = kernel_.parallel_stats();
      m.gauge("sim.islands").set(static_cast<i64>(ps.islands));
      m.gauge("sim.parallel_deltas").set(static_cast<i64>(ps.parallel_deltas));
      m.gauge("sim.repartitions").set(static_cast<i64>(ps.repartitions));
    });
  }
  const cosim::SyncPolicy policy = config_.resolved_sync();

  schedule_ = fault::compile(config_.fault_plan, hub_.get());
  if (schedule_) {
    // Injected faults land as flagged marker frames in the master recording,
    // so vhptrace and the divergence checker can tell injected loss from
    // real divergence.
    schedule_->set_observer([this](const fault::FaultEvent& e) {
      hub_->hw_recorder().note_fault(e.port, e.dir, fault::to_string(e.kind),
                                     e.node);
    });
  }

  const std::size_t n = config_.nodes.size();
  std::vector<net::LinkPair> links;
  if (config_.transport == Transport::kInProc) {
    links = net::make_inproc_link_fanout(n);
  } else if (config_.transport == Transport::kShm) {
    links = net::make_shm_link_fanout(n);
  } else {
    auto fanout = net::make_tcp_link_fanout(n);
    if (!fanout.ok()) {
      throw std::runtime_error("fabric TCP fan-out failed: " +
                               fanout.status().to_string());
    }
    links = std::move(fanout).value();
  }

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>();
    node->config = config_.nodes[i];
    if (node->config.name.empty()) node->config.name = strformat("node{}", i);
    const std::string& name = node->config.name;

    node->hub = std::make_unique<obs::Hub>(config_.obs);
    // One clock across the fabric: node-side spans and recorded frames
    // timestamp against the master's epochs, so cross-hub records compare
    // directly (the analyzer joins them on wall time).
    node->hub->timeline().set_epoch(hub_->timeline().epoch());
    node->hub->board_recorder().set_epoch(hub_->hw_recorder().epoch());
    node->registry = std::make_unique<cosim::DriverRegistry>();

    net::CosimLink hw_side = std::move(links[i].hw);
    net::CosimLink board_side = std::move(links[i].board);
    // Batching wraps the raw transport innermost, so every decorator above
    // sees the unbatched frame sequence (recording parity holds).
    if (config_.batch_frames) {
      hw_side = net::batch_link(std::move(hw_side), true, config_.batching,
                                hub_.get(), "hw." + name);
      board_side = net::batch_link(std::move(board_side), true,
                                   config_.batching, node->hub.get(),
                                   "board");
    }
    // Canonical decorator stack (innermost first): transport -> inject
    // (hw side only) -> reliable (both sides) -> instrument -> record.
    // The recorder sits above the recovery layer, so it only ever sees
    // repaired traffic — a faulted run's recording matches the clean one.
    const u32 node_id = static_cast<u32>(i);
    if (schedule_) {
      hw_side = fault::inject_link(std::move(hw_side), schedule_, node_id);
    }
    if (config_.recovery.enabled) {
      hw_side = fault::reliable_link(std::move(hw_side), config_.recovery,
                                     hub_.get(), "hw." + name);
      board_side = fault::reliable_link(std::move(board_side),
                                        config_.recovery, node->hub.get(),
                                        "board");
    }
    if (hub_->enabled()) {
      hw_side = net::instrument_link(std::move(hw_side), *hub_,
                                     "hw." + name);
    }
    if (node->hub->enabled()) {
      board_side = net::instrument_link(std::move(board_side), *node->hub,
                                        "board");
    }
    // The master records every node's link into ONE ring, each frame
    // stamped with its node id — the merged recording diffs and replays
    // per node. Each board records its own side into its node hub.
    hw_side =
        net::record_link(std::move(hw_side), hub_->hw_recorder(), node_id);
    board_side = net::record_link(std::move(board_side),
                                  node->hub->board_recorder(), node_id);
    node->hw_link = std::move(hw_side);

    node->data_writes =
        &hub_->metrics().counter("fabric." + name + ".data_writes");
    node->data_reads =
        &hub_->metrics().counter("fabric." + name + ".data_reads");
    node->interrupts_sent =
        &hub_->metrics().counter("fabric." + name + ".interrupts_sent");

    if (node->config.external) {
      node->board_link = std::move(board_side);
    } else {
      board::BoardConfig board_config = node->config.board;
      if (board_config.name.empty()) board_config.name = name;
      // Adaptive mode needs every board's acks to carry its lookahead; the
      // board-side lookahead is conservative by construction, so opting the
      // boards in wholesale is always correct.
      if (policy.is_adaptive()) board_config.advertise_lookahead = true;
      if (config_.event_loop) {
        // Constructed here (so apps/DSRs configure before start_boards),
        // booted and pumped exclusively on the loop thread — the same
        // construct-here/run-there split BoardHost uses.
        node->loop_board = std::make_unique<board::Board>(
            board_config, std::move(board_side), node->hub.get());
      } else {
        node->host = std::make_unique<board::BoardHost>(
            board_config, std::move(board_side), node->hub.get());
      }
      node->hub->board_recorder().set_board_time_source(
          [board = node->host ? &node->host->board()
                              : node->loop_board.get()] {
            return board->kernel().tick_count().value();
          });
    }
    nodes_.push_back(std::move(node));
  }

  hub_->hw_recorder().set_hw_time_source([this] { return cycle_; });
  hub_->metrics().gauge("fabric.nodes").set(static_cast<i64>(n));

  std::vector<net::Channel*> clocks;
  std::vector<std::string> names;
  clocks.reserve(n);
  names.reserve(n);
  for (const auto& node : nodes_) {
    clocks.push_back(node->hw_link.clock.get());
    names.push_back(node->config.name);
  }
  coordinator_ = std::make_unique<SyncCoordinator>(
      policy, std::move(clocks), std::move(names), hub_.get());
  // A parked gather must still notice a mid-quantum DataReadReq promptly:
  // hand the coordinator every DATA doorbell as an extra wake source.
  std::vector<int> wake_fds;
  for (const auto& node : nodes_) {
    const int fd = node->hw_link.data->readable_fd();
    if (fd >= 0) wake_fds.push_back(fd);
  }
  coordinator_->set_wake_fds(std::move(wake_fds));
}

Fabric::~Fabric() { finish(); }

Fabric::Node& Fabric::node_at(std::size_t node) {
  if (node >= nodes_.size()) {
    throw std::out_of_range(
        strformat("fabric: node {} of {}", node, nodes_.size()));
  }
  return *nodes_[node];
}

cosim::DriverRegistry& Fabric::registry(std::size_t node) {
  return *node_at(node).registry;
}

board::Board& Fabric::board(std::size_t node) {
  Node& n = node_at(node);
  if (n.host) return n.host->board();
  if (n.loop_board) return *n.loop_board;
  throw std::logic_error(
      strformat("fabric: node {} ({}) is external, it has no board", node,
                n.config.name));
}

net::CosimLink Fabric::take_board_link(std::size_t node) {
  Node& n = node_at(node);
  if (!n.config.external) {
    throw std::logic_error(
        strformat("fabric: node {} ({}) is not external", node,
                  n.config.name));
  }
  if (!n.board_link.has_value()) {
    throw std::logic_error(
        strformat("fabric: board link of node {} already taken", node));
  }
  net::CosimLink link = std::move(*n.board_link);
  n.board_link.reset();
  return link;
}

obs::Hub& Fabric::node_obs(std::size_t node) { return *node_at(node).hub; }

void Fabric::watch_interrupt(std::size_t node, sim::BoolSignal& line,
                             u32 vector) {
  node_at(node).watches.push_back(IntWatch{&line, vector, line.read()});
}

void Fabric::start_boards() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) {
    if (node->host) node->host->start();
  }
  if (!config_.event_loop) return;
  // Event-loop mode: one thread pumps every board. Boot and all pumping
  // happen on that thread (fibers are not migratable); each board's
  // transport doorbells wake exactly that board, and a coarse fallback
  // timer covers anything without an fd.
  loop_ = std::make_unique<svc::EventLoop>(hub_.get());
  for (auto& node : nodes_) {
    board::Board* b = node->loop_board.get();
    if (b == nullptr) continue;
    loop_->post([this, b] {
      b->boot();
      (void)b->pump();  // first pump sends the initial freeze ack
      for (int fd : b->readable_fds()) {
        Status s = loop_->watch(fd, [b] { (void)b->pump(); });
        if (!s.ok()) log_.warn("watch({}) failed: {}", fd, s.to_string());
      }
    });
  }
  // One-shot chain (schedule() has no periodic mode): the tick lives in
  // the fabric and re-schedules a copy of itself — no ownership cycle.
  loop_tick_ = [this] {
    for (auto& node : nodes_) {
      if (node->loop_board) (void)node->loop_board->pump();
    }
    (void)loop_->schedule(std::chrono::milliseconds{1}, loop_tick_);
  };
  (void)loop_->schedule(std::chrono::milliseconds{1}, loop_tick_);
  loop_thread_ = std::thread([this] { loop_->run(); });
}

Status Fabric::handshake() {
  if (handshaken_) return Status::Ok();
  Status s = coordinator_->handshake();
  if (!s.ok()) return s;
  handshaken_ = true;
  return Status::Ok();
}

Status Fabric::service_data_ports() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    if (!coordinator_->alive(i)) continue;
    for (;;) {
      auto msg = net::try_recv_msg(*node->hw_link.data);
      if (!msg.ok()) {
        return Status{msg.status().code(),
                      strformat("fabric: DATA channel of {} failed: {}",
                                node->config.name, msg.status().message())};
      }
      if (!msg.value().has_value()) break;
      if (std::holds_alternative<net::DataWrite>(*msg.value())) {
        node->data_writes->inc();
      } else if (std::holds_alternative<net::DataReadReq>(*msg.value())) {
        node->data_reads->inc();
      }
      Status s = cosim::serve_data_message(*node->registry,
                                           *node->hw_link.data, *msg.value());
      if (s.ok() && std::holds_alternative<net::DataReadReq>(*msg.value())) {
        // A board thread is blocked mid-quantum on this response; a
        // batched DATA channel must not hold it to the barrier boundary.
        s = node->hw_link.data->flush();
      }
      if (!s.ok()) {
        return Status{s.code(), strformat("fabric: node {}: {}",
                                          node->config.name, s.message())};
      }
    }
  }
  return Status::Ok();
}

Status Fabric::flush_node_links() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    if (!coordinator_->alive(i)) continue;
    Status s = node->hw_link.data->flush();
    if (s.ok()) s = node->hw_link.intr->flush();
    if (!s.ok()) {
      return Status{s.code(), strformat("fabric: flush to {} failed: {}",
                                        node->config.name, s.message())};
    }
  }
  return Status::Ok();
}

Status Fabric::sample_interrupts() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    if (!coordinator_->alive(i)) continue;
    for (IntWatch& watch : node->watches) {
      const bool level = watch.line->read();
      if (level && !watch.prev) {
        node->interrupts_sent->inc();
        Status s = net::send_msg(*node->hw_link.intr,
                                 net::IntRaise{watch.vector});
        if (!s.ok()) {
          return Status{s.code(),
                        strformat("fabric: INT_RAISE to {} failed: {}",
                                  node->config.name, s.message())};
        }
      }
      watch.prev = level;
    }
  }
  return Status::Ok();
}

Status Fabric::run_cycles(u64 cycles) {
  Status s = handshake();
  if (!s.ok()) return s;
  for (u64 i = 0; i < cycles; ++i) {
    if (config_.data_poll_interval <= 1 ||
        cycle_ % config_.data_poll_interval == 0) {
      s = service_data_ports();
      if (!s.ok()) return s;
    }
    kernel_.run(config_.clock_period);  // one posedge + negedge
    ++cycle_;
    s = sample_interrupts();
    if (!s.ok()) return s;
    if (coordinator_->due(cycle_)) {
      // Batching flush rule: the quantum's DATA/INT frames cross before
      // the barrier's CLOCK_TICKs (no-op on unbatched links).
      s = flush_node_links();
      if (!s.ok()) return s;
      s = coordinator_->run_barrier(
          cycle_, [this] { return service_data_ports(); });
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

void Fabric::finish() {
  if (finished_) return;
  finished_ = true;
  // The telemetry provider reaches back into this Fabric; stop it before
  // anything it reads starts tearing down.
  hub_->stop_telemetry();
  // Push out anything a batched link still holds before the SHUTDOWNs.
  for (auto& node : nodes_) {
    if (node->hw_link.data) (void)node->hw_link.data->flush();
    if (node->hw_link.intr) (void)node->hw_link.intr->flush();
  }
  if (config_.shutdown_on_finish) coordinator_->shutdown();
  // An evicted node's board thread may still be blocked on its CLOCK
  // channel: try a best-effort SHUTDOWN, then close our side so the peer
  // wakes with an error and the host thread can be joined.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (coordinator_->alive(i)) continue;
    Node& node = *nodes_[i];
    (void)net::send_msg(*node.hw_link.clock, net::Shutdown{});
    if (node.hw_link.data) node.hw_link.data->close();
    if (node.hw_link.intr) node.hw_link.intr->close();
    if (node.hw_link.clock) node.hw_link.clock->close();
  }
  for (auto& node : nodes_) {
    if (node->host) node->host->join();
  }
  if (loop_) {
    // Let every loop-hosted board consume its SHUTDOWN (one pump suffices:
    // the frame is already in its clock queue), then stop the loop.
    std::promise<void> drained;
    loop_->post([this, &drained] {
      for (auto& node : nodes_) {
        if (node->loop_board) (void)node->loop_board->pump();
      }
      drained.set_value();
    });
    (void)drained.get_future().wait_for(std::chrono::seconds{5});
    loop_->stop();
    if (loop_thread_.joinable()) loop_thread_.join();
  }
}

std::string Fabric::metrics_json() {
  std::vector<std::pair<std::string, obs::Hub*>> hubs;
  hubs.reserve(nodes_.size() + 1);
  hubs.emplace_back("", hub_.get());
  for (auto& node : nodes_) {
    hubs.emplace_back(node->config.name + ".", node->hub.get());
  }
  std::string doc = obs::merged_metrics_json(hubs);
  if (hub_->timeline().enabled() && !doc.empty() && doc.back() == '}') {
    doc.insert(doc.size() - 1, ",\"timeline\":" +
                                   obs::timeline_analysis_json(
                                       timeline_analysis()));
  }
  return doc;
}

std::vector<obs::SpanRecord> Fabric::timeline_spans() {
  std::vector<obs::SpanRecord> spans = hub_->timeline().snapshot();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Each board records its spans as node 0 (it cannot know its fabric
    // slot); re-stamp them with the slot id so the analyzer joins them
    // against the coordinator's per-node waits.
    for (obs::SpanRecord s : nodes_[i]->hub->timeline().snapshot()) {
      s.node = static_cast<u32>(i);
      spans.push_back(s);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

std::map<u32, std::string> Fabric::node_names() const {
  std::map<u32, std::string> names;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    names[static_cast<u32>(i)] = nodes_[i]->config.name;
  }
  return names;
}

obs::TimelineAnalysis Fabric::timeline_analysis() {
  return obs::analyze_spans(timeline_spans(), node_names());
}

Status Fabric::serve_telemetry(u16 port) {
  return hub_->serve_telemetry(port, [this] { return metrics_json(); });
}

Status Fabric::write_metrics_json(const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status{StatusCode::kUnavailable, "cannot open " + path};
  f << metrics_json();
  f.close();
  if (!f) return Status{StatusCode::kUnavailable, "write failed: " + path};
  return Status::Ok();
}

Status Fabric::write_recordings(
    const std::string& prefix,
    const std::map<std::string, std::string>& tags) {
  if (!config_.obs.record.enabled) {
    return Status{StatusCode::kFailedPrecondition,
                  "flight recorder is disabled (FabricConfig::obs.record)"};
  }
  std::map<std::string, std::string> all = tags;
  const cosim::SyncPolicy policy = config_.resolved_sync();
  all["t_sync"] = strformat("{}", policy.quantum());
  all["adaptive"] = policy.is_adaptive() ? "1" : "0";
  all["nodes"] = strformat("{}", nodes_.size());
  Status s = obs::write_recording(
      prefix + ".hw.vhprec", snapshot_recording(hub_->hw_recorder(), all),
      obs::RecordingFormat::kBinary);
  if (!s.ok()) return s;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    std::map<std::string, std::string> node_tags = all;
    node_tags["node"] = strformat("{}", i);
    node_tags["node_name"] = node.config.name;
    s = obs::write_recording(
        prefix + "." + node.config.name + ".board.vhprec",
        snapshot_recording(node.hub->board_recorder(), node_tags),
        obs::RecordingFormat::kBinary);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace vhp::fabric
