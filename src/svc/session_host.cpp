#include "vhp/svc/session_host.hpp"

#include <algorithm>
#include <utility>

namespace vhp::svc {

namespace {

u64 mono_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SessionHost::SessionHost(EventLoop& loop, cosim::CosimSession& session,
                         SessionHostConfig config, DoneFn on_done)
    : loop_(loop), session_(session), config_(config),
      on_done_(std::move(on_done)),
      steps_(session_.obs().metrics().counter("svc.host.steps")),
      step_ns_(session_.obs().metrics().histogram("svc.host.step_ns")),
      sessions_gauge_(loop_.obs().metrics().gauge("svc.sessions")) {}

SessionHost::~SessionHost() {
  // The loop must not call into a destroyed host. Callers normally run the
  // session to done() before teardown; this is the safety net for early
  // destruction while the loop is already stopped.
  for (int fd : watched_fds_) loop_.unwatch(fd);
  if (fallback_timer_ != 0) loop_.cancel(fallback_timer_);
}

Status SessionHost::status() const {
  return done_.load() ? status_ : Status::Ok();
}

void SessionHost::start() {
  if (started_) return;
  started_ = true;
  loop_.post([this] { arm_on_loop(); });
}

void SessionHost::arm_on_loop() {
  if (armed_) return;
  armed_ = true;
  sessions_gauge_.add(1);
  session_.board().boot();
  // Watch every transport doorbell of both sides; an external frame wakes
  // exactly this session. Self-contained sessions rarely need these — the
  // self-posting step keeps them hot — but a latency-emulation thread or a
  // remote peer delivers through here.
  watched_fds_ = session_.hw().readable_fds();
  for (int fd : session_.board().readable_fds()) watched_fds_.push_back(fd);
  std::sort(watched_fds_.begin(), watched_fds_.end());
  watched_fds_.erase(
      std::unique(watched_fds_.begin(), watched_fds_.end()),
      watched_fds_.end());
  for (int fd : watched_fds_) {
    Status s = loop_.watch(fd, [this] {
      if (!done_.load() && !step_posted_) {
        step_posted_ = true;
        loop_.post([this] { step(); });
      }
    });
    if (!s.ok()) log_.warn("watch({}) failed: {}", fd, s.to_string());
  }
  if (config_.fallback_period > std::chrono::nanoseconds{0}) {
    // Periodic re-poll: covers decorator timers and fd-less transports.
    // One-shot chain (schedule() has no periodic mode): the tick lives in
    // the host and re-schedules a copy of itself, so there is no
    // self-referential ownership — cancel() in finish() ends the chain.
    fallback_tick_ = [this] {
      if (done_.load()) return;
      fallback_timer_ = loop_.schedule(config_.fallback_period,
                                       fallback_tick_);
      if (!step_posted_) {
        step_posted_ = true;
        loop_.post([this] { step(); });
      }
    };
    fallback_timer_ = loop_.schedule(config_.fallback_period, fallback_tick_);
  }
  step_posted_ = true;
  loop_.post([this] { step(); });
}

void SessionHost::step() {
  step_posted_ = false;
  if (done_.load()) return;
  steps_.inc();
  const u64 t0 = mono_ns();
  cosim::CosimKernel& hw = session_.hw();
  board::Board& board = session_.board();
  // Board first: the initial freeze ack, and any budget granted by the
  // previous slice, drain here.
  board.pump();
  const u64 before = cycles_done_.load();
  const u64 remaining = config_.cycles - before;
  u64 ran = 0;
  bool blocked = false;
  Status s = hw.pump(std::min<u64>(remaining, config_.cycles_per_step), &ran,
                     &blocked);
  cycles_done_.store(before + ran);
  if (!s.ok()) {
    session_.dump_postmortem(s.to_string());
    finish(s);
    step_ns_.record_ns(mono_ns() - t0);
    return;
  }
  // Deliver this slice's grants and frames to the board.
  const board::Board::PumpStatus bs = board.pump();
  if (cycles_done_.load() >= config_.cycles && !hw.awaiting_ack()) {
    finish(Status::Ok());
    step_ns_.record_ns(mono_ns() - t0);
    return;
  }
  if (blocked && ran == 0 && bs == board::Board::PumpStatus::kDone) {
    // The board halted (app shutdown, link teardown) but the master still
    // owes cycles — without this the host would park forever.
    finish(Status{StatusCode::kAborted,
                  "board halted before the cycle target"});
    step_ns_.record_ns(mono_ns() - t0);
    return;
  }
  if (ran > 0 || !blocked) {
    // Progress (or an un-exhausted slice budget): keep stepping. A parked
    // session costs nothing — the doorbells and the fallback timer take
    // over.
    step_posted_ = true;
    loop_.post([this] { step(); });
  }
  step_ns_.record_ns(mono_ns() - t0);
}

void SessionHost::finish(Status s) {
  status_ = s;
  session_.finish();  // flush + SHUTDOWN (board thread was never started)
  board::Board::PumpStatus bs = session_.board().pump();
  if (bs != board::Board::PumpStatus::kDone) {
    log_.warn("board did not halt on SHUTDOWN");
  }
  for (int fd : watched_fds_) loop_.unwatch(fd);
  watched_fds_.clear();
  if (fallback_timer_ != 0) {
    loop_.cancel(fallback_timer_);
    fallback_timer_ = 0;
  }
  sessions_gauge_.add(-1);
  done_.store(true);
  if (on_done_) on_done_(std::move(s));
}

}  // namespace vhp::svc
