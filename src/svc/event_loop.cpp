#include "vhp/svc/event_loop.hpp"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "vhp/common/format.hpp"

namespace vhp::svc {

namespace {

// Big enough that a dense loop (hundreds of sessions) drains one epoll_wait
// per iteration; the kernel caps the copy at what is actually ready.
constexpr int kMaxEvents = 128;

u64 mono_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLoop::EventLoop(obs::Hub* hub)
    : owned_hub_(hub != nullptr ? nullptr : new obs::Hub()),
      hub_(hub != nullptr ? hub : owned_hub_.get()),
      iterations_(hub_->metrics().counter("svc.loop.iterations")),
      tasks_run_(hub_->metrics().counter("svc.loop.tasks")),
      fd_events_(hub_->metrics().counter("svc.loop.fd_events")),
      timers_fired_(hub_->metrics().counter("svc.loop.timers")),
      dispatch_ns_(hub_->metrics().histogram("svc.loop.dispatch_ns")) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (epoll_fd_ < 0 || wakeup_fd_ < 0 || timer_fd_ < 0) {
    log_.error("EventLoop fd setup failed: {}", strerror(errno));
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
  ev.data.fd = timer_fd_;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
}

EventLoop::~EventLoop() {
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::watch(int fd, Task cb) {
  if (fd < 0 || !cb) {
    return Status{StatusCode::kInvalidArgument,
                  "EventLoop::watch: bad fd or empty callback"};
  }
  std::scoped_lock lock(mu_);
  auto [it, inserted] =
      watches_.emplace(fd, std::make_shared<Task>(std::move(cb)));
  if (!inserted) {
    *it->second = std::move(cb);
    return Status::Ok();
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: doorbells stay ready until drained
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    watches_.erase(it);
    return Status{StatusCode::kInternal,
                  strformat("epoll_ctl(ADD, {}): {}", fd, strerror(errno))};
  }
  return Status::Ok();
}

void EventLoop::unwatch(int fd) {
  std::scoped_lock lock(mu_);
  if (watches_.erase(fd) > 0) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::post(Task task) {
  {
    std::scoped_lock lock(mu_);
    posted_.push_back(std::move(task));
  }
  wake();
}

EventLoop::TimerId EventLoop::schedule(std::chrono::nanoseconds delay,
                                       Task task) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::max(delay, std::chrono::nanoseconds{0});
  std::scoped_lock lock(mu_);
  const TimerId id = next_timer_id_++;
  const bool new_earliest =
      timers_.empty() || deadline < timers_.begin()->first;
  timers_.emplace(deadline, Timer{id, std::move(task)});
  if (new_earliest) rearm_timerfd_locked();
  return id;
}

bool EventLoop::cancel(TimerId id) {
  std::scoped_lock lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      const bool was_earliest = it == timers_.begin();
      timers_.erase(it);
      if (was_earliest) rearm_timerfd_locked();
      return true;
    }
  }
  return false;
}

void EventLoop::wake() {
  const u64 one = 1;
  ssize_t n;
  do {
    n = ::write(wakeup_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the counter is saturated — the loop is awake anyway.
}

void EventLoop::drain_wakeup() {
  u64 value = 0;
  while (::read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::rearm_timerfd_locked() {
  itimerspec spec{};
  if (!timers_.empty()) {
    const auto deadline = timers_.begin()->first;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        deadline.time_since_epoch())
                        .count();
    spec.it_value.tv_sec = ns / 1'000'000'000;
    spec.it_value.tv_nsec = ns % 1'000'000'000;
    // A deadline in the past must still fire: tv_sec==0 && tv_nsec==0
    // disarms, so clamp to 1ns.
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;
    }
  }
  (void)::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

void EventLoop::run_due_timers() {
  u64 expirations = 0;
  while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0) {
  }
  for (;;) {
    Task task;
    {
      std::scoped_lock lock(mu_);
      if (timers_.empty() ||
          timers_.begin()->first > std::chrono::steady_clock::now()) {
        rearm_timerfd_locked();
        break;
      }
      task = std::move(timers_.begin()->second.task);
      timers_.erase(timers_.begin());
    }
    timers_fired_.inc();
    task();  // outside the lock: may schedule()/cancel() reentrantly
  }
}

void EventLoop::run_posted_tasks() {
  // Swap out the current batch; tasks posted *by* these tasks land in the
  // next iteration (the post() already rang the wakeup fd).
  std::vector<Task> batch;
  {
    std::scoped_lock lock(mu_);
    batch.swap(posted_);
  }
  for (Task& task : batch) {
    tasks_run_.inc();
    task();
  }
}

void EventLoop::run() {
  running_.store(true);
  stop_.store(false);
  epoll_event events[kMaxEvents];
  while (!stop_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_.error("epoll_wait: {}", strerror(errno));
      break;
    }
    iterations_.inc();
    const u64 t0 = mono_ns();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        drain_wakeup();
        continue;
      }
      if (fd == timer_fd_) {
        run_due_timers();
        continue;
      }
      // Re-read the registration per event: a callback earlier in this
      // batch may have unwatched this fd. The shared_ptr copy keeps the
      // callable alive if the callback unwatches *itself*.
      std::shared_ptr<Task> cb;
      {
        std::scoped_lock lock(mu_);
        auto it = watches_.find(fd);
        if (it != watches_.end()) cb = it->second;
      }
      if (cb) {
        fd_events_.inc();
        (*cb)();
      }
    }
    run_posted_tasks();
    dispatch_ns_.record_ns(mono_ns() - t0);
  }
  running_.store(false);
}

void EventLoop::stop() {
  stop_.store(true);
  wake();
}

}  // namespace vhp::svc
