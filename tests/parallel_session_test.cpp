// End-to-end parity for the deterministic parallel kernel (tentpole
// acceptance): the router co-simulation session and the sharded-router
// fabric must produce BIT-EXACT flight recordings — every CLOCK, DATA and
// INT frame — whether the master kernel evaluates serially or on a worker
// pool. Unlike the adaptive tests nothing is stripped: the sync cadence is
// identical, so the whole wire stream must match.
//
// Fiber-bound (real RTOS boards), so labeled "kernel-par", not "-tsan".
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::cosim {
namespace {

using namespace std::chrono_literals;

constexpr u64 kTsync = 200;
constexpr u64 kTotalCycles = 24000;

router::TestbenchConfig testbench_config() {
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = 2;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 800;
  tb_cfg.payload_bytes = 8;
  tb_cfg.corrupt_probability = 0.25;
  return tb_cfg;
}

router::ChecksumAppConfig app_config() {
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  return app_cfg;
}

struct RunResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 syncs = 0;
  bool drained = false;
  u64 sim_islands = 0;
  obs::Recording hw_recording;
};

/// One two-party router run under `workers` evaluation lanes (0 = serial).
RunResult run_session(u64 workers) {
  SessionConfigBuilder builder;
  builder.t_sync(kTsync)
      .cycles_per_tick(10)
      .parallel(workers)
      .postmortem_prefix("");
  builder.record().record_ring(1u << 14);
  CosimSession session{builder.build_or_throw()};

  router::RouterTestbench tb{session.hw().kernel(), testbench_config(),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_config()};

  session.start_board();
  for (u64 cycles = 0; cycles < kTotalCycles; cycles += 500) {
    EXPECT_TRUE(session.run_cycles(500).ok());
  }
  session.finish();

  RunResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.syncs = session.hw().stats().syncs;
  result.drained = tb.traffic_done();
  result.sim_islands = session.hw().kernel().island_count();
  result.hw_recording.meta.side = "hw";
  result.hw_recording.frames = session.obs().hw_recorder().snapshot();
  return result;
}

TEST(ParallelSessionTest, RouterSessionMatchesSerialBitExactly) {
  const RunResult serial = run_session(0);
  ASSERT_TRUE(serial.drained) << "serial run did not drain";
  ASSERT_GT(serial.emitted, 0u);

  for (u64 workers : {2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult parallel = run_session(workers);
    ASSERT_TRUE(parallel.drained) << "parallel run did not drain";

    EXPECT_EQ(parallel.emitted, serial.emitted);
    EXPECT_EQ(parallel.forwarded, serial.forwarded);
    EXPECT_EQ(parallel.received, serial.received);
    EXPECT_EQ(parallel.dropped, serial.dropped);
    EXPECT_EQ(parallel.syncs, serial.syncs);
    // The model really was partitioned (clock island + co-located router
    // testbench island at minimum).
    EXPECT_GT(parallel.sim_islands, 1u);

    // The whole wire stream — CLOCK, DATA and INT — must be bit-exact.
    const auto divergence =
        obs::diff_recordings(serial.hw_recording, parallel.hw_recording,
                             &net::message_field_diff);
    EXPECT_FALSE(divergence.has_value())
        << "parallel run diverged: " << divergence->to_string();
  }
}

// ---------------------------------------------------------------------------
// The sharded router across a 4-board fabric.

struct FabricResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 barriers = 0;
  u64 ticks_sent = 0;
  bool drained = false;
  obs::Recording recording;
};

FabricResult run_fabric(u64 workers) {
  constexpr std::size_t kPorts = 4;
  constexpr u64 kMaxCycles = 200000;
  router::TestbenchConfig tb_cfg = testbench_config();
  tb_cfg.router.n_ports = kPorts;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 2000;
  tb_cfg.payload_bytes = 16;

  fabric::FabricConfigBuilder builder;
  builder.t_sync(500).watchdog(15000ms).parallel(workers).record();
  for (std::size_t p = 0; p < kPorts; ++p) {
    builder.add_node("port" + std::to_string(p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};
  std::vector<DriverRegistry*> registries;
  for (std::size_t p = 0; p < kPorts; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < kPorts; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < kPorts; ++p) {
    apps.push_back(
        std::make_unique<router::ChecksumApp>(fab.board(p), app_config()));
  }
  fab.start_boards();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    EXPECT_TRUE(fab.run_cycles(500).ok());
    cycles += 500;
  }
  fab.finish();

  FabricResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.barriers = fab.coordinator().barriers();
  result.ticks_sent = fab.coordinator().ticks_sent();
  result.drained = tb.traffic_done();
  result.recording.meta.side = "hw";
  result.recording.frames = fab.obs().hw_recorder().snapshot();
  return result;
}

TEST(ParallelFabricTest, ShardedRouterMatchesSerialFabric) {
  const FabricResult serial = run_fabric(0);
  ASSERT_TRUE(serial.drained) << "serial fabric did not drain";
  ASSERT_GT(serial.emitted, 0u);

  const FabricResult parallel = run_fabric(2);
  ASSERT_TRUE(parallel.drained) << "parallel fabric did not drain";

  EXPECT_EQ(parallel.emitted, serial.emitted);
  EXPECT_EQ(parallel.forwarded, serial.forwarded);
  EXPECT_EQ(parallel.received, serial.received);
  EXPECT_EQ(parallel.dropped, serial.dropped);
  EXPECT_EQ(parallel.barriers, serial.barriers);
  EXPECT_EQ(parallel.ticks_sent, serial.ticks_sent);

  const auto divergence = obs::diff_recordings(
      serial.recording, parallel.recording, &net::message_field_diff);
  EXPECT_FALSE(divergence.has_value())
      << "parallel fabric diverged: " << divergence->to_string();
}

TEST(ParallelSessionTest, ConfigValidationBoundsWorkerCount) {
  EXPECT_FALSE(SessionConfigBuilder{}.parallel(257).build().ok());
  EXPECT_TRUE(SessionConfigBuilder{}.parallel(256).build().ok());
  fabric::FabricConfigBuilder fb;
  fb.add_node("n0");
  EXPECT_TRUE(fb.parallel(8).build().ok());
  EXPECT_FALSE(fb.parallel(300).build().ok());
}

}  // namespace
}  // namespace vhp::cosim
