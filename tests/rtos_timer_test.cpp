// Counter/alarm and interrupt (ISR/DSR) subsystem tests.
#include <gtest/gtest.h>

#include <vector>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::rtos {
namespace {

TEST(Counter, AdvanceFiresDueAlarmsInOrder) {
  Counter c{"c"};
  std::vector<int> fired;
  Alarm a1{c, [&](Alarm&, u64) { fired.push_back(1); }};
  Alarm a2{c, [&](Alarm&, u64) { fired.push_back(2); }};
  a1.arm_at(10);
  a2.arm_at(5);
  c.advance(20);
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  EXPECT_FALSE(a1.armed());
}

TEST(Counter, PeriodicAlarmReArms) {
  Counter c{"c"};
  std::vector<u64> fired;
  Alarm a{c, [&](Alarm& self, u64) { fired.push_back(self.trigger()); }};
  a.arm_at(3, /*period=*/4);
  for (int i = 0; i < 15; ++i) c.advance(1);
  // Fires at 3, 7, 11, 15 (trigger() reported is the *next* trigger).
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_TRUE(a.armed());
}

TEST(Counter, OvertakenPeriodicAlarmCatchesUp) {
  Counter c{"c"};
  int count = 0;
  Alarm a{c, [&](Alarm&, u64) { ++count; }};
  a.arm_at(2, 2);
  c.advance(10);  // due at 2,4,6,8,10 -> five firings in one advance
  EXPECT_EQ(count, 5);
}

TEST(Counter, DisarmCancels) {
  Counter c{"c"};
  int count = 0;
  Alarm a{c, [&](Alarm&, u64) { ++count; }};
  a.arm_at(5);
  a.disarm();
  c.advance(10);
  EXPECT_EQ(count, 0);
}

TEST(Counter, HandlerMayDisarmItsPeriodicSelf) {
  Counter c{"c"};
  int count = 0;
  Alarm a{c, [&](Alarm& self, u64) {
            if (++count == 3) self.disarm();
          }};
  a.arm_at(1, 1);
  c.advance(10);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(a.armed());
}

TEST(Counter, PastTriggerClampsToNextAdvance) {
  Counter c{"c"};
  c.advance(100);
  int count = 0;
  Alarm a{c, [&](Alarm&, u64) { ++count; }};
  a.arm_at(5);  // already past; fires on next advance
  c.advance(1);
  EXPECT_EQ(count, 1);
}

TEST(Counter, AlarmDestructorDisarms) {
  Counter c{"c"};
  int count = 0;
  {
    Alarm a{c, [&](Alarm&, u64) { ++count; }};
    a.arm_at(5);
  }
  c.advance(10);  // must not touch the dead alarm
  EXPECT_EQ(count, 0);
}

TEST(Interrupts, IsrRunsImmediatelyDsrDeferred) {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  Kernel k{cfg};
  std::vector<std::string> order;
  k.interrupts().attach(
      3, InterruptHandler{[&](u32) {
                            order.push_back("isr");
                            return IsrResult::kCallDsr;
                          },
                          [&](u32) { order.push_back("dsr"); }});
  k.spawn("raiser", 5, [&] {
    k.interrupts().raise(3);
    order.push_back("after-raise");
    k.yield();  // DSR drains once we re-enter the scheduler
    order.push_back("after-yield");
  });
  k.run(true);
  EXPECT_EQ(order, (std::vector<std::string>{"isr", "after-raise", "dsr",
                                             "after-yield"}));
}

TEST(Interrupts, HandledResultSkipsDsr) {
  KernelConfig cfg;
  Kernel k{cfg};
  int dsr_runs = 0;
  k.interrupts().attach(
      1, InterruptHandler{[](u32) { return IsrResult::kHandled; },
                          [&](u32) { ++dsr_runs; }});
  k.spawn("t", 5, [&] {
    k.interrupts().raise(1);
    k.yield();
  });
  k.run(true);
  EXPECT_EQ(dsr_runs, 0);
}

TEST(Interrupts, UnattachedVectorCountsSpurious) {
  Kernel k{KernelConfig{}};
  k.interrupts().raise(99);
  EXPECT_EQ(k.interrupts().spurious_count(), 1u);
}

TEST(Interrupts, MaskDefersUnmaskDelivers) {
  Kernel k{KernelConfig{}};
  int isr_runs = 0;
  k.interrupts().attach(
      2, InterruptHandler{[&](u32) {
                            ++isr_runs;
                            return IsrResult::kHandled;
                          },
                          nullptr});
  k.interrupts().mask(2);
  k.interrupts().raise(2);
  k.interrupts().raise(2);
  EXPECT_EQ(isr_runs, 0);
  k.interrupts().unmask(2);
  EXPECT_EQ(isr_runs, 2);
}

TEST(Interrupts, DsrWakesApplicationThread) {
  // The canonical driver shape: ISR defers, DSR posts, app thread handles.
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  Kernel k{cfg};
  Semaphore pending{k, 0};
  int handled = 0;
  k.interrupts().attach(
      7, InterruptHandler{[](u32) { return IsrResult::kCallDsr; },
                          [&](u32) { pending.post(); }});
  k.spawn("app", 8, [&] {
    pending.wait();
    ++handled;
  });
  k.spawn("raiser", 5, [&] {
    k.consume(20);
    k.interrupts().raise(7);
  });
  k.run(true);
  EXPECT_EQ(handled, 1);
}

TEST(RealTimeClock, TracksKernelTicks) {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  Kernel k{cfg};
  std::vector<u64> alarm_ticks;
  Alarm periodic{k.real_time_clock(),
                 [&](Alarm&, u64 v) { alarm_ticks.push_back(v); }};
  periodic.arm_at(2, 3);
  k.spawn("t", 5, [&] { k.consume(100); });
  k.run(true);
  // Ticks 2,5,8 within 10 ticks of work.
  EXPECT_EQ(alarm_ticks, (std::vector<u64>{2, 5, 8}));
}

}  // namespace
}  // namespace vhp::rtos
