// Chaos soak (ISSUE 5 satellite c): the router case study under seeded
// fault plans must converge to the clean run's outcome bit-exactly.
//
// One clean two-party baseline per fault kind, then 10 fixed seeds of
// {drop, reorder, delay, disconnect} plans with the recovery layer on. The
// recovery protocol (vhp/fault/reliable.hpp) guarantees per-quantum
// delivery, so a faulted run is indistinguishable at the application layer:
// identical packet counts, identical final virtual time, and — checked once
// with the flight recorder on — an identical hw-side frame recording
// (injected-fault markers are annotations the divergence checker skips).
//
// Fiber-bound (real boards), so labeled "fault", not "fault-tsan".
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "vhp/cosim/session.hpp"
#include "vhp/fault/plan.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::fault {
namespace {

using namespace std::chrono_literals;

// Scaled-down router workload (cf. fabric_session_test's baseline): small
// enough for 41 runs per suite, big enough that every port forwards,
// corrupts and drops traffic.
constexpr u64 kTsync = 200;
// Fixed virtual length for every run: identical grant sequences make the
// recordings comparable frame for frame; drained is asserted separately.
constexpr u64 kTotalCycles = 30000;

router::TestbenchConfig testbench_config() {
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = 2;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 800;
  tb_cfg.payload_bytes = 8;
  tb_cfg.corrupt_probability = 0.25;
  return tb_cfg;
}

struct RunResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 board_ticks = 0;
  u64 injected = 0;
  bool drained = false;
  obs::Recording hw_recording;
};

/// One full co-simulated router run under `plan`. An unarmed plan with
/// `recover` off is the clean baseline.
RunResult run_router(const FaultPlan& plan, bool recover, bool record) {
  cosim::SessionConfigBuilder builder;
  builder.t_sync(kTsync).cycles_per_tick(10).postmortem_prefix("");
  RecoveryConfig recovery;
  recovery.enabled = recover;
  recovery.rto = 2ms;  // tight timers keep 41 runs per suite fast
  recovery.rto_max = 50ms;
  builder.fault_plan(plan).recovery(recovery);
  if (record) builder.record().record_ring(1u << 14);
  cosim::CosimSession session{builder.build_or_throw()};

  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  router::RouterTestbench tb{session.hw().kernel(), testbench_config(),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_cfg};

  session.start_board();
  for (u64 cycles = 0; cycles < kTotalCycles; cycles += 500) {
    EXPECT_TRUE(session.run_cycles(500).ok());
  }
  session.finish();

  RunResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.board_ticks = session.board().kernel().tick_count().value();
  result.drained = tb.traffic_done();
  if (session.fault_schedule() != nullptr) {
    result.injected = session.fault_schedule()->injected();
  }
  if (record) {
    result.hw_recording.meta.side = "hw";
    result.hw_recording.frames = session.obs().hw_recorder().snapshot();
  }
  return result;
}

FaultPlan make_plan(FaultKind kind, u64 seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule;
  rule.kind = kind;
  switch (kind) {
    case FaultKind::kDrop:
      rule.probability = 0.05;
      break;
    case FaultKind::kReorder:
      rule.probability = 0.05;
      break;
    case FaultKind::kDelay:
      rule.probability = 0.2;
      rule.delay = std::chrono::microseconds{200};
      break;
    case FaultKind::kDisconnect:
      rule.probability = 0.01;
      rule.burst = 5;
      rule.max_events = 2;
      break;
    default:
      ADD_FAILURE() << "unhandled kind in make_plan";
  }
  plan.add(rule);
  return plan;
}

/// 10 fixed seeds of one fault kind vs the clean baseline: exact packet
/// counts and exact final virtual time.
void soak(FaultKind kind) {
  const RunResult base = run_router(FaultPlan{}, /*recover=*/false,
                                    /*record=*/false);
  ASSERT_TRUE(base.drained) << "clean baseline did not drain";
  ASSERT_GT(base.emitted, 0u);
  ASSERT_GT(base.board_ticks, 0u);

  for (u64 seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("kind=" + std::string(to_string(kind)) +
                 " seed=" + std::to_string(seed));
    const RunResult faulted =
        run_router(make_plan(kind, seed), /*recover=*/true, /*record=*/false);
    EXPECT_TRUE(faulted.drained);
    EXPECT_EQ(faulted.emitted, base.emitted);
    EXPECT_EQ(faulted.forwarded, base.forwarded);
    EXPECT_EQ(faulted.received, base.received);
    EXPECT_EQ(faulted.dropped, base.dropped);
    EXPECT_EQ(faulted.board_ticks, base.board_ticks);
  }
}

TEST(ChaosSoakTest, DropPlansConvergeToCleanBaseline) {
  soak(FaultKind::kDrop);
}

TEST(ChaosSoakTest, ReorderPlansConvergeToCleanBaseline) {
  soak(FaultKind::kReorder);
}

TEST(ChaosSoakTest, DelayPlansConvergeToCleanBaseline) {
  soak(FaultKind::kDelay);
}

TEST(ChaosSoakTest, DisconnectReconnectPlansConvergeToCleanBaseline) {
  soak(FaultKind::kDisconnect);
}

TEST(ChaosSoakTest, FaultedRecordingMatchesTheCleanRecording) {
  // The strongest form of the convergence claim: the hw-side flight
  // recording of a faulted run diffs clean against the baseline's, because
  // the recorder sits above the recovery layer and only ever sees repaired
  // traffic. Fault markers are present (proving faults fired) but skipped.
  const RunResult base = run_router(FaultPlan{}, /*recover=*/false,
                                    /*record=*/true);
  const RunResult faulted = run_router(make_plan(FaultKind::kDrop, 7),
                                       /*recover=*/true, /*record=*/true);
  ASSERT_TRUE(base.drained);
  ASSERT_TRUE(faulted.drained);
  EXPECT_GT(faulted.injected, 0u);

  std::size_t markers = 0;
  for (const obs::FrameRecord& frame : faulted.hw_recording.frames) {
    markers += (frame.flags & obs::kFrameFlagInjected) != 0 ? 1 : 0;
  }
  EXPECT_EQ(markers, faulted.injected);

  const auto divergence = obs::diff_recordings(
      base.hw_recording, faulted.hw_recording, &net::message_field_diff);
  EXPECT_FALSE(divergence.has_value())
      << "faulted run diverged: " << divergence->to_string();
}

}  // namespace
}  // namespace vhp::fault
