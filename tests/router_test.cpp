// Case-study tests: packet codec, the router HDL model standalone (local
// checksum), and the full co-simulated configuration with the checksum
// application on the virtual board.
#include <gtest/gtest.h>

#include "vhp/cosim/session.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::router {
namespace {

// ---------- packet ----------

TEST(Packet, PackUnpackRoundTrip) {
  Packet p;
  p.src = 3;
  p.dst = 9;
  p.id = 0x12345678;
  p.payload = {1, 2, 3, 4, 5};
  p.finalize_checksum();
  auto back = Packet::unpack(p.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(Packet, FinalizedChecksumVerifies) {
  Packet p;
  p.payload = Bytes(64, 0x5a);
  p.finalize_checksum();
  EXPECT_TRUE(p.checksum_ok());
  EXPECT_TRUE(packed_checksum_ok(p.pack()));
}

TEST(Packet, CorruptionDetected) {
  Packet p;
  p.src = 1;
  p.payload = {10, 20, 30, 40};
  p.finalize_checksum();
  for (std::size_t i = 0; i < p.payload.size(); ++i) {
    Packet bad = p;
    bad.payload[i] ^= 0x01;
    EXPECT_FALSE(bad.checksum_ok()) << "flip at " << i;
  }
}

TEST(Packet, EmptyPayloadLegal) {
  Packet p;
  p.finalize_checksum();
  EXPECT_TRUE(p.checksum_ok());
  EXPECT_TRUE(Packet::unpack(p.pack()).has_value());
}

TEST(Packet, UnpackRejectsTruncation) {
  Packet p;
  p.payload = {1, 2, 3};
  p.finalize_checksum();
  Bytes raw = p.pack();
  for (std::size_t cut = 1; cut < raw.size(); ++cut) {
    EXPECT_FALSE(
        Packet::unpack(std::span(raw.data(), raw.size() - cut)).has_value());
  }
}

TEST(Packet, UnpackRejectsBadLengthField) {
  Packet p;
  p.payload = {1, 2, 3};
  p.finalize_checksum();
  Bytes raw = p.pack();
  raw[6] = 0xff;  // inflate the length field
  EXPECT_FALSE(Packet::unpack(raw).has_value());
}

TEST(Packet, PeekIdWithoutParse) {
  Packet p;
  p.id = 0xabcdef01;
  p.payload = {1};
  p.finalize_checksum();
  EXPECT_EQ(Packet::peek_id(p.pack()), 0xabcdef01u);
  EXPECT_FALSE(Packet::peek_id(Bytes{1, 2}).has_value());
}

// ---------- router, standalone (local checksum) ----------

TestbenchConfig local_cfg() {
  TestbenchConfig cfg;
  cfg.router.remote_checksum = false;
  cfg.router.buffer_depth = 8;
  cfg.packets_per_port = 10;
  cfg.gap_cycles = 20;
  cfg.payload_bytes = 16;
  return cfg;
}

TEST(RouterLocal, ForwardsAllGoodPackets) {
  sim::Kernel k;
  RouterTestbench tb{k, local_cfg()};
  k.run(200000);
  EXPECT_TRUE(tb.traffic_done());
  EXPECT_EQ(tb.total_emitted(), 40u);
  EXPECT_EQ(tb.router().stats().forwarded, 40u);
  EXPECT_EQ(tb.total_received(), 40u);
  EXPECT_EQ(tb.total_integrity_failures(), 0u);
  EXPECT_EQ(tb.router().stats().dropped_input_full, 0u);
  EXPECT_DOUBLE_EQ(tb.forward_ratio(), 1.0);
}

TEST(RouterLocal, DropsCorruptPackets) {
  auto cfg = local_cfg();
  cfg.corrupt_probability = 1.0;  // every packet corrupted
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(200000);
  EXPECT_TRUE(tb.traffic_done());
  EXPECT_EQ(tb.router().stats().dropped_bad_checksum, 40u);
  EXPECT_EQ(tb.router().stats().forwarded, 0u);
  EXPECT_EQ(tb.total_received(), 0u);
}

TEST(RouterLocal, MixedTrafficSplitsCorrectly) {
  auto cfg = local_cfg();
  cfg.corrupt_probability = 0.5;
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(400000);
  EXPECT_TRUE(tb.traffic_done());
  const auto& s = tb.router().stats();
  EXPECT_EQ(s.forwarded + s.dropped_bad_checksum, 40u);
  EXPECT_GT(s.dropped_bad_checksum, 0u);
  EXPECT_GT(s.forwarded, 0u);
  EXPECT_EQ(tb.total_received(), s.forwarded);
  EXPECT_EQ(tb.total_integrity_failures(), 0u);  // bad ones never forwarded
}

TEST(RouterLocal, InputOverflowDropsWhenRouterIsSlow) {
  auto cfg = local_cfg();
  cfg.router.buffer_depth = 2;
  cfg.router.proc_cycles = 200;  // router far slower than arrivals
  cfg.gap_cycles = 10;
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(2000000);
  EXPECT_GT(tb.router().stats().dropped_input_full, 0u);
  EXPECT_EQ(tb.router().stats().accepted + tb.router().stats().dropped_input_full,
            40u);
}

TEST(RouterLocal, RoutingTableOverridesModulo) {
  auto cfg = local_cfg();
  // Everything to port 2, whatever the destination byte.
  for (int d = 0; d < 256; ++d) {
    cfg.router.routes[static_cast<u8>(d)] = 2;
  }
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(200000);
  EXPECT_TRUE(tb.traffic_done());
  EXPECT_EQ(tb.router().output(2).size() +
                /* consumer drained them */ tb.total_received(),
            40u + tb.router().output(2).size());
  EXPECT_EQ(tb.total_received(), 40u);
}

TEST(RouterLocal, UnroutableDestinationCounted) {
  auto cfg = local_cfg();
  cfg.router.routes[0] = 0;  // only destination 0 is routable
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(400000);
  EXPECT_TRUE(tb.traffic_done());
  const auto& s = tb.router().stats();
  EXPECT_EQ(s.forwarded + s.dropped_no_route, s.processed);
  EXPECT_GT(s.dropped_no_route, 0u);
}

TEST(RouterLocal, RoundRobinServesAllPorts) {
  auto cfg = local_cfg();
  cfg.packets_per_port = 5;
  sim::Kernel k;
  RouterTestbench tb{k, cfg};
  k.run(200000);
  EXPECT_TRUE(tb.traffic_done());
  EXPECT_EQ(tb.router().stats().processed, 20u);
}

// ---------- router, co-simulated with the board checksum app ----------

struct CosimRouterRig {
  cosim::SessionConfig session_cfg;
  std::unique_ptr<cosim::CosimSession> session;
  std::unique_ptr<RouterTestbench> tb;
  std::unique_ptr<ChecksumApp> app;

  explicit CosimRouterRig(u64 t_sync, TestbenchConfig tb_cfg,
                          cosim::TransportKind transport =
                              cosim::TransportKind::kInProc) {
    session_cfg.transport = transport;
    session_cfg.cosim.t_sync = t_sync;
    session_cfg.board.rtos.cycles_per_tick = 10;
    session = std::make_unique<cosim::CosimSession>(session_cfg);
    tb_cfg.router.remote_checksum = true;
    tb = std::make_unique<RouterTestbench>(session->hw().kernel(), tb_cfg,
                                           &session->hw().registry());
    session->hw().watch_interrupt(tb->router().irq(),
                                  board::Board::kDeviceVector);
    ChecksumAppConfig app_cfg;
    app_cfg.cost_base = 20;
    app_cfg.cost_per_byte = 1;
    app = std::make_unique<ChecksumApp>(session->board(), app_cfg);
    session->start_board();
  }

  /// Runs until traffic drains or the cycle limit hits; returns cycles run.
  u64 run_until_done(u64 limit) {
    u64 cycles = 0;
    while (cycles < limit && !tb->traffic_done()) {
      EXPECT_TRUE(session->run_cycles(100).ok());
      cycles += 100;
    }
    return cycles;
  }
};

TEST(RouterCosim, VerdictTimeoutUnwedgesDeadBoard) {
  // Remote checksum with NO checksum application on the board: verdicts
  // never come. With a timeout configured, the router must drop every
  // packet and drain instead of wedging forever.
  cosim::SessionConfig scfg;
  scfg.transport = cosim::TransportKind::kInProc;
  scfg.cosim.t_sync = 10;
  cosim::CosimSession session{scfg};
  TestbenchConfig cfg;
  cfg.packets_per_port = 2;
  cfg.gap_cycles = 50;
  cfg.router.remote_checksum = true;
  cfg.router.verdict_timeout_cycles = 100;
  RouterTestbench tb{session.hw().kernel(), cfg, &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  // Deliberately: no ChecksumApp, no DSR.
  session.start_board();
  u64 cycles = 0;
  while (cycles < 100000 && !tb.traffic_done()) {
    ASSERT_TRUE(session.run_cycles(100).ok());
    cycles += 100;
  }
  session.finish();
  EXPECT_TRUE(tb.traffic_done());
  EXPECT_EQ(tb.router().stats().dropped_verdict_timeout, 8u);
  EXPECT_EQ(tb.router().stats().forwarded, 0u);
}

TEST(RouterCosim, TightSyncForwardsEverything) {
  TestbenchConfig cfg;
  cfg.packets_per_port = 5;
  cfg.gap_cycles = 200;
  cfg.payload_bytes = 16;
  cfg.router.buffer_depth = 8;
  CosimRouterRig rig{/*t_sync=*/10, cfg};
  rig.run_until_done(2000000);
  rig.session->finish();
  EXPECT_TRUE(rig.tb->traffic_done());
  EXPECT_EQ(rig.tb->total_emitted(), 20u);
  EXPECT_EQ(rig.tb->router().stats().forwarded, 20u);
  EXPECT_EQ(rig.app->processed(), 20u);
  EXPECT_EQ(rig.app->rejected(), 0u);
  EXPECT_EQ(rig.tb->total_received(), 20u);
}

TEST(RouterCosim, BoardRejectsCorruptPackets) {
  TestbenchConfig cfg;
  cfg.packets_per_port = 4;
  cfg.gap_cycles = 300;
  cfg.corrupt_probability = 1.0;
  cfg.router.buffer_depth = 8;
  CosimRouterRig rig{/*t_sync=*/10, cfg};
  rig.run_until_done(2000000);
  rig.session->finish();
  EXPECT_TRUE(rig.tb->traffic_done());
  EXPECT_EQ(rig.app->processed(), 16u);
  EXPECT_EQ(rig.app->rejected(), 16u);
  EXPECT_EQ(rig.tb->router().stats().dropped_bad_checksum, 16u);
  EXPECT_EQ(rig.tb->router().stats().forwarded, 0u);
}

TEST(RouterCosim, LooseSyncLosesPacketsUnderLoad) {
  // The Figure 7 mechanism in miniature: long sync quanta delay the verdict
  // round trip; with fast arrivals and shallow buffers, packets drop.
  TestbenchConfig cfg;
  cfg.packets_per_port = 10;
  cfg.gap_cycles = 30;  // aggressive arrival rate
  cfg.router.buffer_depth = 2;
  CosimRouterRig rig{/*t_sync=*/5000, cfg};
  rig.run_until_done(3000000);
  rig.session->finish();
  const auto& s = rig.tb->router().stats();
  EXPECT_GT(s.dropped_input_full, 0u);
  EXPECT_LT(rig.tb->forward_ratio(), 1.0);
}

}  // namespace
}  // namespace vhp::router
