// Failure-injection tests: the co-simulation must degrade into clean,
// reported errors — never hangs — when a peer dies, misbehaves, or
// addresses a hole in the device map.
#include <gtest/gtest.h>

#include <thread>

#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::cosim {
namespace {

using namespace std::chrono_literals;

TEST(Failure, BoardVanishesDuringAckWait) {
  // The peer closes every channel instead of acking: run_cycles must
  // return an error promptly, not spin forever.
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.t_sync = 10;
  CosimKernel hw{std::move(pair.hw), cfg};
  std::thread peer{[&] {
    ASSERT_TRUE(net::send_msg(*pair.board.clock, net::TimeAck{0}).ok());
    // Receive the first tick, then die.
    (void)net::recv_msg(*pair.board.clock, 2000ms);
    pair.board.close_all();
  }};
  const Status s = hw.run_cycles(100);
  peer.join();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(Failure, BoardVanishesBeforeHandshake) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  CosimKernel hw{std::move(pair.hw), cfg};
  pair.board.close_all();
  const Status s = hw.handshake(1000ms);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
}

TEST(Failure, WrongMessageOnClockPortIsProtocolError) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  CosimKernel hw{std::move(pair.hw), cfg};
  // A confused peer sends an interrupt message on the CLOCK port.
  ASSERT_TRUE(net::send_msg(*pair.board.clock, net::IntRaise{1}).ok());
  const Status s = hw.handshake(1000ms);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(Failure, WriteToUnmappedDeviceAddressSurfaces) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.timed = false;
  CosimKernel hw{std::move(pair.hw), cfg};
  ASSERT_TRUE(
      net::send_msg(*pair.board.data, net::DataWrite{0xbad, Bytes{1}}).ok());
  const Status s = hw.run_cycles(1);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(Failure, GarbageFrameOnDataPortSurfaces) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.timed = false;
  CosimKernel hw{std::move(pair.hw), cfg};
  ASSERT_TRUE(pair.board.data->send(Bytes{0xff, 0xff, 0xff}).ok());
  const Status s = hw.run_cycles(1);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Failure, HwKernelVanishesMidSessionBoardStops) {
  // Full session: destroy the HW side abruptly (link teardown included);
  // the board host thread must terminate on its own.
  auto pair = net::make_inproc_link_pair();
  board::BoardConfig bcfg;
  board::BoardHost host{bcfg, std::move(pair.board)};
  host.start();
  // Consume the initial ack, then vanish without SHUTDOWN.
  auto ack = net::recv_msg(*pair.hw.clock, 2000ms);
  ASSERT_TRUE(ack.ok());
  pair.hw.close_all();
  host.join();  // must return; a hang fails via the test timeout
  SUCCEED();
}

TEST(Failure, ChecksumAppSurvivesAbruptTeardown) {
  // The session is finished while packets are still in flight; everything
  // must unwind without crashes (deadlock-free by this test completing).
  // Note the lifetime rule: HDL-side objects (modules, signals, events)
  // register with the session's simulation kernel and must be destroyed
  // BEFORE it — i.e. declared after the session, as here.
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kInProc;
  cfg.cosim.t_sync = 50;
  cosim::CosimSession session{cfg};
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.packets_per_port = 100;
  tb_cfg.gap_cycles = 20;  // flood
  router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), {}};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(500).ok());  // mid-traffic
  session.finish();  // shutdown + join with traffic still queued
  EXPECT_LT(tb.router().stats().forwarded, tb.total_emitted());
  SUCCEED();
}

TEST(Failure, ReadOfUnmappedAddressFailsCleanly) {
  DriverRegistry reg;
  auto r = reg.serve_read(0x123, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Failure, ZeroLengthDeviceReadIsLegal) {
  DriverRegistry reg;
  reg.register_read(0x0, [] { return Bytes{1, 2, 3}; });
  auto r = reg.serve_read(0x0, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

}  // namespace
}  // namespace vhp::cosim
