// vhp::mem timing-model units (DESIGN.md §13), fiber-free: set-associative
// cache LRU behaviour, banked-memory occupancy and conflicts, the pipeline
// stall formula and its flat-cost degeneration, config validation, and the
// assembled MemorySystem's deterministic cycle arithmetic.
#include <gtest/gtest.h>

#include "vhp/mem/banked_memory.hpp"
#include "vhp/mem/cache.hpp"
#include "vhp/mem/config.hpp"
#include "vhp/mem/pipeline.hpp"
#include "vhp/mem/system.hpp"

namespace vhp::mem {
namespace {

CacheConfig tiny_cache(u32 ways, u32 sets) {
  CacheConfig cfg;
  cfg.line_bytes = 16;
  cfg.ways = ways;
  cfg.sets = sets;
  return cfg;
}

TEST(CacheTest, MissThenHitOnSameLine) {
  Cache c{tiny_cache(2, 4)};
  const CacheAccess first = c.access(0x1000);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.fill_addr, 0x1000u);  // line-aligned
  // Any address inside the same 16-byte line now hits.
  EXPECT_TRUE(c.access(0x1004).hit);
  EXPECT_TRUE(c.access(0x100f).hit);
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(CacheTest, FillAddrIsLineAligned) {
  Cache c{tiny_cache(1, 4)};
  const CacheAccess a = c.access(0x2009);
  EXPECT_FALSE(a.hit);
  EXPECT_EQ(a.fill_addr, 0x2000u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsedWay) {
  // One set, two ways: three distinct lines force an eviction; touching A
  // between fills makes B the LRU victim.
  Cache c{tiny_cache(2, 1)};
  const u64 A = 0x000, B = 0x100, C = 0x200;
  EXPECT_FALSE(c.access(A).hit);
  EXPECT_FALSE(c.access(B).hit);
  EXPECT_TRUE(c.access(A).hit);   // A is now MRU
  EXPECT_FALSE(c.access(C).hit);  // evicts B
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_TRUE(c.access(A).hit);   // A survived
  EXPECT_FALSE(c.access(B).hit);  // B was the victim
}

TEST(CacheTest, DistinctSetsDoNotConflict) {
  // Direct-mapped, 4 sets of 16 bytes: consecutive lines land in
  // consecutive sets and coexist.
  Cache c{tiny_cache(1, 4)};
  for (u64 line = 0; line < 4; ++line) {
    EXPECT_FALSE(c.access(line * 16).hit);
  }
  for (u64 line = 0; line < 4; ++line) {
    EXPECT_TRUE(c.access(line * 16).hit) << "line " << line;
  }
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(CacheTest, InvalidateAllDropsEveryLine) {
  Cache c{tiny_cache(2, 2)};
  c.access(0x0);
  c.access(0x40);
  EXPECT_TRUE(c.access(0x0).hit);
  c.invalidate_all();
  EXPECT_FALSE(c.access(0x0).hit);
  EXPECT_FALSE(c.access(0x40).hit);
}

BankedMemoryConfig bank_cfg() {
  BankedMemoryConfig cfg;
  cfg.banks = 4;
  cfg.stride_bytes = 32;
  cfg.access_cycles = 6;
  cfg.busy_cycles = 4;
  return cfg;
}

TEST(BankedMemoryTest, AddressesInterleaveByStride) {
  BankedMemory m{bank_cfg()};
  EXPECT_EQ(m.bank_of(0), 0u);
  EXPECT_EQ(m.bank_of(32), 1u);
  EXPECT_EQ(m.bank_of(64), 2u);
  EXPECT_EQ(m.bank_of(96), 3u);
  EXPECT_EQ(m.bank_of(128), 0u);  // wraps
  EXPECT_EQ(m.bank_of(33), 1u);   // within-stride offset ignored
}

TEST(BankedMemoryTest, UncontendedRequestCompletesAtAccessLatency) {
  BankedMemory m{bank_cfg()};
  const BankAccess a = m.request(0, 100);
  EXPECT_EQ(a.bank, 0u);
  EXPECT_EQ(a.wait_cycles, 0u);
  EXPECT_EQ(a.complete_at, 106u);  // now + access_cycles
  EXPECT_EQ(m.conflicts(), 0u);
}

TEST(BankedMemoryTest, BackToBackSameBankSerializesOnBusyWindow) {
  BankedMemory m{bank_cfg()};
  (void)m.request(0, 0);           // bank 0 busy until cycle 4
  const BankAccess b = m.request(0, 0);
  EXPECT_EQ(b.wait_cycles, 4u);    // queued behind the busy window
  EXPECT_EQ(b.complete_at, 10u);   // starts at 4, + access_cycles
  EXPECT_EQ(m.conflicts(), 1u);
  EXPECT_EQ(m.conflict_wait_cycles(), 4u);
  // A later arrival past the busy window sails through.
  const BankAccess c = m.request(0, 50);
  EXPECT_EQ(c.wait_cycles, 0u);
  EXPECT_EQ(m.conflicts(), 1u);
}

TEST(BankedMemoryTest, DifferentBanksNeverConflict) {
  BankedMemory m{bank_cfg()};
  for (u64 i = 0; i < 4; ++i) {
    const BankAccess a = m.request(i * 32, 0);
    EXPECT_EQ(a.bank, i);
    EXPECT_EQ(a.wait_cycles, 0u);
  }
  EXPECT_EQ(m.conflicts(), 0u);
  EXPECT_EQ(m.requests(), 4u);
  for (u32 b = 0; b < 4; ++b) EXPECT_EQ(m.bank_requests(b), 1u);
}

TEST(PipelineModelTest, IdealMemoryDegeneratesToFlatCost) {
  // The bit-compat property: 1-cycle I-hit and 1-cycle D-hit charge exactly
  // the flat StepResult cost, for any exec cost.
  PipelineModel p;
  EXPECT_EQ(p.instruction(1, 1, 1), 1u);
  EXPECT_EQ(p.instruction(2, 1, 0), 2u);  // branch, no data access
  EXPECT_EQ(p.instruction(34, 1, 1), 34u);  // div
  EXPECT_EQ(p.stats().fetch_stall_cycles, 0u);
  EXPECT_EQ(p.stats().data_stall_cycles, 0u);
  EXPECT_EQ(p.stats().total_cycles, 37u);
  EXPECT_EQ(p.stats().instructions, 3u);
}

TEST(PipelineModelTest, MissLatencyBecomesStallCycles) {
  PipelineModel p;
  // 10-cycle fetch path: 9 cycles of front-end stall on a 1-cycle op.
  EXPECT_EQ(p.instruction(1, 10, 0), 10u);
  EXPECT_EQ(p.stats().fetch_stall_cycles, 9u);
  // 1-cycle fetch hit + 7-cycle data path: 6 cycles of data stall.
  EXPECT_EQ(p.instruction(1, 1, 7), 7u);
  EXPECT_EQ(p.stats().data_stall_cycles, 6u);
}

TEST(MemConfigValidation, PreciseErrorsNamingTheKnob) {
  MemConfig cfg;
  cfg.icache.line_bytes = 48;
  Status s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("icache.line_bytes"), std::string::npos) << s;

  cfg = MemConfig{};
  cfg.dcache.ways = 0;
  s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dcache.ways"), std::string::npos) << s;

  cfg = MemConfig{};
  cfg.icache.sets = 3;
  s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("icache.sets"), std::string::npos) << s;

  cfg = MemConfig{};
  cfg.memory.banks = 0;
  s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("memory.banks"), std::string::npos) << s;

  cfg = MemConfig{};
  cfg.memory.stride_bytes = 24;
  s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("memory.stride_bytes"), std::string::npos) << s;

  cfg = MemConfig{};
  cfg.dcache.hit_cycles = 0;
  s = cfg.validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dcache.hit_cycles"), std::string::npos) << s;

  EXPECT_TRUE(MemConfig{}.validate().ok());
}

TEST(MemorySystemTest, FetchTimingIsExactCycleArithmetic) {
  // Defaults: hit 1, miss penalty 2, hop 2, bank access 6.
  // Cold miss at now=0: issue downstream at 0+2; bank request enters the
  // interconnect (hop 2) at 4, completes at 10, returns over the hop at 12;
  // miss path = 12 - 2 = 10; total = hit(1) + penalty(2) + 10 = 13.
  MemorySystem sys{MemConfig{}, 1};
  CorePort& port = sys.port(0);
  EXPECT_EQ(port.fetch(0x1000, 0), 13u);
  // Warm: plain hit.
  EXPECT_EQ(port.fetch(0x1000, 13), 1u);
  EXPECT_EQ(port.icache().misses(), 1u);
  EXPECT_EQ(port.icache().hits(), 1u);
}

TEST(MemorySystemTest, CoresContendOnSharedBanks) {
  MemorySystem sys{MemConfig{}, 2};
  // Both cores cold-miss lines mapping to bank 0 at the same virtual time:
  // the second fill queues behind the first's busy window.
  const u64 line_a = 0;
  const u64 line_b = 32 * 4;  // banks=4, stride=32 -> same bank, other line
  EXPECT_EQ(sys.memory().bank_of(line_a), sys.memory().bank_of(line_b));
  const u64 first = sys.port(0).data_access(line_a, false, 0);
  const u64 second = sys.port(1).data_access(line_b, true, 0);
  EXPECT_GT(second, first);  // contention stall is visible in the timing
  EXPECT_EQ(sys.memory().conflicts(), 1u);
}

TEST(MemorySystemTest, IdenticalAccessStreamsTimeIdentically) {
  // Determinism: the model is pure arithmetic over (addr, now) streams.
  auto run = [] {
    MemorySystem sys{MemConfig{}, 2};
    u64 sum = 0;
    u64 now = 0;
    for (u64 i = 0; i < 200; ++i) {
      const u32 core = i % 2 == 0 ? 0 : 1;
      const u64 addr = (i * 52) % 4096;
      const u64 cost = sys.port(core).data_access(addr, i % 3 == 0, now);
      sum += cost;
      now += cost;
    }
    return std::tuple{sum, sys.memory().conflicts(),
                      sys.port(0).dcache().misses(),
                      sys.port(1).dcache().misses()};
  };
  EXPECT_EQ(run(), run());
}

TEST(MemorySystemTest, MetricsCollectorPublishesGauges) {
  MemorySystem sys{MemConfig{}, 2};
  (void)sys.port(0).fetch(0x0, 0);
  (void)sys.port(1).fetch(0x0, 0);  // same line, other core: its own miss
  (void)sys.port(0).pipeline().instruction(1, 13, 0);
  sys.obs().collect();
  auto& metrics = sys.obs().metrics();
  EXPECT_EQ(metrics.gauge("mem.requests").value(), 2);
  EXPECT_EQ(metrics.gauge("mem.core0.instructions").value(), 1);
  EXPECT_EQ(metrics.gauge("mem.core0.fetch_stall_cycles").value(), 12);
  EXPECT_EQ(sys.port(1).icache().misses(), 1u);
}

}  // namespace
}  // namespace vhp::mem
