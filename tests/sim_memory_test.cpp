// Sparse memory model tests.
#include <gtest/gtest.h>

#include "vhp/common/rng.hpp"
#include "vhp/sim/memory.hpp"

namespace vhp::sim {
namespace {

TEST(Memory, UntouchedReadsAsZero) {
  Memory m{"m"};
  EXPECT_EQ(m.read_u8(0), 0);
  EXPECT_EQ(m.read_u32(0x12345678), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);  // reads allocate nothing
}

TEST(Memory, WriteReadRoundTrip) {
  Memory m{"m"};
  m.write_u32(0x100, 0xdeadbeef);
  EXPECT_EQ(m.read_u32(0x100), 0xdeadbeefu);
  m.write_u8(0x104, 0x42);
  EXPECT_EQ(m.read_u8(0x104), 0x42);
}

TEST(Memory, LittleEndianLayout) {
  Memory m{"m"};
  m.write_u32(0x0, 0x11223344);
  EXPECT_EQ(m.read_u8(0x0), 0x44);
  EXPECT_EQ(m.read_u8(0x3), 0x11);
}

TEST(Memory, CrossPageTransfers) {
  Memory m{"m"};
  const u64 addr = Memory::kPageBytes - 3;  // straddles a page boundary
  const Bytes data{1, 2, 3, 4, 5, 6};
  m.write(addr, data);
  EXPECT_EQ(m.read(addr, data.size()), data);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Memory, SparseFootprint) {
  Memory m{"m"};
  m.write_u8(0, 1);
  m.write_u8(1ull << 32, 2);  // 4 GiB away
  EXPECT_EQ(m.resident_pages(), 2u);
  EXPECT_EQ(m.read_u8(0), 1);
  EXPECT_EQ(m.read_u8(1ull << 32), 2);
}

TEST(Memory, PartialOverwrite) {
  Memory m{"m"};
  m.write(0x10, Bytes{1, 2, 3, 4});
  m.write(0x11, Bytes{9, 9});
  EXPECT_EQ(m.read(0x10, 4), (Bytes{1, 9, 9, 4}));
}

TEST(Memory, ClearDropsEverything) {
  Memory m{"m"};
  m.write_u32(0x20, 7);
  m.clear();
  EXPECT_EQ(m.read_u32(0x20), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(Memory, AccessCountersTrack) {
  Memory m{"m"};
  m.write_u8(0, 1);
  (void)m.read_u8(0);
  (void)m.read_u8(1);
  EXPECT_EQ(m.writes(), 1u);
  EXPECT_EQ(m.reads(), 2u);
}

class MemoryRandomSweep : public ::testing::TestWithParam<u64> {};

TEST_P(MemoryRandomSweep, RandomWritesMatchReferenceMap) {
  // Property: the sparse memory behaves exactly like a flat reference map.
  Rng rng{GetParam()};
  Memory m{"m"};
  std::unordered_map<u64, u8> reference;
  for (int op = 0; op < 2000; ++op) {
    // Cluster addresses so page-boundary cases are hit often.
    const u64 addr = rng.below(4 * Memory::kPageBytes) +
                     (rng.below(4) << 40);
    const auto len = rng.range(1, 16);
    if (rng.chance(0.6)) {
      Bytes data(len);
      for (auto& b : data) b = static_cast<u8>(rng.below(256));
      m.write(addr, data);
      for (std::size_t i = 0; i < data.size(); ++i) {
        reference[addr + i] = data[i];
      }
    } else {
      const Bytes got = m.read(addr, len);
      for (std::size_t i = 0; i < got.size(); ++i) {
        auto it = reference.find(addr + i);
        const u8 want = it == reference.end() ? 0 : it->second;
        ASSERT_EQ(got[i], want) << "addr " << addr + i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryRandomSweep,
                         ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace vhp::sim
