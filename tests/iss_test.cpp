// RV32IM instruction-set simulator tests: instruction semantics, the mini
// assembler, whole programs, and the firmware integration with the board.
#include <gtest/gtest.h>

#include "vhp/common/checksum.hpp"
#include "vhp/common/rng.hpp"
#include "vhp/iss/assemble.hpp"
#include "vhp/iss/cpu.hpp"
#include "vhp/iss/runner.hpp"
#include "vhp/net/inproc.hpp"

namespace vhp::iss {
namespace {

constexpr u32 kBase = 0x1000;

/// Runs `a`'s program on a fresh CPU until ECALL/EBREAK or `max` steps.
struct ProgramRun {
  sim::Memory ram{"ram"};
  MemoryBus bus{ram};
  Cpu cpu{bus};
  TrapKind final_trap = TrapKind::kNone;

  explicit ProgramRun(const Asm& a, u64 max = 100000) {
    a.load_into(ram, kBase);
    cpu.set_pc(kBase);
    cpu.set_reg(Cpu::kRegSp, 0x20000);
    for (u64 i = 0; i < max; ++i) {
      const StepResult r = cpu.step();
      if (r.trap != TrapKind::kNone) {
        final_trap = r.trap;
        return;
      }
    }
    ADD_FAILURE() << "program did not terminate";
  }
};

TEST(IssAlu, ImmediateArithmetic) {
  Asm a;
  a.addi(1, 0, 100);
  a.addi(2, 1, -30);     // 70
  a.slti(3, 2, 71);      // 1
  a.sltiu(4, 2, 70);     // 0
  a.xori(5, 2, 0xff);    // 70 ^ 255
  a.ori(6, 2, 0x0f);
  a.andi(7, 2, 0x3c);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(1), 100u);
  EXPECT_EQ(r.cpu.reg(2), 70u);
  EXPECT_EQ(r.cpu.reg(3), 1u);
  EXPECT_EQ(r.cpu.reg(4), 0u);
  EXPECT_EQ(r.cpu.reg(5), 70u ^ 255u);
  EXPECT_EQ(r.cpu.reg(6), 70u | 0x0fu);
  EXPECT_EQ(r.cpu.reg(7), 70u & 0x3cu);
}

TEST(IssAlu, ShiftsIncludingArithmetic) {
  Asm a;
  a.li(1, 0x80000010);
  a.slli(2, 1, 3);
  a.srli(3, 1, 4);
  a.srai(4, 1, 4);
  a.addi(5, 0, 2);
  a.sll(6, 1, 5);
  a.srl(7, 1, 5);
  a.sra(8, 1, 5);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(2), 0x80000010u << 3);
  EXPECT_EQ(r.cpu.reg(3), 0x80000010u >> 4);
  EXPECT_EQ(r.cpu.reg(4), 0xf8000001u);  // arithmetic
  EXPECT_EQ(r.cpu.reg(6), 0x80000010u << 2);
  EXPECT_EQ(r.cpu.reg(7), 0x80000010u >> 2);
  EXPECT_EQ(r.cpu.reg(8), 0xe0000004u);
}

TEST(IssAlu, RegisterOpsAndComparisons) {
  Asm a;
  a.li(1, 7);
  a.li(2, 0xfffffffe);  // -2
  a.add(3, 1, 2);       // 5
  a.sub(4, 1, 2);       // 9
  a.slt(5, 2, 1);       // -2 < 7 -> 1
  a.sltu(6, 2, 1);      // huge < 7 -> 0
  a.xor_(7, 1, 2);
  a.or_(28, 1, 2);
  a.and_(29, 1, 2);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(3), 5u);
  EXPECT_EQ(r.cpu.reg(4), 9u);
  EXPECT_EQ(r.cpu.reg(5), 1u);
  EXPECT_EQ(r.cpu.reg(6), 0u);
  EXPECT_EQ(r.cpu.reg(7), 7u ^ 0xfffffffeu);
  EXPECT_EQ(r.cpu.reg(28), 7u | 0xfffffffeu);
  EXPECT_EQ(r.cpu.reg(29), 7u & 0xfffffffeu);
}

TEST(IssAlu, X0IsHardwiredZero) {
  Asm a;
  a.addi(0, 0, 123);  // write to x0: dropped
  a.add(1, 0, 0);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(0), 0u);
  EXPECT_EQ(r.cpu.reg(1), 0u);
}

TEST(IssMul, MulDivRem) {
  Asm a;
  a.li(1, 100000);
  a.li(2, 70000);
  a.mul(3, 1, 2);    // low 32 of 7e9
  a.mulhu(4, 1, 2);  // high 32
  a.li(5, 0xfffffff9);  // -7
  a.li(6, 3);
  a.div(7, 5, 6);    // -2
  a.rem(8, 5, 6);    // -1
  a.divu(9, 5, 6);
  a.remu(28, 5, 6);
  a.ecall();
  ProgramRun r{a};
  const u64 prod = 100000ull * 70000ull;
  EXPECT_EQ(r.cpu.reg(3), static_cast<u32>(prod));
  EXPECT_EQ(r.cpu.reg(4), static_cast<u32>(prod >> 32));
  EXPECT_EQ(static_cast<i32>(r.cpu.reg(7)), -2);
  EXPECT_EQ(static_cast<i32>(r.cpu.reg(8)), -1);
  EXPECT_EQ(r.cpu.reg(9), 0xfffffff9u / 3u);
  EXPECT_EQ(r.cpu.reg(28), 0xfffffff9u % 3u);
}

TEST(IssMul, DivisionEdgeCases) {
  Asm a;
  a.li(1, 42);
  a.li(2, 0);
  a.div(3, 1, 2);   // /0 -> -1
  a.divu(4, 1, 2);  // /0 -> all ones
  a.rem(5, 1, 2);   // %0 -> rs1
  a.remu(6, 1, 2);
  a.li(7, 0x80000000);
  a.li(8, 0xffffffff);
  a.div(9, 7, 8);   // overflow -> INT_MIN
  a.rem(28, 7, 8);  // -> 0
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(3), 0xffffffffu);
  EXPECT_EQ(r.cpu.reg(4), 0xffffffffu);
  EXPECT_EQ(r.cpu.reg(5), 42u);
  EXPECT_EQ(r.cpu.reg(6), 42u);
  EXPECT_EQ(r.cpu.reg(9), 0x80000000u);
  EXPECT_EQ(r.cpu.reg(28), 0u);
}

TEST(IssMem, LoadStoreAllWidthsAndSignedness) {
  Asm a;
  a.li(1, 0x4000);        // base
  a.li(2, 0xdeadbeef);
  a.sw(2, 1, 0);
  a.lw(3, 1, 0);
  a.lb(4, 1, 3);          // 0xde sign-extended
  a.lbu(5, 1, 3);
  a.lh(6, 1, 2);          // 0xdead sign-extended
  a.lhu(7, 1, 2);
  a.sb(2, 1, 8);          // 0xef
  a.lbu(8, 1, 8);
  a.sh(2, 1, 12);
  a.lhu(9, 1, 12);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(3), 0xdeadbeefu);
  EXPECT_EQ(r.cpu.reg(4), 0xffffffdeu);
  EXPECT_EQ(r.cpu.reg(5), 0xdeu);
  EXPECT_EQ(r.cpu.reg(6), 0xffffdeadu);
  EXPECT_EQ(r.cpu.reg(7), 0xdeadu);
  EXPECT_EQ(r.cpu.reg(8), 0xefu);
  EXPECT_EQ(r.cpu.reg(9), 0xbeefu);
}

TEST(IssControl, LoopSumsFirstHundredIntegers) {
  Asm a;
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.addi(1, 0, 0);    // sum
  a.addi(2, 0, 1);    // i
  a.addi(3, 0, 101);  // bound
  a.bind(loop);
  a.bge(2, 3, done);
  a.add(1, 1, 2);
  a.addi(2, 2, 1);
  a.j(loop);
  a.bind(done);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(1), 5050u);
}

TEST(IssControl, CallAndReturn) {
  Asm a;
  const auto func = a.make_label();
  const auto over = a.make_label();
  a.li(10, 20);
  a.jal(1, func);     // call
  a.addi(10, 10, 1);  // after return: 41 -> 42
  a.j(over);
  a.bind(func);       // doubles a0 + 1
  a.add(10, 10, 10);
  a.addi(10, 10, 1);
  a.ret();
  a.bind(over);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(10), 42u);
}

TEST(IssControl, LuiAuipcLi) {
  Asm a;
  a.lui(1, 0x12345);
  a.auipc(2, 0);      // pc of this instruction
  a.li(3, 0xcafebabe);
  a.li(4, 0x00000fff);  // exercises the lo>=0x800 carry path
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(1), 0x12345000u);
  EXPECT_EQ(r.cpu.reg(2), kBase + 4u);
  EXPECT_EQ(r.cpu.reg(3), 0xcafebabeu);
  EXPECT_EQ(r.cpu.reg(4), 0xfffu);
}

TEST(IssControl, BranchesBothDirections) {
  Asm a;
  const auto fwd = a.make_label();
  const auto back_target = a.make_label();
  const auto out = a.make_label();
  a.addi(1, 0, 0);
  a.j(fwd);
  a.bind(back_target);
  a.addi(1, 1, 100);  // executed second
  a.j(out);
  a.bind(fwd);
  a.addi(1, 1, 10);   // executed first
  a.j(back_target);   // backwards jump
  a.bind(out);
  a.ecall();
  ProgramRun r{a};
  EXPECT_EQ(r.cpu.reg(1), 110u);
}

TEST(IssTraps, IllegalInstruction) {
  sim::Memory ram{"ram"};
  ram.write_u32(kBase, 0xffffffffu);
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(kBase);
  EXPECT_EQ(cpu.step().trap, TrapKind::kIllegalInstruction);
  EXPECT_EQ(cpu.pc(), kBase);  // pc not advanced past the offender
}

TEST(IssTraps, MisalignedFetch) {
  sim::Memory ram{"ram"};
  MemoryBus bus{ram};
  Cpu cpu{bus};
  cpu.set_pc(kBase + 2);
  EXPECT_EQ(cpu.step().trap, TrapKind::kMisalignedFetch);
}

TEST(IssTraps, EbreakReported) {
  Asm a;
  a.ebreak();
  ProgramRun r{a};
  EXPECT_EQ(r.final_trap, TrapKind::kEbreak);
}

TEST(IssBus, MmioWindowInterceptsRam) {
  sim::Memory ram{"ram"};
  MemoryBus bus{ram};
  u32 last_store = 0;
  bus.map_mmio(
      0xf0000000u, 0x100,
      [](u32 offset, unsigned) { return offset + 1000; },
      [&](u32, u32 value, unsigned) { last_store = value; });
  EXPECT_EQ(bus.load(0xf0000010u, 4), 1016u);
  bus.store(0xf0000000u, 77, 4);
  EXPECT_EQ(last_store, 77u);
  // Outside the window: plain RAM.
  bus.store(0x100, 0xabcd, 4);
  EXPECT_EQ(bus.load(0x100, 4), 0xabcdu);
}

/// The flagship program property: the Internet checksum computed BY RV32
/// MACHINE CODE matches the host implementation on random buffers.
class IssChecksumProperty : public ::testing::TestWithParam<u64> {};

Asm checksum_program(u32 buf_addr, u32 len) {
  // a0 = buffer, a1 = len; result in a0 (RFC 1071, ~sum & 0xffff).
  Asm a;
  const auto loop = a.make_label();
  const auto odd = a.make_label();
  const auto fold = a.make_label();
  const auto fold_done = a.make_label();
  a.li(10, buf_addr);
  a.li(11, len);
  a.addi(12, 0, 0);   // sum
  a.bind(loop);
  a.slti(13, 11, 2);  // fewer than 2 bytes left?
  a.bne(13, 0, odd);
  a.lbu(14, 10, 0);   // big-endian 16-bit word
  a.slli(14, 14, 8);
  a.lbu(15, 10, 1);
  a.add(14, 14, 15);
  a.add(12, 12, 14);
  a.addi(10, 10, 2);
  a.addi(11, 11, -2);
  a.j(loop);
  a.bind(odd);
  a.beq(11, 0, fold);
  a.lbu(14, 10, 0);   // trailing byte, high half
  a.slli(14, 14, 8);
  a.add(12, 12, 14);
  a.bind(fold);       // while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16)
  a.srli(13, 12, 16);
  a.beq(13, 0, fold_done);
  a.li(15, 0xffff);
  a.and_(12, 12, 15);
  a.add(12, 12, 13);
  a.j(fold);
  a.bind(fold_done);
  a.xori(12, 12, -1); // ~sum
  a.li(15, 0xffff);
  a.and_(10, 12, 15);
  a.ecall();
  return a;
}

TEST_P(IssChecksumProperty, MachineCodeMatchesHostImplementation) {
  Rng rng{GetParam()};
  for (int round = 0; round < 10; ++round) {
    const u32 buf = 0x8000;
    Bytes data(rng.range(1, 100));
    for (auto& b : data) b = static_cast<u8>(rng.below(256));

    Asm a = checksum_program(buf, static_cast<u32>(data.size()));
    sim::Memory ram{"ram"};
    ram.write(buf, data);
    a.load_into(ram, kBase);
    MemoryBus bus{ram};
    Cpu cpu{bus};
    cpu.set_pc(kBase);
    for (u64 i = 0; i < 100000; ++i) {
      if (cpu.step().trap == TrapKind::kEcall) break;
    }
    EXPECT_EQ(cpu.reg(10), internet_checksum(data))
        << "len=" << data.size() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IssChecksumProperty,
                         ::testing::Values(3, 14, 159));

// ---------- firmware on the virtual board ----------

TEST(IssRunner, FirmwareDrivesRemoteDeviceViaMmio) {
  // Scripted HW peer: serves reads of a register and counts writes.
  auto pair = net::make_inproc_link_pair();
  board::BoardConfig cfg;
  cfg.free_running = true;
  board::Board board{cfg, std::move(pair.board)};

  sim::Memory ram{"ram"};
  // Firmware: read MMIO reg 0x8, add 5, write to MMIO reg 0xc, store the
  // sum to RAM 0x5000, exit(0).
  Asm a;
  a.li(1, 0xf0000000u);
  a.lw(2, 1, 0x8);
  a.addi(2, 2, 5);
  a.sw(2, 1, 0xc);
  a.li(3, 0x5000);
  a.sw(2, 3, 0);
  a.addi(10, 2, 0);   // a0 = result
  a.addi(17, 0, 0);   // a7 = exit
  a.ecall();
  a.load_into(ram, 0x1000);

  IssRunnerConfig rc;
  rc.entry_pc = 0x1000;
  IssRunner runner{board, ram, rc};

  // HW side script (host thread): answer one read, expect one write.
  std::thread hw{[&] {
    auto req = net::recv_msg(*pair.hw.data, std::chrono::milliseconds{2000});
    ASSERT_TRUE(req.ok());
    const auto* rd = std::get_if<net::DataReadReq>(&req.value());
    ASSERT_NE(rd, nullptr);
    EXPECT_EQ(rd->address, 0x8u);
    ASSERT_TRUE(net::send_msg(*pair.hw.data,
                              net::DataReadResp{0x8, Bytes{37, 0, 0, 0}})
                    .ok());
    auto wr = net::recv_msg(*pair.hw.data, std::chrono::milliseconds{2000});
    ASSERT_TRUE(wr.ok());
    const auto* w = std::get_if<net::DataWrite>(&wr.value());
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->address, 0xcu);
    EXPECT_EQ(w->data, (Bytes{42, 0, 0, 0}));
    ASSERT_TRUE(net::send_msg(*pair.hw.clock, net::Shutdown{}).ok());
  }};

  board.run();
  hw.join();
  EXPECT_TRUE(runner.exited());
  EXPECT_EQ(runner.exit_code(), 42u);  // the firmware exits with its result
  EXPECT_EQ(ram.read_u32(0x5000), 42u);
}

TEST(IssRunner, InstructionsChargeTheCycleBudget) {
  auto pair = net::make_inproc_link_pair();
  board::BoardConfig cfg;
  cfg.rtos.cycles_per_tick = 10;
  board::Board board{cfg, std::move(pair.board)};

  sim::Memory ram{"ram"};
  // Busy loop of exactly 100 iterations (2 single-cycle instructions each:
  // addi + taken branch = 1 + 2 cycles), then syscall 2 (read ticks), exit.
  Asm a;
  const auto loop = a.make_label();
  a.addi(1, 0, 100);
  a.bind(loop);
  a.addi(1, 1, -1);
  a.bne(1, 0, loop);
  a.addi(17, 0, 2);  // a7 = get-ticks
  a.ecall();
  a.addi(10, 10, 0); // keep ticks in a0
  a.addi(17, 0, 0);  // exit
  a.ecall();
  a.load_into(ram, 0x1000);

  IssRunnerConfig rc;
  rc.batch_cycles = 16;
  IssRunner runner{board, ram, rc};

  std::thread hw{[&] {
    // Handshake then keep granting until the firmware exits.
    auto ack = net::recv_msg(*pair.hw.clock, std::chrono::milliseconds{2000});
    ASSERT_TRUE(ack.ok());
    for (int i = 0; i < 200 && !runner.exited(); ++i) {
      ASSERT_TRUE(
          net::send_msg(*pair.hw.clock, net::ClockTick{0, 50}).ok());
      auto reply =
          net::recv_msg(*pair.hw.clock, std::chrono::milliseconds{2000});
      ASSERT_TRUE(reply.ok());
    }
    ASSERT_TRUE(net::send_msg(*pair.hw.clock, net::Shutdown{}).ok());
  }};

  board.run();
  hw.join();
  ASSERT_TRUE(runner.exited());
  // ~300 cycles of loop work -> the tick counter the firmware read must be
  // in the right ballpark (charging is batched, so allow slack).
  const u32 ticks_seen = runner.cpu().reg(Cpu::kRegA0);
  EXPECT_GE(ticks_seen, 25u);
  EXPECT_LE(ticks_seen, 40u);
}

}  // namespace
}  // namespace vhp::iss
