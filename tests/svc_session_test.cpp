// vhp::svc end-to-end (ISSUE 10 acceptance): the router case study must
// produce the SAME application-level outcome — and bit-exact flight
// recordings on every port — whether the session runs over the classic
// blocking inproc drive, the shm ring transport, per-quantum frame
// batching, or event-driven hosting on a svc::EventLoop. The conservative
// barrier makes batching's delivery-at-the-boundary invisible in virtual
// time, so unlike the adaptive suite nothing is stripped: CLOCK, DATA and
// INT all have to match.
//
// Fiber-bound (real RTOS boards), so labeled "svc", not "-tsan".
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"
#include "vhp/svc/event_loop.hpp"
#include "vhp/svc/session_host.hpp"

namespace vhp::cosim {
namespace {

using namespace std::chrono_literals;

constexpr u64 kTsync = 200;
constexpr u64 kTotalCycles = 30000;

router::TestbenchConfig testbench_config() {
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = 2;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 800;
  tb_cfg.payload_bytes = 8;
  tb_cfg.corrupt_probability = 0.25;
  return tb_cfg;
}

router::ChecksumAppConfig app_config() {
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  return app_cfg;
}

struct RunResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 syncs = 0;
  bool drained = false;
  obs::Recording hw_recording;
};

void collect(RunResult& result, router::RouterTestbench& tb,
             CosimSession& session) {
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.syncs = session.hw().stats().syncs;
  result.drained = tb.traffic_done();
  result.hw_recording.meta.side = "hw";
  result.hw_recording.frames = session.obs().hw_recorder().snapshot();
}

SessionConfigBuilder session_builder(TransportKind transport, bool batch) {
  SessionConfigBuilder builder;
  builder.t_sync(kTsync).cycles_per_tick(10).postmortem_prefix("");
  builder.transport(transport).batching(batch);
  builder.record().record_ring(1u << 14);
  return builder;
}

/// The classic drive: board on its own host thread, caller blocking in
/// run_cycles(). The reference all other drives must match bit-exactly.
RunResult run_blocking(TransportKind transport, bool batch) {
  CosimSession session{session_builder(transport, batch).build_or_throw()};
  router::RouterTestbench tb{session.hw().kernel(), testbench_config(),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_config()};

  session.start_board();
  for (u64 cycles = 0; cycles < kTotalCycles; cycles += 500) {
    EXPECT_TRUE(session.run_cycles(500).ok());
  }
  session.finish();

  RunResult result;
  collect(result, tb, session);
  return result;
}

/// The svc drive: no board thread, no blocking run_cycles — a SessionHost
/// steps the session from EventLoop callbacks.
RunResult run_hosted(TransportKind transport, bool batch,
                     u64 cycles_per_step) {
  CosimSession session{session_builder(transport, batch).build_or_throw()};
  router::RouterTestbench tb{session.hw().kernel(), testbench_config(),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_config()};

  svc::EventLoop loop;
  svc::SessionHostConfig host_cfg;
  host_cfg.cycles = kTotalCycles;
  host_cfg.cycles_per_step = cycles_per_step;
  svc::SessionHost host{loop, session, host_cfg,
                        [&](Status) { loop.stop(); }};
  host.start();
  loop.run();

  EXPECT_TRUE(host.done());
  EXPECT_TRUE(host.status().ok()) << host.status();
  EXPECT_EQ(host.cycles_done(), kTotalCycles);

  RunResult result;
  collect(result, tb, session);
  return result;
}

void expect_identical(const RunResult& reference, const RunResult& actual,
                      const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_TRUE(actual.drained) << what << " did not drain";
  EXPECT_EQ(actual.emitted, reference.emitted);
  EXPECT_EQ(actual.forwarded, reference.forwarded);
  EXPECT_EQ(actual.received, reference.received);
  EXPECT_EQ(actual.dropped, reference.dropped);
  EXPECT_EQ(actual.syncs, reference.syncs);
  // The whole wire stream — CLOCK, DATA and INT — must be bit-exact.
  const auto divergence =
      obs::diff_recordings(reference.hw_recording, actual.hw_recording,
                           &net::message_field_diff);
  EXPECT_FALSE(divergence.has_value())
      << what << " diverged: " << divergence->to_string();
}

TEST(SvcTransportParity, RouterSessionBitExactAcrossTransports) {
  const RunResult inproc = run_blocking(TransportKind::kInProc, false);
  ASSERT_TRUE(inproc.drained) << "inproc baseline did not drain";
  ASSERT_GT(inproc.emitted, 0u);

  expect_identical(inproc, run_blocking(TransportKind::kShm, false), "shm");
  expect_identical(inproc, run_blocking(TransportKind::kShm, true),
                   "shm+batching");
  expect_identical(inproc, run_blocking(TransportKind::kTcp, true),
                   "tcp+batching");
}

TEST(SvcSessionHost, HostedSessionMatchesBlockingRun) {
  const RunResult blocking = run_blocking(TransportKind::kInProc, false);
  ASSERT_TRUE(blocking.drained) << "blocking baseline did not drain";
  ASSERT_GT(blocking.emitted, 0u);

  // Slice size is a scheduling knob, not a protocol one: any value must
  // reproduce the reference bit-exactly.
  expect_identical(blocking, run_hosted(TransportKind::kInProc, false, 1024),
                   "hosted inproc");
  expect_identical(blocking, run_hosted(TransportKind::kShm, true, 128),
                   "hosted shm+batching");
}

TEST(SvcSessionHost, ManySessionsShareOneLoop) {
  // The density model in miniature: 8 independent router sessions hosted
  // on ONE loop thread, no per-board host threads anywhere. Every session
  // must run to its cycle target and drain its traffic.
  constexpr std::size_t kSessions = 8;
  constexpr u64 kCycles = 12000;
  router::TestbenchConfig tb_cfg = testbench_config();
  tb_cfg.packets_per_port = 1;

  svc::EventLoop loop;
  struct Hosted {
    std::unique_ptr<CosimSession> session;
    std::unique_ptr<router::RouterTestbench> tb;
    std::unique_ptr<router::ChecksumApp> app;
    std::unique_ptr<svc::SessionHost> host;
  };
  std::vector<Hosted> hosted;
  hosted.reserve(kSessions);
  std::size_t remaining = kSessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    Hosted h;
    h.session = std::make_unique<CosimSession>(
        session_builder(TransportKind::kShm, true).build_or_throw());
    h.tb = std::make_unique<router::RouterTestbench>(
        h.session->hw().kernel(), tb_cfg, &h.session->hw().registry());
    h.session->hw().watch_interrupt(h.tb->router().irq(),
                                    board::Board::kDeviceVector);
    h.app = std::make_unique<router::ChecksumApp>(h.session->board(),
                                                  app_config());
    svc::SessionHostConfig host_cfg;
    host_cfg.cycles = kCycles;
    host_cfg.cycles_per_step = 256;
    h.host = std::make_unique<svc::SessionHost>(
        loop, *h.session, host_cfg, [&](Status) {
          if (--remaining == 0) loop.stop();  // on_done runs on the loop
        });
    hosted.push_back(std::move(h));
  }
  for (auto& h : hosted) h.host->start();
  loop.run();

  EXPECT_EQ(remaining, 0u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    const Hosted& h = hosted[i];
    EXPECT_TRUE(h.host->done());
    EXPECT_TRUE(h.host->status().ok()) << h.host->status();
    EXPECT_EQ(h.host->cycles_done(), kCycles);
    EXPECT_TRUE(h.tb->traffic_done()) << "session did not drain";
    EXPECT_GT(h.tb->total_received(), 0u);
  }
}

TEST(SvcSessionConfig, RejectedCombinations) {
  // Batching needs a quantum boundary to flush at: free-running boards
  // have none, and the recovery layer's acks must not sit in the peer's
  // batch buffer past an RTO.
  EXPECT_FALSE(SessionConfigBuilder{}.untimed().batching().build().ok());
  fault::RecoveryConfig recovery;
  recovery.enabled = true;
  EXPECT_FALSE(
      SessionConfigBuilder{}.batching().recovery(recovery).build().ok());
  EXPECT_TRUE(SessionConfigBuilder{}.batching().build().ok());

  fabric::FabricConfigBuilder fb;
  fb.add_node("n0");
  EXPECT_TRUE(fb.shm().batching().event_loop().build().ok());
  fb.recovery(recovery);
  EXPECT_FALSE(fb.build().ok());
}

// ---------------------------------------------------------------------------
// The sharded router across a 4-board fabric.

struct FabricResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 barriers = 0;
  u64 ticks_sent = 0;
  bool drained = false;
  obs::Recording recording;
};

FabricResult run_fabric(fabric::Transport transport, bool batch,
                        bool event_loop) {
  constexpr std::size_t kPorts = 4;
  constexpr u64 kMaxCycles = 200000;
  router::TestbenchConfig tb_cfg = testbench_config();
  tb_cfg.router.n_ports = kPorts;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 2000;
  tb_cfg.payload_bytes = 16;

  fabric::FabricConfigBuilder builder;
  builder.t_sync(500).watchdog(15000ms).record();
  builder.transport(transport).batching(batch).event_loop(event_loop);
  for (std::size_t p = 0; p < kPorts; ++p) {
    builder.add_node("port" + std::to_string(p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};
  std::vector<DriverRegistry*> registries;
  for (std::size_t p = 0; p < kPorts; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < kPorts; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < kPorts; ++p) {
    apps.push_back(
        std::make_unique<router::ChecksumApp>(fab.board(p), app_config()));
  }
  fab.start_boards();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    EXPECT_TRUE(fab.run_cycles(500).ok());
    cycles += 500;
  }
  fab.finish();

  FabricResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.barriers = fab.coordinator().barriers();
  result.ticks_sent = fab.coordinator().ticks_sent();
  result.drained = tb.traffic_done();
  result.recording.meta.side = "hw";
  result.recording.frames = fab.obs().hw_recorder().snapshot();
  return result;
}

TEST(SvcFabric, EventLoopShmBatchedFabricMatchesDefault) {
  const FabricResult reference =
      run_fabric(fabric::Transport::kInProc, false, false);
  ASSERT_TRUE(reference.drained) << "reference fabric did not drain";
  ASSERT_GT(reference.emitted, 0u);

  for (const bool event_loop : {false, true}) {
    SCOPED_TRACE(event_loop ? "event-loop boards" : "threaded boards");
    const FabricResult svc_run =
        run_fabric(fabric::Transport::kShm, true, event_loop);
    ASSERT_TRUE(svc_run.drained) << "svc fabric did not drain";
    EXPECT_EQ(svc_run.emitted, reference.emitted);
    EXPECT_EQ(svc_run.forwarded, reference.forwarded);
    EXPECT_EQ(svc_run.received, reference.received);
    EXPECT_EQ(svc_run.dropped, reference.dropped);
    EXPECT_EQ(svc_run.barriers, reference.barriers);
    EXPECT_EQ(svc_run.ticks_sent, reference.ticks_sent);
    const auto divergence = obs::diff_recordings(
        reference.recording, svc_run.recording, &net::message_field_diff);
    EXPECT_FALSE(divergence.has_value())
        << "svc fabric diverged: " << divergence->to_string();
  }
}

}  // namespace
}  // namespace vhp::cosim
