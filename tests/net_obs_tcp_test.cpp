// Link observability decorators over the real TCP transport: per-frame
// metric accounting (instrument_link) and flight recording (record_link)
// cross-checked between the two sides of a loopback link, plus the
// disabled-path contract — no decorator hop when the recorder is off.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "vhp/net/inproc.hpp"
#include "vhp/net/instrumented.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/hub.hpp"

namespace vhp::net {
namespace {

using obs::LinkDir;
using obs::LinkPort;

constexpr auto kRecvTimeout = std::chrono::milliseconds{2000};

/// Connects both ends of a real TCP loopback link.
LinkPair make_tcp_link_pair() {
  TcpLinkListener listener;
  std::optional<Result<CosimLink>> board;
  std::thread connector(
      [&] { board.emplace(connect_tcp_link(listener.ports())); });
  auto hw = listener.accept_link();
  connector.join();
  EXPECT_TRUE(hw.ok()) << hw.status();
  EXPECT_TRUE(board.has_value() && board->ok());
  return LinkPair{std::move(hw).value(), std::move(*board).value()};
}

/// The frame-for-frame traffic pattern both tests exchange: a few messages
/// per port in each direction, every one received on the far side.
void exchange_traffic(CosimLink& hw, CosimLink& board) {
  // hw -> board
  ASSERT_TRUE(send_msg(*hw.data, DataReadResp{0x10, Bytes{1, 2, 3}}).ok());
  ASSERT_TRUE(send_msg(*hw.data, DataReadResp{0x14, Bytes{4}}).ok());
  ASSERT_TRUE(send_msg(*hw.intr, IntRaise{7}).ok());
  ASSERT_TRUE(send_msg(*hw.clock, ClockTick{100, 10}).ok());
  ASSERT_TRUE(send_msg(*hw.clock, ClockTick{200, 10}).ok());
  ASSERT_TRUE(send_msg(*hw.clock, ClockTick{300, 10}).ok());
  // board -> hw
  ASSERT_TRUE(send_msg(*board.data, DataWrite{0x20, Bytes{9, 8}}).ok());
  ASSERT_TRUE(send_msg(*board.clock, TimeAck{10}).ok());
  ASSERT_TRUE(send_msg(*board.clock, TimeAck{20}).ok());

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(recv_msg(*board.data, kRecvTimeout).ok());
  }
  ASSERT_TRUE(recv_msg(*board.intr, kRecvTimeout).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(recv_msg(*board.clock, kRecvTimeout).ok());
  }
  ASSERT_TRUE(recv_msg(*hw.data, kRecvTimeout).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(recv_msg(*hw.clock, kRecvTimeout).ok());
  }
}

TEST(RecordChannelTest, DisabledRecorderAddsNoDecoratorHop) {
  obs::FlightRecorder disabled{};  // FlightRecorderConfig::enabled == false
  auto [a, b] = make_inproc_channel_pair(4);
  Channel* raw = a.get();
  ChannelPtr wrapped = record_channel(std::move(a), disabled, LinkPort::kData);
  EXPECT_EQ(wrapped.get(), raw);  // same transport object, unwrapped

  LinkPair pair = make_inproc_link_pair(4);
  Channel* data = pair.hw.data.get();
  Channel* intr = pair.hw.intr.get();
  Channel* clock = pair.hw.clock.get();
  CosimLink link = record_link(std::move(pair.hw), disabled);
  EXPECT_EQ(link.data.get(), data);
  EXPECT_EQ(link.intr.get(), intr);
  EXPECT_EQ(link.clock.get(), clock);
}

TEST(RecordChannelTest, EnabledRecorderWrapsAndCaptures) {
  obs::FlightRecorderConfig cfg;
  cfg.enabled = true;
  obs::FlightRecorder recorder{cfg, "hw"};
  auto [a, b] = make_inproc_channel_pair(4);
  Channel* raw = a.get();
  ChannelPtr wrapped =
      record_channel(std::move(a), recorder, LinkPort::kClock);
  EXPECT_NE(wrapped.get(), raw);  // a real decorator this time

  ASSERT_TRUE(send_msg(*wrapped, ClockTick{50, 5}).ok());
  ASSERT_TRUE(recv_msg(*b, kRecvTimeout).ok());
  ASSERT_TRUE(send_msg(*b, TimeAck{5}).ok());
  ASSERT_TRUE(recv_msg(*wrapped, kRecvTimeout).ok());

  const auto ring = recorder.snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].dir, LinkDir::kTx);
  EXPECT_EQ(ring[0].msg_type, static_cast<u8>(MsgType::kClockTick));
  EXPECT_EQ(ring[1].dir, LinkDir::kRx);
  EXPECT_EQ(ring[1].msg_type, static_cast<u8>(MsgType::kTimeAck));
  EXPECT_EQ(ring[0].port, LinkPort::kClock);
}

TEST(InstrumentedTcpLinkTest, FrameCountsCrossCheckBetweenSides) {
  obs::ObsConfig oc;
  oc.enabled = true;
  obs::Hub hub{oc};

  LinkPair pair = make_tcp_link_pair();
  CosimLink hw = instrument_link(std::move(pair.hw), hub, "hw");
  CosimLink board = instrument_link(std::move(pair.board), hub, "board");
  exchange_traffic(hw, board);

  auto& m = hub.metrics();
  // Every frame one side sent, the other side's counters received.
  const char* ports[] = {"data", "int", "clock"};
  for (const char* port : ports) {
    const std::string hw_tx = std::string("net.hw.") + port + ".tx_frames";
    const std::string bd_rx = std::string("net.board.") + port + ".rx_frames";
    EXPECT_EQ(m.counter(hw_tx).value(), m.counter(bd_rx).value()) << port;
    const std::string bd_tx = std::string("net.board.") + port + ".tx_frames";
    const std::string hw_rx = std::string("net.hw.") + port + ".rx_frames";
    EXPECT_EQ(m.counter(bd_tx).value(), m.counter(hw_rx).value()) << port;
    // Byte totals agree too — the frames crossed unmodified.
    EXPECT_EQ(m.counter(std::string("net.hw.") + port + ".tx_bytes").value(),
              m.counter(std::string("net.board.") + port + ".rx_bytes")
                  .value())
        << port;
  }
  EXPECT_EQ(m.counter("net.hw.data.tx_frames").value(), 2u);
  EXPECT_EQ(m.counter("net.hw.int.tx_frames").value(), 1u);
  EXPECT_EQ(m.counter("net.hw.clock.tx_frames").value(), 3u);
  EXPECT_EQ(m.counter("net.board.data.tx_frames").value(), 1u);
  EXPECT_EQ(m.counter("net.board.clock.tx_frames").value(), 2u);

  hw.close_all();
  board.close_all();
}

TEST(RecordedTcpLinkTest, RingsMirrorFrameForFrameAcrossSides) {
  obs::ObsConfig oc;
  oc.record.enabled = true;  // recorder on, costly instruments off
  obs::Hub hub{oc};

  LinkPair pair = make_tcp_link_pair();
  CosimLink hw = record_link(std::move(pair.hw), hub.hw_recorder());
  CosimLink board = record_link(std::move(pair.board), hub.board_recorder());
  exchange_traffic(hw, board);

  const auto hw_ring = hub.hw_recorder().snapshot();
  const auto board_ring = hub.board_recorder().snapshot();
  EXPECT_EQ(hw_ring.size(), 9u);
  EXPECT_EQ(board_ring.size(), 9u);

  const auto payloads = [](const std::vector<obs::FrameRecord>& ring,
                           LinkPort port, LinkDir dir) {
    std::vector<Bytes> out;
    for (const auto& r : ring) {
      if (r.port == port && r.dir == dir) out.push_back(r.payload);
    }
    return out;
  };
  // One side's tx stream on each port is the other side's rx stream,
  // payload for payload — the frame-count cross-check of ISSUE satellite 3.
  for (const LinkPort port :
       {LinkPort::kData, LinkPort::kInt, LinkPort::kClock}) {
    EXPECT_EQ(payloads(hw_ring, port, LinkDir::kTx),
              payloads(board_ring, port, LinkDir::kRx));
    EXPECT_EQ(payloads(board_ring, port, LinkDir::kTx),
              payloads(hw_ring, port, LinkDir::kRx));
  }

  // The dump path exports the ring sizes as gauges.
  const std::string json = hub.metrics_json();
  EXPECT_NE(json.find("\"obs.record.hw.frames\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.record.board.frames\""), std::string::npos);
  EXPECT_EQ(hub.metrics().gauge("obs.record.hw.frames").value(), 9);
  EXPECT_EQ(hub.metrics().gauge("obs.record.board.frames").value(), 9);

  hw.close_all();
  board.close_all();
}

}  // namespace
}  // namespace vhp::net
