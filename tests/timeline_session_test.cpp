// End-to-end causal timeline: real virtual boards (RTOS fibers) under a
// timeline-armed session/fabric, live analysis, the offline extraction path
// on written recordings, and the telemetry endpoint on a running fabric.
// Fiber-bound, so no "tsan" label — the fiber-free timeline logic lives in
// timeline_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/obs/telemetry.hpp"
#include "vhp/obs/timeline.hpp"

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;

FabricConfig timeline_fabric_config(bool timeline) {
  FabricConfigBuilder builder;
  builder.inproc().t_sync(20).watchdog(10000ms).record();
  if (timeline) builder.timeline();
  builder.add_node("n0");
  builder.last_board().rtos.cycles_per_tick = 10;
  builder.add_node("n1");
  builder.last_board().rtos.cycles_per_tick = 10;
  return builder.build_or_throw();
}

TEST(FabricTimelineTest, LiveSpansCoverBothSidesAndReconcile) {
  Fabric fab{timeline_fabric_config(/*timeline=*/true)};
  fab.start_boards();
  ASSERT_TRUE(fab.run_cycles(400).ok());
  const u64 rounds_live = fab.coordinator().rounds();
  EXPECT_GE(rounds_live, 10u);  // 400 cycles / t_sync 20, both nodes due

  const auto spans = fab.timeline_spans();
  ASSERT_FALSE(spans.empty());
  bool compute_n0 = false, compute_n1 = false, wait_seen = false;
  for (const auto& s : spans) {
    if (s.phase == obs::SpanPhase::kCompute && s.node == 0) compute_n0 = true;
    if (s.phase == obs::SpanPhase::kCompute && s.node == 1) compute_n1 = true;
    if (s.phase == obs::SpanPhase::kNodeWait) wait_seen = true;
  }
  EXPECT_TRUE(compute_n0) << "board spans must be re-stamped to slot 0";
  EXPECT_TRUE(compute_n1) << "board spans must be re-stamped to slot 1";
  EXPECT_TRUE(wait_seen);

  const obs::TimelineAnalysis live = fab.timeline_analysis();
  EXPECT_EQ(live.rounds.size(), rounds_live);
  EXPECT_GT(live.wall_ns, 0u);
  EXPECT_GT(live.virtual_cycles, 0u);
  EXPECT_GT(live.slowdown, 0.0);
  // The acceptance gate: per-node decomposition re-composes fabric
  // wall-clock within 5%.
  EXPECT_LT(live.reconciliation_error, 0.05);
  ASSERT_EQ(live.nodes.size(), 2u);
  EXPECT_EQ(live.nodes[0].name, "n0");
  EXPECT_GT(live.nodes[0].compute_ns, 0u);

  const std::string doc = fab.metrics_json();
  EXPECT_NE(doc.find("\"timeline\":"), std::string::npos);
  EXPECT_NE(doc.find("\"reconciliation_error\":"), std::string::npos);

  // Offline path: written recordings must reproduce the same round count.
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "vhp_timeline_session")
          .string();
  ASSERT_TRUE(fab.write_recordings(prefix).ok());
  fab.finish();

  auto hw = obs::read_recording(prefix + ".hw.vhprec");
  ASSERT_TRUE(hw.ok()) << hw.status();
  std::vector<obs::Recording> boards;
  for (const char* name : {"n0", "n1"}) {
    auto rec = obs::read_recording(prefix + "." + std::string(name) +
                                   ".board.vhprec");
    ASSERT_TRUE(rec.ok()) << rec.status();
    boards.push_back(std::move(rec.value()));
  }
  const auto offline_spans =
      net::timeline_from_recordings(hw.value(), boards);
  ASSERT_FALSE(offline_spans.empty());
  const obs::TimelineAnalysis offline = obs::analyze_spans(offline_spans);
  EXPECT_EQ(offline.rounds.size(), rounds_live);
  // Wire v3 carried the ids: offline and live agree on the last round.
  EXPECT_EQ(offline.rounds.back().round, live.rounds.back().round);
  EXPECT_LT(offline.reconciliation_error, 0.05);

  for (const char* suffix : {".hw.vhprec", ".n0.board.vhprec",
                             ".n1.board.vhprec"}) {
    if (!::testing::Test::HasFailure()) std::filesystem::remove(prefix + suffix);
  }
}

TEST(FabricTimelineTest, DisabledTimelineLeavesNoTrace) {
  Fabric fab{timeline_fabric_config(/*timeline=*/false)};
  fab.start_boards();
  ASSERT_TRUE(fab.run_cycles(200).ok());
  EXPECT_EQ(fab.coordinator().rounds(), 0u);
  EXPECT_TRUE(fab.timeline_spans().empty());
  const std::string doc = fab.metrics_json();
  EXPECT_EQ(doc.find("\"timeline\":"), std::string::npos);
  fab.finish();
}

TEST(FabricTimelineTest, TelemetryEndpointServesTheMergedDocument) {
  Fabric fab{timeline_fabric_config(/*timeline=*/true)};
  fab.start_boards();
  ASSERT_TRUE(fab.run_cycles(100).ok());
  ASSERT_TRUE(fab.serve_telemetry(0).ok());
  ASSERT_NE(fab.telemetry_port(), 0u);

  auto channel = net::connect_tcp_channel(fab.telemetry_port());
  ASSERT_TRUE(channel.ok()) << channel.status();
  auto frame = channel.value()->recv(5000ms);
  ASSERT_TRUE(frame.ok()) << frame.status();
  const std::string doc(frame.value().begin(), frame.value().end());
  EXPECT_NE(doc.find("\"timeline\":"), std::string::npos);
  const obs::TelemetrySnapshot snap = obs::parse_metrics_snapshot(doc);
  ASSERT_TRUE(snap.ok);
  EXPECT_GT(snap.counter("fabric.barriers"), 0u);

  fab.finish();  // must stop the endpoint before tearing the fabric down
}

}  // namespace
}  // namespace vhp::fabric

// ---------------------------------------------------------------------------
// Classic two-party session with the timeline armed

namespace vhp::cosim {
namespace {

TEST(SessionTimelineTest, RoundsPropagateAndBothSinksRecord) {
  SessionConfig cfg;
  cfg.cosim.t_sync = 100;
  cfg.obs.timeline.enabled = true;
  CosimSession session{cfg};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(1000).ok());
  const u64 rounds = session.hw().rounds();
  EXPECT_GE(rounds, 9u);
  session.finish();

  const auto spans = session.obs().timeline().snapshot();
  ASSERT_FALSE(spans.empty());
  bool wait = false, compute = false, barrier = false;
  u64 max_round = 0;
  for (const auto& s : spans) {
    max_round = std::max(max_round, s.round);
    if (s.phase == obs::SpanPhase::kNodeWait) wait = true;
    if (s.phase == obs::SpanPhase::kCompute) compute = true;
    if (s.phase == obs::SpanPhase::kBarrier) barrier = true;
  }
  EXPECT_TRUE(wait) << "kernel-side wait spans";
  EXPECT_TRUE(compute) << "board-side compute spans (shared hub)";
  EXPECT_TRUE(barrier);
  EXPECT_EQ(max_round, rounds);

  const obs::TimelineAnalysis a = obs::analyze_spans(spans);
  EXPECT_EQ(a.rounds.size(), rounds);
  EXPECT_LT(a.reconciliation_error, 0.05);
}

TEST(SessionTimelineTest, DefaultSessionStampsNoRounds) {
  SessionConfig cfg;
  cfg.cosim.t_sync = 100;
  CosimSession session{cfg};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(500).ok());
  session.finish();
  EXPECT_EQ(session.hw().rounds(), 0u);
  EXPECT_TRUE(session.obs().timeline().snapshot().empty());
}

}  // namespace
}  // namespace vhp::cosim
