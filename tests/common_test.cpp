// Unit tests for vhp::common — types, status, bytes, format, checksum,
// rng, stats.
#include <gtest/gtest.h>

#include "vhp/common/bytes.hpp"
#include "vhp/common/checksum.hpp"
#include "vhp/common/format.hpp"
#include "vhp/common/rng.hpp"
#include "vhp/common/stats.hpp"
#include "vhp/common/status.hpp"
#include "vhp/common/types.hpp"

namespace vhp {
namespace {

TEST(CountTypes, ArithmeticAndComparison) {
  Cycles a{10};
  Cycles b{3};
  EXPECT_EQ((a + b).value(), 13u);
  EXPECT_EQ((a - b).value(), 7u);
  EXPECT_EQ((a * 4).value(), 40u);
  EXPECT_EQ((a / 2).value(), 5u);
  EXPECT_LT(b, a);
  a += b;
  EXPECT_EQ(a.value(), 13u);
  ++a;
  EXPECT_EQ(a.value(), 14u);
}

TEST(CountTypes, DistinctTagsDoNotMix) {
  // Compile-time property: Cycles and SwTicks are different types.
  static_assert(!std::is_same_v<Cycles, SwTicks>);
  static_assert(!std::is_same_v<Cycles, HwTicks>);
  EXPECT_EQ((100_cyc).value(), 100u);
  EXPECT_EQ((7_swt).value(), 7u);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{StatusCode::kNotFound, "missing widget"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing widget");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> good{42};
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(7), 42);

  Result<int> bad{Status{StatusCode::kUnavailable, "down"}};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Bytes, RoundTripAllWidths) {
  Bytes buf;
  ByteWriter w{buf};
  w.u8v(0xab);
  w.u16v(0x1234);
  w.u32v(0xdeadbeef);
  w.u64v(0x0102030405060708ULL);
  ByteReader r{buf};
  EXPECT_EQ(r.u8v(), 0xab);
  EXPECT_EQ(r.u16v(), 0x1234);
  EXPECT_EQ(r.u32v(), 0xdeadbeefu);
  EXPECT_EQ(r.u64v(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianOnTheWire) {
  Bytes buf;
  ByteWriter w{buf};
  w.u32v(0x11223344);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[1], 0x33);
  EXPECT_EQ(buf[2], 0x22);
  EXPECT_EQ(buf[3], 0x11);
}

TEST(Bytes, SizedBytesRoundTrip) {
  Bytes buf;
  ByteWriter w{buf};
  const Bytes payload{1, 2, 3, 4, 5};
  w.sized_bytes(payload);
  ByteReader r{buf};
  EXPECT_EQ(r.sized_bytes(), payload);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, OverrunSetsFailedState) {
  Bytes buf{1, 2};
  ByteReader r{buf};
  (void)r.u32v();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, FailedReaderStaysFailed) {
  Bytes buf{1, 2, 3, 4};
  ByteReader r{buf};
  (void)r.u64v();  // overrun
  EXPECT_FALSE(r.ok());
  (void)r.u8v();  // would fit originally, but reader is poisoned
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, HexDumpTruncates) {
  Bytes buf(40, 0xaa);
  const std::string dump = hex_dump(buf, 4);
  EXPECT_EQ(dump.substr(0, 11), "aa aa aa aa");
  EXPECT_NE(dump.find("+36"), std::string::npos);
}

TEST(Format, SubstitutesInOrder) {
  EXPECT_EQ(strformat("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(Format, SurplusArgumentsAppended) {
  EXPECT_EQ(strformat("x={}", 1, 2), "x=1 2");
}

TEST(Format, SurplusPlaceholdersKept) {
  EXPECT_EQ(strformat("x={} y={}", 1), "x=1 y={}");
}

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d.
  const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, EmbeddedChecksumVerifies) {
  Bytes data{0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00};
  const u16 ck = internet_checksum(data);
  data.push_back(static_cast<u8>(ck >> 8));
  data.push_back(static_cast<u8>(ck & 0xff));
  EXPECT_TRUE(internet_checksum_ok(data));
  data[0] ^= 0x01;
  EXPECT_FALSE(internet_checksum_ok(data));
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const Bytes odd{0x12, 0x34, 0x56};
  const Bytes even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Crc32, KnownVectors) {
  const std::string s = "123456789";
  EXPECT_EQ(crc32(std::span(reinterpret_cast<const u8*>(s.data()), s.size())),
            0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng{7};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{99};
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.9);   // bucket 4
  h.add(-5.0);  // clamped to bucket 0
  h.add(42.0);  // clamped to bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
}

}  // namespace
}  // namespace vhp
