// vhp::obs unit tests: metric primitives, registry identity, Chrome-trace
// JSON well-formedness, stall profiler buckets, and the disabled-mode
// no-op contract the hot paths rely on.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "vhp/obs/hub.hpp"
#include "vhp/obs/metrics.hpp"
#include "vhp/obs/stall_profiler.hpp"
#include "vhp/obs/trace.hpp"

namespace vhp::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON structural validator — enough to prove the dumps are parseable
// (balanced syntax, legal literals/strings/numbers) without a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    if (peek() == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (pos_ == digits_start) return false;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metric primitives

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr u64 kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddRead) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, PowerOfTwoBucketing) {
  LatencyHistogram h;
  h.record_ns(0);    // bucket 0
  h.record_ns(1);    // bucket 0: [1, 2)
  h.record_ns(2);    // bucket 1: [2, 4)
  h.record_ns(3);    // bucket 1
  h.record_ns(4);    // bucket 2: [4, 8)
  h.record_ns(7);    // bucket 2
  h.record_ns(8);    // bucket 3
  h.record_ns(1024); // bucket 10
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum_ns(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + 1024);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1049.0 / 8.0);
}

TEST(HistogramTest, HugeSamplesClampToLastBucket) {
  LatencyHistogram h;
  h.record_ns(~u64{0});
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, BucketFloors) {
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(1), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(10), 1024u);
}

TEST(HistogramTest, EmptyMeanIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("cosim.syncs");
  Counter& b = reg.counter("cosim.syncs");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Kinds are independent namespaces but share contains().
  Gauge& g1 = reg.gauge("rtos.ticks");
  Gauge& g2 = reg.gauge("rtos.ticks");
  EXPECT_EQ(&g1, &g2);
  LatencyHistogram& h1 = reg.histogram("cosim.sync_rtt_ns");
  LatencyHistogram& h2 = reg.histogram("cosim.sync_rtt_ns");
  EXPECT_EQ(&h1, &h2);
  EXPECT_TRUE(reg.contains("cosim.syncs"));
  EXPECT_TRUE(reg.contains("rtos.ticks"));
  EXPECT_TRUE(reg.contains("cosim.sync_rtt_ns"));
  EXPECT_FALSE(reg.contains("nonexistent"));
}

TEST(MetricsRegistryTest, InstrumentPointersSurviveGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("c.0");
  for (int i = 1; i < 200; ++i) {
    (void)reg.counter("c." + std::to_string(i));
  }
  first.inc(7);
  EXPECT_EQ(reg.counter("c.0").value(), 7u);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedAndSorted) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("depth").set(-4);
  reg.histogram("lat").record_ns(100);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Sorted iteration: "a.count" serialized before "b.count".
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"depth\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  // A registry with a hostile name still dumps valid JSON.
  MetricsRegistry reg;
  reg.counter("weird\"name\n").inc();
  EXPECT_TRUE(JsonChecker(reg.to_json()).valid()) << reg.to_json();
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer t;  // default config: disabled
  EXPECT_FALSE(t.enabled());
  t.instant("x", "cat");
  t.complete("y", "cat", 0, 100);
  { Tracer::Span span(t, "z", "cat"); }
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_TRUE(JsonChecker(t.to_chrome_json()).valid());
}

TEST(TracerTest, RecordsInstantsAndSpans) {
  Tracer t{TracerConfig{.enabled = true}};
  t.instant("tick", "cosim", 42, "cycle");
  t.complete("sync", "cosim", 1000, 3500);
  { Tracer::Span span(t, "scoped", "test"); }
  EXPECT_EQ(t.event_count(), 3u);
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cycle\":42"), std::string::npos);
  // 1000 ns -> "1.000" µs; 2500 ns duration -> "2.500" µs (zero-padded).
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos) << json;
}

TEST(TracerTest, CapsBufferAndCountsDrops) {
  Tracer t{TracerConfig{.enabled = true, .max_events = 4}};
  for (int i = 0; i < 10; ++i) t.instant("e", "cat");
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_TRUE(JsonChecker(t.to_chrome_json()).valid());
}

TEST(TracerTest, NowNsIsMonotonic) {
  Tracer t{TracerConfig{.enabled = true}};
  const u64 a = t.now_ns();
  const u64 b = t.now_ns();
  EXPECT_LE(a, b);
}

// ---------------------------------------------------------------------------
// Stall profiler

TEST(StallProfilerTest, DisabledTimerAddsNothing) {
  StallProfiler p{false};
  { StallProfiler::Timer timer(p, StallProfiler::Bucket::kAckWait); }
  EXPECT_EQ(p.total_ns(StallProfiler::Bucket::kAckWait), 0u);
  EXPECT_EQ(p.samples(StallProfiler::Bucket::kAckWait), 0u);
}

TEST(StallProfilerTest, AccumulatesPerBucket) {
  StallProfiler p{true};
  p.add_ns(StallProfiler::Bucket::kSimulate, 100);
  p.add_ns(StallProfiler::Bucket::kSimulate, 50);
  p.add_ns(StallProfiler::Bucket::kAckWait, 999);
  EXPECT_EQ(p.total_ns(StallProfiler::Bucket::kSimulate), 150u);
  EXPECT_EQ(p.samples(StallProfiler::Bucket::kSimulate), 2u);
  EXPECT_EQ(p.total_ns(StallProfiler::Bucket::kAckWait), 999u);
  EXPECT_EQ(p.total_ns(StallProfiler::Bucket::kDataService), 0u);

  MetricsRegistry reg;
  p.export_to(reg);
  EXPECT_EQ(reg.gauge("cosim.wall.simulate_ns").value(), 150);
  EXPECT_EQ(reg.gauge("cosim.wall.simulate_intervals").value(), 2);
  EXPECT_EQ(reg.gauge("cosim.wall.ack_wait_ns").value(), 999);
  EXPECT_EQ(reg.gauge("cosim.wall.data_service_ns").value(), 0);
}

TEST(StallProfilerTest, EnabledTimerMeasuresElapsedTime) {
  StallProfiler p{true};
  {
    StallProfiler::Timer timer(p, StallProfiler::Bucket::kDataService);
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  EXPECT_GE(p.total_ns(StallProfiler::Bucket::kDataService), 1'000'000u);
  EXPECT_EQ(p.samples(StallProfiler::Bucket::kDataService), 1u);
}

// ---------------------------------------------------------------------------
// Hub

TEST(HubTest, DisabledByDefaultButCountersLive) {
  Hub hub;
  EXPECT_FALSE(hub.enabled());
  EXPECT_FALSE(hub.tracer().enabled());
  EXPECT_FALSE(hub.profiler().enabled());
  hub.metrics().counter("always.on").inc(5);
  EXPECT_EQ(hub.metrics().counter("always.on").value(), 5u);
}

TEST(HubTest, EnabledTurnsOnTracerAndProfiler) {
  Hub hub{ObsConfig{.enabled = true, .max_trace_events = 128}};
  EXPECT_TRUE(hub.enabled());
  EXPECT_TRUE(hub.tracer().enabled());
  EXPECT_TRUE(hub.profiler().enabled());
}

TEST(HubTest, CollectorsRunBeforeMetricsDump) {
  Hub hub;
  int calls = 0;
  hub.add_collector([&](MetricsRegistry& reg) {
    ++calls;
    reg.gauge("collected.value").set(13);
  });
  const std::string json = hub.metrics_json();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"collected.value\":13"), std::string::npos) << json;
  // Every dump re-runs the collectors (fresh snapshot each time).
  (void)hub.metrics_json();
  EXPECT_EQ(calls, 2);
}

TEST(HubTest, ProfilerBucketsAppearInDump) {
  Hub hub{ObsConfig{.enabled = true}};
  hub.profiler().add_ns(StallProfiler::Bucket::kAckWait, 777);
  const std::string json = hub.metrics_json();
  EXPECT_NE(json.find("\"cosim.wall.ack_wait_ns\":777"), std::string::npos)
      << json;
}


TEST(HubTest, TracerDropCountAppearsInDump) {
  // ObsConfig::max_trace_events caps the buffer; the surplus is counted and
  // surfaced in the metrics dump so a clipped trace is visibly clipped.
  Hub hub{ObsConfig{.enabled = true, .max_trace_events = 4}};
  for (int i = 0; i < 10; ++i) hub.tracer().instant("ev", "test");
  EXPECT_EQ(hub.tracer().event_count(), 4u);
  EXPECT_EQ(hub.tracer().dropped(), 6u);
  const std::string json = hub.metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"obs.trace.events\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs.trace.dropped_events\":6"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace vhp::obs
