// Tests of the co-simulation budget machinery: the normal/idle OS state
// machine, freeze callbacks (TIME_ACK source), grants, comm-thread
// scheduling in the idle state — the paper's Section 5.3 behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::rtos {
namespace {

KernelConfig budget_cfg() {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  cfg.timeslice_ticks = 5;
  cfg.budget_mode = true;
  return cfg;
}

TEST(Budget, FreezesImmediatelyWithNoBudget) {
  Kernel k{budget_cfg()};
  std::vector<u64> freeze_ticks;
  k.set_freeze_callback([&](SwTicks t) {
    freeze_ticks.push_back(t.value());
    if (freeze_ticks.size() == 1) k.shutdown();
  });
  k.spawn("app", 8, [&] { k.consume(100); });
  k.run();
  ASSERT_EQ(freeze_ticks.size(), 1u);
  EXPECT_EQ(freeze_ticks[0], 0u);
  EXPECT_EQ(k.state(), OsState::kIdle);
}

TEST(Budget, GrantThawsAndWorkResumes) {
  Kernel k{budget_cfg()};
  int freezes_seen = 0;
  bool finished = false;
  // Grant from a comm thread, like the systemc thread does.
  Semaphore grant_request{k, 0};
  k.set_freeze_callback([&](SwTicks) {
    ++freezes_seen;
    grant_request.post();
  });
  auto& granter = k.spawn("granter", 2, [&] {
    for (int i = 0; i < 10 && !finished; ++i) {
      grant_request.wait();
      k.grant_cycles(50);
    }
  });
  granter.set_comm_thread(true);
  k.spawn("app", 8, [&] {
    k.consume(120);  // needs 3 grants of 50
    finished = true;
    k.shutdown();
  });
  k.run();
  EXPECT_TRUE(finished);
  EXPECT_GE(freezes_seen, 3);
  EXPECT_EQ(k.cycle_count(), 120u);
}

TEST(Budget, OnlyCommThreadsRunWhileFrozen) {
  Kernel k{budget_cfg()};
  std::vector<std::string> ran_while_frozen;
  Semaphore frozen{k, 0};
  k.set_freeze_callback([&](SwTicks) { frozen.post(); });
  auto& comm = k.spawn("comm", 2, [&] {
    frozen.wait();
    EXPECT_EQ(k.state(), OsState::kIdle);
    ran_while_frozen.push_back("comm");
    k.shutdown();
  });
  comm.set_comm_thread(true);
  k.spawn("app", 8, [&] {
    // Must never record: with zero budget the app blocks inside consume
    // before doing anything, and stays frozen until a grant (never given).
    k.consume(10);
    ran_while_frozen.push_back("app");
  });
  k.run();
  EXPECT_EQ(ran_while_frozen, (std::vector<std::string>{"comm"}));
}

TEST(Budget, IdleThreadConsumesLeftoverBudget) {
  // All app threads blocked, budget remains: idle time must burn it so the
  // freeze (ack) always happens.
  Kernel k{budget_cfg()};
  std::vector<u64> freeze_ticks;
  k.set_freeze_callback([&](SwTicks t) {
    freeze_ticks.push_back(t.value());
    k.shutdown();
  });
  k.grant_cycles(100);  // pre-granted before run
  // No app threads at all.
  k.run();
  ASSERT_EQ(freeze_ticks.size(), 1u);
  EXPECT_EQ(freeze_ticks[0], 10u);  // after idling through all 100 cycles
}

TEST(Budget, TickAccountingMatchesGrants) {
  Kernel k{budget_cfg()};
  int freezes = 0;
  k.set_freeze_callback([&](SwTicks) {
    ++freezes;
    if (freezes == 1) {
      k.grant_cycles(200);
    } else {
      k.shutdown();
    }
  });
  k.spawn("app", 8, [&] { k.consume(500); });  // more than granted
  k.run();
  // 200 cycles granted -> exactly 20 ticks elapsed.
  EXPECT_EQ(k.tick_count().value(), 20u);
  EXPECT_EQ(k.budget_cycles(), 0u);
}

TEST(Budget, TimesliceSurvivesFreezeThaw) {
  // The paper: the scheduler saves the interrupted thread's timeslice on
  // freeze and restores it on thaw. Observable effect: a thread mid-slice
  // is not rotated out by the freeze; it continues before its equal-priority
  // peer when thawed.
  Kernel k{budget_cfg()};
  std::vector<int> order;
  int freezes = 0;
  k.set_freeze_callback([&](SwTicks) {
    ++freezes;
    if (freezes > 8) {
      k.shutdown();
      return;
    }
    k.grant_cycles(20);  // less than one timeslice (50 cycles)
  });
  k.spawn("a", 8, [&] {
    for (int i = 0; i < 3; ++i) {
      order.push_back(0);
      k.consume(40);  // spans two freezes but less than one timeslice
    }
  });
  k.spawn("b", 8, [&] {
    for (int i = 0; i < 3; ++i) {
      order.push_back(1);
      k.consume(40);
    }
  });
  k.run();
  ASSERT_GE(order.size(), 3u);
  // Thread a keeps running across freezes until its slice expires at 50
  // consumed cycles (i.e. during its second consume), then b runs.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 1);
}

TEST(Budget, StatsTrackFreezesAndGrants) {
  Kernel k{budget_cfg()};
  int freezes = 0;
  k.set_freeze_callback([&](SwTicks) {
    if (++freezes == 3) {
      k.shutdown();
    } else {
      k.grant_cycles(30);
    }
  });
  k.spawn("app", 8, [&] { k.consume(1000); });
  k.run();
  EXPECT_EQ(k.stats().freezes, 3u);
  EXPECT_EQ(k.stats().grants, 2u);
}

}  // namespace
}  // namespace vhp::rtos
