// Flight recorder unit tests: ring semantics (eviction, truncation,
// sequence/digest bookkeeping), the on-disk recording round-trip in both
// encodings, the divergence checker, and the report renderers backing the
// vhptrace subcommands.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "vhp/common/checksum.hpp"
#include "vhp/obs/flight_recorder.hpp"
#include "vhp/obs/metrics.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::obs {
namespace {

Bytes frame_of(std::initializer_list<u8> bytes) { return Bytes{bytes}; }

FlightRecorderConfig enabled_config() {
  FlightRecorderConfig cfg;
  cfg.enabled = true;
  return cfg;
}

/// A fully self-consistent FrameRecord, the way the recorder would stamp it.
FrameRecord make_frame(u64 seq, LinkPort port, LinkDir dir,
                       std::initializer_list<u8> payload) {
  FrameRecord r;
  r.seq = seq;
  r.port = port;
  r.dir = dir;
  r.payload = Bytes{payload};
  r.msg_type = r.payload.empty() ? 0 : r.payload[0];
  r.payload_size = static_cast<u32>(r.payload.size());
  r.digest = crc32(r.payload);
  r.hw_cycle = 10 * seq;
  r.board_tick = seq;
  r.wall_ns = 1000 * seq;
  return r;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// FlightRecorder (the ring)

TEST(FlightRecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorder rec{FlightRecorderConfig{}, "hw"};  // enabled defaults false
  EXPECT_FALSE(rec.enabled());
  const auto frame = frame_of({5, 1, 2, 3});
  rec.record(LinkPort::kClock, LinkDir::kTx, frame);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.evicted(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorderTest, RecordsFullFrameMetadata) {
  FlightRecorder rec{enabled_config(), "hw"};
  const auto frame = frame_of({6, 0x10, 0x20, 0x30});
  rec.record(LinkPort::kClock, LinkDir::kRx, frame);

  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  const FrameRecord& r = ring[0];
  EXPECT_EQ(r.seq, 0u);
  EXPECT_EQ(r.port, LinkPort::kClock);
  EXPECT_EQ(r.dir, LinkDir::kRx);
  EXPECT_EQ(r.msg_type, 6u);  // first body byte (MsgType::kTimeAck)
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.payload_size, 4u);
  EXPECT_EQ(r.payload, frame);
  EXPECT_EQ(r.digest, crc32(frame));
}

TEST(FlightRecorderTest, SequenceIsGlobalAcrossPorts) {
  FlightRecorder rec{enabled_config(), "hw"};
  rec.record(LinkPort::kData, LinkDir::kTx, frame_of({1}));
  rec.record(LinkPort::kInt, LinkDir::kTx, frame_of({4}));
  rec.record(LinkPort::kClock, LinkDir::kRx, frame_of({6}));
  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 3u);
  for (u64 i = 0; i < 3; ++i) EXPECT_EQ(ring[i].seq, i);
  EXPECT_EQ(ring[0].port, LinkPort::kData);
  EXPECT_EQ(ring[1].port, LinkPort::kInt);
  EXPECT_EQ(ring[2].port, LinkPort::kClock);
}

TEST(FlightRecorderTest, RingEvictsOldestAndCounts) {
  FlightRecorderConfig cfg = enabled_config();
  cfg.ring_frames = 4;
  FlightRecorder rec{cfg, "hw"};
  for (u8 i = 0; i < 7; ++i) {
    rec.record(LinkPort::kData, LinkDir::kTx, frame_of({1, i}));
  }
  EXPECT_EQ(rec.recorded(), 7u);
  EXPECT_EQ(rec.evicted(), 3u);
  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest-first, the survivors are seq 3..6.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].seq, 3 + i);
    EXPECT_EQ(ring[i].payload[1], static_cast<u8>(3 + i));
  }
}

TEST(FlightRecorderTest, TruncatesLongPayloadsButKeepsSizeAndDigest) {
  FlightRecorderConfig cfg = enabled_config();
  cfg.max_payload_bytes = 4;
  FlightRecorder rec{cfg, "hw"};
  const Bytes full{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  rec.record(LinkPort::kData, LinkDir::kTx, full);

  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  const FrameRecord& r = ring[0];
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.payload, (Bytes{1, 2, 3, 4}));   // stored prefix
  EXPECT_EQ(r.payload_size, 10u);              // true size
  EXPECT_EQ(r.digest, crc32(full));            // digest of the whole frame
}

TEST(FlightRecorderTest, StampsVirtualTimeFromWiredSources) {
  FlightRecorder rec{enabled_config(), "hw"};
  rec.set_hw_time_source([] { return u64{1234}; });
  rec.set_board_time_source([] { return u64{56}; });
  rec.record(LinkPort::kClock, LinkDir::kTx, frame_of({5}));
  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].hw_cycle, 1234u);
  EXPECT_EQ(ring[0].board_tick, 56u);
}

TEST(FlightRecorderTest, ExportsGaugesUnderSideName) {
  FlightRecorderConfig cfg = enabled_config();
  cfg.ring_frames = 2;
  FlightRecorder rec{cfg, "board"};
  for (int i = 0; i < 5; ++i) {
    rec.record(LinkPort::kInt, LinkDir::kRx, frame_of({4}));
  }
  MetricsRegistry registry;
  rec.export_to(registry);
  EXPECT_EQ(registry.gauge("obs.record.board.frames").value(), 5);
  EXPECT_EQ(registry.gauge("obs.record.board.evicted").value(), 3);
}

// ---------------------------------------------------------------------------
// On-disk recording round-trip

Recording sample_recording() {
  Recording rec;
  rec.meta.side = "hw";
  rec.meta.tags = {{"t_sync", "100"}, {"n_packets", "8"}};
  rec.frames.push_back(make_frame(0, LinkPort::kClock, LinkDir::kRx, {6, 0}));
  rec.frames.push_back(
      make_frame(1, LinkPort::kData, LinkDir::kTx, {3, 0x04, 0x02, 0xff}));
  rec.frames.push_back(make_frame(2, LinkPort::kInt, LinkDir::kTx, {4, 9}));
  // A truncated record: stored prefix shorter than the true payload.
  FrameRecord cut = make_frame(3, LinkPort::kData, LinkDir::kTx, {1, 2});
  cut.truncated = true;
  cut.payload_size = 40;
  cut.digest = 0xdeadbeef;
  rec.frames.push_back(cut);
  return rec;
}

void expect_recordings_equal(const Recording& a, const Recording& b) {
  EXPECT_EQ(a.meta.side, b.meta.side);
  EXPECT_EQ(a.meta.tags, b.meta.tags);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const FrameRecord& x = a.frames[i];
    const FrameRecord& y = b.frames[i];
    EXPECT_EQ(x.seq, y.seq) << "frame " << i;
    EXPECT_EQ(x.port, y.port) << "frame " << i;
    EXPECT_EQ(x.dir, y.dir) << "frame " << i;
    EXPECT_EQ(x.msg_type, y.msg_type) << "frame " << i;
    EXPECT_EQ(x.truncated, y.truncated) << "frame " << i;
    EXPECT_EQ(x.hw_cycle, y.hw_cycle) << "frame " << i;
    EXPECT_EQ(x.board_tick, y.board_tick) << "frame " << i;
    EXPECT_EQ(x.wall_ns, y.wall_ns) << "frame " << i;
    EXPECT_EQ(x.payload_size, y.payload_size) << "frame " << i;
    EXPECT_EQ(x.digest, y.digest) << "frame " << i;
    EXPECT_EQ(x.payload, y.payload) << "frame " << i;
  }
}

TEST(RecordingFormatTest, BinaryRoundTripPreservesEverything) {
  const Recording rec = sample_recording();
  const std::string path = temp_path("fr_roundtrip.vhprec");
  ASSERT_TRUE(write_recording(path, rec, RecordingFormat::kBinary).ok());
  auto back = read_recording(path);
  ASSERT_TRUE(back.ok()) << back.status();
  expect_recordings_equal(rec, back.value());
  std::remove(path.c_str());
}

TEST(RecordingFormatTest, JsonlRoundTripPreservesEverything) {
  const Recording rec = sample_recording();
  const std::string path = temp_path("fr_roundtrip.jsonl");
  ASSERT_TRUE(write_recording(path, rec, RecordingFormat::kJsonl).ok());
  auto back = read_recording(path);  // auto-detected from the '{' header
  ASSERT_TRUE(back.ok()) << back.status();
  expect_recordings_equal(rec, back.value());
  std::remove(path.c_str());
}

TEST(RecordingFormatTest, FormatFollowsExtension) {
  EXPECT_EQ(format_for_path("run.hw.vhprec"), RecordingFormat::kBinary);
  EXPECT_EQ(format_for_path("dump.jsonl"), RecordingFormat::kJsonl);
  EXPECT_EQ(format_for_path("dump.json"), RecordingFormat::kJsonl);
  EXPECT_EQ(format_for_path("no_extension"), RecordingFormat::kBinary);
}

TEST(RecordingFormatTest, ReadRejectsMissingFile) {
  auto r = read_recording(temp_path("does_not_exist.vhprec"));
  EXPECT_FALSE(r.ok());
}

TEST(RecordingFormatTest, FrameJsonNamesPortDirAndPayload) {
  const std::string line = frame_record_to_json(
      make_frame(7, LinkPort::kData, LinkDir::kTx, {1, 0xab}));
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"port\":\"data\""), std::string::npos);
  EXPECT_NE(line.find("\"dir\":\"tx\""), std::string::npos);
  EXPECT_NE(line.find("\"payload\":\"01ab\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Divergence checking

TEST(DivergenceTest, CompareFramesReportsFirstDifference) {
  const auto a = make_frame(0, LinkPort::kData, LinkDir::kTx, {1, 2, 3});
  EXPECT_EQ(compare_frames(a, a), "");

  auto type = a;
  type.msg_type = 4;
  EXPECT_NE(compare_frames(a, type).find("msg type"), std::string::npos);

  const auto size = make_frame(0, LinkPort::kData, LinkDir::kTx, {1, 2});
  EXPECT_NE(compare_frames(a, size).find("payload size"), std::string::npos);

  auto byte = make_frame(0, LinkPort::kData, LinkDir::kTx, {1, 2, 9});
  const std::string reason = compare_frames(a, byte);
  EXPECT_NE(reason.find("payload byte 2"), std::string::npos) << reason;
}

TEST(DivergenceTest, CompareFramesPrefersFieldDiff) {
  const auto a = make_frame(0, LinkPort::kClock, LinkDir::kTx, {5, 100});
  const auto b = make_frame(0, LinkPort::kClock, LinkDir::kTx, {5, 60});
  const FrameDiffFn named = [](const FrameRecord&, const FrameRecord&) {
    return std::string{"ClockTick.n_ticks: 100 vs 60"};
  };
  EXPECT_EQ(compare_frames(a, b, named), "ClockTick.n_ticks: 100 vs 60");
}

TEST(DivergenceTest, CheckerMatchesInPerPortOrder) {
  Recording ref;
  ref.frames.push_back(make_frame(0, LinkPort::kClock, LinkDir::kTx, {5, 1}));
  ref.frames.push_back(make_frame(1, LinkPort::kData, LinkDir::kTx, {3, 7}));
  ref.frames.push_back(make_frame(2, LinkPort::kClock, LinkDir::kTx, {5, 2}));

  DivergenceChecker checker{ref};
  // The data frame may arrive between the clock frames — queues are
  // independent per (port, dir).
  EXPECT_TRUE(checker.check(LinkPort::kClock, LinkDir::kTx, frame_of({5, 1})));
  EXPECT_TRUE(checker.check(LinkPort::kClock, LinkDir::kTx, frame_of({5, 2})));
  EXPECT_TRUE(checker.check(LinkPort::kData, LinkDir::kTx, frame_of({3, 7})));
  EXPECT_EQ(checker.matched(), 3u);
  EXPECT_FALSE(checker.divergence().has_value());
}

TEST(DivergenceTest, CheckerLatchesFirstMismatch) {
  Recording ref;
  ref.frames.push_back(make_frame(0, LinkPort::kClock, LinkDir::kTx, {5, 1}));
  ref.frames.push_back(make_frame(1, LinkPort::kClock, LinkDir::kTx, {5, 2}));

  DivergenceChecker checker{ref};
  EXPECT_TRUE(checker.check(LinkPort::kClock, LinkDir::kTx, frame_of({5, 1})));
  EXPECT_FALSE(
      checker.check(LinkPort::kClock, LinkDir::kTx, frame_of({5, 99})));
  ASSERT_TRUE(checker.divergence().has_value());
  const Divergence& d = *checker.divergence();
  EXPECT_EQ(d.seq, 1u);
  EXPECT_EQ(d.port, LinkPort::kClock);
  EXPECT_EQ(d.dir, LinkDir::kTx);
  EXPECT_EQ(d.hw_cycle, 10u);  // make_frame stamps hw_cycle = 10 * seq
  EXPECT_FALSE(d.reason.empty());
  EXPECT_NE(d.to_string().find("divergence at seq 1"), std::string::npos);
  // Latched: even a matching frame is rejected after the first mismatch.
  EXPECT_FALSE(
      checker.check(LinkPort::kClock, LinkDir::kTx, frame_of({5, 2})));
  EXPECT_EQ(checker.matched(), 1u);
}

TEST(DivergenceTest, CheckerFlagsFramesBeyondTheRecording) {
  Recording ref;
  ref.frames.push_back(make_frame(0, LinkPort::kInt, LinkDir::kTx, {4, 1}));
  DivergenceChecker checker{ref};
  EXPECT_TRUE(checker.check(LinkPort::kInt, LinkDir::kTx, frame_of({4, 1})));
  EXPECT_FALSE(checker.check(LinkPort::kInt, LinkDir::kTx, frame_of({4, 2})));
  ASSERT_TRUE(checker.divergence().has_value());
  EXPECT_NE(checker.divergence()->reason.find("beyond the recording"),
            std::string::npos);
}

TEST(DivergenceTest, CheckerMatchesTruncatedReferenceByDigest) {
  // Reference kept only a 2-byte prefix of a 4-byte frame; the live frame
  // must still match via the prefix + full-payload digest.
  const Bytes full{3, 10, 20, 30};
  FrameRecord cut = make_frame(0, LinkPort::kData, LinkDir::kTx, {3, 10});
  cut.truncated = true;
  cut.payload_size = static_cast<u32>(full.size());
  cut.digest = crc32(full);
  Recording ref;
  ref.frames.push_back(cut);

  DivergenceChecker ok{ref};
  EXPECT_TRUE(ok.check(LinkPort::kData, LinkDir::kTx, full));

  DivergenceChecker bad{ref};
  const Bytes tampered{3, 10, 20, 31};  // same prefix, different tail
  EXPECT_FALSE(bad.check(LinkPort::kData, LinkDir::kTx, tampered));
}

TEST(DivergenceTest, DiffRecordingsFindsFirstMismatchAndShortfall) {
  const Recording a = sample_recording();
  EXPECT_FALSE(diff_recordings(a, a).has_value());

  Recording perturbed = a;
  perturbed.frames[2].payload[1] = 99;
  perturbed.frames[2].digest = crc32(perturbed.frames[2].payload);
  const auto d = diff_recordings(a, perturbed);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq, a.frames[2].seq);
  EXPECT_EQ(d->port, a.frames[2].port);

  Recording prefix = a;
  prefix.frames.pop_back();
  const auto short_d = diff_recordings(a, prefix);
  ASSERT_TRUE(short_d.has_value());
  EXPECT_NE(short_d->reason.find("second recording ends early"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Report renderers (the vhptrace subcommand logic)

TEST(RecordingReportTest, StatsTextTabulatesPortsAndTypes) {
  const std::string text = recording_stats_text(sample_recording());
  EXPECT_NE(text.find("side: hw"), std::string::npos);
  EXPECT_NE(text.find("frames: 4"), std::string::npos);
  EXPECT_NE(text.find("tag t_sync = 100"), std::string::npos);
  EXPECT_NE(text.find("data"), std::string::npos);
  EXPECT_NE(text.find("clock"), std::string::npos);
  EXPECT_NE(text.find("msg type 6: 1 frames"), std::string::npos);
  EXPECT_NE(text.find("virtual span"), std::string::npos);
}

TEST(RecordingReportTest, ChromeJsonEmitsOneInstantPerFrame) {
  const Recording rec = sample_recording();
  const std::string json = recording_to_chrome_json(rec);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("clock.rx.t6"), std::string::npos);
  std::size_t events = 0;
  for (std::size_t at = json.find("\"name\""); at != std::string::npos;
       at = json.find("\"name\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, rec.frames.size());
}

}  // namespace
}  // namespace vhp::obs
