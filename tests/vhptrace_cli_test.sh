#!/usr/bin/env bash
# vhptrace CLI contract: a truncated or corrupt .vhprec must produce exit
# code 2 and a one-line "vhptrace: ..." error on stderr — never a crash, a
# hang, or a zero exit. Usage errors are exit 2 as well; divergence/gate
# breaches are exit 1 (covered by the C++ suites); clean runs exit 0.
#
# Usage: vhptrace_cli_test.sh <path-to-vhptrace>
set -u

VHPTRACE="${1:?usage: vhptrace_cli_test.sh <path-to-vhptrace>}"
TMPDIR="$(mktemp -d "${TMPDIR:-/tmp}/vhptrace_cli.XXXXXX")"
trap 'rm -rf "$TMPDIR"' EXIT

fails=0

# expect <want-status> <label> -- <argv...>
expect() {
  local want="$1" label="$2"
  shift 3
  local err status
  err="$("$@" 2>&1 >/dev/null)"
  status=$?
  if [ "$status" -ne "$want" ]; then
    echo "FAIL: $label: exit $status, want $want" >&2
    echo "      cmd: $*" >&2
    echo "      stderr: $err" >&2
    fails=$((fails + 1))
  else
    echo "ok: $label (exit $status)"
  fi
}

# expect_stderr <substring> <label> -- <argv...>
expect_stderr() {
  local want="$1" label="$2"
  shift 3
  local err
  err="$("$@" 2>&1 >/dev/null)"
  case "$err" in
    *"$want"*) echo "ok: $label (stderr mentions '$want')" ;;
    *)
      echo "FAIL: $label: stderr missing '$want'" >&2
      echo "      stderr: $err" >&2
      fails=$((fails + 1))
      ;;
  esac
}

# --- fixtures ---------------------------------------------------------------

GARBAGE="$TMPDIR/garbage.vhprec"
printf 'NOTAVHPRECFILE_WITH_SOME_PADDING' > "$GARBAGE"

EMPTY="$TMPDIR/empty.vhprec"
: > "$EMPTY"

MISSING="$TMPDIR/does_not_exist.vhprec"

# A real recording, produced by the vhp library itself: run the recorded
# smoke fixture generator if present, else fall back to write/truncate via
# the inspect path being exercised on the corrupt files only.
VALID="$TMPDIR/valid.vhprec"
HAVE_VALID=0
GEN="$(dirname "$VHPTRACE")/../bench/fabric_scale"
if [ -x "$GEN" ]; then
  if (cd "$TMPDIR" && "$GEN" --quick --record "$TMPDIR/smoke" \
        >/dev/null 2>&1); then
    if [ -f "$TMPDIR/smoke.hw.vhprec" ]; then
      cp "$TMPDIR/smoke.hw.vhprec" "$VALID"
      HAVE_VALID=1
    fi
  fi
fi

# --- corrupt/truncated inputs: exit 2, one-line error -----------------------

expect 2 "no arguments is a usage error"          -- "$VHPTRACE"
expect 2 "unknown command is a usage error"       -- "$VHPTRACE" frobnicate
expect 2 "inspect on missing file"                -- "$VHPTRACE" inspect "$MISSING"
expect 2 "inspect on garbage magic"               -- "$VHPTRACE" inspect "$GARBAGE"
expect 2 "inspect on empty file"                  -- "$VHPTRACE" inspect "$EMPTY"
expect 2 "stats on garbage magic"                 -- "$VHPTRACE" stats "$GARBAGE"
expect 2 "timeline on garbage magic"              -- "$VHPTRACE" timeline "$GARBAGE"
expect 2 "critical on garbage magic"              -- "$VHPTRACE" critical "$GARBAGE"
expect_stderr "vhptrace:" "error goes to stderr prefixed" -- "$VHPTRACE" inspect "$GARBAGE"

if [ "$HAVE_VALID" -eq 1 ]; then
  # Truncation of a genuine recording must be detected, not misparsed.
  TRUNC="$TMPDIR/trunc.vhprec"
  size=$(wc -c < "$VALID")
  head -c "$((size / 2))" "$VALID" > "$TRUNC"
  expect 2 "inspect on truncated recording"       -- "$VHPTRACE" inspect "$TRUNC"

  # Trailing garbage after the last frame is corruption, not slack.
  TRAIL="$TMPDIR/trailing.vhprec"
  cp "$VALID" "$TRAIL"
  printf 'JUNKJUNKJUNK' >> "$TRAIL"
  expect 2 "inspect on trailing bytes"            -- "$VHPTRACE" inspect "$TRAIL"

  # --- clean runs exit 0 ----------------------------------------------------
  expect 0 "inspect on a valid recording"         -- "$VHPTRACE" inspect "$VALID"
  expect 0 "stats on a valid recording"           -- "$VHPTRACE" stats "$VALID"
  expect 0 "timeline on a valid recording"        -- "$VHPTRACE" timeline "$VALID"
  expect 0 "critical on a valid recording"        -- "$VHPTRACE" critical "$VALID"
  expect 2 "bad --node argument is a usage error" -- "$VHPTRACE" inspect --node banana "$VALID"
else
  echo "note: fabric_scale not found next to vhptrace; valid-recording cases skipped"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all vhptrace CLI cases passed"
