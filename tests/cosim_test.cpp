// Co-simulation kernel tests: driver registry/ports, and the timing
// synchronization protocol exercised against a *scripted* peer (no Board),
// so each protocol obligation is checked in isolation.
#include <gtest/gtest.h>

#include <thread>

#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::cosim {
namespace {

using namespace std::chrono_literals;

// ---------- DriverRegistry ----------

TEST(DriverRegistry, DeliversWritesToHandler) {
  DriverRegistry reg;
  Bytes seen;
  reg.register_write(0x10, [&](std::span<const u8> d) {
    seen.assign(d.begin(), d.end());
    return Status::Ok();
  });
  EXPECT_TRUE(reg.deliver_write(0x10, Bytes{1, 2, 3}).ok());
  EXPECT_EQ(seen, (Bytes{1, 2, 3}));
  EXPECT_EQ(reg.writes_delivered(), 1u);
}

TEST(DriverRegistry, UnmappedAddressIsError) {
  DriverRegistry reg;
  EXPECT_EQ(reg.deliver_write(0x99, Bytes{1}).code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.serve_read(0x99, 4).status().code(), StatusCode::kNotFound);
}

TEST(DriverRegistry, ServesReadsAndTruncates) {
  DriverRegistry reg;
  reg.register_read(0x20, [] { return Bytes{1, 2, 3, 4, 5, 6}; });
  auto r = reg.serve_read(0x20, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (Bytes{1, 2, 3, 4}));
}

TEST(DriverRegistry, UnregisterRemovesEndpoint) {
  DriverRegistry reg;
  reg.register_read(0x1, [] { return Bytes{}; });
  reg.unregister(0x1);
  EXPECT_FALSE(reg.serve_read(0x1, 1).ok());
}

// ---------- Driver ports ----------

struct PortHarness : sim::Module {
  explicit PortHarness(sim::Kernel& k) : Module(k, "tb") {}
  using Module::method;
  using Module::thread;
};

TEST(DriverPorts, DriverInFiresOnEveryWriteEvenSameValue) {
  sim::Kernel k;
  DriverRegistry reg;
  DriverIn<u32> in{k, reg, "in", 0x0};
  PortHarness tb{k};
  int triggers = 0;
  tb.method("drv", [&] { ++triggers; })
      .sensitive(in.data_written_event())
      .dont_initialize();
  const Bytes payload = DriverCodec<u32>::encode(7);
  ASSERT_TRUE(reg.deliver_write(0x0, payload).ok());
  k.run(1);
  ASSERT_TRUE(reg.deliver_write(0x0, payload).ok());  // same value again
  k.run(1);
  EXPECT_EQ(triggers, 2);  // a Signal would have fired once
  EXPECT_EQ(in.read(), 7u);
  EXPECT_EQ(in.write_count(), 2u);
}

TEST(DriverPorts, DriverInRejectsGarbage) {
  sim::Kernel k;
  DriverRegistry reg;
  DriverIn<u32> in{k, reg, "in", 0x0};
  EXPECT_FALSE(reg.deliver_write(0x0, Bytes{1, 2}).ok());  // short for u32
}

TEST(DriverPorts, DriverOutServesCurrentValue) {
  DriverRegistry reg;
  DriverOut<u32> out{reg, "out", 0x4};
  out.write(0xabcd);
  auto r = reg.serve_read(0x4, 8);
  ASSERT_TRUE(r.ok());
  u32 v = 0;
  ASSERT_TRUE(DriverCodec<u32>::decode(r.value(), v));
  EXPECT_EQ(v, 0xabcdu);
}

TEST(DriverPorts, BytesCodecPassesThrough) {
  const Bytes raw{9, 8, 7};
  EXPECT_EQ(DriverCodec<Bytes>::encode(raw), raw);
  Bytes out;
  EXPECT_TRUE(DriverCodec<Bytes>::decode(raw, out));
  EXPECT_EQ(out, raw);
}

// ---------- protocol against a scripted peer ----------

struct ScriptedPeer {
  net::CosimLink link;

  void send_initial_ack() {
    ASSERT_TRUE(net::send_msg(*link.clock, net::TimeAck{0}).ok());
  }

  net::ClockTick expect_tick() {
    auto msg = net::recv_msg(*link.clock, 2000ms);
    EXPECT_TRUE(msg.ok()) << msg.status();
    EXPECT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
    return std::get<net::ClockTick>(msg.value());
  }

  void ack(u64 tick) {
    ASSERT_TRUE(net::send_msg(*link.clock, net::TimeAck{tick}).ok());
  }
};

TEST(CosimProtocol, HandshakeThenStrictTickAckAlternation) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.t_sync = 10;
  CosimKernel hw{std::move(pair.hw), cfg};
  ScriptedPeer peer{std::move(pair.board)};

  std::thread board([&] {
    peer.send_initial_ack();
    for (u64 i = 1; i <= 5; ++i) {
      const auto tick = peer.expect_tick();
      EXPECT_EQ(tick.sim_cycle, i * 10);
      EXPECT_EQ(tick.n_ticks, 10u);
      peer.ack(i);
    }
  });
  ASSERT_TRUE(hw.run_cycles(50).ok());
  board.join();
  EXPECT_EQ(hw.stats().syncs, 5u);
  EXPECT_EQ(hw.stats().acks_received, 5u);
  EXPECT_EQ(hw.cycle(), 50u);
}

TEST(CosimProtocol, HandshakeTimesOutWithoutBoard) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  CosimKernel hw{std::move(pair.hw), cfg};
  const Status s = hw.handshake(50ms);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
}

TEST(CosimProtocol, UntimedModeNeedsNoPeerTraffic) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.timed = false;
  CosimKernel hw{std::move(pair.hw), cfg};
  ASSERT_TRUE(hw.run_cycles(1000).ok());
  EXPECT_EQ(hw.stats().syncs, 0u);
}

TEST(CosimProtocol, ServesDataReadsWhileWaitingForAck) {
  // Deadlock-freedom: a read request arriving during the ack wait must be
  // answered before the ack arrives.
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.t_sync = 5;
  CosimKernel hw{std::move(pair.hw), cfg};
  DriverOut<u32> out{hw.registry(), "reg", 0x8};
  out.write(1234);
  ScriptedPeer peer{std::move(pair.board)};
  std::thread board([&] {
    peer.send_initial_ack();
    (void)peer.expect_tick();
    // Instead of acking immediately, demand data first.
    ASSERT_TRUE(net::send_msg(*peer.link.data, net::DataReadReq{0x8, 4}).ok());
    auto resp = net::recv_msg(*peer.link.data, 2000ms);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_TRUE(std::holds_alternative<net::DataReadResp>(resp.value()));
    u32 v = 0;
    ASSERT_TRUE(DriverCodec<u32>::decode(
        std::get<net::DataReadResp>(resp.value()).data, v));
    EXPECT_EQ(v, 1234u);
    peer.ack(1);
  });
  ASSERT_TRUE(hw.run_cycles(5).ok());
  board.join();
  EXPECT_EQ(hw.stats().data_reads, 1u);
}

TEST(CosimProtocol, InterruptEdgeEmitsExactlyOnce) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.t_sync = 100;
  CosimKernel hw{std::move(pair.hw), cfg};

  // A module that raises the line at cycle 3 and holds it high: level-hold
  // must produce ONE INT_RAISE (edge-triggered), not one per cycle.
  struct Raiser : sim::Module {
    sim::BoolSignal& line;
    Raiser(sim::Kernel& k, sim::SimTime period)
        : Module(k, "raiser"), line(make_bool_signal("irq")) {
      thread("t", [this, period] {
        sim::wait(3 * period);
        line.write(true);
      });
    }
  } raiser{hw.kernel(), cfg.clock_period};
  hw.watch_interrupt(raiser.line, 5);

  ScriptedPeer peer{std::move(pair.board)};
  std::thread board([&] {
    peer.send_initial_ack();
    auto irq = net::recv_msg(*peer.link.intr, 2000ms);
    ASSERT_TRUE(irq.ok());
    EXPECT_EQ(std::get<net::IntRaise>(irq.value()).vector, 5u);
    (void)peer.expect_tick();
    peer.ack(1);
    // No second interrupt for the held level.
    auto none = peer.link.intr->recv(50ms);
    EXPECT_FALSE(none.ok());
    EXPECT_EQ(none.status().code(), StatusCode::kDeadlineExceeded);
  });
  ASSERT_TRUE(hw.run_cycles(100).ok());
  board.join();
  EXPECT_EQ(hw.stats().interrupts_sent, 1u);
}

TEST(CosimProtocol, DriverWriteLandsBeforeNextCycle) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  cfg.t_sync = 4;
  CosimKernel hw{std::move(pair.hw), cfg};
  DriverIn<u32> in{hw.kernel(), hw.registry(), "in", 0x0};
  ScriptedPeer peer{std::move(pair.board)};
  std::thread board([&] {
    peer.send_initial_ack();
    const auto t1 = peer.expect_tick();
    ASSERT_TRUE(net::send_msg(*peer.link.data,
                              net::DataWrite{0x0,
                                             DriverCodec<u32>::encode(55)})
                    .ok());
    peer.ack(t1.sim_cycle);
    (void)peer.expect_tick();
    peer.ack(8);
  });
  ASSERT_TRUE(hw.run_cycles(8).ok());
  board.join();
  EXPECT_EQ(in.read(), 55u);
  EXPECT_EQ(hw.stats().data_writes, 1u);
}

TEST(CosimProtocol, FinishSendsShutdown) {
  auto pair = net::make_inproc_link_pair();
  CosimConfig cfg;
  {
    CosimKernel hw{std::move(pair.hw), cfg};
    hw.finish();
  }
  auto msg = net::recv_msg(*pair.board.clock, 500ms);
  ASSERT_TRUE(msg.ok());
  EXPECT_TRUE(std::holds_alternative<net::Shutdown>(msg.value()));
}

}  // namespace
}  // namespace vhp::cosim
