// Bus interconnect tests: decoding, latency accounting, arbitration under
// contention, targets, and a random-traffic property check.
#include <gtest/gtest.h>

#include "vhp/common/rng.hpp"
#include "vhp/sim/bus.hpp"
#include "vhp/sim/kernel.hpp"

namespace vhp::sim {
namespace {

struct Harness : Module {
  explicit Harness(Kernel& k) : Module(k, "tb") {}
  using Module::thread;
};

Bus::Config fast_bus() {
  Bus::Config cfg;
  cfg.clock_period = 2;
  cfg.transfer_cycles = 2;
  return cfg;
}

TEST(Bus, DecodesToMappedTargets) {
  Kernel k;
  Bus bus{k, "bus", fast_bus()};
  Memory ram{"ram"};
  MemoryBusTarget ram_target{ram, 0};
  RegisterBusTarget regs{4};
  bus.map(0x0000, 0x1000, ram_target);
  bus.map(0x8000, 0x10, regs);
  Harness tb{k};
  bool done = false;
  tb.thread("master", [&] {
    ASSERT_TRUE(bus.write(0x100, 0xaabbccdd).ok());
    auto ram_back = bus.read(0x100);
    ASSERT_TRUE(ram_back.ok());
    EXPECT_EQ(ram_back.value(), 0xaabbccddu);
    ASSERT_TRUE(bus.write(0x8004, 7).ok());
    auto reg_back = bus.read(0x8004);
    ASSERT_TRUE(reg_back.ok());
    EXPECT_EQ(reg_back.value(), 7u);
    done = true;
  });
  k.run_to_completion();
  EXPECT_TRUE(done);
  EXPECT_EQ(ram.read_u32(0x100), 0xaabbccddu);
  EXPECT_EQ(regs.peek(1), 7u);
}

TEST(Bus, UnmappedAddressIsBusError) {
  Kernel k;
  Bus bus{k, "bus", fast_bus()};
  Harness tb{k};
  bool checked = false;
  tb.thread("master", [&] {
    auto r = bus.read(0xdead0000);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_FALSE(bus.write(0xdead0000, 1).ok());
    checked = true;
  });
  k.run_to_completion();
  EXPECT_TRUE(checked);
  EXPECT_EQ(bus.stats().decode_errors, 2u);
}

TEST(Bus, AccessTakesTransferPlusWaitStates) {
  Kernel k;
  Bus bus{k, "bus", fast_bus()};  // 2 cycles transfer, period 2
  Memory ram{"ram"};
  MemoryBusTarget slow_ram{ram, /*wait_states=*/3};
  bus.map(0x0, 0x1000, slow_ram);
  Harness tb{k};
  SimTime elapsed = 0;
  tb.thread("master", [&] {
    const SimTime t0 = k.now();
    (void)bus.read(0x0);
    elapsed = k.now() - t0;
  });
  k.run_to_completion();
  // (2 transfer + 3 wait states) cycles * 2 units = 10 time units.
  EXPECT_EQ(elapsed, 10u);
}

TEST(Bus, ContentionSerializesMasters) {
  Kernel k;
  Bus bus{k, "bus", fast_bus()};
  Memory ram{"ram"};
  MemoryBusTarget ram_target{ram, 0};  // 2 cycles/access = 4 units
  bus.map(0x0, 0x1000, ram_target);
  Harness tb{k};
  std::vector<SimTime> completions;
  for (int m = 0; m < 3; ++m) {
    tb.thread("m" + std::to_string(m), [&, m] {
      (void)bus.write(static_cast<u32>(0x10 + 4 * m),
                      static_cast<u32>(m));
      completions.push_back(k.now());
    });
  }
  k.run_to_completion();
  ASSERT_EQ(completions.size(), 3u);
  std::sort(completions.begin(), completions.end());
  // All three issue at t=0; a 4-unit bus serializes them: 4, 8, 12.
  EXPECT_EQ(completions, (std::vector<SimTime>{4, 8, 12}));
  EXPECT_EQ(bus.stats().contended, 2u);
}

TEST(Bus, RegisterTargetHookFires) {
  Kernel k;
  std::vector<std::pair<u32, u32>> writes;
  RegisterBusTarget regs{8, [&](u32 index, u32 value) {
                           writes.emplace_back(index, value);
                         }};
  Bus bus{k, "bus", fast_bus()};
  bus.map(0x0, 0x20, regs);
  Harness tb{k};
  tb.thread("master", [&] {
    (void)bus.write(0x0, 1);
    (void)bus.write(0xc, 9);
  });
  k.run_to_completion();
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0], std::make_pair(0u, 1u));
  EXPECT_EQ(writes[1], std::make_pair(3u, 9u));
}

TEST(Bus, RegisterTargetRejectsOutOfRange) {
  Kernel k;
  RegisterBusTarget regs{2};
  Bus bus{k, "bus", fast_bus()};
  bus.map(0x0, 0x100, regs);  // window larger than the register file
  Harness tb{k};
  tb.thread("master", [&] {
    EXPECT_FALSE(bus.write(0x40, 1).ok());
    EXPECT_FALSE(bus.read(0x40).ok());
  });
  k.run_to_completion();
}

TEST(Bus, FairArbitrationPreventsStarvation) {
  // Regression: a back-to-back master must not starve an occasional one.
  // The hog issues transactions with no gaps; the light master must still
  // complete its accesses interleaved, not after the hog finishes.
  Kernel k;
  Bus bus{k, "bus", fast_bus()};
  Memory ram{"ram"};
  MemoryBusTarget ram_target{ram, 0};
  bus.map(0x0, 0x10000, ram_target);
  Harness tb{k};
  SimTime light_done = 0;
  SimTime hog_done = 0;
  tb.thread("hog", [&] {
    for (int i = 0; i < 100; ++i) {
      (void)bus.write(static_cast<u32>(4 * i), 1);  // back to back
    }
    hog_done = k.now();
  });
  tb.thread("light", [&] {
    for (int i = 0; i < 5; ++i) {
      (void)bus.read(0x8000);
      wait(2);
    }
    light_done = k.now();
  });
  k.run_to_completion();
  // 5 light accesses interleave with the hog: done long before the hog's
  // 100 back-to-back transfers complete.
  EXPECT_LT(light_done, hog_done);
}

class BusRandomTraffic : public ::testing::TestWithParam<u64> {};

TEST_P(BusRandomTraffic, MatchesDirectMemoryAccess) {
  // Property: any interleaving of bus transactions from several masters
  // ends with the same memory contents as the same writes issued directly
  // (per-address last-writer is deterministic here: each master owns a
  // disjoint address slice).
  Kernel k;
  Bus bus{k, "bus", fast_bus()};
  Memory ram{"ram"};
  Memory reference{"ref"};
  MemoryBusTarget ram_target{ram, 1};
  bus.map(0x0, 0x100000, ram_target);
  Harness tb{k};
  constexpr int kMasters = 4;
  for (int m = 0; m < kMasters; ++m) {
    tb.thread("m" + std::to_string(m), [&, m] {
      Rng rng{GetParam() * 97 + static_cast<u64>(m)};
      for (int op = 0; op < 50; ++op) {
        const u32 addr =
            static_cast<u32>((m * 0x1000) + 4 * rng.below(64));
        const u32 value = static_cast<u32>(rng.next());
        ASSERT_TRUE(bus.write(addr, value).ok());
        reference.write_u32(addr, value);
        auto back = bus.read(addr);
        ASSERT_TRUE(back.ok());
        ASSERT_EQ(back.value(), value);
        if (rng.chance(0.3)) wait(rng.below(20));
      }
    });
  }
  k.run_to_completion();
  for (int m = 0; m < kMasters; ++m) {
    for (u32 i = 0; i < 64; ++i) {
      const u32 addr = static_cast<u32>(m * 0x1000 + 4 * i);
      ASSERT_EQ(ram.read_u32(addr), reference.read_u32(addr));
    }
  }
  EXPECT_EQ(bus.stats().reads, kMasters * 50u);
  EXPECT_EQ(bus.stats().writes, kMasters * 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusRandomTraffic,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace vhp::sim
