// The cross-node causal timeline, fiber-free ("timeline-tsan" label): wire-v3
// round codec, span rings, the critical-path analyzer on synthetic spans,
// offline extraction from recordings, the telemetry endpoint, and the
// SyncCoordinator driven over raw inproc channel pairs by plain threads —
// including the metrics-continuity-across-eviction+rejoin satellite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <variant>
#include <vector>

#include "vhp/fabric/sync_coordinator.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/message.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/obs/hub.hpp"
#include "vhp/obs/metrics.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/obs/telemetry.hpp"
#include "vhp/obs/timeline.hpp"

// ---------------------------------------------------------------------------
// Wire v3: round ids on CLOCK_TICK / TIME_ACK, versioned by length

namespace vhp::net {
namespace {

TEST(MessageCodecV3, ClockTickWithoutRoundStaysWireV1) {
  const Bytes v1 = encode(Message{ClockTick{100, 5}});
  EXPECT_EQ(v1.size(), 1u + 8u + 4u);  // type byte + sim_cycle + n_ticks
  auto decoded = decode(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto& tick = std::get<ClockTick>(decoded.value());
  EXPECT_EQ(tick.sim_cycle, 100u);
  EXPECT_EQ(tick.n_ticks, 5u);
  EXPECT_FALSE(tick.round.has_value());
}

TEST(MessageCodecV3, ClockTickRoundRoundTrips) {
  const Message original{ClockTick{4000, 7, 42}};
  const Bytes v3 = encode(original);
  EXPECT_EQ(v3.size(), 1u + 8u + 4u + 8u);
  auto decoded = decode(v3);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), original);
}

TEST(MessageCodecV3, ClockTickRejectsTruncatedRound) {
  Bytes frame = encode(Message{ClockTick{4000, 7, 42}});
  frame.resize(frame.size() - 3);
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodecV3, TimeAckCarriesLookaheadAndRound) {
  const Message original{TimeAck{500, 9000, 42}};
  const Bytes v3 = encode(original);
  EXPECT_EQ(v3.size(), 1u + 8u + 8u + 8u);
  auto decoded = decode(v3);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), original);
}

TEST(MessageCodecV3, TimeAckWithoutLookaheadUsesSentinelInvisibly) {
  // A round with no lookahead puts kNoLookahead on the wire; the decoder
  // must map it back to nullopt, never surface the sentinel.
  const Message original{TimeAck{500, std::nullopt, 42}};
  auto decoded = decode(encode(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto& ack = std::get<TimeAck>(decoded.value());
  EXPECT_FALSE(ack.lookahead.has_value());
  ASSERT_TRUE(ack.round.has_value());
  EXPECT_EQ(*ack.round, 42u);
}

TEST(MessageCodecV3, TimeAckUnboundedLookaheadCoexistsWithRound) {
  const Message original{TimeAck{1, kLookaheadUnbounded, 3}};
  auto decoded = decode(encode(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), original);
}

TEST(MessageCodecV3, TimeAckRejectsTruncatedRound) {
  Bytes frame = encode(Message{TimeAck{500, 9000, 42}});
  frame.resize(frame.size() - 5);
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodecV3, TimeAckRejectsTrailingGarbageAfterRound) {
  Bytes frame = encode(Message{TimeAck{500, 9000, 42}});
  frame.push_back(0xAB);
  EXPECT_FALSE(decode(frame).ok());
}

TEST(MessageCodecV3, MixedVersionsDecodeSideBySide) {
  // v1 / v2 / v3 acks must all decode with one decoder — the interop
  // contract for mixed-version fabric parties.
  for (const Message& m : {Message{TimeAck{7}}, Message{TimeAck{7, 100}},
                           Message{TimeAck{7, 100, 1}}}) {
    auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded.value(), m);
  }
}

}  // namespace
}  // namespace vhp::net

// ---------------------------------------------------------------------------
// Span rings, analyzer, exports

namespace vhp::obs {
namespace {

TEST(SpanSinkTest, DisabledSinkRecordsNothing) {
  TimelineConfig cfg;  // enabled defaults to false
  SpanSink sink{cfg, "test"};
  EXPECT_FALSE(sink.enabled());
  sink.record({1, 0, SpanPhase::kBarrier, 10, 20, 100});
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(SpanSinkTest, RingOverwritesOldestAndCountsDrops) {
  TimelineConfig cfg;
  cfg.enabled = true;
  cfg.ring_spans = 4;
  SpanSink sink{cfg, "test"};
  for (u64 r = 0; r < 6; ++r) {
    sink.record({r, 0, SpanPhase::kBarrier, r * 10, r * 10 + 5, 0});
  }
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].round, i + 2) << "oldest-first, oldest two evicted";
  }
}

TEST(TimelineTest, SinkIsGetOrCreateAndSnapshotMergesSorted) {
  TimelineConfig cfg;
  cfg.enabled = true;
  Timeline tl{cfg};
  SpanSink& a = tl.sink("fabric");
  SpanSink& a2 = tl.sink("fabric");
  EXPECT_EQ(&a, &a2);
  SpanSink& b = tl.sink("board");
  a.record({1, 0, SpanPhase::kScatter, 50, 60, 0});
  b.record({1, 0, SpanPhase::kCompute, 10, 40, 0});
  const auto merged = tl.snapshot();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].phase, SpanPhase::kCompute);  // sorted by start_ns
  EXPECT_EQ(merged[1].phase, SpanPhase::kScatter);
}

TEST(TimelineTest, ExportPublishesSpanAndDropGauges) {
  TimelineConfig cfg;
  cfg.enabled = true;
  cfg.ring_spans = 2;
  Timeline tl{cfg};
  SpanSink& s = tl.sink("fabric");
  for (u64 r = 0; r < 3; ++r) {
    s.record({r, 0, SpanPhase::kBarrier, r, r + 1, 0});
  }
  MetricsRegistry reg;
  tl.export_to(reg);
  EXPECT_EQ(reg.gauge("timeline.spans").value(), 3);
  EXPECT_EQ(reg.gauge("timeline.dropped_spans").value(), 1);
}

TEST(TimelineTest, NowNsIsMonotoneOnTheEpoch) {
  Timeline tl{TimelineConfig{.enabled = true}};
  const u64 a = tl.now_ns();
  const u64 b = tl.now_ns();
  EXPECT_LE(a, b);
}

/// Synthetic two-round, two-node window with exact round-trip numbers so
/// every analyzer output is checkable by hand. Round 1 (cycle 1000): node 1
/// straggles (ack at 100 vs node 0's at 40). Round 2 (cycle 2000): node 0
/// straggles.
std::vector<SpanRecord> synthetic_spans() {
  return {
      // round 1
      {1, 0, SpanPhase::kScatter, 0, 2, 1000},
      {1, 0, SpanPhase::kNodeWait, 0, 40, 1000},
      {1, 1, SpanPhase::kNodeWait, 0, 100, 1000},
      {1, 0, SpanPhase::kCompute, 10, 30, 1000},
      {1, 1, SpanPhase::kCompute, 20, 80, 1000},
      {1, 0, SpanPhase::kGather, 0, 100, 1000},
      {1, 0, SpanPhase::kBarrier, 0, 100, 1000},
      // round 2 (master computes 100..200 between the rounds)
      {2, 0, SpanPhase::kScatter, 200, 201, 2000},
      {2, 0, SpanPhase::kNodeWait, 200, 260, 2000},
      {2, 1, SpanPhase::kNodeWait, 200, 230, 2000},
      {2, 0, SpanPhase::kCompute, 210, 250, 2000},
      {2, 1, SpanPhase::kCompute, 205, 215, 2000},
      {2, 0, SpanPhase::kGather, 200, 260, 2000},
      {2, 0, SpanPhase::kBarrier, 200, 260, 2000},
  };
}

TEST(AnalyzerTest, DecomposesWallClockAndNamesStragglers) {
  const TimelineAnalysis a =
      analyze_spans(synthetic_spans(), {{0, "alpha"}, {1, "beta"}});

  ASSERT_EQ(a.rounds.size(), 2u);
  EXPECT_EQ(a.rounds[0].round, 1u);
  EXPECT_EQ(a.rounds[0].cycle, 1000u);
  EXPECT_EQ(a.rounds[0].straggler, 1u);
  EXPECT_EQ(a.rounds[0].straggler_wait_ns, 60u);  // 100 − 40
  EXPECT_EQ(a.rounds[1].straggler, 0u);
  EXPECT_EQ(a.rounds[1].straggler_wait_ns, 30u);  // 260 − 230

  EXPECT_EQ(a.wall_ns, 260u);
  EXPECT_EQ(a.barrier_wall_ns, 160u);    // 100 + 60
  EXPECT_EQ(a.master_compute_ns, 100u);  // the 100..200 gap
  EXPECT_EQ(a.virtual_cycles, 1000u);
  EXPECT_DOUBLE_EQ(a.slowdown, 260.0 / 1000.0);
  // critical = 100 (round 1) + 60 (round 2); attributed = 100 + 160 = wall.
  EXPECT_DOUBLE_EQ(a.reconciliation_error, 0.0);

  ASSERT_EQ(a.nodes.size(), 2u);
  const NodeAttribution& alpha = a.nodes[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.rounds, 2u);
  EXPECT_EQ(alpha.wait_ns, 100u);     // 40 + 60
  EXPECT_EQ(alpha.compute_ns, 60u);   // 20 + 40
  EXPECT_EQ(alpha.transport_ns, 40u); // (40−20) + (60−40)
  EXPECT_EQ(alpha.straggler_rounds, 1u);
  const NodeAttribution& beta = a.nodes[1];
  EXPECT_EQ(beta.wait_ns, 130u);      // 100 + 30
  EXPECT_EQ(beta.compute_ns, 70u);    // 60 + 10
  EXPECT_EQ(beta.straggler_rounds, 1u);
}

TEST(AnalyzerTest, EmptySpansYieldEmptyAnalysis) {
  const TimelineAnalysis a = analyze_spans({});
  EXPECT_TRUE(a.rounds.empty());
  EXPECT_TRUE(a.nodes.empty());
  EXPECT_EQ(a.wall_ns, 0u);
  EXPECT_DOUBLE_EQ(a.slowdown, 0.0);
  EXPECT_DOUBLE_EQ(a.reconciliation_error, 0.0);
}

TEST(AnalyzerTest, ReportsRenderNamesAndHeadlines) {
  const TimelineAnalysis a =
      analyze_spans(synthetic_spans(), {{0, "alpha"}, {1, "beta"}});
  const std::string timeline = timeline_report_text(a);
  EXPECT_NE(timeline.find("rounds: 2"), std::string::npos);
  EXPECT_NE(timeline.find("straggler"), std::string::npos);
  const std::string critical = critical_report_text(a);
  EXPECT_NE(critical.find("alpha"), std::string::npos);
  EXPECT_NE(critical.find("slowdown"), std::string::npos);
  EXPECT_NE(critical.find("reconciliation"), std::string::npos);
}

TEST(AnalyzerTest, JsonCarriesTotalsAndPerNodeAttribution) {
  const std::string json = timeline_analysis_json(analyze_spans(
      synthetic_spans(), {{0, "alpha"}, {1, "beta"}}));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"wall_ns\":260", "\"barrier_wall_ns\":160",
        "\"master_compute_ns\":100", "\"slowdown\":", "\"rounds\":2",
        "\"reconciliation_error\":", "\"nodes\":[", "\"alpha\"", "\"beta\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(AnalyzerTest, ChromeExportHasOneTrackPerNode) {
  const std::string json =
      spans_to_chrome_json(synthetic_spans(), {{1, "beta"}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("beta"), std::string::npos);
  EXPECT_NE(json.find("compute"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Percentile satellite: p50/p95/p99 on the power-of-two histograms

TEST(PercentileTest, QuantilesAreBucketUpperEdgesAndOrdered) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0u);  // empty
  for (u64 i = 0; i < 90; ++i) h.record_ns(1000);    // bucket [512, 1024)
  for (u64 i = 0; i < 9; ++i) h.record_ns(100000);   // ~2^16
  h.record_ns(2000000);                              // ~2^20
  const u64 p50 = h.percentile_ns(0.5);
  const u64 p95 = h.percentile_ns(0.95);
  const u64 p99 = h.percentile_ns(0.99);
  EXPECT_EQ(p50, (u64{1} << 10) - 1);  // upper edge of the 1000ns bucket
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p95, 100000u);  // the tail samples pull p95 up an octave stack
  EXPECT_GE(h.percentile_ns(1.0), 2000000u);  // max lands in the top sample
}

TEST(PercentileTest, HistogramJsonCarriesP50P95P99) {
  MetricsRegistry reg;
  reg.histogram("sync.wait").record_ns(5000);
  const std::string json = reg.to_json();
  for (const char* key : {"\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---------------------------------------------------------------------------
// Recording reader hardening satellite

class RecordingFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "vhp_timeline_rec_test.vhprec")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }

  Recording small_recording() {
    Recording rec;
    rec.meta.side = "hw";
    FrameRecord f;
    f.seq = 0;
    f.port = LinkPort::kClock;
    f.dir = LinkDir::kTx;
    f.payload = net::encode(net::Message{net::ClockTick{10, 10}});
    f.payload_size = static_cast<u32>(f.payload.size());
    f.msg_type = f.payload.empty() ? 0 : f.payload[0];
    rec.frames.push_back(std::move(f));
    return rec;
  }
};

TEST_F(RecordingFileTest, RejectsTrailingBytesAfterLastFrame) {
  ASSERT_TRUE(write_recording(path_, small_recording(), RecordingFormat::kBinary).ok());
  {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    f << "JUNKJUNK";
  }
  const auto result = read_recording(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos)
      << result.status();
}

TEST_F(RecordingFileTest, RejectsTruncatedFile) {
  ASSERT_TRUE(write_recording(path_, small_recording(), RecordingFormat::kBinary).ok());
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_FALSE(read_recording(path_).ok());
}

TEST_F(RecordingFileTest, RejectsGarbageMagic) {
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << "NOTAVHPRECFILE_WITH_SOME_PADDING_BYTES";
  }
  EXPECT_FALSE(read_recording(path_).ok());
}

// ---------------------------------------------------------------------------
// Telemetry endpoint + snapshot parsing

TEST(TelemetryTest, ParsesCountersGaugesAndHistograms) {
  MetricsRegistry reg;
  reg.counter("fabric.barriers").inc(7);
  reg.gauge("fabric.nodes").set(3);
  reg.histogram("sync.wait").record_ns(4000);
  const TelemetrySnapshot snap = parse_metrics_snapshot(reg.to_json());
  ASSERT_TRUE(snap.ok);
  EXPECT_EQ(snap.counter("fabric.barriers"), 7u);
  EXPECT_EQ(snap.gauge("fabric.nodes"), 3);
  ASSERT_EQ(snap.histograms.count("sync.wait"), 1u);
  EXPECT_EQ(snap.histograms.at("sync.wait").count, 1u);
  EXPECT_EQ(snap.histograms.at("sync.wait").sum_ns, 4000u);
}

TEST(TelemetryTest, ParseRejectsNonMetricsDocuments) {
  EXPECT_FALSE(parse_metrics_snapshot("").ok);
  EXPECT_FALSE(parse_metrics_snapshot("hello, not json").ok);
}

TEST(TelemetryTest, ServerServesOneFramePerConnection) {
  MetricsRegistry reg;
  reg.counter("fabric.barriers").inc(11);
  TelemetryServer server;
  ASSERT_TRUE(server.start([&reg] { return reg.to_json(); }).ok());
  ASSERT_NE(server.port(), 0u);

  for (int i = 0; i < 2; ++i) {
    auto channel = net::connect_tcp_channel(server.port());
    ASSERT_TRUE(channel.ok()) << channel.status();
    auto frame = channel.value()->recv(std::chrono::milliseconds{5000});
    ASSERT_TRUE(frame.ok()) << frame.status();
    const TelemetrySnapshot snap = parse_metrics_snapshot(
        std::string(frame.value().begin(), frame.value().end()));
    ASSERT_TRUE(snap.ok);
    EXPECT_EQ(snap.counter("fabric.barriers"), 11u);
  }
  // The server bumps served() after the send lands in the socket buffer, so
  // the client can observe the frame a hair before the counter; wait it out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (server.served() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(server.served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(TelemetryTest, StartTwiceFailsStopRestartsClean) {
  TelemetryServer server;
  ASSERT_TRUE(server.start([] { return std::string("{}"); }).ok());
  EXPECT_FALSE(server.start([] { return std::string("{}"); }).ok());
  server.stop();
  ASSERT_TRUE(server.start([] { return std::string("{}"); }).ok());
  server.stop();
}

TEST(TelemetryTest, TopTextRendersAbsoluteAndRateViews) {
  MetricsRegistry reg;
  reg.counter("fabric.barriers").inc(10);
  reg.histogram("fabric.barrier_wait_ns").record_ns(8000);
  reg.histogram("fabric.node0.grant_cycles").record_ns(1000);
  const TelemetrySnapshot prev = parse_metrics_snapshot(reg.to_json());
  reg.counter("fabric.barriers").inc(5);
  const TelemetrySnapshot cur = parse_metrics_snapshot(reg.to_json());

  const std::string absolute = telemetry_top_text(cur, nullptr, 0.0);
  EXPECT_NE(absolute.find("rounds 15"), std::string::npos);
  EXPECT_NE(absolute.find("barrier wait"), std::string::npos);
  const std::string rates = telemetry_top_text(cur, &prev, 1.0);
  EXPECT_NE(rates.find("node0"), std::string::npos);
}

}  // namespace
}  // namespace vhp::obs

// ---------------------------------------------------------------------------
// Offline extraction: spans out of .vhprec frame streams

namespace vhp::net {
namespace {

obs::FrameRecord clock_frame(u64 seq, u32 node, obs::LinkDir dir,
                             const Message& msg, u64 wall_ns) {
  obs::FrameRecord f;
  f.seq = seq;
  f.port = obs::LinkPort::kClock;
  f.dir = dir;
  f.node = node;
  f.wall_ns = wall_ns;
  f.payload = encode(msg);
  f.payload_size = static_cast<u32>(f.payload.size());
  f.msg_type = f.payload[0];
  return f;
}

TEST(TimelineFromRecordingsTest, JoinsTicksAndAcksIntoRoundSpans) {
  obs::Recording hw;
  hw.meta.side = "hw";
  u64 seq = 0;
  // Round 1 at cycle 100: both nodes ticked, node 1 straggles.
  hw.frames.push_back(clock_frame(seq++, 0, obs::LinkDir::kTx,
                                  Message{ClockTick{100, 10, 1}}, 10));
  hw.frames.push_back(clock_frame(seq++, 1, obs::LinkDir::kTx,
                                  Message{ClockTick{100, 10, 1}}, 12));
  hw.frames.push_back(clock_frame(seq++, 0, obs::LinkDir::kRx,
                                  Message{TimeAck{10, std::nullopt, 1}}, 40));
  hw.frames.push_back(clock_frame(seq++, 1, obs::LinkDir::kRx,
                                  Message{TimeAck{10, std::nullopt, 1}}, 90));
  // Round 2 at cycle 200: node 0 only.
  hw.frames.push_back(clock_frame(seq++, 0, obs::LinkDir::kTx,
                                  Message{ClockTick{200, 10, 2}}, 150));
  hw.frames.push_back(clock_frame(seq++, 0, obs::LinkDir::kRx,
                                  Message{TimeAck{20, std::nullopt, 2}}, 180));

  obs::Recording board;  // node 0's own side: compute span 15..35
  board.meta.side = "board";
  board.frames.push_back(clock_frame(0, 0, obs::LinkDir::kRx,
                                     Message{ClockTick{100, 10, 1}}, 15));
  board.frames.push_back(clock_frame(1, 0, obs::LinkDir::kTx,
                                     Message{TimeAck{10, std::nullopt, 1}},
                                     35));

  const auto spans = timeline_from_recordings(hw, {board});
  const obs::TimelineAnalysis a = obs::analyze_spans(spans);
  ASSERT_EQ(a.rounds.size(), 2u);
  EXPECT_EQ(a.rounds[0].round, 1u);
  EXPECT_EQ(a.rounds[0].cycle, 100u);
  EXPECT_EQ(a.rounds[0].straggler, 1u);
  EXPECT_EQ(a.rounds[1].round, 2u);

  u64 waits = 0, computes = 0;
  for (const auto& s : spans) {
    if (s.phase == obs::SpanPhase::kNodeWait) ++waits;
    if (s.phase == obs::SpanPhase::kCompute) {
      ++computes;
      EXPECT_EQ(s.start_ns, 15u);
      EXPECT_EQ(s.end_ns, 35u);
    }
  }
  EXPECT_EQ(waits, 3u);
  EXPECT_EQ(computes, 1u);
}

TEST(TimelineFromRecordingsTest, SynthesizesRoundsForV1Recordings) {
  // No wire rounds at all (pre-v3 recording): grouping by grant sim-cycle
  // must still produce one round per barrier.
  obs::Recording hw;
  hw.meta.side = "hw";
  hw.frames.push_back(clock_frame(0, 0, obs::LinkDir::kTx,
                                  Message{ClockTick{100, 10}}, 10));
  hw.frames.push_back(clock_frame(1, 0, obs::LinkDir::kRx,
                                  Message{TimeAck{10}}, 30));
  hw.frames.push_back(clock_frame(2, 0, obs::LinkDir::kTx,
                                  Message{ClockTick{200, 10}}, 50));
  hw.frames.push_back(clock_frame(3, 0, obs::LinkDir::kRx,
                                  Message{TimeAck{20}}, 70));
  const auto spans = timeline_from_recordings(hw);
  const obs::TimelineAnalysis a = obs::analyze_spans(spans);
  ASSERT_EQ(a.rounds.size(), 2u);
  EXPECT_NE(a.rounds[0].round, a.rounds[1].round);
  EXPECT_EQ(a.rounds[0].cycle, 100u);
  EXPECT_EQ(a.rounds[1].cycle, 200u);
}

TEST(TimelineFromRecordingsTest, SkipsBootAcksInjectedAndTruncatedFrames) {
  obs::Recording hw;
  hw.meta.side = "hw";
  // Boot ack with no preceding tick: must not fabricate a wait span.
  hw.frames.push_back(clock_frame(0, 0, obs::LinkDir::kRx,
                                  Message{TimeAck{0}}, 5));
  auto injected = clock_frame(1, 0, obs::LinkDir::kTx,
                              Message{ClockTick{100, 10, 1}}, 8);
  injected.flags = obs::kFrameFlagInjected;
  hw.frames.push_back(injected);
  auto truncated = clock_frame(2, 0, obs::LinkDir::kTx,
                               Message{ClockTick{100, 10, 1}}, 9);
  truncated.truncated = true;
  hw.frames.push_back(truncated);
  EXPECT_TRUE(timeline_from_recordings(hw).empty());
}

}  // namespace
}  // namespace vhp::net

// ---------------------------------------------------------------------------
// SyncCoordinator round stamping + metrics continuity across evict/rejoin

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;

struct NodeLog {
  std::vector<net::ClockTick> ticks;
  std::vector<std::optional<u64>> ack_rounds_sent;
};

/// A wire-v3 node emulator: boot frozen TIME_ACK, then answers every
/// CLOCK_TICK echoing the round id it saw (exactly what board::Board does).
std::thread spawn_echo_node(net::Channel& clock, NodeLog& log) {
  return std::thread([&clock, &log] {
    ASSERT_TRUE(net::send_msg(clock, net::TimeAck{0}).ok());
    u64 board_tick = 0;
    for (;;) {
      auto msg = net::recv_msg(clock, 2000ms);
      if (!msg.ok()) return;
      if (std::holds_alternative<net::Shutdown>(msg.value())) return;
      ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
      const auto tick = std::get<net::ClockTick>(msg.value());
      log.ticks.push_back(tick);
      board_tick += tick.n_ticks;
      log.ack_rounds_sent.push_back(tick.round);
      ASSERT_TRUE(net::send_msg(
                      clock, net::TimeAck{board_tick, std::nullopt,
                                          tick.round})
                      .ok());
    }
  });
}

/// Flaky variant for the eviction/rejoin continuity test: answers (with the
/// round echoed) only while `answering`; `announce` raises one frozen ack.
std::thread spawn_flaky_echo_node(net::Channel& clock,
                                  std::atomic<bool>& answering,
                                  std::atomic<bool>& announce) {
  return std::thread([&clock, &answering, &announce] {
    ASSERT_TRUE(net::send_msg(clock, net::TimeAck{0}).ok());
    u64 board_tick = 0;
    for (;;) {
      auto msg = net::recv_msg(clock, 25ms);
      if (!msg.ok()) {
        if (msg.status().code() != StatusCode::kDeadlineExceeded) return;
        if (announce.exchange(false)) {
          ASSERT_TRUE(net::send_msg(clock, net::TimeAck{board_tick}).ok());
        }
        continue;
      }
      if (std::holds_alternative<net::Shutdown>(msg.value())) return;
      ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
      const auto tick = std::get<net::ClockTick>(msg.value());
      if (!answering.load()) continue;  // swallow the grant: straggle
      board_tick += tick.n_ticks;
      ASSERT_TRUE(net::send_msg(
                      clock, net::TimeAck{board_tick, std::nullopt,
                                          tick.round})
                      .ok());
    }
  });
}

obs::ObsConfig timeline_obs_config() {
  obs::ObsConfig cfg;
  cfg.timeline.enabled = true;
  return cfg;
}

TEST(CoordinatorTimelineTest, StampsMonotoneRoundsAndRecordsSpans) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();
  obs::Hub hub{timeline_obs_config()};
  SyncConfig cfg;
  cfg.t_sync = 10;
  SyncCoordinator coord{cfg, {m0.get(), m1.get()}, {"a", "b"}, &hub};
  NodeLog log0, log1;
  std::thread t0 = spawn_echo_node(*b0, log0);
  std::thread t1 = spawn_echo_node(*b1, log1);

  ASSERT_TRUE(coord.handshake().ok());
  EXPECT_EQ(coord.rounds(), 0u);
  for (u64 cycle = 10; cycle <= 30; cycle += 10) {
    ASSERT_TRUE(coord.run_barrier(cycle).ok());
  }
  EXPECT_EQ(coord.rounds(), 3u);
  coord.shutdown();
  t0.join();
  t1.join();

  for (const NodeLog* log : {&log0, &log1}) {
    ASSERT_EQ(log->ticks.size(), 3u);
    for (std::size_t i = 0; i < log->ticks.size(); ++i) {
      ASSERT_TRUE(log->ticks[i].round.has_value());
      EXPECT_EQ(*log->ticks[i].round, i + 1) << "rounds start at 1";
    }
  }

  const auto spans = hub.timeline().snapshot();
  ASSERT_FALSE(spans.empty());
  bool saw_scatter = false, saw_gather = false, saw_wait = false,
       saw_barrier = false;
  for (const auto& s : spans) {
    EXPECT_GE(s.round, 1u);
    EXPECT_LE(s.round, 3u);
    EXPECT_LE(s.start_ns, s.end_ns);
    switch (s.phase) {
      case obs::SpanPhase::kScatter: saw_scatter = true; break;
      case obs::SpanPhase::kGather: saw_gather = true; break;
      case obs::SpanPhase::kNodeWait: saw_wait = true; break;
      case obs::SpanPhase::kBarrier:
        saw_barrier = true;
        EXPECT_EQ(s.cycle % 10, 0u);
        break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_gather);
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_barrier);

  const obs::TimelineAnalysis a = obs::analyze_spans(spans, {{0, "a"},
                                                            {1, "b"}});
  EXPECT_EQ(a.rounds.size(), 3u);
  EXPECT_EQ(a.virtual_cycles, 20u);  // grants at cycles 10, 20, 30
}

TEST(CoordinatorTimelineTest, DisabledTimelineKeepsWireV1) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  SyncConfig cfg;
  cfg.t_sync = 10;
  SyncCoordinator coord{cfg, {m0.get()}};  // no hub: timeline off
  NodeLog log;
  std::thread t = spawn_echo_node(*b0, log);
  ASSERT_TRUE(coord.handshake().ok());
  ASSERT_TRUE(coord.run_barrier(10).ok());
  coord.shutdown();
  t.join();
  EXPECT_EQ(coord.rounds(), 0u);
  ASSERT_EQ(log.ticks.size(), 1u);
  EXPECT_FALSE(log.ticks[0].round.has_value())
      << "default runs must stay byte-identical to wire v1/v2";
}

TEST(CoordinatorTimelineTest, MetricsAndRoundsContinueAcrossEvictAndRejoin) {
  // The eviction/rejoin continuity satellite: counters must neither reset
  // nor double-count across an eviction and a rejoin, and wire round ids
  // must stay strictly monotone (never reissued to the returning node).
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();
  obs::Hub hub{timeline_obs_config()};
  SyncConfig cfg;
  cfg.t_sync = 10;
  cfg.watchdog = 100ms;
  cfg.evict_after_misses = 2;
  SyncCoordinator coord{cfg, {m0.get(), m1.get()}, {"good", "flaky"}, &hub};

  std::atomic<bool> good_on{true}, good_announce{false};
  std::atomic<bool> flaky_on{true}, flaky_announce{false};
  std::thread good = spawn_flaky_echo_node(*b0, good_on, good_announce);
  std::thread flaky = spawn_flaky_echo_node(*b1, flaky_on, flaky_announce);

  ASSERT_TRUE(coord.handshake().ok());
  const u64 acks_boot = coord.acks_received();
  EXPECT_EQ(acks_boot, 2u);

  ASSERT_TRUE(coord.run_barrier(10).ok());
  const u64 rounds_before = coord.rounds();
  const u64 acks_before = coord.acks_received();
  EXPECT_EQ(rounds_before, 1u);
  EXPECT_EQ(acks_before, acks_boot + 2);

  // Eviction: two missed watchdog intervals; only the survivor acks.
  flaky_on = false;
  ASSERT_TRUE(coord.run_barrier(20).ok());
  EXPECT_FALSE(coord.alive(1));
  const u64 rounds_evicted = coord.rounds();
  const u64 acks_evicted = coord.acks_received();
  EXPECT_GT(rounds_evicted, rounds_before) << "rounds must not reset";
  EXPECT_EQ(acks_evicted, acks_before + 1) << "one ack, not double-counted";

  ASSERT_TRUE(coord.run_barrier(30).ok());
  EXPECT_EQ(coord.acks_received(), acks_evicted + 1);

  // Rejoin: the handshake ack is counted once; rounds keep climbing from
  // where they were, and the barrier histogram keeps its history.
  flaky_on = true;
  flaky_announce = true;
  ASSERT_TRUE(coord.rejoin(1, 30).ok());
  const u64 acks_rejoined = coord.acks_received();
  EXPECT_EQ(acks_rejoined, acks_evicted + 2);

  ASSERT_TRUE(coord.run_barrier(40).ok());
  EXPECT_EQ(coord.rounds(), rounds_evicted + 2);
  EXPECT_GT(coord.rounds(), rounds_evicted);
  EXPECT_EQ(coord.acks_received(), acks_rejoined + 2);
  EXPECT_EQ(coord.barriers(), 4u);
  EXPECT_EQ(coord.evictions(), 1u);
  EXPECT_EQ(coord.rejoins(), 1u);

  coord.shutdown();
  good.join();
  flaky.join();

  // Every round id that reached the wire is distinct and increasing.
  std::vector<u64> wire_rounds;
  for (const auto& s : hub.timeline().snapshot()) {
    if (s.phase == obs::SpanPhase::kBarrier) wire_rounds.push_back(s.round);
  }
  ASSERT_FALSE(wire_rounds.empty());
  for (std::size_t i = 1; i < wire_rounds.size(); ++i) {
    EXPECT_GT(wire_rounds[i], wire_rounds[i - 1])
        << "round ids reissued across rejoin";
  }
}

}  // namespace
}  // namespace vhp::fabric
