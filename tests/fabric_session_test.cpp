// End-to-end fabric sessions: N real virtual boards (RTOS fibers on their
// own host threads) against one master kernel over the N-party barrier.
// Fiber-bound, so no "tsan" label — the fiber-free barrier logic is covered
// by fabric_test.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;

/// The session_test echo device, parameterized for a fabric node: writes to
/// address 0 publish value+increment at address 4 and pulse the interrupt.
/// Every node registers the SAME addresses in its own registry.
struct EchoDevice : sim::Module {
  cosim::DriverIn<u32> in;
  cosim::DriverOut<u32> out;
  sim::BoolSignal& irq_line;
  u64 requests = 0;

  EchoDevice(sim::Kernel& kernel, cosim::DriverRegistry& registry,
             const std::string& name, u32 increment, sim::SimTime period)
      : Module(kernel, name),
        in(kernel, registry, name + ".in", 0x0),
        out(registry, name + ".out", 0x4),
        irq_line(make_bool_signal("irq")) {
    method("process",
           [this, increment] {
             ++requests;
             out.write(in.read() + increment);
             irq_line.write(true);
           })
        .sensitive(in.data_written_event())
        .dont_initialize();
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq_line.posedge_event());
        sim::wait(2 * period);
        irq_line.write(false);
      }
    });
  }
};

class FabricSessionTest : public ::testing::TestWithParam<Transport> {};

TEST_P(FabricSessionTest, BoardsUseIsolatedRegistriesAtSameAddresses) {
  constexpr std::size_t kNodes = 3;
  constexpr int kRounds = 4;

  FabricConfigBuilder builder;
  builder.transport(GetParam()).t_sync(20).watchdog(10000ms);
  for (std::size_t n = 0; n < kNodes; ++n) {
    builder.add_node("n" + std::to_string(n));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  Fabric fab{builder.build_or_throw()};

  // Node n's device echoes +1+10n — the SAME addresses (0x0/0x4) behave
  // differently per node because DATA traffic consults only registry n.
  std::vector<std::unique_ptr<EchoDevice>> devices;
  for (std::size_t n = 0; n < kNodes; ++n) {
    devices.push_back(std::make_unique<EchoDevice>(
        fab.kernel(), fab.registry(n), "echo" + std::to_string(n),
        1 + 10 * static_cast<u32>(n), fab.config().clock_period));
    fab.watch_interrupt(n, devices[n]->irq_line,
                        board::Board::kDeviceVector);
  }

  std::vector<std::unique_ptr<rtos::Semaphore>> ready;
  std::vector<std::vector<u32>> replies(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    auto& board = fab.board(n);
    ready.push_back(std::make_unique<rtos::Semaphore>(board.kernel(), 0));
    rtos::Semaphore* sem = ready.back().get();
    board.attach_device_dsr([sem](u32) { sem->post(); });
    board.spawn_app("echo_app", 8, [&board, sem, &out = replies[n]] {
      for (u32 i = 0; i < kRounds; ++i) {
        const u32 request = 100 + i * 7;
        ASSERT_TRUE(
            board.dev_write(0x0, cosim::DriverCodec<u32>::encode(request))
                .ok());
        sem->wait();
        auto resp = board.dev_read(0x4, 4);
        ASSERT_TRUE(resp.ok()) << resp.status();
        u32 value = 0;
        ASSERT_TRUE(cosim::DriverCodec<u32>::decode(resp.value(), value));
        out.push_back(value);
        board.kernel().consume(50);
      }
    });
  }

  fab.start_boards();
  auto done = [&] {
    for (const auto& r : replies) {
      if (r.size() < static_cast<std::size_t>(kRounds)) return false;
    }
    return true;
  };
  for (int chunk = 0; chunk < 600 && !done(); ++chunk) {
    ASSERT_TRUE(fab.run_cycles(50).ok());
  }
  fab.finish();

  for (std::size_t n = 0; n < kNodes; ++n) {
    ASSERT_EQ(replies[n].size(), static_cast<std::size_t>(kRounds))
        << "node " << n;
    for (u32 i = 0; i < kRounds; ++i) {
      EXPECT_EQ(replies[n][i], 100 + i * 7 + 1 + 10 * n) << "node " << n;
    }
    EXPECT_EQ(devices[n]->requests, static_cast<u64>(kRounds));
    EXPECT_EQ(fab.board(n).stats().interrupts_received,
              static_cast<u64>(kRounds));
  }
  EXPECT_GT(fab.coordinator().barriers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, FabricSessionTest,
                         ::testing::Values(Transport::kInProc,
                                           Transport::kTcp),
                         [](const auto& p) {
                           return p.param == Transport::kInProc
                                      ? std::string("InProc")
                                      : std::string("Tcp");
                         });

/// The ISSUE acceptance criterion in miniature: the router with one
/// verifier board per port delivers exactly the packet counts of the
/// classic single-board session.
TEST(FabricRouterTest, MatchesSingleSessionBaseline) {
  constexpr std::size_t kPorts = 2;
  constexpr u64 kTsync = 500;
  constexpr u64 kMaxCycles = 200000;

  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = kPorts;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 3;
  tb_cfg.gap_cycles = 2000;
  tb_cfg.payload_bytes = 16;
  tb_cfg.corrupt_probability = 0.25;
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;

  struct Counts {
    u64 emitted, forwarded, received, dropped;
  };

  // Fabric: port p verified on board p.
  Counts fabric_counts{};
  {
    FabricConfigBuilder builder;
    builder.t_sync(kTsync).watchdog(15000ms);
    for (std::size_t p = 0; p < kPorts; ++p) {
      builder.add_node("port" + std::to_string(p));
      builder.last_board().rtos.cycles_per_tick = 10;
    }
    Fabric fab{builder.build_or_throw()};
    std::vector<cosim::DriverRegistry*> registries;
    for (std::size_t p = 0; p < kPorts; ++p) {
      registries.push_back(&fab.registry(p));
    }
    router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
    for (std::size_t p = 0; p < kPorts; ++p) {
      fab.watch_interrupt(p, tb.router().irq(p),
                          board::Board::kDeviceVector);
    }
    std::vector<std::unique_ptr<router::ChecksumApp>> apps;
    for (std::size_t p = 0; p < kPorts; ++p) {
      apps.push_back(
          std::make_unique<router::ChecksumApp>(fab.board(p), app_cfg));
    }
    fab.start_boards();
    u64 cycles = 0;
    while (cycles < kMaxCycles && !tb.traffic_done()) {
      ASSERT_TRUE(fab.run_cycles(500).ok());
      cycles += 500;
    }
    fab.finish();
    ASSERT_TRUE(tb.traffic_done()) << "fabric run did not drain";
    fabric_counts = {tb.total_emitted(), tb.router().stats().forwarded,
                     tb.total_received(),
                     tb.router().stats().dropped_bad_checksum};
  }

  // Baseline: the classic two-party session, one board for all ports.
  Counts base{};
  {
    auto sb =
        cosim::SessionConfigBuilder{}.t_sync(kTsync).cycles_per_tick(10);
    cosim::CosimSession session{sb.build_or_throw()};
    router::RouterTestbench tb{session.hw().kernel(), tb_cfg,
                               &session.hw().registry()};
    session.hw().watch_interrupt(tb.router().irq(),
                                 board::Board::kDeviceVector);
    router::ChecksumApp app{session.board(), app_cfg};
    session.start_board();
    u64 cycles = 0;
    while (cycles < kMaxCycles && !tb.traffic_done()) {
      ASSERT_TRUE(session.run_cycles(500).ok());
      cycles += 500;
    }
    session.finish();
    ASSERT_TRUE(tb.traffic_done()) << "baseline run did not drain";
    base = {tb.total_emitted(), tb.router().stats().forwarded,
            tb.total_received(), tb.router().stats().dropped_bad_checksum};
  }

  EXPECT_EQ(fabric_counts.emitted, base.emitted);
  EXPECT_EQ(fabric_counts.forwarded, base.forwarded);
  EXPECT_EQ(fabric_counts.received, base.received);
  EXPECT_EQ(fabric_counts.dropped, base.dropped);
  EXPECT_GT(base.emitted, 0u);
}

TEST(FabricRecordingSessionTest, BoardsProduceNodeStampedRecordings) {
  FabricConfigBuilder builder;
  builder.t_sync(20).watchdog(10000ms).record();
  builder.add_node("left");
  builder.last_board().rtos.cycles_per_tick = 10;
  builder.add_node("right");
  builder.last_board().rtos.cycles_per_tick = 10;
  Fabric fab{builder.build_or_throw()};

  std::vector<std::unique_ptr<EchoDevice>> devices;
  std::vector<std::unique_ptr<rtos::Semaphore>> ready;
  std::vector<std::vector<u32>> replies(2);
  for (std::size_t n = 0; n < 2; ++n) {
    devices.push_back(std::make_unique<EchoDevice>(
        fab.kernel(), fab.registry(n), "echo" + std::to_string(n), 1,
        fab.config().clock_period));
    fab.watch_interrupt(n, devices[n]->irq_line,
                        board::Board::kDeviceVector);
    auto& board = fab.board(n);
    ready.push_back(std::make_unique<rtos::Semaphore>(board.kernel(), 0));
    rtos::Semaphore* sem = ready.back().get();
    board.attach_device_dsr([sem](u32) { sem->post(); });
    board.spawn_app("app", 8, [&board, sem, &out = replies[n]] {
      ASSERT_TRUE(
          board.dev_write(0x0, cosim::DriverCodec<u32>::encode(41)).ok());
      sem->wait();
      auto resp = board.dev_read(0x4, 4);
      ASSERT_TRUE(resp.ok());
      u32 value = 0;
      ASSERT_TRUE(cosim::DriverCodec<u32>::decode(resp.value(), value));
      out.push_back(value);
    });
  }

  fab.start_boards();
  for (int chunk = 0;
       chunk < 400 && (replies[0].empty() || replies[1].empty()); ++chunk) {
    ASSERT_TRUE(fab.run_cycles(50).ok());
  }
  fab.finish();
  ASSERT_EQ(replies[0], std::vector<u32>{42});
  ASSERT_EQ(replies[1], std::vector<u32>{42});

  const std::string prefix =
      ::testing::TempDir() + "/fabric_session_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ASSERT_TRUE(fab.write_recordings(prefix).ok());

  // Master recording: one global sequence carrying both nodes' links.
  auto hw = obs::read_recording(prefix + ".hw.vhprec");
  ASSERT_TRUE(hw.ok()) << hw.status();
  u64 node0 = 0, node1 = 0;
  for (const auto& f : hw.value().frames) (f.node == 0 ? node0 : node1) += 1;
  EXPECT_GT(node0, 0u);
  EXPECT_GT(node1, 0u);
  EXPECT_EQ(hw.value().meta.tags.at("nodes"), "2");

  // Board-side recordings: one per node, node-tagged, frames node-0-local
  // (each board sees only its own two-party link).
  for (const std::string name : {"left", "right"}) {
    auto rec = obs::read_recording(prefix + "." + name + ".board.vhprec");
    ASSERT_TRUE(rec.ok()) << rec.status();
    EXPECT_EQ(rec.value().meta.side, "board");
    EXPECT_EQ(rec.value().meta.tags.at("node_name"), name);
    EXPECT_GT(rec.value().frames.size(), 0u);
  }
}

}  // namespace
}  // namespace vhp::fabric
