// VCD trace writer and logging subsystem tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "vhp/common/log.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"
#include "vhp/sim/trace.hpp"

namespace vhp::sim {
namespace {

struct Harness : Module {
  explicit Harness(Kernel& k) : Module(k, "tb") {}
  using Module::make_bool_signal;
  using Module::make_signal;
  using Module::thread;
};

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class VcdTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "vhp_vcd_test.vcd";
};

TEST_F(VcdTest, HeaderDeclaresTracedSignals) {
  Kernel k;
  Harness tb{k};
  auto& flag = tb.make_bool_signal("flag");
  auto& value = tb.make_signal<u32>("value", 0);
  {
    VcdWriter vcd{k, path_};
    vcd.trace(flag, "flag");
    vcd.trace(value, "value");
    k.run_until(10);
  }
  const std::string vcd = read_file(path_);
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 32 \" value $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST_F(VcdTest, RecordsChangesWithTimestamps) {
  Kernel k;
  Harness tb{k};
  auto& flag = tb.make_bool_signal("flag");
  auto& value = tb.make_signal<u32>("value", 0);
  tb.thread("driver", [&] {
    wait(5);
    flag.write(true);
    value.write(5);  // 0b101
    wait(5);
    flag.write(false);
    wait(1);
  });
  {
    VcdWriter vcd{k, path_};
    vcd.trace(flag, "flag");
    vcd.trace(value, "value");
    k.run_until(20);
  }
  const std::string vcd = read_file(path_);
  EXPECT_NE(vcd.find("#5\n"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);   // flag rises at 5
  EXPECT_NE(vcd.find("b101 \""), std::string::npos);
  EXPECT_NE(vcd.find("#10\n0!"), std::string::npos);  // falls at 10
}

TEST_F(VcdTest, ClockProducesAlternatingPattern) {
  Kernel k;
  Clock clk{k, "clk", 2};
  {
    VcdWriter vcd{k, path_};
    vcd.trace(clk, "clk");
    k.run_until(6);
  }
  const std::string vcd = read_file(path_);
  // Rising edges at 0,2,4; falling at 1,3,5.
  EXPECT_NE(vcd.find("#0\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#1\n0!"), std::string::npos);
  EXPECT_NE(vcd.find("#2\n1!"), std::string::npos);
}

TEST_F(VcdTest, UntracedSignalsDoNotAppear) {
  Kernel k;
  Harness tb{k};
  auto& traced = tb.make_bool_signal("traced");
  auto& hidden = tb.make_bool_signal("hidden");
  tb.thread("driver", [&] {
    traced.write(true);
    hidden.write(true);
    wait(1);
  });
  {
    VcdWriter vcd{k, path_};
    vcd.trace(traced, "traced");
    k.run_until(5);
  }
  const std::string vcd = read_file(path_);
  EXPECT_NE(vcd.find("traced"), std::string::npos);
  EXPECT_EQ(vcd.find("hidden"), std::string::npos);
}

TEST(LogThreshold, RuntimeControl) {
  using log_detail::set_threshold;
  using log_detail::threshold;
  const LogLevel before = threshold();
  set_threshold(LogLevel::kError);
  Logger log{"test"};
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  set_threshold(LogLevel::kTrace);
  EXPECT_TRUE(log.enabled(LogLevel::kTrace));
  set_threshold(before);
}

}  // namespace
}  // namespace vhp::sim
