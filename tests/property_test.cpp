// Property-based sweeps over the stack's key invariants:
//   * wire codec: random messages round-trip; random mutations never crash
//     the decoder and are (overwhelmingly) rejected or decode to a
//     different message, never to a silently-equal one with other content;
//   * packets: random packets round-trip; any single-bit payload flip is
//     caught by the checksum;
//   * scheduler: random thread sets complete in priority order;
//   * timing contract: for arbitrary T_sync and cycle counts, after the
//     final ack the board tick equals cycles / cycles_per_tick exactly;
//   * determinism: identical seeds give identical standalone simulations.
#include <gtest/gtest.h>

#include "vhp/common/rng.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/net/message.hpp"
#include "vhp/router/testbench.hpp"
#include "vhp/rtos/kernel.hpp"

namespace vhp {
namespace {

// ---------- codec fuzz ----------

net::Message random_message(Rng& rng) {
  Bytes payload(rng.below(64));
  for (auto& b : payload) b = static_cast<u8>(rng.below(256));
  switch (rng.below(7)) {
    case 0: return net::DataWrite{static_cast<u32>(rng.next()), payload};
    case 1:
      return net::DataReadReq{static_cast<u32>(rng.next()),
                              static_cast<u32>(rng.below(4096))};
    case 2: return net::DataReadResp{static_cast<u32>(rng.next()), payload};
    case 3: return net::IntRaise{static_cast<u32>(rng.below(256))};
    case 4: return net::ClockTick{rng.next(), static_cast<u32>(rng.next())};
    case 5: return net::TimeAck{rng.next()};
    default: return net::Shutdown{};
  }
}

class CodecFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(CodecFuzz, RandomMessagesRoundTrip) {
  Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const net::Message msg = random_message(rng);
    auto decoded = net::decode(net::encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded.value(), msg);
  }
}

TEST_P(CodecFuzz, MutatedFramesNeverCrashDecoder) {
  Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    Bytes frame = net::encode(random_message(rng));
    switch (rng.below(3)) {
      case 0:  // truncate
        frame.resize(rng.below(frame.size() + 1));
        break;
      case 1:  // bit flip
        if (!frame.empty()) {
          frame[rng.below(frame.size())] ^=
              static_cast<u8>(1u << rng.below(8));
        }
        break;
      default:  // append garbage
        frame.push_back(static_cast<u8>(rng.below(256)));
        break;
    }
    // Must return cleanly — ok or error, never crash/UB.
    auto decoded = net::decode(frame);
    (void)decoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(11, 22, 33));

// ---------- packet checksum property ----------

class PacketFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PacketFuzz, AnySingleBitFlipIsDetected) {
  Rng rng{GetParam()};
  for (int i = 0; i < 50; ++i) {
    router::Packet p;
    p.src = static_cast<u8>(rng.below(256));
    p.dst = static_cast<u8>(rng.below(256));
    p.id = static_cast<u32>(rng.next());
    p.payload.resize(rng.range(1, 64));
    for (auto& b : p.payload) b = static_cast<u8>(rng.below(256));
    p.finalize_checksum();
    Bytes raw = p.pack();
    ASSERT_TRUE(router::packed_checksum_ok(raw));
    // Flip one random bit anywhere in the packed frame.
    const std::size_t byte = rng.below(raw.size());
    raw[byte] ^= static_cast<u8>(1u << rng.below(8));
    // One's-complement checksums catch all single-bit errors...
    // except flips that only toggle between +0/-0 words; a single bit flip
    // never does that, so detection must be certain. A flipped length
    // field instead breaks parsing. Either way: not OK.
    EXPECT_FALSE(router::packed_checksum_ok(raw)) << "byte " << byte;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz, ::testing::Values(5, 6, 7, 8));

// ---------- scheduler ordering property ----------

class SchedulerProperty : public ::testing::TestWithParam<u64> {};

TEST_P(SchedulerProperty, DistinctPrioritiesCompleteInOrder) {
  Rng rng{GetParam()};
  rtos::KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  rtos::Kernel k{cfg};
  // Random subset of distinct priorities, shuffled spawn order.
  std::vector<int> prios;
  for (int p = 1; p < 30; ++p) {
    if (rng.chance(0.4)) prios.push_back(p);
  }
  if (prios.empty()) prios.push_back(7);
  for (std::size_t i = prios.size(); i > 1; --i) {
    std::swap(prios[i - 1], prios[rng.below(i)]);
  }
  std::vector<int> completion;
  for (int p : prios) {
    k.spawn("t" + std::to_string(p), p, [&completion, p] {
      completion.push_back(p);
    });
  }
  k.run(true);
  std::vector<int> expected = prios;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(completion, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(101, 102, 103, 104, 105));

// ---------- timing contract over arbitrary T_sync ----------

class TimingContract : public ::testing::TestWithParam<u64> {};

TEST_P(TimingContract, BoardTicksEqualCyclesOverTickRatio) {
  const u64 t_sync = GetParam();
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kInProc;
  cfg.cosim.t_sync = t_sync;
  cfg.board.rtos.cycles_per_tick = 10;
  cosim::CosimSession session{cfg};
  session.start_board();
  // Run a multiple of t_sync so the final sync point aligns.
  const u64 cycles = ((2500 + t_sync - 1) / t_sync) * t_sync;
  ASSERT_TRUE(session.run_cycles(cycles).ok());
  session.finish();
  EXPECT_EQ(session.board().kernel().tick_count().value(), cycles / 10)
      << "t_sync=" << t_sync;
  EXPECT_EQ(session.hw().stats().syncs, cycles / t_sync);
}

INSTANTIATE_TEST_SUITE_P(TsyncSweep, TimingContract,
                         ::testing::Values(1, 7, 10, 50, 123, 500, 2500));

// ---------- standalone simulation determinism ----------

class SimDeterminism : public ::testing::TestWithParam<u64> {};

TEST_P(SimDeterminism, SameSeedSameOutcome) {
  auto run_once = [&](u64 seed) {
    sim::Kernel k;
    router::TestbenchConfig cfg;
    cfg.router.remote_checksum = false;
    cfg.router.buffer_depth = 2;
    cfg.packets_per_port = 20;
    cfg.gap_cycles = 7;  // deliberately overloaded: drops happen
    cfg.corrupt_probability = 0.3;
    cfg.seed = seed;
    router::RouterTestbench tb{k, cfg};
    k.run(100000);
    const auto& s = tb.router().stats();
    return std::tuple{s.forwarded, s.dropped_input_full,
                      s.dropped_bad_checksum, tb.total_received()};
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimDeterminism,
                         ::testing::Values(1, 99, 555));

}  // namespace
}  // namespace vhp
