// Fiber-free svc-layer tests: the shm ring transport (wraparound,
// backpressure, doorbell ordering), per-quantum batching (buffer/flush
// semantics, counters), the TCP send_many/backlog satellites, the inproc
// doorbells, and the svc::EventLoop reactor. Everything here runs plain
// threads only, so the suite carries the composite "svc-tsan" label:
// selected by -L svc (the scripts/check.sh gate) and -L tsan (the TSan
// preset), where the Lamport ring's memory ordering actually gets checked.
#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "vhp/net/batching.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/shm_ring.hpp"
#include "vhp/net/tcp.hpp"
#include "vhp/svc/event_loop.hpp"

namespace vhp::svc {
namespace {

using namespace std::chrono_literals;

bool fd_readable(int fd, int timeout_ms = 0) {
  pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) == 1 && (pfd.revents & POLLIN) != 0;
}

Bytes frame_of(std::size_t n, u8 seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<u8>(seed + i);
  return b;
}

// ---------- ShmRingChannel ----------

TEST(ShmRing, RoundTripBothDirections) {
  auto [a, b] = net::make_shm_channel_pair();
  ASSERT_TRUE(a->send(Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(b->send(Bytes{}).ok());  // empty frames are legal
  auto got = b->recv(1000ms);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), (Bytes{1, 2, 3}));
  got = a->recv(1000ms);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), Bytes{});
}

TEST(ShmRing, WraparoundPreservesFrameBytes) {
  // 4 KiB ring (the minimum), frames of varying prime-ish sizes: the
  // cursor crosses the wrap point hundreds of times.
  auto [a, b] = net::make_shm_channel_pair(1);
  const std::size_t sizes[] = {1, 37, 128, 517, 1021};
  std::thread producer([&, a = a.get()] {
    for (int iteration = 0; iteration < 400; ++iteration) {
      const std::size_t n = sizes[iteration % 5];
      ASSERT_TRUE(a->send(frame_of(n, static_cast<u8>(iteration))).ok());
    }
  });
  for (int iteration = 0; iteration < 400; ++iteration) {
    auto got = b->recv(2000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(),
              frame_of(sizes[iteration % 5], static_cast<u8>(iteration)));
  }
  producer.join();
}

TEST(ShmRing, BackpressureBlocksProducerUntilConsumerDrains) {
  auto [a, b] = net::make_shm_channel_pair(1);  // 4 KiB
  // ~16 KiB of traffic through a 4 KiB ring: the producer MUST block on a
  // full ring several times and resume off the space doorbell.
  std::atomic<int> sent{0};
  std::thread producer([&, a = a.get()] {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(a->send(frame_of(1000, static_cast<u8>(i))).ok());
      sent.fetch_add(1);
    }
  });
  // Let the producer hit the wall before we start draining.
  std::this_thread::sleep_for(50ms);
  EXPECT_LT(sent.load(), 16);
  for (int i = 0; i < 16; ++i) {
    auto got = b->recv(2000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), frame_of(1000, static_cast<u8>(i)));
  }
  producer.join();
  EXPECT_EQ(sent.load(), 16);
}

TEST(ShmRing, FrameLargerThanRingIsRejected) {
  auto [a, b] = net::make_shm_channel_pair(1);
  Status s = a->send(Bytes(5000, 0xAB));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ShmRing, BlockedRecvWokenByLateSend) {
  auto [a, b] = net::make_shm_channel_pair();
  std::thread late([&, a = a.get()] {
    std::this_thread::sleep_for(30ms);
    ASSERT_TRUE(a->send(Bytes{9}).ok());
  });
  auto got = b->recv(2000ms);  // must sleep on the doorbell, then wake
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), Bytes{9});
  late.join();
}

TEST(ShmRing, RecvTimesOutOnSilence) {
  auto [a, b] = net::make_shm_channel_pair();
  auto got = b->recv(20ms);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ShmRing, CloseWakesBlockedRecv) {
  auto [a, b] = net::make_shm_channel_pair();
  std::thread closer([&, a = a.get()] {
    std::this_thread::sleep_for(30ms);
    a->close();
  });
  auto got = b->recv(2000ms);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAborted);
  closer.join();
}

TEST(ShmRing, ReadableFdIsLevelAccurate) {
  auto [a, b] = net::make_shm_channel_pair();
  const int fd = b->readable_fd();
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(fd_readable(fd));
  ASSERT_TRUE(a->send(Bytes{1}).ok());
  EXPECT_TRUE(fd_readable(fd, 1000));
  // Frames published BEFORE the first readable_fd() call must also show.
  auto [c, d] = net::make_shm_channel_pair();
  ASSERT_TRUE(c->send(Bytes{2}).ok());
  EXPECT_TRUE(fd_readable(d->readable_fd(), 1000));
  // Draining the queue eventually quiesces the doorbell.
  auto got = b->try_recv();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value().has_value());
  got = b->try_recv();  // empty pop drains the bell
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().has_value());
  EXPECT_FALSE(fd_readable(fd));
}

TEST(ShmRing, SendManyArrivesInOrder) {
  auto [a, b] = net::make_shm_channel_pair();
  std::vector<Bytes> frames;
  for (int i = 0; i < 32; ++i) frames.push_back(frame_of(64, static_cast<u8>(i)));
  ASSERT_TRUE(a->send_many(frames).ok());
  for (int i = 0; i < 32; ++i) {
    auto got = b->recv(1000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), frames[static_cast<std::size_t>(i)]);
  }
}

TEST(ShmRing, TsanProducerConsumerStress) {
  // The TSan money test: 20k frames of mixed sizes through a 4 KiB ring,
  // producer and consumer free-running on separate threads. Any missing
  // barrier in the Lamport protocol shows up here.
  auto [a, b] = net::make_shm_channel_pair(1);
  constexpr int kFrames = 20000;
  std::thread producer([&, a = a.get()] {
    for (int i = 0; i < kFrames; ++i) {
      Bytes f(static_cast<std::size_t>(1 + (i % 200)));
      for (std::size_t j = 0; j < f.size(); ++j) {
        f[j] = static_cast<u8>(i + static_cast<int>(j));
      }
      ASSERT_TRUE(a->send(f).ok());
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    auto got = b->recv(5000ms);
    ASSERT_TRUE(got.ok()) << "frame " << i << ": " << got.status();
    ASSERT_EQ(got.value().size(), static_cast<std::size_t>(1 + (i % 200)));
    EXPECT_EQ(got.value()[0], static_cast<u8>(i));
  }
  producer.join();
}

// ---------- BatchingChannel ----------

TEST(Batching, BuffersUntilFlush) {
  auto [tx_inner, rx] = net::make_inproc_channel_pair();
  net::BatchingChannel tx{std::move(tx_inner)};
  ASSERT_TRUE(tx.send(Bytes{1}).ok());
  ASSERT_TRUE(tx.send(Bytes{2}).ok());
  auto peeked = rx->try_recv();
  ASSERT_TRUE(peeked.ok());
  EXPECT_FALSE(peeked.value().has_value()) << "frame crossed before flush";
  EXPECT_EQ(tx.pending_frames(), 2u);
  ASSERT_TRUE(tx.flush().ok());
  EXPECT_EQ(tx.pending_frames(), 0u);
  for (u8 expected : {1, 2}) {
    auto got = rx->recv(1000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), Bytes{expected});
  }
}

TEST(Batching, AutoFlushAtFrameCap) {
  net::BatchingConfig config;
  config.max_pending_frames = 3;
  auto [tx_inner, rx] = net::make_inproc_channel_pair();
  net::BatchingChannel tx{std::move(tx_inner), config};
  ASSERT_TRUE(tx.send(Bytes{1}).ok());
  ASSERT_TRUE(tx.send(Bytes{2}).ok());
  ASSERT_TRUE(tx.send(Bytes{3}).ok());  // cap hit: flushes without help
  auto got = rx->recv(1000ms);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), Bytes{1});
  EXPECT_EQ(tx.flushes(), 1u);
  EXPECT_EQ(tx.frames_batched(), 3u);
}

TEST(Batching, AutoFlushAtByteCap) {
  net::BatchingConfig config;
  config.max_pending_bytes = 100;
  auto [tx_inner, rx] = net::make_inproc_channel_pair();
  net::BatchingChannel tx{std::move(tx_inner), config};
  ASSERT_TRUE(tx.send(Bytes(80, 1)).ok());
  EXPECT_EQ(tx.pending_frames(), 1u);
  ASSERT_TRUE(tx.send(Bytes(80, 2)).ok());  // 160 > 100: flushed
  EXPECT_EQ(tx.pending_frames(), 0u);
}

TEST(Batching, RecvFlushesOwnPendingFirst) {
  // The anti-deadlock rule: blocking on recv() while holding unflushed
  // frames would wedge a peer that is waiting for exactly those frames.
  auto [a_inner, b_inner] = net::make_inproc_channel_pair();
  net::BatchingChannel a{std::move(a_inner)};
  std::thread echo([inner = std::move(b_inner)]() mutable {
    auto got = inner->recv(2000ms);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(inner->send(got.value()).ok());
  });
  ASSERT_TRUE(a.send(Bytes{42}).ok());  // buffered, NOT yet sent
  auto reply = a.recv(2000ms);          // must flush before blocking
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply.value(), Bytes{42});
  echo.join();
}

TEST(Batching, CloseFlushesPending) {
  auto [tx_inner, rx] = net::make_inproc_channel_pair();
  net::BatchingChannel tx{std::move(tx_inner)};
  ASSERT_TRUE(tx.send(Bytes{7}).ok());
  tx.close();
  auto got = rx->recv(1000ms);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value(), Bytes{7});
}

TEST(Batching, CountersMeasureFramesPerFlush) {
  auto [tx_inner, rx] = net::make_inproc_channel_pair();
  net::BatchingChannel tx{std::move(tx_inner)};
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(tx.send(Bytes{1}).ok());
  ASSERT_TRUE(tx.flush().ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(tx.send(Bytes{2}).ok());
  ASSERT_TRUE(tx.flush().ok());
  ASSERT_TRUE(tx.flush().ok());  // empty flush: not counted
  EXPECT_EQ(tx.frames_batched(), 12u);
  EXPECT_EQ(tx.flushes(), 2u);
}

TEST(Batching, BatchLinkLeavesClockDirect) {
  auto pair = net::make_inproc_link_pair();
  auto batched = net::batch_link(std::move(pair.hw), true, {}, nullptr, "hw");
  ASSERT_TRUE(batched.clock->send(Bytes{1}).ok());
  auto got = pair.board.clock->try_recv();  // no flush needed: direct
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value().has_value());
  ASSERT_TRUE(batched.data->send(Bytes{2}).ok());
  got = pair.board.data->try_recv();  // batched: held until flush
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().has_value());
  ASSERT_TRUE(batched.data->flush().ok());
  got = pair.board.data->try_recv();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().has_value());
}

// ---------- TCP satellites ----------

TEST(TcpSendMany, VectoredWriteDeliversInOrder) {
  net::TcpListener listener;
  auto client = net::connect_tcp_channel(listener.port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto server = listener.accept(2000ms);
  ASSERT_TRUE(server.ok()) << server.status();
  // 96 frames x 8 KiB ≈ 768 KiB: well past the socket buffer, so the
  // sendmsg path exercises partial-write resumption mid-batch.
  std::vector<Bytes> frames;
  for (int i = 0; i < 96; ++i) {
    frames.push_back(frame_of(8192, static_cast<u8>(i)));
  }
  std::thread sender([&] {
    ASSERT_TRUE(client.value()->send_many(frames).ok());
  });
  for (int i = 0; i < 96; ++i) {
    auto got = server.value()->recv(5000ms);
    ASSERT_TRUE(got.ok()) << "frame " << i << ": " << got.status();
    EXPECT_EQ(got.value(), frames[static_cast<std::size_t>(i)]);
  }
  sender.join();
}

TEST(TcpListen, AcceptsConnectBurst) {
  // The ::listen(fd, 1) satellite: a session-density connect burst used to
  // overflow the backlog and get connections refused/reset.
  net::TcpListener listener;
  constexpr int kClients = 64;
  std::vector<std::thread> connectors;
  std::vector<net::ChannelPtr> clients(kClients);
  std::atomic<int> failed{0};
  connectors.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    connectors.emplace_back([&, i] {
      auto c = net::connect_tcp_channel(listener.port());
      if (c.ok()) {
        clients[static_cast<std::size_t>(i)] = std::move(c).value();
      } else {
        failed.fetch_add(1);
      }
    });
  }
  std::vector<net::ChannelPtr> accepted;
  for (int i = 0; i < kClients; ++i) {
    auto s = listener.accept(5000ms);
    ASSERT_TRUE(s.ok()) << "accept " << i << ": " << s.status();
    accepted.push_back(std::move(s).value());
  }
  for (auto& t : connectors) t.join();
  EXPECT_EQ(failed.load(), 0);
}

// ---------- inproc doorbells ----------

TEST(InprocDoorbell, TracksQueueLevel) {
  auto [a, b] = net::make_inproc_channel_pair();
  const int fd = b->readable_fd();
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(fd_readable(fd));
  ASSERT_TRUE(a->send(Bytes{1}).ok());
  ASSERT_TRUE(a->send(Bytes{2}).ok());
  EXPECT_TRUE(fd_readable(fd, 1000));
  (void)b->try_recv();
  (void)b->try_recv();
  (void)b->try_recv();  // empty pop drains the bell
  EXPECT_FALSE(fd_readable(fd));
  // Close keeps the bell readable so a poller notices the teardown.
  a->close();
  EXPECT_TRUE(fd_readable(fd, 1000));
}

// ---------- EventLoop ----------

TEST(EventLoop, RunsPostedTasksInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.post([&] { order.push_back(1); });
  loop.post([&] { order.push_back(2); });
  loop.post([&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.tasks_run(), 3u);
}

TEST(EventLoop, TasksPostedByTasksRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth == 5) {
      loop.stop();
      return;
    }
    loop.post(recurse);
  };
  loop.post(recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
}

TEST(EventLoop, WatchFiresWhileFdReadable) {
  EventLoop loop;
  auto [a, b] = net::make_inproc_channel_pair();
  const int fd = b->readable_fd();
  ASSERT_GE(fd, 0);
  int fires = 0;
  ASSERT_TRUE(loop.watch(fd, [&] {
    ++fires;
    // Drain; the level-triggered watch would otherwise fire forever.
    auto got = b->try_recv();
    ASSERT_TRUE(got.ok());
    while (got.ok() && got.value().has_value()) got = b->try_recv();
    loop.unwatch(fd);
    loop.stop();
  }).ok());
  ASSERT_TRUE(a->send(Bytes{1}).ok());
  loop.run();
  EXPECT_EQ(fires, 1);
  EXPECT_GE(loop.fd_events(), 1u);
}

TEST(EventLoop, TimerFiresOnceAfterDelay) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::duration waited{};
  loop.schedule(20ms, [&] {
    waited = std::chrono::steady_clock::now() - start;
    loop.stop();
  });
  loop.run();
  EXPECT_GE(waited, 15ms);
  EXPECT_EQ(loop.timers_fired(), 1u);
}

TEST(EventLoop, CancelPreventsTimer) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.schedule(10ms, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel: already gone
  loop.schedule(40ms, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30ms, [&] {
    order.push_back(2);
    loop.stop();
  });
  loop.schedule(5ms, [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, ReschedulingFromTimerCallback) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks == 3) {
      loop.stop();
      return;
    }
    loop.schedule(1ms, tick);
  };
  loop.schedule(1ms, tick);
  loop.run();
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoop, StopFromAnotherThread) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(30ms);
    loop.stop();
  });
  loop.run();  // must wake with no fd traffic at all
  stopper.join();
  SUCCEED();
}

}  // namespace
}  // namespace vhp::svc
