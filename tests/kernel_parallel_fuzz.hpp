// Differential fuzz harness for the deterministic parallel kernel.
//
// Builds seeded random netlists of FuzzModules — mixed timed / delta /
// immediate notifications, cross-island signal fanout, dynamic waits and
// mid-simulation process/signal creation (the cosim SyncAgent pattern) —
// and runs the SAME netlist under the serial kernel and under
// set_parallel(N) for several N. The parallel contract (islands communicate
// only through delta-delayed signals) promises bit-identical observable
// state, so the oracle is exact equality of:
//   * every signal's final value (construction order, including signals
//     created mid-simulation),
//   * the kernel's delta_count() and virtual time,
//   * the canonicalized value-change trace (time, delta index, signal name,
//     value) — canonicalized because WITHIN one delta cycle the update-hook
//     call order across islands is the commit order, not the serial
//     interleaving; the set of changes per delta is identical, so a stable
//     sort by (time, delta, name) makes the traces comparable byte for byte.
//
// Determinism rules the generator obeys (the contract's fine print):
//   * processes keep PRIVATE state — cross-process communication goes
//     through signals (single driver each) or own-module events;
//   * each event is notified by exactly ONE process (pending-state
//     transitions and immediate re-triggering are order-sensitive when two
//     writers race on one event, even in the serial kernel);
//   * immediate notify() targets a listener that is sensitive to nothing
//     else, so its execution count per evaluation phase is independent of
//     intra-phase ordering.
// Runtime decisions come from per-process LCG streams (advanced only by
// that process's executions), never from a shared generator, so the
// decision sequence is identical in every run of the same seed.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "vhp/common/rng.hpp"
#include "vhp/common/types.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::sim {

struct FuzzConfig {
  u64 seed = 1;
  std::size_t n_modules = 6;
  /// Include a thread process per module (fiber-based dynamic waits).
  /// Off in the TSan suite: ThreadSanitizer cannot follow swapcontext.
  bool threads = true;
  /// Allow tickers to create processes + signals mid-simulation.
  bool spawners = true;
  SimTime run_time = 2500;
};

struct FuzzTraceEntry {
  SimTime time;
  u64 delta;
  std::string name;
  u64 value;

  [[nodiscard]] auto key() const { return std::tie(time, delta, name); }
  bool operator==(const FuzzTraceEntry& other) const {
    return time == other.time && delta == other.delta &&
           name == other.name && value == other.value;
  }
};

struct FuzzResult {
  std::vector<u64> finals;  // all signals, creation order
  u64 delta_count = 0;
  SimTime end_time = 0;
  std::size_t islands = 0;
  std::size_t spawned = 0;
  std::vector<FuzzTraceEntry> trace;  // canonicalized
};

class FuzzModule : public Module {
 public:
  FuzzModule(Kernel& kernel, std::size_t index, const FuzzConfig& cfg,
             Rng& build_rng, std::vector<FuzzTraceEntry>* trace)
      : Module(kernel, "fuzz" + std::to_string(index)),
        cfg_(cfg),
        trace_(trace),
        tick_(kernel, qualify("tick")),
        aux_(kernel, qualify("aux")),
        chain_(kernel, qualify("chain")),
        r_aux_(kernel, qualify("r_aux")) {
    for (std::size_t s = 0; s < kLcgSlots; ++s) lcg_[s] = build_rng.next();
    for (std::size_t s = 0; s < 4; ++s) {
      signals_.push_back(&traced_signal("out" + std::to_string(s)));
    }
    // The ticker drives everything: re-arms its own timed event, mixes
    // foreign signal values into private state, and (per its LCG stream)
    // exercises every notification kind on the events it owns.
    method("ticker", [this] { ticker(); });
    // The immediate-notification listener: sensitive ONLY to chain_.
    method("listener", [this] { listener(); }).sensitive(chain_)
        .dont_initialize();
  }

  /// Wires the cross-island fanout: the reactor is statically sensitive to
  /// 2-3 foreign output signals (the partition's cut edges) plus the
  /// module-own aux_ event, and the optional thread does dynamic waits.
  void connect(const std::vector<FuzzModule*>& all, Rng& build_rng) {
    Process& reactor =
        method("reactor", [this] { react(); }).dont_initialize();
    reactor.sensitive(aux_);
    const std::size_t n_foreign = 2 + build_rng.below(2);
    for (std::size_t i = 0; i < n_foreign; ++i) {
      FuzzModule& m = *all[build_rng.below(all.size())];
      Signal<u64>& s = *m.signals_[build_rng.below(m.signals_.size())];
      reactor.sensitive(s.value_changed_event());
      foreign_.push_back(&s);
    }
    if (cfg_.threads) {
      thread("worker", [this] { worker(); });
    }
  }

  [[nodiscard]] const std::vector<Signal<u64>*>& signals() const {
    return signals_;
  }
  [[nodiscard]] std::size_t spawned() const { return spawned_; }

 private:
  static constexpr std::size_t kLcgSlots = 5;
  static constexpr std::size_t kMaxChildren = 3;

  /// Per-process deterministic decision stream (slot = process).
  u64 lcg(std::size_t slot) {
    lcg_[slot] = lcg_[slot] * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg_[slot] >> 33;
  }

  static u64 mix(u64 acc, u64 v) {
    acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
    return acc;
  }

  Signal<u64>& traced_signal(const std::string& name) {
    Signal<u64>& sig = make_signal<u64>(name);
    // Hooks run in the single-threaded update phase, so the shared trace
    // vector needs no locking; delta_count() is the index of the delta
    // cycle being committed (incremented after the phases).
    sig.add_change_hook([this, &sig](SimTime t) {
      trace_->push_back({t, kernel_.delta_count(), sig.name(), sig.read()});
    });
    return sig;
  }

  u64 read_foreign(std::size_t slot) {
    u64 acc = 0;
    for (const Signal<u64>* s : foreign_) acc = mix(acc, s->read());
    return mix(acc, lcg(slot));
  }

  void ticker() {
    tick_.notify_at(1 + lcg(0) % 9);
    acc_[0] = mix(acc_[0], read_foreign(0));
    switch (lcg(0) % 8) {
      case 0: aux_.notify_delta(); break;
      case 1: aux_.notify_at(1 + lcg(0) % 7); break;
      case 2: aux_.cancel(); break;
      case 3: chain_.notify(); break;  // immediate, in-phase
      case 4:
        if (cfg_.spawners && spawned_ < kMaxChildren) spawn_child();
        break;
      default: break;
    }
    if (lcg(0) % 2 == 0) signals_[0]->write(acc_[0]);
  }

  void react() {
    acc_[1] = mix(acc_[1], read_foreign(1));
    if (lcg(1) % 3 != 0) signals_[1]->write(acc_[1]);
    if (lcg(1) % 4 == 0) r_aux_.notify_delta();
    if (lcg(1) % 5 == 0) r_aux_.notify_at(2 + lcg(1) % 5);
  }

  void listener() {
    acc_[2] = mix(acc_[2], lcg(2));
    signals_[2]->write(acc_[2]);
  }

  void worker() {
    for (;;) {
      switch (lcg(3) % 3) {
        case 0: wait(1 + lcg(3) % 11); break;
        case 1:
          (void)wait_with_timeout(r_aux_, 1 + lcg(3) % 6);
          break;
        default:
          (void)wait_any({&r_aux_, &tick_});
          break;
      }
      acc_[3] = mix(acc_[3], read_foreign(3));
      if (lcg(3) % 2 == 0) signals_[3]->write(acc_[3]);
    }
  }

  /// Mid-simulation structural growth (the cosim SyncAgent pattern): a new
  /// method AND a new signal created from inside an evaluation phase. Under
  /// the parallel kernel both are staged into the executing island and
  /// committed with deterministic entity ids after the barrier.
  void spawn_child() {
    const std::size_t id = spawned_++;
    Signal<u64>& out = traced_signal("child" + std::to_string(id) + ".out");
    signals_.push_back(&out);
    const std::size_t slot = 4;
    method("child" + std::to_string(id),
           [this, &out, slot] {
             acc_[slot] = mix(acc_[slot], read_foreign(slot));
             out.write(acc_[slot]);
           })
        .sensitive(aux_);
  }

  const FuzzConfig& cfg_;
  std::vector<FuzzTraceEntry>* trace_;
  Event tick_;
  Event aux_;    // notified by the ticker only
  Event chain_;  // immediate-notify target, listener-only sensitivity
  Event r_aux_;  // notified by the reactor only; thread waits on it
  std::vector<Signal<u64>*> signals_;
  std::vector<Signal<u64>*> foreign_;
  u64 lcg_[kLcgSlots] = {};
  u64 acc_[kLcgSlots] = {};
  std::size_t spawned_ = 0;
};

/// Builds the seeded netlist and runs it to cfg.run_time under `lanes`
/// evaluation lanes (0 = serial legacy path).
inline FuzzResult run_fuzz_net(const FuzzConfig& cfg, unsigned lanes) {
  Kernel kernel;
  // Hang guard: a supercritical change cascade would livelock identically in
  // every mode; better a loud deterministic throw than a stuck test.
  kernel.set_delta_limit(1u << 20);
  if (lanes > 0) kernel.set_parallel(lanes);
  std::vector<FuzzTraceEntry> trace;
  Rng build_rng{cfg.seed};
  std::vector<std::unique_ptr<FuzzModule>> modules;
  std::vector<FuzzModule*> raw;
  for (std::size_t i = 0; i < cfg.n_modules; ++i) {
    modules.push_back(
        std::make_unique<FuzzModule>(kernel, i, cfg, build_rng, &trace));
    raw.push_back(modules.back().get());
  }
  for (FuzzModule* m : raw) m->connect(raw, build_rng);

  // Run in two legs so the harness also covers re-entry (partition reuse
  // across run_until calls).
  kernel.run_until(cfg.run_time / 2);
  kernel.run_until(cfg.run_time);

  FuzzResult result;
  for (FuzzModule* m : raw) {
    for (const Signal<u64>* s : m->signals()) {
      result.finals.push_back(s->read());
    }
    result.spawned += m->spawned();
  }
  result.delta_count = kernel.delta_count();
  result.end_time = kernel.now();
  result.islands = kernel.island_count();
  std::stable_sort(trace.begin(), trace.end(),
                   [](const FuzzTraceEntry& a, const FuzzTraceEntry& b) {
                     return a.key() < b.key();
                   });
  result.trace = std::move(trace);
  return result;
}

}  // namespace vhp::sim
