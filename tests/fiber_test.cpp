// Unit tests for the fiber primitive both subsystems' threads stand on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "vhp/common/fiber.hpp"

namespace vhp {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f{[&] { x = 42; }};
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber f{[&] {
    trace.push_back(1);
    Fiber::yield_to_resumer();
    trace.push_back(3);
    Fiber::yield_to_resumer();
    trace.push_back(5);
  }};
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* observed = nullptr;
  Fiber f{[&] { observed = Fiber::current(); }};
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, NestedFibers) {
  std::vector<int> trace;
  Fiber inner{[&] {
    trace.push_back(2);
    Fiber::yield_to_resumer();
    trace.push_back(4);
  }};
  Fiber outer{[&] {
    trace.push_back(1);
    inner.resume();
    trace.push_back(3);
    inner.resume();
    trace.push_back(5);
  }};
  outer.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f{[] { throw std::runtime_error("boom"); }};
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, DeepCallStackSurvives) {
  // Recursion depth that needs a real stack, not just a few frames.
  std::function<int(int)> rec = [&](int n) -> int {
    volatile char pad[128] = {};  // force frame growth
    (void)pad;
    return n == 0 ? 0 : 1 + rec(n - 1);
  };
  int result = -1;
  Fiber f{[&] { result = rec(200); }, 256 * 1024};
  f.resume();
  EXPECT_EQ(result, 200);
}

TEST(Fiber, ManyFibersInterleaved) {
  constexpr int kFibers = 50;
  std::vector<int> counters(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int round = 0; round < 10; ++round) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::yield_to_resumer();
      }
    }));
  }
  for (int round = 0; round < 10; ++round) {
    for (auto& f : fibers) f->resume();
  }
  for (auto& f : fibers) {
    f->resume();  // let the loop exit
    EXPECT_TRUE(f->finished());
  }
  for (int c : counters) EXPECT_EQ(c, 10);
}

TEST(Fiber, PerThreadCurrentIsolation) {
  // Two OS threads each running their own fiber must not share tls state.
  std::atomic<bool> ok{true};
  auto worker = [&] {
    Fiber f{[&] {
      for (int i = 0; i < 1000; ++i) {
        if (Fiber::current() == nullptr) ok = false;
        Fiber::yield_to_resumer();
      }
    }};
    for (int i = 0; i < 1000; ++i) f.resume();
    f.resume();
  };
  std::thread a{worker};
  std::thread b{worker};
  a.join();
  b.join();
  EXPECT_TRUE(ok);
}

TEST(Fiber, DestroySuspendedFiberIsSafe) {
  // An RTOS tears down blocked threads at shutdown; the mapping must be
  // released without touching the suspended frames.
  auto f = std::make_unique<Fiber>([] {
    Fiber::yield_to_resumer();
    FAIL() << "never resumed";
  });
  f->resume();
  EXPECT_FALSE(f->finished());
  f.reset();  // no crash, no assert
}

}  // namespace
}  // namespace vhp
