// Link-latency emulation tests.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "vhp/net/inproc.hpp"
#include "vhp/net/latency.hpp"

namespace vhp::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::pair<ChannelPtr, ChannelPtr> emulated_pair(
    std::chrono::microseconds latency,
    std::chrono::microseconds jitter = 0us) {
  auto [a, b] = make_inproc_channel_pair();
  LinkEmulationConfig cfg;
  cfg.latency = latency;
  cfg.jitter = jitter;
  return {emulate_latency(std::move(a), cfg),
          emulate_latency(std::move(b), cfg)};
}

TEST(LatencyChannel, DelaysDelivery) {
  auto [a, b] = emulated_pair(20ms);
  const auto t0 = Clock::now();
  ASSERT_TRUE(a->send(Bytes{1, 2, 3}).ok());
  auto got = b->recv(1000ms);
  const auto elapsed = Clock::now() - t0;
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), (Bytes{1, 2, 3}));
  EXPECT_GE(elapsed, 19ms);  // scheduler slop tolerance
}

TEST(LatencyChannel, ZeroConfigIsPassThrough) {
  auto [raw_a, raw_b] = make_inproc_channel_pair();
  Channel* raw_ptr = raw_a.get();
  auto wrapped = emulate_latency(std::move(raw_a), LinkEmulationConfig{});
  // Disabled emulation must not even wrap.
  EXPECT_EQ(wrapped.get(), raw_ptr);
}

TEST(LatencyChannel, TryRecvHoldsBackEarlyFrames) {
  auto [a, b] = emulated_pair(50ms);
  ASSERT_TRUE(a->send(Bytes{7}).ok());
  // Immediately after the send the frame exists but is not deliverable.
  auto early = b->try_recv();
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early.value().has_value());
  // After the latency it appears.
  std::this_thread::sleep_for(60ms);
  auto late = b->try_recv();
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(late.value().has_value());
  EXPECT_EQ(*late.value(), Bytes{7});
}

TEST(LatencyChannel, PreservesOrderAndContent) {
  auto [a, b] = emulated_pair(1ms, 2ms);  // jitter must not reorder
  for (u8 i = 0; i < 20; ++i) {
    ASSERT_TRUE(a->send(Bytes{i}).ok());
  }
  for (u8 i = 0; i < 20; ++i) {
    auto got = b->recv(1000ms);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), Bytes{i});
  }
}

TEST(LatencyChannel, EmptyFramesSurvive) {
  auto [a, b] = emulated_pair(1ms);
  ASSERT_TRUE(a->send(Bytes{}).ok());
  auto got = b->recv(1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST(LatencyChannel, CloseStillAborts) {
  auto [a, b] = emulated_pair(1ms);
  a->close();
  auto got = b->recv(500ms);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kAborted);
}

TEST(LatencyChannel, BidirectionalIndependentDelays) {
  auto [a, b] = emulated_pair(10ms);
  const auto t0 = Clock::now();
  ASSERT_TRUE(a->send(Bytes{1}).ok());
  ASSERT_TRUE(b->send(Bytes{2}).ok());
  auto fa = b->recv(1000ms);
  auto fb = a->recv(1000ms);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  // Both directions delayed, but concurrently (one-way, not serialized).
  EXPECT_LT(Clock::now() - t0, 40ms);
}

TEST(LatencyLinkPair, WrapsAllChannels) {
  LinkPair pair = make_inproc_link_pair();
  LinkEmulationConfig cfg;
  cfg.latency = 15ms;
  pair = emulate_latency(std::move(pair), cfg);
  const auto t0 = Clock::now();
  ASSERT_TRUE(send_msg(*pair.hw.intr, IntRaise{1}).ok());
  auto got = recv_msg(*pair.board.intr, 1000ms);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(Clock::now() - t0, 14ms);
}

}  // namespace
}  // namespace vhp::net
