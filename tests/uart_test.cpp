// UART device tests: 8N1 line-level framing, FIFO behaviour, register
// interface, and the full co-simulated console path through the board
// driver.
#include <gtest/gtest.h>

#include "vhp/cosim/session.hpp"
#include "vhp/devices/uart.hpp"
#include "vhp/devices/uart_driver.hpp"
#include "vhp/net/inproc.hpp"

namespace vhp::devices {
namespace {

using namespace std::chrono_literals;

/// Bare CosimKernel on a dead-end link: lets us elaborate the UART and use
/// its registers directly (untimed, no board).
struct UartRig {
  net::LinkPair pair = net::make_inproc_link_pair();
  cosim::CosimKernel hw;
  UartModel uart;

  explicit UartRig(UartModel::Config cfg = {})
      : hw(std::move(pair.hw),
           [] {
             cosim::CosimConfig c;
             c.timed = false;
             c.shutdown_on_finish = false;
             return c;
           }()),
        uart(hw, "uart0", cfg) {}

  void write_reg(u32 offset, u32 value) {
    ASSERT_TRUE(hw.registry()
                    .deliver_write(offset,
                                   cosim::DriverCodec<u32>::encode(value))
                    .ok());
  }
  u32 read_reg(u32 offset) {
    auto raw = hw.registry().serve_read(offset, 4);
    EXPECT_TRUE(raw.ok());
    u32 v = 0;
    EXPECT_TRUE(cosim::DriverCodec<u32>::decode(raw.value(), v));
    return v;
  }
};

TEST(Uart, TransmitsDecodableFrames) {
  UartRig rig;
  SerialSniffer sniffer{rig.hw.kernel(), "sniff", rig.uart.tx(),
                        rig.uart.divisor(), 2};
  rig.write_reg(UartModel::kTxData, 'H');
  rig.write_reg(UartModel::kTxData, 'i');
  rig.hw.kernel().run(2000);
  ASSERT_EQ(sniffer.received().size(), 2u);
  EXPECT_EQ(sniffer.received()[0], 'H');
  EXPECT_EQ(sniffer.received()[1], 'i');
  EXPECT_EQ(sniffer.framing_errors(), 0u);
  EXPECT_EQ(rig.uart.stats().bytes_tx, 2u);
}

TEST(Uart, FrameTimingMatchesDivisor) {
  // One 8N1 frame = 10 bit times. With divisor 8 and period 2, a byte
  // takes 160 time units on the wire.
  UartRig rig;
  std::vector<sim::SimTime> edges;
  rig.uart.tx().add_change_hook(
      [&](sim::SimTime t) { edges.push_back(t); });
  rig.write_reg(UartModel::kTxData, 0x00);  // all-zero data: long low level
  rig.hw.kernel().run(400);
  // 0x00: start(0) + 8 zeros + stop(1) -> exactly two edges: fall at the
  // start, rise at the stop bit, 9 bit times = 144 units apart.
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1] - edges[0], 9u * 8u * 2u);
}

TEST(Uart, ReceivesFromDrivenLine) {
  UartRig rig;
  SerialDriver driver{rig.hw.kernel(), "term", rig.uart.rx(),
                      rig.uart.divisor(), 2};
  driver.queue_text("ok");
  rig.hw.kernel().run(3000);
  EXPECT_EQ(rig.uart.stats().bytes_rx, 2u);
  EXPECT_EQ(rig.read_reg(UartModel::kStatus) & UartModel::kStatusRxAvail,
            UartModel::kStatusRxAvail);
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 'o');
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 'k');
  // Drained: no RX-available flag, further reads return 0.
  EXPECT_EQ(rig.read_reg(UartModel::kStatus) & UartModel::kStatusRxAvail, 0u);
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 0u);
}

TEST(Uart, LoopbackTxToRx) {
  // Wire the UART's own tx to a second UART's rx ... simplest: sniff via a
  // second rig sharing the kernel is messy; instead loop tx into rx with a
  // forwarding method.
  UartRig rig;
  struct Loop : sim::Module {
    Loop(sim::Kernel& k, sim::BoolSignal& from, sim::BoolSignal& to)
        : Module(k, "loop") {
      method("fwd", [&from, &to] { to.write(from.read()); })
          .sensitive(from.value_changed_event())
          .dont_initialize();
    }
  } loop{rig.hw.kernel(), rig.uart.tx(), rig.uart.rx()};
  rig.write_reg(UartModel::kTxData, 0x5a);
  rig.hw.kernel().run(2000);
  EXPECT_EQ(rig.uart.stats().bytes_rx, 1u);
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 0x5au);
}

TEST(Uart, TxFifoOverflowCountedAndFlagged) {
  UartModel::Config cfg;
  cfg.fifo_depth = 4;
  UartRig rig{cfg};
  for (int i = 0; i < 10; ++i) {
    rig.write_reg(UartModel::kTxData, static_cast<u32>('0' + i));
  }
  // Nothing shifted yet (no simulation ran): depth 4 + 6 overflowed... the
  // TX thread initializes lazily; before any run() the FIFO just fills.
  EXPECT_GE(rig.uart.stats().tx_overflows, 5u);
  EXPECT_EQ(rig.read_reg(UartModel::kStatus) & UartModel::kStatusTxFull,
            UartModel::kStatusTxFull);
  rig.hw.kernel().run(4000);
  EXPECT_EQ(rig.read_reg(UartModel::kStatus) & UartModel::kStatusTxBusy, 0u);
}

TEST(Uart, RxFifoOverflowDropsAndCounts) {
  UartModel::Config cfg;
  cfg.fifo_depth = 2;
  UartRig rig{cfg};
  SerialDriver fast_typist{rig.hw.kernel(), "term", rig.uart.rx(),
                           rig.uart.divisor(), 2, /*gap_bits=*/1};
  fast_typist.queue_text("abcdef");  // nobody drains the FIFO
  rig.hw.kernel().run(12000);
  EXPECT_EQ(rig.uart.stats().bytes_rx, 2u);
  EXPECT_EQ(rig.uart.stats().rx_overflows, 4u);
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 'a');
  EXPECT_EQ(rig.read_reg(UartModel::kRxData), 'b');
}

TEST(Uart, SerialDriverGapSlowsFrames) {
  UartRig rig;
  SerialDriver slow{rig.hw.kernel(), "slow", rig.uart.rx(),
                    rig.uart.divisor(), 2, /*gap_bits=*/20};
  slow.queue_text("xy");
  // One frame = 10 bits, gap = 20 bits -> the second byte lands only after
  // ~30 bit times (480 units). After 20 bit times only one byte arrived.
  rig.hw.kernel().run(20 * 16);
  EXPECT_EQ(rig.uart.stats().bytes_rx, 1u);
  rig.hw.kernel().run(40 * 16);
  EXPECT_EQ(rig.uart.stats().bytes_rx, 2u);
}

TEST(Uart, DivisorReprogrammingChangesBitTime) {
  UartRig rig;
  rig.write_reg(UartModel::kDivisor, 4);
  EXPECT_EQ(rig.uart.divisor(), 4u);
  SerialSniffer sniffer{rig.hw.kernel(), "sniff", rig.uart.tx(), 4, 2};
  rig.write_reg(UartModel::kTxData, 0xa5);
  rig.hw.kernel().run(2000);
  ASSERT_EQ(sniffer.received().size(), 1u);
  EXPECT_EQ(sniffer.received()[0], 0xa5);
}

TEST(Uart, RejectsZeroDivisor) {
  UartRig rig;
  EXPECT_FALSE(rig.hw.registry()
                   .deliver_write(UartModel::kDivisor,
                                  cosim::DriverCodec<u32>::encode(0))
                   .ok());
}

TEST(Uart, IrqPulsesPerReceivedByte) {
  UartRig rig;
  int pulses = 0;
  struct Watch : sim::Module {
    Watch(sim::Kernel& k, sim::BoolSignal& line, int& count)
        : Module(k, "watch") {
      method("count", [&count] { ++count; })
          .sensitive(line.posedge_event())
          .dont_initialize();
    }
  } watch{rig.hw.kernel(), rig.uart.irq(), pulses};
  SerialDriver driver{rig.hw.kernel(), "term", rig.uart.rx(),
                      rig.uart.divisor(), 2};
  driver.queue_text("abc");
  rig.hw.kernel().run(4000);
  EXPECT_EQ(pulses, 3);
}

// ---------- full co-simulated console ----------

TEST(UartCosim, BoardPrintsAndEchoes) {
  cosim::SessionConfig cfg;
  cfg.transport = cosim::TransportKind::kInProc;
  cfg.cosim.t_sync = 50;
  cosim::CosimSession session{cfg};

  UartModel uart{session.hw(), "uart0", {}};
  session.hw().watch_interrupt(uart.irq(), board::Board::kDeviceVector);
  SerialSniffer console{session.hw().kernel(), "console", uart.tx(),
                        uart.divisor(), 2};
  SerialDriver terminal{session.hw().kernel(), "terminal", uart.rx(),
                        uart.divisor(), 2};
  terminal.queue_text("ping\n");

  auto& board = session.board();
  UartDriver tty{board};
  bool done = false;
  std::string got;
  board.spawn_app("console_app", 8, [&] {
    ASSERT_TRUE(tty.write_text("boot\n").ok());
    auto line = tty.read_line();
    ASSERT_TRUE(line.ok());
    got = line.value();
    ASSERT_TRUE(tty.write_text("pong:" + got).ok());
    done = true;
  });

  session.start_board();
  for (int chunk = 0; chunk < 4000 && !done; ++chunk) {
    ASSERT_TRUE(session.run_cycles(100).ok());
  }
  // Let the final frames drain onto the wire.
  ASSERT_TRUE(session.run_cycles(2000).ok());
  session.finish();

  EXPECT_TRUE(done);
  EXPECT_EQ(got, "ping\n");
  const std::string printed(console.received().begin(),
                            console.received().end());
  EXPECT_EQ(printed, "boot\npong:ping\n");
  EXPECT_EQ(console.framing_errors(), 0u);
}

}  // namespace
}  // namespace vhp::devices
