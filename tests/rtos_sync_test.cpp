// RTOS synchronization tests: wait queues, mutexes, semaphores, event flags,
// mailboxes, timed waits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vhp/rtos/kernel.hpp"
#include "vhp/rtos/mailbox.hpp"
#include "vhp/rtos/sync.hpp"

namespace vhp::rtos {
namespace {

KernelConfig fast_cfg() {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  cfg.timeslice_ticks = 5;
  return cfg;
}

TEST(RtosMutex, MutualExclusion) {
  Kernel k{fast_cfg()};
  Mutex mu{k};
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 4; ++i) {
    k.spawn("t" + std::to_string(i), 5, [&] {
      for (int round = 0; round < 5; ++round) {
        MutexLock lock{mu};
        ++inside;
        max_inside = std::max(max_inside, inside);
        k.consume(25);  // hold across preemption points
        --inside;
      }
    });
  }
  k.run(true);
  EXPECT_EQ(max_inside, 1);
}

TEST(RtosMutex, TryLockFailsWhenHeld) {
  Kernel k{fast_cfg()};
  Mutex mu{k};
  bool try_result = true;
  k.spawn("holder", 4, [&] {
    MutexLock lock{mu};
    k.delay(SwTicks{10});
  });
  k.spawn("prober", 5, [&] {
    k.delay(SwTicks{2});  // while the holder sleeps with the lock
    try_result = mu.try_lock();
  });
  k.run(true);
  EXPECT_FALSE(try_result);
}

TEST(RtosMutex, FifoHandoff) {
  Kernel k{fast_cfg()};
  Mutex mu{k};
  std::vector<int> order;
  k.spawn("holder", 3, [&] {
    mu.lock();
    k.delay(SwTicks{10});
    mu.unlock();
  });
  for (int i = 0; i < 3; ++i) {
    k.spawn("w" + std::to_string(i), 5, [&, i] {
      k.delay(SwTicks{static_cast<u64>(i) + 1});  // queue in order
      MutexLock lock{mu};
      order.push_back(i);
    });
  }
  k.run(true);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RtosSemaphore, CountingBehavior) {
  Kernel k{fast_cfg()};
  Semaphore sem{k, 2};
  EXPECT_TRUE(sem.try_wait());
  EXPECT_TRUE(sem.try_wait());
  EXPECT_FALSE(sem.try_wait());
  sem.post();
  EXPECT_EQ(sem.count(), 1u);
  EXPECT_TRUE(sem.try_wait());
}

TEST(RtosSemaphore, ProducerConsumer) {
  Kernel k{fast_cfg()};
  Semaphore items{k, 0};
  std::vector<int> consumed;
  int produced = 0;
  k.spawn("producer", 5, [&] {
    for (int i = 0; i < 10; ++i) {
      k.consume(15);
      ++produced;
      items.post();
    }
  });
  k.spawn("consumer", 4, [&] {
    for (int i = 0; i < 10; ++i) {
      items.wait();
      consumed.push_back(produced);
    }
  });
  k.run(true);
  EXPECT_EQ(consumed.size(), 10u);
}

TEST(RtosSemaphore, TimedWaitTimesOut) {
  Kernel k{fast_cfg()};
  Semaphore sem{k, 0};
  bool got = true;
  u64 woke_tick = 0;
  k.spawn("waiter", 5, [&] {
    got = sem.wait_ticks(SwTicks{7});
    woke_tick = k.tick_count().value();
  });
  k.spawn("clock", 6, [&] { k.consume(500); });  // drives time
  k.run(true);
  EXPECT_FALSE(got);
  EXPECT_EQ(woke_tick, 7u);
}

TEST(RtosSemaphore, TimedWaitSucceedsBeforeTimeout) {
  Kernel k{fast_cfg()};
  Semaphore sem{k, 0};
  bool got = false;
  k.spawn("poster", 4, [&] {
    k.delay(SwTicks{3});
    sem.post();
  });
  k.spawn("waiter", 5, [&] { got = sem.wait_ticks(SwTicks{100}); });
  k.run(true);
  EXPECT_TRUE(got);
  EXPECT_LT(k.tick_count().value(), 100u);
}

TEST(RtosEventFlag, WaitAnyMatchesAndClears) {
  Kernel k{fast_cfg()};
  EventFlag flag{k};
  u32 matched = 0;
  k.spawn("waiter", 5, [&] { matched = flag.wait_any(0b0110); });
  k.spawn("setter", 6, [&] {
    flag.set(0b0001);  // no match
    k.delay(SwTicks{1});
    flag.set(0b0100);  // match
  });
  k.run(true);
  EXPECT_EQ(matched, 0b0100u);
  EXPECT_EQ(flag.peek(), 0b0001u);  // unmatched bit remains
}

TEST(RtosMailbox, BlockingPutGet) {
  Kernel k{fast_cfg()};
  Mailbox<int> box{k, 2};
  std::vector<int> got;
  k.spawn("producer", 5, [&] {
    for (int i = 1; i <= 6; ++i) box.put(i);  // blocks on full
  });
  k.spawn("consumer", 6, [&] {
    for (int i = 0; i < 6; ++i) {
      got.push_back(box.get());
      k.consume(20);
    }
  });
  k.run(true);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(RtosMailbox, TryVariants) {
  Kernel k{fast_cfg()};
  Mailbox<int> box{k, 1};
  k.spawn("t", 5, [&] {
    EXPECT_FALSE(box.try_get().has_value());
    EXPECT_TRUE(box.try_put(1));
    EXPECT_FALSE(box.try_put(2));  // full
    auto v = box.try_get();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
  });
  k.run(true);
}

TEST(RtosMailbox, TimedGetTimesOut) {
  Kernel k{fast_cfg()};
  Mailbox<int> box{k, 4};
  std::optional<int> got = 1;
  k.spawn("waiter", 5, [&] { got = box.get_ticks(SwTicks{5}); });
  k.spawn("clock", 6, [&] { k.consume(200); });
  k.run(true);
  EXPECT_FALSE(got.has_value());
}

TEST(RtosMailbox, TimedPutTimesOutWhenFull) {
  Kernel k{fast_cfg()};
  Mailbox<int> box{k, 1};
  bool second = true;
  k.spawn("producer", 5, [&] {
    ASSERT_TRUE(box.put_ticks(1, SwTicks{5}));
    second = box.put_ticks(2, SwTicks{5});  // full, nobody drains
  });
  k.spawn("clock", 6, [&] { k.consume(200); });
  k.run(true);
  EXPECT_FALSE(second);
  EXPECT_EQ(box.size(), 1u);
}

TEST(RtosMailbox, TimedPutSucceedsWhenDrained) {
  Kernel k{fast_cfg()};
  Mailbox<int> box{k, 1};
  bool second = false;
  k.spawn("producer", 5, [&] {
    ASSERT_TRUE(box.put_ticks(1, SwTicks{50}));
    second = box.put_ticks(2, SwTicks{50});
  });
  k.spawn("consumer", 4, [&] {
    k.delay(SwTicks{3});
    (void)box.get();
  });
  k.run(true);
  EXPECT_TRUE(second);
}

TEST(RtosMailbox, MovesOwnershipOfPayload) {
  Kernel k{fast_cfg()};
  Mailbox<std::unique_ptr<int>> box{k, 2};
  int sum = 0;
  k.spawn("producer", 5, [&] {
    box.put(std::make_unique<int>(20));
    box.put(std::make_unique<int>(22));
  });
  k.spawn("consumer", 6, [&] {
    sum += *box.get();
    sum += *box.get();
  });
  k.run(true);
  EXPECT_EQ(sum, 42);
}

}  // namespace
}  // namespace vhp::rtos
