// Virtual-board tests: the ChannelWaiter RTOS-blocking reception, and the
// board-side protocol obligations exercised against a scripted HW peer
// (mirror image of cosim_test.cpp, which scripts the board side).
#include <gtest/gtest.h>

#include <thread>

#include "vhp/board/board.hpp"
#include "vhp/net/inproc.hpp"

namespace vhp::board {
namespace {

using namespace std::chrono_literals;

// ---------- ChannelWaiter ----------

TEST(ChannelWaiter, DeliversPolledFrames) {
  rtos::Kernel k{rtos::KernelConfig{}};
  auto [hw, brd] = net::make_inproc_channel_pair();
  ChannelWaiter waiter{k, *brd, "test"};
  // The idle thread plays its board role: it polls the channel.
  k.set_idle_poll([&] { return waiter.poll(); });
  std::optional<Bytes> got;
  k.spawn("rx", 5, [&] { got = waiter.recv(); });
  k.spawn("tx_sim", 6, [&] {
    // Simulate the HW side injecting a frame "from outside" after rx is
    // already blocked; only the idle poll can deliver it.
    ASSERT_TRUE(hw->send(Bytes{7, 8}).ok());
  });
  k.run(true);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (Bytes{7, 8}));
}

TEST(ChannelWaiter, RecvReturnsNulloptOnClose) {
  rtos::Kernel k{rtos::KernelConfig{}};
  auto [hw, brd] = net::make_inproc_channel_pair();
  ChannelWaiter waiter{k, *brd, "test"};
  std::optional<Bytes> got = Bytes{1};
  k.spawn("rx", 5, [&] { got = waiter.recv(); });
  hw->close();
  k.run(true);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(waiter.closed());
}

TEST(ChannelWaiter, DrainsQueuedFramesBeforeReportingClose) {
  rtos::Kernel k{rtos::KernelConfig{}};
  auto [hw, brd] = net::make_inproc_channel_pair();
  ChannelWaiter waiter{k, *brd, "test"};
  ASSERT_TRUE(hw->send(Bytes{1}).ok());
  ASSERT_TRUE(hw->send(Bytes{2}).ok());
  hw->close();
  std::vector<Bytes> got;
  k.spawn("rx", 5, [&] {
    for (;;) {
      auto f = waiter.recv();
      if (!f) break;
      got.push_back(*f);
    }
  });
  k.run(true);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], Bytes{1});
  EXPECT_EQ(got[1], Bytes{2});
}

TEST(ChannelWaiter, TryGetNonBlocking) {
  rtos::Kernel k{rtos::KernelConfig{}};
  auto [hw, brd] = net::make_inproc_channel_pair();
  ChannelWaiter waiter{k, *brd, "test"};
  bool checked = false;
  k.spawn("rx", 5, [&] {
    EXPECT_FALSE(waiter.try_get().has_value());
    ASSERT_TRUE(hw->send(Bytes{5}).ok());
    auto f = waiter.try_get();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, Bytes{5});
    checked = true;
  });
  k.run(true);
  EXPECT_TRUE(checked);
}

// ---------- Board against a scripted HW peer ----------

struct ScriptedHw {
  net::CosimLink link;

  net::TimeAck expect_ack(std::chrono::milliseconds timeout = 2000ms) {
    auto msg = net::recv_msg(*link.clock, timeout);
    EXPECT_TRUE(msg.ok()) << msg.status();
    EXPECT_TRUE(std::holds_alternative<net::TimeAck>(msg.value()));
    return std::get<net::TimeAck>(msg.value());
  }

  void tick(u64 cycle, u32 n) {
    ASSERT_TRUE(net::send_msg(*link.clock, net::ClockTick{cycle, n}).ok());
  }

  void shutdown() {
    ASSERT_TRUE(net::send_msg(*link.clock, net::Shutdown{}).ok());
  }
};

TEST(Board, SendsInitialAckThenAlternates) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  cfg.rtos.cycles_per_tick = 10;
  Board board{cfg, std::move(pair.board)};
  ScriptedHw hw{std::move(pair.hw)};

  std::thread bt{[&] { board.run(); }};
  // Initial freeze at tick 0.
  EXPECT_EQ(hw.expect_ack().board_tick, 0u);
  // Grant 100 cycles -> the board idles through them -> ack at tick 10.
  hw.tick(100, 100);
  EXPECT_EQ(hw.expect_ack().board_tick, 10u);
  hw.tick(200, 100);
  EXPECT_EQ(hw.expect_ack().board_tick, 20u);
  hw.shutdown();
  bt.join();
  EXPECT_EQ(board.stats().clock_ticks_received, 2u);
  EXPECT_EQ(board.stats().acks_sent, 3u);
}

TEST(Board, AppWorkConsumesGrantedBudget) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  cfg.rtos.cycles_per_tick = 10;
  Board board{cfg, std::move(pair.board)};
  u64 work_done_at_tick = 0;
  board.spawn_app("worker", 8, [&] {
    board.kernel().consume(150);
    work_done_at_tick = board.kernel().tick_count().value();
  });
  ScriptedHw hw{std::move(pair.hw)};
  std::thread bt{[&] { board.run(); }};
  EXPECT_EQ(hw.expect_ack().board_tick, 0u);
  hw.tick(100, 100);
  EXPECT_EQ(hw.expect_ack().board_tick, 10u);
  hw.tick(200, 100);
  EXPECT_EQ(hw.expect_ack().board_tick, 20u);
  hw.shutdown();
  bt.join();
  EXPECT_EQ(work_done_at_tick, 15u);  // 150 cycles / 10 per tick
}

TEST(Board, InterruptWakesDsrWhileFrozen) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  cfg.rtos.cycles_per_tick = 10;
  Board board{cfg, std::move(pair.board)};
  u64 dsr_runs = 0;
  board.attach_device_dsr([&](u32 vector) {
    EXPECT_EQ(vector, Board::kDeviceVector);
    ++dsr_runs;
  });
  ScriptedHw hw{std::move(pair.hw)};
  std::thread bt{[&] { board.run(); }};
  EXPECT_EQ(hw.expect_ack().board_tick, 0u);
  // Interrupt while the board is frozen: the channel thread (a
  // communication thread) must still process it.
  ASSERT_TRUE(net::send_msg(*hw.link.intr,
                            net::IntRaise{Board::kDeviceVector})
                  .ok());
  // Give it a quantum so the DSR definitely drains, then stop.
  hw.tick(10, 10);
  (void)hw.expect_ack();
  hw.shutdown();
  bt.join();
  EXPECT_EQ(dsr_runs, 1u);
  EXPECT_EQ(board.stats().interrupts_received, 1u);
}

TEST(Board, DevWriteArrivesOnDataChannel) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  cfg.free_running = true;  // no budget needed for this test
  Board board{cfg, std::move(pair.board)};
  board.spawn_app("writer", 8, [&] {
    ASSERT_TRUE(board.dev_write(0x30, Bytes{9, 9, 9}).ok());
    board.kernel().shutdown();
  });
  ScriptedHw hw{std::move(pair.hw)};
  std::thread bt{[&] { board.run(); }};
  auto msg = net::recv_msg(*hw.link.data, 2000ms);
  ASSERT_TRUE(msg.ok());
  const auto* wr = std::get_if<net::DataWrite>(&msg.value());
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(wr->address, 0x30u);
  EXPECT_EQ(wr->data, (Bytes{9, 9, 9}));
  bt.join();
}

TEST(Board, DevReadBlocksUntilResponse) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  cfg.free_running = true;
  Board board{cfg, std::move(pair.board)};
  Bytes got;
  board.spawn_app("reader", 8, [&] {
    auto r = board.dev_read(0x40, 8);
    ASSERT_TRUE(r.ok()) << r.status();
    got = r.value();
    board.kernel().shutdown();
  });
  ScriptedHw hw{std::move(pair.hw)};
  std::thread bt{[&] { board.run(); }};
  auto req = net::recv_msg(*hw.link.data, 2000ms);
  ASSERT_TRUE(req.ok());
  const auto* rr = std::get_if<net::DataReadReq>(&req.value());
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->address, 0x40u);
  ASSERT_TRUE(
      net::send_msg(*hw.link.data, net::DataReadResp{0x40, Bytes{4, 2}})
          .ok());
  bt.join();
  EXPECT_EQ(got, (Bytes{4, 2}));
}

TEST(Board, LinkTeardownShutsBoardDown) {
  auto pair = net::make_inproc_link_pair();
  BoardConfig cfg;
  Board board{cfg, std::move(pair.board)};
  ScriptedHw hw{std::move(pair.hw)};
  std::thread bt{[&] { board.run(); }};
  (void)hw.expect_ack();
  hw.link.close_all();  // HW vanishes without a polite SHUTDOWN
  bt.join();            // the board must still terminate
  SUCCEED();
}

}  // namespace
}  // namespace vhp::board
