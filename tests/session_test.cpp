// End-to-end co-simulation sessions: a real CosimKernel against a real
// virtual Board over both transports — the paper's full stack in miniature.
#include <gtest/gtest.h>

#include <chrono>

#include "vhp/cosim/session.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::cosim {
namespace {

/// Minimal device under design: when the driver writes a value to address 0,
/// the device publishes value+1 at address 4 and pulses its interrupt line.
struct EchoDevice : sim::Module {
  DriverIn<u32> in;
  DriverOut<u32> out;
  sim::BoolSignal& irq_line;
  u64 requests = 0;

  EchoDevice(CosimKernel& hw)
      : Module(hw.kernel(), "echo"),
        in(hw.kernel(), hw.registry(), "echo.in", 0x0),
        out(hw.registry(), "echo.out", 0x4),
        irq_line(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    method("process",
           [this] {
             ++requests;
             out.write(in.read() + 1);
             irq_line.write(true);
           })
        .sensitive(in.data_written_event())
        .dont_initialize();
    // Drop the line two cycles after each pulse so the next request makes a
    // fresh rising edge.
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq_line.posedge_event());
        sim::wait(2 * period);
        irq_line.write(false);
      }
    });
    hw.watch_interrupt(irq_line, board::Board::kDeviceVector);
  }
};

class SessionTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(SessionTest, EchoDeviceRoundTrips) {
  SessionConfig cfg;
  cfg.transport = GetParam();
  cfg.cosim.t_sync = 20;
  cfg.board.rtos.cycles_per_tick = 10;
  CosimSession session{cfg};

  EchoDevice echo{session.hw()};

  auto& board = session.board();
  rtos::Semaphore reply_ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { reply_ready.post(); });

  constexpr int kRounds = 5;
  std::vector<u32> replies;
  board.spawn_app("echo_app", 8, [&] {
    for (u32 i = 0; i < kRounds; ++i) {
      const u32 request = 100 + i * 11;
      ASSERT_TRUE(
          board.dev_write(0x0, DriverCodec<u32>::encode(request)).ok());
      reply_ready.wait();
      auto resp = board.dev_read(0x4, 4);
      ASSERT_TRUE(resp.ok()) << resp.status();
      u32 value = 0;
      ASSERT_TRUE(DriverCodec<u32>::decode(resp.value(), value));
      replies.push_back(value);
      board.kernel().consume(50);  // modeled per-round work
    }
  });

  session.start_board();
  // Generous cycle budget; stop as soon as the app collected everything.
  for (int chunk = 0; chunk < 400 && replies.size() < kRounds; ++chunk) {
    ASSERT_TRUE(session.run_cycles(50).ok());
  }
  session.finish();

  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kRounds));
  for (u32 i = 0; i < kRounds; ++i) {
    EXPECT_EQ(replies[i], 100 + i * 11 + 1);
  }
  EXPECT_EQ(echo.requests, static_cast<u64>(kRounds));
  EXPECT_GE(session.hw().stats().syncs, 1u);
  EXPECT_EQ(board.stats().interrupts_received, static_cast<u64>(kRounds));
}

TEST_P(SessionTest, DeviceVisibleThroughDevtab) {
  SessionConfig cfg;
  cfg.transport = GetParam();
  cfg.cosim.t_sync = 20;
  CosimSession session{cfg};
  EchoDevice echo{session.hw()};

  auto& board = session.board();
  rtos::Semaphore reply_ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { reply_ready.post(); });

  bool ok = false;
  board.spawn_app("devtab_app", 8, [&] {
    auto dev = board.devtab().lookup(board::Board::kDeviceName);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(dev.value()
                    ->write(0x0, DriverCodec<u32>::encode(41))
                    .ok());
    reply_ready.wait();
    auto resp = dev.value()->read(0x4, 4);
    ASSERT_TRUE(resp.ok());
    u32 v = 0;
    ASSERT_TRUE(DriverCodec<u32>::decode(resp.value(), v));
    EXPECT_EQ(v, 42u);
    ok = true;
  });

  session.start_board();
  for (int chunk = 0; chunk < 200 && !ok; ++chunk) {
    ASSERT_TRUE(session.run_cycles(50).ok());
  }
  session.finish();
  EXPECT_TRUE(ok);
}

TEST_P(SessionTest, BoardTicksTrackSimulatedTime) {
  SessionConfig cfg;
  cfg.transport = GetParam();
  cfg.cosim.t_sync = 10;
  cfg.board.rtos.cycles_per_tick = 10;
  cfg.board.cycles_per_sim_cycle = 1;
  CosimSession session{cfg};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(500).ok());
  // After the last ack the board consumed exactly 500 cycles = 50 ticks.
  // (Read after finish() so the board thread is quiescent.)
  session.finish();
  EXPECT_EQ(session.board().kernel().tick_count().value(), 50u);
  EXPECT_EQ(session.hw().stats().syncs, 50u);
}

TEST_P(SessionTest, UntimedSessionRunsWithoutSync) {
  SessionConfig cfg;
  cfg.transport = GetParam();
  cfg.set_untimed();
  CosimSession session{cfg};
  EchoDevice echo{session.hw()};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(2000).ok());
  session.finish();
  EXPECT_EQ(session.hw().stats().syncs, 0u);
  EXPECT_EQ(session.hw().stats().acks_received, 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, SessionTest,
                         ::testing::Values(TransportKind::kInProc,
                                           TransportKind::kTcp),
                         [](const auto& suite_info) {
                           return suite_info.param == TransportKind::kInProc
                                      ? "InProc"
                                      : "Tcp";
                         });

TEST(SessionLinkEmulation, SyncRoundTripsPayEmulatedLatency) {
  // With 3 ms one-way emulation, each CLOCK_TICK/TIME_ACK exchange costs at
  // least ~6 ms of host time; 5 syncs must take >= ~30 ms.
  SessionConfig cfg;
  cfg.transport = TransportKind::kInProc;
  cfg.cosim.t_sync = 100;
  cfg.board.rtos.cycles_per_tick = 10;
  cfg.link_emulation.latency = std::chrono::milliseconds{3};
  CosimSession session{cfg};
  session.start_board();
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(session.run_cycles(500).ok());  // 5 sync points
  const auto elapsed = std::chrono::steady_clock::now() - start;
  session.finish();
  EXPECT_GE(elapsed, std::chrono::milliseconds{28});
  EXPECT_EQ(session.hw().stats().syncs, 5u);
  // The protocol invariant holds regardless of the link speed.
  EXPECT_EQ(session.board().kernel().tick_count().value(), 500u / 10u);
}

TEST(SessionConfigValidation, RejectsInconsistentTiming) {
  SessionConfig cfg;
  cfg.cosim.timed = false;
  cfg.board.free_running = false;  // inconsistent
  EXPECT_THROW(CosimSession{cfg}, std::invalid_argument);
}

TEST(SessionConfigValidation, RejectsZeroTsync) {
  SessionConfig cfg;
  cfg.cosim.t_sync = 0;
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_THROW(CosimSession{cfg}, std::invalid_argument);
}

TEST(SessionConfigValidation, RejectsZeroClockPeriod) {
  SessionConfig cfg;
  cfg.cosim.clock_period = sim::SimTime{0};
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_THROW(CosimSession{cfg}, std::invalid_argument);
}

TEST(SessionConfigValidation, RejectsZeroDataPollInterval) {
  SessionConfig cfg;
  cfg.cosim.data_poll_interval = 0;
  EXPECT_FALSE(cfg.validate().ok());
  EXPECT_THROW(CosimSession{cfg}, std::invalid_argument);
}

TEST(SessionConfigValidation, RejectsZeroRtosDivisors) {
  SessionConfig cfg;
  cfg.board.rtos.cycles_per_tick = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = SessionConfig{};
  cfg.board.cycles_per_sim_cycle = 0;
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(SessionConfigValidation, RejectsMultiCoreWithoutMemoryHierarchy) {
  SessionConfig cfg;
  cfg.board.rtos.cores = 4;  // no board.memory
  const Status s = cfg.validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("requires a memory hierarchy"),
            std::string::npos)
      << s;
  EXPECT_THROW(CosimSession{cfg}, std::invalid_argument);
  cfg.board.memory = mem::MemConfig{};
  EXPECT_TRUE(cfg.validate().ok()) << cfg.validate();
}

TEST(SessionConfigValidation, RejectsZeroCores) {
  SessionConfig cfg;
  cfg.board.rtos.cores = 0;
  const Status s = cfg.validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cores must be >= 1"), std::string::npos) << s;
}

TEST(SessionConfigValidation, RejectsNonPowerOfTwoCacheLine) {
  SessionConfig cfg;
  cfg.board.memory = mem::MemConfig{};
  cfg.board.memory->icache.line_bytes = 48;  // not a power of two
  const Status s = cfg.validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("icache.line_bytes"), std::string::npos) << s;
  EXPECT_NE(s.message().find("48"), std::string::npos)
      << "message should quote the offending value: " << s;
}

TEST(SessionConfigValidation, RejectsZeroBanks) {
  SessionConfig cfg;
  cfg.board.memory = mem::MemConfig{};
  cfg.board.memory->memory.banks = 0;
  const Status s = cfg.validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("memory.banks must be > 0"), std::string::npos)
      << s;
}

TEST(SessionConfigValidation, BuilderCoresAndMemoryRoundTrip) {
  auto result = SessionConfigBuilder{}.cores(2).memory(mem::MemConfig{}).build();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().board.rtos.cores, 2u);
  ASSERT_TRUE(result.value().board.memory.has_value());
  // The same builder chain without the hierarchy must fail with the precise
  // cross-field message.
  auto bad = SessionConfigBuilder{}.cores(2).build();
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("requires a memory hierarchy"),
            std::string::npos)
      << bad.status();
}

TEST(SessionConfigValidation, DefaultAndUntimedConfigsAreValid) {
  SessionConfig cfg;
  EXPECT_TRUE(cfg.validate().ok()) << cfg.validate();
  cfg.set_untimed();
  EXPECT_TRUE(cfg.validate().ok()) << cfg.validate();
  // Untimed mode ignores t_sync, so zero is fine there.
  cfg.cosim.t_sync = 0;
  EXPECT_TRUE(cfg.validate().ok()) << cfg.validate();
}

TEST(SessionConfigBuilderTest, BuildsValidatedConfig) {
  auto result = SessionConfigBuilder{}
                    .inproc()
                    .t_sync(250)
                    .cycles_per_tick(5)
                    .observability()
                    .max_trace_events(1024)
                    .build();
  ASSERT_TRUE(result.ok()) << result.status();
  const SessionConfig& cfg = result.value();
  EXPECT_EQ(cfg.transport, TransportKind::kInProc);
  EXPECT_EQ(cfg.cosim.t_sync, 250u);
  EXPECT_EQ(cfg.board.rtos.cycles_per_tick, 5u);
  EXPECT_TRUE(cfg.obs.enabled);
  EXPECT_EQ(cfg.obs.max_trace_events, 1024u);
}

TEST(SessionConfigBuilderTest, BuildReturnsStatusOnBadConfig) {
  auto result = SessionConfigBuilder{}.t_sync(0).build();
  EXPECT_FALSE(result.ok());
  EXPECT_THROW((void)SessionConfigBuilder{}.t_sync(0).build_or_throw(),
               std::invalid_argument);
}

// The redesign's core compatibility promise: the legacy stats() views and
// the vhp::obs metrics registry are the same numbers — stats() is a view
// over the registry, not a second set of counters that could drift.
TEST_P(SessionTest, ObsMetricsMatchLegacyStats) {
  SessionConfig cfg;
  cfg.transport = GetParam();
  cfg.cosim.t_sync = 20;
  cfg.board.rtos.cycles_per_tick = 10;
  cfg.obs.enabled = true;
  CosimSession session{cfg};

  EchoDevice echo{session.hw()};
  auto& board = session.board();
  rtos::Semaphore reply_ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { reply_ready.post(); });
  bool done = false;
  board.spawn_app("parity_app", 8, [&] {
    for (u32 i = 0; i < 3; ++i) {
      ASSERT_TRUE(board.dev_write(0x0, DriverCodec<u32>::encode(i)).ok());
      reply_ready.wait();
      ASSERT_TRUE(board.dev_read(0x4, 4).ok());
    }
    done = true;
  });
  session.start_board();
  for (int chunk = 0; chunk < 400 && !done; ++chunk) {
    ASSERT_TRUE(session.run_cycles(50).ok());
  }
  session.finish();
  ASSERT_TRUE(done);

  auto& metrics = session.obs().metrics();
  const auto hw = session.hw().stats();
  EXPECT_GT(hw.syncs, 0u);
  EXPECT_EQ(metrics.counter("cosim.syncs").value(), hw.syncs);
  EXPECT_EQ(metrics.counter("cosim.data_writes").value(), hw.data_writes);
  EXPECT_EQ(metrics.counter("cosim.data_reads").value(), hw.data_reads);
  EXPECT_EQ(metrics.counter("cosim.interrupts_sent").value(),
            hw.interrupts_sent);
  EXPECT_EQ(metrics.counter("cosim.acks_received").value(), hw.acks_received);

  const auto bd = board.stats();
  EXPECT_EQ(metrics.counter("board.interrupts_received").value(),
            bd.interrupts_received);
  EXPECT_EQ(metrics.counter("board.clock_ticks_received").value(),
            bd.clock_ticks_received);
  EXPECT_EQ(metrics.counter("board.acks_sent").value(), bd.acks_sent);
  EXPECT_EQ(metrics.counter("board.dev_reads").value(), bd.dev_reads);
  EXPECT_EQ(metrics.counter("board.dev_writes").value(), bd.dev_writes);

  // Protocol symmetry recorded on both sides of the link (the board may
  // have acked one final tick the kernel no longer waited for at finish).
  EXPECT_LE(hw.acks_received, bd.acks_sent);
  EXPECT_LE(bd.acks_sent - hw.acks_received, 1u);
  // Each sync produced one RTT sample.
  EXPECT_EQ(session.obs()
                .metrics()
                .histogram("cosim.sync_rtt_ns")
                .count(),
            hw.syncs);

  // The enabled session produced trace events and a parseable dump pair.
  EXPECT_GT(session.obs().tracer().event_count(), 0u);
  const std::string trace = session.obs().trace_json();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("cosim.sync"), std::string::npos);
  const std::string dump = session.obs().metrics_json();
  EXPECT_NE(dump.find("\"cosim.syncs\""), std::string::npos);
  EXPECT_NE(dump.find("\"rtos.context_switches\""), std::string::npos);
  EXPECT_NE(dump.find("\"cosim.wall.ack_wait_ns\""), std::string::npos);
  EXPECT_NE(dump.find("\"net.hw.data.tx_frames\""), std::string::npos);
}

TEST(SessionObsTest, DisabledSessionKeepsCountersButNoTrace) {
  SessionConfig cfg;  // obs.enabled defaults to false
  cfg.cosim.t_sync = 20;
  CosimSession session{cfg};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(200).ok());
  session.finish();
  EXPECT_FALSE(session.obs().enabled());
  EXPECT_EQ(session.obs().tracer().event_count(), 0u);
  // Counters (the stats() backing store) still counted.
  EXPECT_EQ(session.obs().metrics().counter("cosim.syncs").value(),
            session.hw().stats().syncs);
  EXPECT_GT(session.hw().stats().syncs, 0u);
}

}  // namespace
}  // namespace vhp::cosim
