// Differential fuzz tests for the deterministic parallel kernel — fiber
// variant: every netlist includes thread processes (dynamic waits,
// wait_with_timeout, wait_any), so this suite carries the plain
// "kernel-par" label and stays out of the tsan preset (ThreadSanitizer
// cannot follow swapcontext; the fiber-free twin lives in
// kernel_parallel_tsan_test.cpp).
#include <gtest/gtest.h>

#include <string>

#include "kernel_parallel_fuzz.hpp"

namespace vhp::sim {
namespace {

void expect_bit_identical(const FuzzResult& serial, const FuzzResult& par) {
  ASSERT_EQ(par.finals.size(), serial.finals.size());
  for (std::size_t i = 0; i < serial.finals.size(); ++i) {
    ASSERT_EQ(par.finals[i], serial.finals[i]) << "signal index " << i;
  }
  EXPECT_EQ(par.delta_count, serial.delta_count);
  EXPECT_EQ(par.end_time, serial.end_time);
  EXPECT_EQ(par.islands, serial.islands);
  EXPECT_EQ(par.spawned, serial.spawned);
  ASSERT_EQ(par.trace.size(), serial.trace.size());
  for (std::size_t i = 0; i < serial.trace.size(); ++i) {
    ASSERT_TRUE(par.trace[i] == serial.trace[i])
        << "trace entry " << i << ": t=" << serial.trace[i].time << " '"
        << serial.trace[i].name << "' vs t=" << par.trace[i].time << " '"
        << par.trace[i].name << "'";
  }
}

TEST(KernelParallelFuzz, BitIdenticalAcrossWorkerCounts) {
  std::size_t total_spawned = 0;
  u64 total_deltas = 0;
  for (u64 seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FuzzConfig cfg;
    cfg.seed = seed * 7919;
    const FuzzResult serial = run_fuzz_net(cfg, 0);
    ASSERT_GT(serial.islands, 1u) << "netlist degenerated to one island";
    ASSERT_FALSE(serial.trace.empty()) << "netlist produced no activity";
    total_spawned += serial.spawned;
    total_deltas += serial.delta_count;
    for (unsigned lanes : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      expect_bit_identical(serial, run_fuzz_net(cfg, lanes));
    }
  }
  // The generator really exercised the hard paths: mid-simulation
  // process/signal creation and nontrivial delta traffic.
  EXPECT_GT(total_spawned, 0u);
  EXPECT_GT(total_deltas, 1000u);
}

TEST(KernelParallelFuzz, ReArmingParallelMidRunStaysIdentical) {
  // Flipping between serial and parallel between run_until legs must not
  // change anything observable either (the partition survives, the pool is
  // re-created lazily).
  FuzzConfig cfg;
  cfg.seed = 1234;
  const FuzzResult serial = run_fuzz_net(cfg, 0);

  Kernel kernel;
  kernel.set_delta_limit(1u << 20);
  std::vector<FuzzTraceEntry> trace;
  Rng build_rng{cfg.seed};
  std::vector<std::unique_ptr<FuzzModule>> modules;
  std::vector<FuzzModule*> raw;
  for (std::size_t i = 0; i < cfg.n_modules; ++i) {
    modules.push_back(
        std::make_unique<FuzzModule>(kernel, i, cfg, build_rng, &trace));
    raw.push_back(modules.back().get());
  }
  for (FuzzModule* m : raw) m->connect(raw, build_rng);

  kernel.run_until(cfg.run_time / 4);
  kernel.set_parallel(3);
  kernel.run_until(cfg.run_time / 2);
  kernel.set_parallel(0);
  kernel.run_until(3 * cfg.run_time / 4);
  kernel.set_parallel(2);
  kernel.run_until(cfg.run_time);

  std::vector<u64> finals;
  for (FuzzModule* m : raw) {
    for (const Signal<u64>* s : m->signals()) finals.push_back(s->read());
  }
  EXPECT_EQ(finals, serial.finals);
  EXPECT_EQ(kernel.delta_count(), serial.delta_count);
}

}  // namespace
}  // namespace vhp::sim
