// Replay transport tests: the causality and virtual-time gates of
// net::ReplaySession at channel level, the Message-aware field diff, and the
// ISSUE acceptance round-trip — a recorded co-simulation replayed into a
// lone CosimKernel reproduces the identical virtual-time trajectory, and a
// perturbed recording names the first divergent frame.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "vhp/common/checksum.hpp"
#include "vhp/cosim/session.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

namespace vhp {
namespace {

using obs::LinkDir;
using obs::LinkPort;

/// A FrameRecord the way record_link would have captured `msg`.
obs::FrameRecord msg_frame(u64 seq, LinkPort port, LinkDir dir,
                           const net::Message& msg, u64 hw_cycle = 0) {
  obs::FrameRecord r;
  r.seq = seq;
  r.port = port;
  r.dir = dir;
  Bytes body = net::encode(msg);
  r.msg_type = body.empty() ? 0 : body[0];
  r.payload_size = static_cast<u32>(body.size());
  r.digest = crc32(body);
  r.payload = std::move(body);
  r.hw_cycle = hw_cycle;
  return r;
}

/// The hw side of a one-sync conversation: handshake ack, clock tick, ack.
obs::Recording tiny_hw_recording() {
  obs::Recording rec;
  rec.meta.side = "hw";
  rec.frames.push_back(
      msg_frame(0, LinkPort::kClock, LinkDir::kRx, net::TimeAck{0}));
  rec.frames.push_back(
      msg_frame(1, LinkPort::kClock, LinkDir::kTx, net::ClockTick{20, 2}));
  rec.frames.push_back(
      msg_frame(2, LinkPort::kClock, LinkDir::kRx, net::TimeAck{2}));
  return rec;
}

TEST(MessageFieldDiffTest, NamesTheFirstDifferingField) {
  const auto tick_a = msg_frame(0, LinkPort::kClock, LinkDir::kTx,
                                net::ClockTick{100, 100});
  const auto tick_b =
      msg_frame(0, LinkPort::kClock, LinkDir::kTx, net::ClockTick{100, 60});
  EXPECT_EQ(net::message_field_diff(tick_a, tick_b),
            "ClockTick.n_ticks: 100 vs 60");

  const auto wr_a = msg_frame(0, LinkPort::kData, LinkDir::kRx,
                              net::DataWrite{4, Bytes{1, 2}});
  const auto wr_b = msg_frame(0, LinkPort::kData, LinkDir::kRx,
                              net::DataWrite{8, Bytes{1, 2}});
  EXPECT_EQ(net::message_field_diff(wr_a, wr_b), "DataWrite.address: 4 vs 8");

  const auto wr_c = msg_frame(0, LinkPort::kData, LinkDir::kRx,
                              net::DataWrite{4, Bytes{1, 9}});
  EXPECT_EQ(net::message_field_diff(wr_a, wr_c), "DataWrite.data[1]: 2 vs 9");

  // Truncated payloads cannot decode — the byte-level report takes over.
  auto cut = tick_a;
  cut.truncated = true;
  EXPECT_EQ(net::message_field_diff(cut, tick_b), "");
}

TEST(ReplaySessionTest, ServesTheRecordedConversation) {
  auto opened = net::ReplaySession::open(tiny_hw_recording());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();
  net::CosimLink link = replay->make_link();

  // The handshake ack (seq 0) precedes every recorded tx: deliverable now.
  auto first = link.clock->try_recv();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first.value().has_value());
  auto first_msg = net::decode(*first.value());
  ASSERT_TRUE(first_msg.ok());
  EXPECT_EQ(std::get<net::TimeAck>(first_msg.value()).board_tick, 0u);

  // The second ack (seq 2) sits behind the unsent tick (seq 1): held back.
  auto held = link.clock->try_recv();
  ASSERT_TRUE(held.ok()) << held.status();
  EXPECT_FALSE(held.value().has_value());

  // Re-sending the recorded tick opens the causality gate.
  ASSERT_TRUE(net::send_msg(*link.clock, net::ClockTick{20, 2}).ok());
  auto second = link.clock->recv(std::chrono::milliseconds{100});
  ASSERT_TRUE(second.ok()) << second.status();
  auto second_msg = net::decode(second.value());
  ASSERT_TRUE(second_msg.ok());
  EXPECT_EQ(std::get<net::TimeAck>(second_msg.value()).board_tick, 2u);

  EXPECT_TRUE(replay->complete());
  EXPECT_EQ(replay->consumed(), 3u);
  EXPECT_EQ(replay->total(), 3u);
  EXPECT_FALSE(replay->divergence().has_value());

  // Past the end of the recording there is nothing left to impersonate.
  auto done = link.clock->recv(std::chrono::milliseconds{5});
  EXPECT_EQ(done.status().code(), StatusCode::kAborted);
}

TEST(ReplaySessionTest, MismatchedSendDiverges) {
  auto opened = net::ReplaySession::open(tiny_hw_recording());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();
  net::CosimLink link = replay->make_link();

  Status s = net::send_msg(*link.clock, net::ClockTick{20, 60});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  const auto divergence = replay->divergence();
  ASSERT_TRUE(divergence.has_value());
  const obs::Divergence& d = *divergence;
  EXPECT_EQ(d.seq, 1u);
  EXPECT_EQ(d.port, LinkPort::kClock);
  EXPECT_EQ(d.dir, LinkDir::kTx);
  EXPECT_NE(d.reason.find("ClockTick.n_ticks: 2 vs 60"), std::string::npos)
      << d.reason;
  EXPECT_FALSE(replay->complete());
}

TEST(ReplaySessionTest, ExtraSendBeyondRecordingDiverges) {
  auto opened = net::ReplaySession::open(tiny_hw_recording());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();
  net::CosimLink link = replay->make_link();

  ASSERT_TRUE(net::send_msg(*link.clock, net::ClockTick{20, 2}).ok());
  Status s = net::send_msg(*link.clock, net::ClockTick{40, 2});
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(replay->divergence().has_value());
  EXPECT_NE(replay->divergence()->reason.find("extra frame"),
            std::string::npos);
}

TEST(ReplaySessionTest, RejectsTruncatedRxFrames) {
  obs::Recording rec = tiny_hw_recording();
  rec.frames[2].truncated = true;
  rec.frames[2].payload.resize(1);
  auto opened = net::ReplaySession::open(std::move(rec));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(opened.status().to_string().find("not replayable"),
            std::string::npos);
}

TEST(ReplaySessionTest, VirtualTimeGateHoldsRxUntilTheRecordedStamp) {
  obs::Recording rec;
  rec.meta.side = "hw";  // gate on hw_cycle
  rec.frames.push_back(msg_frame(0, LinkPort::kClock, LinkDir::kRx,
                                 net::TimeAck{1}, /*hw_cycle=*/100));
  u64 now = 0;
  net::ReplayOptions options;
  options.time_source = [&now] { return now; };
  auto opened = net::ReplaySession::open(std::move(rec), std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();
  net::CosimLink link = replay->make_link();

  auto early = link.clock->try_recv();
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early.value().has_value());  // clock at 0 < recorded 100
  now = 99;
  EXPECT_FALSE(link.clock->try_recv().value().has_value());
  now = 100;
  auto due = link.clock->try_recv();
  ASSERT_TRUE(due.ok());
  ASSERT_TRUE(due.value().has_value());
  EXPECT_TRUE(replay->complete());
}

// ---------------------------------------------------------------------------
// Integration: record a real co-simulation, replay it into a lone kernel.

/// The session tests' echo device: write v to 0x0, read v+1 at 0x4 plus an
/// interrupt pulse. Deterministic given the same driver traffic — exactly
/// what replay needs.
struct EchoDevice : sim::Module {
  cosim::DriverIn<u32> in;
  cosim::DriverOut<u32> out;
  sim::BoolSignal& irq_line;
  u64 requests = 0;

  explicit EchoDevice(cosim::CosimKernel& hw)
      : Module(hw.kernel(), "echo"),
        in(hw.kernel(), hw.registry(), "echo.in", 0x0),
        out(hw.registry(), "echo.out", 0x4),
        irq_line(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    method("process",
           [this] {
             ++requests;
             out.write(in.read() + 1);
             irq_line.write(true);
           })
        .sensitive(in.data_written_event())
        .dont_initialize();
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq_line.posedge_event());
        sim::wait(2 * period);
        irq_line.write(false);
      }
    });
    hw.watch_interrupt(irq_line, board::Board::kDeviceVector);
  }
};

struct RecordedRun {
  obs::Recording hw_recording;
  u64 cycles = 0;
  u64 requests = 0;
  std::size_t board_frames = 0;
};

/// Runs the echo workload with the flight recorder on and returns the
/// written-and-reloaded hw-side recording (exercising the full disk path).
RecordedRun record_echo_run(const std::string& tag) {
  const auto cfg = cosim::SessionConfigBuilder{}
                       .inproc()
                       .t_sync(20)
                       .cycles_per_tick(10)
                       .record(true)
                       .postmortem_prefix("")
                       .build_or_throw();
  cosim::CosimSession session{cfg};
  EchoDevice echo{session.hw()};

  auto& board = session.board();
  rtos::Semaphore reply_ready{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { reply_ready.post(); });
  constexpr u32 kRounds = 5;
  std::vector<u32> replies;
  board.spawn_app("echo_app", 8, [&] {
    for (u32 i = 0; i < kRounds; ++i) {
      if (!board.dev_write(0x0, cosim::DriverCodec<u32>::encode(100 + i))
               .ok()) {
        return;
      }
      reply_ready.wait();
      auto resp = board.dev_read(0x4, 4);
      if (!resp.ok()) return;
      u32 value = 0;
      (void)cosim::DriverCodec<u32>::decode(resp.value(), value);
      replies.push_back(value);
      board.kernel().consume(50);
    }
  });

  session.start_board();
  for (int chunk = 0; chunk < 400 && replies.size() < kRounds; ++chunk) {
    EXPECT_TRUE(session.run_cycles(50).ok());
  }
  session.finish();
  EXPECT_EQ(replies.size(), static_cast<std::size_t>(kRounds));

  const std::string prefix = ::testing::TempDir() + "replay_it_" + tag;
  EXPECT_TRUE(session.write_recordings(prefix).ok());
  auto loaded = obs::read_recording(prefix + ".hw.vhprec");
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  auto board_rec = obs::read_recording(prefix + ".board.vhprec");
  EXPECT_TRUE(board_rec.ok()) << board_rec.status();
  std::remove((prefix + ".hw.vhprec").c_str());
  std::remove((prefix + ".board.vhprec").c_str());

  RecordedRun run;
  run.hw_recording = std::move(loaded).value();
  run.cycles = session.hw().cycle();
  run.requests = echo.requests;
  run.board_frames = board_rec.ok() ? board_rec.value().frames.size() : 0;
  EXPECT_EQ(run.hw_recording.meta.side, "hw");
  EXPECT_EQ(run.hw_recording.meta.tags.at("t_sync"), "20");
  if (board_rec.ok()) {
    EXPECT_EQ(board_rec.value().meta.side, "board");
  }
  return run;
}

TEST(RecordReplayTest, RecordingReplaysIntoLoneKernelIdentically) {
  RecordedRun run = record_echo_run("ok");
  ASSERT_GT(run.hw_recording.frames.size(), 0u);
  ASSERT_GT(run.cycles, 0u);
  // Both sides saw the same conversation (the board may have recorded one
  // final ack the kernel no longer waited for at finish).
  EXPECT_GE(run.board_frames, run.hw_recording.frames.size());
  EXPECT_LE(run.board_frames - run.hw_recording.frames.size(), 1u);
  const std::size_t total_frames = run.hw_recording.frames.size();

  auto opened = net::ReplaySession::open(std::move(run.hw_recording));
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();

  cosim::CosimConfig cc;
  cc.t_sync = 20;  // the recorded session's knobs (echoed in the tags)
  cosim::CosimKernel kernel{replay->make_link(), cc};
  replay->set_time_source([&kernel] { return kernel.cycle(); });
  EchoDevice echo{kernel};

  while (kernel.cycle() < run.cycles) {
    ASSERT_TRUE(kernel.run_cycles(50).ok());
  }
  kernel.finish();

  ASSERT_FALSE(replay->divergence().has_value())
      << replay->divergence()->to_string();
  EXPECT_EQ(kernel.cycle(), run.cycles);  // identical trajectory
  EXPECT_EQ(echo.requests, run.requests);  // identical device activity
  EXPECT_TRUE(replay->complete());
  EXPECT_EQ(replay->consumed(), total_frames);
}

TEST(RecordReplayTest, PerturbedRecordingNamesTheFirstDivergentFrame) {
  RecordedRun run = record_echo_run("diverge");

  // Corrupt the first recorded CLOCK_TICK the hw side sent: the replayed
  // kernel will send the original and must be called out on that frame.
  std::size_t victim = run.hw_recording.frames.size();
  for (std::size_t i = 0; i < run.hw_recording.frames.size(); ++i) {
    const auto& f = run.hw_recording.frames[i];
    if (f.port == LinkPort::kClock && f.dir == LinkDir::kTx &&
        f.msg_type == static_cast<u8>(net::MsgType::kClockTick)) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, run.hw_recording.frames.size());
  obs::FrameRecord& frame = run.hw_recording.frames[victim];
  auto msg = net::decode(frame.payload);
  ASSERT_TRUE(msg.ok());
  auto tick = std::get<net::ClockTick>(msg.value());
  tick.n_ticks += 1;
  frame.payload = net::encode(net::Message{tick});
  frame.payload_size = static_cast<u32>(frame.payload.size());
  frame.digest = crc32(frame.payload);
  const u64 victim_seq = frame.seq;

  auto opened = net::ReplaySession::open(std::move(run.hw_recording));
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto replay = std::move(opened).value();
  cosim::CosimConfig cc;
  cc.t_sync = 20;
  cosim::CosimKernel kernel{replay->make_link(), cc};
  replay->set_time_source([&kernel] { return kernel.cycle(); });
  EchoDevice echo{kernel};

  Status status;
  while (kernel.cycle() < run.cycles) {
    status = kernel.run_cycles(50);
    if (!status.ok()) break;
  }
  kernel.finish();

  EXPECT_FALSE(status.ok());
  const auto divergence = replay->divergence();
  ASSERT_TRUE(divergence.has_value());
  const obs::Divergence& d = *divergence;
  EXPECT_EQ(d.seq, victim_seq);
  EXPECT_EQ(d.port, LinkPort::kClock);
  EXPECT_EQ(d.dir, LinkDir::kTx);
  EXPECT_NE(d.reason.find("ClockTick.n_ticks"), std::string::npos)
      << d.reason;
}

}  // namespace
}  // namespace vhp
