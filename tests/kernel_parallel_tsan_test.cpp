// Fiber-free parallel-kernel suite: the differential fuzzer with thread
// processes disabled (methods only — no ucontext, so ThreadSanitizer can
// watch the worker pool race-free), plus unit tests for the partitioner,
// the island contract enforcement, the worker pool and the timed-queue
// pruning fix. Carries the composite label "kernel-par-tsan" so both
// `ctest -L tsan` (the tsan preset) and `ctest -L kernel-par` (the
// scripts/check.sh gate) select it.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel_parallel_fuzz.hpp"
#include "vhp/sim/worker_pool.hpp"

namespace vhp::sim {
namespace {

FuzzConfig tsan_config(u64 seed) {
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.threads = false;  // no fibers under TSan
  cfg.run_time = 1500;
  return cfg;
}

TEST(KernelParallelFuzzTsan, BitIdenticalAcrossWorkerCounts) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const FuzzConfig cfg = tsan_config(seed * 104729);
    const FuzzResult serial = run_fuzz_net(cfg, 0);
    ASSERT_GT(serial.islands, 1u);
    for (unsigned lanes : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      const FuzzResult par = run_fuzz_net(cfg, lanes);
      ASSERT_EQ(par.finals, serial.finals);
      EXPECT_EQ(par.delta_count, serial.delta_count);
      EXPECT_EQ(par.end_time, serial.end_time);
      ASSERT_EQ(par.trace.size(), serial.trace.size());
      for (std::size_t i = 0; i < serial.trace.size(); ++i) {
        ASSERT_TRUE(par.trace[i] == serial.trace[i]) << "trace entry " << i;
      }
    }
  }
}

TEST(KernelParallelFuzzTsan, ParallelStatsReportTheRun) {
  const FuzzConfig cfg = tsan_config(99991);
  Kernel kernel;
  kernel.set_delta_limit(1u << 20);
  kernel.set_parallel(2);
  std::vector<FuzzTraceEntry> trace;
  Rng build_rng{cfg.seed};
  std::vector<std::unique_ptr<FuzzModule>> modules;
  std::vector<FuzzModule*> raw;
  for (std::size_t i = 0; i < cfg.n_modules; ++i) {
    modules.push_back(
        std::make_unique<FuzzModule>(kernel, i, cfg, build_rng, &trace));
    raw.push_back(modules.back().get());
  }
  for (FuzzModule* m : raw) m->connect(raw, build_rng);
  kernel.run_until(cfg.run_time);

  EXPECT_EQ(kernel.parallel_lanes(), 2u);
  const Kernel::ParallelStats stats = kernel.parallel_stats();
  EXPECT_GT(stats.islands, 1u);
  EXPECT_GT(stats.parallel_deltas, 0u);
  EXPECT_GT(stats.repartitions, 0u);
  ASSERT_EQ(stats.lanes.size(), 2u);
  // Which lane wins an island is a scheduling race (the worker can steal
  // every island before lane 0 claims one), so only the totals are stable.
  u64 islands_run = 0;
  u64 busy_ns = 0;
  for (const auto& lane : stats.lanes) {
    islands_run += lane.islands_run;
    busy_ns += lane.busy_ns;
  }
  EXPECT_GT(islands_run, 0u);
  EXPECT_GT(busy_ns, 0u);
}

// ---------------------------------------------------------------------------
// Partition shape: which construction patterns merge islands, which cut.

struct Leaf : Module {
  Signal<u64>& out;
  Event ev;
  explicit Leaf(Kernel& k, const std::string& name)
      : Module(k, name), out(make_signal<u64>("out")), ev(k, qualify("ev")) {
    method("tick", [this] { out.write(out.read() + 1); })
        .sensitive(ev)
        .dont_initialize();
  }
  using Module::method;
  using Module::thread;
};

TEST(Partition, IndependentModulesAreSeparateIslands) {
  Kernel k;
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  EXPECT_EQ(k.island_count(), 2u);
}

TEST(Partition, SignalSensitivityIsACutEdge) {
  Kernel k;
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  // Listening to a foreign SIGNAL keeps the modules separate: the signal's
  // delta-delayed value is the race-free communication channel.
  b.method("watch", [] {}).sensitive(a.out.value_changed_event())
      .dont_initialize();
  EXPECT_EQ(k.island_count(), 2u);
}

TEST(Partition, PlainEventSensitivityGluesIslands) {
  Kernel k;
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  // Listening to a foreign PLAIN event means the notifier mutates this
  // process's runnable state directly — one island.
  b.method("watch", [] {}).sensitive(a.ev).dont_initialize();
  EXPECT_EQ(k.island_count(), 1u);
}

TEST(Partition, CoLocateMergesAffinityGroups) {
  Kernel k;
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  Leaf c{k, "c"};
  k.co_locate(a.affinity_group(), b.affinity_group());
  EXPECT_EQ(k.island_count(), 2u);
  k.co_locate(b.affinity_group(), c.affinity_group());
  EXPECT_EQ(k.island_count(), 1u);
}

TEST(Partition, ClockStaysItsOwnIslandBehindItsEdgeEvents) {
  Kernel k;
  Clock clk{k, "clk", 2};
  Leaf a{k, "a"};
  a.method("on_clk", [] {}).sensitive(clk.posedge_event()).dont_initialize();
  // The clock's toggle process is entity-unioned with its signal; the
  // posedge sensitivity is signal-owned, i.e. a cut edge.
  EXPECT_EQ(k.island_count(), 2u);
}

TEST(Partition, DyingKernelClearsTheConstructionContext) {
  // Module construction leak-forwards its affinity group into the
  // thread-local construction context on purpose (so members built after
  // the Module subobject inherit it). The kernel's destructor must
  // invalidate a context still pointing at it: the tag is a raw address,
  // and a successor kernel allocated at the same spot would inherit the
  // dead kernel's group id — colliding with its own freshly numbered
  // groups and merging unrelated islands (a clock co-scheduled with a
  // router testbench, in the originally observed failure).
  {
    Kernel k;
    Leaf a{k, "a"};
    EXPECT_EQ(Kernel::construction_context().first, &k);
    EXPECT_EQ(Kernel::construction_context().second, a.affinity_group());
  }
  EXPECT_EQ(Kernel::construction_context().first, nullptr);
  EXPECT_EQ(Kernel::construction_context().second, 0u);

  // A fresh kernel on the same thread numbers its groups from 1 again and
  // keeps non-module entities (ambient construction) out of any group.
  Kernel k2;
  Event loose{k2, "loose"};
  Leaf b{k2, "b"};
  Leaf c{k2, "c"};
  Leaf d{k2, "d"};
  b.method("watch", [] {}).sensitive(loose).dont_initialize();
  // loose has no affinity: it glues only through its sensitivity edge, so
  // c and d stay separate islands from b.
  EXPECT_EQ(k2.island_count(), 3u);
}

TEST(Partition, MidSimulationSpawnLandsInTheOwningIsland) {
  Kernel k;
  k.set_parallel(2);
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  bool spawned_ran = false;
  a.method("spawn_once", [&, armed = false]() mutable {
    if (armed) return;
    armed = true;
    a.method("spawned", [&] { spawned_ran = true; }).sensitive(a.ev);
  });
  k.run(1);
  EXPECT_EQ(k.island_count(), 2u);  // the child merged into a's island
  a.ev.notify_delta();
  k.run(1);
  EXPECT_TRUE(spawned_ran);
}

// ---------------------------------------------------------------------------
// Island-contract enforcement: cross-island eval-phase mutations throw.
// Single-lane runs keep detection deterministic (no real data race while
// the contract is being violated on purpose).

TEST(IslandContract, CrossIslandSignalWriteThrows) {
  Kernel k;
  k.set_parallel(1);
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  b.method("offend", [&] { a.out.write(42); });
  EXPECT_THROW(k.run(1), std::logic_error);
}

TEST(IslandContract, CrossIslandNotifyThrows) {
  Kernel k;
  k.set_parallel(1);
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  b.method("offend", [&] { a.ev.notify_delta(); });
  EXPECT_THROW(k.run(1), std::logic_error);
}

TEST(IslandContract, CoLocateLegalizesTheSharing) {
  Kernel k;
  k.set_parallel(1);
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  b.method("drive", [&] { a.ev.notify_delta(); });
  k.co_locate(a.affinity_group(), b.affinity_group());
  EXPECT_NO_THROW(k.run(1));
  EXPECT_EQ(a.out.read(), 1u);  // a's tick ran off b's notification
}

TEST(IslandContract, SerialKernelNeverChecks) {
  Kernel k;  // parallel off: the legacy path must stay permissive
  Leaf a{k, "a"};
  Leaf b{k, "b"};
  b.method("offend", [&] { a.out.write(42); });
  EXPECT_NO_THROW(k.run(1));
  EXPECT_EQ(a.out.read(), 42u);
}

// ---------------------------------------------------------------------------
// WorkerPool: every item runs exactly once, across epochs, on any lane.

TEST(WorkerPool, RunsEveryItemExactlyOnce) {
  WorkerPool pool{4};
  EXPECT_EQ(pool.lanes(), 4u);
  constexpr std::size_t kItems = 512;
  std::vector<std::atomic<int>> hits(kItems);
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.run(kItems, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
          << "item " << i << " epoch " << epoch;
    }
  }
  u64 items = 0;
  for (const auto& lane : pool.stats()) items += lane.items;
  EXPECT_EQ(items, 50u * kItems);
}

TEST(WorkerPool, SingleLaneRunsInline) {
  WorkerPool pool{1};
  EXPECT_EQ(pool.lanes(), 1u);
  std::vector<std::size_t> order;
  pool.run(8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPool, EmptyRunIsANoOp) {
  WorkerPool pool{2};
  pool.run(0, [](std::size_t) { FAIL() << "no items to run"; });
}

// ---------------------------------------------------------------------------
// Timed-queue pruning (satellite fix): cancel-heavy workloads must not grow
// the queue without bound, and stale entries are dropped lazily by scans.

TEST(KernelTimedQueue, CancelHeavyBurstIsFullyPruned) {
  Kernel k;
  Event e{k, "e"};
  for (int i = 0; i < 10000; ++i) {
    e.notify_at(5);
    e.cancel();
  }
  // Every entry is stale; the first scan erases them all.
  EXPECT_FALSE(k.next_event_time().has_value());
  EXPECT_EQ(k.timed_queue_size(), 0u);
}

TEST(KernelTimedQueue, RescheduleKeepsOnlyABoundedTail) {
  Kernel k;
  Event e{k, "e"};
  // Each earlier re-notify invalidates the previous (later) entry.
  for (int i = 0; i < 1000; ++i) e.notify_at(2000 - i);
  ASSERT_TRUE(k.next_event_time().has_value());
  EXPECT_EQ(*k.next_event_time(), 1001u);
  // The valid entry sorts first, so the scan stops there; the stale tail
  // dies when the event does.
  e.cancel();
  EXPECT_FALSE(k.next_event_time().has_value());
  EXPECT_EQ(k.timed_queue_size(), 0u);
}

TEST(KernelTimedQueue, CancelHeavyRunningWorkloadStaysBounded) {
  Kernel k;
  struct Canceller : Module {
    Event tick;
    Event victim;
    explicit Canceller(Kernel& kk) : Module(kk, "c"),
                                     tick(kk, "c.tick"),
                                     victim(kk, "c.victim") {
      method("step", [this] {
        tick.notify_at(1);
        victim.notify_at(5);
        victim.cancel();
      }).sensitive(tick);
    }
  } c{k};
  k.run(5000);
  // 5000 cancelled notifications passed through; the advance scans prune
  // everything that slides in front of the next valid tick.
  EXPECT_LT(k.timed_queue_size(), 50u);
  ASSERT_TRUE(k.next_event_time().has_value());
}

}  // namespace
}  // namespace vhp::sim
