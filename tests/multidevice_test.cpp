// Multi-device co-simulation: two independent devices under design in the
// same HDL kernel, each with its own address range and interrupt vector,
// driven by two application threads on one board — the "extending an
// existing system with new hardware" scenario the paper motivates, scaled
// to several prototypes at once. Also covers Kernel::join and the
// cycles_per_sim_cycle clock-domain scaling.
#include <gtest/gtest.h>

#include "vhp/cosim/session.hpp"
#include "vhp/rtos/sync.hpp"
#include "vhp/sim/module.hpp"

namespace vhp::cosim {
namespace {

/// Parameterizable compute device: writing X to `base` publishes
/// X*multiplier at `base+4` and pulses its own interrupt line.
struct MulDevice : sim::Module {
  DriverIn<u32> in;
  DriverOut<u32> out;
  sim::BoolSignal& irq;

  MulDevice(CosimKernel& hw, const std::string& name, u32 base, u32 factor,
            u32 vector)
      : Module(hw.kernel(), name),
        in(hw.kernel(), hw.registry(), name + ".in", base),
        out(hw.registry(), name + ".out", base + 4),
        irq(make_bool_signal("irq")) {
    const sim::SimTime period = hw.config().clock_period;
    method("process",
           [this, factor] {
             out.write(in.read() * factor);
             irq.write(true);
           })
        .sensitive(in.data_written_event())
        .dont_initialize();
    thread("clear", [this, period] {
      for (;;) {
        sim::wait(irq.posedge_event());
        sim::wait(2 * period);
        irq.write(false);
      }
    });
    hw.watch_interrupt(irq, vector);
  }
};

TEST(MultiDevice, TwoDevicesTwoVectorsTwoApps) {
  SessionConfig cfg;
  cfg.cosim.t_sync = 25;
  CosimSession session{cfg};

  constexpr u32 kVecA = board::Board::kDeviceVector;  // 16
  constexpr u32 kVecB = 17;
  MulDevice dev_a{session.hw(), "mul3", 0x100, 3, kVecA};
  MulDevice dev_b{session.hw(), "mul7", 0x200, 7, kVecB};

  auto& board = session.board();
  rtos::Semaphore irq_a{board.kernel(), 0};
  rtos::Semaphore irq_b{board.kernel(), 0};
  board.attach_device_dsr([&](u32) { irq_a.post(); });
  board.attach_interrupt(kVecB, [&](u32 vector) {
    EXPECT_EQ(vector, kVecB);
    irq_b.post();
  });

  std::vector<u32> results_a;
  std::vector<u32> results_b;
  auto use_device = [&](u32 base, rtos::Semaphore& irq_sem,
                        std::vector<u32>& results, u32 rounds) {
    for (u32 i = 1; i <= rounds; ++i) {
      ASSERT_TRUE(
          board.dev_write(base, DriverCodec<u32>::encode(i)).ok());
      irq_sem.wait();
      auto resp = board.dev_read(base + 4, 4);
      ASSERT_TRUE(resp.ok());
      u32 v = 0;
      ASSERT_TRUE(DriverCodec<u32>::decode(resp.value(), v));
      results.push_back(v);
      board.kernel().consume(30);
    }
  };
  auto& app_a = board.spawn_app(
      "app_a", 8, [&] { use_device(0x100, irq_a, results_a, 4); });
  board.spawn_app("app_b", 9,
                  [&] { use_device(0x200, irq_b, results_b, 4); });
  bool joined = false;
  board.spawn_app("waiter", 10, [&] {
    board.kernel().join(app_a);
    EXPECT_TRUE(app_a.exited());
    joined = true;
  });

  session.start_board();
  for (int chunk = 0;
       chunk < 2000 && (results_a.size() < 4 || results_b.size() < 4);
       ++chunk) {
    ASSERT_TRUE(session.run_cycles(50).ok());
  }
  // Let the joiner observe the exit.
  for (int chunk = 0; chunk < 200 && !joined; ++chunk) {
    ASSERT_TRUE(session.run_cycles(50).ok());
  }
  session.finish();

  EXPECT_EQ(results_a, (std::vector<u32>{3, 6, 9, 12}));
  EXPECT_EQ(results_b, (std::vector<u32>{7, 14, 21, 28}));
  EXPECT_TRUE(joined);
}

TEST(MultiDevice, ClockDomainScalingGrantsMoreBoardCycles) {
  // cycles_per_sim_cycle = 4: the board CPU runs 4x faster than the HDL
  // clock, so after C simulated cycles it has consumed 4C CPU cycles.
  SessionConfig cfg;
  cfg.cosim.t_sync = 10;
  cfg.board.cycles_per_sim_cycle = 4;
  cfg.board.rtos.cycles_per_tick = 10;
  CosimSession session{cfg};
  session.start_board();
  ASSERT_TRUE(session.run_cycles(500).ok());
  session.finish();
  // 500 sim cycles * 4 = 2000 CPU cycles = 200 ticks.
  EXPECT_EQ(session.board().kernel().tick_count().value(), 200u);
}

}  // namespace
}  // namespace vhp::cosim
