// Adaptive synchronization end-to-end (ISSUE 6 acceptance): the router case
// study must produce the SAME application-level outcome under adaptive
// lookahead grants as under the paper's fixed T_sync — exact packet counts,
// and bit-exact DATA/INT flight recordings. Only the CLOCK traffic may
// differ (that is the point: fewer, larger grants), so recordings are
// compared with CLOCK frames stripped.
//
// Fiber-bound (real RTOS boards), so labeled "adaptive", not "-tsan".
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "vhp/cosim/session.hpp"
#include "vhp/cosim/sync_policy.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/fault/plan.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"
#include "vhp/router/checksum_app.hpp"
#include "vhp/router/testbench.hpp"

namespace vhp::cosim {
namespace {

using namespace std::chrono_literals;

constexpr u64 kTsync = 200;
constexpr u64 kTotalCycles = 30000;

// The adaptive counterpart of kTsync: same cadence when busy, stretched up
// to 10x when the board sleeps. max_quantum stays well under
// gap_cycles * buffer_depth so the router's 4-deep input buffers cannot
// overflow while a board sleeps through a long grant.
SyncPolicy adaptive_policy() {
  return SyncPolicy{}.quantum(kTsync).adaptive().min_quantum(50).max_quantum(
      2000);
}

router::TestbenchConfig testbench_config() {
  router::TestbenchConfig tb_cfg;
  tb_cfg.router.n_ports = 2;
  tb_cfg.router.remote_checksum = true;
  tb_cfg.router.buffer_depth = 4;
  tb_cfg.packets_per_port = 2;
  tb_cfg.gap_cycles = 800;
  tb_cfg.payload_bytes = 8;
  tb_cfg.corrupt_probability = 0.25;
  return tb_cfg;
}

router::ChecksumAppConfig app_config() {
  router::ChecksumAppConfig app_cfg;
  app_cfg.cost_base = 20;
  app_cfg.cost_per_byte = 1;
  return app_cfg;
}

/// The application-visible outcome of one run plus its hw recording.
struct RunResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 syncs = 0;
  bool drained = false;
  std::optional<u64> board_lookahead;
  obs::Recording hw_recording;
};

/// Strips the CLOCK port: adaptive and fixed runs legitimately differ there
/// (grant sizes and ack contents), everything else must be bit-exact.
obs::Recording data_and_int_only(obs::Recording rec) {
  std::erase_if(rec.frames, [](const obs::FrameRecord& f) {
    return f.port == obs::LinkPort::kClock;
  });
  return rec;
}

u64 count_clock_tx(const obs::Recording& rec) {
  u64 n = 0;
  for (const obs::FrameRecord& f : rec.frames) {
    n += f.port == obs::LinkPort::kClock && f.dir == obs::LinkDir::kTx ? 1 : 0;
  }
  return n;
}

/// One two-party router run. `policy` unset = the legacy fixed-T_sync
/// configuration path (t_sync()), exercising the deprecated shim on the way.
RunResult run_session(std::optional<SyncPolicy> policy,
                      const fault::FaultPlan& plan = {},
                      bool recover = false) {
  SessionConfigBuilder builder;
  builder.t_sync(kTsync).cycles_per_tick(10).postmortem_prefix("");
  if (policy.has_value()) builder.sync(*policy);
  fault::RecoveryConfig recovery;
  recovery.enabled = recover;
  recovery.rto = 2ms;
  recovery.rto_max = 50ms;
  builder.fault_plan(plan).recovery(recovery);
  builder.record().record_ring(1u << 14);
  CosimSession session{builder.build_or_throw()};

  router::RouterTestbench tb{session.hw().kernel(), testbench_config(),
                             &session.hw().registry()};
  session.hw().watch_interrupt(tb.router().irq(),
                               board::Board::kDeviceVector);
  router::ChecksumApp app{session.board(), app_config()};

  session.start_board();
  for (u64 cycles = 0; cycles < kTotalCycles; cycles += 500) {
    EXPECT_TRUE(session.run_cycles(500).ok());
  }
  session.finish();

  RunResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.syncs = session.hw().stats().syncs;
  result.drained = tb.traffic_done();
  result.board_lookahead = session.hw().board_lookahead();
  result.hw_recording.meta.side = "hw";
  result.hw_recording.frames = session.obs().hw_recorder().snapshot();
  return result;
}

TEST(AdaptiveSessionTest, RouterMatchesFixedBaselineBitExactly) {
  const RunResult fixed = run_session(std::nullopt);
  const RunResult adaptive = run_session(adaptive_policy());
  ASSERT_TRUE(fixed.drained) << "fixed run did not drain";
  ASSERT_TRUE(adaptive.drained) << "adaptive run did not drain";
  ASSERT_GT(fixed.emitted, 0u);

  // Exact packet-count parity.
  EXPECT_EQ(adaptive.emitted, fixed.emitted);
  EXPECT_EQ(adaptive.forwarded, fixed.forwarded);
  EXPECT_EQ(adaptive.received, fixed.received);
  EXPECT_EQ(adaptive.dropped, fixed.dropped);

  // The adaptive run really adapted: the board advertised lookaheads and
  // the master needed fewer (larger) grants for the same virtual length.
  EXPECT_TRUE(adaptive.board_lookahead.has_value());
  EXPECT_LT(adaptive.syncs, fixed.syncs);
  EXPECT_LT(count_clock_tx(adaptive.hw_recording),
            count_clock_tx(fixed.hw_recording));

  // Bit-exact DATA + INT streams; only CLOCK may differ.
  const auto divergence = obs::diff_recordings(
      data_and_int_only(fixed.hw_recording),
      data_and_int_only(adaptive.hw_recording), &net::message_field_diff);
  EXPECT_FALSE(divergence.has_value())
      << "adaptive run diverged: " << divergence->to_string();
}

TEST(AdaptiveSessionTest, ChaosSoakConvergesUnderAdaptiveGrants) {
  // Satellite: the recovery layer must repair v2 CLOCK traffic too. Seeded
  // drop plans against the adaptive clean run, bit-exact below CLOCK.
  const RunResult clean = run_session(adaptive_policy());
  ASSERT_TRUE(clean.drained);
  for (u64 seed : {3u, 7u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::FaultRule rule;
    rule.kind = fault::FaultKind::kDrop;
    rule.probability = 0.05;
    plan.add(rule);
    const RunResult faulted =
        run_session(adaptive_policy(), plan, /*recover=*/true);
    EXPECT_TRUE(faulted.drained);
    EXPECT_EQ(faulted.emitted, clean.emitted);
    EXPECT_EQ(faulted.forwarded, clean.forwarded);
    EXPECT_EQ(faulted.received, clean.received);
    EXPECT_EQ(faulted.dropped, clean.dropped);
    const auto divergence = obs::diff_recordings(
        data_and_int_only(clean.hw_recording),
        data_and_int_only(faulted.hw_recording), &net::message_field_diff);
    EXPECT_FALSE(divergence.has_value())
        << "faulted adaptive run diverged: " << divergence->to_string();
  }
}

// ---------------------------------------------------------------------------
// The sharded router across a fabric: one verifier board per port.

struct FabricResult {
  u64 emitted = 0;
  u64 forwarded = 0;
  u64 received = 0;
  u64 dropped = 0;
  u64 barriers = 0;
  u64 ticks_sent = 0;
  u64 lookahead_acks = 0;
  bool drained = false;
};

FabricResult run_fabric(std::optional<SyncPolicy> policy) {
  constexpr std::size_t kPorts = 2;
  constexpr u64 kMaxCycles = 200000;
  router::TestbenchConfig tb_cfg = testbench_config();
  tb_cfg.packets_per_port = 3;
  tb_cfg.gap_cycles = 2000;
  tb_cfg.payload_bytes = 16;

  fabric::FabricConfigBuilder builder;
  builder.t_sync(500).watchdog(15000ms);
  if (policy.has_value()) builder.sync(*policy);
  for (std::size_t p = 0; p < kPorts; ++p) {
    builder.add_node("port" + std::to_string(p));
    builder.last_board().rtos.cycles_per_tick = 10;
  }
  fabric::Fabric fab{builder.build_or_throw()};
  std::vector<DriverRegistry*> registries;
  for (std::size_t p = 0; p < kPorts; ++p) {
    registries.push_back(&fab.registry(p));
  }
  router::RouterTestbench tb{fab.kernel(), tb_cfg, registries};
  for (std::size_t p = 0; p < kPorts; ++p) {
    fab.watch_interrupt(p, tb.router().irq(p), board::Board::kDeviceVector);
  }
  std::vector<std::unique_ptr<router::ChecksumApp>> apps;
  for (std::size_t p = 0; p < kPorts; ++p) {
    apps.push_back(
        std::make_unique<router::ChecksumApp>(fab.board(p), app_config()));
  }
  fab.start_boards();
  u64 cycles = 0;
  while (cycles < kMaxCycles && !tb.traffic_done()) {
    EXPECT_TRUE(fab.run_cycles(500).ok());
    cycles += 500;
  }
  fab.finish();

  FabricResult result;
  result.emitted = tb.total_emitted();
  result.forwarded = tb.router().stats().forwarded;
  result.received = tb.total_received();
  result.dropped = tb.router().stats().dropped_bad_checksum;
  result.barriers = fab.coordinator().barriers();
  result.ticks_sent = fab.coordinator().ticks_sent();
  result.lookahead_acks = fab.coordinator().lookahead_acks();
  result.drained = tb.traffic_done();
  return result;
}

TEST(AdaptiveFabricTest, ShardedRouterMatchesFixedFabric) {
  const FabricResult fixed = run_fabric(std::nullopt);
  const FabricResult adaptive = run_fabric(
      SyncPolicy{}.quantum(500).adaptive().min_quantum(100).max_quantum(4000));
  ASSERT_TRUE(fixed.drained) << "fixed fabric did not drain";
  ASSERT_TRUE(adaptive.drained) << "adaptive fabric did not drain";
  ASSERT_GT(fixed.emitted, 0u);

  EXPECT_EQ(adaptive.emitted, fixed.emitted);
  EXPECT_EQ(adaptive.forwarded, fixed.forwarded);
  EXPECT_EQ(adaptive.received, fixed.received);
  EXPECT_EQ(adaptive.dropped, fixed.dropped);

  // The boards advertised (the fabric flips advertise_lookahead on for
  // adaptive policies) and the barrier got cheaper per simulated cycle.
  EXPECT_GT(adaptive.lookahead_acks, 0u);
  EXPECT_EQ(fixed.lookahead_acks, 0u);  // v1 acks under the legacy path
  EXPECT_LT(adaptive.ticks_sent, fixed.ticks_sent);
}

}  // namespace
}  // namespace vhp::cosim
