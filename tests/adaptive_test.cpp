// Adaptive lookahead synchronization, fiber-free (ISSUE 6): SyncPolicy
// grant arithmetic, the deprecated-shim mappings, and a SyncCoordinator in
// adaptive mode driven over raw inproc channel pairs by plain threads that
// answer with scripted lookaheads. No ucontext fiber runs here, so the
// suite carries the composite "adaptive-tsan" label (selected by both
// -L tsan and -L adaptive — same trick as fabric-tsan).
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "vhp/cosim/cosim_kernel.hpp"
#include "vhp/cosim/sync_policy.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/fabric/sync_coordinator.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;
using cosim::SyncPolicy;

// ---------------------------------------------------------------------------
// SyncPolicy grant arithmetic

TEST(SyncPolicyTest, FixedModeGrantsTheNodeQuantum) {
  SyncPolicy p;
  p.quantum(100).node_quantum(1, 25);
  EXPECT_EQ(p.grant(0, 0, std::nullopt), 100u);
  EXPECT_EQ(p.grant(1, 0, std::nullopt), 25u);
  // Lookaheads are ignored outside adaptive mode.
  EXPECT_EQ(p.grant(0, 0, 5000), 100u);
}

TEST(SyncPolicyTest, AdaptiveWithoutLookaheadKeepsFixedCadence) {
  SyncPolicy p;
  p.quantum(100).adaptive();
  // A v1 ack (no lookahead) must not change the node's cadence.
  EXPECT_EQ(p.grant(0, 400, std::nullopt), 100u);
}

TEST(SyncPolicyTest, AdaptiveGrantClampsToMinAndMax) {
  SyncPolicy p;
  p.quantum(100).adaptive().min_quantum(10).max_quantum(500);
  // Inside the clamp: grant exactly lookahead - cycle.
  EXPECT_EQ(p.grant(0, 1000, 1000 + 250), 250u);
  // Below min: a busy board (lookahead "now" or behind) syncs at min.
  EXPECT_EQ(p.grant(0, 1000, 1000), 10u);
  EXPECT_EQ(p.grant(0, 1000, 400), 10u);
  EXPECT_EQ(p.grant(0, 1000, 1005), 10u);
  // Above max: a sleeping board is capped by the accuracy bound.
  EXPECT_EQ(p.grant(0, 1000, 1000 + 100000), 500u);
  EXPECT_EQ(p.grant(0, 1000, SyncPolicy::kUnboundedLookahead), 500u);
}

TEST(SyncPolicyTest, ClampDefaultsResolvePerNode) {
  SyncPolicy p;
  p.quantum(100).node_quantum(1, 40).adaptive();
  // min defaults to the node's fixed quantum, max to 64x it.
  EXPECT_EQ(p.clamp_for(0), (std::pair<u64, u64>{100, 6400}));
  EXPECT_EQ(p.clamp_for(1), (std::pair<u64, u64>{40, 2560}));
  // The default cap never overflows CLOCK_TICK's u32 n_ticks field.
  SyncPolicy big;
  big.quantum(u64{1} << 28).adaptive();
  ASSERT_TRUE(big.validate(1).ok());
  EXPECT_EQ(big.clamp_for(0).second, u64{0xffffffffu});
  // An explicit max below min is lifted to min, never inverted.
  SyncPolicy inv;
  inv.quantum(100).adaptive().min_quantum(200).max_quantum(50);
  EXPECT_EQ(inv.clamp_for(0), (std::pair<u64, u64>{200, 200}));
}

TEST(SyncPolicyTest, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(SyncPolicy{}.validate(4).ok());
  EXPECT_TRUE(
      SyncPolicy{}.quantum(100).adaptive().min_quantum(10).max_quantum(4000)
          .validate(4)
          .ok());

  EXPECT_FALSE(SyncPolicy{}.quantum(0).validate(1).ok());
  // A zero default is fine only when every node overrides it.
  SyncPolicy overridden;
  overridden.quantum(0).node_quantum(0, 10).node_quantum(1, 20);
  EXPECT_TRUE(overridden.validate(2).ok());
  EXPECT_FALSE(overridden.validate(3).ok());

  // Grants must fit CLOCK_TICK's u32 n_ticks field.
  EXPECT_FALSE(SyncPolicy{}.quantum(u64{1} << 33).validate(1).ok());
  EXPECT_FALSE(SyncPolicy{}
                   .quantum(100)
                   .adaptive()
                   .max_quantum(u64{1} << 33)
                   .validate(1)
                   .ok());
  // Eviction needs a watchdog to trip.
  EXPECT_FALSE(SyncPolicy{}.watchdog(0ms).evict_after(2).validate(1).ok());
}

// ---------------------------------------------------------------------------
// Deprecated shims: the legacy knob sets map onto SyncPolicy losslessly.

TEST(SyncPolicyShimTest, SyncConfigToPolicyKeepsEveryKnob) {
  SyncConfig cfg;
  cfg.t_sync = 200;
  cfg.t_sync_overrides = {0, 50};
  cfg.watchdog = 1234ms;
  cfg.evict_after_misses = 3;
  const SyncPolicy p = cfg.to_policy();
  EXPECT_EQ(p.quantum(), 200u);
  EXPECT_EQ(p.node_quantum(0), 200u);
  EXPECT_EQ(p.node_quantum(1), 50u);
  EXPECT_EQ(p.watchdog(), 1234ms);
  EXPECT_EQ(p.evict_after_misses(), 3u);
  EXPECT_FALSE(p.is_adaptive());  // SyncConfig predates adaptive mode
}

TEST(SyncPolicyShimTest, FabricConfigResolvesLegacyFieldsWhenPolicyUnset) {
  FabricConfigBuilder builder;
  builder.t_sync(300).watchdog(2000ms);
  builder.add_node("a");
  builder.add_node("b");
  FabricConfig cfg = builder.build_or_throw();
  cfg.nodes[1].t_sync = 75;
  const SyncPolicy p = cfg.resolved_sync();
  EXPECT_EQ(p.quantum(), 300u);
  EXPECT_EQ(p.node_quantum(1), 75u);
  EXPECT_EQ(p.watchdog(), 2000ms);
  EXPECT_FALSE(p.is_adaptive());
}

TEST(SyncPolicyShimTest, FabricConfigPolicyWinsOverLegacyFields) {
  FabricConfigBuilder builder;
  builder.t_sync(300).sync(
      SyncPolicy{}.quantum(80).adaptive().max_quantum(640));
  builder.add_node("a");
  const SyncPolicy p = builder.build_or_throw().resolved_sync();
  EXPECT_EQ(p.quantum(), 80u);
  EXPECT_TRUE(p.is_adaptive());
  EXPECT_EQ(p.max_quantum(), 640u);
}

TEST(SyncPolicyShimTest, CosimConfigResolvesTsyncOrPolicy) {
  cosim::CosimConfig legacy;
  legacy.t_sync = 777;
  EXPECT_EQ(legacy.resolved_sync().quantum(), 777u);
  EXPECT_FALSE(legacy.resolved_sync().is_adaptive());

  cosim::CosimConfig unified;
  unified.sync = SyncPolicy{}.quantum(50).adaptive();
  EXPECT_EQ(unified.resolved_sync().quantum(), 50u);
  EXPECT_TRUE(unified.resolved_sync().is_adaptive());
}

// ---------------------------------------------------------------------------
// SyncCoordinator in adaptive mode, against scripted plain-thread nodes

/// What one emulated node observed.
struct NodeLog {
  std::vector<net::ClockTick> ticks;
  bool saw_shutdown = false;
};

/// A protocol-conforming adaptive node on a plain thread: the handshake ack
/// advertises `script[0]`; the ack for the i-th CLOCK_TICK advertises
/// `script[i + 1]`. Entries are absolute master cycles; nullopt sends a v1
/// ack; a exhausted script keeps sending the last entry.
std::thread spawn_scripted_node(
    net::Channel& clock, NodeLog& log,
    std::vector<std::optional<u64>> script) {
  return std::thread([&clock, &log, script = std::move(script)] {
    std::size_t next = 0;
    auto ack = [&](u64 board_tick) {
      net::TimeAck a{board_tick};
      if (!script.empty()) {
        a.lookahead = next < script.size() ? script[next] : script.back();
        ++next;
      }
      ASSERT_TRUE(net::send_msg(clock, a).ok());
    };
    ack(0);  // boot-time frozen handshake
    u64 board_tick = 0;
    for (;;) {
      auto msg = net::recv_msg(clock, 2000ms);
      if (!msg.ok()) return;
      if (std::holds_alternative<net::Shutdown>(msg.value())) {
        log.saw_shutdown = true;
        return;
      }
      ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
      const auto tick = std::get<net::ClockTick>(msg.value());
      log.ticks.push_back(tick);
      board_tick += tick.n_ticks;
      ack(board_tick);
    }
  });
}

TEST(AdaptiveCoordinatorTest, GrantsFollowTheScriptedLookahead) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  NodeLog log;
  // Handshake: "nothing before cycle 400" -> first due at 400.
  // After the 400 barrier: "nothing before 450" -> grant 50.
  // Then idle-until-data -> the max_quantum cap, 500 -> due 950.
  // Then a stale lookahead (behind the master) -> min_quantum, 10.
  std::thread node = spawn_scripted_node(
      *b0, log,
      {400, 450, SyncPolicy::kUnboundedLookahead, 100, std::nullopt});

  SyncCoordinator coord{
      SyncPolicy{}.quantum(100).adaptive().min_quantum(10).max_quantum(500),
      {m0.get()}};
  ASSERT_TRUE(coord.handshake().ok());
  EXPECT_EQ(coord.node_due(0), 400u);
  EXPECT_EQ(coord.node_lookahead(0), std::optional<u64>{400});

  ASSERT_TRUE(coord.run_barrier(400).ok());
  EXPECT_EQ(coord.node_due(0), 450u);

  ASSERT_TRUE(coord.run_barrier(450).ok());
  EXPECT_EQ(coord.node_due(0), 950u);  // unbounded, capped at max_quantum

  ASSERT_TRUE(coord.run_barrier(950).ok());
  EXPECT_EQ(coord.node_due(0), 960u);  // lookahead 100 is stale -> min

  ASSERT_TRUE(coord.run_barrier(960).ok());
  EXPECT_EQ(coord.node_due(0), 1060u);  // v1 ack -> fixed quantum again
  EXPECT_EQ(coord.node_lookahead(0), std::nullopt);

  coord.shutdown();
  node.join();

  // Each CLOCK_TICK granted the cycles elapsed since the previous grant.
  ASSERT_EQ(log.ticks.size(), 4u);
  EXPECT_EQ(log.ticks[0].sim_cycle, 400u);
  EXPECT_EQ(log.ticks[0].n_ticks, 400u);
  EXPECT_EQ(log.ticks[1].n_ticks, 50u);
  EXPECT_EQ(log.ticks[2].n_ticks, 500u);
  EXPECT_EQ(log.ticks[3].n_ticks, 10u);
  EXPECT_TRUE(log.saw_shutdown);

  EXPECT_EQ(coord.lookahead_acks(), 4u);      // scripted v2 acks
  EXPECT_EQ(coord.lookahead_unbounded(), 1u);
}

TEST(AdaptiveCoordinatorTest, MixedAdaptiveAndFixedNodesShareOneBarrier) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();
  NodeLog sleepy_log, legacy_log;
  // Node 0 always reports idle-until-data; node 1 is a v1 board.
  std::thread sleepy = spawn_scripted_node(
      *b0, sleepy_log, {SyncPolicy::kUnboundedLookahead});
  std::thread legacy = spawn_scripted_node(*b1, legacy_log, {});

  SyncCoordinator coord{SyncPolicy{}.quantum(100).adaptive().max_quantum(300),
                        {m0.get(), m1.get()},
                        {"sleepy", "legacy"}};
  ASSERT_TRUE(coord.handshake().ok());
  EXPECT_EQ(coord.node_due(0), 300u);  // stretched to max_quantum
  EXPECT_EQ(coord.node_due(1), 100u);  // v1 ack keeps the fixed cadence

  for (const u64 cycle : {100u, 200u, 300u, 400u}) {
    ASSERT_TRUE(coord.run_barrier(cycle).ok());
  }
  coord.shutdown();
  sleepy.join();
  legacy.join();

  // In 400 cycles: the legacy node saw every 100-cycle barrier; the sleepy
  // one only its stretched 300-cycle grant (its next due, 600, lies beyond
  // the run). Neither ever observed time past its own grant.
  ASSERT_EQ(legacy_log.ticks.size(), 4u);
  for (const auto& tick : legacy_log.ticks) EXPECT_EQ(tick.n_ticks, 100u);
  ASSERT_EQ(sleepy_log.ticks.size(), 1u);
  EXPECT_EQ(sleepy_log.ticks[0].sim_cycle, 300u);
  EXPECT_EQ(sleepy_log.ticks[0].n_ticks, 300u);
  EXPECT_EQ(coord.node_due(0), 600u);
}

TEST(AdaptiveCoordinatorTest, EvictionDropsTheLookaheadAndRejoinRebases) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();
  NodeLog good_log;
  std::thread good = spawn_scripted_node(
      *b0, good_log, {SyncPolicy::kUnboundedLookahead});
  // Node 1 handshakes with a large lookahead, then goes silent.
  ASSERT_TRUE(net::send_msg(*b1, net::TimeAck{0, 5000}).ok());

  SyncCoordinator coord{SyncPolicy{}
                            .quantum(100)
                            .adaptive()
                            .max_quantum(400)
                            .watchdog(200ms)
                            .evict_after(1),
                        {m0.get(), m1.get()},
                        {"good", "mute"}};
  ASSERT_TRUE(coord.handshake().ok());
  EXPECT_EQ(coord.node_due(0), 400u);
  EXPECT_EQ(coord.node_due(1), 400u);  // 5000 clamped to max_quantum
  EXPECT_EQ(coord.node_lookahead(1), std::optional<u64>{5000});

  // The mute node misses the 400 barrier once and is evicted; its stale
  // lookahead must not survive into any later grant decision.
  ASSERT_TRUE(coord.run_barrier(400).ok());
  EXPECT_FALSE(coord.alive(1));
  EXPECT_EQ(coord.node_lookahead(1), std::nullopt);
  EXPECT_EQ(coord.evictions(), 1u);

  // Rejoin at cycle 400: the returning node's fresh frozen ack advertises
  // "nothing before 550" -> next due 550, not 400 + fixed quantum.
  ASSERT_TRUE(net::send_msg(*b1, net::TimeAck{0, 550}).ok());
  ASSERT_TRUE(coord.rejoin(1, 400).ok());
  EXPECT_TRUE(coord.alive(1));
  EXPECT_EQ(coord.node_due(1), 550u);
  EXPECT_EQ(coord.node_lookahead(1), std::optional<u64>{550});

  coord.shutdown();
  good.join();
  // Drain the rejoined node's channel so its peer closes cleanly.
  (void)net::recv_msg(*b1, 100ms);
}

TEST(AdaptiveCoordinatorTest, FixedPolicyMatchesLegacyConfigCadence) {
  // The SyncConfig ctor and a fixed SyncPolicy must schedule identically.
  for (const bool use_policy : {false, true}) {
    auto [m0, b0] = net::make_inproc_channel_pair();
    NodeLog log;
    std::thread node = spawn_scripted_node(*b0, log, {});
    SyncConfig cfg;
    cfg.t_sync = 50;
    auto coord =
        use_policy
            ? std::make_unique<SyncCoordinator>(
                  cfg.to_policy(), std::vector<net::Channel*>{m0.get()})
            : std::make_unique<SyncCoordinator>(
                  cfg, std::vector<net::Channel*>{m0.get()});
    ASSERT_TRUE(coord->handshake().ok());
    for (u64 cycle = 50; cycle <= 200; cycle += 50) {
      ASSERT_TRUE(coord->run_barrier(cycle).ok());
    }
    coord->shutdown();
    node.join();
    ASSERT_EQ(log.ticks.size(), 4u);
    for (const auto& tick : log.ticks) EXPECT_EQ(tick.n_ticks, 50u);
  }
}

// ---------------------------------------------------------------------------
// vhptrace's grant summary

obs::FrameRecord clock_frame(u64 seq, obs::LinkDir dir, u32 node,
                             const net::Message& msg) {
  obs::FrameRecord f;
  f.seq = seq;
  f.port = obs::LinkPort::kClock;
  f.dir = dir;
  f.node = node;
  f.payload = net::encode(msg);
  f.payload_size = static_cast<u32>(f.payload.size());
  return f;
}

TEST(GrantStatsTest, SummarizesClockTrafficPerNode) {
  obs::Recording rec;
  rec.meta.side = "hw";
  u64 seq = 0;
  // Node 0: grants of 100 and 300 cycles; one v1 ack, one unbounded v2 ack.
  rec.frames.push_back(clock_frame(seq++, obs::LinkDir::kTx, 0,
                                   net::Message{net::ClockTick{100, 100}}));
  rec.frames.push_back(clock_frame(seq++, obs::LinkDir::kRx, 0,
                                   net::Message{net::TimeAck{10}}));
  rec.frames.push_back(clock_frame(seq++, obs::LinkDir::kTx, 0,
                                   net::Message{net::ClockTick{400, 300}}));
  rec.frames.push_back(clock_frame(
      seq++, obs::LinkDir::kRx, 0,
      net::Message{net::TimeAck{40, net::kLookaheadUnbounded}}));
  // Node 1: a single fixed grant with a bounded v2 ack.
  rec.frames.push_back(clock_frame(seq++, obs::LinkDir::kTx, 1,
                                   net::Message{net::ClockTick{50, 50}}));
  rec.frames.push_back(clock_frame(seq++, obs::LinkDir::kRx, 1,
                                   net::Message{net::TimeAck{5, 120}}));

  const std::string text = net::grant_stats_text(rec);
  EXPECT_NE(text.find("node 0: 2 grants, cycles min/mean/max 100/200/300"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("2 acks, 1 with lookahead (1 unbounded)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("node 1: 1 grants, cycles min/mean/max 50/50/50"),
            std::string::npos)
      << text;

  // No CLOCK frames -> no summary block at all.
  EXPECT_TRUE(net::grant_stats_text(obs::Recording{}).empty());
}

}  // namespace
}  // namespace vhp::fabric
