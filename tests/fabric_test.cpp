// The N-party virtual-tick barrier and the fabric plumbing, fiber-free:
// SyncCoordinator driven over raw inproc channel pairs by plain threads, and
// Fabric instances whose nodes are all *external* (the fabric spawns no
// board, so no ucontext fiber ever runs) — this whole suite carries the
// "tsan" label and runs under ThreadSanitizer.
//
// Covers the ISSUE 4 straggler satellite: a node that never answers a
// CLOCK_TICK must trip the watchdog with the offending node named in the
// Status, not hang the fabric.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <variant>
#include <vector>

#include "vhp/common/checksum.hpp"
#include "vhp/cosim/driver_port.hpp"
#include "vhp/fabric/fabric.hpp"
#include "vhp/net/inproc.hpp"
#include "vhp/net/replay.hpp"
#include "vhp/obs/recording.hpp"

namespace vhp::fabric {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// SyncConfig

TEST(SyncConfigTest, QuantumAppliesPerNodeOverrides) {
  SyncConfig cfg;
  cfg.t_sync = 100;
  cfg.t_sync_overrides = {0, 25};
  EXPECT_EQ(cfg.quantum(0), 100u);  // 0 means "use the default"
  EXPECT_EQ(cfg.quantum(1), 25u);
  EXPECT_EQ(cfg.quantum(7), 100u);  // missing entry means the default too
}

TEST(SyncConfigTest, ValidateRejectsZeroQuanta) {
  SyncConfig cfg;
  EXPECT_FALSE(cfg.validate(0).ok());  // no nodes

  cfg.t_sync = 0;
  EXPECT_FALSE(cfg.validate(1).ok());  // default quantum is zero

  // A zero default is fine when every node overrides it.
  cfg.t_sync_overrides = {10, 20};
  EXPECT_TRUE(cfg.validate(2).ok());
  EXPECT_FALSE(cfg.validate(3).ok());  // node 2 falls back to the zero default
}

// ---------------------------------------------------------------------------
// SyncCoordinator against plain-thread node emulators

/// What one emulated node observed: every ClockTick, plus the shutdown.
struct NodeLog {
  std::vector<net::ClockTick> ticks;
  bool saw_shutdown = false;
};

/// A protocol-conforming node on a plain thread: sends the boot-time frozen
/// TIME_ACK, then answers every CLOCK_TICK (after `ack_delay`) until
/// SHUTDOWN or channel close.
std::thread spawn_node(net::Channel& clock, NodeLog& log,
                       std::chrono::milliseconds ack_delay = 0ms) {
  return std::thread([&clock, &log, ack_delay] {
    ASSERT_TRUE(net::send_msg(clock, net::TimeAck{0}).ok());
    u64 board_tick = 0;
    for (;;) {
      auto msg = net::recv_msg(clock, 2000ms);
      if (!msg.ok()) return;
      if (std::holds_alternative<net::Shutdown>(msg.value())) {
        log.saw_shutdown = true;
        return;
      }
      ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
      const auto tick = std::get<net::ClockTick>(msg.value());
      log.ticks.push_back(tick);
      board_tick += tick.n_ticks;
      if (ack_delay > 0ms) std::this_thread::sleep_for(ack_delay);
      ASSERT_TRUE(net::send_msg(clock, net::TimeAck{board_tick}).ok());
    }
  });
}

TEST(SyncCoordinatorTest, HandshakeGathersOneAckPerNode) {
  constexpr std::size_t kNodes = 3;
  std::vector<net::ChannelPtr> master, board;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto [a, b] = net::make_inproc_channel_pair();
    master.push_back(std::move(a));
    board.push_back(std::move(b));
  }
  std::vector<net::Channel*> clocks;
  for (auto& ch : master) clocks.push_back(ch.get());

  SyncConfig cfg;
  cfg.t_sync = 10;
  SyncCoordinator coord{cfg, clocks};
  std::vector<NodeLog> logs(kNodes);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kNodes; ++i) {
    threads.push_back(spawn_node(*board[i], logs[i]));
  }

  EXPECT_TRUE(coord.handshake().ok());
  EXPECT_EQ(coord.acks_received(), kNodes);
  EXPECT_EQ(coord.next_due(), 10u);

  coord.shutdown();
  for (auto& t : threads) t.join();
  for (const auto& log : logs) EXPECT_TRUE(log.saw_shutdown);
}

TEST(SyncCoordinatorTest, BarrierTicksOnlyDueNodesAtTheirCadence) {
  // node0 syncs every 10 cycles, node1 every 25: barriers fall at
  // 10,20,25,30,40,50 and each node is granted exactly the cycles elapsed
  // since its own previous grant.
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();

  SyncConfig cfg;
  cfg.t_sync = 10;
  cfg.t_sync_overrides = {0, 25};
  SyncCoordinator coord{cfg, {m0.get(), m1.get()}, {"fine", "coarse"}};
  NodeLog log0, log1;
  std::thread t0 = spawn_node(*b0, log0);
  std::thread t1 = spawn_node(*b1, log1);

  ASSERT_TRUE(coord.handshake().ok());
  std::vector<u64> barrier_cycles;
  while (coord.next_due() <= 50) {
    const u64 cycle = coord.next_due();
    barrier_cycles.push_back(cycle);
    ASSERT_TRUE(coord.run_barrier(cycle).ok());
  }
  coord.shutdown();
  t0.join();
  t1.join();

  EXPECT_EQ(barrier_cycles, (std::vector<u64>{10, 20, 25, 30, 40, 50}));
  EXPECT_EQ(coord.barriers(), 6u);

  ASSERT_EQ(log0.ticks.size(), 5u);
  for (std::size_t i = 0; i < log0.ticks.size(); ++i) {
    EXPECT_EQ(log0.ticks[i].sim_cycle, 10 * (i + 1));
    EXPECT_EQ(log0.ticks[i].n_ticks, 10u);
  }
  ASSERT_EQ(log1.ticks.size(), 2u);
  EXPECT_EQ(log1.ticks[0].sim_cycle, 25u);
  EXPECT_EQ(log1.ticks[0].n_ticks, 25u);
  EXPECT_EQ(log1.ticks[1].sim_cycle, 50u);
  EXPECT_EQ(log1.ticks[1].n_ticks, 25u);

  // 5 + 2 ticks scattered, plus each ack and the 2 handshake acks gathered.
  EXPECT_EQ(coord.ticks_sent(), 7u);
  EXPECT_EQ(coord.acks_received(), 9u);
}

TEST(SyncCoordinatorTest, StragglerWatchdogNamesTheSilentNode) {
  // ISSUE 4 satellite: "mute" completes the handshake, then never answers a
  // CLOCK_TICK. The barrier must return kDeadlineExceeded naming it — not
  // hang the fabric.
  auto [m0, b0] = net::make_inproc_channel_pair();
  auto [m1, b1] = net::make_inproc_channel_pair();

  SyncConfig cfg;
  cfg.t_sync = 10;
  cfg.watchdog = 200ms;
  SyncCoordinator coord{cfg, {m0.get(), m1.get()}, {"good", "mute"}};
  NodeLog log0;
  std::thread good = spawn_node(*b0, log0);
  ASSERT_TRUE(net::send_msg(*b1, net::TimeAck{0}).ok());  // handshake only

  ASSERT_TRUE(coord.handshake().ok());
  const Status status = coord.run_barrier(10);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("mute"), std::string::npos) << status;
  EXPECT_NE(status.message().find("node 1"), std::string::npos) << status;
  // The responsive node is not blamed.
  EXPECT_EQ(status.message().find("good"), std::string::npos) << status;

  coord.shutdown();
  good.join();
  b1->close();
}

TEST(SyncCoordinatorTest, HandshakeWatchdogNamesTheAbsentNode) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  SyncConfig cfg;
  cfg.watchdog = 150ms;
  SyncCoordinator coord{cfg, {m0.get()}, {"absent"}};
  const Status status = coord.handshake();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("absent"), std::string::npos) << status;
  b0->close();
}

TEST(SyncCoordinatorTest, ServiceCallbackRunsWhileGathering) {
  auto [m0, b0] = net::make_inproc_channel_pair();
  SyncConfig cfg;
  cfg.t_sync = 10;
  SyncCoordinator coord{cfg, {m0.get()}};
  NodeLog log;
  // The slow ack forces at least one service iteration while waiting.
  std::thread node = spawn_node(*b0, log, 50ms);

  ASSERT_TRUE(coord.handshake().ok());
  u64 service_calls = 0;
  ASSERT_TRUE(coord.run_barrier(10, [&] {
                     ++service_calls;
                     return Status::Ok();
                   })
                  .ok());
  EXPECT_GT(service_calls, 0u);

  coord.shutdown();
  node.join();
}

// ---------------------------------------------------------------------------
// Fabric with all-external nodes (no boards, no fibers)

/// A protocol-conforming external party for a Fabric node: boot ack, then
/// tick/ack until shutdown, with optional DATA traffic before the clock
/// loop. Runs on a plain std::thread against the taken board link.
struct ExternalParty {
  explicit ExternalParty(net::CosimLink l) : link(std::move(l)) {}

  net::CosimLink link;
  NodeLog log;
  u32 read_value = 0;
  Status read_status = Status::Ok();
  std::thread thread;

  /// `write_value` goes to 0x20 as a DATA_WRITE; then 0x10 is read back.
  void start(u32 write_value) {
    thread = std::thread([this, write_value] {
      ASSERT_TRUE(net::send_msg(*link.clock, net::TimeAck{0}).ok());
      ASSERT_TRUE(net::send_msg(*link.data,
                                net::DataWrite{0x20, cosim::DriverCodec<
                                                         u32>::encode(
                                                         write_value)})
                      .ok());
      ASSERT_TRUE(
          net::send_msg(*link.data, net::DataReadReq{0x10, 4}).ok());
      auto resp = net::recv_msg(*link.data, 2000ms);
      if (!resp.ok()) {
        read_status = resp.status();
      } else {
        ASSERT_TRUE(std::holds_alternative<net::DataReadResp>(resp.value()));
        ASSERT_TRUE(cosim::DriverCodec<u32>::decode(
            std::get<net::DataReadResp>(resp.value()).data, read_value));
      }
      u64 board_tick = 0;
      for (;;) {
        auto msg = net::recv_msg(*link.clock, 2000ms);
        if (!msg.ok()) return;
        if (std::holds_alternative<net::Shutdown>(msg.value())) {
          log.saw_shutdown = true;
          return;
        }
        ASSERT_TRUE(std::holds_alternative<net::ClockTick>(msg.value()));
        const auto tick = std::get<net::ClockTick>(msg.value());
        log.ticks.push_back(tick);
        board_tick += tick.n_ticks;
        ASSERT_TRUE(
            net::send_msg(*link.clock, net::TimeAck{board_tick}).ok());
      }
    });
  }
};

TEST(FabricExternalTest, BarrierDataServiceAndRegistryIsolation) {
  // Two external nodes, identical device addresses (0x10 readable, 0x20
  // writable) registered in BOTH per-node registries with different values:
  // each party must see only its own node's devices.
  auto cfg = FabricConfigBuilder{}
                 .t_sync(50)
                 .watchdog(5000ms)
                 .add_external_node("alpha")
                 .add_external_node("beta")
                 .build_or_throw();
  Fabric fab{cfg};

  std::vector<std::unique_ptr<cosim::DriverOut<u32>>> outs;
  std::vector<std::unique_ptr<cosim::DriverIn<u32>>> ins;
  for (std::size_t n = 0; n < 2; ++n) {
    outs.push_back(std::make_unique<cosim::DriverOut<u32>>(
        fab.registry(n), "val", 0x10));
    outs.back()->write(100 + static_cast<u32>(n) * 11);
    ins.push_back(std::make_unique<cosim::DriverIn<u32>>(
        fab.kernel(), fab.registry(n), "cmd", 0x20));
  }

  ExternalParty alpha{fab.take_board_link(0)};
  ExternalParty beta{fab.take_board_link(1)};
  alpha.start(5);
  beta.start(6);

  fab.start_boards();  // no-op (all nodes external) but part of the contract
  ASSERT_TRUE(fab.run_cycles(120).ok());
  EXPECT_EQ(fab.cycle(), 120u);
  fab.finish();
  alpha.thread.join();
  beta.thread.join();

  ASSERT_TRUE(alpha.read_status.ok()) << alpha.read_status;
  ASSERT_TRUE(beta.read_status.ok()) << beta.read_status;
  EXPECT_EQ(alpha.read_value, 100u);  // node 0's device, not node 1's
  EXPECT_EQ(beta.read_value, 111u);
  EXPECT_EQ(ins[0]->read(), 5u);  // same address, different registries
  EXPECT_EQ(ins[1]->read(), 6u);
  EXPECT_TRUE(alpha.log.saw_shutdown);
  EXPECT_TRUE(beta.log.saw_shutdown);

  // Both nodes were granted exactly the simulated span, in 50-cycle quanta.
  ASSERT_EQ(alpha.log.ticks.size(), 2u);  // barriers at 50 and 100
  EXPECT_EQ(alpha.log.ticks.back().sim_cycle, 100u);
  EXPECT_EQ(fab.coordinator().barriers(), 2u);

  const std::string metrics = fab.metrics_json();
  EXPECT_NE(metrics.find("\"fabric.barriers\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fabric.alpha.acks\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fabric.beta.data_writes\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fabric.nodes\""), std::string::npos);
}

TEST(FabricExternalTest, InterruptRoutesOnlyToTheWatchedNode) {
  auto cfg = FabricConfigBuilder{}
                 .t_sync(20)
                 .watchdog(5000ms)
                 .add_external_node("idle")
                 .add_external_node("irq_target")
                 .build_or_throw();
  Fabric fab{cfg};
  sim::BoolSignal line{fab.kernel(), "test.irq"};
  fab.watch_interrupt(1, line, 42);

  net::CosimLink idle = fab.take_board_link(0);
  net::CosimLink target = fab.take_board_link(1);
  NodeLog idle_log, target_log;
  std::thread t0 = spawn_node(*idle.clock, idle_log);
  std::thread t1 = spawn_node(*target.clock, target_log);

  ASSERT_TRUE(fab.run_cycles(5).ok());
  line.write(true);  // rising edge picked up by the per-cycle sampler
  ASSERT_TRUE(fab.run_cycles(35).ok());

  auto raised = net::recv_msg(*target.intr, 2000ms);
  ASSERT_TRUE(raised.ok()) << raised.status();
  ASSERT_TRUE(std::holds_alternative<net::IntRaise>(raised.value()));
  EXPECT_EQ(std::get<net::IntRaise>(raised.value()).vector, 42u);

  auto none = net::try_recv_msg(*idle.intr);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());  // node 0 saw no interrupt

  fab.finish();
  t0.join();
  t1.join();
}

TEST(FabricExternalTest, TakeBoardLinkGuardsMisuse) {
  auto cfg = FabricConfigBuilder{}
                 .add_node("boarded")
                 .add_external_node("ext")
                 .build_or_throw();
  Fabric fab{cfg};
  EXPECT_THROW((void)fab.take_board_link(0), std::logic_error);  // has a board
  net::CosimLink link = fab.take_board_link(1);
  EXPECT_THROW((void)fab.take_board_link(1), std::logic_error);  // taken twice
  link.close_all();
}

TEST(FabricConfigTest, BuilderValidates) {
  EXPECT_FALSE(FabricConfigBuilder{}.build().ok());  // no nodes
  EXPECT_FALSE(
      FabricConfigBuilder{}.t_sync(0).add_node("a").build().ok());
  // A per-node override saves a zero default.
  EXPECT_TRUE(
      FabricConfigBuilder{}.t_sync(0).add_node("a", 25).build().ok());
  EXPECT_THROW(FabricConfigBuilder{}.build_or_throw(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Node-stamped recordings (satellite: per-node replay/diff)

TEST(FabricRecordingTest, RecordingIsNodeStampedAndFiltersPerNode) {
  auto cfg = FabricConfigBuilder{}
                 .t_sync(50)
                 .watchdog(5000ms)
                 .record()
                 .add_external_node("alpha")
                 .add_external_node("beta")
                 .build_or_throw();
  Fabric fab{cfg};
  std::vector<std::unique_ptr<cosim::DriverOut<u32>>> outs;
  std::vector<std::unique_ptr<cosim::DriverIn<u32>>> ins;
  for (std::size_t n = 0; n < 2; ++n) {
    outs.push_back(std::make_unique<cosim::DriverOut<u32>>(
        fab.registry(n), "val", 0x10));
    outs.back()->write(100 + static_cast<u32>(n) * 11);
    ins.push_back(std::make_unique<cosim::DriverIn<u32>>(
        fab.kernel(), fab.registry(n), "cmd", 0x20));
  }
  ExternalParty alpha{fab.take_board_link(0)};
  ExternalParty beta{fab.take_board_link(1)};
  alpha.start(5);
  beta.start(6);
  ASSERT_TRUE(fab.run_cycles(100).ok());
  fab.finish();
  alpha.thread.join();
  beta.thread.join();

  const std::string prefix =
      ::testing::TempDir() + "/fabric_rec_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ASSERT_TRUE(fab.write_recordings(prefix, {{"purpose", "test"}}).ok());

  const std::string hw_path = prefix + ".hw.vhprec";
  auto rec = obs::read_recording(hw_path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec.value().meta.side, "hw");
  u64 node0 = 0, node1 = 0;
  for (const auto& f : rec.value().frames) {
    (f.node == 0 ? node0 : node1) += 1;
  }
  EXPECT_GT(node0, 0u);
  EXPECT_GT(node1, 0u);  // one global sequence interleaving both links

  // A nonzero node id forces the V2 on-disk format.
  std::FILE* fp = std::fopen(hw_path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  char magic[8] = {};
  ASSERT_EQ(std::fread(magic, 1, 8, fp), 8u);
  std::fclose(fp);
  EXPECT_EQ(std::string(magic, 8), "VHPREC02");

  // ReplayOptions::node keeps exactly one node's frames.
  net::ReplayOptions opt;
  opt.node = 1;
  auto replay = net::ReplaySession::open(rec.value(), opt);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay.value()->total(), node1);

  net::ReplayOptions missing;
  missing.node = 7;
  auto none = net::ReplaySession::open(rec.value(), missing);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);

  // The checker replays the recording against itself per (node,port,dir)
  // queue; a perturbed node-1 frame is blamed on node 1.
  obs::DivergenceChecker self{rec.value(), &net::message_field_diff};
  for (const auto& f : rec.value().frames) EXPECT_TRUE(self.check(f));
  EXPECT_FALSE(self.divergence().has_value());

  obs::Recording mutated = rec.value();
  for (auto& f : mutated.frames) {
    if (f.node == 1 && !f.payload.empty()) {
      f.payload.back() ^= 0xFF;
      f.digest = crc32(f.payload);
      break;
    }
  }
  obs::DivergenceChecker diverged{rec.value(), &net::message_field_diff};
  for (const auto& f : mutated.frames) diverged.check(f);
  ASSERT_TRUE(diverged.divergence().has_value());
  EXPECT_EQ(diverged.divergence()->node, 1u);

  // Per-node board-side recordings exist and are tagged.
  auto board_rec = obs::read_recording(prefix + ".beta.board.vhprec");
  ASSERT_TRUE(board_rec.ok()) << board_rec.status();
  EXPECT_EQ(board_rec.value().meta.side, "board");
  EXPECT_EQ(board_rec.value().meta.tags.at("node_name"), "beta");
}

TEST(FabricRecordingTest, WriteRecordingsRequiresRecordingEnabled) {
  auto cfg = FabricConfigBuilder{}.add_external_node("a").build_or_throw();
  Fabric fab{cfg};
  const Status status = fab.write_recordings(::testing::TempDir() + "/x");
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  fab.take_board_link(0).close_all();
}

}  // namespace
}  // namespace vhp::fabric
