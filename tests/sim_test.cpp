// Unit tests for the discrete-event simulation kernel: events, processes,
// delta cycles, signals, clocks, ports, fifos.
#include <gtest/gtest.h>

#include <vector>

#include "vhp/common/types.hpp"
#include "vhp/sim/fifo.hpp"
#include "vhp/sim/kernel.hpp"
#include "vhp/sim/module.hpp"
#include "vhp/sim/port.hpp"

namespace vhp::sim {
namespace {

// Convenience: a module exposing process registration for ad-hoc tests.
struct Harness : Module {
  explicit Harness(Kernel& k) : Module(k, "tb") {}
  using Module::make_bool_signal;
  using Module::make_signal;
  using Module::method;
  using Module::thread;
};

TEST(Event, TimedNotificationFiresAtRightTime) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  std::vector<SimTime> fired;
  tb.method("watch", [&] { fired.push_back(k.now()); })
      .sensitive(ev)
      .dont_initialize();
  ev.notify_at(10);
  k.run_until(100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 10u);
}

TEST(Event, EarlierTimedNotificationOverridesLater) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  std::vector<SimTime> fired;
  tb.method("watch", [&] { fired.push_back(k.now()); })
      .sensitive(ev)
      .dont_initialize();
  ev.notify_at(50);
  ev.notify_at(10);  // earlier wins; 50 is dropped
  k.run_until(100);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 10u);
}

TEST(Event, LaterTimedNotificationIgnoredWhileEarlierPending) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  int count = 0;
  tb.method("watch", [&] { ++count; }).sensitive(ev).dont_initialize();
  ev.notify_at(10);
  ev.notify_at(50);  // ignored
  k.run_until(100);
  EXPECT_EQ(count, 1);
}

TEST(Event, CancelSuppressesPending) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  int count = 0;
  tb.method("watch", [&] { ++count; }).sensitive(ev).dont_initialize();
  ev.notify_at(10);
  ev.cancel();
  k.run_until(100);
  EXPECT_EQ(count, 0);
}

TEST(Event, DeltaNotificationRunsInNextDelta) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  std::vector<u64> deltas;
  tb.method("watch", [&] { deltas.push_back(k.delta_count()); })
      .sensitive(ev)
      .dont_initialize();
  ev.notify_delta();
  k.run_until(0);
  ASSERT_EQ(deltas.size(), 1u);
  // Still at time 0 but one delta later than the notifying one.
  EXPECT_EQ(k.now(), 0u);
}

TEST(Process, InitializationRunsOnceUnlessSuppressed) {
  Kernel k;
  Harness tb{k};
  int init_runs = 0;
  int suppressed_runs = 0;
  tb.method("init", [&] { ++init_runs; });
  tb.method("no_init", [&] { ++suppressed_runs; }).dont_initialize();
  k.run_until(10);
  EXPECT_EQ(init_runs, 1);
  EXPECT_EQ(suppressed_runs, 0);
}

TEST(Process, MethodRetriggersOnEveryNotification) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  int count = 0;
  tb.method("watch", [&] { ++count; }).sensitive(ev).dont_initialize();
  for (int i = 0; i < 3; ++i) {
    ev.notify_at(5);  // relative delay
    k.run(10);
  }
  EXPECT_EQ(count, 3);
}

TEST(Process, ThreadWaitsForDelays) {
  Kernel k;
  Harness tb{k};
  std::vector<SimTime> stamps;
  tb.thread("worker", [&] {
    stamps.push_back(k.now());
    wait(10);
    stamps.push_back(k.now());
    wait(5);
    stamps.push_back(k.now());
  });
  k.run_until(100);
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, 10, 15}));
}

TEST(Process, ThreadWaitsOnEvent) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  SimTime woke_at = 0;
  bool done = false;
  tb.thread("waiter", [&] {
    wait(ev);
    woke_at = k.now();
    done = true;
  });
  tb.thread("notifier", [&] {
    wait(30);
    ev.notify();
  });
  k.run_until(100);
  EXPECT_TRUE(done);
  EXPECT_EQ(woke_at, 30u);
}

TEST(Process, DynamicWaitMasksStaticSensitivity) {
  Kernel k;
  Harness tb{k};
  Event static_ev{k, "static"};
  Event dynamic_ev{k, "dynamic"};
  std::vector<SimTime> wakes;
  auto& p = tb.thread("t", [&] {
    wait(dynamic_ev);  // static_ev firing meanwhile must NOT wake us
    wakes.push_back(k.now());
  });
  p.sensitive(static_ev).dont_initialize();
  // dont_initialize'd thread starts on its static event.
  static_ev.notify_at(5);   // starts the thread; it then waits dynamically
  static_ev.notify_at(10);  // must be ignored (dynamic wait active)
  dynamic_ev.notify_at(20);
  k.run_until(100);
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 20u);
}

TEST(Process, WaitAnyReturnsFirstFiringEvent) {
  Kernel k;
  Harness tb{k};
  Event a{k, "a"};
  Event b{k, "b"};
  std::vector<std::pair<const Event*, SimTime>> wakes;
  tb.thread("t", [&] {
    for (int i = 0; i < 2; ++i) {
      Event* fired = wait_any({&a, &b});  // sequence before reading now()
      wakes.emplace_back(fired, k.now());
    }
  });
  b.notify_at(10);
  a.notify_at(25);
  k.run_until(100);
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0].first, &b);
  EXPECT_EQ(wakes[0].second, 10u);
  EXPECT_EQ(wakes[1].first, &a);
  EXPECT_EQ(wakes[1].second, 25u);
}

TEST(Process, StaleWaitAnyRegistrationDoesNotWakeLater) {
  // Thread waits on {a, b}; a fires (wins). Later b fires while the thread
  // is waiting on c only — the stale b registration must not wake it.
  Kernel k;
  Harness tb{k};
  Event a{k, "a"};
  Event b{k, "b"};
  Event c{k, "c"};
  std::vector<std::pair<const Event*, SimTime>> wakes;
  tb.thread("t", [&] {
    // Sequence each wait before reading now() (argument evaluation order
    // is unspecified).
    Event* first = wait_any({&a, &b});
    wakes.emplace_back(first, k.now());
    Event* second = wait_any({&c});
    wakes.emplace_back(second, k.now());
  });
  a.notify_at(5);
  b.notify_at(10);  // stale registration from the first wait
  c.notify_at(20);
  k.run_until(100);
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0].first, &a);
  EXPECT_EQ(wakes[1].first, &c);
  EXPECT_EQ(wakes[1].second, 20u);  // not woken at 10 by stale b
}

TEST(Process, WaitWithTimeoutTimesOut) {
  Kernel k;
  Harness tb{k};
  Event never{k, "never"};
  bool got = true;
  SimTime woke_at = 0;
  tb.thread("t", [&] {
    got = wait_with_timeout(never, 40);
    woke_at = k.now();
  });
  k.run_until(100);
  EXPECT_FALSE(got);
  EXPECT_EQ(woke_at, 40u);
}

TEST(Process, WaitWithTimeoutSucceedsAndCancelsTimer) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  std::vector<bool> results;
  std::vector<SimTime> times;
  tb.thread("t", [&] {
    results.push_back(wait_with_timeout(ev, 50));
    times.push_back(k.now());
    // The cancelled timeout must not disturb a later plain delay.
    wait(100);
    times.push_back(k.now());
  });
  ev.notify_at(10);
  k.run_until(300);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0]);
  EXPECT_EQ(times[0], 10u);
  EXPECT_EQ(times[1], 110u);  // not cut short by the stale 50-unit timer
}

TEST(Signal, WriteVisibleNextDelta) {
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_signal<u32>("s", 1);
  u32 seen_during_write_delta = 0;
  tb.thread("t", [&] {
    sig.write(2);
    seen_during_write_delta = sig.read();  // update not applied yet
    wait(1);
  });
  k.run_until(5);
  EXPECT_EQ(seen_during_write_delta, 1u);
  EXPECT_EQ(sig.read(), 2u);
}

TEST(Signal, ChangedEventOnlyOnRealChange) {
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_signal<u32>("s", 7);
  int changes = 0;
  tb.method("watch", [&] { ++changes; })
      .sensitive(sig.value_changed_event())
      .dont_initialize();
  tb.thread("driver", [&] {
    sig.write(7);  // same value: no event
    wait(10);
    sig.write(8);  // change: event
    wait(10);
    sig.write(8);  // same: no event
    wait(10);
  });
  k.run_until(100);
  EXPECT_EQ(changes, 1);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_signal<u32>("s", 0);
  tb.thread("t", [&] {
    sig.write(1);
    sig.write(2);
    sig.write(3);
    wait(1);
  });
  k.run_until(5);
  EXPECT_EQ(sig.read(), 3u);
}

TEST(BoolSignal, EdgeEvents) {
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_bool_signal("b", false);
  std::vector<std::pair<char, SimTime>> edges;
  tb.method("pos", [&] { edges.emplace_back('p', k.now()); })
      .sensitive(sig.posedge_event())
      .dont_initialize();
  tb.method("neg", [&] { edges.emplace_back('n', k.now()); })
      .sensitive(sig.negedge_event())
      .dont_initialize();
  tb.thread("driver", [&] {
    wait(10);
    sig.write(true);
    wait(10);
    sig.write(false);
    wait(10);
  });
  k.run_until(100);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].first, 'p');
  EXPECT_EQ(edges[0].second, 10u);
  EXPECT_EQ(edges[1].first, 'n');
  EXPECT_EQ(edges[1].second, 20u);
}

TEST(Clock, GeneratesPeriodicPosedges) {
  Kernel k;
  Clock clk{k, "clk", /*period=*/10};
  Harness tb{k};
  std::vector<SimTime> posedges;
  tb.method("watch", [&] { posedges.push_back(k.now()); })
      .sensitive(clk.posedge_event())
      .dont_initialize();
  k.run_until(45);
  EXPECT_EQ(posedges, (std::vector<SimTime>{0, 10, 20, 30, 40}));
}

TEST(Clock, DutyCycleHalfPeriod) {
  Kernel k;
  Clock clk{k, "clk", 10};
  Harness tb{k};
  std::vector<SimTime> negedges;
  tb.method("watch", [&] { negedges.push_back(k.now()); })
      .sensitive(clk.negedge_event())
      .dont_initialize();
  k.run_until(19);
  EXPECT_EQ(negedges, (std::vector<SimTime>{5, 15}));
}

TEST(Clock, SynchronousCounterPipeline) {
  // A classic two-stage synchronous design: proves evaluate/update split.
  Kernel k;
  Clock clk{k, "clk", 2};
  Harness tb{k};
  auto& stage1 = tb.make_signal<u32>("s1", 0);
  auto& stage2 = tb.make_signal<u32>("s2", 0);
  tb.method("ff",
            [&] {
              stage1.write(stage1.read() + 1);
              stage2.write(stage1.read());  // reads the OLD stage1
            })
      .sensitive(clk.posedge_event())
      .dont_initialize();
  k.run_until(9);  // posedges at 0,2,4,6,8 -> 5 clock ticks
  EXPECT_EQ(stage1.read(), 5u);
  EXPECT_EQ(stage2.read(), 4u);  // exactly one cycle behind
}

TEST(Port, InOutBinding) {
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_signal<u32>("s", 0);
  InPort<u32> in;
  OutPort<u32> out;
  in.bind(sig);
  out.bind(sig);
  EXPECT_TRUE(in.bound());
  tb.thread("t", [&] {
    out.write(11);
    wait(1);
  });
  k.run_until(2);
  EXPECT_EQ(in.read(), 11u);
}

TEST(Port, BoolPortExposesEdges) {
  Kernel k;
  Clock clk{k, "clk", 4};
  Harness tb{k};
  BoolInPort port;
  port.bind(clk);
  int edges = 0;
  tb.method("w", [&] { ++edges; })
      .sensitive(port.posedge_event())
      .dont_initialize();
  k.run_until(19);
  EXPECT_EQ(edges, 5);  // 0,4,8,12,16
}

TEST(Fifo, BlockingProducerConsumer) {
  Kernel k;
  Harness tb{k};
  Fifo<int> fifo{k, "f", 2};
  std::vector<int> consumed;
  tb.thread("producer", [&] {
    for (int i = 1; i <= 6; ++i) fifo.write(i);  // blocks on full
  });
  tb.thread("consumer", [&] {
    for (int i = 0; i < 6; ++i) {
      consumed.push_back(fifo.read());
      wait(10);
    }
  });
  k.run_until(100);
  EXPECT_EQ(consumed, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Fifo, NonBlockingDropsWhenFull) {
  Kernel k;
  Fifo<int> fifo{k, "f", 2};
  EXPECT_TRUE(fifo.nb_write(1));
  EXPECT_TRUE(fifo.nb_write(2));
  EXPECT_FALSE(fifo.nb_write(3));  // the paper's drop-on-full
  EXPECT_EQ(fifo.size(), 2u);
  int v = 0;
  EXPECT_TRUE(fifo.nb_read(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(fifo.nb_read(v));
  EXPECT_FALSE(fifo.nb_read(v));
}

TEST(Kernel, RunUntilAdvancesTimeWithoutEvents) {
  Kernel k;
  k.run_until(1000);
  EXPECT_EQ(k.now(), 1000u);
  EXPECT_TRUE(k.idle());
}

TEST(Kernel, StopRequestHaltsRun) {
  Kernel k;
  Harness tb{k};
  tb.thread("stopper", [&] {
    wait(50);
    k.stop();
    wait(1000);  // never reached within this run
  });
  k.run_until(500);
  EXPECT_EQ(k.now(), 50u);
  EXPECT_TRUE(k.stop_requested());
}

TEST(Kernel, RunToCompletionDrainsAllActivity) {
  Kernel k;
  Harness tb{k};
  int done_at = -1;
  tb.thread("t", [&] {
    wait(25);
    wait(25);
    done_at = static_cast<int>(k.now());
  });
  k.run_to_completion();
  EXPECT_EQ(done_at, 50);
}

TEST(Kernel, ExternalSignalWriteAppliesWithoutRunnableProcesses) {
  // Regression: a write from testbench code (outside any process) queues an
  // update with nothing runnable; the update phase must still run.
  Kernel k;
  Harness tb{k};
  auto& sig = tb.make_signal<u32>("s", 0);
  int changes = 0;
  tb.method("watch", [&] { ++changes; })
      .sensitive(sig.value_changed_event())
      .dont_initialize();
  sig.write(5);
  k.run_until(1);
  EXPECT_EQ(sig.read(), 5u);
  EXPECT_EQ(changes, 1);
}

TEST(Kernel, DeltaLimitCatchesZeroDelayFeedbackLoop) {
  Kernel k;
  Harness tb{k};
  auto& a = tb.make_signal<u32>("a", 0);
  auto& b = tb.make_signal<u32>("b", 0);
  // Classic livelock: two methods feeding each other new values with no
  // time elapsing in between.
  tb.method("fwd", [&] { b.write(a.read() + 1); })
      .sensitive(a.value_changed_event())
      .dont_initialize();
  tb.method("bwd", [&] { a.write(b.read() + 1); })
      .sensitive(b.value_changed_event())
      .dont_initialize();
  k.set_delta_limit(1000);
  a.write(1);
  EXPECT_THROW(k.run_until(10), std::runtime_error);
}

TEST(Kernel, DeltaLimitAllowsLegitimateDeltaBursts) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  int hops = 0;
  tb.method("chain",
            [&] {
              if (++hops < 50) ev.notify_delta();  // finite burst
            })
      .sensitive(ev)
      .dont_initialize();
  k.set_delta_limit(1000);
  ev.notify_delta();
  k.run_until(10);
  EXPECT_EQ(hops, 50);
}

TEST(Kernel, ImmediateNotificationWithinEvaluation) {
  Kernel k;
  Harness tb{k};
  Event ev{k, "ev"};
  bool woke = false;
  tb.thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  tb.thread("poker", [&] {
    wait(5);
    ev.notify();  // immediate
  });
  k.run_until(10);
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace vhp::sim
