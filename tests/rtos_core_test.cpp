// RTOS kernel core tests: scheduling, priorities, timeslicing, virtual time,
// delays, yields, shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "vhp/rtos/kernel.hpp"

namespace vhp::rtos {
namespace {

KernelConfig fast_cfg() {
  KernelConfig cfg;
  cfg.cycles_per_tick = 10;
  cfg.timeslice_ticks = 3;
  return cfg;
}

TEST(RtosKernel, RunsSingleThreadToCompletion) {
  Kernel k{fast_cfg()};
  bool ran = false;
  k.spawn("t", 5, [&] { ran = true; });
  k.run(/*until_quiescent=*/true);
  EXPECT_TRUE(ran);
}

TEST(RtosKernel, HigherPriorityRunsFirst) {
  Kernel k{fast_cfg()};
  std::vector<std::string> order;
  k.spawn("low", 10, [&] { order.push_back("low"); });
  k.spawn("high", 2, [&] { order.push_back("high"); });
  k.spawn("mid", 5, [&] { order.push_back("mid"); });
  k.run(true);
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST(RtosKernel, YieldRoundRobinsEqualPriority) {
  Kernel k{fast_cfg()};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    k.spawn("t" + std::to_string(i), 5, [&, i] {
      for (int round = 0; round < 3; ++round) {
        order.push_back(i);
        k.yield();
      }
    });
  }
  k.run(true);
  ASSERT_EQ(order.size(), 9u);
  // Perfect interleave: 0,1,2,0,1,2,0,1,2.
  for (std::size_t j = 0; j < order.size(); ++j) {
    EXPECT_EQ(order[j], static_cast<int>(j % 3));
  }
}

TEST(RtosKernel, ConsumeAdvancesTicks) {
  Kernel k{fast_cfg()};  // 10 cycles per tick
  SwTicks observed{};
  k.spawn("t", 5, [&] {
    k.consume(95);
    observed = k.tick_count();
  });
  k.run(true);
  EXPECT_EQ(observed.value(), 9u);  // 95/10 full boundaries crossed
  EXPECT_EQ(k.cycle_count(), 95u);
}

TEST(RtosKernel, TimesliceRotatesCpuHogs) {
  Kernel k{fast_cfg()};  // slice = 3 ticks = 30 cycles
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    k.spawn("hog" + std::to_string(i), 5, [&, i] {
      for (int chunk = 0; chunk < 3; ++chunk) {
        order.push_back(i);
        k.consume(30);  // exactly one timeslice
      }
    });
  }
  k.run(true);
  ASSERT_EQ(order.size(), 6u);
  // Each 30-cycle consume expires the slice, handing over: 0,1,0,1,0,1.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(RtosKernel, DelayWakesAtRightTick) {
  Kernel k{fast_cfg()};
  std::vector<std::pair<std::string, u64>> log;
  k.spawn("sleeper", 5, [&] {
    k.delay(SwTicks{5});
    log.emplace_back("woke", k.tick_count().value());
  });
  k.spawn("worker", 6, [&] {
    k.consume(200);  // 20 ticks of background work
    log.emplace_back("done", k.tick_count().value());
  });
  k.run(true);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, "woke");
  EXPECT_EQ(log[0].second, 5u);
  EXPECT_EQ(log[1].first, "done");
  EXPECT_EQ(log[1].second, 20u);
}

TEST(RtosKernel, DelayZeroIsYield) {
  Kernel k{fast_cfg()};
  bool other_ran = false;
  std::vector<bool> observed;
  k.spawn("a", 5, [&] {
    k.delay(SwTicks{0});
    observed.push_back(other_ran);
  });
  k.spawn("b", 5, [&] { other_ran = true; });
  k.run(true);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_TRUE(observed[0]);
}

TEST(RtosKernel, SleepingThreadsAdvanceViaIdle) {
  // With every thread asleep, the idle thread must consume virtual time in
  // free-running mode so the alarms eventually fire.
  Kernel k{fast_cfg()};
  u64 woke_tick = 0;
  k.spawn("sleeper", 5, [&] {
    k.delay(SwTicks{100});
    woke_tick = k.tick_count().value();
  });
  k.run(true);
  EXPECT_EQ(woke_tick, 100u);
  EXPECT_GT(k.stats().idle_cycles, 0u);
}

TEST(RtosKernel, PreemptionOnWake) {
  // A high-priority thread waking mid-consume preempts the low one at the
  // next preemption point.
  Kernel k{fast_cfg()};
  std::vector<std::string> order;
  k.spawn("high", 2, [&] {
    k.delay(SwTicks{3});
    order.push_back("high");
  });
  k.spawn("low", 10, [&] {
    order.push_back("low-start");
    k.consume(100);  // high wakes at tick 3, inside this consume
    order.push_back("low-end");
  });
  k.run(true);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "low-start");
  EXPECT_EQ(order[1], "high");
  EXPECT_EQ(order[2], "low-end");
}

TEST(RtosKernel, ShutdownFromThreadStopsRun) {
  Kernel k{fast_cfg()};
  int after_shutdown = 0;
  k.spawn("a", 5, [&] { k.shutdown(); });
  k.spawn("b", 9, [&] { ++after_shutdown; });  // lower priority, never runs
  k.run();
  EXPECT_TRUE(k.shutting_down());
  EXPECT_EQ(after_shutdown, 0);
}

TEST(RtosKernel, StatsCountSwitchesAndTicks) {
  Kernel k{fast_cfg()};
  k.spawn("t", 5, [&] { k.consume(100); });
  k.run(true);
  EXPECT_GE(k.stats().context_switches, 1u);
  EXPECT_EQ(k.stats().ticks, 10u);
}

TEST(RtosKernel, RealTimePacingSlowsIdleTicks) {
  // With a 2 ms wall period per tick, sleeping 5 virtual ticks must take
  // at least ~10 ms of wall time (and far more than the unpaced run).
  KernelConfig cfg = fast_cfg();
  cfg.real_time_tick = std::chrono::milliseconds{2};
  Kernel k{cfg};
  k.spawn("sleeper", 5, [&] { k.delay(SwTicks{5}); });
  const auto start = std::chrono::steady_clock::now();
  k.run(true);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds{9});
  EXPECT_EQ(k.tick_count().value(), 5u);
}

TEST(RtosKernel, ManyThreadsAllComplete) {
  Kernel k{fast_cfg()};
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    k.spawn("t" + std::to_string(i), 3 + (i % 20), [&] {
      k.consume(17);
      ++completed;
    });
  }
  k.run(true);
  EXPECT_EQ(completed, 64);
}

}  // namespace
}  // namespace vhp::rtos
